package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nautilus/internal/server"
)

// End-to-end tests of the shipped daemon under the -fault-* harness:
// seeded connection resets, partitions, and slow-loris throttling on
// every accepted connection, driven from outside the process. The
// in-package internal/server and internal/faultnet tests pin the same
// behaviors in-process; these prove them against the real binary,
// HTTP-over-TCP, SIGTERM and all.

// faultClient is an HTTP client for a lossy daemon: no keep-alives (a
// reset conn must not poison the next request) and a bounded per-request
// lifetime.
func faultClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   30 * time.Second,
	}
}

// retryJSON GETs path until a decodable 200 arrives - requests that die
// to a scheduled reset are simply tried again on a fresh connection.
func retryJSON(t *testing.T, client *http.Client, url string, v any) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(v)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			return
		}
		lastErr = fmt.Errorf("status %d: %v", resp.StatusCode, err)
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("GET %s never succeeded through the fault scenario: %v", url, lastErr)
}

// retrySubmit posts spec until an accepted JobStatus comes back.
func retrySubmit(t *testing.T, client *http.Client, base string, spec server.JobSpec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(data))
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusAccepted && st.ID != "" {
			return st.ID
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("submit never succeeded through the fault scenario")
	return ""
}

// retryWaitState polls a job through the faults until pred holds.
func retryWaitState(t *testing.T, client *http.Client, base, id, what string, pred func(server.JobStatus) bool) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st server.JobStatus
		retryJSON(t, client, base+"/v1/jobs/"+id, &st)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timed out waiting for %s (state %s, generation %d)", id, what, st.State, st.Generation)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sseReplay reads one full SSE stream - generations plus the final done
// event - retrying on fresh connections when a scheduled fault kills one
// mid-stream. Each attempt must replay the hub's retained history from
// its first event, consecutively; that every retry starts over IS the
// replay-on-reconnect contract. Returns the first generation seen and
// how many generation events followed it.
func sseReplay(t *testing.T, client *http.Client, url string) (first, events int) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	attempt := 0
	for time.Now().Before(deadline) {
		attempt++
		resp, err := client.Get(url)
		if err != nil {
			continue
		}
		complete := false
		first, events = -1, 0
		sc := bufio.NewScanner(resp.Body)
		wantGen := -1
		for sc.Scan() {
			data, found := strings.CutPrefix(sc.Text(), "data: ")
			if !found {
				continue
			}
			var ev struct {
				Generation *int         `json:"generation"`
				State      server.State `json:"state"`
			}
			if json.Unmarshal([]byte(data), &ev) != nil {
				continue
			}
			if ev.State != "" { // the done event
				complete = true
				break
			}
			if ev.Generation == nil {
				continue
			}
			if wantGen == -1 {
				first, wantGen = *ev.Generation, *ev.Generation
			}
			if *ev.Generation != wantGen {
				t.Fatalf("attempt %d: replay out of order: generation %d, want %d", attempt, *ev.Generation, wantGen)
			}
			wantGen++
			events++
		}
		resp.Body.Close()
		if complete {
			return first, events
		}
		// The connection died mid-stream (reset, partition past the drain
		// deadline): reconnect and require the replay to start over.
	}
	t.Fatal("no SSE attempt ever streamed to the done event")
	return 0, 0
}

// faultFlags is the seeded scenario shared by the drain/resume e2e runs.
func faultFlags(seed int, logPath string) []string {
	return []string{
		"-fault-seed", fmt.Sprint(seed),
		"-fault-latency", "1ms", "-fault-jitter", "2ms",
		"-fault-reset-rate", "0.25", "-fault-reset-bytes", "4096",
		"-fault-partition-rate", "0.2", "-fault-partition-bytes", "2048",
		"-fault-partition-heal", "100ms",
		"-fault-slowloris-rate", "0.15", "-fault-slowloris-bps", "4096",
		"-fault-log", logPath,
	}
}

// TestFaultnetDrainResume: the daemon serves, checkpoints under SIGTERM,
// and resumes byte-identically while every connection suffers the seeded
// scenario - resets mid-response, partition windows, slow-loris
// throttling. Clients ride it out with plain reconnect-and-retry.
func TestFaultnetDrainResume(t *testing.T) {
	specs := []server.JobSpec{
		{IP: "fft", Query: "min-luts", Guidance: "strong", Generations: 12, Population: 6, Seed: 3, Parallelism: 2},
		{IP: "fft", Query: "min-luts", Guidance: "strong", Generations: 12, Population: 6, Seed: 9, Parallelism: 2},
	}
	refs := make([]cliResult, len(specs))
	for i, spec := range specs {
		refs[i] = runCLI(t, fftCLIArgs(spec)...)
	}

	stateDir := t.TempDir()
	logDir := t.TempDir()
	log1 := filepath.Join(logDir, "faults-1.log")
	log2 := filepath.Join(logDir, "faults-2.log")
	base := []string{"-state-dir", stateDir, "-workers", "4", "-checkpoint-every", "2", "-eval-delay", "10ms"}
	client := faultClient()

	d := startDaemon(t, append(append([]string{}, base...), faultFlags(77, log1)...)...)
	if !strings.Contains(d.output(), "fault harness armed") {
		t.Fatalf("daemon did not arm the harness:\n%s", d.output())
	}
	url := "http://" + d.addr
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = retrySubmit(t, client, url, spec)
	}
	retryWaitState(t, client, url, ids[0], "generation 1", func(st server.JobStatus) bool {
		return st.Generation >= 1 || st.State != server.StateRunning
	})
	// A mid-run SSE subscriber whose connection the scenario may kill at
	// any byte: each reconnect must replay from generation 0 (sseReplay
	// asserts the ordering) even while the stream is still growing.
	func() {
		resp, err := client.Get(url + "/v1/jobs/" + ids[0] + "/events")
		if err != nil {
			return // this conn drew an instant reset; the post-drain pass still covers replay
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev struct {
					Generation *int `json:"generation"`
				}
				if json.Unmarshal([]byte(data), &ev) == nil && ev.Generation != nil {
					if *ev.Generation != 0 {
						t.Errorf("live SSE replay began at generation %d, want 0", *ev.Generation)
					}
					return
				}
			}
		}
	}()

	d.drain(t)
	if _, err := os.Stat(log1); err != nil {
		t.Fatalf("first life wrote no fault log: %v", err)
	}
	// The drain persisted checkpoints for the interrupted sessions.
	checkpoints := 0
	for _, id := range ids {
		if _, err := os.Stat(filepath.Join(stateDir, id, "checkpoint.json")); err == nil {
			checkpoints++
		}
	}
	if checkpoints == 0 {
		t.Fatal("drain under faults left no per-session checkpoint")
	}

	// Second life, same faults: sessions resume and land exactly on the
	// CLI's answers.
	d2 := startDaemon(t, append(append([]string{}, base...), faultFlags(78, log2)...)...)
	url2 := "http://" + d2.addr
	for i, id := range ids {
		st := retryWaitState(t, client, url2, id, "a terminal state", func(st server.JobStatus) bool {
			return st.State != server.StateRunning
		})
		if st.State != server.StateDone {
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		var res server.JobResult
		retryJSON(t, client, url2+"/v1/jobs/"+id+"/result", &res)
		requireMatch(t, id, res, refs[i])
	}
	// Post-completion SSE: the replay (the resumed session's retained
	// history, in order, through the final generation, then done)
	// survives however many reconnects the scenario forces. The resumed
	// hub's history starts at the checkpoint's generation, not 0.
	first, events := sseReplay(t, client, url2+"/v1/jobs/"+ids[0]+"/events")
	if last := first + events - 1; last != specs[0].Generations {
		t.Errorf("replay covered generations %d..%d, want it to end at %d", first, last, specs[0].Generations)
	}
	d2.drain(t)
	for _, p := range []string{log1, log2} {
		data, err := os.ReadFile(p)
		if err != nil || len(data) == 0 {
			t.Fatalf("fault log %s missing or empty (err %v)", p, err)
		}
		if !strings.Contains(string(data), "kind=open") {
			t.Fatalf("fault log %s has no open events:\n%s", p, data)
		}
	}
}

// TestFaultnetLogDeterminism: two daemon lives with the same scenario
// seed, driven by the same sequential byte-for-byte workload, write
// byte-identical fault-event logs - the harness' reproducibility
// contract, end to end through the real binary.
func TestFaultnetLogDeterminism(t *testing.T) {
	logDir := t.TempDir()
	flags := func(logPath string) []string {
		return []string{
			"-fault-seed", "4242",
			"-fault-reset-rate", "0.5", "-fault-reset-bytes", "2048",
			"-fault-partition-rate", "0.5", "-fault-partition-bytes", "1024",
			"-fault-partition-heal", "50ms",
			"-fault-slowloris-rate", "0.25", "-fault-slowloris-bps", "2048",
			"-fault-log", logPath,
		}
	}
	// The driver: sequential raw connections, fixed request bytes, each
	// read to exhaustion before the next dial - so connection N is the
	// same N in both lives and byte offsets line up exactly. A padding
	// header fattens the request past every read-direction fault offset
	// (drawn at or below -fault-reset-bytes / -fault-partition-bytes).
	drive := func(addr string) {
		request := "GET /v1/healthz HTTP/1.1\r\nHost: nautserve\r\nConnection: close\r\n" +
			"X-Pad: " + strings.Repeat("x", 3000) + "\r\n\r\n"
		for i := 0; i < 8; i++ {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			c.SetDeadline(time.Now().Add(20 * time.Second)) //nolint:errcheck
			c.Write([]byte(request))                        //nolint:errcheck // resets are part of the scenario
			buf := make([]byte, 4096)
			for {
				if _, err := c.Read(buf); err != nil {
					break
				}
			}
			c.Close()
		}
	}

	logs := make([]string, 2)
	for life := 0; life < 2; life++ {
		logPath := filepath.Join(logDir, fmt.Sprintf("life-%d.log", life))
		d := startDaemon(t, append([]string{"-state-dir", t.TempDir()}, flags(logPath)...)...)
		drive(d.addr)
		d.drain(t)
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatalf("life %d fault log: %v", life, err)
		}
		logs[life] = string(data)
	}
	if logs[0] != logs[1] {
		t.Fatalf("same seed, same workload, different fault logs:\n--- life 0 ---\n%s--- life 1 ---\n%s", logs[0], logs[1])
	}
	if strings.Count(logs[0], "kind=open") != 8 {
		t.Fatalf("fault log does not cover all 8 connections:\n%s", logs[0])
	}
	if !strings.Contains(logs[0], "kind=reset") {
		t.Fatalf("scenario fired no resets over 8 connections:\n%s", logs[0])
	}
}
