package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nautilus/internal/server"
)

// End-to-end tests against the real binaries: a nautserve daemon driven
// over HTTP, checked against the nautilus CLI it must agree with byte for
// byte, through SIGTERM drain and restart. The in-package server tests
// cover the same guarantees in-process; this file proves them for the
// shipped executables, signals and all.

var (
	serveBin string
	cliBin   string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "nautserve-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	serveBin = filepath.Join(dir, "nautserve")
	cliBin = filepath.Join(dir, "nautilus")
	for bin, pkg := range map[string]string{serveBin: ".", cliBin: "../nautilus"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "build %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// cliResult is the deterministic result block of a nautilus CLI run.
type cliResult struct {
	BestValue     string // as printed, %.4g
	Configuration string
	DistinctEvals int
}

// runCLI runs the nautilus binary and parses its result block.
func runCLI(t *testing.T, args ...string) cliResult {
	t.Helper()
	out, err := exec.Command(cliBin, args...).Output()
	if err != nil {
		t.Fatalf("nautilus %v: %v", args, err)
	}
	var res cliResult
	for _, line := range strings.Split(string(out), "\n") {
		switch {
		case strings.HasPrefix(line, "best value:"):
			res.BestValue = strings.TrimSpace(strings.TrimPrefix(line, "best value:"))
		case strings.HasPrefix(line, "configuration:"):
			res.Configuration = strings.TrimSpace(strings.TrimPrefix(line, "configuration:"))
		case strings.HasPrefix(line, "synthesis jobs:"):
			if _, err := fmt.Sscanf(line, "synthesis jobs:  %d", &res.DistinctEvals); err != nil {
				t.Fatalf("unparseable synthesis line %q: %v", line, err)
			}
		}
	}
	if res.Configuration == "" || res.BestValue == "" || res.DistinctEvals == 0 {
		t.Fatalf("CLI result block incomplete in:\n%s", out)
	}
	return res
}

// daemonOutput collects the daemon's combined output and watches for the
// machine-readable bound-address line. Handing this writer to exec.Cmd
// directly (rather than reading a StdoutPipe) means Wait cannot return
// until every line - the clean-drain message included - has landed.
type daemonOutput struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	addrCh chan string
}

func (o *daemonOutput) Write(p []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.buf.Write(p)
	for _, line := range strings.Split(o.buf.String(), "\n") {
		if a, ok := strings.CutPrefix(line, "nautserve listening on "); ok {
			select {
			case o.addrCh <- a:
			default:
			}
		}
	}
	return len(p), nil
}

func (o *daemonOutput) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.buf.String()
}

// testDaemon is a running nautserve process.
type testDaemon struct {
	cmd  *exec.Cmd
	addr string
	done chan error
	out  *daemonOutput
}

func (d *testDaemon) output() string { return d.out.String() }

// startDaemon launches nautserve on a free port and waits for the bound
// address line.
func startDaemon(t *testing.T, args ...string) *testDaemon {
	t.Helper()
	d := &testDaemon{
		done: make(chan error, 1),
		out:  &daemonOutput{addrCh: make(chan string, 1)},
	}
	d.cmd = exec.Command(serveBin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	d.cmd.Stdout = d.out
	d.cmd.Stderr = d.out
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := d.out.addrCh
	go func() { d.done <- d.cmd.Wait() }()
	select {
	case d.addr = <-addrCh:
	case err := <-d.done:
		t.Fatalf("nautserve exited before binding: %v\n%s", err, d.output())
	case <-time.After(10 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("nautserve did not report an address within 10s\n%s", d.output())
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
		}
	})
	return d
}

// drain SIGTERMs the daemon and requires a clean exit-0 drain.
func (d *testDaemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("nautserve exit after SIGTERM: %v\n%s", err, d.output())
		}
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("nautserve did not exit within 60s of SIGTERM\n%s", d.output())
	}
	if !strings.Contains(d.output(), "drained cleanly") {
		t.Fatalf("exit 0 without the clean-drain line:\n%s", d.output())
	}
}

func (d *testDaemon) url(path string) string { return "http://" + d.addr + path }

func (d *testDaemon) getJSON(t *testing.T, path string, v any) int {
	t.Helper()
	resp, err := http.Get(d.url(path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return resp.StatusCode
}

// submit posts a job spec and returns its ID.
func (d *testDaemon) submit(t *testing.T, spec server.JobSpec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url("/api/v1/jobs"), "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, st)
	}
	return st.ID
}

// waitState polls a job until pred is satisfied, failing after 120s.
func (d *testDaemon) waitState(t *testing.T, id string, what string, pred func(server.JobStatus) bool) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st server.JobStatus
		if code := d.getJSON(t, "/api/v1/jobs/"+id, &st); code == http.StatusOK && pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timed out waiting for %s", id, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *testDaemon) waitDone(t *testing.T, id string) server.JobStatus {
	t.Helper()
	st := d.waitState(t, id, "a terminal state", func(st server.JobStatus) bool {
		return st.State != server.StateRunning
	})
	if st.State != server.StateDone {
		t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
	}
	return st
}

func (d *testDaemon) result(t *testing.T, id string) server.JobResult {
	t.Helper()
	var res server.JobResult
	if code := d.getJSON(t, "/api/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("result %s: status %d", id, code)
	}
	return res
}

// requireMatch asserts a server result agrees byte for byte with a CLI run.
func requireMatch(t *testing.T, id string, res server.JobResult, cli cliResult) {
	t.Helper()
	if res.Configuration != cli.Configuration {
		t.Errorf("%s: configuration %q, CLI printed %q", id, res.Configuration, cli.Configuration)
	}
	if got := fmt.Sprintf("%.4g", res.BestValue); got != cli.BestValue {
		t.Errorf("%s: best value %s, CLI printed %s", id, got, cli.BestValue)
	}
	if res.DistinctEvals != cli.DistinctEvals {
		t.Errorf("%s: %d distinct evals, CLI did %d", id, res.DistinctEvals, cli.DistinctEvals)
	}
}

// fftSpec is the shared small search spec used across the e2e tests.
func fftSpec() server.JobSpec {
	return server.JobSpec{
		IP: "fft", Query: "min-luts", Guidance: "strong",
		Generations: 5, Population: 6, Seed: 3, Parallelism: 2,
	}
}

func fftCLIArgs(spec server.JobSpec) []string {
	return []string{
		"-ip", spec.IP, "-query", spec.Query, "-guidance", spec.Guidance,
		"-gens", fmt.Sprint(spec.Generations), "-pop", fmt.Sprint(spec.Population),
		"-seed", fmt.Sprint(spec.Seed), "-par", fmt.Sprint(spec.Parallelism),
	}
}

// TestUsageExit: the daemon refuses to start without a state dir, exit 2.
func TestUsageExit(t *testing.T) {
	err := exec.Command(serveBin).Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("no -state-dir: err %v, want exit 2", err)
	}
}

// TestServerMatchesCLI: a job submitted over HTTP returns the exact result
// block the nautilus CLI prints for the same spec, then drains cleanly.
func TestServerMatchesCLI(t *testing.T) {
	cli := runCLI(t, fftCLIArgs(fftSpec())...)
	d := startDaemon(t, "-state-dir", t.TempDir())
	id := d.submit(t, fftSpec())
	d.waitDone(t, id)
	requireMatch(t, id, d.result(t, id), cli)
	d.drain(t)
}

// TestServerSharedCache: two concurrent sessions on the same space each
// report solo-run accounting, while the process-wide cache paid for the
// distinct designs once - fewer than the sum of the solo runs.
func TestServerSharedCache(t *testing.T) {
	cli := runCLI(t, fftCLIArgs(fftSpec())...)
	d := startDaemon(t, "-state-dir", t.TempDir(), "-workers", "4", "-eval-delay", "1ms")
	a := d.submit(t, fftSpec())
	b := d.submit(t, fftSpec())
	d.waitDone(t, a)
	d.waitDone(t, b)
	ra, rb := d.result(t, a), d.result(t, b)
	requireMatch(t, a, ra, cli)
	requireMatch(t, b, rb, cli)

	var stats struct {
		SharedCaches map[string]struct {
			Distinct int `json:"distinct_evals"`
		} `json:"shared_caches"`
	}
	if code := d.getJSON(t, "/api/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	shared := stats.SharedCaches["fft"].Distinct
	if shared >= ra.DistinctEvals+rb.DistinctEvals {
		t.Errorf("shared cache did %d distinct evals, no better than %d+%d solo",
			shared, ra.DistinctEvals, rb.DistinctEvals)
	}
	if shared != ra.DistinctEvals {
		t.Errorf("identical sessions should fully dedup: shared %d, solo %d", shared, ra.DistinctEvals)
	}
	d.drain(t)
}

// TestServerRestartResume: SIGTERM with sessions in flight exits cleanly;
// a restart on the same state dir resumes every session to the result the
// CLI produces uninterrupted.
func TestServerRestartResume(t *testing.T) {
	specs := []server.JobSpec{
		{IP: "fft", Query: "min-luts", Guidance: "strong", Generations: 12, Population: 6, Seed: 3, Parallelism: 2},
		{IP: "fft", Query: "min-luts", Guidance: "strong", Generations: 12, Population: 6, Seed: 9, Parallelism: 2},
		{IP: "gemm", Query: "min-luts", Guidance: "weak", Generations: 12, Population: 6, Seed: 11, Parallelism: 2},
	}
	refs := make([]cliResult, len(specs))
	for i, spec := range specs {
		refs[i] = runCLI(t, fftCLIArgs(spec)...)
	}

	stateDir := t.TempDir()
	args := []string{"-state-dir", stateDir, "-workers", "4", "-checkpoint-every", "2", "-eval-delay", "10ms"}
	d := startDaemon(t, args...)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		ids[i] = d.submit(t, spec)
	}
	// One generation boundary on the first job guarantees there is real
	// progress to checkpoint; the others are behind it on a shared budget.
	d.waitState(t, ids[0], "generation 1", func(st server.JobStatus) bool {
		return st.Generation >= 1 || st.State != server.StateRunning
	})
	d.drain(t)

	d2 := startDaemon(t, args...)
	resumed := 0
	for i, id := range ids {
		st := d2.waitDone(t, id)
		if st.Resumed {
			resumed++
		}
		requireMatch(t, id, d2.result(t, id), refs[i])
	}
	if resumed == 0 {
		t.Error("no session was resumed: the drain beat every job to completion")
	}
	d2.drain(t)
}
