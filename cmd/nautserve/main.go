// Command nautserve runs the Nautilus search engine as a long-lived
// service: a JSON HTTP API accepting search jobs, running them as
// concurrent supervised sessions over a bounded, fairly shared evaluation
// budget, with per-generation progress over SSE and live metrics under
// /debug/.
//
// Sessions on the same IP share one process-wide evaluation cache, so
// concurrent searches of one space pay for each distinct design point
// once - while each session's own accounting (and result) stays
// byte-identical to a solo nautilus CLI run of the same spec.
//
// A job's optional "mode" field widens the search shape: "pareto" (with a
// "queries" list of two or more objectives) returns the non-dominated
// front with its hypervolume and streams per-generation front growth over
// SSE; "portfolio" races the guided GA, the baseline GA, and simulated
// annealing over one shared dedup cache and reports each strategy's
// outcome. Pareto sessions checkpoint and resume like scalar ones;
// portfolio sessions re-run from scratch after a restart.
//
// SIGTERM/SIGINT drains gracefully: every in-flight session stops at its
// next generation boundary and persists a resumable checkpoint; a restart
// on the same -state-dir resumes all of them to the exact results they
// would have reached uninterrupted.
//
// The -fault-* flags arm the internal/faultnet harness on the accept
// side: every accepted connection gets a deterministic fault schedule
// (latency, bandwidth, resets, partitions, slow-loris throttling) drawn
// from -fault-seed. Production runs leave them off and serve plain TCP.
//
// The -node-id/-cluster-addr/-peers flags join the server to a nautserve
// cluster: the evaluation cache shards over a consistent-hash ring (each
// design point is evaluated once per cluster), submitted jobs run as
// island-model searches spread across the membership, and /v1 job routes
// proxy to the owning node so the cluster answers behind any one member.
//
// Exit codes: 0 after a clean drain, 1 on a fatal error, 2 on a usage
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nautilus/internal/faultnet"
	"nautilus/internal/server"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

const (
	exitOK    = 0
	exitFatal = 1
	exitUsage = 2
)

// clusterOptions assembles server.ClusterOptions from the cluster flags.
// Clustering is armed by -node-id; a -peers entry "id=rpcaddr/apiaddr"
// registers both the peer's cluster RPC address and (optionally) its HTTP
// API address for /v1 job proxying.
func clusterOptions(nodeID, clusterAddr, peers string, islands, migrationEvery, migrationCount int) (*server.ClusterOptions, error) {
	if nodeID == "" {
		if clusterAddr != "" || peers != "" {
			return nil, fmt.Errorf("-cluster-addr/-peers require -node-id")
		}
		return nil, nil
	}
	if clusterAddr == "" {
		return nil, fmt.Errorf("-node-id requires -cluster-addr")
	}
	co := &server.ClusterOptions{
		NodeID:            nodeID,
		Addr:              clusterAddr,
		Peers:             make(map[string]string),
		APIPeers:          make(map[string]string),
		Islands:           islands,
		MigrationInterval: migrationEvery,
		MigrationCount:    migrationCount,
	}
	if peers == "" {
		return co, nil
	}
	for _, part := range strings.Split(peers, ",") {
		id, addrs, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addrs == "" {
			return nil, fmt.Errorf("malformed -peers entry %q (want id=rpcaddr[/apiaddr])", part)
		}
		rpcAddr, apiAddr, hasAPI := strings.Cut(addrs, "/")
		if _, dup := co.Peers[id]; dup {
			return nil, fmt.Errorf("duplicate -peers entry for node %q", id)
		}
		co.Peers[id] = rpcAddr
		if hasAPI && apiAddr != "" {
			co.APIPeers[id] = apiAddr
		}
	}
	return co, nil
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nautserve:", err)
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("nautserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address to listen on (host:port, :0 picks a free port)")
	stateDir := fs.String("state-dir", "", "directory persisting session state across restarts (required)")
	workers := fs.Int("workers", 0, "global evaluation budget shared across sessions (0 = GOMAXPROCS)")
	maxSessions := fs.Int("max-sessions", 0, "maximum concurrently running sessions (0 = unlimited)")
	checkpointEvery := fs.Int("checkpoint-every", 5, "checkpoint cadence in generations (drain always checkpoints)")
	evalDelay := fs.Duration("eval-delay", 0, "artificial per-evaluation latency, simulating synthesis cost (testing)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a drain may take before forcing exit")

	nodeID := fs.String("node-id", "", "stable cluster identity of this node (enables clustering)")
	clusterAddr := fs.String("cluster-addr", "", "cluster RPC listen address (required with -node-id)")
	peers := fs.String("peers", "", "comma-separated peers as id=rpcaddr[/apiaddr]; apiaddr enables /v1 job proxying to that peer")
	islands := fs.Int("islands", 0, "islands per clustered session (0 = one per cluster member)")
	migrationEvery := fs.Int("migration-every", 5, "island migrant-exchange cadence in generations (negative disables)")
	migrationCount := fs.Int("migration-count", 1, "migrants shipped per island exchange")

	var sc faultnet.Scenario
	fs.Int64Var(&sc.Seed, "fault-seed", 1, "seed of the fault scenario's private stream")
	fs.DurationVar(&sc.Latency, "fault-latency", 0, "base per-operation network latency to inject")
	fs.DurationVar(&sc.Jitter, "fault-jitter", 0, "extra deterministic per-operation jitter in [0, jitter)")
	fs.IntVar(&sc.BandwidthBPS, "fault-bandwidth", 0, "per-direction bandwidth cap in bytes/sec (0 = unlimited)")
	fs.Float64Var(&sc.ResetRate, "fault-reset-rate", 0, "probability a connection gets a scheduled reset")
	fs.IntVar(&sc.ResetMaxBytes, "fault-reset-bytes", 4096, "reset offsets are drawn in [1, this]")
	fs.Float64Var(&sc.PartitionRate, "fault-partition-rate", 0, "probability a connection gets a scheduled partition window")
	fs.IntVar(&sc.PartitionMaxBytes, "fault-partition-bytes", 4096, "partition trigger offsets are drawn in [1, this]")
	fs.DurationVar(&sc.PartitionHeal, "fault-partition-heal", 250*time.Millisecond, "how long a scheduled partition window lasts")
	fs.Float64Var(&sc.SlowLorisRate, "fault-slowloris-rate", 0, "probability a connection is throttled to slow-loris rates")
	fs.IntVar(&sc.SlowLorisBPS, "fault-slowloris-bps", 256, "slow-loris per-direction throughput in bytes/sec")
	faultLog := fs.String("fault-log", "", "file receiving the canonical fault-event log on exit")

	if err := fs.Parse(args); err != nil {
		return exitUsage, nil // flag package already printed the error
	}
	if *stateDir == "" {
		fs.Usage()
		return exitUsage, fmt.Errorf("-state-dir is required")
	}
	if fs.NArg() > 0 {
		return exitUsage, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if err := sc.Validate(); err != nil {
		return exitUsage, err
	}
	clusterOpts, err := clusterOptions(*nodeID, *clusterAddr, *peers, *islands, *migrationEvery, *migrationCount)
	if err != nil {
		return exitUsage, err
	}

	reg := telemetry.NewRegistry()
	opts := server.Options{
		StateDir:        *stateDir,
		Workers:         *workers,
		MaxSessions:     *maxSessions,
		CheckpointEvery: *checkpointEvery,
		EvalDelay:       *evalDelay,
		Registry:        reg,
		Cluster:         clusterOpts,
	}
	// With any fault knob set, accepted connections route through the
	// deterministic fault harness; otherwise the server binds plain TCP.
	var fnet *faultnet.Faulty
	if sc.Active() {
		fnet = faultnet.New(faultnet.Config{Scenario: sc, Registry: reg})
		opts.Network = fnet
	}

	srv, err := server.New(opts)
	if err != nil {
		return exitFatal, err
	}
	if fnet != nil {
		// Fault events land beside the engine's phases in the /metrics
		// latency histograms; the span-ID stream is the scenario's own.
		fnet.SetTracer(trace.New(trace.Config{
			Session: "faultnet",
			Seed:    sc.Seed,
			Sinks:   []trace.Sink{srv.SpanSink()},
		}))
	}

	base, err := srv.Listen(*addr)
	if err != nil {
		return exitFatal, err
	}
	// Transient accept failures (fd pressure, aborted handshakes) back off
	// and retry instead of killing the serve loop.
	ln := server.NewRetryListener(base, reg)
	hs := &http.Server{
		Handler: srv.Handler(),
		// Header reads and idle keep-alives are bounded; no global write
		// timeout because /v1/jobs/{id}/events streams SSE for a session's
		// whole lifetime.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if fnet != nil {
		fmt.Fprintf(out, "nautserve fault harness armed (seed %d)\n", sc.Seed)
	}
	if clusterOpts != nil {
		fmt.Fprintf(out, "nautserve cluster node %s on %s (%d peers)\n",
			clusterOpts.NodeID, clusterOpts.Addr, len(clusterOpts.Peers))
	}
	// The bound address line is machine-read by tests driving -addr :0 and
	// is printed last so everything above it is visible once it appears;
	// keep its format stable.
	fmt.Fprintf(out, "nautserve listening on %s\n", ln.Addr())
	fmt.Fprintf(out, "nautserve state dir %s\n", *stateDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(out, "nautserve received %s, draining\n", sig)
	case err := <-serveErr:
		return exitFatal, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	_ = hs.Shutdown(ctx)
	if fnet != nil && *faultLog != "" {
		if werr := os.WriteFile(*faultLog, []byte(fnet.Events().String()), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "nautserve: write fault log: %v\n", werr)
		}
	}
	if drainErr != nil {
		return exitFatal, drainErr
	}
	fmt.Fprintln(out, "nautserve drained cleanly")
	return exitOK, nil
}
