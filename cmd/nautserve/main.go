// Command nautserve runs the Nautilus search engine as a long-lived
// service: a JSON HTTP API accepting search jobs, running them as
// concurrent supervised sessions over a bounded, fairly shared evaluation
// budget, with per-generation progress over SSE and live metrics under
// /debug/.
//
// Sessions on the same IP share one process-wide evaluation cache, so
// concurrent searches of one space pay for each distinct design point
// once - while each session's own accounting (and result) stays
// byte-identical to a solo nautilus CLI run of the same spec.
//
// SIGTERM/SIGINT drains gracefully: every in-flight session stops at its
// next generation boundary and persists a resumable checkpoint; a restart
// on the same -state-dir resumes all of them to the exact results they
// would have reached uninterrupted.
//
// Exit codes: 0 after a clean drain, 1 on a fatal error, 2 on a usage
// error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nautilus/internal/server"
	"nautilus/internal/telemetry"
)

const (
	exitOK    = 0
	exitFatal = 1
	exitUsage = 2
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nautserve:", err)
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("nautserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address to listen on (host:port, :0 picks a free port)")
	stateDir := fs.String("state-dir", "", "directory persisting session state across restarts (required)")
	workers := fs.Int("workers", 0, "global evaluation budget shared across sessions (0 = GOMAXPROCS)")
	maxSessions := fs.Int("max-sessions", 0, "maximum concurrently running sessions (0 = unlimited)")
	checkpointEvery := fs.Int("checkpoint-every", 5, "checkpoint cadence in generations (drain always checkpoints)")
	evalDelay := fs.Duration("eval-delay", 0, "artificial per-evaluation latency, simulating synthesis cost (testing)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a drain may take before forcing exit")
	if err := fs.Parse(args); err != nil {
		return exitUsage, nil // flag package already printed the error
	}
	if *stateDir == "" {
		fs.Usage()
		return exitUsage, fmt.Errorf("-state-dir is required")
	}
	if fs.NArg() > 0 {
		return exitUsage, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := server.New(server.Options{
		StateDir:        *stateDir,
		Workers:         *workers,
		MaxSessions:     *maxSessions,
		CheckpointEvery: *checkpointEvery,
		EvalDelay:       *evalDelay,
		Registry:        telemetry.NewRegistry(),
	})
	if err != nil {
		return exitFatal, err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return exitFatal, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// The bound address line is machine-read by tests driving -addr :0;
	// keep its format stable.
	fmt.Fprintf(out, "nautserve listening on %s\n", ln.Addr())
	fmt.Fprintf(out, "nautserve state dir %s\n", *stateDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(out, "nautserve received %s, draining\n", sig)
	case err := <-serveErr:
		return exitFatal, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	_ = hs.Shutdown(ctx)
	if drainErr != nil {
		return exitFatal, drainErr
	}
	fmt.Fprintln(out, "nautserve drained cleanly")
	return exitOK, nil
}
