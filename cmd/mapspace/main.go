// Command mapspace enumerates and characterizes an IP generator's full
// design space to CSV - the offline characterization step the paper ran on
// a 200+ core cluster for two weeks, reproduced here against the analytical
// synthesis substrate.
//
// Usage:
//
//	mapspace -ip noc|fft|network|gemm [-o FILE] [-debug-addr ADDR]
//	         [-eval-timeout DUR] [-eval-retries N]
//
// Against a real synthesis backend individual characterizations can hang or
// fail transiently; -eval-timeout bounds each attempt and -eval-retries
// retries transient failures with jittered exponential backoff before the
// point is recorded as infeasible.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nautilus/internal/cliflags"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/gemm"
	"nautilus/internal/metrics"
	"nautilus/internal/noc"
	"nautilus/internal/param"
	"nautilus/internal/resilience"
	"nautilus/internal/telemetry"
)

func main() {
	ip := flag.String("ip", "noc", "IP generator to map: noc (VC router), fft, network (64-endpoint NoCs), or gemm")
	out := flag.String("o", "", "output CSV file (default stdout)")
	debugAddr := cliflags.DebugAddr(flag.CommandLine)
	supFlags := cliflags.NewSupervision(flag.CommandLine, false)
	flag.Parse()
	if err := supFlags.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mapspace: %v\n", err)
		os.Exit(2)
	}

	var (
		space *param.Space
		eval  dataset.Evaluator
	)
	switch *ip {
	case "noc":
		s := noc.RouterSpace()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return noc.RouterEvaluate(s, pt) }
	case "fft":
		s := fft.Space()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return fft.Evaluate(s, pt) }
	case "network":
		s := noc.NetworkSpace()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return noc.NetworkEvaluate(s, pt) }
	case "gemm":
		s := gemm.Space()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return gemm.Evaluate(s, pt) }
	default:
		fmt.Fprintf(os.Stderr, "mapspace: unknown IP %q\n", *ip)
		os.Exit(2)
	}

	if supFlags.Enabled() {
		sup, err := resilience.Supervise(space, eval, supFlags.Policy(), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapspace: %v\n", err)
			os.Exit(2)
		}
		eval = sup.PlainEvaluator()
	}

	// Full enumerations can run for a long time; the debug endpoint exposes
	// how far along the sweep is (points characterized, infeasible so far).
	if *debugAddr != "" {
		reg := telemetry.NewRegistry()
		points := reg.Counter("mapspace.points")
		infeasible := reg.Counter("mapspace.infeasible")
		reg.Gauge("mapspace.points_total").Set(float64(space.Cardinality()))
		inner := eval
		eval = func(pt param.Point) (metrics.Metrics, error) {
			m, err := inner(pt)
			points.Inc()
			if err != nil {
				infeasible.Inc()
			}
			return m, err
		}
		addr, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapspace: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mapspace: debug endpoint http://%s/debug/vars\n", addr)
	}

	start := time.Now()
	ds, err := dataset.Build(space, eval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapspace: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapspace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "mapspace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mapspace: %s: %d feasible + %d infeasible points in %v\n",
		*ip, ds.Size(), ds.Infeasible(), time.Since(start).Round(time.Millisecond))
}
