package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end exit-code tests against the built binary: orchestration around
// long searches keys off the documented 0/1/2/3 contract (success, fatal,
// usage, interrupted-with-checkpoint), so each code is pinned here by
// running the real executable.

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "nautilus-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "nautilus")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build nautilus: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runNautilus runs the binary to completion and returns its exit code and
// output streams.
func runNautilus(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("nautilus %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

// resultLines extracts the deterministic result block from a successful
// run's stdout - the lines orchestration (and the server tests) compare.
func resultLines(out string) string {
	var kept []string
	for _, l := range strings.Split(out, "\n") {
		for _, p := range []string{"best value:", "configuration:", "all metrics:", "synthesis jobs:"} {
			if strings.HasPrefix(l, p) {
				kept = append(kept, l)
			}
		}
	}
	return strings.Join(kept, "\n")
}

// TestExitSuccess: a feasible search exits 0 and prints the result block.
func TestExitSuccess(t *testing.T) {
	code, out, stderr := runNautilus(t,
		"-ip", "fft", "-query", "min-luts", "-gens", "5", "-pop", "6", "-seed", "3", "-par", "1")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, stderr)
	}
	for _, want := range []string{"best value:", "configuration:", "synthesis jobs:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestExitUsage: every front-door validation failure exits 2, before any
// search work happens.
func TestExitUsage(t *testing.T) {
	cases := map[string][]string{
		"pop-too-small":    {"-pop", "1"},
		"zero-gens":        {"-gens", "0"},
		"zero-par":         {"-par", "0"},
		"negative-seed":    {"-seed", "-1"},
		"unknown-ip":       {"-ip", "dsp"},
		"unknown-query":    {"-ip", "fft", "-query", "min-carbon"},
		"unknown-guidance": {"-guidance", "psychic"},
		"bad-fault-rate":   {"-fault-rate", "1.5"},
		"bad-ckpt-every":   {"-checkpoint-every", "0"},
		"undefined-flag":   {"-no-such-flag"},
	}
	for name, args := range cases {
		code, _, stderr := runNautilus(t, args...)
		if code != 2 {
			t.Errorf("%s (%v): exit %d, want 2\nstderr:\n%s", name, args, code, stderr)
		}
	}
}

// TestExitFatal: failures after flag validation - unreadable inputs,
// rejected checkpoints - exit 1 with a diagnostic on stderr.
func TestExitFatal(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "missing.json")
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"missing-resume": {"-resume", missing},
		"corrupt-resume": {"-resume", garbage},
		"missing-hints":  {"-hints", missing},
		"corrupt-hints":  {"-hints", garbage},
	}
	for name, args := range cases {
		all := append([]string{"-ip", "fft", "-query", "min-luts", "-gens", "3", "-pop", "4"}, args...)
		code, _, stderr := runNautilus(t, all...)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\nstderr:\n%s", name, code, stderr)
		}
		if stderr == "" {
			t.Errorf("%s: fatal exit carried no diagnostic", name)
		}
	}
}

// TestExitInterrupted: SIGTERM mid-search with -checkpoint exits 3 with the
// state saved, and -resume continues to the exact result the uninterrupted
// run prints - the full preemption round trip, against the real binary.
func TestExitInterrupted(t *testing.T) {
	base := []string{"-ip", "fft", "-query", "min-luts", "-gens", "1200", "-pop", "8", "-seed", "5", "-par", "1"}

	// Uninterrupted reference (no checkpointing: runs in milliseconds).
	code, refOut, stderr := runNautilus(t, base...)
	if code != 0 {
		t.Fatalf("reference run: exit %d\nstderr:\n%s", code, stderr)
	}
	ref := resultLines(refOut)
	if ref == "" {
		t.Fatalf("reference run printed no result block:\n%s", refOut)
	}

	// Checkpointed run: per-generation snapshots throttle it to seconds,
	// leaving a wide window to preempt once the first snapshot lands.
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	cmd := exec.Command(binPath, append(base, "-checkpoint", ckpt, "-checkpoint-every", "1")...)
	var stdout2, stderr2 bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout2, &stderr2
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared within 10s\nstderr:\n%s", stderr2.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("interrupted run: err %v (want exit 3)\nstderr:\n%s", err, stderr2.String())
	}
	if !strings.Contains(stderr2.String(), "state saved") {
		t.Errorf("exit 3 without the resume hint on stderr:\n%s", stderr2.String())
	}

	// Resume: same flags plus -resume, exit 0, byte-identical result block.
	code, resOut, stderr3 := runNautilus(t, append(base, "-resume", ckpt)...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d\nstderr:\n%s", code, stderr3)
	}
	if got := resultLines(resOut); got != ref {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed:\n%s\nreference:\n%s", got, ref)
	}
}

// TestInterruptWithoutCheckpointIsFatal: preempting a run that has nowhere
// to save its progress is a fatal error (exit 1), not a clean interruption.
func TestInterruptWithoutCheckpointIsFatal(t *testing.T) {
	// Enough generations that the run is still going when the signal lands
	// (the same search finishes 1200 generations in well under a second, so
	// scale buys minutes of margin, not test latency).
	cmd := exec.Command(binPath,
		"-ip", "fft", "-query", "min-luts", "-gens", "2000000", "-pop", "8", "-seed", "5", "-par", "1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // signal handler installs in the first milliseconds
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err %v (want exit 1)\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "progress lost") {
		t.Errorf("fatal interruption without the progress-lost diagnostic:\n%s", stderr.String())
	}
}
