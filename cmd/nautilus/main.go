// Command nautilus runs a guided design-space search query against one of
// the bundled IP generators and prints the best configuration found along
// with the search trace - the end-user experience the paper targets: an IP
// user states an optimization goal, and the generator tunes its own
// parameters.
//
// Usage:
//
//	nautilus -ip noc|fft|gemm -query QUERY [-guidance baseline|weak|strong]
//	         [-gens N] [-pop N] [-par N] [-seed N] [-summary] [-rtl FILE]
//	         [-hints FILE] [-save-hints FILE] [-journal FILE] [-debug-addr ADDR]
//	         [-checkpoint FILE] [-checkpoint-every N] [-resume FILE]
//	         [-eval-timeout DUR] [-eval-retries N] [-quarantine-after N]
//	         [-fault-rate F] [-fault-failures N] [-fault-seed N]
//
// Queries:
//
//	noc:  max-frequency | min-luts | min-area-delay
//	fft:  min-luts | max-throughput | max-throughput-per-lut | max-snr
//	gemm: min-luts | max-gmacs | max-gmacs-per-lut
//
// Long searches survive crashes and preemption: -checkpoint snapshots the
// full GA state every -checkpoint-every generations (atomic rename, never a
// torn file), SIGINT/SIGTERM drains in-flight evaluations and writes a
// final snapshot, and -resume continues a run to the byte-identical result
// the uninterrupted run would have produced. The supervised evaluation path
// (-eval-timeout/-eval-retries/-quarantine-after) retries transient
// synthesis failures with jittered exponential backoff and quarantines
// persistently failing points as infeasible; -fault-rate injects
// deterministic transient faults to exercise it.
//
// Exit codes: 0 success, 1 fatal error, 2 usage error, 3 interrupted with
// checkpoint saved (resume with -resume).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/resilience"
	"nautilus/internal/resilience/faulty"
	"nautilus/internal/telemetry"
)

// Exit codes, so orchestration around long searches can tell a crash from
// a clean preemption it should resume.
const (
	exitOK          = 0
	exitFatal       = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// After the first signal starts the graceful drain, restore default
		// handling so a second signal kills the process immediately.
		<-ctx.Done()
		stop()
	}()
	code, err := run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nautilus: %v\n", err)
	}
	os.Exit(code)
}

// validateFlags rejects GA shape flags that would otherwise fail deep in
// the engine (or silently misbehave) with a clear front-door error.
func validateFlags(pop, gens, par int, seed int64) error {
	if pop < 2 {
		return fmt.Errorf("-pop must be at least 2 (crossover needs two parents), got %d", pop)
	}
	if gens < 1 {
		return fmt.Errorf("-gens must be at least 1, got %d", gens)
	}
	if par < 1 {
		return fmt.Errorf("-par must be at least 1, got %d", par)
	}
	if seed < 0 {
		return fmt.Errorf("-seed must be non-negative, got %d", seed)
	}
	return nil
}

// validateResilienceFlags front-doors the checkpoint/supervision flags.
func validateResilienceFlags(checkpoint string, every int, timeout time.Duration,
	retries, quarantine int, faultRate float64, faultFailures int) error {
	if every < 1 {
		return fmt.Errorf("-checkpoint-every must be at least 1 generation, got %d", every)
	}
	if timeout < 0 {
		return fmt.Errorf("-eval-timeout must be non-negative, got %v", timeout)
	}
	if retries < 0 {
		return fmt.Errorf("-eval-retries must be non-negative (0 = default), got %d", retries)
	}
	if quarantine < 0 {
		return fmt.Errorf("-quarantine-after must be non-negative (0 = default), got %d", quarantine)
	}
	if faultRate < 0 || faultRate > 1 {
		return fmt.Errorf("-fault-rate must be in [0,1], got %v", faultRate)
	}
	if faultFailures < 0 {
		return fmt.Errorf("-fault-failures must be non-negative (0 = default), got %d", faultFailures)
	}
	return nil
}

func run(ctx context.Context) (int, error) {
	ip := flag.String("ip", "fft", "IP generator: noc, fft, or gemm")
	query := flag.String("query", "min-luts", "optimization query (see doc)")
	guidance := flag.String("guidance", "strong", "baseline, weak, or strong")
	gens := flag.Int("gens", 80, "GA generations")
	pop := flag.Int("pop", 10, "GA population size")
	par := flag.Int("par", runtime.GOMAXPROCS(0),
		"parallel fitness evaluations (capped by population size; results are identical at any level)")
	seed := flag.Int64("seed", 1, "random seed")
	summary := flag.Bool("summary", false, "print the end-of-run telemetry summary (per-generation trajectory, cache, hints, pool)")
	trace := flag.Bool("trace", false, "alias for -summary (the old per-generation trace is part of the summary)")
	journal := flag.String("journal", "", "append structured run events as JSON lines to this file")
	debugAddr := flag.String("debug-addr", "", "serve live metrics (expvar) and pprof on this address, e.g. localhost:6060")
	emitRTL := flag.String("rtl", "", "write the best design's Verilog to this file")
	hintsIn := flag.String("hints", "", "load the hint library from this JSON file instead of the built-in one")
	hintsOut := flag.String("save-hints", "", "write the active hint library to this JSON file")
	checkpoint := flag.String("checkpoint", "", "snapshot full GA state to this file (atomic rename) for crash recovery")
	checkpointEvery := flag.Int("checkpoint-every", 1, "snapshot every N generations (with -checkpoint)")
	resume := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint (-ip and -seed must match)")
	evalTimeout := flag.Duration("eval-timeout", 0, "per-attempt evaluation deadline, e.g. 30s (0 = none)")
	evalRetries := flag.Int("eval-retries", 0, "max attempts per evaluation for transient failures (0 = default 3)")
	quarantineAfter := flag.Int("quarantine-after", 0, "demote a point to infeasible after N exhausted retry rounds (0 = default 2)")
	faultRate := flag.Float64("fault-rate", 0, "inject deterministic transient faults on this fraction of design points (resilience testing)")
	faultFailures := flag.Int("fault-failures", 0, "failed attempts before an injected transient point succeeds (0 = default 1)")
	faultSeed := flag.Int64("fault-seed", 1, "seed decorrelating injected faults from the search seed")
	flag.Parse()
	if err := validateFlags(*pop, *gens, *par, *seed); err != nil {
		return exitUsage, err
	}
	if err := validateResilienceFlags(*checkpoint, *checkpointEvery, *evalTimeout,
		*evalRetries, *quarantineAfter, *faultRate, *faultFailures); err != nil {
		return exitUsage, err
	}

	// The catalog resolves (ip, query) to the space, evaluator, default
	// hint library, and objective - the same resolution nautserve performs,
	// so a CLI run and a server session with equal settings are
	// byte-identical searches.
	entry, err := catalog.Lookup(*ip, *query)
	if err != nil {
		return exitUsage, err
	}
	space, eval, obj := entry.Space, entry.Eval, entry.Objective

	lib := entry.Library
	if *hintsIn != "" {
		f, err := os.Open(*hintsIn)
		if err != nil {
			return exitFatal, err
		}
		lib, err = core.LoadLibrary(space, f)
		f.Close()
		if err != nil {
			return exitFatal, err
		}
	}
	if *hintsOut != "" {
		f, err := os.Create(*hintsOut)
		if err != nil {
			return exitFatal, err
		}
		if err := lib.SaveJSON(f); err != nil {
			f.Close()
			return exitFatal, err
		}
		if err := f.Close(); err != nil {
			return exitFatal, err
		}
		fmt.Printf("hint library written to %s\n", *hintsOut)
	}

	guid, err := entry.Guidance(*guidance, lib)
	if err != nil {
		if *guidance != catalog.GuidanceBaseline && *guidance != catalog.GuidanceWeak &&
			*guidance != catalog.GuidanceStrong {
			return exitUsage, err
		}
		return exitFatal, err
	}

	// Telemetry assembly: a collector backs the -summary report and the
	// debug endpoint, a journal streams events to disk. With none of the
	// observability flags set the recorder stays nil and the run pays
	// nothing for it.
	wantSummary := *summary || *trace
	var col *telemetry.Collector
	var recorders []telemetry.Recorder
	if wantSummary || *debugAddr != "" {
		col = telemetry.NewCollector(nil)
		recorders = append(recorders, col)
	}
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			return exitFatal, fmt.Errorf("journal: %w", err)
		}
		defer f.Close()
		j := telemetry.NewJournal(f)
		defer j.Close()
		recorders = append(recorders, j)
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, col.Registry())
		if err != nil {
			return exitFatal, fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Printf("debug endpoint:  http://%s/debug/vars\n", addr)
	}

	// A registry shared with the collector surfaces resilience and
	// checkpoint metrics in -summary and on the debug endpoint.
	var reg *telemetry.Registry
	if col != nil {
		reg = col.Registry()
	}

	// Evaluation chain: base evaluator, then (optionally) deterministic
	// fault injection, then the supervision layer with per-attempt
	// deadlines, retries, and the quarantine breaker. Retries absorb
	// transient failures before they reach the GA, so a supervised run's
	// search results match the fault-free run's byte for byte.
	ctxEval := dataset.AdaptContext(eval)
	if *faultRate > 0 {
		inj, err := faulty.NewContext(space, ctxEval, faulty.Config{
			TransientRate:     *faultRate,
			TransientFailures: *faultFailures,
			Seed:              *faultSeed,
		})
		if err != nil {
			return exitUsage, err
		}
		ctxEval = inj.Evaluate
	}
	var sup *resilience.Supervisor
	if *evalTimeout > 0 || *evalRetries > 0 || *quarantineAfter > 0 || *faultRate > 0 {
		var err error
		sup, err = resilience.NewSupervisor(space, ctxEval, resilience.Policy{
			Timeout:         *evalTimeout,
			MaxAttempts:     *evalRetries,
			QuarantineAfter: *quarantineAfter,
		}, reg)
		if err != nil {
			return exitUsage, err
		}
		ctxEval = sup.Evaluator()
	}

	cfg := ga.Config{PopulationSize: *pop, Generations: *gens, Seed: *seed, Parallelism: *par}
	if len(recorders) > 0 {
		cfg.Recorder = telemetry.Multi(recorders...)
	}
	if *checkpoint != "" {
		saver := resilience.NewSaver(*checkpoint, space, reg)
		cfg.Checkpoint = saver.Save
		cfg.CheckpointEvery = *checkpointEvery
	}
	if *resume != "" {
		snap, err := resilience.Load(*resume, space, *seed)
		if err != nil {
			return exitFatal, err
		}
		cfg.Resume = snap
		fmt.Fprintf(os.Stderr, "resuming from %s at generation %d\n", *resume, snap.Generation)
	}
	res, err := core.RunContext(ctx, space, obj, ctxEval, cfg, guid)
	if err != nil {
		return exitFatal, err
	}

	if wantSummary {
		if err := col.WriteSummary(os.Stdout); err != nil {
			return exitFatal, err
		}
	}
	if sup != nil {
		if q := sup.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined:     %d design points demoted to infeasible after repeated failures\n", len(q))
		}
	}
	if res.Interrupted {
		if *checkpoint == "" {
			return exitFatal, fmt.Errorf("interrupted (no -checkpoint configured; progress lost)")
		}
		fmt.Fprintf(os.Stderr, "nautilus: interrupted; state saved to %s (continue with -resume %s)\n",
			*checkpoint, *checkpoint)
		return exitInterrupted, nil
	}

	if res.BestPoint == nil {
		return exitFatal, fmt.Errorf("no feasible design found")
	}
	m, err := eval(res.BestPoint)
	if err != nil {
		return exitFatal, err
	}
	fmt.Printf("query:           %s on %s (%s guidance)\n", obj, *ip, *guidance)
	fmt.Printf("best value:      %.4g\n", res.BestValue)
	fmt.Printf("configuration:   %s\n", space.Describe(res.BestPoint))
	fmt.Printf("all metrics:     %s\n", m)
	fmt.Printf("synthesis jobs:  %d distinct design evaluations (%d queries, %.1f%% cache hits)\n",
		res.Cache.Distinct, res.Cache.Total, 100*res.Cache.HitRate)

	if *emitRTL != "" {
		design, err := entry.RTL(res.BestPoint)
		if err != nil {
			return exitFatal, fmt.Errorf("emit RTL: %w", err)
		}
		if err := os.WriteFile(*emitRTL, []byte(design.Verilog()), 0o644); err != nil {
			return exitFatal, err
		}
		stats := design.Summarize()
		fmt.Printf("RTL written:     %s (%d modules, %d instances)\n", *emitRTL, stats.Modules, stats.Instances)
	}
	return exitOK, nil
}
