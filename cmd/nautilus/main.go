// Command nautilus runs a guided design-space search query against one of
// the bundled IP generators and prints the best configuration found along
// with the search trace - the end-user experience the paper targets: an IP
// user states an optimization goal, and the generator tunes its own
// parameters.
//
// Usage:
//
//	nautilus -ip noc|fft|gemm -query QUERY [-guidance baseline|weak|strong]
//	         [-gens N] [-pop N] [-par N] [-seed N] [-trace] [-rtl FILE]
//	         [-hints FILE] [-save-hints FILE]
//
// Queries:
//
//	noc:  max-frequency | min-luts | min-area-delay
//	fft:  min-luts | max-throughput | max-throughput-per-lut | max-snr
//	gemm: min-luts | max-gmacs | max-gmacs-per-lut
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/gemm"
	"nautilus/internal/hintcal"
	"nautilus/internal/metrics"
	"nautilus/internal/noc"
	"nautilus/internal/param"
	"nautilus/internal/rtl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nautilus: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ip := flag.String("ip", "fft", "IP generator: noc, fft, or gemm")
	query := flag.String("query", "min-luts", "optimization query (see doc)")
	guidance := flag.String("guidance", "strong", "baseline, weak, or strong")
	gens := flag.Int("gens", 80, "GA generations")
	pop := flag.Int("pop", 10, "GA population size")
	par := flag.Int("par", runtime.GOMAXPROCS(0),
		"parallel fitness evaluations (capped by population size; results are identical at any level)")
	seed := flag.Int64("seed", 1, "random seed")
	trace := flag.Bool("trace", false, "print per-generation progress")
	emitRTL := flag.String("rtl", "", "write the best design's Verilog to this file")
	hintsIn := flag.String("hints", "", "load the hint library from this JSON file instead of the built-in one")
	hintsOut := flag.String("save-hints", "", "write the active hint library to this JSON file")
	flag.Parse()

	var (
		space *param.Space
		eval  dataset.Evaluator
		lib   *core.Library
		obj   metrics.Objective
		// weights expresses the query for hint compilation (nil = plain
		// metric objective).
		weights map[string]float64
	)

	switch *ip {
	case "noc":
		s := noc.RouterSpace()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return noc.RouterEvaluate(s, pt) }
		// Non-expert hints, estimated from ~80 synthesized designs - the
		// paper's NoC methodology.
		var err error
		lib, _, err = hintcal.Estimate(s, eval, []string{metrics.FmaxMHz, metrics.LUTs},
			hintcal.Options{Budget: 80, Seed: 5})
		if err != nil {
			return err
		}
		switch *query {
		case "max-frequency":
			obj = metrics.MaximizeMetric(metrics.FmaxMHz)
		case "min-luts":
			obj = metrics.MinimizeMetric(metrics.LUTs)
		case "min-area-delay":
			obj = metrics.AreaDelayProduct()
			weights = map[string]float64{metrics.LUTs: 1, metrics.FmaxMHz: -1}
		default:
			return fmt.Errorf("unknown noc query %q", *query)
		}
	case "fft":
		s := fft.Space()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return fft.Evaluate(s, pt) }
		lib = fft.ExpertHints() // expert hints ship with the generator
		switch *query {
		case "min-luts":
			obj = metrics.MinimizeMetric(metrics.LUTs)
		case "max-throughput":
			obj = metrics.MaximizeMetric(metrics.ThroughputMSPS)
		case "max-throughput-per-lut":
			obj = metrics.ThroughputPerLUT()
			weights = map[string]float64{"throughput_per_lut": 1}
		case "max-snr":
			obj = metrics.MaximizeMetric(metrics.SNRdB)
		default:
			return fmt.Errorf("unknown fft query %q", *query)
		}
	case "gemm":
		s := gemm.Space()
		space = s
		eval = func(pt param.Point) (metrics.Metrics, error) { return gemm.Evaluate(s, pt) }
		lib = gemm.ExpertHints()
		switch *query {
		case "min-luts":
			obj = metrics.MinimizeMetric(metrics.LUTs)
		case "max-gmacs":
			obj = metrics.MaximizeMetric(gemm.MetricGMACS)
		case "max-gmacs-per-lut":
			obj = metrics.MaximizeDerived(gemm.MetricEfficiency, metrics.Ratio(gemm.MetricGMACS, metrics.LUTs))
			weights = map[string]float64{gemm.MetricEfficiency: 1}
		default:
			return fmt.Errorf("unknown gemm query %q", *query)
		}
	default:
		return fmt.Errorf("unknown IP %q", *ip)
	}

	if *hintsIn != "" {
		f, err := os.Open(*hintsIn)
		if err != nil {
			return err
		}
		lib, err = core.LoadLibrary(space, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *hintsOut != "" {
		f, err := os.Create(*hintsOut)
		if err != nil {
			return err
		}
		if err := lib.SaveJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("hint library written to %s\n", *hintsOut)
	}

	var guid *core.Guidance
	switch *guidance {
	case "baseline":
	case "weak", "strong":
		conf := 0.9
		if *guidance == "weak" {
			conf = 0.4
		}
		var err error
		if weights != nil {
			guid, err = lib.Guidance(obj.Direction(), weights, conf)
		} else {
			guid, err = lib.GuidanceForObjective(obj, conf)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown guidance level %q", *guidance)
	}

	cfg := ga.Config{PopulationSize: *pop, Generations: *gens, Seed: *seed, Parallelism: *par}
	res, err := core.Run(space, obj, eval, cfg, guid)
	if err != nil {
		return err
	}

	if *trace {
		fmt.Println("gen  distinct-evals  best-so-far")
		for _, gp := range res.Trajectory {
			fmt.Printf("%3d  %14d  %.4g\n", gp.Generation, gp.DistinctEvals, gp.BestValue)
		}
	}

	if res.BestPoint == nil {
		return fmt.Errorf("no feasible design found")
	}
	m, err := eval(res.BestPoint)
	if err != nil {
		return err
	}
	fmt.Printf("query:           %s on %s (%s guidance)\n", obj, *ip, *guidance)
	fmt.Printf("best value:      %.4g\n", res.BestValue)
	fmt.Printf("configuration:   %s\n", space.Describe(res.BestPoint))
	fmt.Printf("all metrics:     %s\n", m)
	fmt.Printf("synthesis jobs:  %d distinct design evaluations\n", res.DistinctEvals)

	if *emitRTL != "" {
		var design *rtl.Design
		switch *ip {
		case "noc":
			design, err = noc.DecodeRouter(space, res.BestPoint).Verilog()
		case "fft":
			design, err = fft.Decode(space, res.BestPoint).Verilog()
		case "gemm":
			design, err = gemm.Decode(space, res.BestPoint).Verilog()
		}
		if err != nil {
			return fmt.Errorf("emit RTL: %w", err)
		}
		if err := os.WriteFile(*emitRTL, []byte(design.Verilog()), 0o644); err != nil {
			return err
		}
		stats := design.Summarize()
		fmt.Printf("RTL written:     %s (%d modules, %d instances)\n", *emitRTL, stats.Modules, stats.Instances)
	}
	return nil
}
