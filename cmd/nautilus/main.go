// Command nautilus runs a guided design-space search query against one of
// the bundled IP generators and prints the best configuration found along
// with the search trace - the end-user experience the paper targets: an IP
// user states an optimization goal, and the generator tunes its own
// parameters.
//
// Usage:
//
//	nautilus -ip noc|fft|gemm -query QUERY [-guidance baseline|weak|strong]
//	         [-mode scalar|pareto|portfolio] [-queries Q1,Q2,...]
//	         [-gens N] [-pop N] [-par N] [-seed N] [-summary] [-rtl FILE]
//	         [-hints FILE] [-save-hints FILE] [-journal FILE] [-debug-addr ADDR]
//	         [-trace-out FILE] [-trace-buffer N]
//	         [-checkpoint FILE] [-checkpoint-every N] [-resume FILE]
//	         [-eval-timeout DUR] [-eval-retries N] [-quarantine-after N]
//	         [-fault-rate F] [-fault-failures N] [-fault-seed N]
//
// Queries:
//
//	noc:  max-frequency | min-luts | min-area-delay
//	fft:  min-luts | max-throughput | max-throughput-per-lut | max-snr
//	gemm: min-luts | max-gmacs | max-gmacs-per-lut
//
// Modes: the default scalar mode optimizes the single -query objective.
// -mode pareto trades two or more objectives off simultaneously: pass them
// as -queries min-luts,max-throughput (the first is the primary objective
// the scalar result lines describe) and the run prints the full
// non-dominated front with its hypervolume instead of a single winner.
// -mode portfolio races the guided GA, the unguided baseline GA, and
// simulated annealing concurrently over one shared evaluation cache on the
// -query objective and reports each strategy's private outcome alongside
// the merged best; the race re-runs from scratch on restart, so it cannot
// be combined with -checkpoint or -resume.
//
// Long searches survive crashes and preemption: -checkpoint snapshots the
// full GA state every -checkpoint-every generations (atomic rename, never a
// torn file), SIGINT/SIGTERM drains in-flight evaluations and writes a
// final snapshot, and -resume continues a run to the byte-identical result
// the uninterrupted run would have produced. The supervised evaluation path
// (-eval-timeout/-eval-retries/-quarantine-after) retries transient
// synthesis failures with jittered exponential backoff and quarantines
// persistently failing points as infeasible; -fault-rate injects
// deterministic transient faults to exercise it.
//
// Exit codes: 0 success, 1 fatal error, 2 usage error, 3 interrupted with
// checkpoint saved (resume with -resume).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"nautilus/internal/catalog"
	"nautilus/internal/cliflags"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/resilience"
	"nautilus/internal/resilience/faulty"
)

// Exit codes, so orchestration around long searches can tell a crash from
// a clean preemption it should resume.
const (
	exitOK          = 0
	exitFatal       = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// After the first signal starts the graceful drain, restore default
		// handling so a second signal kills the process immediately.
		<-ctx.Done()
		stop()
	}()
	code, err := run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nautilus: %v\n", err)
	}
	os.Exit(code)
}

// validateFlags rejects GA shape flags that would otherwise fail deep in
// the engine (or silently misbehave) with a clear front-door error.
func validateFlags(pop, gens int, seed int64) error {
	if pop < 2 {
		return fmt.Errorf("-pop must be at least 2 (crossover needs two parents), got %d", pop)
	}
	if gens < 1 {
		return fmt.Errorf("-gens must be at least 1, got %d", gens)
	}
	if seed < 0 {
		return fmt.Errorf("-seed must be non-negative, got %d", seed)
	}
	return nil
}

// validateModeFlags front-doors the mode surface: pareto needs two or more
// distinct -queries (and owns the query choice, so an explicit -query is a
// conflict), the other modes must not pass -queries, and portfolio races
// cannot checkpoint or resume (the race restarts from scratch).
func validateModeFlags(mode string, querySet bool, queries []string, checkpoint, resume string) error {
	switch mode {
	case "", core.ModeScalar, core.ModePortfolio:
		if len(queries) > 0 {
			return fmt.Errorf("-queries requires -mode pareto (got %q)", mode)
		}
		if mode == core.ModePortfolio && (checkpoint != "" || resume != "") {
			return fmt.Errorf("-mode portfolio cannot checkpoint or resume: the race re-runs from scratch on restart")
		}
	case core.ModePareto:
		if querySet {
			return fmt.Errorf("-mode pareto takes its objectives from -queries; drop -query")
		}
		if len(queries) < 2 {
			return fmt.Errorf("-mode pareto needs at least two comma-separated -queries, got %d", len(queries))
		}
		seen := make(map[string]bool, len(queries))
		for _, q := range queries {
			if seen[q] {
				return fmt.Errorf("-queries lists %q twice", q)
			}
			seen[q] = true
		}
	default:
		return fmt.Errorf("-mode must be scalar, pareto, or portfolio, got %q", mode)
	}
	return nil
}

// splitQueries parses the comma-separated -queries value, trimming blanks.
func splitQueries(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, q := range strings.Split(s, ",") {
		if q = strings.TrimSpace(q); q != "" {
			out = append(out, q)
		}
	}
	return out
}

// validateResilienceFlags front-doors the checkpoint and fault-injection
// flags (the supervision flags validate through cliflags).
func validateResilienceFlags(every int, faultRate float64, faultFailures int) error {
	if every < 1 {
		return fmt.Errorf("-checkpoint-every must be at least 1 generation, got %d", every)
	}
	if faultRate < 0 || faultRate > 1 {
		return fmt.Errorf("-fault-rate must be in [0,1], got %v", faultRate)
	}
	if faultFailures < 0 {
		return fmt.Errorf("-fault-failures must be non-negative (0 = default), got %d", faultFailures)
	}
	return nil
}

func run(ctx context.Context) (int, error) {
	ip := flag.String("ip", "fft", "IP generator: noc, fft, or gemm")
	query := flag.String("query", "min-luts", "optimization query (see doc)")
	mode := flag.String("mode", core.ModeScalar, "search mode: scalar, pareto, or portfolio")
	queriesFlag := flag.String("queries", "", "comma-separated objectives for -mode pareto (first is primary)")
	guidance := flag.String("guidance", "strong", "baseline, weak, or strong")
	gens := flag.Int("gens", 80, "GA generations")
	pop := flag.Int("pop", 10, "GA population size")
	par := cliflags.NewParallelism(flag.CommandLine, runtime.GOMAXPROCS(0), false)
	seed := flag.Int64("seed", 1, "random seed")
	obs := cliflags.NewObservability(flag.CommandLine, true)
	trc := cliflags.NewTracing(flag.CommandLine)
	emitRTL := flag.String("rtl", "", "write the best design's Verilog to this file")
	hintsIn := flag.String("hints", "", "load the hint library from this JSON file instead of the built-in one")
	hintsOut := flag.String("save-hints", "", "write the active hint library to this JSON file")
	checkpoint := flag.String("checkpoint", "", "snapshot full GA state to this file (atomic rename) for crash recovery")
	checkpointEvery := flag.Int("checkpoint-every", 1, "snapshot every N generations (with -checkpoint)")
	resume := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint (-ip and -seed must match)")
	sup := cliflags.NewSupervision(flag.CommandLine, true)
	faultRate := flag.Float64("fault-rate", 0, "inject deterministic transient faults on this fraction of design points (resilience testing)")
	faultFailures := flag.Int("fault-failures", 0, "failed attempts before an injected transient point succeeds (0 = default 1)")
	faultSeed := flag.Int64("fault-seed", 1, "seed decorrelating injected faults from the search seed")
	flag.Parse()
	if err := validateFlags(*pop, *gens, *seed); err != nil {
		return exitUsage, err
	}
	querySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "query" {
			querySet = true
		}
	})
	queries := splitQueries(*queriesFlag)
	if err := validateModeFlags(*mode, querySet, queries, *checkpoint, *resume); err != nil {
		return exitUsage, err
	}
	if err := par.Validate(); err != nil {
		return exitUsage, err
	}
	if err := sup.Validate(); err != nil {
		return exitUsage, err
	}
	if err := trc.Validate(); err != nil {
		return exitUsage, err
	}
	if err := validateResilienceFlags(*checkpointEvery, *faultRate, *faultFailures); err != nil {
		return exitUsage, err
	}

	// The catalog resolves (ip, query) to the space, evaluator, default
	// hint library, and objective - the same resolution nautserve performs,
	// so a CLI run and a server session with equal settings are
	// byte-identical searches. A pareto run resolves every -queries entry
	// against the same IP (all queries of an IP share one space) and leads
	// with the first as the primary objective.
	var objs []metrics.Objective
	if *mode == core.ModePareto {
		for _, q := range queries {
			e, err := catalog.Lookup(*ip, q)
			if err != nil {
				return exitUsage, err
			}
			objs = append(objs, e.Objective)
		}
		*query = queries[0]
	}
	entry, err := catalog.Lookup(*ip, *query)
	if err != nil {
		return exitUsage, err
	}
	space, eval, obj := entry.Space, entry.Eval, entry.Objective

	lib := entry.Library
	if *hintsIn != "" {
		f, err := os.Open(*hintsIn)
		if err != nil {
			return exitFatal, err
		}
		lib, err = core.LoadLibrary(space, f)
		f.Close()
		if err != nil {
			return exitFatal, err
		}
	}
	if *hintsOut != "" {
		f, err := os.Create(*hintsOut)
		if err != nil {
			return exitFatal, err
		}
		if err := lib.SaveJSON(f); err != nil {
			f.Close()
			return exitFatal, err
		}
		if err := f.Close(); err != nil {
			return exitFatal, err
		}
		fmt.Printf("hint library written to %s\n", *hintsOut)
	}

	guid, err := entry.Guidance(*guidance, lib)
	if err != nil {
		if *guidance != catalog.GuidanceBaseline && *guidance != catalog.GuidanceWeak &&
			*guidance != catalog.GuidanceStrong {
			return exitUsage, err
		}
		return exitFatal, err
	}

	// Telemetry assembly: a collector backs the -summary report and the
	// debug endpoint, a journal streams events to disk. With none of the
	// observability flags set the recorder stays nil and the run pays
	// nothing for it.
	stack, err := obs.Build()
	if err != nil {
		return exitFatal, err
	}
	defer stack.Close()

	// Span tracing is observational only: the tracer's ID stream is seeded
	// separately from the search RNG, so a traced run's results match the
	// untraced run's byte for byte.
	tstack, err := trc.Build("", *seed)
	if err != nil {
		return exitFatal, err
	}
	defer tstack.Close()

	// A registry shared with the collector surfaces resilience and
	// checkpoint metrics in -summary and on the debug endpoint.
	reg := stack.Registry()

	// Evaluation chain: base evaluator, then (optionally) deterministic
	// fault injection, then the supervision layer with per-attempt
	// deadlines, retries, and the quarantine breaker. Retries absorb
	// transient failures before they reach the GA, so a supervised run's
	// search results match the fault-free run's byte for byte.
	ctxEval := dataset.AdaptContext(eval)
	if *faultRate > 0 {
		inj, err := faulty.NewContext(space, ctxEval, faulty.Config{
			TransientRate:     *faultRate,
			TransientFailures: *faultFailures,
			Seed:              *faultSeed,
		})
		if err != nil {
			return exitUsage, err
		}
		ctxEval = inj.Evaluate
	}
	var supv *resilience.Supervisor
	if sup.Enabled() || *faultRate > 0 {
		var err error
		supv, err = resilience.NewSupervisor(space, ctxEval, sup.Policy(), reg)
		if err != nil {
			return exitUsage, err
		}
		ctxEval = supv.Evaluator()
	}

	cfg := ga.Config{PopulationSize: *pop, Generations: *gens, Seed: *seed, Parallelism: par.Value()}
	cfg.Recorder = stack.Recorder
	if *checkpoint != "" {
		saver := resilience.NewSaver(*checkpoint, space, reg)
		cfg.Checkpoint = saver.Save
		cfg.CheckpointEvery = *checkpointEvery
	}
	if *resume != "" {
		snap, err := resilience.Load(*resume, space, *seed)
		if err != nil {
			return exitFatal, err
		}
		cfg.Resume = snap
		fmt.Fprintf(os.Stderr, "resuming from %s at generation %d\n", *resume, snap.Generation)
	}
	opts := []core.SearchOption{core.WithGuidance(guid)}
	if tstack.Tracer != nil {
		opts = append(opts, core.WithTracer(tstack.Tracer))
	}
	req := core.SearchRequest{
		Space:       space,
		Mode:        *mode,
		Objective:   obj,
		Objectives:  objs,
		EvaluateCtx: ctxEval,
		Config:      cfg,
	}
	res, err := core.Search(ctx, req, opts...)
	if err != nil {
		// Post-mortem: the flight recorder holds the last spans before the
		// failure - where the final moments of the run went.
		tstack.DumpRing(os.Stderr)
		return exitFatal, err
	}

	if obs.WantSummary() {
		if err := stack.Collector.WriteSummary(os.Stdout); err != nil {
			return exitFatal, err
		}
		if err := tstack.WriteSummary(os.Stdout); err != nil {
			return exitFatal, err
		}
	}
	if supv != nil {
		if q := supv.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined:     %d design points demoted to infeasible after repeated failures\n", len(q))
		}
	}
	if res.Interrupted {
		tstack.DumpRing(os.Stderr)
		if *checkpoint == "" {
			return exitFatal, fmt.Errorf("interrupted (no -checkpoint configured; progress lost)")
		}
		fmt.Fprintf(os.Stderr, "nautilus: interrupted; state saved to %s (continue with -resume %s)\n",
			*checkpoint, *checkpoint)
		return exitInterrupted, nil
	}

	if res.BestPoint == nil {
		return exitFatal, fmt.Errorf("no feasible design found")
	}
	m, err := eval(res.BestPoint)
	if err != nil {
		return exitFatal, err
	}
	if *mode == core.ModePareto {
		fmt.Printf("query:           pareto over %s on %s (%s guidance)\n",
			strings.Join(queries, ", "), *ip, *guidance)
	} else {
		fmt.Printf("query:           %s on %s (%s guidance)\n", obj, *ip, *guidance)
	}
	fmt.Printf("best value:      %.4g\n", res.BestValue)
	fmt.Printf("configuration:   %s\n", space.Describe(res.BestPoint))
	fmt.Printf("all metrics:     %s\n", m)
	fmt.Printf("synthesis jobs:  %d distinct design evaluations (%d queries, %.1f%% cache hits)\n",
		res.Cache.Distinct, res.Cache.Total, 100*res.Cache.HitRate)

	// Pareto runs print the whole trade-off surface: one row per
	// non-dominated design, values in -queries order, best-primary first
	// (the row the scalar lines above describe).
	if len(res.Front) > 0 {
		fmt.Printf("pareto front:    %d non-dominated designs, hypervolume %.4g\n",
			len(res.Front), res.Hypervolume)
		for _, fp := range res.Front {
			vals := make([]string, len(fp.Values))
			for d, v := range fp.Values {
				vals[d] = fmt.Sprintf("%s=%.4g", queries[d], v)
			}
			fmt.Printf("  %-44s %s\n", strings.Join(vals, " "), space.Describe(fp.Point))
		}
	}

	// Portfolio runs print each raced strategy's private outcome; the
	// starred winner is the strategy whose best the merged result adopted.
	for _, o := range res.Portfolio {
		marker := " "
		if o.Winner {
			marker = "*"
		}
		value := "infeasible"
		if o.Feasible {
			value = fmt.Sprintf("best %.4g", o.BestValue)
		}
		fmt.Printf("  %s %-9s %-14s %d distinct evals\n", marker, o.Strategy, value, o.DistinctEvals)
	}

	if *emitRTL != "" {
		design, err := entry.RTL(res.BestPoint)
		if err != nil {
			return exitFatal, fmt.Errorf("emit RTL: %w", err)
		}
		if err := os.WriteFile(*emitRTL, []byte(design.Verilog()), 0o644); err != nil {
			return exitFatal, err
		}
		stats := design.Summarize()
		fmt.Printf("RTL written:     %s (%d modules, %d instances)\n", *emitRTL, stats.Modules, stats.Instances)
	}
	return exitOK, nil
}
