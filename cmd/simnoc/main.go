// Command simnoc drives the cycle-based NoC simulator directly: pick a
// topology, router configuration, and traffic pattern, and measure
// latency-throughput curves or the saturation point - the characterization
// step that feeds simulation-derived metrics into Nautilus queries.
//
// Usage:
//
//	simnoc -topology mesh -endpoints 64 -vcs 2 -depth 4 [-traffic uniform]
//	       [-loads 0.05,0.1,0.2,0.4] [-saturation] [-packet 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nautilus/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simnoc: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	topology := flag.String("topology", "mesh", "ring, double_ring, conc_ring, conc_double_ring, mesh, torus, fat_tree")
	endpoints := flag.Int("endpoints", 64, "endpoint count (power of two >= 16; square for mesh/torus)")
	vcs := flag.Int("vcs", 2, "virtual channels per port")
	depth := flag.Int("depth", 4, "flit buffer depth per VC")
	pipeline := flag.Int("pipeline", 2, "cycles per router+link hop")
	traffic := flag.String("traffic", netsim.TrafficUniform, "traffic pattern")
	loads := flag.String("loads", "0.05,0.1,0.2,0.3,0.5", "comma-separated offered loads (flits/endpoint/cycle)")
	saturation := flag.Bool("saturation", false, "also search for the saturation throughput")
	packet := flag.Int("packet", 4, "packet length in flits")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	switch {
	case *vcs < 1:
		return fmt.Errorf("-vcs must be at least 1, got %d", *vcs)
	case *depth < 1:
		return fmt.Errorf("-depth must be at least 1, got %d", *depth)
	case *pipeline < 1:
		return fmt.Errorf("-pipeline must be at least 1, got %d", *pipeline)
	case *packet < 1:
		return fmt.Errorf("-packet must be at least 1, got %d", *packet)
	case *seed < 0:
		return fmt.Errorf("-seed must be non-negative, got %d", *seed)
	}

	topo, err := netsim.Build(*topology, *endpoints)
	if err != nil {
		return err
	}
	base := netsim.Config{
		Topology: topo,
		Router: netsim.RouterConfig{
			VCs: *vcs, BufDepth: *depth, PipelineLatency: *pipeline,
		},
		Traffic:     *traffic,
		PacketFlits: *packet,
		Seed:        *seed,
	}

	var loadVals []float64
	for _, part := range strings.Split(*loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad load %q: %w", part, err)
		}
		loadVals = append(loadVals, v)
	}

	fmt.Printf("%s, %d endpoints, %d VCs x %d flits, %s traffic, %d-flit packets\n",
		*topology, *endpoints, *vcs, *depth, *traffic, *packet)
	curve, err := netsim.Sweep(base, loadVals)
	if err != nil {
		return err
	}
	fmt.Println("offered   accepted  avg-latency(cyc)")
	for _, p := range curve {
		fmt.Printf("%7.3f   %7.3f  %10.1f\n", p.Offered, p.Throughput, p.AvgLatency)
	}

	if *saturation {
		sat, err := netsim.SaturationThroughput(base, 3, 8)
		if err != nil {
			return err
		}
		fmt.Printf("saturation throughput: %.3f flits/endpoint/cycle (latency <= 3x zero-load)\n", sat)
	}
	return nil
}
