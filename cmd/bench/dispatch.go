package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pool"
	"nautilus/internal/resilience"
	"nautilus/internal/resilience/faulty"
)

// dispatchReport compares the evaluation dispatch pipelines on the workload
// they exist for: a warm evaluation cache answering generation-shaped
// request batches (population-sized, with the duplicate genomes a
// converging GA produces) while the engine is configured for parallel
// evaluation. Three pipelines are measured, each timed from raw design
// points so identity construction (string key or genome hash) is part of
// the cost it really is:
//
//   - single: the legacy string-keyed point-at-a-time path;
//   - batch: the string-keyed batched path (PR 5's pipeline);
//   - hash: the hash-keyed batched hot path - no string key is built
//     anywhere on it.
//
// Identical comes from full GA searches run across every combination of key
// mode, dispatch mode, batch size, and parallelism and compared field for
// field, plus fault-injected supervised runs and checkpoint/resume runs.
type dispatchReport struct {
	Workload        string `json:"workload"`
	Runs            int    `json:"runs"`
	DispatchedEvals int64  `json:"dispatched_evals"`
	SingleNsPerEval int64  `json:"single_ns_per_eval"`
	BatchNsPerEval  int64  `json:"batch_ns_per_eval"`
	HashNsPerEval   int64  `json:"hash_ns_per_eval"`
	// Speedup is batch-over-single; HashSpeedup is hash-over-single, the
	// headline ratio the bench-smoke gate protects.
	Speedup     float64 `json:"speedup"`
	HashSpeedup float64 `json:"hash_speedup"`
	// Identical aggregates the three equivalence sweeps below.
	Identical         bool `json:"identical"`
	IdenticalKeyModes bool `json:"identical_key_modes"`
	IdenticalFaulted  bool `json:"identical_faulted"`
	IdenticalResume   bool `json:"identical_resume"`
}

// Dispatch workload shape: a GA generation of 32 individuals in the
// converged steady state - half the genomes are duplicates, every lookup
// is a warm hit - dispatched with 4-way evaluation parallelism configured
// (the setting a slow synthesis backend wants). The equivalence check runs
// full searches at the same scale.
const (
	dispatchPop      = 32
	dispatchDistinct = 16
	dispatchWarm     = 64
	dispatchGens     = 60
	dispatchRuns     = 5
	dispatchPar      = 4
	dispatchRounds   = 2500 // rounds per timed sample
	dispatchSamples  = 8    // interleaved samples per mode; best kept
	// dispatchFaultRate is the fraction of design points that fail
	// transiently (once, then succeed) in the fault-equivalence sweep.
	dispatchFaultRate = 0.20
)

// runDispatch measures the dispatch pipelines and verifies they produce
// identical search results under every configuration the engine supports.
func runDispatch() (dispatchReport, error) {
	rep := dispatchReport{
		Workload: fmt.Sprintf("fft warm cache, batches of %d (%d distinct), par=%d, GOMAXPROCS=1, identity built in-loop",
			dispatchPop, dispatchDistinct, dispatchPar),
		Runs: dispatchRuns,
	}
	var err error
	if rep.IdenticalKeyModes, err = dispatchKeyModesIdentical(); err != nil {
		return rep, err
	}
	if rep.IdenticalFaulted, err = dispatchFaultedIdentical(); err != nil {
		return rep, err
	}
	if rep.IdenticalResume, err = dispatchResumeIdentical(); err != nil {
		return rep, err
	}
	rep.Identical = rep.IdenticalKeyModes && rep.IdenticalFaulted && rep.IdenticalResume

	single, batch, hash, evals, err := dispatchThroughput()
	if err != nil {
		return rep, err
	}
	rep.DispatchedEvals = evals
	rep.SingleNsPerEval = single
	rep.BatchNsPerEval = batch
	rep.HashNsPerEval = hash
	if batch > 0 {
		rep.Speedup = float64(single) / float64(batch)
	}
	if hash > 0 {
		rep.HashSpeedup = float64(single) / float64(hash)
	}
	if !rep.Identical {
		return rep, fmt.Errorf("dispatch modes disagree (key modes ok=%v, faulted ok=%v, resume ok=%v)",
			rep.IdenticalKeyModes, rep.IdenticalFaulted, rep.IdenticalResume)
	}
	return rep, nil
}

// dispatchSearch runs one full FFT search with the given knobs.
func dispatchSearch(seed int64, keyMode, dispatch string, batchSize, par int, opts ...core.SearchOption) (ga.Result, error) {
	entry, err := catalog.Lookup("fft", "min-luts")
	if err != nil {
		return ga.Result{}, err
	}
	return core.Search(context.Background(), core.SearchRequest{
		Space:     entry.Space,
		Objective: entry.Objective,
		Evaluate:  entry.Eval,
		Config: ga.Config{
			PopulationSize: dispatchPop,
			Generations:    dispatchGens,
			Seed:           seed,
			Parallelism:    par,
			Dispatch:       dispatch,
			BatchSize:      batchSize,
			KeyMode:        keyMode,
		},
	}, opts...)
}

// dispatchKeyModesIdentical proves hash-keyed results byte-identical to
// string-keyed results across the full configuration matrix: both dispatch
// modes, batch sizes {1, 7, population}, and parallelism {1, 4}, over
// several seeds.
func dispatchKeyModesIdentical() (bool, error) {
	for seed := int64(1); seed <= dispatchRuns; seed++ {
		want, err := dispatchSearch(seed, ga.KeyModeString, ga.DispatchSingle, 0, 1)
		if err != nil {
			return false, err
		}
		for _, keyMode := range []string{ga.KeyModeHash, ga.KeyModeString} {
			for _, par := range []int{1, 4} {
				got, err := dispatchSearch(seed, keyMode, ga.DispatchSingle, 0, par)
				if err != nil {
					return false, err
				}
				if !reflect.DeepEqual(want, got) {
					return false, nil
				}
				for _, bs := range []int{1, 7, dispatchPop} {
					got, err := dispatchSearch(seed, keyMode, ga.DispatchBatch, bs, par)
					if err != nil {
						return false, err
					}
					if !reflect.DeepEqual(want, got) {
						return false, nil
					}
				}
			}
		}
	}
	return true, nil
}

// faultedSearch is dispatchSearch behind a deterministic 20%-transient
// fault injector with retry supervision - the environment a real flaky
// synthesis backend produces.
func faultedSearch(seed int64, keyMode string, par int) (ga.Result, error) {
	entry, err := catalog.Lookup("fft", "min-luts")
	if err != nil {
		return ga.Result{}, err
	}
	inj, err := faulty.New(entry.Space, entry.Eval, faulty.Config{
		TransientRate: dispatchFaultRate,
		Seed:          99,
	})
	if err != nil {
		return ga.Result{}, err
	}
	return core.Search(context.Background(), core.SearchRequest{
		Space:       entry.Space,
		Objective:   entry.Objective,
		EvaluateCtx: inj.Evaluate,
		Config: ga.Config{
			PopulationSize: dispatchPop,
			Generations:    dispatchGens,
			Seed:           seed,
			Parallelism:    par,
			KeyMode:        keyMode,
		},
	}, core.WithResilience(resilience.Policy{MaxAttempts: 3}, nil))
}

// dispatchFaultedIdentical proves the key modes stay byte-identical when a
// fifth of the space fails transiently under supervision: the hash path's
// withdraw/retry bookkeeping (open-addressed tombstones) must agree with
// the string path's map deletes.
func dispatchFaultedIdentical() (bool, error) {
	for seed := int64(1); seed <= dispatchRuns; seed++ {
		want, err := faultedSearch(seed, ga.KeyModeString, 1)
		if err != nil {
			return false, err
		}
		for _, keyMode := range []string{ga.KeyModeHash, ga.KeyModeString} {
			for _, par := range []int{1, 4} {
				got, err := faultedSearch(seed, keyMode, par)
				if err != nil {
					return false, err
				}
				if !reflect.DeepEqual(want, got) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// dispatchResumeIdentical proves checkpoint/resume is byte-identical across
// key modes: a run checkpointed mid-search and resumed must finish exactly
// where the uninterrupted string-keyed run does, in both modes (the
// checkpoint format itself is always string-keyed).
func dispatchResumeIdentical() (bool, error) {
	const seed = 3
	want, err := dispatchSearch(seed, ga.KeyModeString, ga.DispatchBatch, 0, dispatchPar)
	if err != nil {
		return false, err
	}
	for _, keyMode := range []string{ga.KeyModeHash, ga.KeyModeString} {
		var mid *ga.Snapshot
		_, err := dispatchSearch(seed, keyMode, ga.DispatchBatch, 0, dispatchPar,
			core.WithCheckpoint(func(s *ga.Snapshot) error {
				if s.Generation == dispatchGens/2 {
					mid = s
				}
				return nil
			}, 1))
		if err != nil {
			return false, err
		}
		if mid == nil {
			return false, fmt.Errorf("no checkpoint captured at generation %d", dispatchGens/2)
		}
		got, err := dispatchSearch(seed, keyMode, ga.DispatchBatch, 0, dispatchPar, core.WithResume(mid))
		if err != nil {
			return false, err
		}
		if !reflect.DeepEqual(want, got) {
			return false, nil
		}
	}
	return true, nil
}

// dispatchThroughput replays the warm generation-shaped workload through
// each dispatch path and returns ns per dispatched evaluation for all
// three, plus the dispatch count per mode. Each pass starts from raw
// points - key and hash construction happen inside the timed region,
// because that is the per-point cost the hash path exists to delete.
// GOMAXPROCS is pinned to 1 for the measurement so the number isolates
// dispatcher overhead (scheduling, locks, bookkeeping, identity building)
// from machine core count and stays comparable as a ratio across hosts.
func dispatchThroughput() (singleNs, batchNs, hashNs, evals int64, err error) {
	space := fft.Space()
	eval := func(pt param.Point) (metrics.Metrics, error) {
		return fft.Evaluate(space, pt)
	}
	stringCache := dataset.NewCache(space, eval)
	stringCache.SetKeyMode(dataset.KeyModeString)
	hashCache := dataset.NewCache(space, eval)

	// Warm both caches, then build the replayed request stream: each round
	// is one generation-shaped batch striding over the warm set with every
	// genome duplicated once, like a converged population.
	warm := make([]param.Point, dispatchWarm)
	for i := range warm {
		warm[i] = space.PointAt(uint64(i*131) % space.Cardinality())
	}
	ctx := context.Background()
	if _, _, err := stringCache.EvaluateBatchCtx(ctx, warm, dispatchPar); err != nil {
		return 0, 0, 0, 0, err
	}
	if _, _, err := hashCache.EvaluateBatchCtx(ctx, warm, dispatchPar); err != nil {
		return 0, 0, 0, 0, err
	}
	pts := make([][]param.Point, dispatchRounds)
	for r := range pts {
		pts[r] = make([]param.Point, dispatchPop)
		for i := 0; i < dispatchPop; i++ {
			pts[r][i] = warm[(r*13+(i/2)*7)%dispatchWarm]
		}
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	singlePass := func() error {
		for r := range pts {
			p := pts[r]
			if err := pool.EachRecCtx(ctx, dispatchPar, dispatchPop, func(i int) {
				stringCache.EvaluateKeyedCtx(ctx, space.Key(p[i]), p[i])
			}, nil); err != nil {
				return err
			}
		}
		return nil
	}
	batchPass := func() error {
		for r := range pts {
			if _, _, err := stringCache.EvaluateBatchCtx(ctx, pts[r], dispatchPar); err != nil {
				return err
			}
		}
		return nil
	}
	hashPass := func() error {
		for r := range pts {
			if _, _, err := hashCache.EvaluateBatchCtx(ctx, pts[r], dispatchPar); err != nil {
				return err
			}
		}
		return nil
	}

	// The process has just finished the allocation-heavy figure benchmarks,
	// so a single timed pass is at the mercy of GC and scheduler noise.
	// Interleave several samples per mode with a forced GC before each and
	// keep the fastest: the minimum is the run with the least interference,
	// which is the dispatcher overhead we are after.
	timed := func(pass func() error) (time.Duration, error) {
		runtime.GC()
		start := time.Now()
		err := pass()
		return time.Since(start), err
	}
	singleBest := time.Duration(1<<63 - 1)
	batchBest := time.Duration(1<<63 - 1)
	hashBest := time.Duration(1<<63 - 1)
	for s := 0; s < dispatchSamples; s++ {
		d, err := timed(singlePass)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		singleBest = min(singleBest, d)
		if d, err = timed(batchPass); err != nil {
			return 0, 0, 0, 0, err
		}
		batchBest = min(batchBest, d)
		if d, err = timed(hashPass); err != nil {
			return 0, 0, 0, 0, err
		}
		hashBest = min(hashBest, d)
	}

	evals = int64(dispatchRounds * dispatchPop)
	return singleBest.Nanoseconds() / evals, batchBest.Nanoseconds() / evals,
		hashBest.Nanoseconds() / evals, evals, nil
}

// dispatchGateFactor is how much of the committed baseline ratio a fresh
// measurement must retain. Ratios are timed on whatever (often single-core,
// shared) runner CI lands on, where back-to-back measurements of an
// unchanged tree spread about 10%; 0.8 keeps the gate quiet inside that
// noise while still tripping on the 1.5-2x losses a real hot-path
// regression (a reintroduced per-point allocation, a lock back on the probe
// path) causes.
const dispatchGateFactor = 0.8

// checkDispatchBaseline compares the measured speedup ratios against the
// committed baseline report. The gates are on single/batch and single/hash
// ratios rather than absolute ns/op, so they hold across machines of
// different speeds; a drop past the gate factor means that pipeline lost
// ground against the point-at-a-time path it replaced.
func checkDispatchBaseline(path string, current dispatchReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline struct {
		Dispatch *dispatchReport `json:"dispatch"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if baseline.Dispatch == nil {
		return fmt.Errorf("%s has no dispatch section to compare against", path)
	}
	floor := baseline.Dispatch.Speedup * dispatchGateFactor
	if current.Speedup < floor {
		return fmt.Errorf("dispatch speedup %.2fx regressed vs baseline %.2fx (floor %.2fx)",
			current.Speedup, baseline.Dispatch.Speedup, floor)
	}
	fmt.Printf("dispatch gate:  %.2fx vs baseline %.2fx (floor %.2fx) ok\n",
		current.Speedup, baseline.Dispatch.Speedup, floor)
	if baseline.Dispatch.HashSpeedup > 0 {
		hashFloor := baseline.Dispatch.HashSpeedup * dispatchGateFactor
		if current.HashSpeedup < hashFloor {
			return fmt.Errorf("hash dispatch speedup %.2fx regressed vs baseline %.2fx (floor %.2fx)",
				current.HashSpeedup, baseline.Dispatch.HashSpeedup, hashFloor)
		}
		fmt.Printf("hash gate:      %.2fx vs baseline %.2fx (floor %.2fx) ok\n",
			current.HashSpeedup, baseline.Dispatch.HashSpeedup, hashFloor)
	}
	return nil
}
