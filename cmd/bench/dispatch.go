package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pool"
)

// dispatchReport compares the batched evaluation pipeline against the
// legacy point-at-a-time dispatch on the workload the batch path exists
// for: a warm evaluation cache answering generation-shaped request batches
// (population-sized, with the duplicate genomes a converging GA produces)
// while the engine is configured for parallel evaluation. Per-point pool
// fan-out and per-point lock traffic are pure overhead there, and the
// batch path amortizes both.
//
// Identical comes from full GA searches run in both modes and compared
// field for field; the throughput numbers come from replaying the cached
// workload through each dispatch path directly.
type dispatchReport struct {
	Workload        string  `json:"workload"`
	Runs            int     `json:"runs"`
	DispatchedEvals int64   `json:"dispatched_evals"`
	SingleNsPerEval int64   `json:"single_ns_per_eval"`
	BatchNsPerEval  int64   `json:"batch_ns_per_eval"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

// Dispatch workload shape: a GA generation of 32 individuals in the
// converged steady state - half the genomes are duplicates, every lookup
// is a warm hit - dispatched with 4-way evaluation parallelism configured
// (the setting a slow synthesis backend wants). The equivalence check runs
// full searches at the same scale.
const (
	dispatchPop      = 32
	dispatchDistinct = 16
	dispatchWarm     = 64
	dispatchGens     = 60
	dispatchRuns     = 5
	dispatchPar      = 4
	dispatchRounds   = 2500 // rounds per timed sample
	dispatchSamples  = 8    // interleaved samples per mode; best kept
)

// runDispatch measures both dispatch modes and verifies they produce
// identical search results.
func runDispatch() (dispatchReport, error) {
	rep := dispatchReport{
		Workload: fmt.Sprintf("fft warm cache, batches of %d (%d distinct), par=%d, GOMAXPROCS=1",
			dispatchPop, dispatchDistinct, dispatchPar),
		Runs: dispatchRuns,
	}
	identical, err := dispatchResultsIdentical()
	if err != nil {
		return rep, err
	}
	rep.Identical = identical

	single, batch, evals, err := dispatchThroughput()
	if err != nil {
		return rep, err
	}
	rep.DispatchedEvals = evals
	rep.SingleNsPerEval = single
	rep.BatchNsPerEval = batch
	if batch > 0 {
		rep.Speedup = float64(single) / float64(batch)
	}
	if !rep.Identical {
		return rep, fmt.Errorf("dispatch modes disagree: single and batch search results are not identical")
	}
	return rep, nil
}

// dispatchResultsIdentical runs full FFT searches under both dispatch
// modes across several seeds and compares every Result field.
func dispatchResultsIdentical() (bool, error) {
	entry, err := catalog.Lookup("fft", "min-luts")
	if err != nil {
		return false, err
	}
	mode := func(dispatch string, seed int64) (ga.Result, error) {
		return core.Search(context.Background(), core.SearchRequest{
			Space:     entry.Space,
			Objective: entry.Objective,
			Evaluate:  entry.Eval,
			Config: ga.Config{
				PopulationSize: dispatchPop,
				Generations:    dispatchGens,
				Seed:           seed,
				Parallelism:    dispatchPar,
				Dispatch:       dispatch,
			},
		})
	}
	for seed := int64(1); seed <= dispatchRuns; seed++ {
		single, err := mode(ga.DispatchSingle, seed)
		if err != nil {
			return false, err
		}
		batch, err := mode(ga.DispatchBatch, seed)
		if err != nil {
			return false, err
		}
		if !reflect.DeepEqual(single, batch) {
			return false, nil
		}
	}
	return true, nil
}

// dispatchThroughput replays the warm generation-shaped workload through
// each dispatch path and returns ns per dispatched evaluation for both,
// plus the dispatch count per mode. GOMAXPROCS is pinned to 1 for the
// measurement so the number isolates dispatcher overhead (scheduling,
// locks, bookkeeping) from machine core count and stays comparable as a
// ratio across hosts.
func dispatchThroughput() (singleNs, batchNs, evals int64, err error) {
	space := fft.Space()
	cache := dataset.NewCache(space, func(pt param.Point) (metrics.Metrics, error) {
		return fft.Evaluate(space, pt)
	})

	// Warm the cache, then build the replayed request stream: each round is
	// one generation-shaped batch striding over the warm set with every
	// genome duplicated once, like a converged population.
	warm := make([]param.Point, dispatchWarm)
	for i := range warm {
		warm[i] = space.PointAt(uint64(i*131) % space.Cardinality())
	}
	ctx := context.Background()
	if _, _, err := cache.EvaluateBatchCtx(ctx, warm, dispatchPar); err != nil {
		return 0, 0, 0, err
	}
	keys := make([][]string, dispatchRounds)
	pts := make([][]param.Point, dispatchRounds)
	for r := range keys {
		keys[r] = make([]string, dispatchPop)
		pts[r] = make([]param.Point, dispatchPop)
		for i := 0; i < dispatchPop; i++ {
			pt := warm[(r*13+(i/2)*7)%dispatchWarm]
			pts[r][i] = pt
			keys[r][i] = space.Key(pt)
		}
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	singlePass := func() error {
		for r := range keys {
			k, p := keys[r], pts[r]
			if err := pool.EachRecCtx(ctx, dispatchPar, dispatchPop, func(i int) {
				cache.EvaluateKeyedCtx(ctx, k[i], p[i])
			}, nil); err != nil {
				return err
			}
		}
		return nil
	}
	batchPass := func() error {
		for r := range keys {
			if _, _, err := cache.EvaluateBatchKeyedCtx(ctx, keys[r], pts[r], dispatchPar); err != nil {
				return err
			}
		}
		return nil
	}

	// The process has just finished the allocation-heavy figure benchmarks,
	// so a single timed pass is at the mercy of GC and scheduler noise.
	// Interleave several samples per mode with a forced GC before each and
	// keep the fastest: the minimum is the run with the least interference,
	// which is the dispatcher overhead we are after.
	timed := func(pass func() error) (time.Duration, error) {
		runtime.GC()
		start := time.Now()
		err := pass()
		return time.Since(start), err
	}
	singleBest := time.Duration(1<<63 - 1)
	batchBest := time.Duration(1<<63 - 1)
	for s := 0; s < dispatchSamples; s++ {
		d, err := timed(singlePass)
		if err != nil {
			return 0, 0, 0, err
		}
		singleBest = min(singleBest, d)
		if d, err = timed(batchPass); err != nil {
			return 0, 0, 0, err
		}
		batchBest = min(batchBest, d)
	}

	evals = int64(dispatchRounds * dispatchPop)
	return singleBest.Nanoseconds() / evals, batchBest.Nanoseconds() / evals, evals, nil
}

// checkDispatchBaseline compares the measured speedup ratio against the
// committed baseline report. The gate is on the single/batch ratio rather
// than absolute ns/op, so it holds across machines of different speeds; a
// >10% drop in the ratio means the batched path lost ground against the
// point-at-a-time path it replaced.
func checkDispatchBaseline(path string, current dispatchReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline struct {
		Dispatch *dispatchReport `json:"dispatch"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if baseline.Dispatch == nil {
		return fmt.Errorf("%s has no dispatch section to compare against", path)
	}
	floor := baseline.Dispatch.Speedup * 0.9
	if current.Speedup < floor {
		return fmt.Errorf("dispatch speedup %.2fx regressed >10%% vs baseline %.2fx (floor %.2fx)",
			current.Speedup, baseline.Dispatch.Speedup, floor)
	}
	fmt.Printf("dispatch gate:  %.2fx vs baseline %.2fx (floor %.2fx) ok\n",
		current.Speedup, baseline.Dispatch.Speedup, floor)
	return nil
}
