// Command bench runs the figure reproductions as Go benchmarks at a
// reduced-but-representative scale and writes the measurements to a JSON
// file, so the repository's performance trajectory (ns/op, allocs/op,
// effective parallelism) is tracked from commit to commit.
//
// Usage:
//
//	bench [-figs fig1,fig3,fig4,fig6|all] [-runs N] [-gens N] [-par N]
//	      [-benchtime 1x] [-out BENCH_results.json]
//	      [-dispatch] [-dispatch-baseline FILE]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// The default subset covers both design spaces (router and FFT), the GA
// trial fan-out, and the space enumerations, and finishes in well under a
// minute; -figs all measures every table of the paper's evaluation.
//
// -dispatch (on by default) additionally compares the string-keyed
// point-at-a-time, string-keyed batched, and hash-keyed batched dispatch
// pipelines on a cache-heavy FFT search, verifying all of them produce
// identical results (including under injected transient faults and across
// checkpoint/resume) and recording the per-dispatch speedups;
// -dispatch-baseline fails the run if either speedup ratio regressed more
// than 10% against a committed report.
//
// -cpuprofile and -memprofile write standard pprof profiles covering the
// whole run - the tool for attributing a dispatch-gate regression to a
// specific hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"nautilus/internal/cliflags"
	"nautilus/internal/experiments"
)

// figures maps -figs names to experiment drivers.
var figures = map[string]func(experiments.Config) ([]experiments.Table, error){
	"fig1":          experiments.Fig1,
	"fig2":          experiments.Fig2,
	"fig3":          experiments.Fig3,
	"fig4":          experiments.Fig4,
	"fig5":          experiments.Fig5,
	"fig6":          experiments.Fig6,
	"fig7":          experiments.Fig7,
	"headline":      experiments.Headline,
	"ablations":     experiments.Ablations,
	"ext-baselines": experiments.ExtensionBaselines,
	"ext-pareto":    experiments.ExtensionPareto,
	"ext-thirdip":   experiments.ExtensionThirdIP,
}

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds_total"`
}

type benchReport struct {
	Timestamp   string          `json:"timestamp"`
	GoVersion   string          `json:"go_version"`
	Cores       int             `json:"cores"`
	Parallelism int             `json:"parallelism"`
	Runs        int             `json:"runs"`
	Generations int             `json:"generations"`
	Results     []benchResult   `json:"results"`
	Dispatch    *dispatchReport `json:"dispatch,omitempty"`
}

func main() {
	os.Exit(run())
}

// run is main behind an exit code, so deferred cleanup (profile flushing)
// executes on every path.
func run() int {
	testing.Init() // registers -test.* flags; benchtime is set after Parse
	figs := flag.String("figs", "fig1,fig3,fig4,fig6", "comma-separated figures to benchmark, or 'all'")
	runs := flag.Int("runs", 5, "GA runs per variant per iteration (reduced scale)")
	gens := flag.Int("gens", 0, "GA generations (0 = per-figure paper defaults)")
	par := cliflags.NewParallelism(flag.CommandLine, 0, true)
	benchtime := flag.String("benchtime", "1x", "benchmark time per figure (Go -benchtime syntax)")
	out := flag.String("out", "BENCH_results.json", "output JSON path")
	dispatch := flag.Bool("dispatch", true, "also run the evaluation dispatch comparison (single vs batch vs hash)")
	dispatchBaseline := flag.String("dispatch-baseline", "", "fail if a dispatch speedup ratio regresses >10% vs this committed BENCH_results.json")
	prof := cliflags.NewProfiling(flag.CommandLine)
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "bench: -runs must be at least 1, got %d\n", *runs)
		return 2
	}
	if *gens < 0 {
		fmt.Fprintf(os.Stderr, "bench: -gens must be non-negative (0 = paper defaults), got %d\n", *gens)
		return 2
	}
	if err := par.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "bench: bad -benchtime %q: %v\n", *benchtime, err)
		return 2
	}

	var names []string
	if *figs == "all" {
		for name := range figures {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(*figs, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := figures[name]; !ok {
				fmt.Fprintf(os.Stderr, "bench: unknown figure %q\n", name)
				return 2
			}
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no figures selected")
		return 2
	}

	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		}
	}()

	cfg := experiments.Config{Runs: *runs, Generations: *gens, Parallelism: par.Value()}
	report := benchReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Cores:       runtime.NumCPU(),
		Parallelism: par.Value(),
		Runs:        *runs,
		Generations: *gens,
	}
	if report.Parallelism == 0 {
		report.Parallelism = runtime.GOMAXPROCS(0)
	}

	for _, name := range names {
		fn := figures[name]
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tables, err := fn(cfg)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				if len(tables) == 0 {
					benchErr = fmt.Errorf("%s produced no tables", name)
					b.Fatal(benchErr)
				}
			}
		})
		if benchErr != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", name, benchErr)
			return 1
		}
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Seconds:     r.T.Seconds(),
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-14s %12d ns/op  %10d allocs/op  %12d B/op  (%d iter)\n",
			name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations)
	}

	if *dispatch {
		rep, err := runDispatch()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: dispatch: %v\n", err)
			return 1
		}
		report.Dispatch = &rep
		fmt.Printf("%-14s %12d ns/eval single  %10d ns/eval batch  %10d ns/eval hash  %6.2fx batch  %6.2fx hash  (%d dispatched)\n",
			"dispatch", rep.SingleNsPerEval, rep.BatchNsPerEval, rep.HashNsPerEval,
			rep.Speedup, rep.HashSpeedup, rep.DispatchedEvals)
		if *dispatchBaseline != "" {
			if err := checkDispatchBaseline(*dispatchBaseline, rep); err != nil {
				fmt.Fprintf(os.Stderr, "bench: dispatch: %v\n", err)
				return 1
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s (cores=%d, parallelism=%d)\n", *out, report.Cores, report.Parallelism)
	return 0
}
