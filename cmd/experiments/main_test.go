package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-file regression tests for the experiments command's table output.
// The tables are the command's contract - the paper's figures rendered as
// text - so any drift in values, formatting, or ordering is a regression
// unless deliberately re-blessed with -update:
//
//	go test ./cmd/experiments -update

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

var binPath string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "experiments-golden-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build experiments: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runTables runs the built binary and returns its stdout with the one
// wall-clock-dependent line ("completed in ...") removed.
func runTables(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("experiments %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	lines := strings.Split(stdout.String(), "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "completed in ") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// checkGolden compares got against testdata/<name>, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (bless with `go test ./cmd/experiments -update`): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("table output drifted from %s at line %d:\n got: %q\nwant: %q\n(re-bless with -update if intended)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("table output drifted from %s (same lines, different bytes)", path)
}

// headlineArgs is the small but GA-exercising scale used for the golden
// tables: enough trials that parallel scheduling could reorder results if
// collection were index-unsafe, small enough to run in well under a second.
func headlineArgs(par int) []string {
	return []string{"-fig", "headline", "-runs", "3", "-gens", "6", "-par", fmt.Sprint(par)}
}

// TestHeadlineTableGolden pins the headline ratio table byte for byte.
func TestHeadlineTableGolden(t *testing.T) {
	checkGolden(t, "headline_runs3_gens6.golden", runTables(t, headlineArgs(1)...))
}

// TestFig1TableGolden pins the exhaustive design-space landscape table - no
// GA randomness at all, so any drift is a substrate or formatting change.
func TestFig1TableGolden(t *testing.T) {
	checkGolden(t, "fig1.golden", runTables(t, "-fig", "fig1", "-par", "1"))
}

// TestTablesParallelismInvariant is the documented guarantee that -par
// never changes a table: the same figure at -par 1 and -par 8 must be
// byte-identical (trials are independently seeded and collected by index).
func TestTablesParallelismInvariant(t *testing.T) {
	seq := runTables(t, headlineArgs(1)...)
	par := runTables(t, headlineArgs(8)...)
	if seq != par {
		sl, pl := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := 0; i < len(sl) || i < len(pl); i++ {
			var s, p string
			if i < len(sl) {
				s = sl[i]
			}
			if i < len(pl) {
				p = pl[i]
			}
			if s != p {
				t.Fatalf("-par 1 and -par 8 tables differ at line %d:\n-par 1: %q\n-par 8: %q", i+1, s, p)
			}
		}
		t.Fatal("-par 1 and -par 8 tables differ")
	}
}
