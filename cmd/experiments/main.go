// Command experiments regenerates every table and figure of the Nautilus
// paper's evaluation against this repository's synthesis substrate.
//
// Usage:
//
//	experiments [-fig all|fig1..fig7|headline|ablations|
//	             ext-baselines|ext-pareto|ext-sim-validate|ext-thirdip]
//	            [-runs N] [-gens N] [-par N] [-out DIR] [-md FILE]
//	            [-journal FILE] [-debug-addr ADDR]
//
// With -out, each figure's raw series is also written as CSV for
// re-plotting; with -md, a markdown report is produced. Paper-scale
// settings (the defaults) take under a minute; lower -runs for a quick
// look. Experiments run on all cores by default (-par 0); every trial is
// independently seeded and results are collected by index, so the tables
// are byte-identical at any -par value.
//
// -journal appends every run event (generations, evaluations, cache
// traffic, hint applications, pool scheduling) across all trials to one
// JSONL file; -debug-addr serves live aggregate metrics and pprof while
// the figures run. Neither changes any table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nautilus/internal/experiments"
	"nautilus/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "which experiment to regenerate (all, fig1..fig7, headline, ablations, ext-*)")
	runs := flag.Int("runs", 0, "override GA runs per variant (0 = paper defaults)")
	gens := flag.Int("gens", 0, "override GA generations (0 = paper defaults)")
	par := flag.Int("par", 0, "max parallel figures/variants/trials (0 = all cores, 1 = sequential; output is identical at any level)")
	out := flag.String("out", "", "directory for CSV output (optional)")
	md := flag.String("md", "", "also write a markdown report to this file (optional)")
	journal := flag.String("journal", "", "append structured run events from every trial as JSON lines to this file")
	debugAddr := flag.String("debug-addr", "", "serve live metrics (expvar) and pprof on this address while experiments run")
	summary := flag.Bool("summary", false, "print aggregate telemetry (evaluations, cache, hints, pool) after the tables")
	flag.Parse()
	if err := validateFlags(*runs, *gens, *par); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Runs: *runs, Generations: *gens, Parallelism: *par, OutDir: *out}

	// The harness runs trials concurrently, so all sinks see one interleaved
	// event stream; the collector's aggregates and the journal are still
	// exact totals across every trial of the requested figures.
	var col *telemetry.Collector
	var recorders []telemetry.Recorder
	if *summary || *debugAddr != "" {
		col = telemetry.NewCollector(nil)
		recorders = append(recorders, col)
	}
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: journal: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		j := telemetry.NewJournal(f)
		defer j.Close()
		recorders = append(recorders, j)
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, col.Registry())
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("debug endpoint: http://%s/debug/vars\n", addr)
	}
	if len(recorders) > 0 {
		cfg.Recorder = telemetry.Multi(recorders...)
	}

	drivers := map[string]func(experiments.Config) ([]experiments.Table, error){
		"all":              experiments.All,
		"fig1":             experiments.Fig1,
		"fig2":             experiments.Fig2,
		"fig3":             experiments.Fig3,
		"fig4":             experiments.Fig4,
		"fig5":             experiments.Fig5,
		"fig6":             experiments.Fig6,
		"fig7":             experiments.Fig7,
		"headline":         experiments.Headline,
		"ablations":        experiments.Ablations,
		"ext-baselines":    experiments.ExtensionBaselines,
		"ext-pareto":       experiments.ExtensionPareto,
		"ext-sim-validate": experiments.ExtensionSimVsAnalytical,
		"ext-thirdip":      experiments.ExtensionThirdIP,
	}
	driver, ok := drivers[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	tables, err := driver(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for i := range tables {
		tables[i].Fprint(os.Stdout)
	}
	if *summary {
		// The per-generation table would interleave thousands of concurrent
		// trials meaninglessly, so the aggregate totals alone are printed.
		agg := telemetry.NewCollector(col.Registry())
		if err := agg.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteMarkdown(f, tables, time.Now()); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *md)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
	if *out != "" {
		fmt.Printf("CSV series written to %s\n", *out)
	}
}

// validateFlags rejects scale overrides that cannot mean anything: 0 keeps
// the per-figure paper default, so only negatives are errors.
func validateFlags(runs, gens, par int) error {
	if runs < 0 {
		return fmt.Errorf("-runs must be non-negative (0 = paper defaults), got %d", runs)
	}
	if gens < 0 {
		return fmt.Errorf("-gens must be non-negative (0 = paper defaults), got %d", gens)
	}
	if par < 0 {
		return fmt.Errorf("-par must be non-negative (0 = all cores), got %d", par)
	}
	return nil
}
