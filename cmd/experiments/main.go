// Command experiments regenerates every table and figure of the Nautilus
// paper's evaluation against this repository's synthesis substrate.
//
// Usage:
//
//	experiments [-fig all|fig1..fig7|headline|ablations|
//	             ext-baselines|ext-pareto|ext-sim-validate|ext-thirdip]
//	            [-runs N] [-gens N] [-par N] [-out DIR] [-md FILE]
//	            [-journal FILE] [-debug-addr ADDR]
//	            [-checkpoint FILE] [-checkpoint-every N] [-resume]
//
// With -out, each figure's raw series is also written as CSV for
// re-plotting; with -md, a markdown report is produced. Paper-scale
// settings (the defaults) take under a minute; lower -runs for a quick
// look. Experiments run on all cores by default (-par 0); every trial is
// independently seeded and results are collected by index, so the tables
// are byte-identical at any -par value.
//
// -journal appends every run event (generations, evaluations, cache
// traffic, hint applications, pool scheduling) across all trials to one
// JSONL file; -debug-addr serves live aggregate metrics and pprof while
// the figures run. Neither changes any table.
//
// -checkpoint persists each completed figure's tables to a progress file
// (atomic rename); figures then run sequentially so a SIGINT/SIGTERM or
// crash loses at most the in-flight figure, and -resume skips the
// completed ones on the next invocation. Tables are deterministic per
// (-runs, -gens), so a resumed run's output is identical to an
// uninterrupted one; the progress file rejects mismatched scale settings.
//
// Exit codes: 0 success, 1 fatal error, 2 usage error, 3 interrupted with
// progress saved (resume with -resume).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nautilus/internal/cliflags"
	"nautilus/internal/experiments"
	"nautilus/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// After the first signal starts the graceful stop, restore default
		// handling so a second signal kills the process immediately.
		<-ctx.Done()
		stop()
	}()
	realMain(ctx)
}

func realMain(ctx context.Context) {
	fig := flag.String("fig", "all", "which experiment to regenerate (all, fig1..fig7, headline, ablations, ext-*)")
	runs := flag.Int("runs", 0, "override GA runs per variant (0 = paper defaults)")
	gens := flag.Int("gens", 0, "override GA generations (0 = paper defaults)")
	par := cliflags.NewParallelism(flag.CommandLine, 0, true)
	out := flag.String("out", "", "directory for CSV output (optional)")
	md := flag.String("md", "", "also write a markdown report to this file (optional)")
	obs := cliflags.NewObservability(flag.CommandLine, false)
	checkpoint := flag.String("checkpoint", "", "persist each completed figure's tables to this progress file (figures run sequentially)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "persist the progress file after every N completed figures (with -checkpoint)")
	resume := flag.Bool("resume", false, "skip figures already completed in the -checkpoint progress file")
	flag.Parse()
	if err := validateFlags(*runs, *gens); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if err := par.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if err := validateCheckpointFlags(*checkpoint, *checkpointEvery, *resume); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Runs: *runs, Generations: *gens, Parallelism: par.Value(), OutDir: *out}

	// The harness runs trials concurrently, so all sinks see one interleaved
	// event stream; the collector's aggregates and the journal are still
	// exact totals across every trial of the requested figures.
	stack, err := obs.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stack.Close()
	cfg.Recorder = stack.Recorder

	driver, ok := experiments.FindDriver(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var tables []experiments.Table
	if *checkpoint != "" {
		// The resumable path trades figure-level concurrency for figure-level
		// durability; within each figure the full -par fan-out still applies.
		names := []string{*fig}
		if *fig == "all" {
			names = experiments.FigureNames()
		}
		var prog *experiments.Progress
		if *resume {
			if _, statErr := os.Stat(*checkpoint); statErr != nil {
				fmt.Fprintf(os.Stderr, "experiments: -resume: progress file: %v\n", statErr)
				os.Exit(1)
			}
			prog, err = experiments.LoadProgress(*checkpoint, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if n := prog.CompletedCount(); n > 0 {
				fmt.Fprintf(os.Stderr, "resuming from %s: %d figures already complete\n", *checkpoint, n)
			}
		} else {
			prog = experiments.NewProgress(*checkpoint, cfg)
		}
		prog.SetSaveEvery(*checkpointEvery)
		tables, err = experiments.RunResumable(ctx, cfg, names, prog)
		if err != nil && errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "experiments: interrupted; %d figures saved to %s (continue with -resume)\n",
				prog.CompletedCount(), *checkpoint)
			os.Exit(3)
		}
	} else {
		tables, err = driver(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for i := range tables {
		tables[i].Fprint(os.Stdout)
	}
	if obs.WantSummary() {
		// The per-generation table would interleave thousands of concurrent
		// trials meaninglessly, so the aggregate totals alone are printed.
		agg := telemetry.NewCollector(stack.Collector.Registry())
		if err := agg.WriteSummary(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteMarkdown(f, tables, time.Now()); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *md)
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
	if *out != "" {
		fmt.Printf("CSV series written to %s\n", *out)
	}
}

// validateFlags rejects scale overrides that cannot mean anything: 0 keeps
// the per-figure paper default, so only negatives are errors (-par
// validates through cliflags).
func validateFlags(runs, gens int) error {
	if runs < 0 {
		return fmt.Errorf("-runs must be non-negative (0 = paper defaults), got %d", runs)
	}
	if gens < 0 {
		return fmt.Errorf("-gens must be non-negative (0 = paper defaults), got %d", gens)
	}
	return nil
}

// validateCheckpointFlags front-doors the progress-file flags.
func validateCheckpointFlags(checkpoint string, every int, resume bool) error {
	if every < 1 {
		return fmt.Errorf("-checkpoint-every must be at least 1 figure, got %d", every)
	}
	if resume && checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint to name the progress file")
	}
	return nil
}
