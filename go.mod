module nautilus

go 1.22
