package param

import (
	"math/rand"
	"testing"
)

func hashTestSpace() *Space {
	return MustSpace(
		Int("width", 1, 8, 1),
		Pow2("depth", 0, 4),
		Choice("alloc", "rr", "islip", "age"),
		Flag("bypass"),
	)
}

// TestHash64InjectiveOnPackableSpace enumerates a full packable space and
// checks every point hashes uniquely - the injectivity the mixed-radix pack
// promises.
func TestHash64InjectiveOnPackableSpace(t *testing.T) {
	s := hashTestSpace()
	if !s.HashInjective() {
		t.Fatalf("small space should be packable")
	}
	seen := make(map[uint64]string, s.Cardinality())
	s.Enumerate(func(pt Point) bool {
		h := s.Hash64(pt)
		key := s.Key(pt)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision on packable space: %s and %s both hash to %#x", prev, key, h)
		}
		seen[h] = key
		return true
	})
	if len(seen) != int(s.Cardinality()) {
		t.Fatalf("hashed %d points, space has %d", len(seen), s.Cardinality())
	}
}

// TestHash64DeterministicAcrossCopies checks equal points hash equally even
// through separately constructed spaces of the same shape.
func TestHash64DeterministicAcrossCopies(t *testing.T) {
	s1, s2 := hashTestSpace(), hashTestSpace()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		pt := s1.Random(r)
		if s1.Hash64(pt) != s2.Hash64(pt.Clone()) {
			t.Fatalf("same-shape spaces disagree on hash of %s", s1.Key(pt))
		}
	}
}

// TestHash64LargeSpaceFallback exercises the chained-hash path on a space
// whose cardinality saturates uint64, checking determinism and that random
// distinct points do not trivially collide.
func TestHash64LargeSpaceFallback(t *testing.T) {
	params := make([]*Param, 8)
	for i := range params {
		params[i] = Int(string(rune('a'+i)), 0, 1<<16, 1)
	}
	s := MustSpace(params...)
	if s.HashInjective() {
		t.Fatalf("space with cardinality > MaxUint64 should not claim injectivity")
	}
	r := rand.New(rand.NewSource(7))
	seen := make(map[uint64]string)
	for i := 0; i < 5000; i++ {
		pt := s.Random(r)
		key := s.Key(pt)
		h := s.Hash64(pt)
		if h != s.Hash64(pt) {
			t.Fatalf("non-deterministic hash for %s", key)
		}
		if prev, dup := seen[h]; dup && prev != key {
			t.Fatalf("unexpected collision between %s and %s", prev, key)
		}
		seen[h] = key
	}
}

// TestHash64PanicsOnInvalidPoints mirrors Key's contract.
func TestHash64PanicsOnInvalidPoints(t *testing.T) {
	s := hashTestSpace()
	for _, pt := range []Point{nil, {0}, {0, 0, 0, 0, 0}, {8, 0, 0, 0}, {-1, 0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hash64(%v) did not panic", pt)
				}
			}()
			s.Hash64(pt)
		}()
	}
}

// TestHash64NoAllocs pins the whole reason the hash exists: computing it
// allocates nothing, unlike the string key's one allocation per point.
func TestHash64NoAllocs(t *testing.T) {
	s := hashTestSpace()
	pt := Point{3, 2, 1, 0}
	if avg := testing.AllocsPerRun(200, func() { s.Hash64(pt) }); avg != 0 {
		t.Errorf("Hash64 allocates %.1f times per call, want 0", avg)
	}
}

// TestPackedRoundTrip checks AppendPacked/UnpackPoint/PackedEqual agree
// with the genome they encode.
func TestPackedRoundTrip(t *testing.T) {
	s := hashTestSpace()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		pt := s.Random(r)
		packed := s.AppendPacked(nil, pt)
		if !PackedEqual(packed, pt) {
			t.Fatalf("PackedEqual false for the packed point itself (%s)", s.Key(pt))
		}
		back := s.UnpackPoint(packed)
		if !back.Equal(pt) {
			t.Fatalf("unpack round trip: %v != %v", back, pt)
		}
		other := s.Random(r)
		if other.Equal(pt) != PackedEqual(packed, other) {
			t.Fatalf("PackedEqual disagrees with Point.Equal for %v vs %v", pt, other)
		}
	}
	if PackedEqual([]int32{1, 2}, Point{1, 2, 3}) {
		t.Error("PackedEqual accepted mismatched lengths")
	}
}

// TestParseKeyRejectsNonCanonicalGenes is the regression suite for the
// strconv-based parser: encodings fmt.Sscanf("%d") tolerated but Key never
// emits must be rejected.
func TestParseKeyRejectsNonCanonicalGenes(t *testing.T) {
	s := hashTestSpace()
	good := s.Key(Point{1, 2, 0, 1})
	if _, err := s.ParseKey(good); err != nil {
		t.Fatalf("canonical key %q rejected: %v", good, err)
	}
	for _, key := range []string{
		"+1,2,0,1",   // leading plus
		" 1,2,0,1",   // leading whitespace
		"1 ,2,0,1",   // trailing whitespace
		"1,2,0,01",   // leading zero
		"1,2,0,00",   // zero written with leading zero
		"1,2,0,-0",   // signed zero
		"1,2,0,1\n",  // trailing newline
		"1,2,0,0x1",  // hex
		"1,2,0,1e0",  // scientific
		"1,,0,1",     // empty gene
		"1,2,0,",     // trailing empty gene
		"01,2,0,1",   // leading zero, first gene
		"\t1,2,0,1",  // tab whitespace
		"1,+2,0,1",   // interior plus
		"1,2,0,1 ,1", // wrong arity with padding
	} {
		if _, err := s.ParseKey(key); err == nil {
			t.Errorf("non-canonical key %q accepted", key)
		}
	}
}

// FuzzHash64MatchesKey fuzzes the consistency contract between the two
// identities: two points have equal hashes whenever their canonical keys are
// equal, and - on packable spaces - only then.
func FuzzHash64MatchesKey(f *testing.F) {
	s := MustSpace(
		Int("a", 0, 7, 1),
		Choice("b", "x", "y", "z"),
		Flag("c"),
	)
	f.Add(0, 0, 0, 7, 2, 1)
	f.Add(3, 1, 1, 3, 1, 1)
	f.Add(5, 2, 0, 5, 2, 1)
	f.Fuzz(func(t *testing.T, a1, b1, c1, a2, b2, c2 int) {
		clamp := func(v, card int) int {
			v %= card
			if v < 0 {
				v += card
			}
			return v
		}
		p1 := Point{clamp(a1, 8), clamp(b1, 3), clamp(c1, 2)}
		p2 := Point{clamp(a2, 8), clamp(b2, 3), clamp(c2, 2)}
		k1, k2 := s.Key(p1), s.Key(p2)
		h1, h2 := s.Hash64(p1), s.Hash64(p2)
		if (k1 == k2) != (h1 == h2) {
			t.Fatalf("key/hash consistency broken: keys %q vs %q, hashes %#x vs %#x", k1, k2, h1, h2)
		}
	})
}
