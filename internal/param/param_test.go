package param

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	return MustSpace(
		Int("depth", 1, 8, 1),
		Pow2("width", 3, 6),
		Choice("alloc", "sep_if", "sep_of", "wavefront"),
		OrderedChoice("pipeline", "short", "medium", "long"),
		Flag("spec"),
		Levels("vcs", 1, 2, 4, 8),
	)
}

func TestIntParam(t *testing.T) {
	p := Int("d", 2, 10, 2)
	if got := p.Card(); got != 5 {
		t.Fatalf("Card = %d, want 5", got)
	}
	want := []int{2, 4, 6, 8, 10}
	for i, w := range want {
		if got := p.IntValue(i); got != w {
			t.Errorf("IntValue(%d) = %d, want %d", i, got, w)
		}
		if n, ok := p.Numeric(i); !ok || n != float64(w) {
			t.Errorf("Numeric(%d) = %v,%v, want %d,true", i, n, ok, w)
		}
	}
	if !p.IsOrdered() {
		t.Error("int param should be ordered")
	}
}

func TestIntParamUnreachableMax(t *testing.T) {
	p := Int("d", 1, 10, 4) // 1, 5, 9
	if got := p.Card(); got != 3 {
		t.Fatalf("Card = %d, want 3", got)
	}
	if got := p.IntValue(2); got != 9 {
		t.Errorf("last value = %d, want 9", got)
	}
}

func TestPow2Param(t *testing.T) {
	p := Pow2("w", 3, 6)
	want := []int{8, 16, 32, 64}
	if p.Card() != len(want) {
		t.Fatalf("Card = %d, want %d", p.Card(), len(want))
	}
	for i, w := range want {
		if got := p.IntValue(i); got != w {
			t.Errorf("IntValue(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLevelsParam(t *testing.T) {
	p := Levels("vcs", 1, 2, 4, 8)
	if p.Card() != 4 {
		t.Fatalf("Card = %d, want 4", p.Card())
	}
	if p.IndexOfInt(4) != 2 {
		t.Errorf("IndexOfInt(4) = %d, want 2", p.IndexOfInt(4))
	}
	if p.IndexOfInt(3) != -1 {
		t.Errorf("IndexOfInt(3) = %d, want -1", p.IndexOfInt(3))
	}
}

func TestLevelsPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsorted levels")
		}
	}()
	Levels("bad", 4, 2, 1)
}

func TestChoiceParam(t *testing.T) {
	p := Choice("alloc", "a", "b", "c")
	if p.IsOrdered() {
		t.Error("Choice should be unordered")
	}
	if _, ok := p.Numeric(1); ok {
		t.Error("unordered choice should have no numeric axis")
	}
	if got := p.StringValue(2); got != "c" {
		t.Errorf("StringValue(2) = %q, want c", got)
	}
	if got := p.IndexOf("b"); got != 1 {
		t.Errorf("IndexOf(b) = %d, want 1", got)
	}
	if got := p.IndexOf("zzz"); got != -1 {
		t.Errorf("IndexOf(zzz) = %d, want -1", got)
	}
}

func TestOrderedChoice(t *testing.T) {
	p := OrderedChoice("pipe", "short", "long")
	if !p.IsOrdered() {
		t.Error("OrderedChoice should be ordered")
	}
	if n, ok := p.Numeric(1); !ok || n != 1 {
		t.Errorf("Numeric(1) = %v,%v, want 1,true", n, ok)
	}
}

func TestOrderedReordering(t *testing.T) {
	p := Choice("alloc", "a", "b", "c").Ordered("c", "a", "b")
	if !p.IsOrdered() {
		t.Error("Ordered() result should be ordered")
	}
	if got := p.StringValue(0); got != "c" {
		t.Errorf("first value = %q, want c", got)
	}
	if p.Kind() != KindOrderedChoice {
		t.Errorf("kind = %v, want ordered-choice", p.Kind())
	}
}

func TestOrderedPanicsOnBadPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-permutation ordering")
		}
	}()
	Choice("alloc", "a", "b").Ordered("a", "z")
}

func TestFlagParam(t *testing.T) {
	p := Flag("spec")
	if p.Card() != 2 {
		t.Fatalf("Card = %d, want 2", p.Card())
	}
	if got := p.StringValue(1); got != "on" {
		t.Errorf("StringValue(1) = %q, want on", got)
	}
	if got := p.IntValue(0); got != 0 {
		t.Errorf("IntValue(0) = %d, want 0", got)
	}
}

func TestNearestIndex(t *testing.T) {
	p := Levels("vcs", 1, 2, 4, 8)
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1.4, 0}, {1.6, 1}, {3.5, 2}, {100, 3}, {5.9, 2}, {6.1, 3}}
	for _, c := range cases {
		if got := p.NearestIndex(c.v); got != c.want {
			t.Errorf("NearestIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSpaceCardinality(t *testing.T) {
	s := testSpace(t)
	// 8 * 4 * 3 * 3 * 2 * 4 = 2304
	if got := s.Cardinality(); got != 2304 {
		t.Fatalf("Cardinality = %d, want 2304", got)
	}
}

func TestCardinalityOverflowSaturates(t *testing.T) {
	params := make([]*Param, 8)
	for i := range params {
		params[i] = Int(string(rune('a'+i)), 0, 1<<16, 1)
	}
	s := MustSpace(params...)
	if got := s.Cardinality(); got != math.MaxUint64 {
		t.Fatalf("Cardinality = %d, want saturation at MaxUint64", got)
	}
}

func TestSpaceDuplicateName(t *testing.T) {
	if _, err := NewSpace(Flag("x"), Flag("x")); err == nil {
		t.Error("expected error on duplicate names")
	}
}

func TestSpaceEmpty(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("expected error on empty space")
	}
}

func TestValidate(t *testing.T) {
	s := testSpace(t)
	good := Point{0, 0, 0, 0, 0, 0}
	if err := s.Validate(good); err != nil {
		t.Errorf("Validate(origin) = %v", err)
	}
	if err := s.Validate(Point{0, 0, 0}); err == nil {
		t.Error("expected error on short point")
	}
	if err := s.Validate(Point{0, 0, 99, 0, 0, 0}); err == nil {
		t.Error("expected error on out-of-range gene")
	}
	if err := s.Validate(Point{-1, 0, 0, 0, 0, 0}); err == nil {
		t.Error("expected error on negative gene")
	}
}

func TestRandomPointsAreValid(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if err := s.Validate(s.Random(r)); err != nil {
			t.Fatalf("random point invalid: %v", err)
		}
	}
}

func TestPointAtFlatIndexRoundTrip(t *testing.T) {
	s := testSpace(t)
	for n := uint64(0); n < s.Cardinality(); n += 7 {
		pt := s.PointAt(n)
		if got := s.FlatIndex(pt); got != n {
			t.Fatalf("FlatIndex(PointAt(%d)) = %d", n, got)
		}
	}
}

func TestEnumerateVisitsAllPointsOnce(t *testing.T) {
	s := testSpace(t)
	seen := make(map[string]bool)
	count := 0
	s.Enumerate(func(pt Point) bool {
		k := s.Key(pt)
		if seen[k] {
			t.Fatalf("point %s visited twice", k)
		}
		seen[k] = true
		count++
		return true
	})
	if uint64(count) != s.Cardinality() {
		t.Fatalf("Enumerate visited %d points, want %d", count, s.Cardinality())
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := testSpace(t)
	count := 0
	s.Enumerate(func(pt Point) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("Enumerate visited %d, want 10 after early stop", count)
	}
}

func TestKeyParseKeyRoundTrip(t *testing.T) {
	s := testSpace(t)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		pt := s.Random(r)
		back, err := s.ParseKey(s.Key(pt))
		if err != nil {
			t.Fatalf("ParseKey: %v", err)
		}
		if !pt.Equal(back) {
			t.Fatalf("round trip mismatch: %v vs %v", pt, back)
		}
	}
}

func TestParseKeyRejectsBadInput(t *testing.T) {
	s := testSpace(t)
	for _, bad := range []string{"", "1,2", "0,0,0,0,0,99", "a,b,c,d,e,f"} {
		if _, err := s.ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) succeeded, want error", bad)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := testSpace(t)
	pt := Point{3, 1, 2, 0, 1, 2} // depth=4 width=16 alloc=wavefront pipeline=short spec=on vcs=4
	if got := s.Int(pt, "depth"); got != 4 {
		t.Errorf("Int(depth) = %d, want 4", got)
	}
	if got := s.Int(pt, "width"); got != 16 {
		t.Errorf("Int(width) = %d, want 16", got)
	}
	if got := s.String(pt, "alloc"); got != "wavefront" {
		t.Errorf("String(alloc) = %q, want wavefront", got)
	}
	if !s.Bool(pt, "spec") {
		t.Error("Bool(spec) = false, want true")
	}
	if got := s.Int(pt, "vcs"); got != 4 {
		t.Errorf("Int(vcs) = %d, want 4", got)
	}
}

func TestSetByName(t *testing.T) {
	s := testSpace(t)
	pt := make(Point, s.Len())
	pt2 := s.Set(pt, "alloc", "sep_of")
	if got := s.String(pt2, "alloc"); got != "sep_of" {
		t.Errorf("after Set, alloc = %q", got)
	}
	if s.String(pt, "alloc") != "sep_if" {
		t.Error("Set mutated the original point")
	}
}

func TestDescribe(t *testing.T) {
	s := testSpace(t)
	pt := make(Point, s.Len())
	want := "depth=1 width=8 alloc=sep_if pipeline=short spec=off vcs=1"
	if got := s.Describe(pt); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	pt := Point{1, 2, 3}
	cl := pt.Clone()
	cl[0] = 99
	if pt[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

// Property: PointAt and FlatIndex are mutual inverses for arbitrary flat
// indices within range.
func TestQuickFlatIndexRoundTrip(t *testing.T) {
	s := testSpace(t)
	card := s.Cardinality()
	f := func(n uint64) bool {
		n %= card
		return s.FlatIndex(s.PointAt(n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over random point pairs.
func TestQuickKeyInjective(t *testing.T) {
	s := testSpace(t)
	f := func(a, b uint64) bool {
		pa, pb := s.PointAt(a%s.Cardinality()), s.PointAt(b%s.Cardinality())
		if pa.Equal(pb) {
			return s.Key(pa) == s.Key(pb)
		}
		return s.Key(pa) != s.Key(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NearestIndex always returns the closest numeric level.
func TestQuickNearestIndexIsClosest(t *testing.T) {
	p := Levels("x", 1, 2, 4, 8, 16, 32)
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 40)
		idx := p.NearestIndex(v)
		n, _ := p.Numeric(idx)
		best := math.Abs(n - v)
		for i := 0; i < p.Card(); i++ {
			m, _ := p.Numeric(i)
			if math.Abs(m-v) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty int name", func() { Int("", 0, 1, 1) }},
		{"zero step", func() { Int("x", 0, 1, 0) }},
		{"max < min", func() { Int("x", 5, 1, 1) }},
		{"empty levels", func() { Levels("x") }},
		{"empty levels name", func() { Levels("", 1) }},
		{"duplicate levels", func() { Levels("x", 1, 1) }},
		{"bad pow2 range", func() { Pow2("x", 5, 3) }},
		{"huge pow2", func() { Pow2("x", 0, 40) }},
		{"empty choice name", func() { Choice("", "a", "b") }},
		{"single choice", func() { Choice("x", "a") }},
		{"duplicate choice", func() { Choice("x", "a", "a") }},
		{"ordered on ordered", func() { OrderedChoice("x", "a", "b").Ordered("b", "a") }},
		{"ordering wrong length", func() { Choice("x", "a", "b").Ordered("a") }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestAccessorPanics(t *testing.T) {
	s := testSpace(t)
	pt := make(Point, s.Len())
	cases := []struct {
		name string
		fn   func()
	}{
		{"unknown param Int", func() { s.Int(pt, "nope") }},
		{"Bool on non-flag", func() { s.Bool(pt, "depth") }},
		{"Set unknown value", func() { s.Set(pt, "alloc", "zzz") }},
		{"IntValue on choice", func() { s.ByName("alloc").IntValue(0) }},
		{"Numeric out of range", func() { s.ByName("depth").Numeric(99) }},
		{"StringValue out of range", func() { s.ByName("depth").StringValue(-1) }},
		{"NearestIndex unordered", func() { s.ByName("alloc").NearestIndex(1) }},
		{"PointAt out of range", func() { s.PointAt(s.Cardinality()) }},
		{"Key invalid point", func() { s.Key(Point{1}) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestDescribeInvalidPoint(t *testing.T) {
	s := testSpace(t)
	if got := s.Describe(Point{1}); !strings.Contains(got, "invalid") {
		t.Errorf("Describe(short point) = %q, want invalid marker", got)
	}
}

func TestIndexOfStringForms(t *testing.T) {
	p := Levels("x", 1, 2, 4)
	if got := p.IndexOf("2"); got != 1 {
		t.Errorf("IndexOf(2) = %d, want 1", got)
	}
	if got := p.IndexOf("3"); got != -1 {
		t.Errorf("IndexOf(3) = %d, want -1", got)
	}
	f := Flag("y")
	if got := f.IndexOfInt(1); got != 1 {
		t.Errorf("flag IndexOfInt(1) = %d", got)
	}
	if got := f.IndexOfInt(5); got != -1 {
		t.Errorf("flag IndexOfInt(5) = %d", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInt: "int", KindPow2: "pow2", KindChoice: "choice",
		KindOrderedChoice: "ordered-choice", KindFlag: "flag",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
