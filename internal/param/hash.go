// Genome hashing and packing - the key-free identity a design point carries
// on the evaluation hot path.
//
// The search stack dispatches millions of cached lookups per run, and the
// canonical string key (Space.Key) costs one allocation per dispatched
// point. Hash64 replaces it with a fixed 64-bit identity computed with no
// allocations: for spaces whose cardinality fits a uint64 the hash is a
// seeded mixed-radix pack pushed through an invertible finalizer, so it is
// injective - distinct points can never collide. Spaces too large to pack
// fall back to a chained strong hash, where collisions are possible (and
// astronomically rare); callers that memoize by hash verify the stored
// packed genome on every hit (see internal/dataset), so a collision costs a
// re-evaluation, never a wrong answer. String keys remain the persistence
// and checkpoint format - hashes are process-local identities, not stable
// serialized state.
package param

import (
	"fmt"
	"math"
)

// hashSeedBase seeds every space's hash stream; initHash folds the space
// shape on top so differently shaped spaces hash the same genome slice
// differently.
const hashSeedBase uint64 = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: an invertible avalanche over uint64,
// so applying it to an injective pack keeps the result injective.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// initHash precomputes the space's hashing state: per-parameter radices,
// packability (does the whole space fit a uint64 flat index?), and the
// shape-derived seed.
func (s *Space) initHash() {
	s.packCards = make([]uint64, len(s.params))
	s.packable = true
	total := uint64(1)
	seed := mix64(hashSeedBase ^ uint64(len(s.params)))
	for i, p := range s.params {
		c := uint64(p.Card())
		s.packCards[i] = c
		if total > math.MaxUint64/c {
			s.packable = false
		} else {
			total *= c
		}
		seed = mix64(seed + c)
	}
	s.hashSeed = seed
}

// Hash64 returns the point's fixed 64-bit genome hash - the allocation-free
// identity the evaluation hot path keys on. For packable spaces (cardinality
// fits uint64, the common case) the hash is injective: it is the seeded
// mixed-radix pack of the genome through an invertible finalizer, so equal
// hashes imply equal points. Larger spaces chain a strong per-gene mix and
// may collide; hash-keyed caches verify the stored genome on hit. Equal
// points always produce equal hashes. Panics on invalid points, like Key.
func (s *Space) Hash64(pt Point) uint64 {
	if len(pt) != len(s.params) {
		panic(fmt.Sprintf("param: point has %d genes, space has %d parameters", len(pt), len(s.params)))
	}
	if s.packable {
		n := uint64(0)
		for i, v := range pt {
			c := s.packCards[i]
			if uint64(v) >= c { // also catches v < 0 via wraparound
				panic(s.Validate(pt))
			}
			n = n*c + uint64(v)
		}
		return mix64(n ^ s.hashSeed)
	}
	h := s.hashSeed
	for i, v := range pt {
		if uint64(v) >= s.packCards[i] {
			panic(s.Validate(pt))
		}
		h = mix64(h ^ (uint64(v) + hashSeedBase))
	}
	return h
}

// HashInjective reports whether Hash64 is injective for this space (equal
// hashes imply equal points), which holds whenever the space's cardinality
// fits a uint64 flat index.
func (s *Space) HashInjective() bool { return s.packable }

// AppendPacked appends pt's genes to dst as fixed-width int32 - the packed
// genome form hash-keyed caches store for collision verification. Gene
// indices always fit int32 (NewSpace enforces the per-parameter bound).
// Panics on invalid points.
func (s *Space) AppendPacked(dst []int32, pt Point) []int32 {
	if len(pt) != len(s.params) {
		panic(fmt.Sprintf("param: point has %d genes, space has %d parameters", len(pt), len(s.params)))
	}
	for i, v := range pt {
		if uint64(v) >= s.packCards[i] {
			panic(s.Validate(pt))
		}
		dst = append(dst, int32(v))
	}
	return dst
}

// UnpackPoint converts a packed genome produced by AppendPacked back into a
// Point.
func (s *Space) UnpackPoint(packed []int32) Point {
	pt := make(Point, len(packed))
	for i, v := range packed {
		pt[i] = int(v)
	}
	return pt
}

// PackedEqual reports whether a packed genome and a Point assign identical
// value indices - the collision-verification compare on hash-keyed cache
// hits.
func PackedEqual(packed []int32, pt Point) bool {
	if len(packed) != len(pt) {
		return false
	}
	for i, v := range packed {
		if int(v) != pt[i] {
			return false
		}
	}
	return true
}
