package param_test

import (
	"fmt"

	"nautilus/internal/param"
)

// Defining an IP generator's design space and addressing its points.
func Example() {
	space := param.MustSpace(
		param.Levels("vcs", 1, 2, 4, 8),
		param.Pow2("width", 5, 8), // 32..256
		param.Choice("alloc", "sep_if", "wavefront"),
		param.Flag("speculative"),
	)
	fmt.Println("points:", space.Cardinality())

	pt := make(param.Point, space.Len())
	pt = space.Set(pt, "vcs", "4")
	pt = space.Set(pt, "alloc", "wavefront")
	fmt.Println(space.Describe(pt))
	fmt.Println("vcs:", space.Int(pt, "vcs"), "spec:", space.Bool(pt, "speculative"))
	// Output:
	// points: 64
	// vcs=4 width=32 alloc=wavefront speculative=off
	// vcs: 4 spec: false
}

// Enumerating a space visits every point exactly once.
func ExampleSpace_Enumerate() {
	space := param.MustSpace(param.Int("a", 0, 1, 1), param.Flag("b"))
	space.Enumerate(func(pt param.Point) bool {
		fmt.Println(space.Describe(pt))
		return true
	})
	// Output:
	// a=0 b=off
	// a=0 b=on
	// a=1 b=off
	// a=1 b=on
}
