// Package param models the parameter spaces exposed by hardware IP
// generators.
//
// A Space is an ordered list of named parameters; a Point is one concrete
// assignment, stored as one small integer index per parameter (the "genome"
// encoding used by the genetic-algorithm packages). The package supports
// integer ranges with stepping, power-of-two ranges, ordered and unordered
// categorical choices, and boolean flags, mirroring the kinds of parameters
// found in real IP generators such as the Stanford open-source VC router or
// the Spiral FFT generator.
package param

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the flavor of a parameter.
type Kind int

// The supported parameter kinds.
const (
	KindInt  Kind = iota // integer range with uniform stepping
	KindPow2             // powers of two between 2^minExp and 2^maxExp
	KindChoice
	KindOrderedChoice
	KindFlag
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindPow2:
		return "pow2"
	case KindChoice:
		return "choice"
	case KindOrderedChoice:
		return "ordered-choice"
	case KindFlag:
		return "flag"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Param describes a single IP generator parameter. Parameters are immutable
// after construction; all constructors panic on invalid arguments because
// parameter definitions are author-written constants, not runtime input.
type Param struct {
	name    string
	kind    Kind
	ints    []int    // materialized numeric levels (KindInt, KindPow2)
	strs    []string // labels (KindChoice, KindOrderedChoice, KindFlag)
	ordered bool
}

// Int returns an integer parameter taking the values min, min+step, ...
// up to and including max (when reachable).
func Int(name string, min, max, step int) *Param {
	if name == "" {
		panic("param: empty name")
	}
	if step <= 0 {
		panic(fmt.Sprintf("param %q: non-positive step %d", name, step))
	}
	if max < min {
		panic(fmt.Sprintf("param %q: max %d < min %d", name, max, min))
	}
	var vals []int
	for v := min; v <= max; v += step {
		vals = append(vals, v)
	}
	return &Param{name: name, kind: KindInt, ints: vals, ordered: true}
}

// Levels returns an integer parameter taking exactly the given values.
// The values must be strictly increasing.
func Levels(name string, values ...int) *Param {
	if name == "" {
		panic("param: empty name")
	}
	if len(values) == 0 {
		panic(fmt.Sprintf("param %q: no values", name))
	}
	if !sort.IntsAreSorted(values) {
		panic(fmt.Sprintf("param %q: values not sorted", name))
	}
	for i := 1; i < len(values); i++ {
		if values[i] == values[i-1] {
			panic(fmt.Sprintf("param %q: duplicate value %d", name, values[i]))
		}
	}
	vals := append([]int(nil), values...)
	return &Param{name: name, kind: KindInt, ints: vals, ordered: true}
}

// Pow2 returns a parameter taking the values 2^minExp .. 2^maxExp.
func Pow2(name string, minExp, maxExp int) *Param {
	if minExp < 0 || maxExp < minExp || maxExp > 30 {
		panic(fmt.Sprintf("param %q: bad exponent range [%d,%d]", name, minExp, maxExp))
	}
	var vals []int
	for e := minExp; e <= maxExp; e++ {
		vals = append(vals, 1<<uint(e))
	}
	return &Param{name: name, kind: KindPow2, ints: vals, ordered: true}
}

// Choice returns an unordered categorical parameter. Unordered choices have
// no numeric axis, so directional hints (bias, target stepping) do not apply
// to them unless an ordering is later established via Ordered.
func Choice(name string, values ...string) *Param {
	if name == "" {
		panic("param: empty name")
	}
	if len(values) < 2 {
		panic(fmt.Sprintf("param %q: need at least two choices", name))
	}
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		if seen[v] {
			panic(fmt.Sprintf("param %q: duplicate choice %q", name, v))
		}
		seen[v] = true
	}
	return &Param{name: name, kind: KindChoice, strs: append([]string(nil), values...)}
}

// OrderedChoice returns a categorical parameter whose values carry a
// meaningful order (for example allocator variants ordered by expected clock
// frequency). The order given is the numeric axis used by directional hints.
func OrderedChoice(name string, values ...string) *Param {
	p := Choice(name, values...)
	p.kind = KindOrderedChoice
	p.ordered = true
	return p
}

// Flag returns a boolean parameter with values "off" (0) and "on" (1).
func Flag(name string) *Param {
	return &Param{
		name: name, kind: KindFlag,
		strs: []string{"off", "on"}, ordered: true,
	}
}

// Ordered returns a copy of an unordered Choice parameter whose values are
// re-declared as ordered in the sequence given. This implements the paper's
// auxiliary "ordering relationship" hint for categorical parameters. The new
// order must be a permutation of the existing values.
func (p *Param) Ordered(order ...string) *Param {
	if p.kind != KindChoice {
		panic(fmt.Sprintf("param %q: Ordered applies to unordered choices", p.name))
	}
	if len(order) != len(p.strs) {
		panic(fmt.Sprintf("param %q: ordering has %d values, want %d", p.name, len(order), len(p.strs)))
	}
	seen := make(map[string]bool, len(order))
	for _, v := range order {
		if p.indexOfString(v) < 0 {
			panic(fmt.Sprintf("param %q: unknown value %q in ordering", p.name, v))
		}
		if seen[v] {
			panic(fmt.Sprintf("param %q: duplicate value %q in ordering", p.name, v))
		}
		seen[v] = true
	}
	return &Param{
		name: p.name, kind: KindOrderedChoice,
		strs: append([]string(nil), order...), ordered: true,
	}
}

func (p *Param) indexOfString(s string) int {
	for i, v := range p.strs {
		if v == s {
			return i
		}
	}
	return -1
}

// Name returns the parameter's name.
func (p *Param) Name() string { return p.name }

// Kind returns the parameter's kind.
func (p *Param) Kind() Kind { return p.kind }

// Card returns the number of distinct values the parameter can take.
func (p *Param) Card() int {
	if len(p.ints) > 0 {
		return len(p.ints)
	}
	return len(p.strs)
}

// IsOrdered reports whether the parameter's values form a meaningful numeric
// axis, making directional hints applicable.
func (p *Param) IsOrdered() bool { return p.ordered }

// Numeric returns the numeric interpretation of value index idx and whether
// one exists. Integer and power-of-two parameters return their actual value;
// ordered choices and flags return the index along their declared order;
// unordered choices return ok=false.
func (p *Param) Numeric(idx int) (v float64, ok bool) {
	if idx < 0 || idx >= p.Card() {
		panic(fmt.Sprintf("param %q: index %d out of range [0,%d)", p.name, idx, p.Card()))
	}
	switch p.kind {
	case KindInt, KindPow2:
		return float64(p.ints[idx]), true
	case KindOrderedChoice, KindFlag:
		return float64(idx), true
	}
	return math.NaN(), false
}

// IntValue returns the integer value at index idx. It panics for categorical
// parameters; flags return 0 or 1.
func (p *Param) IntValue(idx int) int {
	if idx < 0 || idx >= p.Card() {
		panic(fmt.Sprintf("param %q: index %d out of range [0,%d)", p.name, idx, p.Card()))
	}
	switch p.kind {
	case KindInt, KindPow2:
		return p.ints[idx]
	case KindFlag:
		return idx
	}
	panic(fmt.Sprintf("param %q: IntValue on %s parameter", p.name, p.kind))
}

// StringValue returns the human-readable value at index idx.
func (p *Param) StringValue(idx int) string {
	if idx < 0 || idx >= p.Card() {
		panic(fmt.Sprintf("param %q: index %d out of range [0,%d)", p.name, idx, p.Card()))
	}
	if len(p.strs) > 0 {
		return p.strs[idx]
	}
	return fmt.Sprintf("%d", p.ints[idx])
}

// IndexOf returns the value index whose string form equals s, or -1.
func (p *Param) IndexOf(s string) int {
	if len(p.strs) > 0 {
		return p.indexOfString(s)
	}
	for i, v := range p.ints {
		if fmt.Sprintf("%d", v) == s {
			return i
		}
	}
	return -1
}

// IndexOfInt returns the value index holding integer v, or -1.
func (p *Param) IndexOfInt(v int) int {
	for i, x := range p.ints {
		if x == v {
			return i
		}
	}
	if p.kind == KindFlag && (v == 0 || v == 1) {
		return v
	}
	return -1
}

// NearestIndex returns the index of the value closest (on the numeric axis)
// to v. It panics for unordered parameters.
func (p *Param) NearestIndex(v float64) int {
	if !p.ordered {
		panic(fmt.Sprintf("param %q: NearestIndex on unordered parameter", p.name))
	}
	best, bestDist := 0, math.Inf(1)
	for i := 0; i < p.Card(); i++ {
		n, _ := p.Numeric(i)
		if d := math.Abs(n - v); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Point is one concrete parameter assignment: Point[i] is the value index of
// the i-th parameter of its Space. Points are plain slices so they double as
// GA genomes.
type Point []int

// Clone returns an independent copy of the point.
func (pt Point) Clone() Point {
	return append(Point(nil), pt...)
}

// Equal reports whether two points assign identical value indices.
func (pt Point) Equal(other Point) bool {
	if len(pt) != len(other) {
		return false
	}
	for i := range pt {
		if pt[i] != other[i] {
			return false
		}
	}
	return true
}

// Space is an ordered collection of parameters defining an IP design space.
type Space struct {
	params []*Param
	index  map[string]int

	// Genome-hashing state, precomputed at construction (see Hash64).
	// packCards holds each parameter's cardinality as uint64 for the
	// mixed-radix pack; packable reports that the full space fits a uint64
	// flat index, making the pack injective. hashSeed decorrelates hash
	// streams across space shapes.
	packCards []uint64
	packable  bool
	hashSeed  uint64
}

// NewSpace builds a Space from the given parameters. Parameter names must be
// unique.
func NewSpace(params ...*Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("param: space needs at least one parameter")
	}
	idx := make(map[string]int, len(params))
	for i, p := range params {
		if p == nil {
			return nil, fmt.Errorf("param: nil parameter at position %d", i)
		}
		if _, dup := idx[p.name]; dup {
			return nil, fmt.Errorf("param: duplicate parameter name %q", p.name)
		}
		if p.Card() > math.MaxInt32 {
			return nil, fmt.Errorf("param: parameter %q has %d values, beyond the packed-genome limit", p.name, p.Card())
		}
		idx[p.name] = i
	}
	s := &Space{params: append([]*Param(nil), params...), index: idx}
	s.initHash()
	return s, nil
}

// MustSpace is NewSpace that panics on error, for compile-time-constant
// space definitions.
func MustSpace(params ...*Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of parameters.
func (s *Space) Len() int { return len(s.params) }

// Param returns the i-th parameter.
func (s *Space) Param(i int) *Param { return s.params[i] }

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// ByName returns the named parameter or nil.
func (s *Space) ByName(name string) *Param {
	if i, ok := s.index[name]; ok {
		return s.params[i]
	}
	return nil
}

// Names returns the parameter names in declaration order.
func (s *Space) Names() []string {
	out := make([]string, len(s.params))
	for i, p := range s.params {
		out[i] = p.name
	}
	return out
}

// Cardinality returns the total number of points in the space. It saturates
// at math.MaxUint64 on overflow.
func (s *Space) Cardinality() uint64 {
	total := uint64(1)
	for _, p := range s.params {
		c := uint64(p.Card())
		if total > math.MaxUint64/c {
			return math.MaxUint64
		}
		total *= c
	}
	return total
}

// Validate reports whether pt is a structurally valid point of the space.
func (s *Space) Validate(pt Point) error {
	if len(pt) != len(s.params) {
		return fmt.Errorf("param: point has %d genes, space has %d parameters", len(pt), len(s.params))
	}
	for i, v := range pt {
		if v < 0 || v >= s.params[i].Card() {
			return fmt.Errorf("param: gene %d (%s) index %d out of range [0,%d)",
				i, s.params[i].name, v, s.params[i].Card())
		}
	}
	return nil
}

// Random returns a uniformly random point of the space.
func (s *Space) Random(r *rand.Rand) Point {
	return s.RandomInto(r, make(Point, len(s.params)))
}

// RandomInto fills dst (which must have length Len) with a uniformly random
// point and returns it - Random without the allocation, for callers placing
// genomes into preallocated arenas. The RNG draw sequence is identical to
// Random's, so the two are interchangeable in a deterministic run.
func (s *Space) RandomInto(r *rand.Rand, dst Point) Point {
	if len(dst) != len(s.params) {
		panic(fmt.Sprintf("param: RandomInto dst has %d genes, space has %d parameters", len(dst), len(s.params)))
	}
	for i, p := range s.params {
		dst[i] = r.Intn(p.Card())
	}
	return dst
}

// PointAt returns the point with flat enumeration index n, where the last
// parameter varies fastest. n must be < Cardinality().
func (s *Space) PointAt(n uint64) Point {
	if c := s.Cardinality(); n >= c {
		panic(fmt.Sprintf("param: flat index %d out of range [0,%d)", n, c))
	}
	pt := make(Point, len(s.params))
	for i := len(s.params) - 1; i >= 0; i-- {
		c := uint64(s.params[i].Card())
		pt[i] = int(n % c)
		n /= c
	}
	return pt
}

// FlatIndex is the inverse of PointAt.
func (s *Space) FlatIndex(pt Point) uint64 {
	if err := s.Validate(pt); err != nil {
		panic(err)
	}
	var n uint64
	for i, v := range pt {
		n = n*uint64(s.params[i].Card()) + uint64(v)
	}
	return n
}

// Enumerate calls yield for every point of the space in flat-index order,
// stopping early if yield returns false. The Point passed to yield is reused
// between calls; clone it to retain it.
func (s *Space) Enumerate(yield func(Point) bool) {
	pt := make(Point, len(s.params))
	for {
		if !yield(pt) {
			return
		}
		i := len(pt) - 1
		for i >= 0 {
			pt[i]++
			if pt[i] < s.params[i].Card() {
				break
			}
			pt[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// Key returns a canonical, compact string key for the point, suitable for
// map keys and dataset files.
func (s *Space) Key(pt Point) string {
	if err := s.Validate(pt); err != nil {
		panic(err)
	}
	// Keys are built once per dispatched design point, so this is one of
	// the search's hottest paths: strconv into a preallocated buffer, not
	// fmt, keeps it to a single allocation.
	buf := make([]byte, 0, 8*len(pt))
	for i, v := range pt {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return string(buf)
}

// ParseKey is the inverse of Key. Only the canonical encoding Key emits is
// accepted: each gene must be a bare decimal with no sign, whitespace, or
// leading zeros. ParseKey sits on every cache-restore path, so it parses
// with strconv rather than fmt scanning.
func (s *Space) ParseKey(key string) (Point, error) {
	parts := strings.Split(key, ",")
	if len(parts) != len(s.params) {
		return nil, fmt.Errorf("param: key %q has %d genes, want %d", key, len(parts), len(s.params))
	}
	pt := make(Point, len(parts))
	for i, part := range parts {
		v, err := parseGene(part)
		if err != nil {
			return nil, fmt.Errorf("param: bad gene %q in key: %v", part, err)
		}
		pt[i] = v
	}
	if err := s.Validate(pt); err != nil {
		return nil, err
	}
	return pt, nil
}

// parseGene parses one canonical gene encoding: ASCII digits only, no sign,
// no whitespace, no leading zeros (the forms Key never emits).
func parseGene(g string) (int, error) {
	if g == "" {
		return 0, fmt.Errorf("empty gene")
	}
	if g[0] < '0' || g[0] > '9' {
		return 0, fmt.Errorf("non-canonical encoding")
	}
	if g[0] == '0' && len(g) > 1 {
		return 0, fmt.Errorf("non-canonical leading zero")
	}
	return strconv.Atoi(g)
}

// Describe renders the point as "name=value name=value ..." for logs and CLI
// output.
func (s *Space) Describe(pt Point) string {
	if err := s.Validate(pt); err != nil {
		return fmt.Sprintf("<invalid point: %v>", err)
	}
	var b strings.Builder
	for i, p := range s.params {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", p.name, p.StringValue(pt[i]))
	}
	return b.String()
}

// Int returns the integer value assigned to the named parameter.
func (s *Space) Int(pt Point, name string) int {
	return s.mustParam(name).IntValue(pt[s.index[name]])
}

// String returns the string value assigned to the named parameter.
func (s *Space) String(pt Point, name string) string {
	return s.mustParam(name).StringValue(pt[s.index[name]])
}

// Bool returns the value of the named flag parameter.
func (s *Space) Bool(pt Point, name string) bool {
	p := s.mustParam(name)
	if p.kind != KindFlag {
		panic(fmt.Sprintf("param %q: Bool on %s parameter", name, p.kind))
	}
	return pt[s.index[name]] == 1
}

// Set returns a copy of pt with the named parameter set to the value whose
// string form is value. It panics if the parameter or value is unknown;
// intended for tests and example programs.
func (s *Space) Set(pt Point, name, value string) Point {
	p := s.mustParam(name)
	idx := p.IndexOf(value)
	if idx < 0 {
		panic(fmt.Sprintf("param %q: unknown value %q", name, value))
	}
	out := pt.Clone()
	out[s.index[name]] = idx
	return out
}

func (s *Space) mustParam(name string) *Param {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("param: unknown parameter %q", name))
	}
	return s.params[i]
}
