package param

import "testing"

// FuzzParseKey checks that arbitrary key strings never panic the parser and
// that accepted keys round-trip exactly.
func FuzzParseKey(f *testing.F) {
	s := MustSpace(
		Int("a", 0, 7, 1),
		Choice("b", "x", "y", "z"),
		Flag("c"),
	)
	f.Add("0,0,0")
	f.Add("7,2,1")
	f.Add("")
	f.Add("1,2")
	f.Add("-1,0,0")
	f.Add("a,b,c")
	f.Add("1,1,1,1,1,1,1,1")
	f.Add("999999999999999999999,0,0")
	f.Fuzz(func(t *testing.T, key string) {
		pt, err := s.ParseKey(key)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := s.Validate(pt); verr != nil {
			t.Fatalf("ParseKey(%q) accepted invalid point: %v", key, verr)
		}
		if got := s.Key(pt); got != key {
			// Keys are canonical, so acceptance implies exact round-trip.
			t.Fatalf("round trip %q -> %q", key, got)
		}
	})
}
