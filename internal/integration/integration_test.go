// Package integration exercises the complete IP-user story end to end, per
// bundled generator: characterize (or calibrate hints over) the design
// space, run a guided search for a stated goal, verify the answer's quality
// against ground truth, and emit RTL for the winning configuration.
package integration

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/fft"
	"nautilus/internal/ga"
	"nautilus/internal/gemm"
	"nautilus/internal/hintcal"
	"nautilus/internal/metrics"
	"nautilus/internal/noc"
	"nautilus/internal/param"
	"nautilus/internal/resilience"
	"nautilus/internal/resilience/faulty"
)

func TestEndToEndFFT(t *testing.T) {
	// The IP ships with its space, evaluator, and expert hints.
	space := fft.Space()
	eval := func(pt param.Point) (metrics.Metrics, error) { return fft.Evaluate(space, pt) }
	obj := metrics.MinimizeMetric(metrics.LUTs)
	guidance, err := fft.ExpertHints().GuidanceForObjective(obj, 0.9)
	if err != nil {
		t.Fatal(err)
	}

	// The user states a goal and runs the search.
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space: space, Objective: obj, Evaluate: eval, Config: ga.Config{Seed: 11},
	}, core.WithGuidance(guidance))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("no design found")
	}

	// Ground truth: the answer must sit in the top 1% of the full space.
	ds, err := dataset.Build(space, eval)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.InTopPercent(obj, res.BestValue, 1) {
		t.Errorf("found %v LUTs, not in the top 1%% (optimum %v)",
			res.BestValue, ds.Quantile(obj, 0))
	}
	// ...at a tiny fraction of exhaustive cost.
	if res.DistinctEvals > ds.Size()/10 {
		t.Errorf("spent %d evals, more than 10%% of the space", res.DistinctEvals)
	}

	// The generator emits RTL for the chosen configuration.
	design, err := fft.Decode(space, res.BestPoint).Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Check(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(design.Verilog(), "module fft_top") {
		t.Error("emitted RTL missing top module")
	}
}

func TestEndToEndNoC(t *testing.T) {
	// No expert available: hints are estimated from a small sample, the
	// paper's non-expert path.
	space := noc.RouterSpace()
	eval := func(pt param.Point) (metrics.Metrics, error) { return noc.RouterEvaluate(space, pt) }
	obj := metrics.MaximizeMetric(metrics.FmaxMHz)

	lib, spent, err := hintcal.Estimate(space, eval,
		[]string{metrics.FmaxMHz, metrics.LUTs}, hintcal.Options{Budget: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if spent > 120 {
		t.Errorf("calibration spent %d evals, want near 80", spent)
	}
	guidance, err := lib.GuidanceForObjective(obj, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space: space, Objective: obj, Evaluate: eval, Config: ga.Config{Seed: 3},
	}, core.WithGuidance(guidance))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("no design found")
	}
	ds, err := dataset.Build(space, eval)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.InTopPercent(obj, res.BestValue, 2) {
		t.Errorf("found %.1f MHz, not in the top 2%% (best %.1f)",
			res.BestValue, ds.Quantile(obj, 0))
	}

	design, err := noc.DecodeRouter(space, res.BestPoint).Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndGEMMWithConstraints(t *testing.T) {
	// A constrained composite query on the third generator: maximize
	// compute efficiency subject to an area budget.
	space := gemm.Space()
	eval := func(pt param.Point) (metrics.Metrics, error) { return gemm.Evaluate(space, pt) }
	base := metrics.MaximizeDerived("gmacs_per_lut", metrics.Ratio(gemm.MetricGMACS, metrics.LUTs))
	obj := base.Constrained(metrics.AtMost(metrics.LUTs, 20000))
	guidance, err := gemm.ExpertHints().Guidance(metrics.Maximize, map[string]float64{
		gemm.MetricEfficiency: 1,
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space: space, Objective: obj, Evaluate: eval, Config: ga.Config{Seed: 7},
	}, core.WithGuidance(guidance))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("no feasible design found")
	}
	m, err := eval(res.BestPoint)
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := m.Get(metrics.LUTs); l > 20000 {
		t.Errorf("constraint violated: %v LUTs", l)
	}
	design, err := gemm.Decode(space, res.BestPoint).Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndNetworkSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed search is slow")
	}
	// A search whose evaluator mixes synthesis metrics with cycle-based
	// simulation: maximize saturation throughput within a power budget.
	space := noc.NetworkSpace()
	eval := func(pt param.Point) (metrics.Metrics, error) {
		m, err := noc.NetworkEvaluate(space, pt)
		if err != nil {
			return nil, err
		}
		sim, err := noc.DecodeNetwork(space, pt).SimulatePerformance(9)
		if err != nil {
			return nil, err
		}
		m[noc.MetricSatThroughput] = sim[noc.MetricSatThroughput]
		return m, nil
	}
	obj := metrics.MaximizeMetric(noc.MetricSatThroughput).
		Constrained(metrics.AtMost(metrics.PowerMW, 6000))
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space: space, Objective: obj, Evaluate: eval,
		Config: ga.Config{Seed: 2, Generations: 5, PopulationSize: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("no feasible network found")
	}
	m, err := eval(res.BestPoint)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := m.Get(metrics.PowerMW); p > 6000 {
		t.Errorf("power budget violated: %v mW", p)
	}
}

// TestDispatchEquivalenceUnderFaults runs the same supervised FFT search
// under both dispatch modes with 20% of design points injecting transient
// faults (the PR 3 resilience configuration): retries absorb the faults
// inside the evaluation layer, so both modes must still produce results
// identical to each other and to the fault-free run.
func TestDispatchEquivalenceUnderFaults(t *testing.T) {
	space := fft.Space()
	obj := metrics.MinimizeMetric(metrics.LUTs)
	base := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		return fft.Evaluate(space, pt)
	}
	run := func(dispatch string, injectFaults bool) ga.Result {
		t.Helper()
		eval := dataset.ContextEvaluator(base)
		if injectFaults {
			inj, err := faulty.NewContext(space, eval, faulty.Config{
				TransientRate:     0.2,
				TransientFailures: 1,
				Seed:              5,
			})
			if err != nil {
				t.Fatal(err)
			}
			eval = inj.Evaluate
		}
		sup, err := resilience.NewSupervisor(space, eval, resilience.Policy{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Search(context.Background(), core.SearchRequest{
			Space:       space,
			Objective:   obj,
			EvaluateCtx: sup.Evaluate,
			Config: ga.Config{
				Seed:           3,
				PopulationSize: 8,
				Generations:    25,
				Parallelism:    4,
				Dispatch:       dispatch,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := run(ga.DispatchSingle, false)
	single := run(ga.DispatchSingle, true)
	batch := run(ga.DispatchBatch, true)
	if !reflect.DeepEqual(single, batch) {
		t.Errorf("dispatch modes disagree under faults:\nsingle: %+v\nbatch:  %+v", single, batch)
	}
	if !reflect.DeepEqual(clean, single) {
		t.Errorf("supervised faulty run differs from fault-free run:\nclean:  %+v\nfaulty: %+v", clean, single)
	}
}
