// Package pool provides a bounded worker pool with deterministic,
// index-ordered results - the orchestration primitive behind the parallel
// experiment harness.
//
// Every fan-out in this repository (GA trials, figure variants, whole
// figures, design-space enumerations, population fitness evaluation) is a
// fixed list of independent jobs whose *outputs* must not depend on
// scheduling. Map and Each therefore identify jobs by index: a fixed set of
// workers claims indices from a shared counter, and results land in a
// pre-sized slice slot per index. Running with parallelism 1 and
// parallelism N yields identical result slices.
package pool

import (
	"context"
	"sync"
	"sync/atomic"

	"nautilus/internal/telemetry"
)

// Map runs fn(i) for every i in [0,n) using at most parallelism concurrent
// workers and returns the n results in index order.
//
// If a call fails, workers stop claiming new indices, Map waits for
// in-flight calls, and the error with the lowest index among those recorded
// is returned. With parallelism <= 1 the jobs run sequentially on the
// calling goroutine and the first error returns immediately.
func Map[T any](parallelism, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapRec[T](parallelism, n, fn, nil)
}

// MapRec is Map with scheduling telemetry: each task run, worker start
// (busy), and worker exit (idle) is reported to rec, so pool occupancy and
// effective parallelism are observable. A nil rec records nothing and
// costs nothing; recording never alters scheduling or results.
func MapRec[T any](parallelism, n int, fn func(i int) (T, error), rec telemetry.Recorder) ([]T, error) {
	rec = telemetry.OrNop(rec)
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerBusy, Worker: 0})
		defer rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerIdle, Worker: 0})
		for i := 0; i < n; i++ {
			v, err := fn(i)
			rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolTask, Worker: 0})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerBusy, Worker: w})
			defer rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerIdle, Worker: w})
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolTask, Worker: w})
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// EachCtx is Each under a context: workers stop claiming new indices once
// ctx is canceled, in-flight calls run to completion (the pool fully
// drains), and the context's error is returned whenever it was canceled -
// even when every index had already been claimed, because in-flight calls
// may have observed the canceled context and produced void results. A nil
// error therefore guarantees every index ran under a live context.
func EachCtx(ctx context.Context, parallelism, n int, fn func(i int)) error {
	return EachRecCtx(ctx, parallelism, n, fn, nil)
}

// EachRecCtx is EachCtx with scheduling telemetry, mirroring MapRec.
//
// Cancellation is a claim barrier, not a preemption: fn itself observes ctx
// only if its closure captures it. Workers always drain - after EachRecCtx
// returns, no pool goroutine remains, which is what makes mid-run timeout
// storms safe (see the drain test).
func EachRecCtx(ctx context.Context, parallelism, n int, fn func(i int), rec telemetry.Recorder) error {
	rec = telemetry.OrNop(rec)
	if n == 0 {
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerBusy, Worker: 0})
		defer rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerIdle, Worker: 0})
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
			rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolTask, Worker: 0})
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerBusy, Worker: w})
			defer rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerIdle, Worker: w})
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolTask, Worker: w})
			}
		}(w)
	}
	wg.Wait()
	// Checked after the drain, not via a worker-observed flag: a cancel that
	// lands once every index is claimed is still a cancel - the in-flight
	// calls may have seen the dead context, so their results cannot be
	// trusted as a completed batch.
	return ctx.Err()
}

// Each runs fn(i) for every i in [0,n) using at most parallelism concurrent
// workers and waits for all calls to finish. It is Map for side-effecting
// jobs that cannot fail (e.g. filling a pre-allocated slice in place).
func Each(parallelism, n int, fn func(i int)) {
	EachRec(parallelism, n, fn, nil)
}

// EachRec is Each with scheduling telemetry, mirroring MapRec.
func EachRec(parallelism, n int, fn func(i int), rec telemetry.Recorder) {
	rec = telemetry.OrNop(rec)
	if n == 0 {
		return
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerBusy, Worker: 0})
		defer rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerIdle, Worker: 0})
		for i := 0; i < n; i++ {
			fn(i)
			rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolTask, Worker: 0})
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerBusy, Worker: w})
			defer rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolWorkerIdle, Worker: w})
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				rec.RecordPool(telemetry.PoolRecord{Event: telemetry.PoolTask, Worker: w})
			}
		}(w)
	}
	wg.Wait()
}
