package pool

import (
	"sync"
	"testing"

	"nautilus/internal/telemetry"
)

// poolEventCounter is a minimal Recorder counting scheduling events and
// tracking instantaneous/peak worker occupancy.
type poolEventCounter struct {
	mu    sync.Mutex
	tasks int
	busy  int
	idle  int
	cur   int
	peak  int
}

func (c *poolEventCounter) Enabled() bool                               { return true }
func (c *poolEventCounter) RecordGeneration(telemetry.GenerationRecord) {}
func (c *poolEventCounter) RecordEvaluation(telemetry.EvaluationRecord) {}
func (c *poolEventCounter) RecordHint(telemetry.HintRecord)             {}
func (c *poolEventCounter) RecordCache(telemetry.CacheRecord)           {}

func (c *poolEventCounter) RecordPool(p telemetry.PoolRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch p.Event {
	case telemetry.PoolTask:
		c.tasks++
	case telemetry.PoolWorkerBusy:
		c.busy++
		c.cur++
		if c.cur > c.peak {
			c.peak = c.cur
		}
	case telemetry.PoolWorkerIdle:
		c.idle++
		c.cur--
	}
}

// TestMapRecTelemetry checks every task is reported, every worker that
// went busy also went idle, and occupancy never exceeds the requested
// parallelism - on both the sequential and the parallel path.
func TestMapRecTelemetry(t *testing.T) {
	for _, par := range []int{1, 4} {
		rec := &poolEventCounter{}
		const n = 20
		out, err := MapRec(par, n, func(i int) (int, error) { return i * i, nil }, rec)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par %d: out[%d] = %d, recording changed results", par, i, v)
			}
		}
		if rec.tasks != n {
			t.Errorf("par %d: task events = %d, want %d", par, rec.tasks, n)
		}
		if rec.busy != rec.idle {
			t.Errorf("par %d: busy events %d != idle events %d", par, rec.busy, rec.idle)
		}
		if rec.busy < 1 || rec.busy > par {
			t.Errorf("par %d: %d workers started, want 1..%d", par, rec.busy, par)
		}
		if rec.peak > par {
			t.Errorf("par %d: peak occupancy %d exceeds parallelism", par, rec.peak)
		}
		if rec.cur != 0 {
			t.Errorf("par %d: occupancy %d after completion, want 0", par, rec.cur)
		}
	}
}

// TestEachRecTelemetry mirrors TestMapRecTelemetry for the side-effecting
// variant, and checks the collector's occupancy gauges settle back to zero.
func TestEachRecTelemetry(t *testing.T) {
	col := telemetry.NewCollector(nil)
	var hits [32]int
	EachRec(4, len(hits), func(i int) { hits[i]++ }, col)
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	snap := col.Registry().Snapshot()
	if got := snap.Counters[telemetry.MetricPoolTasks]; got != int64(len(hits)) {
		t.Errorf("pool tasks = %d, want %d", got, len(hits))
	}
	if got := snap.Gauges[telemetry.MetricPoolBusy]; got != 0 {
		t.Errorf("workers busy after completion = %v, want 0", got)
	}
	if peak := snap.Gauges[telemetry.MetricPoolBusyMax]; peak < 1 || peak > 4 {
		t.Errorf("peak workers busy = %v, want 1..4", peak)
	}
}
