package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, par := range []int{1, 2, 4, 16} {
		out, err := Map(par, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(out) != 100 {
			t.Fatalf("par=%d: got %d results", par, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapIdenticalAtAnyParallelism(t *testing.T) {
	run := func(par int) []string {
		out, err := Map(par, 37, func(i int) (string, error) {
			return fmt.Sprintf("job-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, par := range []int{2, 8, 64} {
		got := run(par)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("par=%d diverges at %d: %q vs %q", par, i, got[i], seq[i])
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int64
	_, err := Map(par, 50, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Errorf("peak concurrency %d exceeds parallelism %d", p, par)
	}
}

func TestMapError(t *testing.T) {
	wantErr := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(4, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 5 {
			return 0, wantErr
		}
		time.Sleep(200 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// Early stop: an error must prevent the pool from churning through the
	// whole index range.
	if c := calls.Load(); c == 1000 {
		t.Error("pool did not stop early after an error")
	}
}

func TestMapSequentialErrorStopsImmediately(t *testing.T) {
	var calls int
	_, err := Map(1, 100, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 4 {
		t.Errorf("sequential path made %d calls, want 4", calls)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(8, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(8, 0) = %v, %v", out, err)
	}
}

func TestEach(t *testing.T) {
	for _, par := range []int{1, 4} {
		out := make([]int, 64)
		Each(par, len(out), func(i int) { out[i] = i + 1 })
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("par=%d: out[%d] = %d", par, i, v)
			}
		}
	}
	Each(4, 0, func(i int) { t.Error("fn called for n=0") })
}

// TestEachCtxRunsAll proves the ctx variant is a drop-in Each when the
// context never cancels.
func TestEachCtxRunsAll(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		var ran atomic.Int64
		if err := EachCtx(context.Background(), par, 200, func(i int) { ran.Add(1) }); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if ran.Load() != 200 {
			t.Fatalf("par=%d: ran %d of 200", par, ran.Load())
		}
	}
}

// TestEachCtxCancelDrainsWorkers cancels a pool mid-run under a timeout
// storm (every task blocks until cancellation) and proves that (a) EachCtx
// returns only after every in-flight task finished, and (b) no pool worker
// goroutine survives the call - the mid-run-timeout leak the supervisor
// relies on never happening.
func TestEachCtxCancelDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		const par = 8
		var started, finished atomic.Int64
		err := EachCtx(ctx, par, 1000, func(i int) {
			started.Add(1)
			if started.Load() == par {
				cancel() // storm: cancel once the pool is saturated
			}
			<-ctx.Done() // every in-flight task blocks until cancellation
			finished.Add(1)
		})
		cancel()
		if err == nil {
			t.Fatalf("round %d: want context error after cancellation", round)
		}
		if s, f := started.Load(), finished.Load(); s != f {
			t.Fatalf("round %d: %d tasks started but only %d finished before return", round, s, f)
		}
		if s := started.Load(); s >= 1000 {
			t.Fatalf("round %d: cancellation did not stop index claiming (%d claimed)", round, s)
		}
	}
	// Workers must be gone; allow the runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation storms",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEachCtxSequentialCancel covers the parallelism<=1 inline path.
func TestEachCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := EachCtx(ctx, 1, 100, func(i int) {
		ran++
		if ran == 7 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 7 {
		t.Fatalf("ran %d tasks after cancel at 7", ran)
	}
}
