package fft

import (
	"nautilus/internal/core"
	"nautilus/internal/metrics"
)

// ExpertHints returns the IP author's hint library for the FFT generator.
//
// In the paper, the FFT hints were supplied by a member of the Spiral
// development team ("expert-guided"); here the authors of this analytical
// generator encode the same kind of first-hand knowledge of how each
// parameter drives each metric. Hints ship with the generator, as the paper
// prescribes.
func ExpertHints() *core.Library {
	lib := core.NewLibrary(Space())

	// LUT area: word width dominates (multiplier cost is quadratic in it),
	// then the number of parallel lanes and physically instantiated stages.
	luts := lib.Metric(metrics.LUTs)
	luts.SetImportance(ParamDataWidth, 90, 0).SetBias(ParamDataWidth, 0.9)
	luts.SetImportance(ParamStreamWidth, 80, 0).SetBias(ParamStreamWidth, 0.8)
	luts.SetImportance(ParamArch, 70, 0).SetBias(ParamArch, 0.7)
	luts.SetImportance(ParamRadix, 40, 0.05).SetBias(ParamRadix, 0.5)
	// LUTRAM storage burns LUTs; BRAM designs are leaner in LUT terms.
	luts.SetOrder(ParamMemory, MemBRAM, MemLUTRAM)
	luts.SetImportance(ParamMemory, 50, 0).SetBias(ParamMemory, 0.9)
	luts.SetImportance(ParamRounding, 15, 0.1).SetBias(ParamRounding, 0.3)

	// Throughput: streaming width and architecture set the samples/cycle;
	// everything else only moves the clock a little.
	tput := lib.Metric(metrics.ThroughputMSPS)
	tput.SetImportance(ParamStreamWidth, 95, 0).SetBias(ParamStreamWidth, 0.95)
	tput.SetImportance(ParamArch, 85, 0).SetBias(ParamArch, 0.9)
	tput.SetImportance(ParamDataWidth, 30, 0).SetBias(ParamDataWidth, -0.4)
	tput.SetImportance(ParamRadix, 20, 0.1).SetBias(ParamRadix, -0.2)
	tput.SetImportance(ParamRounding, 10, 0.1).SetBias(ParamRounding, -0.2)

	// Clock frequency: multiplier depth (word width) and butterfly fan-in
	// (radix) dominate; the streaming pipeline is the friendliest
	// architecture for timing.
	fmax := lib.Metric(metrics.FmaxMHz)
	fmax.SetImportance(ParamDataWidth, 60, 0).SetBias(ParamDataWidth, -0.7)
	fmax.SetImportance(ParamRadix, 50, 0).SetBias(ParamRadix, -0.6)
	fmax.SetImportance(ParamStreamWidth, 35, 0).SetBias(ParamStreamWidth, -0.4)
	fmax.SetImportance(ParamArch, 30, 0).SetTargetChoice(ParamArch, ArchStreaming)

	// Numerical quality: word width first, rounding mode second.
	snr := lib.Metric(metrics.SNRdB)
	snr.SetImportance(ParamDataWidth, 95, 0).SetBias(ParamDataWidth, 0.95)
	snr.SetImportance(ParamRounding, 40, 0).SetBias(ParamRounding, 0.6)

	// Efficiency (throughput per LUT): a composite "metric of interest" the
	// generator's users ask for, so the author hints it directly. Peak
	// efficiency is known to sit at a specific interior sweet spot - a
	// moderate streaming width over radix-4 butterflies at the narrowest
	// word width, double-pumped, with all storage in BRAM - which marginal
	// per-metric trends miss; target hints encode it.
	eff := lib.Metric("throughput_per_lut")
	eff.SetImportance(ParamDataWidth, 90, 0.03).SetTarget(ParamDataWidth, 8)
	eff.SetImportance(ParamStreamWidth, 85, 0.03).SetTarget(ParamStreamWidth, 4)
	eff.SetImportance(ParamRadix, 70, 0.03).SetTarget(ParamRadix, 4)
	eff.SetImportance(ParamArch, 70, 0.03).SetTargetChoice(ParamArch, ArchParallel)
	eff.SetImportance(ParamMemory, 60, 0.03).SetTargetChoice(ParamMemory, MemBRAM)
	eff.SetImportance(ParamRounding, 20, 0.1).SetBias(ParamRounding, -0.3)

	return lib
}

// BiasOnlyHints returns a hint library carrying exactly n bias hints for
// minimizing LUTs (n in 1..2), used by the paper's Figure 3 study of how
// result quality scales with the number of hints supplied.
func BiasOnlyHints(n int) *core.Library {
	lib := core.NewLibrary(Space())
	luts := lib.Metric(metrics.LUTs)
	if n >= 1 {
		luts.SetBias(ParamDataWidth, 0.9)
	}
	if n >= 2 {
		luts.SetBias(ParamStreamWidth, 0.8)
	}
	return lib
}
