package fft

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFFTVerilogValid(t *testing.T) {
	d := baseDesign()
	design, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Check(); err != nil {
		t.Fatalf("emitted design fails structural check: %v", err)
	}
	v := design.Verilog()
	for _, want := range []string{
		"module fft_top", "module fft_stage", "module butterfly",
		"module twiddle_rom", "module reorder_buffer",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
}

func TestFFTVerilogInfeasibleRejected(t *testing.T) {
	d := baseDesign()
	d.Radix, d.StreamWidth = 16, 1
	if _, err := d.Verilog(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible design emitted RTL: %v", err)
	}
}

func TestFFTVerilogStageCountTracksArch(t *testing.T) {
	d := baseDesign() // N=1024, radix 4 -> 5 stages
	count := func(arch string) int {
		d.Arch = arch
		design, err := d.Verilog()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, inst := range design.Modules[0].Instances() {
			if inst.Module == "fft_stage" {
				n++
			}
		}
		return n
	}
	if got := count(ArchIterative); got != 1 {
		t.Errorf("iterative arch instantiates %d stages, want 1", got)
	}
	if got := count(ArchStreaming); got != 5 {
		t.Errorf("streaming arch instantiates %d stages, want 5", got)
	}
	if folded, streaming := count(ArchFolded), count(ArchStreaming); folded >= streaming {
		t.Errorf("folded arch should instantiate fewer stages (%d vs %d)", folded, streaming)
	}
	if parallel, streaming := count(ArchParallel), count(ArchStreaming); parallel <= streaming {
		t.Errorf("parallel arch should instantiate more stage hardware (%d vs %d)", parallel, streaming)
	}
}

func TestFFTVerilogIterativeController(t *testing.T) {
	d := baseDesign()
	d.Arch = ArchIterative
	design, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(design.Verilog(), "iter_controller") {
		t.Error("iterative architecture missing pass controller")
	}
	d.Arch = ArchStreaming
	design2, _ := d.Verilog()
	if strings.Contains(design2.Verilog(), "iter_controller") {
		t.Error("streaming architecture should have no pass controller")
	}
}

func TestFFTVerilogLanePorts(t *testing.T) {
	d := baseDesign()
	d.StreamWidth = 8
	design, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	v := design.Verilog()
	if !strings.Contains(v, "in_re_7") || strings.Contains(v, "in_re_8") {
		t.Error("top should expose exactly StreamWidth input lanes")
	}
}

func TestFFTVerilogRoundingExpr(t *testing.T) {
	d := baseDesign()
	d.Rounding = RoundTruncate
	vt, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	d.Rounding = RoundConvergent
	vc, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if vt.Verilog() == vc.Verilog() {
		t.Error("rounding mode should change the emitted datapath")
	}
}

func TestFFTVerilogDeterministic(t *testing.T) {
	d := baseDesign()
	a, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Verilog()
	if a.Verilog() != b.Verilog() {
		t.Error("emission not deterministic")
	}
}

// Property: every feasible point emits a structurally valid design, and
// every infeasible point is rejected.
func TestQuickFFTVerilogMatchesFeasibility(t *testing.T) {
	s := Space()
	r := rand.New(rand.NewSource(9))
	f := func(_ uint8) bool {
		pt := s.Random(r)
		d := Decode(s, pt)
		design, err := d.Verilog()
		if d.Feasible() != nil {
			return err != nil
		}
		return err == nil && design.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
