// Package fft implements a Spiral-like hardware FFT IP generator: a
// parameterized design space of fixed-point streaming/iterative FFT
// datapaths characterized for FPGA cost, clock rate, throughput, and
// numerical quality.
//
// Following the Nautilus paper's methodology, the design space holds the
// transform functionally constant (all points compute the same N-point FFT
// and are interchangeable from the IP user's perspective) while varying six
// implementation parameters: butterfly radix, streaming width, fixed-point
// word width, datapath architecture, memory technology, and rounding mode.
// The default 1024-point space has 10,752 candidate points, a fraction of
// which are structurally infeasible - reproducing the sparse,
// constraint-laden spaces the paper calls out. (The paper's dataset held
// "approximately 12,000 design instances (varying 6 parameters)"
// characterized with Xilinx XST; here characterization is the analytical
// model in this package with deterministic CAD noise.)
package fft

import (
	"errors"
	"fmt"
	"math"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/synth"
)

// FFT parameter names.
const (
	ParamRadix       = "radix"        // butterfly radix
	ParamStreamWidth = "stream_width" // samples accepted per cycle
	ParamDataWidth   = "data_width"   // fixed-point word width per component
	ParamArch        = "arch"         // datapath architecture
	ParamMemory      = "memory"       // data/twiddle storage technology
	ParamRounding    = "rounding"     // post-butterfly rounding mode
)

// Datapath architectures, ordered from lowest to highest throughput (and,
// broadly, cost): a single reused stage, a half-rate folded pipeline, a
// fully streaming pipeline, and a double-pumped parallel pipeline.
const (
	ArchIterative = "iterative"
	ArchFolded    = "folded"
	ArchStreaming = "streaming"
	ArchParallel  = "parallel"
)

// Memory technologies for data and twiddle storage.
const (
	MemLUTRAM = "lutram"
	MemBRAM   = "bram"
)

// Rounding modes, ordered from cheapest/least accurate to most
// expensive/most accurate.
const (
	RoundTruncate   = "truncate"
	RoundNearest    = "round"
	RoundConvergent = "convergent"
	RoundBlockFloat = "block_float"
)

// ErrInfeasible marks design points that violate the generator's structural
// constraints; the paper's hint machinery must tolerate such sparse spaces.
var ErrInfeasible = errors.New("fft: infeasible configuration")

// DefaultN is the transform size of the standard evaluation space.
const DefaultN = 1024

// Generator is an FFT IP generator for one transform size. It plays the
// role of the Spiral generator in the paper: given implementation
// parameters it "generates" (here: characterizes) a hardware design.
type Generator struct {
	// N is the transform length (complex samples); must be a power of two
	// between 8 and 1<<20.
	N int
}

// NewGenerator returns a Generator for an N-point transform.
func NewGenerator(n int) (*Generator, error) {
	if n < 8 || n > 1<<20 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: transform size %d must be a power of two in [8, 2^20]", n)
	}
	return &Generator{N: n}, nil
}

// Space returns the generator's design space: 6 parameters,
// 4*7*12*4*2*4 = 10,752 points.
func (g *Generator) Space() *param.Space {
	return param.MustSpace(
		param.Levels(ParamRadix, 2, 4, 8, 16),
		param.Levels(ParamStreamWidth, 1, 2, 4, 8, 16, 32, 64),
		param.Int(ParamDataWidth, 8, 30, 2),
		param.OrderedChoice(ParamArch, ArchIterative, ArchFolded, ArchStreaming, ArchParallel),
		param.Choice(ParamMemory, MemLUTRAM, MemBRAM),
		param.OrderedChoice(ParamRounding, RoundTruncate, RoundNearest, RoundConvergent, RoundBlockFloat),
	)
}

// Space returns the standard 1024-point FFT design space used by the
// paper-reproduction experiments.
func Space() *param.Space {
	g, _ := NewGenerator(DefaultN)
	return g.Space()
}

// Design is a decoded FFT design point.
type Design struct {
	N           int
	Radix       int
	StreamWidth int
	DataWidth   int
	Arch        string
	Memory      string
	Rounding    string
}

// Decode extracts a Design from a point of the generator's Space.
func (g *Generator) Decode(s *param.Space, pt param.Point) Design {
	return Design{
		N:           g.N,
		Radix:       s.Int(pt, ParamRadix),
		StreamWidth: s.Int(pt, ParamStreamWidth),
		DataWidth:   s.Int(pt, ParamDataWidth),
		Arch:        s.String(pt, ParamArch),
		Memory:      s.String(pt, ParamMemory),
		Rounding:    s.String(pt, ParamRounding),
	}
}

// Decode extracts a Design (of the standard 1024-point generator) from a
// point of Space().
func Decode(s *param.Space, pt param.Point) Design {
	g, _ := NewGenerator(DefaultN)
	return g.Decode(s, pt)
}

// String renders the design compactly.
func (d Design) String() string {
	return fmt.Sprintf("fft{N=%d r=%d w=%d dw=%d arch=%s mem=%s rnd=%s}",
		d.N, d.Radix, d.StreamWidth, d.DataWidth, d.Arch, d.Memory, d.Rounding)
}

// Feasible reports whether the design satisfies the generator's structural
// constraints: the streaming width must both sustain the radix datapath
// (4w >= r: narrower streams would starve a radix-r butterfly) and fit the
// transform (w <= N/2).
func (d Design) Feasible() error {
	if 4*d.StreamWidth < d.Radix {
		return fmt.Errorf("%w: stream width %d cannot feed radix-%d butterflies", ErrInfeasible, d.StreamWidth, d.Radix)
	}
	if d.StreamWidth > d.N/2 {
		return fmt.Errorf("%w: stream width %d exceeds N/2=%d", ErrInfeasible, d.StreamWidth, d.N/2)
	}
	return nil
}

// Stages returns the number of butterfly stages: floor(log_r N) radix-r
// stages plus, when the radix does not evenly divide the transform, one
// mixed-radix remainder stage.
func (d Design) Stages() int {
	lgN := int(math.Round(math.Log2(float64(d.N))))
	lgR := int(math.Round(math.Log2(float64(d.Radix))))
	s := lgN / lgR
	if lgN%lgR != 0 {
		s++ // remainder stage of radix 2^(lgN mod lgR)
	}
	return s
}

// noiseFrac is the deterministic CAD-noise amplitude on FFT synthesis
// results.
const noiseFrac = 0.03

// complexMultLUTs estimates a dw x dw complex multiplier (3-multiplier
// decomposition with generator-emitted constant strength reduction).
func complexMultLUTs(dw int) float64 {
	return 3*synth.MultiplierLUTs(dw)*0.45 + 5*synth.AdderLUTs(dw)
}

// complexAddLUTs estimates a complex adder.
func complexAddLUTs(dw int) float64 {
	return 2 * synth.AdderLUTs(dw)
}

// butterflyLUTs estimates one radix-r butterfly datapath: the r-point DFT
// adder network plus its twiddle multipliers.
func butterflyLUTs(r, dw int) float64 {
	fr := float64(r)
	adds := fr * math.Log2(fr) * complexAddLUTs(dw)
	mults := (fr - 1) * complexMultLUTs(dw)
	return adds + mults
}

// physicalStages returns the number of physically instantiated butterfly
// stages and their lane multiplier under the design's architecture.
func (d Design) physicalStages() float64 {
	switch d.Arch {
	case ArchIterative:
		return 1 // single stage, reused Stages() times
	case ArchFolded:
		return float64(d.Stages()) * 0.55 // stages share half-rate hardware
	case ArchStreaming:
		return float64(d.Stages())
	case ArchParallel:
		return float64(d.Stages()) * 1.7 // double-pumped lanes
	}
	return float64(d.Stages())
}

// roundingLUTsPerStage is the extra datapath cost of the rounding mode per
// physical stage.
func (d Design) roundingLUTsPerStage() float64 {
	dw := float64(d.DataWidth)
	switch d.Rounding {
	case RoundTruncate:
		return 0
	case RoundNearest:
		return dw * 0.5
	case RoundConvergent:
		return dw * 1.1
	case RoundBlockFloat:
		return dw*2.0 + 25 // shared exponent tracking + normalizers
	}
	return 0
}

// LUTs estimates the design's FPGA LUT usage (before noise). The design
// must be feasible.
func (d Design) LUTs() float64 {
	// Butterfly instances per stage: enough to consume StreamWidth samples
	// per cycle (each radix-r butterfly consumes r samples per invocation;
	// narrower streams keep one butterfly busy via time-multiplexing).
	perStage := math.Max(1, float64(d.StreamWidth)/float64(d.Radix))
	phys := d.physicalStages()
	datapath := phys * perStage * (butterflyLUTs(d.Radix, d.DataWidth) + d.roundingLUTsPerStage())

	// Inter-stage permutation (stride) networks: switching plus reorder
	// buffering sized by N/w.
	reorderDepth := d.N/maxInt(1, d.StreamWidth)/4 + 2
	permPerStage := synth.MuxLUTs(d.StreamWidth*2, 2*d.DataWidth)
	if d.Memory == MemLUTRAM {
		permPerStage += synth.FIFOLUTs(reorderDepth, 2*d.DataWidth) * 0.35
	} else {
		permPerStage += 18 // BRAM addressing/control
	}
	perm := permPerStage * math.Max(1, phys)

	// Working storage: iterative designs ping-pong the full transform.
	var mem float64
	if d.Arch == ArchIterative && d.Memory == MemLUTRAM {
		bits := d.N * 2 * d.DataWidth * 2 // ping-pong
		mem = float64(bits) / synth.LUTRAMBits * 1.1
	}

	// Twiddle factors: one table per multiplier-bearing stage group.
	var twiddle float64
	if d.Memory == MemLUTRAM {
		entries := d.N / 4 // quarter-wave symmetry
		twiddle = synth.ROMLUTs(entries, 2*d.DataWidth) * math.Min(math.Max(1, phys), 3)
	} else {
		twiddle = 12 * math.Max(1, phys)
	}

	control := 40 + 10*float64(d.Stages()) + 4*float64(d.StreamWidth)
	if d.Arch == ArchIterative {
		control += 35 // pass sequencing, feedback muxing
	}
	return datapath + perm + mem + twiddle + control
}

// BRAMs estimates block-RAM usage.
func (d Design) BRAMs() int {
	if d.Memory != MemBRAM {
		return 0
	}
	total := 0
	// Twiddles.
	twBits := d.N / 4 * 2 * d.DataWidth
	total += maxInt(1, synth.BRAMsFor(twBits, 2*d.DataWidth))
	// Reorder buffers per physical stage.
	reorderBits := (d.N/maxInt(1, d.StreamWidth)/4 + 2) * 2 * d.DataWidth
	total += int(math.Max(1, d.physicalStages())) * maxInt(1, synth.BRAMsFor(reorderBits, 2*d.DataWidth))
	// Iterative working set.
	if d.Arch == ArchIterative {
		total += maxInt(1, synth.BRAMsFor(d.N*2*d.DataWidth*2, 2*d.DataWidth*d.StreamWidth))
	}
	return total
}

// FmaxMHz estimates the maximum clock frequency (before noise).
func (d Design) FmaxMHz() float64 {
	dev := synth.Virtex6LX760
	// Pipeline stage critical path: multiplier partial-product tree, then
	// the butterfly adder tree, then permutation muxing.
	mult := 1.2 + 0.45*math.Log2(float64(d.DataWidth))
	addTree := 0.8 * math.Log2(float64(d.Radix)*2)
	permMux := 0.4 * math.Log2(float64(d.StreamWidth)+1)
	depth := mult + addTree + permMux
	switch d.Arch {
	case ArchIterative:
		depth += 0.8 // feedback path muxing
	case ArchFolded:
		depth += 0.5 // stage-sharing muxes
	case ArchParallel:
		depth += 0.5 // lane steering
	}
	if d.Rounding == RoundBlockFloat {
		depth += 0.6 // exponent compare in the loop
	}
	congestion := dev.Congestion(d.LUTs(), d.StreamWidth*2*d.DataWidth/8)
	return dev.Fmax(depth, congestion)
}

// ThroughputMSPS estimates sustained throughput in million samples per
// second.
func (d Design) ThroughputMSPS() float64 {
	f := d.FmaxMHz()
	w := float64(d.StreamWidth)
	switch d.Arch {
	case ArchIterative:
		return w * f / float64(d.Stages())
	case ArchFolded:
		return w * f / 2
	case ArchStreaming:
		return w * f
	case ArchParallel:
		return 2 * w * f
	}
	return 0
}

// SNRdB estimates output signal-to-noise ratio of the fixed-point datapath.
// The law is calibrated against the bit-accurate functional model in
// internal/fxpfft (see that package's tests): ~6 dB per word bit, ~3 dB
// lost per scale-by-half butterfly level (noise accumulates relative to the
// shrinking signal), a small recovery for larger radices (fewer rounding
// boundaries), and a bias-removal bonus for the better rounding modes.
func (d Design) SNRdB() float64 {
	base := 6.02*float64(d.DataWidth) - 15
	growth := 3.0 * math.Log2(float64(d.N))
	radixBonus := 0.9 * math.Log2(float64(d.Radix))
	var bonus float64
	switch d.Rounding {
	case RoundNearest:
		bonus = 0.2
	case RoundConvergent:
		bonus = 2.6
	case RoundBlockFloat:
		bonus = 3.4
	}
	return base - growth + radixBonus + bonus
}

// Characterize returns the synthesis metrics for the design, with
// deterministic CAD noise; it is the stand-in for one XST synthesis plus
// simulation job. Infeasible designs return ErrInfeasible.
func (d Design) Characterize() (metrics.Metrics, error) {
	if err := d.Feasible(); err != nil {
		return nil, err
	}
	key := d.String()
	luts := math.Round(d.LUTs() * synth.Noise(key+"/luts", noiseFrac))
	fmax := d.FmaxMHz() * synth.Noise(key+"/fmax", noiseFrac)
	tput := d.ThroughputMSPS() * synth.Noise(key+"/tput", noiseFrac)
	return metrics.Metrics{
		metrics.LUTs:           luts,
		metrics.BRAMs:          float64(d.BRAMs()),
		metrics.FmaxMHz:        fmax,
		metrics.ThroughputMSPS: tput,
		metrics.SNRdB:          d.SNRdB(),
	}, nil
}

// Evaluate characterizes point pt of the generator's space.
func (g *Generator) Evaluate(s *param.Space, pt param.Point) (metrics.Metrics, error) {
	if err := s.Validate(pt); err != nil {
		return nil, err
	}
	return g.Decode(s, pt).Characterize()
}

// Evaluate characterizes point pt of the standard 1024-point Space(); the
// evaluator function handed to the search engines. Infeasible points return
// ErrInfeasible (search engines treat them as worst-fitness).
func Evaluate(s *param.Space, pt param.Point) (metrics.Metrics, error) {
	g, _ := NewGenerator(DefaultN)
	return g.Evaluate(s, pt)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
