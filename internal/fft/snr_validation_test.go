package fft

import (
	"math"
	"testing"

	"nautilus/internal/fxpfft"
)

// TestSNRModelMatchesFunctionalDatapath cross-validates the generator's
// analytical SNR model against the bit-accurate fixed-point FFT in
// internal/fxpfft: for every radix and rounding mode the generator offers,
// the predicted SNR must track the measured SNR of the corresponding
// quantized datapath within a few dB, and the model's preference ordering
// between any two configurations must not invert badly.
func TestSNRModelMatchesFunctionalDatapath(t *testing.T) {
	type point struct {
		d        Design
		measured float64
	}
	var pts []point
	for _, radix := range []int{2, 4, 16} {
		for _, dw := range []int{8, 12, 16, 20} {
			for _, rounding := range []string{RoundTruncate, RoundNearest, RoundConvergent, RoundBlockFloat} {
				d := Design{
					N: 256, Radix: radix, StreamWidth: 4, DataWidth: dw,
					Arch: ArchStreaming, Memory: MemBRAM, Rounding: rounding,
				}
				measured, err := fxpfft.MeasureSNR(fxpfft.Config{
					N: d.N, DataWidth: dw, Radix: radix, Rounding: rounding,
				}, 2, 11)
				if err != nil {
					t.Fatal(err)
				}
				if diff := math.Abs(d.SNRdB() - measured); diff > 6 {
					t.Errorf("%s: model %.1f dB vs measured %.1f dB (diff %.1f)",
						d, d.SNRdB(), measured, diff)
				}
				pts = append(pts, point{d, measured})
			}
		}
	}
	// Ordering check: when the model says A beats B by more than 5 dB, the
	// datapath must agree on the direction.
	for i := range pts {
		for j := range pts {
			mi, mj := pts[i].d.SNRdB(), pts[j].d.SNRdB()
			if mi > mj+5 && pts[i].measured < pts[j].measured-1 {
				t.Errorf("model prefers %s (%.1f vs %.1f dB) but datapath disagrees (%.1f vs %.1f dB)",
					pts[i].d, mi, mj, pts[i].measured, pts[j].measured)
			}
		}
	}
}
