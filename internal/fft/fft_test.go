package fft

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func baseDesign() Design {
	return Design{
		N: 1024, Radix: 4, StreamWidth: 4, DataWidth: 16,
		Arch: ArchStreaming, Memory: MemBRAM, Rounding: RoundTruncate,
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	for _, n := range []int{0, 7, 12, 1 << 21} {
		if _, err := NewGenerator(n); err == nil {
			t.Errorf("NewGenerator(%d) should fail", n)
		}
	}
	g, err := NewGenerator(1024)
	if err != nil || g.N != 1024 {
		t.Fatalf("NewGenerator(1024) = %v, %v", g, err)
	}
}

func TestSpaceCardinality(t *testing.T) {
	s := Space()
	// 4*7*12*4*2*4 = 10,752 - the paper's "approximately 12,000".
	if got := s.Cardinality(); got != 10752 {
		t.Fatalf("Cardinality = %d, want 10752", got)
	}
	if s.Len() != 6 {
		t.Fatalf("FFT space has %d params, want 6 (paper: varying 6 parameters)", s.Len())
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	s := Space()
	pt := make(param.Point, s.Len())
	pt = s.Set(pt, ParamRadix, "8")
	pt = s.Set(pt, ParamArch, ArchParallel)
	pt = s.Set(pt, ParamStreamWidth, "4")
	d := Decode(s, pt)
	if d.Radix != 8 || d.Arch != ArchParallel || d.StreamWidth != 4 || d.N != DefaultN {
		t.Fatalf("decoded %+v", d)
	}
}

func TestFeasibility(t *testing.T) {
	d := baseDesign()
	if err := d.Feasible(); err != nil {
		t.Fatalf("base design should be feasible: %v", err)
	}
	d.Radix, d.StreamWidth = 16, 1 // 4*1 < 16
	if err := d.Feasible(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("starved radix-16 should be infeasible, got %v", err)
	}
	d = baseDesign()
	d.N, d.StreamWidth = 16, 64
	if err := d.Feasible(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("width > N/2 should be infeasible, got %v", err)
	}
}

func TestStagesMixedRadix(t *testing.T) {
	cases := []struct {
		n, r, want int
	}{
		{1024, 2, 10},
		{1024, 4, 5},
		{1024, 8, 4},  // 3 radix-8 stages + 1 remainder radix-2
		{1024, 16, 3}, // 2 radix-16 stages + 1 remainder radix-4
		{256, 16, 2},
		{256, 4, 4},
	}
	for _, c := range cases {
		d := Design{N: c.n, Radix: c.r}
		if got := d.Stages(); got != c.want {
			t.Errorf("Stages(N=%d, r=%d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestLUTsGrowWithDataWidth(t *testing.T) {
	d := baseDesign()
	prev := 0.0
	for dw := 8; dw <= 30; dw += 2 {
		d.DataWidth = dw
		l := d.LUTs()
		if l <= prev {
			t.Fatalf("LUTs not monotone in data width at dw=%d", dw)
		}
		prev = l
	}
}

func TestArchAreaOrdering(t *testing.T) {
	d := baseDesign()
	d.Arch = ArchIterative
	iter := d.LUTs()
	d.Arch = ArchFolded
	folded := d.LUTs()
	d.Arch = ArchStreaming
	stream := d.LUTs()
	d.Arch = ArchParallel
	parallel := d.LUTs()
	if !(iter < folded && folded < stream && stream < parallel) {
		t.Errorf("arch area ordering violated: iter=%v folded=%v stream=%v parallel=%v",
			iter, folded, stream, parallel)
	}
}

func TestArchThroughputOrdering(t *testing.T) {
	d := baseDesign()
	var prev float64
	for _, arch := range []string{ArchIterative, ArchFolded, ArchStreaming, ArchParallel} {
		d.Arch = arch
		tp := d.ThroughputMSPS()
		if tp <= prev {
			t.Fatalf("throughput not increasing at arch=%s (%v <= %v)", arch, tp, prev)
		}
		prev = tp
	}
}

func TestStreamWidthScalesThroughput(t *testing.T) {
	d := baseDesign()
	d.StreamWidth = 4
	lo := d.ThroughputMSPS()
	d.StreamWidth = 16
	if hi := d.ThroughputMSPS(); hi <= lo {
		t.Errorf("wider stream should raise throughput: %v <= %v", hi, lo)
	}
}

func TestBRAMUsage(t *testing.T) {
	d := baseDesign()
	d.Memory = MemLUTRAM
	if d.BRAMs() != 0 {
		t.Error("LUTRAM design should use no BRAMs")
	}
	d.Memory = MemBRAM
	if d.BRAMs() <= 0 {
		t.Error("BRAM design should use BRAMs")
	}
	lutramLUTs := func() float64 { d.Memory = MemLUTRAM; return d.LUTs() }()
	bramLUTs := func() float64 { d.Memory = MemBRAM; return d.LUTs() }()
	if bramLUTs >= lutramLUTs {
		t.Errorf("BRAM storage should save LUTs: %v >= %v", bramLUTs, lutramLUTs)
	}
}

func TestSNRModel(t *testing.T) {
	d := baseDesign()
	d.DataWidth = 8
	lo := d.SNRdB()
	d.DataWidth = 24
	hi := d.SNRdB()
	if hi <= lo {
		t.Error("wider words should improve SNR")
	}
	d.DataWidth = 16
	d.Rounding = RoundTruncate
	trunc := d.SNRdB()
	d.Rounding = RoundBlockFloat
	if bf := d.SNRdB(); bf <= trunc {
		t.Error("block floating point should improve SNR")
	}
	// Bigger transforms accumulate more rounding noise.
	d.Rounding = RoundTruncate
	d.N = 64
	small := d.SNRdB()
	d.N = 65536
	if big := d.SNRdB(); big >= small {
		t.Error("larger transforms should lose SNR")
	}
}

func TestRoundingCostsArea(t *testing.T) {
	d := baseDesign()
	d.Rounding = RoundTruncate
	trunc := d.LUTs()
	d.Rounding = RoundBlockFloat
	if bf := d.LUTs(); bf <= trunc {
		t.Error("block floating point should cost LUTs")
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	s := Space()
	r := rand.New(rand.NewSource(3))
	seen := 0
	for seen < 30 {
		pt := s.Random(r)
		a, err := Evaluate(s, pt)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Evaluate(s, pt)
		if a.String() != b.String() {
			t.Fatalf("non-deterministic characterization for %s", s.Describe(pt))
		}
		seen++
	}
}

func TestEvaluateRejectsMalformedPoint(t *testing.T) {
	s := Space()
	if _, err := Evaluate(s, param.Point{1}); err == nil {
		t.Error("expected error for malformed point")
	}
}

func TestSpaceFeasibleFraction(t *testing.T) {
	s := Space()
	feasible, infeasible := 0, 0
	s.Enumerate(func(pt param.Point) bool {
		if _, err := Evaluate(s, pt); errors.Is(err, ErrInfeasible) {
			infeasible++
		} else if err == nil {
			feasible++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
		return true
	})
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("space should be sparse: feasible=%d infeasible=%d", feasible, infeasible)
	}
	frac := float64(infeasible) / float64(feasible+infeasible)
	if frac < 0.02 || frac > 0.5 {
		t.Errorf("infeasible fraction %.2f outside [0.02, 0.5]", frac)
	}
}

func TestGeneratorOtherSizes(t *testing.T) {
	for _, n := range []int{64, 4096, 65536} {
		g, err := NewGenerator(n)
		if err != nil {
			t.Fatal(err)
		}
		s := g.Space()
		pt := make(param.Point, s.Len())
		pt = s.Set(pt, ParamStreamWidth, "2")
		m, err := g.Evaluate(s, pt)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if l, ok := m.Get(metrics.LUTs); !ok || l <= 0 {
			t.Errorf("N=%d: bad LUTs %v", n, l)
		}
	}
}

// Property: every feasible point characterizes to positive finite metrics
// with sane frequency.
func TestQuickFeasibleMetricsSane(t *testing.T) {
	s := Space()
	card := s.Cardinality()
	f := func(n uint64) bool {
		m, err := Evaluate(s, s.PointAt(n%card))
		if errors.Is(err, ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		l, okL := m.Get(metrics.LUTs)
		fx, okF := m.Get(metrics.FmaxMHz)
		tp, okT := m.Get(metrics.ThroughputMSPS)
		return okL && okF && okT && l > 0 && fx > 30 && fx < 500 && tp > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: feasibility is stable (same point always yields the same
// feasibility verdict) and matches the structural predicate.
func TestQuickFeasibilityConsistent(t *testing.T) {
	s := Space()
	card := s.Cardinality()
	f := func(n uint64) bool {
		pt := s.PointAt(n % card)
		d := Decode(s, pt)
		_, err := Evaluate(s, pt)
		wantInfeasible := 4*d.StreamWidth < d.Radix || d.StreamWidth > d.N/2
		return errors.Is(err, ErrInfeasible) == wantInfeasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SNR is independent of architecture and memory (purely numeric
// properties), so interchangeable implementations agree numerically.
func TestQuickSNRImplementationInvariant(t *testing.T) {
	f := func(dwRaw, nRaw uint8) bool {
		d := baseDesign()
		d.DataWidth = 8 + int(dwRaw%12)*2
		d.N = 1 << (4 + nRaw%10)
		base := d.SNRdB()
		for _, arch := range []string{ArchIterative, ArchFolded, ArchParallel} {
			d.Arch = arch
			if math.Abs(d.SNRdB()-base) > 1e-12 {
				return false
			}
		}
		for _, mem := range []string{MemLUTRAM, MemBRAM} {
			d.Memory = mem
			if math.Abs(d.SNRdB()-base) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
