package fft

import (
	"errors"
	"math/rand"
	"testing"

	"nautilus/internal/param"
)

// BenchmarkCharacterize measures one synthetic FFT synthesis job.
func BenchmarkCharacterize(b *testing.B) {
	b.ReportAllocs()
	s := Space()
	r := rand.New(rand.NewSource(1))
	pts := make([]param.Point, 0, 64)
	for len(pts) < 64 {
		pt := s.Random(r)
		if _, err := Evaluate(s, pt); err == nil {
			pts = append(pts, pt)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(s, pts[i%len(pts)]); err != nil && !errors.Is(err, ErrInfeasible) {
			b.Fatal(err)
		}
	}
}
