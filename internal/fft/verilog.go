package fft

import (
	"fmt"
	"math"

	"nautilus/internal/rtl"
)

// Verilog emits synthesizable RTL for the FFT design point: the pipeline
// of butterfly stages (physically instantiated per the architecture),
// inter-stage permutation buffers, and twiddle storage that the cost
// models in this package price. Infeasible configurations return an error,
// like any generator invocation on them would.
func (d Design) Verilog() (*rtl.Design, error) {
	if err := d.Feasible(); err != nil {
		return nil, err
	}
	out := &rtl.Design{Top: "fft_top"}
	dw := d.DataWidth
	lanes := d.StreamWidth

	phys := int(math.Max(1, math.Round(d.physicalStages())))
	if d.Arch == ArchIterative {
		phys = 1
	}

	top := rtl.NewModule("fft_top").SetComment(fmt.Sprintf(
		"%d-point FFT: radix-%d, %d samples/cycle, %d-bit, arch=%s mem=%s rounding=%s",
		d.N, d.Radix, d.StreamWidth, d.DataWidth, d.Arch, d.Memory, d.Rounding))
	top.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	top.AddPort(rtl.Input, "in_valid", 1).AddPort(rtl.Output, "out_valid", 1)
	for l := 0; l < lanes; l++ {
		top.AddPort(rtl.Input, fmt.Sprintf("in_re_%d", l), dw)
		top.AddPort(rtl.Input, fmt.Sprintf("in_im_%d", l), dw)
		top.AddPort(rtl.Output, fmt.Sprintf("out_re_%d", l), dw)
		top.AddPort(rtl.Output, fmt.Sprintf("out_im_%d", l), dw)
	}

	// Stage chain wiring.
	for s := 0; s <= phys; s++ {
		for l := 0; l < lanes; l++ {
			top.AddWire(fmt.Sprintf("st%d_re_%d", s, l), dw)
			top.AddWire(fmt.Sprintf("st%d_im_%d", s, l), dw)
		}
		top.AddWire(fmt.Sprintf("st%d_valid", s), 1)
	}
	for l := 0; l < lanes; l++ {
		top.Assign(fmt.Sprintf("st0_re_%d", l), fmt.Sprintf("in_re_%d", l))
		top.Assign(fmt.Sprintf("st0_im_%d", l), fmt.Sprintf("in_im_%d", l))
		top.Assign(fmt.Sprintf("out_re_%d", l), fmt.Sprintf("st%d_re_%d", phys, l))
		top.Assign(fmt.Sprintf("out_im_%d", l), fmt.Sprintf("st%d_im_%d", phys, l))
	}
	top.Assign("st0_valid", "in_valid")
	top.Assign("out_valid", fmt.Sprintf("st%d_valid", phys))

	for s := 0; s < phys; s++ {
		conns := map[string]string{
			"clk": "clk", "rst": "rst",
			"valid_in":  fmt.Sprintf("st%d_valid", s),
			"valid_out": fmt.Sprintf("st%d_valid", s+1),
		}
		for l := 0; l < lanes; l++ {
			conns[fmt.Sprintf("in_re_%d", l)] = fmt.Sprintf("st%d_re_%d", s, l)
			conns[fmt.Sprintf("in_im_%d", l)] = fmt.Sprintf("st%d_im_%d", s, l)
			conns[fmt.Sprintf("out_re_%d", l)] = fmt.Sprintf("st%d_re_%d", s+1, l)
			conns[fmt.Sprintf("out_im_%d", l)] = fmt.Sprintf("st%d_im_%d", s+1, l)
		}
		top.Instantiate("fft_stage", fmt.Sprintf("stage_%d", s),
			map[string]string{"STAGE": fmt.Sprint(s)}, conns)
	}
	if d.Arch == ArchIterative {
		top.Raw("// iterative architecture: single stage reused " +
			fmt.Sprint(d.Stages()) + " times via feedback")
		top.Instantiate("iter_controller", "ctl",
			map[string]string{"PASSES": fmt.Sprint(d.Stages())},
			map[string]string{"clk": "clk", "rst": "rst"})
	}
	out.Modules = append(out.Modules, top)

	// Stage module: butterflies + permutation + twiddles.
	perStage := int(math.Max(1, float64(lanes)/float64(d.Radix)))
	stage := rtl.NewModule("fft_stage").SetComment(fmt.Sprintf(
		"one radix-%d stage: %d butterflies, %s-backed reorder buffer", d.Radix, perStage, d.Memory))
	stage.AddParam("STAGE", "0")
	stage.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	stage.AddPort(rtl.Input, "valid_in", 1).AddPort(rtl.Output, "valid_out", 1)
	for l := 0; l < lanes; l++ {
		stage.AddPort(rtl.Input, fmt.Sprintf("in_re_%d", l), dw)
		stage.AddPort(rtl.Input, fmt.Sprintf("in_im_%d", l), dw)
		stage.AddPort(rtl.Output, fmt.Sprintf("out_re_%d", l), dw)
		stage.AddPort(rtl.Output, fmt.Sprintf("out_im_%d", l), dw)
	}
	stage.AddReg("valid_r", 1)
	stage.Always("posedge clk", "if (rst) valid_r <= 0; else valid_r <= valid_in;")
	stage.Assign("valid_out", "valid_r")
	for b := 0; b < perStage; b++ {
		conns := map[string]string{"clk": "clk"}
		for i := 0; i < d.Radix && i < lanes; i++ {
			lane := (b*d.Radix + i) % lanes
			conns[fmt.Sprintf("x_re_%d", i)] = fmt.Sprintf("in_re_%d", lane)
			conns[fmt.Sprintf("x_im_%d", i)] = fmt.Sprintf("in_im_%d", lane)
			conns[fmt.Sprintf("y_re_%d", i)] = fmt.Sprintf("out_re_%d", lane)
			conns[fmt.Sprintf("y_im_%d", i)] = fmt.Sprintf("out_im_%d", lane)
		}
		conns["tw_re"] = "tw_re"
		conns["tw_im"] = "tw_im"
		stage.Instantiate("butterfly", fmt.Sprintf("bf_%d", b), nil, conns)
	}
	stage.AddWire("tw_re", dw).AddWire("tw_im", dw)
	stage.Instantiate("twiddle_rom", "twiddles",
		map[string]string{"ENTRIES": fmt.Sprint(d.N / 4)},
		map[string]string{"clk": "clk", "re": "tw_re", "im": "tw_im"})
	stage.Instantiate("reorder_buffer", "perm", nil,
		map[string]string{"clk": "clk", "rst": "rst"})
	out.Modules = append(out.Modules, stage)

	// Butterfly datapath.
	ports := d.Radix
	if ports > lanes {
		ports = lanes
	}
	bf := rtl.NewModule("butterfly").SetComment(fmt.Sprintf(
		"radix-%d butterfly datapath with %s rounding", d.Radix, d.Rounding))
	bf.AddPort(rtl.Input, "clk", 1)
	for i := 0; i < ports; i++ {
		bf.AddPort(rtl.Input, fmt.Sprintf("x_re_%d", i), dw)
		bf.AddPort(rtl.Input, fmt.Sprintf("x_im_%d", i), dw)
		bf.AddPort(rtl.Output, fmt.Sprintf("y_re_%d", i), dw)
		bf.AddPort(rtl.Output, fmt.Sprintf("y_im_%d", i), dw)
	}
	bf.AddPort(rtl.Input, "tw_re", dw).AddPort(rtl.Input, "tw_im", dw)
	bf.AddReg("prod_re", 2*dw).AddReg("prod_im", 2*dw)
	bf.Always("posedge clk",
		fmt.Sprintf("prod_re <= $signed(x_re_%d) * $signed(tw_re) - $signed(x_im_%d) * $signed(tw_im);", ports-1, ports-1),
		fmt.Sprintf("prod_im <= $signed(x_re_%d) * $signed(tw_im) + $signed(x_im_%d) * $signed(tw_re);", ports-1, ports-1))
	round := roundExpr(d.Rounding, dw)
	for i := 0; i < ports; i++ {
		if i == 0 {
			bf.Assign(fmt.Sprintf("y_re_%d", i), fmt.Sprintf("x_re_0 + %s", round("prod_re")))
			bf.Assign(fmt.Sprintf("y_im_%d", i), fmt.Sprintf("x_im_0 + %s", round("prod_im")))
		} else {
			bf.Assign(fmt.Sprintf("y_re_%d", i), fmt.Sprintf("x_re_0 - %s", round("prod_re")))
			bf.Assign(fmt.Sprintf("y_im_%d", i), fmt.Sprintf("x_im_0 - %s", round("prod_im")))
		}
	}
	out.Modules = append(out.Modules, bf)

	// Twiddle storage.
	tw := rtl.NewModule("twiddle_rom").SetComment(d.Memory + "-backed quarter-wave twiddle table")
	tw.AddParam("ENTRIES", fmt.Sprint(d.N/4))
	tw.AddPort(rtl.Input, "clk", 1)
	tw.AddPort(rtl.Output, "re", dw).AddPort(rtl.Output, "im", dw)
	tw.AddMemory("rom", 2*dw, maxInt(2, d.N/4))
	tw.AddReg("addr", bitsFor(maxInt(2, d.N/4)))
	tw.AddReg("word", 2*dw)
	tw.Always("posedge clk", "addr <= addr + 1;", "word <= rom[addr];")
	tw.Assign("re", fmt.Sprintf("word[%d:%d]", 2*dw-1, dw))
	tw.Assign("im", fmt.Sprintf("word[%d:0]", dw-1))
	out.Modules = append(out.Modules, tw)

	// Reorder (stride permutation) buffer.
	depth := maxInt(2, d.N/maxInt(1, d.StreamWidth)/4)
	rb := rtl.NewModule("reorder_buffer").SetComment(fmt.Sprintf(
		"stride permutation buffer, depth %d, %s-backed", depth, d.Memory))
	rb.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	rb.AddMemory("buf0", 2*dw, depth)
	rb.AddReg("wptr", bitsFor(depth)).AddReg("rptr", bitsFor(depth))
	rb.Always("posedge clk",
		"if (rst) begin wptr <= 0; rptr <= 0; end",
		"else begin wptr <= wptr + 1; rptr <= rptr + 1; end")
	out.Modules = append(out.Modules, rb)

	if d.Arch == ArchIterative {
		ctl := rtl.NewModule("iter_controller").SetComment("pass sequencing for the iterative architecture")
		ctl.AddParam("PASSES", fmt.Sprint(d.Stages()))
		ctl.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
		ctl.AddReg("pass", bitsFor(d.Stages()))
		ctl.Always("posedge clk",
			"if (rst) pass <= 0;",
			"else if (pass == PASSES-1) pass <= 0;",
			"else pass <= pass + 1;")
		out.Modules = append(out.Modules, ctl)
	}

	if err := out.Check(); err != nil {
		return nil, err
	}
	return out, nil
}

// bitsFor returns the number of bits needed to count to n.
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n + 1))))
}

// roundExpr renders the rounding of a double-width product back to dw bits
// under the configured mode.
func roundExpr(mode string, dw int) func(string) string {
	sh := dw - 1
	switch mode {
	case RoundNearest, RoundBlockFloat:
		return func(v string) string {
			return fmt.Sprintf("((%s + (1 <<< %d)) >>> %d)", v, sh-1, sh)
		}
	case RoundConvergent:
		return func(v string) string {
			return fmt.Sprintf("((%s + (1 <<< %d) + %s[%d]) >>> %d)", v, sh-1, v, sh, sh)
		}
	default: // truncate
		return func(v string) string {
			return fmt.Sprintf("(%s >>> %d)", v, sh)
		}
	}
}
