package noc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func baseRouter() Router {
	return Router{
		VCs: 2, BufDepth: 4, FlitWidth: 64, Ports: 5,
		Alloc: AllocSepIF, Pipeline: 2, SpecSA: false,
		Routing: RoutingDOR, AtomicVC: true,
	}
}

func TestRouterSpaceCardinality(t *testing.T) {
	s := RouterSpace()
	// 6*4*4*3*3*4*2*2*2 = 27,648 - the paper's "approximately 30,000".
	if got := s.Cardinality(); got != 27648 {
		t.Fatalf("Cardinality = %d, want 27648", got)
	}
	if s.Len() != 9 {
		t.Fatalf("router space has %d params, want 9 (paper: varying 9 parameters)", s.Len())
	}
}

func TestDecodeRouterRoundTrip(t *testing.T) {
	s := RouterSpace()
	pt := make(param.Point, s.Len())
	pt = s.Set(pt, ParamVCs, "4")
	pt = s.Set(pt, ParamAlloc, AllocWavefront)
	pt = s.Set(pt, ParamSpecSA, "on")
	r := DecodeRouter(s, pt)
	if r.VCs != 4 || r.Alloc != AllocWavefront || !r.SpecSA {
		t.Fatalf("decoded %+v", r)
	}
	if r.BufDepth != 2 || r.FlitWidth != 32 || r.Ports != 3 {
		t.Fatalf("default decode wrong: %+v", r)
	}
}

func TestLUTsGrowWithBuffers(t *testing.T) {
	r := baseRouter()
	small := r.LUTs()
	r.BufDepth = 16
	if r.LUTs() <= small {
		t.Error("deeper buffers should cost more LUTs")
	}
	r = baseRouter()
	r.VCs = 8
	if r.LUTs() <= small {
		t.Error("more VCs should cost more LUTs")
	}
	r = baseRouter()
	r.FlitWidth = 256
	if r.LUTs() <= small {
		t.Error("wider flits should cost more LUTs")
	}
	r = baseRouter()
	r.Ports = 8
	if r.LUTs() <= small {
		t.Error("higher radix should cost more LUTs")
	}
}

func TestWavefrontAllocIsLargest(t *testing.T) {
	r := baseRouter()
	r.VCs, r.Ports = 8, 8
	r.Alloc = AllocSepIF
	sep := r.LUTs()
	r.Alloc = AllocWavefront
	if wf := r.LUTs(); wf <= sep {
		t.Errorf("wavefront (%v) should exceed separable (%v) at high radix", wf, sep)
	}
}

func TestPipeliningRaisesFmax(t *testing.T) {
	r := baseRouter()
	r.Pipeline = 1
	f1 := r.FmaxMHz()
	r.Pipeline = 4
	f4 := r.FmaxMHz()
	if f4 <= f1 {
		t.Errorf("4-stage Fmax %v should exceed 1-stage %v", f4, f1)
	}
	// ...but costs LUTs.
	r.Pipeline = 1
	l1 := r.LUTs()
	r.Pipeline = 4
	if r.LUTs() <= l1 {
		t.Error("pipelining should add register LUTs")
	}
}

func TestMoreVCsLowerFmax(t *testing.T) {
	r := baseRouter()
	r.VCs = 1
	f1 := r.FmaxMHz()
	r.VCs = 8
	if f8 := r.FmaxMHz(); f8 >= f1 {
		t.Errorf("8-VC Fmax %v should be below 1-VC %v (deeper allocators)", f8, f1)
	}
}

func TestSpeculationShortensAllocPath(t *testing.T) {
	// With deep allocators, overlapping VA and SA should reduce depth.
	r := baseRouter()
	r.VCs, r.Ports, r.Pipeline = 8, 8, 1
	r.SpecSA = false
	plain := r.FmaxMHz()
	r.SpecSA = true
	if spec := r.FmaxMHz(); spec <= plain {
		t.Errorf("speculative SA Fmax %v should exceed non-speculative %v at 1 stage", spec, plain)
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	s := RouterSpace()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		pt := s.Random(r)
		a, err := RouterEvaluate(s, pt)
		if err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		b, _ := RouterEvaluate(s, pt)
		if a[metrics.LUTs] != b[metrics.LUTs] || a[metrics.FmaxMHz] != b[metrics.FmaxMHz] {
			t.Fatalf("non-deterministic characterization for %s", s.Describe(pt))
		}
	}
}

func TestRouterEvaluateRejectsInvalid(t *testing.T) {
	s := RouterSpace()
	if _, err := RouterEvaluate(s, param.Point{0, 0}); err == nil {
		t.Error("expected error for malformed point")
	}
}

func TestCharacterizeRanges(t *testing.T) {
	// The design space should span the paper's qualitative ranges: LUTs from
	// a few hundred to >15k, Fmax from <90 MHz to >200 MHz (Figure 1 shape).
	s := RouterSpace()
	minL, maxL := math.Inf(1), math.Inf(-1)
	minF, maxF := math.Inf(1), math.Inf(-1)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		m, err := RouterEvaluate(s, s.Random(r))
		if err != nil {
			t.Fatal(err)
		}
		l, f := m[metrics.LUTs], m[metrics.FmaxMHz]
		minL, maxL = math.Min(minL, l), math.Max(maxL, l)
		minF, maxF = math.Min(minF, f), math.Max(maxF, f)
	}
	if minL > 1500 || maxL < 15000 {
		t.Errorf("LUT range [%v, %v] too narrow", minL, maxL)
	}
	if minF > 90 || maxF < 200 {
		t.Errorf("Fmax range [%v, %v] too narrow", minF, maxF)
	}
}

// Property: every point in the space characterizes to positive finite
// metrics.
func TestQuickCharacterizeAlwaysFeasible(t *testing.T) {
	s := RouterSpace()
	card := s.Cardinality()
	f := func(n uint64) bool {
		m, err := RouterEvaluate(s, s.PointAt(n%card))
		if err != nil {
			return false
		}
		l, okL := m.Get(metrics.LUTs)
		fx, okF := m.Get(metrics.FmaxMHz)
		return okL && okF && l > 0 && fx > 0 && fx < 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LUT count is monotone in buffer depth with all else fixed.
func TestQuickLUTsMonotoneInDepth(t *testing.T) {
	s := RouterSpace()
	card := s.Cardinality()
	di := s.IndexOf(ParamBufDepth)
	f := func(n uint64) bool {
		pt := s.PointAt(n % card)
		prev := -1.0
		for d := 0; d < s.Param(di).Card(); d++ {
			pt[di] = d
			l := DecodeRouter(s, pt).LUTs()
			if l <= prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
