package noc

import (
	"math/rand"
	"testing"

	"nautilus/internal/param"
)

// BenchmarkRouterCharacterize measures one synthetic "synthesis job" - the
// per-design cost the search engines pay.
func BenchmarkRouterCharacterize(b *testing.B) {
	b.ReportAllocs()
	s := RouterSpace()
	r := rand.New(rand.NewSource(1))
	pts := make([]param.Point, 64)
	for i := range pts {
		pts[i] = s.Random(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RouterEvaluate(s, pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkCharacterize measures one network-level evaluation.
func BenchmarkNetworkCharacterize(b *testing.B) {
	b.ReportAllocs()
	s := NetworkSpace()
	r := rand.New(rand.NewSource(2))
	pts := make([]param.Point, 64)
	for i := range pts {
		pts[i] = s.Random(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NetworkEvaluate(s, pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}
