package noc

import (
	"fmt"

	"nautilus/internal/rtl"
)

// Verilog emits synthesizable RTL for the router configuration - the
// artifact a real IP generator hands to the synthesis flow (the analytical
// models in this package estimate what the tools would report for it). The
// module hierarchy mirrors the microarchitecture the cost models price:
// per-port input units with per-VC flit FIFOs, route computation, VC and
// switch allocators of the configured flavor, and the output crossbar.
func (r Router) Verilog() (*rtl.Design, error) {
	d := &rtl.Design{Top: "vc_router"}

	flitW := r.FlitWidth + 8 // payload + head/tail/VC sideband
	vcBits := bitsFor(r.VCs)
	portBits := bitsFor(r.Ports)

	top := rtl.NewModule("vc_router").SetComment(fmt.Sprintf(
		"Virtual-channel router: %d ports, %d VCs x %d flits, %d-bit flits\n"+
			"alloc=%s pipeline=%d spec_sa=%t routing=%s atomic_vc=%t",
		r.Ports, r.VCs, r.BufDepth, r.FlitWidth,
		r.Alloc, r.Pipeline, r.SpecSA, r.Routing, r.AtomicVC))
	top.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	for p := 0; p < r.Ports; p++ {
		top.AddPort(rtl.Input, fmt.Sprintf("in_flit_%d", p), flitW)
		top.AddPort(rtl.Input, fmt.Sprintf("in_valid_%d", p), 1)
		top.AddPort(rtl.Output, fmt.Sprintf("in_credit_%d", p), r.VCs)
		top.AddPort(rtl.Output, fmt.Sprintf("out_flit_%d", p), flitW)
		top.AddPort(rtl.Output, fmt.Sprintf("out_valid_%d", p), 1)
		top.AddPort(rtl.Input, fmt.Sprintf("out_credit_%d", p), r.VCs)
	}

	// Input units: one per port, each holding the per-VC FIFOs and state.
	for p := 0; p < r.Ports; p++ {
		top.AddWire(fmt.Sprintf("iu_flit_%d", p), flitW)
		top.AddWire(fmt.Sprintf("iu_valid_%d", p), r.VCs)
		top.AddWire(fmt.Sprintf("iu_route_%d", p), portBits)
		top.Instantiate("input_unit", fmt.Sprintf("iu_%d", p),
			map[string]string{
				"VCS":   fmt.Sprint(r.VCs),
				"DEPTH": fmt.Sprint(r.BufDepth),
				"WIDTH": fmt.Sprint(flitW),
			},
			map[string]string{
				"clk":       "clk",
				"rst":       "rst",
				"flit_in":   fmt.Sprintf("in_flit_%d", p),
				"valid_in":  fmt.Sprintf("in_valid_%d", p),
				"credit":    fmt.Sprintf("in_credit_%d", p),
				"flit_out":  fmt.Sprintf("iu_flit_%d", p),
				"valid_out": fmt.Sprintf("iu_valid_%d", p),
			})
		top.Instantiate("route_compute", fmt.Sprintf("rc_%d", p),
			map[string]string{"PORTS": fmt.Sprint(r.Ports)},
			map[string]string{
				"clk":      "clk",
				"dest":     fmt.Sprintf("in_flit_%d[7:0]", p),
				"out_port": fmt.Sprintf("iu_route_%d", p),
			})
	}

	// Allocators.
	vaModule := "vc_alloc_" + r.Alloc
	saModule := "sw_alloc_" + r.Alloc
	top.AddWire("va_grant", r.Ports*r.VCs)
	top.AddWire("sa_grant", r.Ports*r.Ports)
	top.Instantiate(vaModule, "va",
		map[string]string{"PORTS": fmt.Sprint(r.Ports), "VCS": fmt.Sprint(r.VCs)},
		map[string]string{"clk": "clk", "rst": "rst", "grant": "va_grant"})
	top.Instantiate(saModule, "sa",
		map[string]string{"PORTS": fmt.Sprint(r.Ports), "VCS": fmt.Sprint(r.VCs)},
		map[string]string{"clk": "clk", "rst": "rst", "grant": "sa_grant"})
	if r.SpecSA {
		top.Instantiate("spec_grant_merge", "spec",
			map[string]string{"PORTS": fmt.Sprint(r.Ports)},
			map[string]string{"clk": "clk", "rst": "rst"})
	}

	// Crossbar and output pipeline registers.
	for p := 0; p < r.Ports; p++ {
		top.AddWire(fmt.Sprintf("xb_out_%d", p), flitW)
	}
	xbConns := map[string]string{"sel": "sa_grant"}
	for p := 0; p < r.Ports; p++ {
		xbConns[fmt.Sprintf("in_%d", p)] = fmt.Sprintf("iu_flit_%d", p)
		xbConns[fmt.Sprintf("out_%d", p)] = fmt.Sprintf("xb_out_%d", p)
	}
	top.Instantiate("crossbar", "xb",
		map[string]string{"PORTS": fmt.Sprint(r.Ports), "WIDTH": fmt.Sprint(flitW)},
		xbConns)
	for p := 0; p < r.Ports; p++ {
		for s := 0; s < r.Pipeline-1; s++ {
			top.AddReg(fmt.Sprintf("out_pipe_%d_%d", p, s), flitW)
		}
		switch r.Pipeline {
		case 1:
			top.Assign(fmt.Sprintf("out_flit_%d", p), fmt.Sprintf("xb_out_%d", p))
		default:
			body := []string{fmt.Sprintf("out_pipe_%d_0 <= xb_out_%d;", p, p)}
			for s := 1; s < r.Pipeline-1; s++ {
				body = append(body, fmt.Sprintf("out_pipe_%d_%d <= out_pipe_%d_%d;", p, s, p, s-1))
			}
			top.Always("posedge clk", body...)
			top.Assign(fmt.Sprintf("out_flit_%d", p), fmt.Sprintf("out_pipe_%d_%d", p, r.Pipeline-2))
		}
		top.Assign(fmt.Sprintf("out_valid_%d", p), fmt.Sprintf("|sa_grant[%d*%d +: %d]", p, r.Ports, r.Ports))
	}
	d.Modules = append(d.Modules, top)

	// --- Submodules -------------------------------------------------------

	iu := rtl.NewModule("input_unit").SetComment("per-port input unit: per-VC flit FIFOs plus VC state")
	iu.AddParam("VCS", fmt.Sprint(r.VCs)).
		AddParam("DEPTH", fmt.Sprint(r.BufDepth)).
		AddParam("WIDTH", fmt.Sprint(flitW))
	iu.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	iu.AddPort(rtl.Input, "flit_in", flitW).AddPort(rtl.Input, "valid_in", 1)
	iu.AddPort(rtl.Output, "credit", r.VCs)
	iu.AddPort(rtl.Output, "flit_out", flitW).AddPort(rtl.Output, "valid_out", r.VCs)
	iu.AddWire("vc_sel", vcBits)
	iu.Assign("vc_sel", fmt.Sprintf("flit_in[%d:%d]", flitW-1, flitW-vcBits))
	for v := 0; v < r.VCs; v++ {
		iu.Instantiate("flit_fifo", fmt.Sprintf("fifo_%d", v),
			map[string]string{"DEPTH": fmt.Sprint(r.BufDepth), "WIDTH": fmt.Sprint(flitW)},
			map[string]string{
				"clk": "clk", "rst": "rst",
				"wr_data": "flit_in",
				"wr_en":   fmt.Sprintf("valid_in & (vc_sel == %d)", v),
				"rd_data": "flit_out",
				"rd_en":   fmt.Sprintf("valid_out[%d]", v),
				"empty":   fmt.Sprintf("credit[%d]", v),
			})
	}
	if !r.AtomicVC {
		iu.AddReg("pkt_inflight", r.VCs)
		iu.Always("posedge clk",
			"if (rst) pkt_inflight <= 0;",
			"else pkt_inflight <= pkt_inflight | (valid_in << vc_sel);")
	}
	d.Modules = append(d.Modules, iu)

	fifo := rtl.NewModule("flit_fifo").SetComment("LUTRAM flit FIFO")
	fifo.AddParam("DEPTH", fmt.Sprint(r.BufDepth)).AddParam("WIDTH", fmt.Sprint(flitW))
	fifo.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	fifo.AddPort(rtl.Input, "wr_data", flitW).AddPort(rtl.Input, "wr_en", 1)
	fifo.AddPort(rtl.Output, "rd_data", flitW).AddPort(rtl.Input, "rd_en", 1)
	fifo.AddPort(rtl.Output, "empty", 1)
	fifo.AddMemory("mem", flitW, r.BufDepth)
	ptrBits := bitsFor(r.BufDepth)
	fifo.AddReg("wr_ptr", ptrBits).AddReg("rd_ptr", ptrBits).AddReg("count", ptrBits+1)
	fifo.Assign("empty", "count == 0")
	fifo.Assign("rd_data", "mem[rd_ptr]")
	fifo.Always("posedge clk",
		"if (rst) begin wr_ptr <= 0; rd_ptr <= 0; count <= 0; end",
		"else begin",
		"  if (wr_en) begin mem[wr_ptr] <= wr_data; wr_ptr <= wr_ptr + 1; end",
		"  if (rd_en && count != 0) rd_ptr <= rd_ptr + 1;",
		"  count <= count + (wr_en ? 1 : 0) - ((rd_en && count != 0) ? 1 : 0);",
		"end")
	d.Modules = append(d.Modules, fifo)

	rc := rtl.NewModule("route_compute")
	rc.AddParam("PORTS", fmt.Sprint(r.Ports))
	rc.AddPort(rtl.Input, "clk", 1)
	rc.AddPort(rtl.Input, "dest", 8)
	rc.AddPort(rtl.Output, "out_port", portBits)
	switch r.Routing {
	case RoutingDOR:
		rc.SetComment("dimension-ordered route computation (pure logic)")
		rc.AddReg("out_port_r", portBits)
		rc.Always("posedge clk",
			"out_port_r <= dest[1:0] % PORTS;")
		rc.Assign("out_port", "out_port_r")
	case RoutingTable:
		rc.SetComment("table-driven route computation (distributed ROM)")
		rc.AddMemory("table_rom", portBits, 64)
		rc.AddReg("out_port_r", portBits)
		rc.Always("posedge clk", "out_port_r <= table_rom[dest[5:0]];")
		rc.Assign("out_port", "out_port_r")
	}
	d.Modules = append(d.Modules, rc)

	d.Modules = append(d.Modules, allocatorModule(vaModule, "VC allocator", r))
	d.Modules = append(d.Modules, allocatorModule(saModule, "switch allocator", r))
	if r.SpecSA {
		spec := rtl.NewModule("spec_grant_merge").SetComment(
			"speculative switch allocation: merge speculative and non-speculative grants")
		spec.AddParam("PORTS", fmt.Sprint(r.Ports))
		spec.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
		spec.AddReg("spec_mask", r.Ports)
		spec.Always("posedge clk",
			"if (rst) spec_mask <= 0;",
			"else spec_mask <= ~spec_mask;")
		d.Modules = append(d.Modules, spec)
	}

	xb := rtl.NewModule("crossbar").SetComment("output-multiplexer crossbar")
	xb.AddParam("PORTS", fmt.Sprint(r.Ports)).AddParam("WIDTH", fmt.Sprint(flitW))
	xb.AddPort(rtl.Input, "sel", r.Ports*r.Ports)
	for p := 0; p < r.Ports; p++ {
		xb.AddPort(rtl.Input, fmt.Sprintf("in_%d", p), flitW)
		xb.AddPort(rtl.Output, fmt.Sprintf("out_%d", p), flitW)
	}
	for p := 0; p < r.Ports; p++ {
		expr := fmt.Sprintf("in_%d", 0)
		for s := 1; s < r.Ports; s++ {
			expr = fmt.Sprintf("sel[%d] ? in_%d : (%s)", p*r.Ports+s, s, expr)
		}
		xb.Assign(fmt.Sprintf("out_%d", p), expr)
	}
	d.Modules = append(d.Modules, xb)

	if err := d.Check(); err != nil {
		return nil, err
	}
	return d, nil
}

// allocatorModule emits an allocator skeleton whose structure matches the
// configured flavor (separable allocators instantiate per-port round-robin
// arbiters; the wavefront allocator holds the full request matrix).
func allocatorModule(name, comment string, r Router) *rtl.Module {
	m := rtl.NewModule(name).SetComment(comment + " (" + r.Alloc + ")")
	m.AddParam("PORTS", fmt.Sprint(r.Ports)).AddParam("VCS", fmt.Sprint(r.VCs))
	m.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	width := r.Ports * r.VCs
	if name[:2] == "sw" {
		width = r.Ports * r.Ports
	}
	m.AddPort(rtl.Output, "grant", width)
	switch r.Alloc {
	case AllocWavefront:
		m.AddReg("req_matrix", width)
		m.AddReg("priority_diag", bitsFor(r.Ports))
		m.Always("posedge clk",
			"if (rst) begin req_matrix <= 0; priority_diag <= 0; end",
			"else priority_diag <= priority_diag + 1;")
		m.Assign("grant", "req_matrix")
	default: // separable input- or output-first: rotating arbiters
		m.AddReg("rr_state", width)
		m.AddReg("grant_r", width)
		m.Always("posedge clk",
			"if (rst) begin rr_state <= 1; grant_r <= 0; end",
			"else begin rr_state <= {rr_state[0 +: "+fmt.Sprint(width-1)+"], rr_state["+fmt.Sprint(width-1)+"]}; grant_r <= rr_state; end")
		m.Assign("grant", "grant_r")
	}
	return m
}
