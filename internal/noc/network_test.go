package noc

import (
	"math"
	"testing"
	"testing/quick"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func TestShapeForAllTopologies(t *testing.T) {
	for _, topo := range Topologies {
		shape, err := shapeFor(topo, 64)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if shape.Routers <= 0 || shape.Ports < 3 || shape.BisectionChannels <= 0 || shape.Links <= 0 {
			t.Errorf("%s: degenerate shape %+v", topo, shape)
		}
		if shape.Ports > 8 {
			t.Errorf("%s: radix %d exceeds router model range", topo, shape.Ports)
		}
	}
}

func TestShapeForRejectsBadEndpointCounts(t *testing.T) {
	for _, n := range []int{0, 8, 63, 100} {
		if _, err := shapeFor(TopoRing, n); err == nil {
			t.Errorf("shapeFor(ring, %d) should fail", n)
		}
	}
	if _, err := shapeFor("hypercube", 64); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestConcentrationReducesRouters(t *testing.T) {
	ring, _ := shapeFor(TopoRing, 64)
	conc, _ := shapeFor(TopoConcRing, 64)
	if conc.Routers >= ring.Routers {
		t.Errorf("concentrated ring has %d routers, plain ring %d", conc.Routers, ring.Routers)
	}
}

func TestTorusDoublesMeshBisection(t *testing.T) {
	mesh, _ := shapeFor(TopoMesh, 64)
	torus, _ := shapeFor(TopoTorus, 64)
	if torus.BisectionChannels != 2*mesh.BisectionChannels {
		t.Errorf("torus bisection %d, want 2x mesh %d", torus.BisectionChannels, mesh.BisectionChannels)
	}
}

func TestNetworkSpace(t *testing.T) {
	s := NetworkSpace()
	// 8 * 3 * 2 * 4 * 3 = 576
	if got := s.Cardinality(); got != 576 {
		t.Fatalf("Cardinality = %d, want 576", got)
	}
}

func TestNetworkCharacterizeAllPoints(t *testing.T) {
	s := NetworkSpace()
	count := 0
	s.Enumerate(func(pt param.Point) bool {
		m, err := NetworkEvaluate(s, pt)
		if err != nil {
			t.Fatalf("%s: %v", s.Describe(pt), err)
		}
		for _, name := range []string{metrics.AreaMM2, metrics.PowerMW, metrics.BisectionGbps} {
			if v, ok := m.Get(name); !ok || v <= 0 {
				t.Fatalf("%s: %s = %v,%v", s.Describe(pt), name, v, ok)
			}
		}
		count++
		return true
	})
	if uint64(count) != s.Cardinality() {
		t.Fatalf("characterized %d points, want %d", count, s.Cardinality())
	}
}

func TestNetworkLandscapeSpread(t *testing.T) {
	// Figure 2's point: functionally interchangeable 64-endpoint NoCs span
	// 2-3 orders of magnitude in performance, area, and power.
	s := NetworkSpace()
	minB, maxB := math.Inf(1), math.Inf(-1)
	minA, maxA := math.Inf(1), math.Inf(-1)
	minP, maxP := math.Inf(1), math.Inf(-1)
	s.Enumerate(func(pt param.Point) bool {
		m, err := NetworkEvaluate(s, pt)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := m.Get(metrics.BisectionGbps)
		a, _ := m.Get(metrics.AreaMM2)
		p, _ := m.Get(metrics.PowerMW)
		minB, maxB = math.Min(minB, b), math.Max(maxB, b)
		minA, maxA = math.Min(minA, a), math.Max(maxA, a)
		minP, maxP = math.Min(minP, p), math.Max(maxP, p)
		return true
	})
	if maxB/minB < 100 {
		t.Errorf("bandwidth spread %.1fx, want >= 100x", maxB/minB)
	}
	if maxA/minA < 30 {
		t.Errorf("area spread %.1fx, want >= 30x", maxA/minA)
	}
	if maxP/minP < 30 {
		t.Errorf("power spread %.1fx, want >= 30x", maxP/minP)
	}
}

func TestFatTreeOutperformsRing(t *testing.T) {
	s := NetworkSpace()
	pt := make(param.Point, s.Len())
	pt = s.Set(pt, ParamFlitWidth, "64")
	ringPt := s.Set(pt, ParamTopology, TopoRing)
	treePt := s.Set(pt, ParamTopology, TopoFatTree)
	ring, err := NetworkEvaluate(s, ringPt)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NetworkEvaluate(s, treePt)
	if err != nil {
		t.Fatal(err)
	}
	if tree[metrics.BisectionGbps] <= ring[metrics.BisectionGbps] {
		t.Error("fat tree should out-bandwidth a ring")
	}
	if tree[metrics.AreaMM2] <= ring[metrics.AreaMM2] {
		t.Error("fat tree should cost more area than a ring")
	}
}

func TestNetworkDeterministic(t *testing.T) {
	s := NetworkSpace()
	pt := make(param.Point, s.Len())
	a, _ := NetworkEvaluate(s, pt)
	b, _ := NetworkEvaluate(s, pt)
	if a.String() != b.String() {
		t.Error("network characterization not deterministic")
	}
}

// Property: wider flits always increase both bandwidth and area for any
// topology/config.
func TestQuickWidthScalesBandwidthAndArea(t *testing.T) {
	s := NetworkSpace()
	card := s.Cardinality()
	wi := s.IndexOf(ParamFlitWidth)
	f := func(n uint64) bool {
		pt := s.PointAt(n % card)
		prevB, prevA := -1.0, -1.0
		for w := 0; w < s.Param(wi).Card(); w++ {
			pt[wi] = w
			m, err := NetworkEvaluate(s, pt)
			if err != nil {
				return false
			}
			b, _ := m.Get(metrics.BisectionGbps)
			a, _ := m.Get(metrics.AreaMM2)
			if b <= prevB || a <= prevA {
				return false
			}
			prevB, prevA = b, a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
