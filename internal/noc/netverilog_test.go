package noc

import (
	"strings"
	"testing"
)

func testNetwork(topo string) Network {
	return Network{
		Topology: topo, Endpoints: 64, VCs: 2, BufDepth: 4,
		FlitWidth: 32, Alloc: AllocSepIF,
	}
}

func TestNetworkVerilogMesh(t *testing.T) {
	d, err := testNetwork(TopoMesh).Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatalf("structural check: %v", err)
	}
	routers := 0
	for _, inst := range d.Modules[0].Instances() {
		if inst.Module == "vc_router" {
			routers++
		}
	}
	if routers != 64 {
		t.Errorf("mesh instantiates %d routers, want 64", routers)
	}
	v := d.Verilog()
	if !strings.Contains(v, "ep_in_flit_63") {
		t.Error("missing endpoint 63 interface")
	}
	// Mesh edges need tie-offs.
	if !strings.Contains(v, "tie_zero_flit") {
		t.Error("mesh edge tie-offs missing")
	}
}

func TestNetworkVerilogTorusNoTieOffs(t *testing.T) {
	d, err := testNetwork(TopoTorus).Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d.Verilog(), "tie_zero_flit") {
		t.Error("torus has no dangling ports; tie-offs should be absent")
	}
}

func TestNetworkVerilogConcentratedRing(t *testing.T) {
	d, err := testNetwork(TopoConcRing).Verilog()
	if err != nil {
		t.Fatal(err)
	}
	routers := 0
	for _, inst := range d.Modules[0].Instances() {
		if inst.Module == "vc_router" {
			routers++
		}
	}
	if routers != 16 {
		t.Errorf("concentrated ring instantiates %d routers, want 16", routers)
	}
}

func TestNetworkVerilogUnsupportedTopologies(t *testing.T) {
	for _, topo := range []string{TopoFatTree, TopoButterfly} {
		if _, err := testNetwork(topo).Verilog(); err == nil {
			t.Errorf("%s should be unsupported for network RTL", topo)
		}
	}
}

func TestNetworkVerilogAllBidirectionalFamilies(t *testing.T) {
	for _, topo := range []string{TopoRing, TopoDoubleRing, TopoConcRing, TopoConcDoubleRing, TopoMesh, TopoTorus} {
		d, err := testNetwork(topo).Verilog()
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if err := d.Check(); err != nil {
			t.Fatalf("%s: structural check: %v", topo, err)
		}
	}
}
