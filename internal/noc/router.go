// Package noc implements a parameterized virtual-channel Network-on-Chip
// router IP generator and a CONNECT-style network-level generator, modeled
// after the IPs used in the Nautilus paper (the Stanford open-source VC
// router and the CONNECT NoC framework).
//
// The router exposes a 9-parameter design space of ~28k functionally
// interchangeable microarchitectures (the paper characterizes ~30k). Each
// point is characterized analytically against the synth package's Virtex-6
// FPGA model, yielding LUT usage and maximum frequency with deterministic
// per-design CAD noise - the stand-in for the paper's offline Xilinx XST
// synthesis runs.
package noc

import (
	"fmt"
	"math"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/synth"
)

// Router parameter names.
const (
	ParamVCs       = "vcs"        // virtual channels per input port
	ParamBufDepth  = "buf_depth"  // flit buffer depth per VC
	ParamFlitWidth = "flit_width" // flit data width in bits
	ParamPorts     = "ports"      // router radix (input/output ports)
	ParamAlloc     = "alloc"      // VC/switch allocator microarchitecture
	ParamPipeline  = "pipeline"   // pipeline stages
	ParamSpecSA    = "spec_sa"    // speculative switch allocation
	ParamRouting   = "routing"    // routing function implementation
	ParamAtomicVC  = "atomic_vc"  // atomic VC allocation (simpler VC state)
)

// Allocator microarchitectures. Separable input-first is cheapest and
// shallowest, separable output-first is slightly larger/deeper but grants
// better matchings, wavefront gives the best matchings at quadratic cost and
// depth.
const (
	AllocSepIF     = "sep_if"
	AllocSepOF     = "sep_of"
	AllocWavefront = "wavefront"
)

// Routing function implementations.
const (
	RoutingDOR   = "dor"   // dimension-ordered, pure logic
	RoutingTable = "table" // table-driven (ROM per input port)
)

// RouterSpace returns the router IP's design space: 9 parameters,
// 6*4*4*3*3*4*2*2*2 = 27,648 design points (the paper's "approximately
// 30,000").
func RouterSpace() *param.Space {
	return param.MustSpace(
		param.Levels(ParamVCs, 1, 2, 3, 4, 6, 8),
		param.Levels(ParamBufDepth, 2, 4, 8, 16),
		param.Levels(ParamFlitWidth, 32, 64, 128, 256),
		param.Levels(ParamPorts, 3, 5, 8),
		param.Choice(ParamAlloc, AllocSepIF, AllocSepOF, AllocWavefront),
		param.Int(ParamPipeline, 1, 4, 1),
		param.Flag(ParamSpecSA),
		param.Choice(ParamRouting, RoutingDOR, RoutingTable),
		param.Flag(ParamAtomicVC),
	)
}

// Router is a decoded router design point.
type Router struct {
	VCs       int
	BufDepth  int
	FlitWidth int
	Ports     int
	Alloc     string
	Pipeline  int
	SpecSA    bool
	Routing   string
	AtomicVC  bool
}

// DecodeRouter extracts a Router from a point of RouterSpace.
func DecodeRouter(s *param.Space, pt param.Point) Router {
	return Router{
		VCs:       s.Int(pt, ParamVCs),
		BufDepth:  s.Int(pt, ParamBufDepth),
		FlitWidth: s.Int(pt, ParamFlitWidth),
		Ports:     s.Int(pt, ParamPorts),
		Alloc:     s.String(pt, ParamAlloc),
		Pipeline:  s.Int(pt, ParamPipeline),
		SpecSA:    s.Bool(pt, ParamSpecSA),
		Routing:   s.String(pt, ParamRouting),
		AtomicVC:  s.Bool(pt, ParamAtomicVC),
	}
}

// String renders the router's configuration compactly.
func (r Router) String() string {
	return fmt.Sprintf("router{P=%d V=%d depth=%d W=%d alloc=%s pipe=%d spec=%t route=%s atomic=%t}",
		r.Ports, r.VCs, r.BufDepth, r.FlitWidth, r.Alloc, r.Pipeline, r.SpecSA, r.Routing, r.AtomicVC)
}

// noiseFrac is the deterministic CAD-noise amplitude applied to router
// synthesis results (XST results typically vary a few percent with seeds).
const noiseFrac = 0.03

// epistasisFrac is the amplitude of each pairwise interaction term. Real
// synthesis results deviate from any additive cost model because parameter
// combinations interact (mapping, packing, and timing-closure effects);
// Figure 1 of the paper shows this scatter directly. Each term below is a
// deterministic multiplier keyed by a pair/triple of parameter values, so
// the deviations are stable per design yet unpredictable across the space.
const epistasisFrac = 0.10

// epistasis returns the combined cross-parameter deviation multiplier for
// the given metric.
func (r Router) epistasis(metric string) float64 {
	f := synth.Noise(fmt.Sprintf("x1/%s/%d/%s", metric, r.VCs, r.Alloc), epistasisFrac)
	f *= synth.Noise(fmt.Sprintf("x2/%s/%d/%d", metric, r.FlitWidth, r.Ports), epistasisFrac)
	f *= synth.Noise(fmt.Sprintf("x3/%s/%d/%s/%t", metric, r.Pipeline, r.Routing, r.SpecSA), epistasisFrac)
	f *= synth.Noise(fmt.Sprintf("x4/%s/%d/%t/%d", metric, r.BufDepth, r.AtomicVC, r.VCs), 0.08)
	return f
}

// LUTs estimates the router's FPGA LUT usage (before noise).
func (r Router) LUTs() float64 {
	p, v, w := r.Ports, r.VCs, r.FlitWidth

	// Input units: per port, per VC flit FIFOs plus VC state.
	buffers := float64(p*v) * synth.FIFOLUTs(r.BufDepth, w)
	vcState := float64(p*v) * 6
	if !r.AtomicVC {
		// Non-atomic VC reallocation tracks in-flight packets per VC.
		vcState *= 1.8
	}

	// Routing computation, one per input port.
	var routing float64
	switch r.Routing {
	case RoutingDOR:
		routing = float64(p) * 12
	case RoutingTable:
		routing = float64(p) * synth.ROMLUTs(64, bitsFor(p)+bitsFor(v))
	}

	// VC allocator: matches waiting packets to output VCs (P*V x P*V).
	// Switch allocator: matches input ports to output ports per cycle.
	var vcAlloc, swAlloc float64
	switch r.Alloc {
	case AllocSepIF:
		vcAlloc = float64(p)*synth.ArbiterLUTs(v) + float64(p*v)*synth.ArbiterLUTs(p)*0.25
		swAlloc = float64(p)*synth.ArbiterLUTs(v) + float64(p)*synth.ArbiterLUTs(p)
	case AllocSepOF:
		vcAlloc = float64(p*v)*synth.ArbiterLUTs(p)*0.35 + float64(p)*synth.ArbiterLUTs(v)*1.2
		swAlloc = float64(p)*synth.ArbiterLUTs(p)*1.3 + float64(p)*synth.ArbiterLUTs(v)
	case AllocWavefront:
		vcAlloc = synth.WavefrontAllocatorLUTs(p*v) * 0.30
		swAlloc = synth.WavefrontAllocatorLUTs(p)
	}
	if r.SpecSA {
		// Speculative SA adds a parallel speculative request path and
		// priority muxing between speculative and non-speculative grants.
		swAlloc += float64(p)*synth.ArbiterLUTs(p)*0.5 + float64(p)*8
	}

	// Crossbar plus output-side pipeline registers.
	xbar := synth.CrossbarLUTs(p, w)
	pipeRegs := float64(r.Pipeline-1) * float64(p) * synth.RegisterLUTs(w+8)

	// Credit tracking per output port per VC.
	credits := float64(p*v) * (4 + synth.AdderLUTs(bitsFor(r.BufDepth)))

	total := buffers + vcState + routing + vcAlloc + swAlloc + xbar + pipeRegs + credits + 60
	return total
}

// logicDepth estimates the router's un-pipelined critical-path depth in
// LUT levels, decomposed per pipeline function.
func (r Router) logicDepth() float64 {
	p, v := float64(r.Ports), float64(r.VCs)

	buf := 1.5 // FIFO read + status
	var route float64
	switch r.Routing {
	case RoutingDOR:
		route = 1.0
	case RoutingTable:
		route = 1.8
	}

	var vcAlloc, swAlloc float64
	switch r.Alloc {
	case AllocSepIF:
		vcAlloc = 1.0 + 0.8*math.Log2(v+1)
		swAlloc = 1.0 + 0.8*math.Log2(p)
	case AllocSepOF:
		vcAlloc = 1.4 + 0.8*math.Log2(v+1)
		swAlloc = 1.4 + 0.8*math.Log2(p)
	case AllocWavefront:
		vcAlloc = 0.6 + 0.35*(p+v)
		swAlloc = 0.6 + 0.35*p
	}
	if r.AtomicVC {
		vcAlloc *= 0.85 // simpler VC-state check
	}

	xbar := math.Ceil(math.Log2(p)/2) + 0.002*float64(r.FlitWidth)

	var alloc float64
	if r.SpecSA {
		// Speculation overlaps VC and switch allocation: depth becomes the
		// max of the two plus grant-selection overhead.
		alloc = math.Max(vcAlloc, swAlloc) + 0.7
	} else {
		alloc = vcAlloc + swAlloc
	}
	return buf + route + alloc + xbar
}

// FmaxMHz estimates the router's maximum clock frequency (before noise).
func (r Router) FmaxMHz() float64 {
	dev := synth.Virtex6LX760
	depth := r.logicDepth()

	// Pipelining splits the logic across stages, with a fixed per-stage
	// overhead; deep pipelines see diminishing returns because the stage
	// boundaries never split perfectly.
	imbalance := 1 + 0.08*float64(r.Pipeline-1)
	perStage := depth/float64(r.Pipeline)*imbalance + 0.6

	congestion := dev.Congestion(r.LUTs(), r.FlitWidth*r.Ports/8)
	return dev.Fmax(perStage, congestion)
}

// Characterize returns the synthesis metrics for the router design,
// including deterministic CAD noise keyed by the design's identity. This is
// the stand-in for one Xilinx XST synthesis job.
func (r Router) Characterize() metrics.Metrics {
	key := r.String()
	luts := math.Round(r.LUTs() * r.epistasis("luts") * synth.Noise(key+"/luts", noiseFrac))
	fmax := r.FmaxMHz() * r.epistasis("fmax") * synth.Noise(key+"/fmax", noiseFrac)
	return metrics.Metrics{
		metrics.LUTs:    luts,
		metrics.FmaxMHz: fmax,
	}
}

// RouterEvaluate characterizes the router design space point pt. It is the
// evaluator function handed to the search engines.
func RouterEvaluate(s *param.Space, pt param.Point) (metrics.Metrics, error) {
	if err := s.Validate(pt); err != nil {
		return nil, err
	}
	return DecodeRouter(s, pt).Characterize(), nil
}

// bitsFor returns the number of bits needed to count to n.
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n + 1))))
}
