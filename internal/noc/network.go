package noc

import (
	"fmt"
	"math"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/synth"
)

// Topology family names, matching the legend of the paper's Figure 2.
const (
	TopoRing           = "ring"
	TopoDoubleRing     = "double_ring"
	TopoConcRing       = "conc_ring"
	TopoConcDoubleRing = "conc_double_ring"
	TopoMesh           = "mesh"
	TopoTorus          = "torus"
	TopoFatTree        = "fat_tree"
	TopoButterfly      = "butterfly"
)

// Topologies lists the families in the paper's Figure 2 legend order.
var Topologies = []string{
	TopoConcRing, TopoConcDoubleRing, TopoRing, TopoDoubleRing,
	TopoMesh, TopoTorus, TopoFatTree, TopoButterfly,
}

// Network parameter names (the network space shares the router's VC, buffer
// depth, flit width, and allocator parameters).
const (
	ParamTopology = "topology"
)

// topoShape describes a topology instantiated for a given endpoint count.
type topoShape struct {
	Routers int // router instances
	Ports   int // radix of each router
	// BisectionChannels is the number of unidirectional channels crossing
	// the network's minimum bisection cut.
	BisectionChannels int
	// Links is the total number of unidirectional inter-router channels
	// (for wiring area/power).
	Links int
	// AvgLinkMM approximates the average physical link length in mm on a
	// 65nm floorplan (drives link power).
	AvgLinkMM float64
}

// shapeFor returns the topology shape for n endpoints. n must be a positive
// power of two >= 16 for all families to be constructible.
func shapeFor(topology string, n int) (topoShape, error) {
	if n < 16 || n&(n-1) != 0 {
		return topoShape{}, fmt.Errorf("noc: endpoint count %d must be a power of two >= 16", n)
	}
	side := int(math.Round(math.Sqrt(float64(n)))) // mesh/torus side
	const conc = 4                                 // concentration factor for concentrated families
	switch topology {
	case TopoRing:
		// n routers with local port, left and right neighbors.
		return topoShape{Routers: n, Ports: 3, BisectionChannels: 4, Links: 2 * n, AvgLinkMM: 1.0}, nil
	case TopoDoubleRing:
		// Two rings in opposite rotation senses; radix 5.
		return topoShape{Routers: n, Ports: 5, BisectionChannels: 8, Links: 4 * n, AvgLinkMM: 1.0}, nil
	case TopoConcRing:
		r := n / conc
		return topoShape{Routers: r, Ports: 2 + conc, BisectionChannels: 4, Links: 2 * r, AvgLinkMM: 1.8}, nil
	case TopoConcDoubleRing:
		r := n / conc
		return topoShape{Routers: r, Ports: 4 + conc, BisectionChannels: 8, Links: 4 * r, AvgLinkMM: 1.8}, nil
	case TopoMesh:
		if side*side != n {
			return topoShape{}, fmt.Errorf("noc: mesh needs a square endpoint count, got %d", n)
		}
		return topoShape{
			Routers: n, Ports: 5,
			BisectionChannels: 2 * side,
			Links:             4 * side * (side - 1),
			AvgLinkMM:         1.0,
		}, nil
	case TopoTorus:
		if side*side != n {
			return topoShape{}, fmt.Errorf("noc: torus needs a square endpoint count, got %d", n)
		}
		return topoShape{
			Routers: n, Ports: 5,
			BisectionChannels: 4 * side,
			Links:             4 * n,
			AvgLinkMM:         1.4, // folded torus wrap links are longer
		}, nil
	case TopoFatTree:
		// 4-ary fat tree: levels = log4(n), n/4 switches per level,
		// full bisection bandwidth.
		levels := int(math.Round(math.Log2(float64(n)) / 2))
		return topoShape{
			Routers: levels * n / 4, Ports: 8,
			BisectionChannels: 2 * n,
			Links:             levels * n * 2,
			AvgLinkMM:         2.2,
		}, nil
	case TopoButterfly:
		// 4-ary butterfly (unidirectional multistage network).
		levels := int(math.Round(math.Log2(float64(n)) / 2))
		return topoShape{
			Routers: levels * n / 4, Ports: 8,
			BisectionChannels: n,
			Links:             levels * n,
			AvgLinkMM:         2.0,
		}, nil
	}
	return topoShape{}, fmt.Errorf("noc: unknown topology %q", topology)
}

// NetworkSpace returns the design space for complete 64-endpoint NoC
// configurations: a topology family crossed with the router parameters the
// CONNECT generator exposes at the network level.
func NetworkSpace() *param.Space {
	return param.MustSpace(
		param.Choice(ParamTopology, Topologies...),
		param.Levels(ParamVCs, 1, 2, 4),
		param.Levels(ParamBufDepth, 4, 8),
		param.Levels(ParamFlitWidth, 32, 64, 128, 256),
		param.Choice(ParamAlloc, AllocSepIF, AllocSepOF, AllocWavefront),
	)
}

// Network is a decoded network design point.
type Network struct {
	Topology  string
	Endpoints int
	VCs       int
	BufDepth  int
	FlitWidth int
	Alloc     string
}

// DecodeNetwork extracts a 64-endpoint Network from a point of
// NetworkSpace.
func DecodeNetwork(s *param.Space, pt param.Point) Network {
	return Network{
		Topology:  s.String(pt, ParamTopology),
		Endpoints: 64,
		VCs:       s.Int(pt, ParamVCs),
		BufDepth:  s.Int(pt, ParamBufDepth),
		FlitWidth: s.Int(pt, ParamFlitWidth),
		Alloc:     s.String(pt, ParamAlloc),
	}
}

// router materializes the per-node router configuration used by the
// network (CONNECT pipelines lightly and uses table routing for generality).
func (n Network) router(ports int) Router {
	return Router{
		VCs:       n.VCs,
		BufDepth:  n.BufDepth,
		FlitWidth: n.FlitWidth,
		Ports:     ports,
		Alloc:     n.Alloc,
		Pipeline:  2,
		SpecSA:    false,
		Routing:   RoutingTable,
		AtomicVC:  true,
	}
}

// Characterize evaluates the full network on the 65nm ASIC model, producing
// silicon area (mm^2), power (mW), bisection bandwidth (Gbps), and the
// network clock (MHz, set by the slowest router).
func (n Network) Characterize() (metrics.Metrics, error) {
	shape, err := shapeFor(n.Topology, n.Endpoints)
	if err != nil {
		return nil, err
	}
	node := synth.ASIC65nm
	r := n.router(shape.Ports)

	// ASIC logic is denser and faster than FPGA; reuse the structural LUT
	// estimate as a gate-equivalent proxy and scale frequency up ~3x
	// (typical FPGA->standard-cell gap at 65nm).
	routerKGE := synth.KGEFromLUTs(r.LUTs())
	freqMHz := r.FmaxMHz() * 3.0

	// Buffers dominate SRAM: account them again as SRAM macro cost.
	bufferKb := float64(shape.Ports*n.VCs*n.BufDepth*n.FlitWidth) / 1024
	routerKGE += bufferKb * node.SRAMKGEPerKb

	// Link wiring: repeaters/registers per mm per bit.
	linkKGE := float64(shape.Links) * float64(n.FlitWidth) * shape.AvgLinkMM * 0.012

	totalKGE := routerKGE*float64(shape.Routers) + linkKGE
	key := fmt.Sprintf("net/%s/%d/%s", n.Topology, n.Endpoints, r.String())
	areaMM2 := node.AreaMM2(totalKGE) * synth.Noise(key+"/area", noiseFrac)

	// Activity: multistage/indirect networks keep more of the fabric busy.
	activity := 0.25
	if n.Topology == TopoFatTree || n.Topology == TopoButterfly {
		activity = 0.35
	}
	powerMW := node.PowerMW(totalKGE, freqMHz, activity) * synth.Noise(key+"/power", noiseFrac)

	bisectionGbps := float64(shape.BisectionChannels) * float64(n.FlitWidth) * freqMHz / 1000

	return metrics.Metrics{
		metrics.AreaMM2:       areaMM2,
		metrics.PowerMW:       powerMW,
		metrics.BisectionGbps: bisectionGbps,
		metrics.FmaxMHz:       freqMHz,
	}, nil
}

// NetworkEvaluate characterizes the network design space point pt.
func NetworkEvaluate(s *param.Space, pt param.Point) (metrics.Metrics, error) {
	if err := s.Validate(pt); err != nil {
		return nil, err
	}
	return DecodeNetwork(s, pt).Characterize()
}
