// Virtual-channel router: 5 ports, 2 VCs x 4 flits, 64-bit flits
// alloc=sep_if pipeline=2 spec_sa=false routing=dor atomic_vc=true
module vc_router (
  clk,
  rst,
  in_flit_0,
  in_valid_0,
  in_credit_0,
  out_flit_0,
  out_valid_0,
  out_credit_0,
  in_flit_1,
  in_valid_1,
  in_credit_1,
  out_flit_1,
  out_valid_1,
  out_credit_1,
  in_flit_2,
  in_valid_2,
  in_credit_2,
  out_flit_2,
  out_valid_2,
  out_credit_2,
  in_flit_3,
  in_valid_3,
  in_credit_3,
  out_flit_3,
  out_valid_3,
  out_credit_3,
  in_flit_4,
  in_valid_4,
  in_credit_4,
  out_flit_4,
  out_valid_4,
  out_credit_4
);
  input clk;
  input rst;
  input [71:0] in_flit_0;
  input in_valid_0;
  output [1:0] in_credit_0;
  output [71:0] out_flit_0;
  output out_valid_0;
  input [1:0] out_credit_0;
  input [71:0] in_flit_1;
  input in_valid_1;
  output [1:0] in_credit_1;
  output [71:0] out_flit_1;
  output out_valid_1;
  input [1:0] out_credit_1;
  input [71:0] in_flit_2;
  input in_valid_2;
  output [1:0] in_credit_2;
  output [71:0] out_flit_2;
  output out_valid_2;
  input [1:0] out_credit_2;
  input [71:0] in_flit_3;
  input in_valid_3;
  output [1:0] in_credit_3;
  output [71:0] out_flit_3;
  output out_valid_3;
  input [1:0] out_credit_3;
  input [71:0] in_flit_4;
  input in_valid_4;
  output [1:0] in_credit_4;
  output [71:0] out_flit_4;
  output out_valid_4;
  input [1:0] out_credit_4;
  wire [71:0] iu_flit_0;
  wire [1:0] iu_valid_0;
  wire [2:0] iu_route_0;
  wire [71:0] iu_flit_1;
  wire [1:0] iu_valid_1;
  wire [2:0] iu_route_1;
  wire [71:0] iu_flit_2;
  wire [1:0] iu_valid_2;
  wire [2:0] iu_route_2;
  wire [71:0] iu_flit_3;
  wire [1:0] iu_valid_3;
  wire [2:0] iu_route_3;
  wire [71:0] iu_flit_4;
  wire [1:0] iu_valid_4;
  wire [2:0] iu_route_4;
  wire [9:0] va_grant;
  wire [24:0] sa_grant;
  wire [71:0] xb_out_0;
  wire [71:0] xb_out_1;
  wire [71:0] xb_out_2;
  wire [71:0] xb_out_3;
  wire [71:0] xb_out_4;
  reg [71:0] out_pipe_0_0;
  reg [71:0] out_pipe_1_0;
  reg [71:0] out_pipe_2_0;
  reg [71:0] out_pipe_3_0;
  reg [71:0] out_pipe_4_0;
  assign out_flit_0 = out_pipe_0_0;
  assign out_valid_0 = |sa_grant[0*5 +: 5];
  assign out_flit_1 = out_pipe_1_0;
  assign out_valid_1 = |sa_grant[1*5 +: 5];
  assign out_flit_2 = out_pipe_2_0;
  assign out_valid_2 = |sa_grant[2*5 +: 5];
  assign out_flit_3 = out_pipe_3_0;
  assign out_valid_3 = |sa_grant[3*5 +: 5];
  assign out_flit_4 = out_pipe_4_0;
  assign out_valid_4 = |sa_grant[4*5 +: 5];
  always @(posedge clk) begin
    out_pipe_0_0 <= xb_out_0;
  end
  always @(posedge clk) begin
    out_pipe_1_0 <= xb_out_1;
  end
  always @(posedge clk) begin
    out_pipe_2_0 <= xb_out_2;
  end
  always @(posedge clk) begin
    out_pipe_3_0 <= xb_out_3;
  end
  always @(posedge clk) begin
    out_pipe_4_0 <= xb_out_4;
  end
  input_unit #(.DEPTH(4), .VCS(2), .WIDTH(72)) iu_0 (
    .clk(clk),
    .credit(in_credit_0),
    .flit_in(in_flit_0),
    .flit_out(iu_flit_0),
    .rst(rst),
    .valid_in(in_valid_0),
    .valid_out(iu_valid_0)
  );
  route_compute #(.PORTS(5)) rc_0 (
    .clk(clk),
    .dest(in_flit_0[7:0]),
    .out_port(iu_route_0)
  );
  input_unit #(.DEPTH(4), .VCS(2), .WIDTH(72)) iu_1 (
    .clk(clk),
    .credit(in_credit_1),
    .flit_in(in_flit_1),
    .flit_out(iu_flit_1),
    .rst(rst),
    .valid_in(in_valid_1),
    .valid_out(iu_valid_1)
  );
  route_compute #(.PORTS(5)) rc_1 (
    .clk(clk),
    .dest(in_flit_1[7:0]),
    .out_port(iu_route_1)
  );
  input_unit #(.DEPTH(4), .VCS(2), .WIDTH(72)) iu_2 (
    .clk(clk),
    .credit(in_credit_2),
    .flit_in(in_flit_2),
    .flit_out(iu_flit_2),
    .rst(rst),
    .valid_in(in_valid_2),
    .valid_out(iu_valid_2)
  );
  route_compute #(.PORTS(5)) rc_2 (
    .clk(clk),
    .dest(in_flit_2[7:0]),
    .out_port(iu_route_2)
  );
  input_unit #(.DEPTH(4), .VCS(2), .WIDTH(72)) iu_3 (
    .clk(clk),
    .credit(in_credit_3),
    .flit_in(in_flit_3),
    .flit_out(iu_flit_3),
    .rst(rst),
    .valid_in(in_valid_3),
    .valid_out(iu_valid_3)
  );
  route_compute #(.PORTS(5)) rc_3 (
    .clk(clk),
    .dest(in_flit_3[7:0]),
    .out_port(iu_route_3)
  );
  input_unit #(.DEPTH(4), .VCS(2), .WIDTH(72)) iu_4 (
    .clk(clk),
    .credit(in_credit_4),
    .flit_in(in_flit_4),
    .flit_out(iu_flit_4),
    .rst(rst),
    .valid_in(in_valid_4),
    .valid_out(iu_valid_4)
  );
  route_compute #(.PORTS(5)) rc_4 (
    .clk(clk),
    .dest(in_flit_4[7:0]),
    .out_port(iu_route_4)
  );
  vc_alloc_sep_if #(.PORTS(5), .VCS(2)) va (
    .clk(clk),
    .grant(va_grant),
    .rst(rst)
  );
  sw_alloc_sep_if #(.PORTS(5), .VCS(2)) sa (
    .clk(clk),
    .grant(sa_grant),
    .rst(rst)
  );
  crossbar #(.PORTS(5), .WIDTH(72)) xb (
    .in_0(iu_flit_0),
    .in_1(iu_flit_1),
    .in_2(iu_flit_2),
    .in_3(iu_flit_3),
    .in_4(iu_flit_4),
    .out_0(xb_out_0),
    .out_1(xb_out_1),
    .out_2(xb_out_2),
    .out_3(xb_out_3),
    .out_4(xb_out_4),
    .sel(sa_grant)
  );
endmodule

// per-port input unit: per-VC flit FIFOs plus VC state
module input_unit (
  clk,
  rst,
  flit_in,
  valid_in,
  credit,
  flit_out,
  valid_out
);
  parameter VCS = 2;
  parameter DEPTH = 4;
  parameter WIDTH = 72;
  input clk;
  input rst;
  input [71:0] flit_in;
  input valid_in;
  output [1:0] credit;
  output [71:0] flit_out;
  output [1:0] valid_out;
  wire [1:0] vc_sel;
  assign vc_sel = flit_in[71:70];
  flit_fifo #(.DEPTH(4), .WIDTH(72)) fifo_0 (
    .clk(clk),
    .empty(credit[0]),
    .rd_data(flit_out),
    .rd_en(valid_out[0]),
    .rst(rst),
    .wr_data(flit_in),
    .wr_en(valid_in & (vc_sel == 0))
  );
  flit_fifo #(.DEPTH(4), .WIDTH(72)) fifo_1 (
    .clk(clk),
    .empty(credit[1]),
    .rd_data(flit_out),
    .rd_en(valid_out[1]),
    .rst(rst),
    .wr_data(flit_in),
    .wr_en(valid_in & (vc_sel == 1))
  );
endmodule

// LUTRAM flit FIFO
module flit_fifo (
  clk,
  rst,
  wr_data,
  wr_en,
  rd_data,
  rd_en,
  empty
);
  parameter DEPTH = 4;
  parameter WIDTH = 72;
  input clk;
  input rst;
  input [71:0] wr_data;
  input wr_en;
  output [71:0] rd_data;
  input rd_en;
  output empty;
  reg [71:0] mem [0:3];
  reg [2:0] wr_ptr;
  reg [2:0] rd_ptr;
  reg [3:0] count;
  assign empty = count == 0;
  assign rd_data = mem[rd_ptr];
  always @(posedge clk) begin
    if (rst) begin wr_ptr <= 0; rd_ptr <= 0; count <= 0; end
    else begin
      if (wr_en) begin mem[wr_ptr] <= wr_data; wr_ptr <= wr_ptr + 1; end
      if (rd_en && count != 0) rd_ptr <= rd_ptr + 1;
      count <= count + (wr_en ? 1 : 0) - ((rd_en && count != 0) ? 1 : 0);
    end
  end
endmodule

// dimension-ordered route computation (pure logic)
module route_compute (
  clk,
  dest,
  out_port
);
  parameter PORTS = 5;
  input clk;
  input [7:0] dest;
  output [2:0] out_port;
  reg [2:0] out_port_r;
  assign out_port = out_port_r;
  always @(posedge clk) begin
    out_port_r <= dest[1:0] % PORTS;
  end
endmodule

// VC allocator (sep_if)
module vc_alloc_sep_if (
  clk,
  rst,
  grant
);
  parameter PORTS = 5;
  parameter VCS = 2;
  input clk;
  input rst;
  output [9:0] grant;
  reg [9:0] rr_state;
  reg [9:0] grant_r;
  assign grant = grant_r;
  always @(posedge clk) begin
    if (rst) begin rr_state <= 1; grant_r <= 0; end
    else begin rr_state <= {rr_state[0 +: 9], rr_state[9]}; grant_r <= rr_state; end
  end
endmodule

// switch allocator (sep_if)
module sw_alloc_sep_if (
  clk,
  rst,
  grant
);
  parameter PORTS = 5;
  parameter VCS = 2;
  input clk;
  input rst;
  output [24:0] grant;
  reg [24:0] rr_state;
  reg [24:0] grant_r;
  assign grant = grant_r;
  always @(posedge clk) begin
    if (rst) begin rr_state <= 1; grant_r <= 0; end
    else begin rr_state <= {rr_state[0 +: 24], rr_state[24]}; grant_r <= rr_state; end
  end
endmodule

// output-multiplexer crossbar
module crossbar (
  sel,
  in_0,
  out_0,
  in_1,
  out_1,
  in_2,
  out_2,
  in_3,
  out_3,
  in_4,
  out_4
);
  parameter PORTS = 5;
  parameter WIDTH = 72;
  input [24:0] sel;
  input [71:0] in_0;
  output [71:0] out_0;
  input [71:0] in_1;
  output [71:0] out_1;
  input [71:0] in_2;
  output [71:0] out_2;
  input [71:0] in_3;
  output [71:0] out_3;
  input [71:0] in_4;
  output [71:0] out_4;
  assign out_0 = sel[4] ? in_4 : (sel[3] ? in_3 : (sel[2] ? in_2 : (sel[1] ? in_1 : (in_0))));
  assign out_1 = sel[9] ? in_4 : (sel[8] ? in_3 : (sel[7] ? in_2 : (sel[6] ? in_1 : (in_0))));
  assign out_2 = sel[14] ? in_4 : (sel[13] ? in_3 : (sel[12] ? in_2 : (sel[11] ? in_1 : (in_0))));
  assign out_3 = sel[19] ? in_4 : (sel[18] ? in_3 : (sel[17] ? in_2 : (sel[16] ? in_1 : (in_0))));
  assign out_4 = sel[24] ? in_4 : (sel[23] ? in_3 : (sel[22] ? in_2 : (sel[21] ? in_1 : (in_0))));
endmodule

