package noc

import (
	"testing"

	"nautilus/internal/param"
)

func TestSimulatePerformanceMesh(t *testing.T) {
	n := Network{Topology: TopoMesh, Endpoints: 64, VCs: 2, BufDepth: 4, FlitWidth: 64, Alloc: AllocSepIF}
	m, err := n.SimulatePerformance(1)
	if err != nil {
		t.Fatal(err)
	}
	sat, ok := m.Get(MetricSatThroughput)
	if !ok || sat <= 0 || sat > 1 {
		t.Errorf("saturation throughput = %v,%v", sat, ok)
	}
	lat, ok := m.Get(MetricZeroLoadLatency)
	if !ok || lat < 5 || lat > 100 {
		t.Errorf("zero-load latency = %v,%v", lat, ok)
	}
}

func TestSimulatePerformanceTorusNeedsVCs(t *testing.T) {
	n := Network{Topology: TopoTorus, Endpoints: 64, VCs: 1, BufDepth: 4, FlitWidth: 64, Alloc: AllocSepIF}
	if _, err := n.SimulatePerformance(1); err == nil {
		t.Error("1-VC torus should be unsimulatable (deadlock)")
	}
}

func TestSimulatePerformanceButterflyUnsupported(t *testing.T) {
	n := Network{Topology: TopoButterfly, Endpoints: 64, VCs: 2, BufDepth: 4, FlitWidth: 64, Alloc: AllocSepIF}
	if _, err := n.SimulatePerformance(1); err == nil {
		t.Error("butterfly should report unsimulatable")
	}
}

func TestSimulatedOrderingMatchesAnalytical(t *testing.T) {
	// The simulator and the analytical bisection-bandwidth model must agree
	// on topology ordering: a fat tree out-saturates a ring.
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	mk := func(topo string) float64 {
		n := Network{Topology: topo, Endpoints: 64, VCs: 2, BufDepth: 4, FlitWidth: 64, Alloc: AllocSepIF}
		m, err := n.SimulatePerformance(3)
		if err != nil {
			t.Fatal(err)
		}
		return m[MetricSatThroughput]
	}
	ring, tree := mk(TopoRing), mk(TopoFatTree)
	if tree <= ring {
		t.Errorf("fat tree saturation %.3f <= ring %.3f", tree, ring)
	}
}

func TestSimulationMetricsUsableInSpace(t *testing.T) {
	// Simulation metrics must be addressable from network-space points like
	// any synthesized metric.
	s := NetworkSpace()
	pt := make(param.Point, s.Len())
	pt = s.Set(pt, ParamTopology, TopoMesh)
	pt = s.Set(pt, ParamVCs, "2")
	n := DecodeNetwork(s, pt)
	m, err := n.SimulatePerformance(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(MetricSatThroughput); !ok {
		t.Error("missing sat_throughput")
	}
}
