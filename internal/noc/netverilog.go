package noc

import (
	"fmt"

	"nautilus/internal/netsim"
	"nautilus/internal/rtl"
)

// Verilog emits synthesizable RTL for the complete network: one vc_router
// instance per node, inter-router flit/valid/credit links wired per the
// topology, and the endpoint interfaces exported at the top. Supported for
// the bidirectional families whose switch radix matches the router
// generator's model (rings, mesh, torus); the multistage families return
// an error.
func (n Network) Verilog() (*rtl.Design, error) {
	switch n.Topology {
	case TopoRing, TopoDoubleRing, TopoConcRing, TopoConcDoubleRing, TopoMesh, TopoTorus:
	default:
		return nil, fmt.Errorf("noc: network RTL emission not supported for topology %q", n.Topology)
	}
	topo, err := netsim.Build(n.Topology, n.Endpoints)
	if err != nil {
		return nil, err
	}
	router := n.router(topo.Ports())
	routerDesign, err := router.Verilog()
	if err != nil {
		return nil, err
	}

	flitW := n.FlitWidth + 8
	top := rtl.NewModule("noc_top").SetComment(fmt.Sprintf(
		"%d-endpoint %s NoC: %d routers of radix %d (%d local + %d network ports)",
		n.Endpoints, n.Topology, topo.Routers, topo.Ports(), topo.Conc, topo.NetPorts))
	top.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	for ep := 0; ep < n.Endpoints; ep++ {
		top.AddPort(rtl.Input, fmt.Sprintf("ep_in_flit_%d", ep), flitW)
		top.AddPort(rtl.Input, fmt.Sprintf("ep_in_valid_%d", ep), 1)
		top.AddPort(rtl.Output, fmt.Sprintf("ep_in_credit_%d", ep), n.VCs)
		top.AddPort(rtl.Output, fmt.Sprintf("ep_out_flit_%d", ep), flitW)
		top.AddPort(rtl.Output, fmt.Sprintf("ep_out_valid_%d", ep), 1)
		top.AddPort(rtl.Input, fmt.Sprintf("ep_out_credit_%d", ep), n.VCs)
	}

	// Link wires: one bundle per (router, network output port).
	for r := 0; r < topo.Routers; r++ {
		for p := 0; p < topo.NetPorts; p++ {
			if _, _, ok := topo.NeighborOf(r, p); !ok {
				continue
			}
			top.AddWire(fmt.Sprintf("lnk_flit_%d_%d", r, p), flitW)
			top.AddWire(fmt.Sprintf("lnk_valid_%d_%d", r, p), 1)
			top.AddWire(fmt.Sprintf("lnk_credit_%d_%d", r, p), n.VCs)
		}
	}
	// Dangling mesh-edge inputs tie off to constants.
	tieFlit, tieValid, tieCredit := false, false, false

	for r := 0; r < topo.Routers; r++ {
		conns := map[string]string{"clk": "clk", "rst": "rst"}
		for lp := 0; lp < topo.Conc; lp++ {
			ep := r*topo.Conc + lp
			conns[fmt.Sprintf("in_flit_%d", lp)] = fmt.Sprintf("ep_in_flit_%d", ep)
			conns[fmt.Sprintf("in_valid_%d", lp)] = fmt.Sprintf("ep_in_valid_%d", ep)
			conns[fmt.Sprintf("in_credit_%d", lp)] = fmt.Sprintf("ep_in_credit_%d", ep)
			conns[fmt.Sprintf("out_flit_%d", lp)] = fmt.Sprintf("ep_out_flit_%d", ep)
			conns[fmt.Sprintf("out_valid_%d", lp)] = fmt.Sprintf("ep_out_valid_%d", ep)
			conns[fmt.Sprintf("out_credit_%d", lp)] = fmt.Sprintf("ep_out_credit_%d", ep)
		}
		for p := 0; p < topo.NetPorts; p++ {
			portIdx := topo.Conc + p
			nbR, nbP, ok := topo.NeighborOf(r, p)
			if !ok {
				// Edge of a mesh: drive inputs with zeros, leave outputs
				// unconnected.
				conns[fmt.Sprintf("in_flit_%d", portIdx)] = "tie_zero_flit"
				conns[fmt.Sprintf("in_valid_%d", portIdx)] = "tie_zero_valid"
				conns[fmt.Sprintf("out_credit_%d", portIdx)] = "tie_zero_credit"
				tieFlit, tieValid, tieCredit = true, true, true
				continue
			}
			// This router's output p drives its own link bundle; its input
			// p listens to the neighbor's bundle for the reverse port.
			conns[fmt.Sprintf("out_flit_%d", portIdx)] = fmt.Sprintf("lnk_flit_%d_%d", r, p)
			conns[fmt.Sprintf("out_valid_%d", portIdx)] = fmt.Sprintf("lnk_valid_%d_%d", r, p)
			conns[fmt.Sprintf("in_flit_%d", portIdx)] = fmt.Sprintf("lnk_flit_%d_%d", nbR, nbP)
			conns[fmt.Sprintf("in_valid_%d", portIdx)] = fmt.Sprintf("lnk_valid_%d_%d", nbR, nbP)
			// Credits flow against the data: this input port returns
			// credits on the neighbor's bundle; this output port receives
			// credits on its own.
			conns[fmt.Sprintf("in_credit_%d", portIdx)] = fmt.Sprintf("lnk_credit_%d_%d", nbR, nbP)
			conns[fmt.Sprintf("out_credit_%d", portIdx)] = fmt.Sprintf("lnk_credit_%d_%d", r, p)
		}
		top.Instantiate("vc_router", fmt.Sprintf("router_%d", r), nil, conns)
	}
	if tieFlit {
		top.AddWire("tie_zero_flit", flitW)
		top.Assign("tie_zero_flit", "0")
	}
	if tieValid {
		top.AddWire("tie_zero_valid", 1)
		top.Assign("tie_zero_valid", "0")
	}
	if tieCredit {
		top.AddWire("tie_zero_credit", n.VCs)
		top.Assign("tie_zero_credit", "0")
	}

	out := &rtl.Design{Top: "noc_top"}
	out.Modules = append(out.Modules, top)
	out.Modules = append(out.Modules, routerDesign.Modules...)
	if err := out.Check(); err != nil {
		return nil, err
	}
	return out, nil
}
