package noc

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"nautilus/internal/rtl"
)

func TestRouterVerilogValid(t *testing.T) {
	r := baseRouter()
	d, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Check(); err != nil {
		t.Fatalf("emitted design fails structural check: %v", err)
	}
	v := d.Verilog()
	for _, want := range []string{
		"module vc_router", "module input_unit", "module flit_fifo",
		"module route_compute", "module crossbar", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
}

func TestRouterVerilogStructureTracksConfig(t *testing.T) {
	r := baseRouter()
	r.Ports, r.VCs = 5, 3
	d, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	top := d.Modules[0]
	inputUnits, routeComputes := 0, 0
	for _, inst := range top.Instances() {
		switch inst.Module {
		case "input_unit":
			inputUnits++
		case "route_compute":
			routeComputes++
		}
	}
	if inputUnits != 5 || routeComputes != 5 {
		t.Errorf("got %d input units, %d route computes, want 5 each", inputUnits, routeComputes)
	}
	// Each input unit holds one FIFO per VC.
	var iu = findModule(t, d.Modules, "input_unit")
	fifos := 0
	for _, inst := range iu.Instances() {
		if inst.Module == "flit_fifo" {
			fifos++
		}
	}
	if fifos != 3 {
		t.Errorf("input unit has %d FIFOs, want 3 (VCs)", fifos)
	}
}

func TestRouterVerilogAllocatorFlavor(t *testing.T) {
	r := baseRouter()
	r.Alloc = AllocWavefront
	d, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	v := d.Verilog()
	if !strings.Contains(v, "vc_alloc_wavefront") || !strings.Contains(v, "req_matrix") {
		t.Error("wavefront allocator structure missing")
	}
	r.Alloc = AllocSepIF
	d2, _ := r.Verilog()
	if !strings.Contains(d2.Verilog(), "vc_alloc_sep_if") {
		t.Error("separable allocator module missing")
	}
}

func TestRouterVerilogSpeculation(t *testing.T) {
	r := baseRouter()
	r.SpecSA = true
	d, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Verilog(), "spec_grant_merge") {
		t.Error("speculative grant merge missing when SpecSA on")
	}
	r.SpecSA = false
	d2, _ := r.Verilog()
	if strings.Contains(d2.Verilog(), "spec_grant_merge") {
		t.Error("speculation logic emitted when SpecSA off")
	}
}

func TestRouterVerilogTableRouting(t *testing.T) {
	r := baseRouter()
	r.Routing = RoutingTable
	d, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Verilog(), "table_rom") {
		t.Error("routing table ROM missing")
	}
}

func TestRouterVerilogPipelineRegisters(t *testing.T) {
	r := baseRouter()
	r.Pipeline = 4
	d, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	v := d.Verilog()
	if !strings.Contains(v, "out_pipe_0_2") {
		t.Error("4-stage pipeline should emit 3 output register ranks")
	}
	r.Pipeline = 1
	d1, _ := r.Verilog()
	if strings.Contains(d1.Verilog(), "out_pipe_") {
		t.Error("single-stage router should emit no pipeline registers")
	}
}

func TestRouterVerilogDeterministic(t *testing.T) {
	r := baseRouter()
	a, err := r.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Verilog()
	if a.Verilog() != b.Verilog() {
		t.Error("Verilog emission not deterministic")
	}
}

// Property: every point of the router space emits a structurally valid
// design.
func TestQuickRouterVerilogAlwaysValid(t *testing.T) {
	s := RouterSpace()
	r := rand.New(rand.NewSource(5))
	f := func(_ uint8) bool {
		pt := s.Random(r)
		d, err := DecodeRouter(s, pt).Verilog()
		if err != nil {
			return false
		}
		return d.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func findModule(t *testing.T, mods []*rtl.Module, name string) *rtl.Module {
	t.Helper()
	for _, m := range mods {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("module %s not found", name)
	return nil
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRouterVerilogGolden pins the exact emitted RTL for one reference
// configuration; regenerate with `go test ./internal/noc -run Golden -update`.
func TestRouterVerilogGolden(t *testing.T) {
	d, err := baseRouter().Verilog()
	if err != nil {
		t.Fatal(err)
	}
	got := d.Verilog()
	path := filepath.Join("testdata", "golden_router.v")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Error("emitted RTL differs from golden file; rerun with -update if the change is intended")
	}
}
