package noc

import (
	"fmt"

	"nautilus/internal/metrics"
	"nautilus/internal/netsim"
)

// Simulation-derived metric names. These come from cycle-based simulation
// (the other half of the paper's characterization flow, next to CAD runs)
// and can enter queries like any synthesized metric.
const (
	// MetricSatThroughput is saturation throughput in flits/endpoint/cycle.
	MetricSatThroughput = "sat_throughput"
	// MetricZeroLoadLatency is the low-load average packet latency in
	// cycles.
	MetricZeroLoadLatency = "zero_load_latency"
)

// simTopology maps the network generator's topology names onto the
// simulator's (the unidirectional butterfly cannot be simulated by the
// bidirectional wormhole model).
func simTopology(topology string) (string, error) {
	switch topology {
	case TopoRing, TopoDoubleRing, TopoConcRing, TopoConcDoubleRing, TopoMesh, TopoTorus, TopoFatTree:
		return topology, nil
	}
	return "", fmt.Errorf("noc: topology %q is not simulatable", topology)
}

// SimulatePerformance runs cycle-based traffic simulation for the network
// configuration and returns measured performance metrics. Networks whose
// router configuration cannot satisfy the topology's deadlock-freedom
// requirements (e.g. a 1-VC torus) return an error, exactly like an
// infeasible synthesis job.
func (n Network) SimulatePerformance(seed int64) (metrics.Metrics, error) {
	kind, err := simTopology(n.Topology)
	if err != nil {
		return nil, err
	}
	topo, err := netsim.Build(kind, n.Endpoints)
	if err != nil {
		return nil, err
	}
	base := netsim.Config{
		Topology: topo,
		Router: netsim.RouterConfig{
			VCs:             n.VCs,
			BufDepth:        n.BufDepth,
			PipelineLatency: 2,
		},
		PacketFlits:   4,
		WarmupCycles:  300,
		MeasureCycles: 600,
		DrainCycles:   600,
		Seed:          seed,
	}
	ref := base
	ref.InjectionRate = 0.02
	refRes, err := netsim.Run(ref)
	if err != nil {
		return nil, err
	}
	sat, err := netsim.SaturationThroughput(base, 3, 6)
	if err != nil {
		return nil, err
	}
	return metrics.Metrics{
		MetricSatThroughput:   sat,
		MetricZeroLoadLatency: refRes.AvgLatency,
	}, nil
}
