package search

import (
	"errors"
	"math"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func TestAnnealFindsGoodSolutions(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	res, err := Anneal(s, obj, eval, AnnealConfig{Budget: 250, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("nothing found")
	}
	if res.BestValue > 5 {
		t.Errorf("best cost %v after 250 evals on a convex bowl, want near 0", res.BestValue)
	}
	if res.DistinctEvals > 250 {
		t.Errorf("budget exceeded: %d", res.DistinctEvals)
	}
}

func TestAnnealEscapesLocalOptimum(t *testing.T) {
	// The deceptive 1-D space from the hill-climb test: broad basin at x=3
	// (cost 5), narrow global optimum at x=18 behind a ridge. Annealing's
	// uphill acceptances should find the needle far more often than greedy
	// descent.
	s := param.MustSpace(param.Int("x", 0, 19, 1))
	eval := func(pt param.Point) (metrics.Metrics, error) {
		x := pt[0]
		switch {
		case x == 18:
			return metrics.Metrics{"cost": 0}, nil
		case x >= 15:
			return metrics.Metrics{"cost": 500}, nil
		default:
			d := float64(x - 3)
			return metrics.Metrics{"cost": 5 + d*d}, nil
		}
	}
	obj := metrics.MinimizeMetric("cost")
	found := 0
	for seed := int64(0); seed < 10; seed++ {
		res, err := Anneal(s, obj, eval, AnnealConfig{Budget: 20, Seed: seed, Restarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.BestValue == 0 {
			found++
		}
	}
	if found < 5 {
		t.Errorf("annealing found the needle in only %d/10 runs", found)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	a, err := Anneal(s, obj, eval, AnnealConfig{Budget: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Anneal(s, obj, eval, AnnealConfig{Budget: 100, Seed: 9})
	if a.BestValue != b.BestValue || a.DistinctEvals != b.DistinctEvals {
		t.Error("annealing not deterministic per seed")
	}
}

func TestAnnealSurvivesInfeasible(t *testing.T) {
	s, eval := costSpace()
	spiky := func(pt param.Point) (metrics.Metrics, error) {
		if (pt[0]+pt[1])%3 == 2 {
			return nil, errors.New("stripe")
		}
		return eval(pt)
	}
	res, err := Anneal(s, metrics.MinimizeMetric("cost"), spiky, AnnealConfig{Budget: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil || math.IsInf(res.BestValue, 0) {
		t.Fatal("no feasible point found through infeasible stripes")
	}
}

func TestAnnealRejectsBadBudget(t *testing.T) {
	s, eval := costSpace()
	if _, err := Anneal(s, metrics.MinimizeMetric("cost"), eval, AnnealConfig{Budget: 1}); err == nil {
		t.Error("budget 1 accepted")
	}
}

func TestAnnealTrajectoryMonotone(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	res, err := Anneal(s, obj, eval, AnnealConfig{Budget: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, gp := range res.Trajectory {
		if gp.BestValue > prev {
			t.Fatal("best-so-far worsened")
		}
		prev = gp.BestValue
	}
}
