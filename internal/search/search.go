// Package search provides the non-GA search baselines the paper compares
// against: uniform random sampling, exhaustive enumeration, and greedy
// hill climbing. All report cost in distinct design evaluations, like the
// GA engines, so results are directly comparable.
package search

import (
	"fmt"
	"math"
	"math/rand"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// Random draws budget design points uniformly at random (without
// replacement bookkeeping via the evaluation cache: re-drawn points cost
// nothing, matching the paper's cost model) and returns the best found.
// The trajectory has one entry per batch of 10 draws plus the final state.
func Random(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, budget int, seed int64) (ga.Result, error) {
	if budget < 1 {
		return ga.Result{}, fmt.Errorf("search: budget %d < 1", budget)
	}
	cache := dataset.NewCache(space, eval)
	r := rand.New(rand.NewSource(seed))

	best := obj.Worst()
	var bestPt param.Point
	var trajectory []ga.GenPoint
	record := func(i int) {
		trajectory = append(trajectory, ga.GenPoint{
			Generation:    i,
			DistinctEvals: cache.DistinctEvaluations(),
			BestValue:     best,
		})
	}
	for i := 1; cache.DistinctEvaluations() < budget; i++ {
		pt := space.Random(r)
		m, err := cache.Evaluate(pt)
		if err == nil {
			if v, ok := obj.Value(m); ok && obj.Better(v, best) {
				best = v
				bestPt = pt.Clone()
			}
		}
		if cache.DistinctEvaluations()%10 == 0 {
			record(i)
		}
	}
	record(budget)
	return ga.Result{
		BestPoint:     bestPt,
		BestValue:     best,
		Trajectory:    trajectory,
		DistinctEvals: cache.DistinctEvaluations(),
	}, nil
}

// RandomUntil draws random points until one at least as good as target is
// found (or maxDraws distinct evaluations are spent), returning the number
// of distinct evaluations used and whether the target was reached. This
// measures the paper's "random sampling would take N synthesis runs" claim
// empirically.
func RandomUntil(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, target float64, maxDraws int, seed int64) (int, bool) {
	cache := dataset.NewCache(space, eval)
	r := rand.New(rand.NewSource(seed))
	for cache.DistinctEvaluations() < maxDraws {
		m, err := cache.Evaluate(space.Random(r))
		if err != nil {
			continue
		}
		if v, ok := obj.Value(m); ok && !obj.Better(target, v) {
			return cache.DistinctEvaluations(), true
		}
	}
	return cache.DistinctEvaluations(), false
}

// Exhaustive evaluates every point of the space and returns the optimum.
// Its cost is the full cardinality - the brute-force bound the paper's
// Figure 1/2 motivation argues is untenable when evaluations take hours.
func Exhaustive(space *param.Space, obj metrics.Objective, eval dataset.Evaluator) (ga.Result, error) {
	best := obj.Worst()
	var bestPt param.Point
	evals := 0
	space.Enumerate(func(pt param.Point) bool {
		evals++
		m, err := eval(pt)
		if err != nil {
			return true
		}
		if v, ok := obj.Value(m); ok && obj.Better(v, best) {
			best = v
			bestPt = pt.Clone()
		}
		return true
	})
	if bestPt == nil {
		return ga.Result{}, fmt.Errorf("search: no feasible point in space")
	}
	return ga.Result{
		BestPoint:     bestPt,
		BestValue:     best,
		DistinctEvals: evals,
		Trajectory: []ga.GenPoint{{
			Generation: 0, DistinctEvals: evals, BestValue: best,
		}},
	}, nil
}

// HillClimb runs steepest-ascent hill climbing with random restarts: from a
// random point, repeatedly move to the best neighbor (one gene changed by
// one index step) until no neighbor improves, restarting until the
// evaluation budget is exhausted. A classic greedy baseline that gets stuck
// where GAs do not.
func HillClimb(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, budget int, seed int64) (ga.Result, error) {
	if budget < 1 {
		return ga.Result{}, fmt.Errorf("search: budget %d < 1", budget)
	}
	cache := dataset.NewCache(space, eval)
	r := rand.New(rand.NewSource(seed))

	best := obj.Worst()
	var bestPt param.Point
	var trajectory []ga.GenPoint

	value := func(pt param.Point) (float64, bool) {
		m, err := cache.Evaluate(pt)
		if err != nil {
			return obj.Worst(), false
		}
		return obj.Value(m)
	}

	restart := 0
	for cache.DistinctEvaluations() < budget {
		cur := space.Random(r)
		curVal, ok := value(cur)
		if ok && obj.Better(curVal, best) {
			best, bestPt = curVal, cur.Clone()
		}
		improved := true
		for improved && cache.DistinctEvaluations() < budget {
			improved = false
			bestNb := cur
			bestNbVal := curVal
			nbOK := ok
			for g := 0; g < space.Len(); g++ {
				for _, d := range []int{-1, 1} {
					if cache.DistinctEvaluations() >= budget {
						break
					}
					nv := cur[g] + d
					if nv < 0 || nv >= space.Param(g).Card() {
						continue
					}
					nb := cur.Clone()
					nb[g] = nv
					v, vok := value(nb)
					if !vok {
						continue
					}
					if !nbOK || obj.Better(v, bestNbVal) {
						bestNb, bestNbVal, nbOK = nb, v, true
						improved = true
					}
				}
			}
			if improved {
				cur, curVal, ok = bestNb, bestNbVal, nbOK
				if ok && obj.Better(curVal, best) {
					best, bestPt = curVal, cur.Clone()
				}
			}
		}
		restart++
		trajectory = append(trajectory, ga.GenPoint{
			Generation:    restart,
			DistinctEvals: cache.DistinctEvaluations(),
			BestValue:     best,
		})
	}
	if math.IsInf(best, 0) {
		bestPt = nil
	}
	return ga.Result{
		BestPoint:     bestPt,
		BestValue:     best,
		Trajectory:    trajectory,
		DistinctEvals: cache.DistinctEvaluations(),
	}, nil
}
