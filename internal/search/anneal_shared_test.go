package search

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func annealSpace() (*param.Space, dataset.Evaluator, metrics.Objective) {
	s := param.MustSpace(
		param.Int("a", 0, 15, 1),
		param.Int("b", 0, 15, 1),
		param.Int("c", 0, 7, 1),
	)
	eval := func(pt param.Point) (metrics.Metrics, error) {
		a, b, c := float64(pt[0]), float64(pt[1]), float64(pt[2])
		return metrics.Metrics{"cost": 5 + (a-9)*(a-9) + (b-4)*(b-4) + 2*c}, nil
	}
	return s, eval, metrics.MinimizeMetric("cost")
}

// TestAnnealDeterministicOverSharedHashedCache pins the portfolio layering
// contract: an anneal walk whose evaluator routes through a shared
// hash-keyed dedup cache (the arrangement core.ModePortfolio builds)
// produces results byte-identical to a solo run against the raw evaluator,
// no matter how warm the shared cache already is - memoization must change
// cost accounting only, never the walk.
func TestAnnealDeterministicOverSharedHashedCache(t *testing.T) {
	space, eval, obj := annealSpace()
	cfg := AnnealConfig{Budget: 120, Seed: 9}

	solo, err := Anneal(space, obj, eval, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var rawCalls atomic.Int64
	counted := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		rawCalls.Add(1)
		return eval(pt)
	}
	shared := dataset.NewCacheContext(space, counted) // KeyModeHash default
	layered, err := AnnealCtx(context.Background(), space, obj, shared.EvaluateCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(layered.BestPoint, solo.BestPoint) ||
		layered.BestValue != solo.BestValue ||
		!reflect.DeepEqual(layered.Trajectory, solo.Trajectory) ||
		layered.DistinctEvals != solo.DistinctEvals {
		t.Fatalf("layered run diverged from solo:\n got %+v\nwant %+v", layered, solo)
	}
	if got := int(rawCalls.Load()); got != solo.DistinctEvals {
		t.Errorf("raw evaluator invoked %d times, want one per distinct point (%d)", got, solo.DistinctEvals)
	}

	// Re-running over the now-warm shared cache: identical walk, zero new
	// raw evaluator work.
	rawCalls.Store(0)
	warm, err := AnnealCtx(context.Background(), space, obj, shared.EvaluateCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.BestPoint, solo.BestPoint) || warm.BestValue != solo.BestValue ||
		!reflect.DeepEqual(warm.Trajectory, solo.Trajectory) {
		t.Fatalf("warm-cache run diverged from solo:\n got %+v\nwant %+v", warm, solo)
	}
	if got := rawCalls.Load(); got != 0 {
		t.Errorf("warm shared cache still invoked the raw evaluator %d times", got)
	}
}

func TestAnnealCtxCancellation(t *testing.T) {
	space, eval, obj := annealSpace()
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	gate := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		evals++
		if evals == 20 {
			cancel()
		}
		return eval(pt)
	}
	res, err := AnnealCtx(ctx, space, obj, gate, AnnealConfig{Budget: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("canceled anneal run should report Interrupted")
	}
	if res.DistinctEvals >= 5000 {
		t.Errorf("cancellation did not stop the walk early: %d evals", res.DistinctEvals)
	}
}
