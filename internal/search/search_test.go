package search

import (
	"errors"
	"math"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func costSpace() (*param.Space, func(param.Point) (metrics.Metrics, error)) {
	s := param.MustSpace(
		param.Int("x", 0, 19, 1),
		param.Int("y", 0, 19, 1),
	)
	eval := func(pt param.Point) (metrics.Metrics, error) {
		x, y := float64(pt[0]-13), float64(pt[1]-6)
		return metrics.Metrics{"cost": x*x + y*y}, nil
	}
	return s, eval
}

func TestRandomFindsReasonableSolutions(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	res, err := Random(s, obj, eval, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("no point found")
	}
	if res.DistinctEvals != 200 {
		t.Errorf("distinct evals %d, want exactly the budget 200", res.DistinctEvals)
	}
	if res.BestValue > 20 {
		t.Errorf("best cost %v after 200/400 points, want small", res.BestValue)
	}
	if len(res.Trajectory) == 0 {
		t.Error("no trajectory recorded")
	}
}

func TestRandomRejectsBadBudget(t *testing.T) {
	s, eval := costSpace()
	if _, err := Random(s, metrics.MinimizeMetric("cost"), eval, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestRandomDeterministic(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	a, _ := Random(s, obj, eval, 50, 7)
	b, _ := Random(s, obj, eval, 50, 7)
	if a.BestValue != b.BestValue {
		t.Error("random search not deterministic per seed")
	}
}

func TestRandomUntil(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	evals, ok := RandomUntil(s, obj, eval, 0, 400, 3)
	if !ok {
		t.Fatalf("optimum not found in full budget (spent %d)", evals)
	}
	if evals < 1 || evals > 400 {
		t.Errorf("evals = %d out of range", evals)
	}
	// Unreachable target.
	evals, ok = RandomUntil(s, obj, eval, -1, 100, 3)
	if ok {
		t.Error("impossible target reported reached")
	}
	if evals != 100 {
		t.Errorf("spent %d, want full 100 budget", evals)
	}
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	res, err := Exhaustive(s, obj, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 0 {
		t.Errorf("best = %v, want exact optimum 0", res.BestValue)
	}
	if res.DistinctEvals != 400 {
		t.Errorf("evals = %d, want full cardinality 400", res.DistinctEvals)
	}
	if s.Int(res.BestPoint, "x") != 13 || s.Int(res.BestPoint, "y") != 6 {
		t.Errorf("optimum at %s", s.Describe(res.BestPoint))
	}
}

func TestExhaustiveAllInfeasible(t *testing.T) {
	s, _ := costSpace()
	bad := func(param.Point) (metrics.Metrics, error) { return nil, errors.New("no") }
	if _, err := Exhaustive(s, metrics.MinimizeMetric("cost"), bad); err == nil {
		t.Error("expected error when nothing is feasible")
	}
}

func TestHillClimbOnConvexSpace(t *testing.T) {
	// The cost bowl is convex, so hill climbing from any start must reach
	// the exact optimum.
	s, eval := costSpace()
	obj := metrics.MinimizeMetric("cost")
	res, err := HillClimb(s, obj, eval, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 0 {
		t.Errorf("hill climb best = %v, want 0 on convex space", res.BestValue)
	}
	if res.DistinctEvals > 300 {
		t.Errorf("budget exceeded: %d", res.DistinctEvals)
	}
}

func TestHillClimbGetsStuckOnDeceptiveSpace(t *testing.T) {
	// A deceptive space: a broad local basin at x=3 (cost 5) and a narrow
	// global optimum at x=18 (cost 0) surrounded by a high ridge. Greedy
	// single-gene moves from most starts end in the basin; verify the
	// baseline exhibits exactly the weakness the paper's GA avoids.
	s := param.MustSpace(param.Int("x", 0, 19, 1))
	eval := func(pt param.Point) (metrics.Metrics, error) {
		x := pt[0]
		switch {
		case x == 18:
			return metrics.Metrics{"cost": 0}, nil
		case x >= 15:
			return metrics.Metrics{"cost": 500}, nil // ridge
		default:
			d := float64(x - 3)
			return metrics.Metrics{"cost": 5 + d*d}, nil
		}
	}
	obj := metrics.MinimizeMetric("cost")
	// Tiny budget: one or two restarts, very likely starting in the basin.
	res, err := HillClimb(s, obj, eval, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue == 0 {
		t.Skip("lucky start found the needle; deceptiveness not exercised")
	}
	if res.BestValue > 500 {
		t.Errorf("best %v, should at least reach the basin", res.BestValue)
	}
}

func TestHillClimbSurvivesInfeasibleStripes(t *testing.T) {
	s, eval := costSpace()
	striped := func(pt param.Point) (metrics.Metrics, error) {
		if (pt[0]+pt[1])%5 == 4 {
			return nil, errors.New("stripe")
		}
		return eval(pt)
	}
	res, err := HillClimb(s, metrics.MinimizeMetric("cost"), striped, 350, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("nothing feasible found")
	}
	if math.IsInf(res.BestValue, 0) {
		t.Fatal("best value is sentinel")
	}
}

func TestHillClimbBadBudget(t *testing.T) {
	s, eval := costSpace()
	if _, err := HillClimb(s, metrics.MinimizeMetric("cost"), eval, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}
