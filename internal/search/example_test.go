package search_test

import (
	"fmt"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/search"
)

func exampleSpace() (*param.Space, func(param.Point) (metrics.Metrics, error)) {
	s := param.MustSpace(param.Int("x", 0, 31, 1), param.Int("y", 0, 31, 1))
	eval := func(pt param.Point) (metrics.Metrics, error) {
		dx, dy := float64(pt[0]-20), float64(pt[1]-11)
		return metrics.Metrics{"cost": dx*dx + dy*dy}, nil
	}
	return s, eval
}

// Exhaustive search is the ground truth every cheaper method is judged
// against - at the cost of the full design space in synthesis jobs.
func ExampleExhaustive() {
	s, eval := exampleSpace()
	res, err := search.Exhaustive(s, metrics.MinimizeMetric("cost"), eval)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("optimum:", res.BestValue, "at", s.Describe(res.BestPoint))
	fmt.Println("cost:", res.DistinctEvals, "evaluations")
	// Output:
	// optimum: 0 at x=20 y=11
	// cost: 1024 evaluations
}

// Hill climbing solves convex spaces with a fraction of the evaluations.
func ExampleHillClimb() {
	s, eval := exampleSpace()
	res, err := search.HillClimb(s, metrics.MinimizeMetric("cost"), eval, 400, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("found:", res.BestValue)
	fmt.Println("within budget:", res.DistinctEvals <= 400)
	// Output:
	// found: 0
	// within budget: true
}
