package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// AnnealConfig tunes simulated annealing (the classic physical-design
// stochastic optimizer the paper's related-work section cites).
type AnnealConfig struct {
	// Budget is the distinct-evaluation budget.
	Budget int
	// InitialTemp is the starting temperature in units of fitness spread;
	// 0 selects it automatically from an initial random probe.
	InitialTemp float64
	// Cooling is the geometric cooling factor per accepted step (default
	// 0.995).
	Cooling float64
	// Restarts re-seeds the walk when the temperature freezes (default 3).
	Restarts int
	Seed     int64
}

func (c AnnealConfig) withDefaults() AnnealConfig {
	if c.Cooling == 0 {
		c.Cooling = 0.995
	}
	if c.Restarts == 0 {
		c.Restarts = 3
	}
	return c
}

// Anneal runs simulated annealing over the space: a single-point walk that
// accepts worsening moves with probability exp(-delta/T) under a cooling
// schedule.
func Anneal(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, cfg AnnealConfig) (ga.Result, error) {
	return AnnealCtx(context.Background(), space, obj, dataset.AdaptContext(eval), cfg)
}

// AnnealCtx is Anneal for a context-aware evaluator, the form the portfolio
// racer drives: the run context reaches every evaluation (so layered
// shared caches and supervised evaluators can honor deadlines), and
// cancellation stops the walk at the next step with Interrupted set on the
// partial result. The RNG draw sequence is identical to Anneal's, so both
// entry points produce byte-identical results for the same inputs.
func AnnealCtx(ctx context.Context, space *param.Space, obj metrics.Objective, eval dataset.ContextEvaluator, cfg AnnealConfig) (ga.Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Budget < 2 {
		return ga.Result{}, fmt.Errorf("search: anneal budget %d < 2", cfg.Budget)
	}
	cache := dataset.NewCacheContext(space, eval)
	r := rand.New(rand.NewSource(cfg.Seed))

	fitness := func(pt param.Point) float64 {
		m, err := cache.EvaluateCtx(ctx, pt)
		if err != nil {
			return math.Inf(-1)
		}
		return obj.Fitness(m)
	}
	neighbor := func(pt param.Point) param.Point {
		nb := pt.Clone()
		g := r.Intn(space.Len())
		card := space.Param(g).Card()
		if card <= 1 {
			return nb
		}
		if space.Param(g).IsOrdered() && r.Float64() < 0.7 {
			// Local step along the axis.
			step := 1 + r.Intn(2)
			if r.Intn(2) == 0 {
				step = -step
			}
			v := nb[g] + step
			if v < 0 {
				v = 0
			}
			if v > card-1 {
				v = card - 1
			}
			if v == nb[g] {
				v = (nb[g] + 1) % card
			}
			nb[g] = v
			return nb
		}
		v := r.Intn(card - 1)
		if v >= nb[g] {
			v++
		}
		nb[g] = v
		return nb
	}

	best := math.Inf(-1)
	var bestPt param.Point
	bestVal := obj.Worst()
	var trajectory []ga.GenPoint
	record := func(step int) {
		trajectory = append(trajectory, ga.GenPoint{
			Generation:    step,
			DistinctEvals: cache.DistinctEvaluations(),
			BestValue:     bestVal,
		})
	}
	note := func(pt param.Point, fit float64) {
		if fit > best {
			best = fit
			bestPt = pt.Clone()
			if m, err := cache.EvaluateCtx(ctx, pt); err == nil {
				if v, ok := obj.Value(m); ok {
					bestVal = v
				}
			}
		}
	}

	step := 0
	interrupted := false
	for restart := 0; restart < cfg.Restarts && cache.DistinctEvaluations() < cfg.Budget; restart++ {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		cur := space.Random(r)
		curFit := fitness(cur)
		note(cur, curFit)

		temp := cfg.InitialTemp
		if temp <= 0 {
			// Probe a handful of random points to scale the temperature to
			// the fitness landscape.
			span := 0.0
			probeBest, probeWorst := curFit, curFit
			for i := 0; i < 5 && cache.DistinctEvaluations() < cfg.Budget; i++ {
				f := fitness(space.Random(r))
				if f > probeBest && !math.IsInf(f, 0) {
					probeBest = f
				}
				if f < probeWorst && !math.IsInf(f, 0) {
					probeWorst = f
				}
			}
			span = probeBest - probeWorst
			if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
				span = 1
			}
			temp = span / 2
		}
		minTemp := temp * 1e-4

		for temp > minTemp && cache.DistinctEvaluations() < cfg.Budget {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			step++
			nb := neighbor(cur)
			nbFit := fitness(nb)
			note(nb, nbFit)
			delta := nbFit - curFit
			if delta >= 0 || (!math.IsInf(nbFit, -1) && r.Float64() < math.Exp(delta/temp)) {
				cur, curFit = nb, nbFit
			}
			temp *= cfg.Cooling
			if step%25 == 0 {
				record(step)
			}
		}
	}
	record(step)
	return ga.Result{
		BestPoint:     bestPt,
		BestValue:     bestVal,
		Trajectory:    trajectory,
		DistinctEvals: cache.DistinctEvaluations(),
		Interrupted:   interrupted,
		Cache:         cache.Stats(),
	}, nil
}
