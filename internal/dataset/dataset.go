// Package dataset provides evaluation caching and pre-characterized design
// space datasets.
//
// The Nautilus paper measures search cost in *distinct design points
// evaluated*, because each distinct evaluation is a multi-minute-to-multi-
// hour synthesis/simulation job while re-visiting an already-characterized
// point is free. Cache wraps an evaluator with exactly that accounting.
// Dataset holds a fully enumerated characterization (the paper's "offline"
// datasets produced on a 200+ core cluster) and answers rank/percentile
// queries such as "is this solution within the top 1%?".
package dataset

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pool"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Evaluator maps a design point to its characterization metrics. An error
// marks the point infeasible (or malformed); infeasible evaluations still
// count as spent synthesis jobs, as they would in a real flow.
type Evaluator func(param.Point) (metrics.Metrics, error)

// ContextEvaluator is an Evaluator that honors cancellation and deadlines -
// the shape a real synthesis-in-the-loop evaluation has, where a tool run
// can be killed when its budget expires. internal/resilience supervises
// evaluators in this form.
type ContextEvaluator func(context.Context, param.Point) (metrics.Metrics, error)

// AdaptContext lifts a plain Evaluator into a ContextEvaluator that checks
// for cancellation before starting. It cannot interrupt an evaluation
// already in flight - only natively context-aware evaluators can honor
// mid-run deadlines.
func AdaptContext(eval Evaluator) ContextEvaluator {
	return func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		if err := ctx.Err(); err != nil {
			return nil, MarkTransient(err)
		}
		return eval(pt)
	}
}

// MarkTransient wraps err so IsTransient reports true. Transient errors are
// retryable infrastructure failures (tool crash, timeout, garbage output) -
// the design point itself is not known infeasible, so the Cache must never
// memoize them.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// IsTransient reports whether err (or anything it wraps) is marked
// transient. Anything else - including plain infeasibility errors - is
// permanent and may be memoized.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Remote is a cluster-level cache tier a Cache consults on a local miss,
// after the shard tables and singleflight slots have ruled out a local
// answer but before the local evaluator pays for the point. The hash is
// the point's 64-bit genome identity (param.Space.Hash64) - the same
// identity the shard tables key on, and the one a cluster's consistent-
// hash ring routes by.
//
// Lookup returns ok=false when it cannot resolve the point - the ring
// owner is this process, the owning peer is unreachable, the remote tier
// is degraded - and the cache falls through to its local evaluator, so a
// remote tier can only ever add a resolution source, never remove one.
// ok=true outcomes are definitive (a characterization or a permanent
// infeasibility error) and are memoized exactly like local ones; a remote
// tier must never return transient transport failures as ok=true.
//
// Because the tier sits under the singleflight slot, a distinct design
// point costs at most one remote lookup no matter how many goroutines
// race for it - the cluster analogue of the paper's one-synthesis-job-per-
// point accounting.
type Remote interface {
	Lookup(ctx context.Context, hash uint64, pt param.Point) (m metrics.Metrics, err error, ok bool)
}

// SetRemote attaches (or, with nil, detaches) a remote cache tier
// consulted on every local miss before the local evaluator runs. Call it
// before the cache is shared across goroutines. Determinism note: for the
// deterministic evaluators the search stack uses, a remote answer is
// byte-identical to the local evaluation it replaces, so results are
// unchanged by where a point was resolved - only the cluster-level
// counters (maintained by the Remote implementation) differ.
func (c *Cache) SetRemote(r Remote) { c.remote = r }

// resolve answers one owned miss: the remote tier first (when attached
// and willing), the local evaluator otherwise. Every residual-miss path -
// single-point singleflight and batch fan-out alike - funnels through
// here, so the remote tier sees exactly the lookups that would otherwise
// spend a local evaluation.
func (c *Cache) resolve(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
	if c.remote != nil {
		if m, err, ok := c.remote.Lookup(ctx, c.hashFn(pt), pt); ok {
			return m, err
		}
	}
	return c.eval(ctx, pt)
}

// cacheShards is the number of lock stripes in a Cache. A modest power of
// two keeps the footprint small while making shard collisions rare at the
// parallelism levels the experiment harness runs at.
const cacheShards = 32

// cacheShardBits is log2(cacheShards); hash-keyed lookups stripe on the
// hash's top bits so the low bits stay free for the in-shard table index.
const cacheShardBits = 5

// KeyMode selects how a Cache identifies design points internally.
type KeyMode int

const (
	// KeyModeHash (the default) keys entries on 64-bit genome hashes
	// (param.Space.Hash64) over open-addressed shard tables, storing the
	// packed genome for collision verification on every hit. This is the
	// dispatch hot path: no string key is built anywhere on it.
	KeyModeHash KeyMode = iota
	// KeyModeString keys entries on canonical string keys (param.Space.Key)
	// over map shards - the legacy representation, kept selectable for
	// equivalence benchmarks and comparison tests. Persistence (Export/
	// Restore) always speaks string keys regardless of mode.
	KeyModeString
)

// Cache memoizes an Evaluator and counts distinct evaluations. It is safe
// for concurrent use: lookups stripe across cacheShards independently
// locked shards, and concurrent requests for the same not-yet-characterized
// point are deduplicated singleflight-style - exactly one goroutine runs
// the evaluator while the rest block on its result. A distinct design point
// therefore costs exactly one evaluator call no matter how many goroutines
// race for it, which is what the paper's synthesis-job accounting demands.
//
// Error memoization is deliberate: a permanent error marks the point
// infeasible and is cached like a result (a failed synthesis job spent its
// budget and will fail again), but a transient error (IsTransient) is never
// memoized - the owning lookup's entry is withdrawn so later lookups retry
// the evaluation, and concurrent waiters receive the error without the
// shard being poisoned for the rest of the run.
type Cache struct {
	space  *param.Space
	eval   ContextEvaluator
	rec    telemetry.Recorder
	tracer *trace.Tracer
	batch  BatchEvaluator
	remote Remote
	mode   KeyMode
	// hashFn computes a point's 64-bit genome hash. It defaults to the
	// space's Hash64 and is overridable from tests to force collisions.
	hashFn func(param.Point) uint64

	distinct   atomic.Int64
	total      atomic.Int64
	dedup      atomic.Int64
	transient  atomic.Int64
	collisions atomic.Int64
	shards     [cacheShards]cacheShard

	// scratch pools batch-resolution working state (see batchScratch), so
	// steady-state batches allocate nothing beyond their result slices.
	scratch sync.Pool
}

type cacheShard struct {
	mu sync.Mutex
	// entries holds KeyModeString state; table holds KeyModeHash state.
	// Exactly one is populated, per the cache's mode.
	entries map[string]*cacheEntry
	table   cacheTable
}

// cacheEntry is the singleflight slot for one design point. done is closed
// by the owning goroutine once m/err are valid; everyone else waits on it.
// In hash mode the entry carries its genome hash and the packed genome, the
// identity pair the open-addressed table verifies on every hit.
type cacheEntry struct {
	done   chan struct{}
	m      metrics.Metrics
	err    error
	hash   uint64
	genome []int32
}

// NewCache wraps eval for the given space.
func NewCache(space *param.Space, eval Evaluator) *Cache {
	return NewCacheContext(space, AdaptContext(eval))
}

// NewCacheContext wraps a context-aware evaluator for the given space. The
// context passed to Evaluate flows through the singleflight path into the
// evaluator, so per-evaluation deadlines and run-level cancellation reach
// the underlying tool run. The cache starts in KeyModeHash.
func NewCacheContext(space *param.Space, eval ContextEvaluator) *Cache {
	c := &Cache{space: space, eval: eval, rec: telemetry.Nop, hashFn: space.Hash64}
	return c
}

// SetKeyMode selects the cache's internal key representation. Call it
// before the cache is shared across goroutines and before any evaluation;
// switching modes discards nothing because it only chooses which (still
// empty) store the shards use.
func (c *Cache) SetKeyMode(mode KeyMode) {
	c.mode = mode
	if mode == KeyModeString {
		for i := range c.shards {
			if c.shards[i].entries == nil {
				c.shards[i].entries = make(map[string]*cacheEntry)
			}
		}
	}
}

// Mode returns the cache's key representation.
func (c *Cache) Mode() KeyMode { return c.mode }

// SetRecorder attaches a telemetry recorder that receives one cache event
// (hit, miss, or singleflight-dedup wait, with the shard index) per
// lookup. Call it before the cache is shared across goroutines; a nil
// recorder restores the free no-op default. Recording observes lookup
// outcomes only - counters and results are identical with any recorder.
func (c *Cache) SetRecorder(rec telemetry.Recorder) {
	c.rec = telemetry.OrNop(rec)
}

// SetTracer attaches a span tracer covering batch resolution phases
// (dedup, probe, fan-out, merge waits) and singleflight wait time. Call
// it before the cache is shared across goroutines; nil (the default)
// disables tracing at the cost of one nil check per phase. Tracing
// observes timing only - results and counters are identical with it on
// or off.
func (c *Cache) SetTracer(tr *trace.Tracer) { c.tracer = tr }

// noteCollisions folds a lookup's collision-probe count into the cache's
// counter and telemetry. Called outside the shard lock; n is almost
// always 0 (Hash64 is injective on packable spaces).
func (c *Cache) noteCollisions(n, shi int) {
	if n == 0 {
		return
	}
	c.collisions.Add(int64(n))
	if c.rec.Enabled() {
		for k := 0; k < n; k++ {
			c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheCollision, Shard: shi})
		}
	}
}

// shardFor stripes string keys across shards with FNV-1a.
func (c *Cache) shardFor(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % cacheShards)
}

// shardForHash stripes genome hashes on their top bits, leaving the low
// bits for the in-shard open-addressed table index.
func shardForHash(h uint64) int {
	return int(h >> (64 - cacheShardBits))
}

// Evaluate returns the (possibly cached) characterization of pt.
func (c *Cache) Evaluate(pt param.Point) (metrics.Metrics, error) {
	return c.EvaluateCtx(context.Background(), pt)
}

// EvaluateCtx is Evaluate under a context: cancellation interrupts both a
// singleflight wait and (through a context-aware evaluator) the evaluation
// itself.
func (c *Cache) EvaluateCtx(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
	if c.mode == KeyModeString {
		return c.EvaluateKeyedCtx(ctx, c.space.Key(pt), pt)
	}
	return c.EvaluateHashedCtx(ctx, c.hashFn(pt), pt)
}

// EvaluateKeyed is Evaluate for callers that already hold pt's canonical
// key (param.Space.Key), sparing a string-mode cache a key rebuild. In hash
// mode the key is ignored and the point is hashed.
func (c *Cache) EvaluateKeyed(key string, pt param.Point) (metrics.Metrics, error) {
	return c.EvaluateKeyedCtx(context.Background(), key, pt)
}

// waitShared resolves a lookup that found an existing entry: a completed
// entry is a plain hit, an in-flight one a singleflight-deduplicated wait.
func (c *Cache) waitShared(ctx context.Context, e *cacheEntry, shi int) (metrics.Metrics, error) {
	select {
	case <-e.done:
		c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheHit, Shard: shi})
	default:
		c.dedup.Add(1)
		c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheDedup, Shard: shi})
		sp := c.tracer.Start("cache.wait")
		select {
		case <-e.done:
			sp.End()
		case <-ctx.Done():
			sp.End()
			// A canceled waiter abandons the in-flight evaluation; the
			// owner still completes (or withdraws) the entry.
			return nil, MarkTransient(ctx.Err())
		}
	}
	return e.m, e.err
}

// runOwned executes the evaluation this goroutine owns and publishes the
// outcome. Transient errors are withdrawn through the mode-specific
// withdraw func before the done channel closes, so no later lookup inherits
// a poisoned entry; everything else is memoized and counted distinct.
func (c *Cache) runOwned(ctx context.Context, e *cacheEntry, pt param.Point, shi int, withdraw func()) (metrics.Metrics, error) {
	e.m, e.err = c.resolve(ctx, pt)
	if e.err != nil && IsTransient(e.err) {
		withdraw()
		c.transient.Add(1)
		c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheTransient, Shard: shi})
		close(e.done)
		return e.m, e.err
	}
	c.distinct.Add(1)
	close(e.done)
	return e.m, e.err
}

// EvaluateKeyedCtx is the string-keyed evaluation path: keyed lookup under
// a context. Transient evaluator errors (IsTransient) are delivered to the
// callers that observed them but never memoized; permanent errors and
// results are cached and counted as distinct evaluations. On a hash-mode
// cache the key is ignored and the lookup is re-dispatched by hash.
func (c *Cache) EvaluateKeyedCtx(ctx context.Context, key string, pt param.Point) (metrics.Metrics, error) {
	if c.mode != KeyModeString {
		return c.EvaluateHashedCtx(ctx, c.hashFn(pt), pt)
	}
	c.total.Add(1)
	shi := c.shardFor(key)
	sh := &c.shards[shi]
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		return c.waitShared(ctx, e, shi)
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.entries[key] = e
	sh.mu.Unlock()
	c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheMiss, Shard: shi})

	// This goroutine owns the evaluation; concurrent requesters for the
	// same key block on e.done instead of re-running the evaluator.
	return c.runOwned(ctx, e, pt, shi, func() {
		sh.mu.Lock()
		if sh.entries[key] == e {
			delete(sh.entries, key)
		}
		sh.mu.Unlock()
	})
}

// EvaluateHashed is EvaluateHashedCtx without a context.
func (c *Cache) EvaluateHashed(h uint64, pt param.Point) (metrics.Metrics, error) {
	return c.EvaluateHashedCtx(context.Background(), h, pt)
}

// EvaluateHashedCtx is the hash-keyed evaluation hot path for callers that
// already hold pt's genome hash (param.Space.Hash64): no string key is
// built, the shard table probes by uint64 compare, and a hit is confirmed
// against the stored packed genome before it is returned - a 64-bit
// collision (impossible on packable spaces) therefore degrades to an extra
// probe and a Stats().Collisions increment, never a wrong answer. Semantics
// per lookup are exactly EvaluateKeyedCtx's. On a string-mode cache the
// hash is discarded and the lookup re-dispatched by key.
func (c *Cache) EvaluateHashedCtx(ctx context.Context, h uint64, pt param.Point) (metrics.Metrics, error) {
	if c.mode != KeyModeHash {
		return c.EvaluateKeyedCtx(ctx, c.space.Key(pt), pt)
	}
	c.total.Add(1)
	shi := shardForHash(h)
	sh := &c.shards[shi]
	sh.mu.Lock()
	found, probes := sh.table.lookup(h, pt)
	if found != nil {
		sh.mu.Unlock()
		c.noteCollisions(probes, shi)
		return c.waitShared(ctx, found, shi)
	}
	e := &cacheEntry{done: make(chan struct{}), hash: h, genome: c.space.AppendPacked(nil, pt)}
	sh.table.insert(e)
	sh.mu.Unlock()
	c.noteCollisions(probes, shi)
	c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheMiss, Shard: shi})

	return c.runOwned(ctx, e, pt, shi, func() {
		sh.mu.Lock()
		sh.table.remove(e)
		sh.mu.Unlock()
	})
}

// DistinctEvaluations returns how many distinct design points have been
// evaluated - the paper's search-cost metric.
func (c *Cache) DistinctEvaluations() int {
	return int(c.distinct.Load())
}

// TotalQueries returns how many evaluations were requested, including cache
// hits.
func (c *Cache) TotalQueries() int {
	return int(c.total.Load())
}

// DedupedWaits returns how many lookups blocked on another goroutine's
// in-flight evaluation of the same point. Unlike Stats, this depends on
// scheduling and therefore varies across parallelism levels.
func (c *Cache) DedupedWaits() int {
	return int(c.dedup.Load())
}

// TransientFailures returns how many evaluations ended in a transient
// (withdrawn, never-memoized) error.
func (c *Cache) TransientFailures() int {
	return int(c.transient.Load())
}

// HashCollisions returns how many hash-mode probe steps passed an
// equal-hash entry holding a different genome - the verification fallback
// firing. Always 0 on packable spaces (where Hash64 is injective) and in
// string mode.
func (c *Cache) HashCollisions() int {
	return int(c.collisions.Load())
}

// CacheStats is one consistent accounting snapshot of a Cache. All fields
// are deterministic for a deterministic workload: Total counts lookups,
// Distinct counts spent evaluator calls (the paper's synthesis-job
// metric), and Hits = Total - Distinct counts lookups answered without an
// evaluator call of their own (including singleflight waits).
type CacheStats struct {
	Distinct int
	Total    int
	Hits     int
	// Transient counts evaluations that ended in a withdrawn transient
	// error (retryable infrastructure failures, never memoized). 0 on any
	// healthy run.
	Transient int
	// Collisions counts hash-mode lookups that probed past an equal-hash
	// entry holding a different genome before resolving. 0 whenever Hash64
	// is injective for the space (every packable space) and always 0 in
	// string mode; when nonzero, like DedupedWaits, the exact count can
	// depend on scheduling. Collisions are a performance event only -
	// genome verification keeps results exact.
	Collisions int
	// HitRate is Hits/Total, 0 when no lookups happened.
	HitRate float64
}

// Stats returns a single consistent snapshot of the cache counters,
// replacing racy back-to-back DistinctEvaluations/TotalQueries reads. The
// counters are re-read until the total is stable across the read (bounded
// retries), and hits are clamped so in-flight evaluations can never
// produce a negative count.
func (c *Cache) Stats() CacheStats {
	var total, distinct, transient int64
	for attempt := 0; ; attempt++ {
		total = c.total.Load()
		distinct = c.distinct.Load()
		transient = c.transient.Load()
		if c.total.Load() == total || attempt >= 8 {
			break
		}
	}
	hits := total - distinct - transient
	if hits < 0 {
		hits = 0
	}
	st := CacheStats{
		Distinct:   int(distinct),
		Total:      int(total),
		Hits:       int(hits),
		Transient:  int(transient),
		Collisions: int(c.collisions.Load()),
	}
	if total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st
}

// Reset clears the cache and counters. It must not race with in-flight
// Evaluate calls.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.entries != nil {
			sh.entries = make(map[string]*cacheEntry)
		}
		sh.table = cacheTable{}
		sh.mu.Unlock()
	}
	c.distinct.Store(0)
	c.total.Store(0)
	c.dedup.Store(0)
	c.transient.Store(0)
	c.collisions.Store(0)
}

// CacheEntrySnapshot is one memoized evaluation in a CacheSnapshot: the
// point's key plus either its metrics or the permanent error string it
// failed with.
type CacheEntrySnapshot struct {
	Key     string
	Metrics metrics.Metrics
	Err     string
}

// CacheSnapshot is a consistent export of a Cache's memoized contents and
// counters, the unit of state a run checkpoint persists. Entries are sorted
// by key, so two snapshots of identical caches are deeply equal.
type CacheSnapshot struct {
	Entries   []CacheEntrySnapshot
	Distinct  int64
	Total     int64
	Dedup     int64
	Transient int64
}

// Export snapshots the cache for checkpointing. Only completed entries are
// captured (in-flight singleflight evaluations are skipped); callers that
// need an exact snapshot - like the GA engine at a generation boundary -
// export when no evaluations are in flight. Metrics maps are shared, not
// copied: memoized metrics are immutable by contract.
//
// Snapshots always speak canonical string keys regardless of the cache's
// KeyMode, so the persisted checkpoint format is byte-identical across
// modes: a hash-mode cache reconstructs each entry's key from its stored
// packed genome (a cold path), and genome hashes - process-local
// identities, not stable serialized state - never reach disk.
func (c *Cache) Export() CacheSnapshot {
	snap := CacheSnapshot{
		Distinct:  c.distinct.Load(),
		Total:     c.total.Load(),
		Dedup:     c.dedup.Load(),
		Transient: c.transient.Load(),
	}
	capture := func(key string, e *cacheEntry) {
		select {
		case <-e.done:
		default:
			return // in flight; not yet a characterization
		}
		es := CacheEntrySnapshot{Key: key, Metrics: e.m}
		if e.err != nil {
			es.Err = e.err.Error()
		}
		snap.Entries = append(snap.Entries, es)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if c.mode == KeyModeString {
			for key, e := range sh.entries {
				capture(key, e)
			}
		} else {
			sh.table.each(func(e *cacheEntry) {
				capture(c.space.Key(c.space.UnpackPoint(e.genome)), e)
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Entries, func(a, b int) bool { return snap.Entries[a].Key < snap.Entries[b].Key })
	return snap
}

// Restore replaces the cache's contents and counters with a snapshot
// previously produced by Export - the resume half of checkpointing. Keys
// are validated against the cache's space (and, in hash mode, rebuilt into
// genome hashes and packed genomes). It must not race with in-flight
// Evaluate calls. The collision counter restarts at zero: collisions are a
// process-local probe statistic, not persisted state.
func (c *Cache) Restore(snap CacheSnapshot) error {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.entries != nil {
			sh.entries = make(map[string]*cacheEntry)
		}
		sh.table = cacheTable{}
		sh.mu.Unlock()
	}
	closed := make(chan struct{})
	close(closed)
	for _, es := range snap.Entries {
		pt, err := c.space.ParseKey(es.Key)
		if err != nil {
			return fmt.Errorf("dataset: restore: %w", err)
		}
		e := &cacheEntry{done: closed, m: es.Metrics}
		if es.Err != "" {
			e.err = errors.New(es.Err)
		}
		if c.mode == KeyModeString {
			sh := &c.shards[c.shardFor(es.Key)]
			sh.mu.Lock()
			sh.entries[es.Key] = e
			sh.mu.Unlock()
		} else {
			e.hash = c.hashFn(pt)
			e.genome = c.space.AppendPacked(nil, pt)
			sh := &c.shards[shardForHash(e.hash)]
			sh.mu.Lock()
			sh.table.insert(e)
			sh.mu.Unlock()
		}
	}
	c.distinct.Store(snap.Distinct)
	c.total.Store(snap.Total)
	c.dedup.Store(snap.Dedup)
	c.transient.Store(snap.Transient)
	c.collisions.Store(0)
	return nil
}

// Dataset is a fully enumerated characterization of a design space:
// feasible points with their metrics, plus the count of infeasible points.
type Dataset struct {
	space      *param.Space
	byKey      map[string]metrics.Metrics
	keys       []string // feasible keys in enumeration order
	infeasible int

	mu     sync.Mutex
	sorted map[string][]float64 // objective name -> sorted values (lazy)
}

// Build enumerates the whole space through eval. Infeasible points are
// counted but not stored. Intended for spaces up to a few hundred thousand
// points.
func Build(space *param.Space, eval Evaluator) (*Dataset, error) {
	return BuildParallel(space, eval, 1)
}

// maxParallelBuild bounds the per-point result buffer a parallel Build will
// allocate; larger spaces fall back to sequential streaming enumeration.
const maxParallelBuild = 1 << 24

// BuildParallel is Build with up to parallelism concurrent evaluator calls.
// Points are assembled in flat enumeration order afterwards, so the
// resulting dataset is identical to Build's at any parallelism level.
func BuildParallel(space *param.Space, eval Evaluator, parallelism int) (*Dataset, error) {
	d := &Dataset{
		space:  space,
		byKey:  make(map[string]metrics.Metrics),
		sorted: make(map[string][]float64),
	}
	if n64 := space.Cardinality(); parallelism > 1 && n64 > 1 && n64 <= maxParallelBuild {
		n := int(n64)
		type outcome struct {
			m   metrics.Metrics
			err error
		}
		results, _ := pool.Map(parallelism, n, func(i int) (outcome, error) {
			var o outcome
			o.m, o.err = eval(space.PointAt(uint64(i)))
			return o, nil
		})
		for i, o := range results {
			if o.err != nil {
				d.infeasible++
				continue
			}
			pt := space.PointAt(uint64(i))
			if o.m == nil {
				return nil, fmt.Errorf("dataset: evaluator returned nil metrics without error at %s", space.Describe(pt))
			}
			key := space.Key(pt)
			d.byKey[key] = o.m
			d.keys = append(d.keys, key)
		}
	} else {
		var firstErr error
		space.Enumerate(func(pt param.Point) bool {
			m, err := eval(pt)
			if err != nil {
				d.infeasible++
				return true
			}
			if m == nil {
				firstErr = fmt.Errorf("dataset: evaluator returned nil metrics without error at %s", space.Describe(pt))
				return false
			}
			key := space.Key(pt)
			d.byKey[key] = m
			d.keys = append(d.keys, key)
			return true
		})
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if len(d.byKey) == 0 {
		return nil, errors.New("dataset: no feasible points")
	}
	return d, nil
}

// Space returns the dataset's design space.
func (d *Dataset) Space() *param.Space { return d.space }

// Size returns the number of feasible characterized points.
func (d *Dataset) Size() int { return len(d.byKey) }

// Infeasible returns the number of infeasible points encountered.
func (d *Dataset) Infeasible() int { return d.infeasible }

// Lookup returns the stored metrics for pt.
func (d *Dataset) Lookup(pt param.Point) (metrics.Metrics, bool) {
	m, ok := d.byKey[d.space.Key(pt)]
	return m, ok
}

// Evaluator returns an Evaluator backed by the dataset (missing points are
// reported infeasible). This mirrors the paper's setup of running the GA
// against pre-characterized datasets.
func (d *Dataset) Evaluator() Evaluator {
	return func(pt param.Point) (metrics.Metrics, error) {
		if m, ok := d.Lookup(pt); ok {
			return m, nil
		}
		return nil, fmt.Errorf("dataset: point %s infeasible or unknown", d.space.Key(pt))
	}
}

// Each calls fn for every feasible point in enumeration order.
func (d *Dataset) Each(fn func(pt param.Point, m metrics.Metrics) bool) {
	for _, key := range d.keys {
		pt, err := d.space.ParseKey(key)
		if err != nil {
			panic(err) // keys were produced by this space
		}
		if !fn(pt, d.byKey[key]) {
			return
		}
	}
}

// values returns the dataset's objective values sorted from best to worst.
func (d *Dataset) values(obj metrics.Objective) []float64 {
	name := obj.String()
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.sorted[name]; ok {
		return v
	}
	vals := make([]float64, 0, len(d.byKey))
	for _, key := range d.keys {
		if v, ok := obj.Value(d.byKey[key]); ok {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	if obj.Direction() == metrics.Maximize {
		for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
	d.sorted[name] = vals
	return vals
}

// Best returns the best feasible point and objective value in the dataset.
func (d *Dataset) Best(obj metrics.Objective) (param.Point, float64) {
	bestVal := obj.Worst()
	var bestKey string
	for _, key := range d.keys {
		if v, ok := obj.Value(d.byKey[key]); ok && obj.Better(v, bestVal) {
			bestVal, bestKey = v, key
		}
	}
	if bestKey == "" {
		return nil, bestVal
	}
	pt, _ := d.space.ParseKey(bestKey)
	return pt, bestVal
}

// Rank returns how many feasible designs are strictly better than value
// under obj (0 means value ties the dataset optimum or beats it).
func (d *Dataset) Rank(obj metrics.Objective, value float64) int {
	vals := d.values(obj) // best..worst
	// Count prefix of vals strictly better than value.
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if obj.Better(vals[mid], value) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Score converts an objective value into the paper's "design solution
// score (in %)": 100% means no feasible design is strictly better; a value
// in the top 1% scores >= 99.
func (d *Dataset) Score(obj metrics.Objective, value float64) float64 {
	n := len(d.values(obj))
	if n == 0 {
		return 0
	}
	return 100 * (1 - float64(d.Rank(obj, value))/float64(n))
}

// InTopPercent reports whether value is within the best pct% of feasible
// designs (pct in (0,100]).
func (d *Dataset) InTopPercent(obj metrics.Objective, value, pct float64) bool {
	n := len(d.values(obj))
	if n == 0 {
		return false
	}
	limit := int(math.Ceil(float64(n) * pct / 100))
	return d.Rank(obj, value) < limit
}

// Quantile returns the objective value at quantile q of the best-to-worst
// ordering (q=0 is the optimum, q=1 the worst feasible design).
func (d *Dataset) Quantile(obj metrics.Objective, q float64) float64 {
	vals := d.values(obj)
	if len(vals) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	return vals[int(q*float64(len(vals)-1))]
}

// CountWithin returns how many feasible designs are at least as good as
// value under obj (including ties). Used for random-sampling expectations.
func (d *Dataset) CountWithin(obj metrics.Objective, value float64) int {
	vals := d.values(obj)
	lo, hi := 0, len(vals)
	for lo < hi {
		mid := (lo + hi) / 2
		// Better-or-equal to value <=> not strictly worse.
		if obj.Better(value, vals[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ExpectedRandomDraws returns the expected number of uniform random draws
// (without replacement, over the full space including infeasible points)
// needed to hit a design at least as good as value: (n+1)/(k+1).
func (d *Dataset) ExpectedRandomDraws(obj metrics.Objective, value float64) float64 {
	k := d.CountWithin(obj, value)
	n := d.Size() + d.Infeasible()
	return float64(n+1) / float64(k+1)
}

// ---- CSV persistence -------------------------------------------------------

// WriteCSV writes the dataset as CSV: a header of parameter names and metric
// names, then one row per feasible point (parameter string values followed
// by metric values).
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Collect the union of metric names, sorted, for stable columns.
	nameSet := map[string]bool{}
	for _, key := range d.keys {
		for name := range d.byKey[key] {
			nameSet[name] = true
		}
	}
	metricNames := make([]string, 0, len(nameSet))
	for name := range nameSet {
		metricNames = append(metricNames, name)
	}
	sort.Strings(metricNames)

	cols := append(append([]string{}, d.space.Names()...), metricNames...)
	if _, err := fmt.Fprintln(bw, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, key := range d.keys {
		pt, _ := d.space.ParseKey(key)
		row := make([]string, 0, len(cols))
		for i := 0; i < d.space.Len(); i++ {
			row = append(row, d.space.Param(i).StringValue(pt[i]))
		}
		m := d.byKey[key]
		for _, name := range metricNames {
			if v, ok := m[name]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(bw, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a dataset previously written by WriteCSV for the given
// space.
func ReadCSV(space *param.Space, r io.Reader) (*Dataset, error) {
	d := &Dataset{
		space:  space,
		byKey:  make(map[string]metrics.Metrics),
		sorted: make(map[string][]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, errors.New("dataset: empty CSV")
	}
	cols := strings.Split(sc.Text(), ",")
	np := space.Len()
	if len(cols) < np {
		return nil, fmt.Errorf("dataset: CSV has %d columns, space needs %d parameters", len(cols), np)
	}
	for i, name := range space.Names() {
		if cols[i] != name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, want parameter %q", i, cols[i], name)
		}
	}
	metricNames := cols[np:]
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), len(cols))
		}
		pt := make(param.Point, np)
		for i := 0; i < np; i++ {
			idx := space.Param(i).IndexOf(fields[i])
			if idx < 0 {
				return nil, fmt.Errorf("dataset: line %d: unknown value %q for %s", line, fields[i], space.Param(i).Name())
			}
			pt[i] = idx
		}
		m := make(metrics.Metrics, len(metricNames))
		for j, name := range metricNames {
			f := fields[np+j]
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad %s value %q: %v", line, name, f, err)
			}
			m[name] = v
		}
		key := space.Key(pt)
		if _, dup := d.byKey[key]; dup {
			return nil, fmt.Errorf("dataset: line %d: duplicate point %s", line, key)
		}
		d.byKey[key] = m
		d.keys = append(d.keys, key)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(d.byKey) == 0 {
		return nil, errors.New("dataset: CSV contains no points")
	}
	d.infeasible = int(space.Cardinality()) - len(d.byKey)
	return d, nil
}

// Sample characterizes n distinct uniformly drawn points of the space (the
// practical alternative to Build when the space is too large to enumerate -
// the situation the paper's IP users actually face). Infeasible draws count
// toward the budget, like failed synthesis jobs. Fails if fewer than two
// feasible points are found within the budget.
func Sample(space *param.Space, eval Evaluator, n int, seed int64) (*Dataset, error) {
	if n < 2 {
		return nil, fmt.Errorf("dataset: sample size %d < 2", n)
	}
	if space.Cardinality() < uint64(n) {
		return Build(space, eval)
	}
	d := &Dataset{
		space:  space,
		byKey:  make(map[string]metrics.Metrics),
		sorted: make(map[string][]float64),
	}
	r := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	for len(seen) < n {
		pt := space.Random(r)
		key := space.Key(pt)
		if seen[key] {
			continue
		}
		seen[key] = true
		m, err := eval(pt)
		if err != nil {
			d.infeasible++
			continue
		}
		d.byKey[key] = m
		d.keys = append(d.keys, key)
	}
	if len(d.byKey) < 2 {
		return nil, fmt.Errorf("dataset: only %d feasible points in a %d-point sample", len(d.byKey), n)
	}
	return d, nil
}
