package dataset

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// TestBatchEvaluateValues checks a batch with duplicates and an infeasible
// point returns exactly what point-at-a-time evaluation returns, with
// batch-amortized accounting that still matches the single path's.
func TestBatchEvaluateValues(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	pts := []param.Point{
		{1, 2}, {3, 4}, {1, 2}, {9, 9}, {3, 4}, {1, 2},
	}
	ms, errs, err := c.EvaluateBatchCtx(context.Background(), pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		want, wantErr := eval(pt)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Errorf("point %d: err %v, want %v", i, errs[i], wantErr)
		}
		if wantErr == nil && !reflect.DeepEqual(ms[i], want) {
			t.Errorf("point %d: metrics %v, want %v", i, ms[i], want)
		}
	}
	st := c.Stats()
	if st.Total != 6 || st.Distinct != 3 || st.Hits != 3 || st.Transient != 0 {
		t.Errorf("stats = %+v, want total 6, distinct 3, hits 3", st)
	}
}

// TestBatchMatchesSingleStats streams the same requests through the batch
// path and the single path on fresh caches: values and accounting must be
// identical.
func TestBatchMatchesSingleStats(t *testing.T) {
	s, eval := toySpace()
	var stream []param.Point
	for i := 0; i < 40; i++ {
		stream = append(stream, param.Point{i % 7, (i * 3) % 5})
	}

	single := NewCache(s, eval)
	var singleMs []metrics.Metrics
	var singleErrs []error
	for _, pt := range stream {
		m, err := single.EvaluateCtx(context.Background(), pt)
		singleMs = append(singleMs, m)
		singleErrs = append(singleErrs, err)
	}

	batch := NewCache(s, eval)
	var batchMs []metrics.Metrics
	var batchErrs []error
	for lo := 0; lo < len(stream); lo += 8 {
		ms, errs, err := batch.EvaluateBatchCtx(context.Background(), stream[lo:lo+8], 2)
		if err != nil {
			t.Fatal(err)
		}
		batchMs = append(batchMs, ms...)
		batchErrs = append(batchErrs, errs...)
	}

	if !reflect.DeepEqual(singleMs, batchMs) {
		t.Error("batch metrics differ from single-path metrics")
	}
	if !reflect.DeepEqual(singleErrs, batchErrs) {
		t.Error("batch errors differ from single-path errors")
	}
	if ss, bs := single.Stats(), batch.Stats(); ss != bs {
		t.Errorf("stats differ: single %+v, batch %+v", ss, bs)
	}
}

// TestBatchTransientWithdrawal: a transient failure is delivered to every
// duplicate request of the key, never memoized, and the next batch retries
// the evaluation.
func TestBatchTransientWithdrawal(t *testing.T) {
	s, _ := toySpace()
	var mu sync.Mutex
	attempts := map[string]int{}
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		k := s.Key(pt)
		mu.Lock()
		attempts[k]++
		n := attempts[k]
		mu.Unlock()
		if k == "1,1" && n == 1 {
			return nil, MarkTransient(errors.New("backend hiccup"))
		}
		return metrics.Metrics{"cost": 1}, nil
	}
	c := NewCacheContext(s, eval)

	pts := []param.Point{{1, 1}, {2, 2}, {1, 1}}
	_, errs, err := c.EvaluateBatchCtx(context.Background(), pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil || !IsTransient(errs[0]) {
		t.Fatalf("first request: err %v, want transient", errs[0])
	}
	if !IsTransient(errs[2]) {
		t.Errorf("duplicate request: err %v, want the same transient", errs[2])
	}
	if errs[1] != nil {
		t.Errorf("healthy point: err %v", errs[1])
	}
	st := c.Stats()
	if st.Distinct != 1 || st.Transient != 1 {
		t.Errorf("stats = %+v, want distinct 1, transient 1", st)
	}

	// The withdrawn entry must not be poisoned: a later batch re-runs the
	// evaluator and memoizes the success.
	_, errs, err = c.EvaluateBatchCtx(context.Background(), pts[:1], 1)
	if err != nil || errs[0] != nil {
		t.Fatalf("retry batch: %v / %v", err, errs[0])
	}
	if got := attempts["1,1"]; got != 2 {
		t.Errorf("attempts = %d, want 2 (withdrawn entry retried)", got)
	}
	if st := c.Stats(); st.Distinct != 2 || st.Transient != 1 {
		t.Errorf("stats after retry = %+v, want distinct 2, transient 1", st)
	}
}

// TestBatchBackendForwarding: with a batch backend set, residual misses
// arrive at the backend as one deduplicated batch in first-appearance
// order, and cached keys never reach it.
func TestBatchBackendForwarding(t *testing.T) {
	s, eval := toySpace()
	var calls [][]string
	c := NewCache(s, eval)
	c.SetBatchBackend(func(ctx context.Context, pts []param.Point) ([]metrics.Metrics, []error) {
		keys := make([]string, len(pts))
		ms := make([]metrics.Metrics, len(pts))
		errs := make([]error, len(pts))
		for i, pt := range pts {
			keys[i] = s.Key(pt)
			ms[i], errs[i] = eval(pt)
		}
		calls = append(calls, keys)
		return ms, errs
	})

	pts := []param.Point{{5, 1}, {6, 2}, {5, 1}, {7, 3}}
	if _, _, err := c.EvaluateBatchCtx(context.Background(), pts, 4); err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"5,1", "6,2", "7,3"}}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("backend calls = %v, want %v", calls, want)
	}

	// Second batch: only the genuinely new key reaches the backend.
	pts = []param.Point{{5, 1}, {8, 4}}
	if _, _, err := c.EvaluateBatchCtx(context.Background(), pts, 4); err != nil {
		t.Fatal(err)
	}
	want = append(want, []string{"8,4"})
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("backend calls = %v, want %v", calls, want)
	}
}

// TestBatchBackendMisbehaving: a backend returning the wrong number of
// results fails the sub-batch transiently without poisoning the cache.
func TestBatchBackendMisbehaving(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	broken := true
	c.SetBatchBackend(func(ctx context.Context, pts []param.Point) ([]metrics.Metrics, []error) {
		if broken {
			return nil, nil
		}
		ms := make([]metrics.Metrics, len(pts))
		errs := make([]error, len(pts))
		for i, pt := range pts {
			ms[i], errs[i] = eval(pt)
		}
		return ms, errs
	})

	pt := []param.Point{{2, 3}}
	_, errs, err := c.EvaluateBatchCtx(context.Background(), pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil || !IsTransient(errs[0]) {
		t.Fatalf("broken backend: err %v, want transient", errs[0])
	}

	broken = false
	_, errs, err = c.EvaluateBatchCtx(context.Background(), pt, 1)
	if err != nil || errs[0] != nil {
		t.Fatalf("after repair: %v / %v (entry poisoned?)", err, errs[0])
	}
}

// TestBatchCanceled: a batch under a canceled context reports the batch as
// incomplete and marks unevaluated items transient.
func TestBatchCanceled(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := []param.Point{{1, 1}, {2, 2}}
	_, errs, err := c.EvaluateBatchCtx(ctx, pts, 2)
	if err == nil {
		t.Fatal("batch error nil under canceled context")
	}
	for i, e := range errs {
		if e == nil || !IsTransient(e) {
			t.Errorf("item %d: err %v, want transient", i, e)
		}
	}
}

// TestBatchMergesInFlight: a batch requesting a key another goroutine is
// already evaluating waits for that result instead of re-dispatching, and
// a canceled wait abandons it transiently while the owner still completes.
func TestBatchMergesInFlight(t *testing.T) {
	s, _ := toySpace()
	started := make(chan struct{})
	release := make(chan struct{})
	var evals int
	var mu sync.Mutex
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		mu.Lock()
		evals++
		mu.Unlock()
		close(started)
		<-release
		return metrics.Metrics{"cost": 42}, nil
	}
	c := NewCacheContext(s, eval)

	// Owner: a single-point lookup holding the singleflight slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.EvaluateCtx(context.Background(), param.Point{4, 4}); err != nil {
			t.Errorf("owner: %v", err)
		}
	}()
	<-started

	// A batch for the same key under a cancelable context: first try is
	// canceled mid-wait, second try (after release) merges with the result.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, errs, err := c.EvaluateBatchCtx(ctx, []param.Point{{4, 4}}, 1)
		if err == nil || !IsTransient(errs[0]) {
			t.Errorf("canceled merge: err %v / %v, want transient", err, errs[0])
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done

	close(release)
	wg.Wait()
	ms, errs, err := c.EvaluateBatchCtx(context.Background(), []param.Point{{4, 4}}, 1)
	if err != nil || errs[0] != nil {
		t.Fatalf("merged result: %v / %v", err, errs[0])
	}
	if ms[0]["cost"] != 42 {
		t.Errorf("merged metrics = %v", ms[0])
	}
	if evals != 1 {
		t.Errorf("evaluator ran %d times, want 1 (batch must merge, not re-dispatch)", evals)
	}
}

// TestBatchConcurrentBatches: concurrent batches over overlapping keys on
// one cache evaluate each key exactly once between them.
func TestBatchConcurrentBatches(t *testing.T) {
	s, _ := toySpace()
	var mu sync.Mutex
	evals := map[string]int{}
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		mu.Lock()
		evals[s.Key(pt)]++
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return metrics.Metrics{"cost": float64(pt[0])}, nil
	}
	c := NewCacheContext(s, eval)

	mk := func(off int) []param.Point {
		pts := make([]param.Point, 8)
		for i := range pts {
			pts[i] = param.Point{(off + i) % 9, (off + i) % 5}
		}
		return pts
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			ms, errs, err := c.EvaluateBatchCtx(context.Background(), mk(off), 2)
			if err != nil {
				t.Errorf("batch %d: %v", off, err)
				return
			}
			for i, pt := range mk(off) {
				if errs[i] != nil || ms[i]["cost"] != float64(pt[0]) {
					t.Errorf("batch %d item %d: %v / %v", off, i, ms[i], errs[i])
				}
			}
		}(g * 4)
	}
	wg.Wait()
	for k, n := range evals {
		if n != 1 {
			t.Errorf("key %s evaluated %d times, want 1", k, n)
		}
	}
}

// TestBatchOf: the adapter fans a batch over the pool and returns
// index-aligned results; under a canceled context every unstarted item
// comes back transient.
func TestBatchOf(t *testing.T) {
	s, evalPt := toySpace()
	be := BatchOf(AdaptContext(evalPt), 3)
	pts := []param.Point{{1, 2}, {3, 4}, {5, 6}, {9, 9}}
	ms, errs := be(context.Background(), pts)
	for i, pt := range pts {
		want, wantErr := evalPt(pt)
		if (errs[i] == nil) != (wantErr == nil) || (wantErr == nil && !reflect.DeepEqual(ms[i], want)) {
			t.Errorf("item %d: %v / %v, want %v / %v", i, ms[i], errs[i], want, wantErr)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs = be(ctx, pts)
	for i, e := range errs {
		if e == nil || !IsTransient(e) {
			t.Errorf("canceled item %d: err %v, want transient", i, e)
		}
	}
	_ = s
}

// TestBatchShapeErrors: the keyed entry point rejects mismatched slices
// and handles the empty batch.
func TestBatchShapeErrors(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	if _, _, err := c.EvaluateBatchKeyedCtx(context.Background(), []string{"1,1"}, nil, 1); err == nil {
		t.Error("mismatched keys/points accepted")
	}
	ms, errs, err := c.EvaluateBatchCtx(context.Background(), nil, 1)
	if err != nil || len(ms) != 0 || len(errs) != 0 {
		t.Errorf("empty batch: %v %v %v", ms, errs, err)
	}
	if st := c.Stats(); st.Total != 0 {
		t.Errorf("empty batch counted: %+v", st)
	}
}

// TestBatchLargeUsesMapDedup pushes a batch past the linear-dedup
// threshold so the map fallback path is exercised too.
func TestBatchLargeUsesMapDedup(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	n := linearBatchDedup*2 + 5
	pts := make([]param.Point, n)
	for i := range pts {
		pts[i] = param.Point{i % 8, (i / 8) % 5}
	}
	ms, errs, err := c.EvaluateBatchCtx(context.Background(), pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		want, _ := eval(pt)
		if errs[i] != nil || !reflect.DeepEqual(ms[i], want) {
			t.Errorf("item %d: %v / %v, want %v", i, ms[i], errs[i], want)
		}
	}
	if st := c.Stats(); st.Total != n || st.Distinct != 40 || st.Hits != n-40 {
		t.Errorf("stats = %+v, want total %d, distinct 40", st, n)
	}
}
