package dataset

import (
	"sync"
	"testing"
	"time"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

func statSpace(t *testing.T) (*param.Space, Evaluator) {
	t.Helper()
	s := param.MustSpace(param.Int("x", 0, 9, 1))
	eval := func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"cost": float64(pt[0])}, nil
	}
	return s, eval
}

// TestCacheStatsSnapshot checks Stats returns one coherent accounting:
// distinct + hits = total, with the rate derived from the same reads.
func TestCacheStatsSnapshot(t *testing.T) {
	s, eval := statSpace(t)
	c := NewCache(s, eval)
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("fresh cache stats = %+v, want zero", st)
	}
	pts := []int{0, 1, 2, 1, 0, 0, 3, 2} // 4 distinct, 8 queries, 4 hits
	for _, x := range pts {
		if _, err := c.Evaluate(param.Point{x}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	want := CacheStats{Distinct: 4, Total: 8, Hits: 4, HitRate: 0.5}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if st.Distinct != c.DistinctEvaluations() || st.Total != c.TotalQueries() {
		t.Error("Stats disagrees with the individual accessors at rest")
	}
	c.Reset()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("stats after Reset = %+v, want zero", st)
	}
}

// TestCacheTelemetryEvents checks each lookup reports exactly one hit or
// miss event (dedup requires contention, covered below) carrying a valid
// shard index.
func TestCacheTelemetryEvents(t *testing.T) {
	s, eval := statSpace(t)
	c := NewCache(s, eval)
	col := telemetry.NewCollector(nil)
	c.SetRecorder(col)
	for _, x := range []int{5, 5, 6, 5} {
		if _, err := c.Evaluate(param.Point{x}); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Registry().Snapshot()
	if got := snap.Counters[telemetry.MetricCacheMisses]; got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := snap.Counters[telemetry.MetricCacheHits]; got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	// A nil recorder must restore the free default, not panic.
	c.SetRecorder(nil)
	if _, err := c.Evaluate(param.Point{7}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheDedupTelemetry provokes a deterministic singleflight wait: the
// owner blocks inside the evaluator while a second goroutine looks the
// same point up, records its dedup event, and blocks on the owner's
// result. The evaluator is released only once the wait has been observed.
func TestCacheDedupTelemetry(t *testing.T) {
	s := param.MustSpace(param.Int("x", 0, 9, 1))
	inEval := make(chan struct{})
	release := make(chan struct{})
	eval := func(pt param.Point) (metrics.Metrics, error) {
		close(inEval)
		<-release
		return metrics.Metrics{"cost": 1}, nil
	}
	c := NewCache(s, eval)
	col := telemetry.NewCollector(nil)
	c.SetRecorder(col)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // owner
		defer wg.Done()
		if _, err := c.Evaluate(param.Point{4}); err != nil {
			t.Error(err)
		}
	}()
	<-inEval
	go func() { // waiter: finds the in-flight entry, records a dedup wait
		defer wg.Done()
		if _, err := c.Evaluate(param.Point{4}); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.DedupedWaits() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dedup wait never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	snap := col.Registry().Snapshot()
	if got := snap.Counters[telemetry.MetricCacheMisses]; got != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", got)
	}
	if got := snap.Counters[telemetry.MetricCacheDedups]; got != 1 {
		t.Errorf("dedup events = %d, want 1", got)
	}
	if got := snap.Counters[telemetry.MetricCacheHits]; got != 0 {
		t.Errorf("hits = %d, want 0", got)
	}
	st := c.Stats()
	if st.Distinct != 1 || st.Total != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want {1 2 1 0.5}", st)
	}
}
