package dataset

import (
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// BenchmarkBuild measures full-space dataset construction on the toy space.
func BenchmarkBuild(b *testing.B) {
	b.ReportAllocs()
	s, eval := toySpace()
	for i := 0; i < b.N; i++ {
		if _, err := Build(s, eval); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit measures a warm cache lookup - the cost of re-visiting
// an already-synthesized design.
func BenchmarkCacheHit(b *testing.B) {
	b.ReportAllocs()
	s, eval := toySpace()
	c := NewCache(s, eval)
	pt := param.Point{3, 4}
	if _, err := c.Evaluate(pt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRank measures objective rank queries against a built dataset.
func BenchmarkRank(b *testing.B) {
	b.ReportAllocs()
	s, eval := toySpace()
	d, err := Build(s, eval)
	if err != nil {
		b.Fatal(err)
	}
	obj := metrics.MinimizeMetric("cost")
	d.Rank(obj, 50) // warm the sorted cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Rank(obj, float64(i%99))
	}
}
