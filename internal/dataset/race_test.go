//go:build race

package dataset

// raceEnabled reports whether the race detector is active. Its
// instrumentation adds allocations of its own, so allocation-count
// assertions only hold in non-race builds.
const raceEnabled = true
