package dataset_test

import (
	"fmt"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// The caching evaluator implements the paper's cost metric: re-visiting an
// already-characterized design costs nothing; only distinct designs count
// as synthesis jobs.
func ExampleCache() {
	space := param.MustSpace(param.Int("x", 0, 9, 1))
	calls := 0
	cache := dataset.NewCache(space, func(pt param.Point) (metrics.Metrics, error) {
		calls++
		return metrics.Metrics{metrics.LUTs: float64(100 * (pt[0] + 1))}, nil
	})
	pt := param.Point{3}
	for i := 0; i < 5; i++ {
		cache.Evaluate(pt)
	}
	cache.Evaluate(param.Point{7})
	fmt.Println("queries:", cache.TotalQueries())
	fmt.Println("synthesis jobs:", cache.DistinctEvaluations())
	fmt.Println("evaluator calls:", calls)
	// Output:
	// queries: 6
	// synthesis jobs: 2
	// evaluator calls: 2
}

// Datasets answer the paper's quality-of-results questions: ranks,
// percentile scores, and random-sampling expectations.
func ExampleDataset() {
	space := param.MustSpace(param.Int("x", 0, 99, 1))
	ds, err := dataset.Build(space, func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{metrics.LUTs: float64(500 + 10*pt[0])}, nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	obj := metrics.MinimizeMetric(metrics.LUTs)
	_, best := ds.Best(obj)
	fmt.Println("optimum:", best)
	fmt.Println("score of 550 LUTs:", ds.Score(obj, 550), "%")
	fmt.Println("550 in top 10%:", ds.InTopPercent(obj, 550, 10))
	// Output:
	// optimum: 500
	// score of 550 LUTs: 95 %
	// 550 in top 10%: true
}
