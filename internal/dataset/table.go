package dataset

import (
	"nautilus/internal/param"
)

// tombstone marks a slot whose entry was withdrawn (transient failure).
// Probes walk through tombstones; inserts reuse them.
var tombstone = &cacheEntry{}

// cacheTable is one shard's open-addressed hash table: genome-hash keyed,
// linear probing over a power-of-two slot array. It replaces the string-
// keyed Go map on the hot path - a lookup is a handful of uint64 compares
// with no per-key hashing or string allocation. True identity is the
// (hash, packed genome) pair: a probe matches only when both agree, so a
// 64-bit hash collision (impossible on packable spaces, astronomically rare
// otherwise) degrades to an extra probe step, never a wrong answer. All
// methods require the owning shard's lock.
type cacheTable struct {
	slots []*cacheEntry // power-of-two length; nil = empty
	live  int           // occupied, non-tombstone slots
	used  int           // occupied slots including tombstones
}

// tableMinSlots is the initial table size; shards grow by doubling once
// three quarters full (counting tombstones, which rehashing clears).
const tableMinSlots = 64

// lookup returns the entry whose hash and genome both match (or nil) plus
// the number of collision probes - probe steps that passed an equal-hash
// entry holding a different genome. The caller folds that count into the
// cache's collision accounting and telemetry outside the shard lock.
func (t *cacheTable) lookup(h uint64, pt param.Point) (*cacheEntry, int) {
	if len(t.slots) == 0 {
		return nil, 0
	}
	collisions := 0
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := t.slots[i]
		if e == nil {
			return nil, collisions
		}
		if e == tombstone || e.hash != h {
			continue
		}
		if param.PackedEqual(e.genome, pt) {
			return e, collisions
		}
		collisions++
	}
}

// insert places a new entry, growing the table as needed. The caller has
// already established (under the same lock) that no matching entry exists.
func (t *cacheTable) insert(e *cacheEntry) {
	if (t.used+1)*4 >= len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := e.hash & mask; ; i = (i + 1) & mask {
		if s := t.slots[i]; s == nil || s == tombstone {
			if s == nil {
				t.used++
			}
			t.slots[i] = e
			t.live++
			return
		}
	}
}

// remove withdraws exactly the given entry (pointer identity), leaving a
// tombstone so later probe chains stay intact.
func (t *cacheTable) remove(e *cacheEntry) {
	if len(t.slots) == 0 {
		return
	}
	mask := uint64(len(t.slots) - 1)
	for i := e.hash & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s == nil {
			return // not present (already withdrawn)
		}
		if s == e {
			t.slots[i] = tombstone
			t.live--
			return
		}
	}
}

// grow rehashes live entries into a table sized for the next doubling,
// dropping tombstones.
func (t *cacheTable) grow() {
	n := tableMinSlots
	for n <= t.live*2 {
		n *= 2
	}
	if n < len(t.slots) {
		n = len(t.slots) // never shrink under an active probe population
	}
	old := t.slots
	t.slots = make([]*cacheEntry, n)
	t.used, t.live = 0, 0
	mask := uint64(n - 1)
	for _, e := range old {
		if e == nil || e == tombstone {
			continue
		}
		for i := e.hash & mask; ; i = (i + 1) & mask {
			if t.slots[i] == nil {
				t.slots[i] = e
				t.used++
				t.live++
				break
			}
		}
	}
}

// each calls fn for every live entry.
func (t *cacheTable) each(fn func(*cacheEntry)) {
	for _, e := range t.slots {
		if e != nil && e != tombstone {
			fn(e)
		}
	}
}
