package dataset

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// flakyEval fails each point's first `failures` evaluations with a
// transient error, then succeeds.
func flakyEval(s *param.Space, failures int) (ContextEvaluator, *atomic.Int64) {
	var calls atomic.Int64
	var mu sync.Mutex
	seen := map[string]int{}
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		key := s.Key(pt)
		mu.Lock()
		seen[key]++
		n := seen[key]
		mu.Unlock()
		if n <= failures {
			return nil, MarkTransient(fmt.Errorf("flaky call %d at %s", n, key))
		}
		return metrics.Metrics{"cost": float64(pt[0])}, nil
	}
	return eval, &calls
}

// TestCacheTransientNotMemoized is the shard-poisoning regression test: a
// transient failure must be returned to the caller but never stored, so
// the next request re-runs the evaluator instead of replaying the error
// forever.
func TestCacheTransientNotMemoized(t *testing.T) {
	s, _ := toySpace()
	eval, calls := flakyEval(s, 1)
	c := NewCacheContext(s, eval)
	pt := param.Point{1, 2}

	_, err := c.Evaluate(pt)
	if !IsTransient(err) {
		t.Fatalf("first call: got %v, want transient error", err)
	}
	if got := c.DistinctEvaluations(); got != 0 {
		t.Errorf("distinct after transient = %d, want 0 (no synthesis result was produced)", got)
	}
	if got := c.TransientFailures(); got != 1 {
		t.Errorf("transient counter = %d, want 1", got)
	}

	m, err := c.Evaluate(pt)
	if err != nil {
		t.Fatalf("second call should re-run the evaluator and succeed: %v", err)
	}
	if m["cost"] != 1 {
		t.Errorf("cost = %v, want 1", m["cost"])
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("evaluator calls = %d, want 2 (transient retried, success memoized)", got)
	}
	// The success is memoized normally.
	if _, err := c.Evaluate(pt); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("evaluator calls after hit = %d, want 2", got)
	}
	if got := c.DistinctEvaluations(); got != 1 {
		t.Errorf("distinct = %d, want 1", got)
	}
}

// TestCacheTransientWaitersGetError proves deduped waiters blocked on a
// transiently failing owner all receive the error (no deadlock, no stale
// entry), and a fresh request afterwards re-evaluates.
func TestCacheTransientWaitersGetError(t *testing.T) {
	s, _ := toySpace()
	release := make(chan struct{})
	var calls atomic.Int64
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		if calls.Add(1) == 1 {
			<-release
			return nil, MarkTransient(errors.New("tool crashed"))
		}
		return metrics.Metrics{"cost": 7}, nil
	}
	c := NewCacheContext(s, eval)
	pt := param.Point{3, 4}

	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Evaluate(pt)
		}(i)
	}
	for c.TotalQueries() < waiters { // all queries in flight or resolved
	}
	close(release)
	wg.Wait()

	failed := 0
	for _, err := range errs {
		if err != nil {
			if !IsTransient(err) {
				t.Errorf("waiter got non-transient error: %v", err)
			}
			failed++
		}
	}
	// Exactly one owner ran and failed; every goroutine that joined that
	// singleflight round shares its error. Goroutines arriving after the
	// withdrawal re-evaluate and succeed.
	if failed == 0 {
		t.Error("no waiter observed the transient failure")
	}
	if m, err := c.Evaluate(pt); err != nil || m["cost"] != 7 {
		t.Errorf("after transient: m=%v err=%v, want cost=7", m, err)
	}
}

// TestCacheContextCancelIsTransient: a canceled context surfaces as a
// transient error and leaves no cache entry behind.
func TestCacheContextCancelIsTransient(t *testing.T) {
	s, eval := toySpace()
	c := NewCacheContext(s, AdaptContext(eval))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pt := param.Point{5, 6}
	if _, err := c.EvaluateCtx(ctx, pt); !IsTransient(err) {
		t.Fatalf("canceled eval: got %v, want transient", err)
	}
	if got := c.DistinctEvaluations(); got != 0 {
		t.Errorf("distinct = %d, want 0", got)
	}
	// A live context then evaluates normally.
	if _, err := c.EvaluateCtx(context.Background(), pt); err != nil {
		t.Fatal(err)
	}
}

// TestCacheExportRestoreRoundTrip: a restored cache serves the exported
// results and counters without calling the evaluator again.
func TestCacheExportRestoreRoundTrip(t *testing.T) {
	s, eval := toySpace()
	var calls atomic.Int64
	counting := func(pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		return eval(pt)
	}
	c := NewCache(s, counting)
	pts := []param.Point{{0, 0}, {1, 2}, {9, 9}} // includes the infeasible corner
	want := make(map[string]metrics.Metrics)
	for _, pt := range pts {
		m, _ := c.Evaluate(pt)
		c.Evaluate(pt) // dedup hit
		want[s.Key(pt)] = m
	}
	snap := c.Export()
	if len(snap.Entries) != 3 {
		t.Fatalf("exported %d entries, want 3", len(snap.Entries))
	}

	c2 := NewCache(s, counting)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	before := calls.Load()
	for _, pt := range pts {
		m, err := c2.Evaluate(pt)
		if s.Key(pt) == s.Key(param.Point{9, 9}) {
			if err == nil {
				t.Error("restored infeasible point did not return its error")
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if w := want[s.Key(pt)]; w["cost"] != m["cost"] {
			t.Errorf("restored cost = %v, want %v", m["cost"], w["cost"])
		}
	}
	if calls.Load() != before {
		t.Errorf("restored cache called the evaluator %d times, want 0", calls.Load()-before)
	}
	st, st2 := c.Stats(), c2.Stats()
	if st2.Distinct != st.Distinct || st2.Transient != st.Transient ||
		st2.Total != st.Total+3 || st2.Hits != st.Hits+3 { // +3 verification queries, all hits
		t.Errorf("restored stats %+v, source %+v", st2, st)
	}
}

// TestCacheRestoreRejectsBadKeys: a snapshot with a foreign key fails
// cleanly instead of corrupting the cache.
func TestCacheRestoreRejectsBadKeys(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	snap := CacheSnapshot{Entries: []CacheEntrySnapshot{{Key: "no-such-param=1"}}}
	if err := c.Restore(snap); err == nil {
		t.Fatal("Restore accepted an invalid key")
	}
}
