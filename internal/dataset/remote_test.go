package dataset

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// fakeRemote answers lookups for a configured subset of hashes and counts
// how often it was consulted.
type fakeRemote struct {
	mu      sync.Mutex
	answers map[uint64]metrics.Metrics
	errs    map[uint64]error
	calls   atomic.Int64
	hits    atomic.Int64
}

func (f *fakeRemote) Lookup(_ context.Context, h uint64, _ param.Point) (metrics.Metrics, error, bool) {
	f.calls.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, ok := f.errs[h]; ok {
		f.hits.Add(1)
		return nil, err, true
	}
	if m, ok := f.answers[h]; ok {
		f.hits.Add(1)
		return m, nil, true
	}
	return nil, nil, false
}

// TestRemoteTierAnswersMisses proves the remote tier is consulted exactly
// once per distinct point (under the singleflight slot), that its answers
// are memoized like local ones, and that unresolved lookups fall through
// to the local evaluator.
func TestRemoteTierAnswersMisses(t *testing.T) {
	space, _ := toySpace()
	var localCalls atomic.Int64
	local := func(pt param.Point) (metrics.Metrics, error) {
		localCalls.Add(1)
		return metrics.Metrics{"v": float64(pt[0])}, nil
	}
	c := NewCache(space, local)

	remotePt := param.Point{1, 1}
	localPt := param.Point{0, 1}
	rem := &fakeRemote{answers: map[uint64]metrics.Metrics{
		space.Hash64(remotePt): {"v": 42},
	}}
	c.SetRemote(rem)

	// Remote-owned point: answered by the tier, local evaluator untouched.
	m, err := c.Evaluate(remotePt)
	if err != nil || m["v"] != 42 {
		t.Fatalf("remote answer: m=%v err=%v", m, err)
	}
	if localCalls.Load() != 0 {
		t.Fatalf("local evaluator ran %d times for a remote-owned point", localCalls.Load())
	}
	// Second lookup is a plain cache hit: the tier is not consulted again.
	calls := rem.calls.Load()
	if _, err := c.Evaluate(remotePt); err != nil {
		t.Fatal(err)
	}
	if rem.calls.Load() != calls {
		t.Fatalf("remote tier re-consulted on a cache hit")
	}

	// Locally-owned point: the tier declines, the local evaluator pays.
	if m, err = c.Evaluate(localPt); err != nil || m["v"] != 0 {
		t.Fatalf("local answer: m=%v err=%v", m, err)
	}
	if localCalls.Load() != 1 {
		t.Fatalf("local evaluator ran %d times, want 1", localCalls.Load())
	}
	if got := c.DistinctEvaluations(); got != 2 {
		t.Fatalf("distinct = %d, want 2 (remote answers count like local ones)", got)
	}
}

// TestRemoteTierBatchPath proves batch fan-out misses consult the tier too,
// and that a permanent remote error is memoized.
func TestRemoteTierBatchPath(t *testing.T) {
	space, _ := toySpace()
	var localCalls atomic.Int64
	c := NewCache(space, func(pt param.Point) (metrics.Metrics, error) {
		localCalls.Add(1)
		return metrics.Metrics{"v": float64(pt[0])}, nil
	})
	badPt := param.Point{1, 0}
	goodPt := param.Point{0, 0}
	rem := &fakeRemote{
		answers: map[uint64]metrics.Metrics{space.Hash64(goodPt): {"v": 7}},
		errs:    map[uint64]error{space.Hash64(badPt): errors.New("infeasible on owner")},
	}
	c.SetRemote(rem)

	pts := []param.Point{goodPt, badPt, {2, 2}}
	ms, errs, err := c.EvaluateBatchCtx(context.Background(), pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0]["v"] != 7 || errs[0] != nil {
		t.Fatalf("batch remote answer: m=%v err=%v", ms[0], errs[0])
	}
	if errs[1] == nil {
		t.Fatalf("remote permanent error not surfaced")
	}
	if errs[2] != nil || ms[2]["v"] != 2 {
		t.Fatalf("fall-through point: m=%v err=%v", ms[2], errs[2])
	}
	if localCalls.Load() != 1 {
		t.Fatalf("local evaluator ran %d times, want 1", localCalls.Load())
	}
	// The memoized remote error answers without another tier consult.
	calls := rem.calls.Load()
	if _, err := c.Evaluate(badPt); err == nil {
		t.Fatal("memoized permanent error lost")
	}
	if rem.calls.Load() != calls {
		t.Fatal("remote tier re-consulted for a memoized error")
	}
}

// TestRemoteTierStringMode proves the tier rides genome hashes even when
// the cache itself keys on canonical strings.
func TestRemoteTierStringMode(t *testing.T) {
	space, _ := toySpace()
	c := NewCache(space, func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"v": 1}, nil
	})
	c.SetKeyMode(KeyModeString)
	pt := param.Point{3, 1}
	rem := &fakeRemote{answers: map[uint64]metrics.Metrics{space.Hash64(pt): {"v": 9}}}
	c.SetRemote(rem)
	m, err := c.Evaluate(pt)
	if err != nil || m["v"] != 9 {
		t.Fatalf("string-mode remote answer: m=%v err=%v", m, err)
	}
	if rem.hits.Load() != 1 {
		t.Fatalf("remote hits = %d, want 1", rem.hits.Load())
	}
}
