package dataset

import (
	"context"
	"testing"

	"nautilus/internal/param"
)

// benchmarkCache builds a warm cache with a batch of distinct points
// already memoized - the steady state of a converged GA where nearly every
// dispatch is a cache hit.
func benchmarkCache(b *testing.B, n int) (*Cache, []param.Point) {
	b.Helper()
	space, eval := toySpace()
	c := NewCache(space, eval)
	pts := make([]param.Point, n)
	for i := range pts {
		// Stride modulo cardinality-1 keeps clear of the infeasible corner.
		pts[i] = space.PointAt(uint64(i*37) % (space.Cardinality() - 1))
	}
	if _, _, err := c.EvaluateBatchCtx(context.Background(), pts, 1); err != nil {
		b.Fatal(err)
	}
	return c, pts
}

func BenchmarkDispatchSingleWarm(b *testing.B) {
	c, pts := benchmarkCache(b, 32)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pt := range pts {
			if _, err := c.EvaluateCtx(ctx, pt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDispatchBatchWarm(b *testing.B) {
	c, pts := benchmarkCache(b, 32)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.EvaluateBatchCtx(ctx, pts, 1); err != nil {
			b.Fatal(err)
		}
	}
}
