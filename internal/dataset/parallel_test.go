package dataset

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// TestCacheSingleflight is the regression test for the duplicate-concurrent-
// evaluation gap: with many goroutines racing to evaluate the same point,
// the raw evaluator must run exactly once.
func TestCacheSingleflight(t *testing.T) {
	s, raw := toySpace()
	var calls atomic.Int64
	start := make(chan struct{})
	c := NewCache(s, func(pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		<-start // hold the evaluation open until all requesters have queued
		return raw(pt)
	})

	const goroutines = 16
	pt := param.Point{4, 2}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Evaluate(pt); err != nil {
				t.Error(err)
			}
		}()
	}
	// Every requester bumps the total counter before either owning the
	// evaluation or blocking on it, so this poll guarantees overlap.
	for c.TotalQueries() < goroutines {
		runtime.Gosched()
	}
	close(start)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("raw evaluator ran %d times for one design point, want 1", got)
	}
	if got := c.DistinctEvaluations(); got != 1 {
		t.Errorf("distinct = %d, want 1", got)
	}
	if got := c.TotalQueries(); got != goroutines {
		t.Errorf("total = %d, want %d", got, goroutines)
	}
}

// TestCacheConcurrentStress hammers the sharded cache from many goroutines
// (run under -race) and checks the paper's cost invariant: raw evaluator
// calls == distinct design points, regardless of interleaving.
func TestCacheConcurrentStress(t *testing.T) {
	s, raw := toySpace()
	var calls atomic.Int64
	c := NewCache(s, func(pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		return raw(pt)
	})

	const goroutines = 16
	const perG = 500
	unique := make(map[string]bool)
	points := make([][]param.Point, goroutines)
	r := rand.New(rand.NewSource(7))
	for g := range points {
		points[g] = make([]param.Point, perG)
		for i := range points[g] {
			pt := s.Random(r)
			points[g][i] = pt
			unique[s.Key(pt)] = true
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(pts []param.Point) {
			defer wg.Done()
			for _, pt := range pts {
				c.Evaluate(pt) // the infeasible corner errors; that's fine
			}
		}(points[g])
	}
	wg.Wait()

	if got, want := c.DistinctEvaluations(), len(unique); got != want {
		t.Errorf("distinct = %d, want %d unique points", got, want)
	}
	if got := calls.Load(); got != int64(c.DistinctEvaluations()) {
		t.Errorf("raw evaluator calls = %d, want %d (one per distinct point)", got, c.DistinctEvaluations())
	}
	if got := c.TotalQueries(); got != goroutines*perG {
		t.Errorf("total = %d, want %d", got, goroutines*perG)
	}
}

// TestBuildParallelMatchesSequential checks that a parallel Build is
// byte-identical to the sequential one: same keys in the same enumeration
// order, same metrics, same infeasible count.
func TestBuildParallelMatchesSequential(t *testing.T) {
	s, eval := toySpace()
	seq, err := Build(s, eval)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8, 32} {
		got, err := BuildParallel(s, eval, par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got.Size() != seq.Size() || got.Infeasible() != seq.Infeasible() {
			t.Fatalf("par=%d: size/infeasible = %d/%d, want %d/%d",
				par, got.Size(), got.Infeasible(), seq.Size(), seq.Infeasible())
		}
		var a, b bytes.Buffer
		if err := seq.WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := got.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("par=%d: parallel build CSV differs from sequential", par)
		}
	}
}
