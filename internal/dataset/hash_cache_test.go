package dataset

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// TestHashStringModeEquivalence runs the same request stream through a
// hash-keyed and a string-keyed cache and demands identical results and
// identical deterministic accounting - the contract that lets the hot path
// drop string keys without changing a single answer.
func TestHashStringModeEquivalence(t *testing.T) {
	s, eval := toySpace()
	r := rand.New(rand.NewSource(42))
	pts := make([]param.Point, 300)
	for i := range pts {
		pts[i] = s.Random(r)
	}

	run := func(mode KeyMode) ([]metrics.Metrics, []string, CacheStats) {
		c := NewCache(s, eval)
		c.SetKeyMode(mode)
		ms := make([]metrics.Metrics, len(pts))
		errStrs := make([]string, len(pts))
		for i, pt := range pts {
			m, err := c.Evaluate(pt)
			ms[i] = m
			if err != nil {
				errStrs[i] = err.Error()
			}
		}
		return ms, errStrs, c.Stats()
	}

	hm, he, hst := run(KeyModeHash)
	sm, se, sst := run(KeyModeString)
	if !reflect.DeepEqual(hm, sm) {
		t.Fatal("hash-keyed and string-keyed caches returned different metrics")
	}
	if !reflect.DeepEqual(he, se) {
		t.Fatal("hash-keyed and string-keyed caches returned different errors")
	}
	if hst != sst {
		t.Fatalf("stats differ across key modes: hash %+v, string %+v", hst, sst)
	}
	if hst.Collisions != 0 {
		t.Errorf("injective space produced %d collisions", hst.Collisions)
	}
}

// TestHashModeExportByteIdentical checks checkpoints are identical across
// key modes: persistence always speaks canonical string keys.
func TestHashModeExportByteIdentical(t *testing.T) {
	s, eval := toySpace()
	r := rand.New(rand.NewSource(9))
	pts := make([]param.Point, 120)
	for i := range pts {
		pts[i] = s.Random(r)
	}
	pts = append(pts, param.Point{9, 9}) // memoized permanent error

	snapshot := func(mode KeyMode) CacheSnapshot {
		c := NewCache(s, eval)
		c.SetKeyMode(mode)
		for _, pt := range pts {
			c.Evaluate(pt)
		}
		return c.Export()
	}
	hsnap, ssnap := snapshot(KeyModeHash), snapshot(KeyModeString)
	if !reflect.DeepEqual(hsnap, ssnap) {
		t.Fatal("cache snapshots differ across key modes")
	}

	// And a hash-mode cache restored from a (string-keyed) snapshot serves
	// the same answers without new evaluator calls.
	c := NewCache(s, func(param.Point) (metrics.Metrics, error) {
		t.Error("restored cache called the evaluator for a memoized point")
		return nil, errors.New("unexpected")
	})
	if err := c.Restore(hsnap); err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		m, err := c.Evaluate(pt)
		wm, werr := eval(pt)
		if !reflect.DeepEqual(m, wm) || (err == nil) != (werr == nil) {
			t.Fatalf("restored hash-mode cache disagrees at %s", s.Key(pt))
		}
	}
}

// TestHashCollisionVerification forces every point onto one 64-bit hash via
// the test-only hashFn override and proves the genome-verification fallback:
// every lookup still gets its own point's answer, and the collision counter
// surfaces the probe cost in Stats.
func TestHashCollisionVerification(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	c.hashFn = func(param.Point) uint64 { return 0xdecafbad }

	var pts []param.Point
	s.Enumerate(func(pt param.Point) bool {
		pts = append(pts, pt.Clone())
		return true
	})
	check := func() {
		for _, pt := range pts {
			m, err := c.Evaluate(pt)
			wm, werr := eval(pt)
			if (err == nil) != (werr == nil) || !reflect.DeepEqual(m, wm) {
				t.Fatalf("colliding cache returned wrong answer for %s: %v, %v", s.Key(pt), m, err)
			}
		}
	}
	check() // all misses: every insert chains behind the same hash
	check() // all hits: every lookup probes through the full chain
	st := c.Stats()
	if st.Distinct != len(pts) {
		t.Errorf("distinct = %d, want %d (collisions must not merge points)", st.Distinct, len(pts))
	}
	if st.Hits != len(pts) {
		t.Errorf("hits = %d, want %d", st.Hits, len(pts))
	}
	if st.Collisions == 0 {
		t.Error("Stats().Collisions = 0 after forcing every point onto one hash")
	}
	if got := c.HashCollisions(); got != st.Collisions {
		t.Errorf("HashCollisions() = %d, Stats().Collisions = %d", got, st.Collisions)
	}

	// The batch path must survive the same abuse, including in-batch dedup
	// of equal-hash distinct points (both under and over the linear-scan
	// threshold).
	for _, dup := range []int{1, 3} {
		c.Reset()
		var batch []param.Point
		for i := 0; i < dup; i++ {
			batch = append(batch, pts...)
		}
		ms, errs, err := c.EvaluateBatchCtx(context.Background(), batch, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, pt := range batch {
			wm, werr := eval(pt)
			if (errs[i] == nil) != (werr == nil) || !reflect.DeepEqual(ms[i], wm) {
				t.Fatalf("colliding batch (dup=%d) wrong at %s", dup, s.Key(pt))
			}
		}
		if got := c.DistinctEvaluations(); got != len(pts) {
			t.Errorf("batch dup=%d: distinct = %d, want %d", dup, got, len(pts))
		}
	}
}

// TestHashModeTransientWithdraw checks the hash path never memoizes
// transient failures: the withdrawn table entry is re-evaluated on retry.
func TestHashModeTransientWithdraw(t *testing.T) {
	s, _ := toySpace()
	calls := 0
	c := NewCache(s, func(pt param.Point) (metrics.Metrics, error) {
		calls++
		if calls == 1 {
			return nil, MarkTransient(errors.New("tool crashed"))
		}
		return metrics.Metrics{"cost": 1}, nil
	})
	pt := param.Point{1, 1}
	if _, err := c.Evaluate(pt); !IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
	if m, err := c.Evaluate(pt); err != nil || m["cost"] != 1 {
		t.Fatalf("retry after transient failed: %v, %v", m, err)
	}
	if calls != 2 {
		t.Errorf("evaluator ran %d times, want 2 (withdraw then retry)", calls)
	}
	st := c.Stats()
	if st.Transient != 1 || st.Distinct != 1 {
		t.Errorf("stats = %+v, want Transient=1 Distinct=1", st)
	}
}

// TestHashModeBatchEquivalence mirrors the batch/single equivalence suite in
// hash mode across batch shapes and parallelism, including duplicate-heavy
// batches.
func TestHashModeBatchEquivalence(t *testing.T) {
	s, eval := toySpace()
	r := rand.New(rand.NewSource(17))
	var pts []param.Point
	for i := 0; i < 90; i++ {
		pt := s.Random(r)
		pts = append(pts, pt, pt.Clone()) // heavy duplication
	}

	want := make([]metrics.Metrics, len(pts))
	wantErr := make([]string, len(pts))
	for i, pt := range pts {
		m, err := eval(pt)
		want[i] = m
		if err != nil {
			wantErr[i] = err.Error()
		}
	}

	for _, batchSize := range []int{1, 7, linearBatchDedup + 16} {
		for _, par := range []int{1, 4} {
			c := NewCache(s, eval)
			got := make([]metrics.Metrics, 0, len(pts))
			gotErr := make([]string, 0, len(pts))
			for lo := 0; lo < len(pts); lo += batchSize {
				hi := lo + batchSize
				if hi > len(pts) {
					hi = len(pts)
				}
				ms, errs, err := c.EvaluateBatchCtx(context.Background(), pts[lo:hi], par)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, ms...)
				for _, e := range errs {
					if e != nil {
						gotErr = append(gotErr, e.Error())
					} else {
						gotErr = append(gotErr, "")
					}
				}
			}
			if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(gotErr, wantErr) {
				t.Fatalf("hash batch (size=%d par=%d) diverged from direct evaluation", batchSize, par)
			}
		}
	}
}

// TestHashedHotPathAllocs pins the perf contract behind the whole refactor:
// a warm hash-keyed single lookup allocates nothing, and a warm batch
// allocates only its two result slices. A regression here fails CI.
func TestHashedHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts only hold in non-race builds")
	}
	s, eval := toySpace()
	c := NewCache(s, eval)
	pt := param.Point{3, 4}
	h := s.Hash64(pt)
	if _, err := c.EvaluateHashed(h, pt); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if avg := testing.AllocsPerRun(200, func() {
		c.EvaluateHashedCtx(ctx, h, pt)
	}); avg != 0 {
		t.Errorf("warm hashed lookup allocates %.1f times per call, want 0", avg)
	}

	// Generation-shaped warm batch: 32 requests over 16 distinct points.
	r := rand.New(rand.NewSource(3))
	batch := make([]param.Point, 0, 32)
	hashes := make([]uint64, 0, 32)
	for i := 0; i < 16; i++ {
		pt := s.Random(r)
		batch = append(batch, pt, pt)
		hh := s.Hash64(pt)
		hashes = append(hashes, hh, hh)
	}
	if _, _, err := c.EvaluateBatchHashedCtx(ctx, hashes, batch, 1); err != nil {
		t.Fatal(err)
	}
	// 2 result slices; everything else comes from the scratch pool.
	const wantAllocs = 2
	if avg := testing.AllocsPerRun(200, func() {
		c.EvaluateBatchHashedCtx(ctx, hashes, batch, 1)
	}); avg > wantAllocs {
		t.Errorf("warm hashed batch allocates %.1f times per call, want <= %d", avg, wantAllocs)
	}
}

// TestKeyModeAPIBridging checks each public entry point honors the cache's
// mode even when handed the other representation.
func TestKeyModeAPIBridging(t *testing.T) {
	s, eval := toySpace()
	pt := param.Point{2, 5}
	key := s.Key(pt)
	h := s.Hash64(pt)
	ctx := context.Background()

	for _, mode := range []KeyMode{KeyModeHash, KeyModeString} {
		c := NewCache(s, eval)
		c.SetKeyMode(mode)
		if got := c.Mode(); got != mode {
			t.Fatalf("Mode() = %v, want %v", got, mode)
		}
		wm, _ := eval(pt)
		for name, call := range map[string]func() (metrics.Metrics, error){
			"Evaluate":       func() (metrics.Metrics, error) { return c.Evaluate(pt) },
			"EvaluateKeyed":  func() (metrics.Metrics, error) { return c.EvaluateKeyed(key, pt) },
			"EvaluateHashed": func() (metrics.Metrics, error) { return c.EvaluateHashed(h, pt) },
			"BatchKeyed": func() (metrics.Metrics, error) {
				ms, errs, err := c.EvaluateBatchKeyedCtx(ctx, []string{key}, []param.Point{pt}, 1)
				if err != nil {
					return nil, err
				}
				return ms[0], errs[0]
			},
			"BatchHashed": func() (metrics.Metrics, error) {
				ms, errs, err := c.EvaluateBatchHashedCtx(ctx, []uint64{h}, []param.Point{pt}, 1)
				if err != nil {
					return nil, err
				}
				return ms[0], errs[0]
			},
		} {
			m, err := call()
			if err != nil || !reflect.DeepEqual(m, wm) {
				t.Errorf("mode %v: %s returned (%v, %v), want (%v, nil)", mode, name, m, err, wm)
			}
		}
		if got := c.DistinctEvaluations(); got != 1 {
			t.Errorf("mode %v: distinct = %d, want 1 across bridged entry points", mode, got)
		}
	}
}

// TestBatchLengthMismatch checks the batch entry points reject ragged
// identity slices instead of misattributing results.
func TestBatchLengthMismatch(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	ctx := context.Background()
	pts := []param.Point{{1, 1}, {2, 2}}
	if _, _, err := c.EvaluateBatchHashedCtx(ctx, []uint64{1}, pts, 1); err == nil {
		t.Error("hashed batch accepted 1 hash for 2 points")
	}
	c.SetKeyMode(KeyModeString)
	if _, _, err := c.EvaluateBatchKeyedCtx(ctx, []string{"1,1"}, pts, 1); err == nil {
		t.Error("keyed batch accepted 1 key for 2 points")
	}
}

// TestTableGrowthAndTombstones drives one shard's open-addressed table
// through many insert/withdraw cycles to exercise growth, tombstone reuse,
// and rehash - the failure injection pattern a supervised flaky evaluator
// produces.
func TestTableGrowthAndTombstones(t *testing.T) {
	s := param.MustSpace(param.Int("x", 0, 9999, 1))
	attempt := make(map[int]int)
	c := NewCache(s, func(pt param.Point) (metrics.Metrics, error) {
		x := pt[0]
		attempt[x]++
		if attempt[x] == 1 && x%3 == 0 {
			return nil, MarkTransient(fmt.Errorf("flaky %d", x))
		}
		return metrics.Metrics{"v": float64(x)}, nil
	})
	for x := 0; x < 2000; x++ {
		pt := param.Point{x}
		m, err := c.Evaluate(pt)
		if x%3 == 0 {
			if !IsTransient(err) {
				t.Fatalf("x=%d: want transient, got %v", x, err)
			}
			m, err = c.Evaluate(pt) // retry lands in the tombstoned slot's chain
		}
		if err != nil || m["v"] != float64(x) {
			t.Fatalf("x=%d: got (%v, %v)", x, m, err)
		}
	}
	// Everything remains retrievable after growth interleaved with
	// tombstoning.
	for x := 0; x < 2000; x++ {
		if m, err := c.Evaluate(param.Point{x}); err != nil || m["v"] != float64(x) {
			t.Fatalf("post-growth lookup x=%d: (%v, %v)", x, m, err)
		}
	}
	st := c.Stats()
	if st.Distinct != 2000 {
		t.Errorf("distinct = %d, want 2000", st.Distinct)
	}
}
