// Batched evaluation pipeline.
//
// The Nautilus deployment model makes evaluation the cost that dwarfs every
// other: one design point is a minutes-to-hours synthesis job, and a GA
// generation asks for a whole population of them at once. Dispatching those
// requests one point at a time - a lock acquisition, a singleflight slot,
// and a goroutine handoff per point - is pure overhead the moment the
// answers come from a warm cache. The batch path below keeps the cache's
// accounting and singleflight semantics bit-for-bit, but amortizes the
// bookkeeping from O(points) to O(batches): one counter update per batch,
// one lock acquisition per touched shard, and one pool fan-out over only
// the residual misses. Under the default KeyModeHash, a batch is resolved
// entirely on 64-bit genome hashes - no string key is built anywhere on
// the path, and every hit is verified against the stored packed genome.
package dataset

import (
	"context"
	"fmt"
	"time"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pool"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// BatchEvaluator characterizes a whole batch of design points in one call,
// returning exactly one (metrics, error) pair per point, index-aligned with
// pts. It is the contract a generation-at-a-time dispatcher evaluates
// against: implementations may fan the batch out internally (BatchOf), layer
// another cache underneath (Cache.BatchEvaluator), or forward it to a
// backend that genuinely evaluates in bulk. Per-item errors follow the
// Evaluator convention - permanent means infeasible, transient
// (IsTransient) means retry later, never memoize.
type BatchEvaluator func(ctx context.Context, pts []param.Point) ([]metrics.Metrics, []error)

// BatchOf lifts a single-point evaluator into a BatchEvaluator that fans
// each batch out on up to par pool workers - the adapter that lets every
// existing backend (plain functions, supervised evaluators, dataset
// lookups) serve the batched pipeline unmodified. Results land by index, so
// the output is identical at any par. Items never started because ctx was
// canceled come back with a transient error.
func BatchOf(eval ContextEvaluator, par int) BatchEvaluator {
	return BatchOfRec(eval, par, nil)
}

// BatchOfRec is BatchOf with pool-scheduling telemetry, mirroring
// pool.MapRec. A nil rec records nothing and costs nothing.
func BatchOfRec(eval ContextEvaluator, par int, rec telemetry.Recorder) BatchEvaluator {
	return func(ctx context.Context, pts []param.Point) ([]metrics.Metrics, []error) {
		ms := make([]metrics.Metrics, len(pts))
		errs := make([]error, len(pts))
		ran := make([]bool, len(pts))
		_ = pool.EachRecCtx(ctx, par, len(pts), func(i int) {
			ms[i], errs[i] = eval(ctx, pts[i])
			ran[i] = true
		}, rec)
		for i := range ran {
			if !ran[i] {
				errs[i] = MarkTransient(ctx.Err())
			}
		}
		return ms, errs
	}
}

// SetBatchBackend routes the batch path's residual cache misses through b in
// one call instead of fanning them out over the cache's own single-point
// evaluator. This is how caches stack: a session-private cache hands its
// misses to the process-wide shared cache as a single batch, so concurrent
// sessions searching the same space merge their in-flight generations
// instead of colliding point by point. Call it before the cache is shared
// across goroutines; a nil backend restores the single-point fan-out.
func (c *Cache) SetBatchBackend(b BatchEvaluator) {
	c.batch = b
}

// BatchEvaluator adapts the cache itself into a BatchEvaluator (misses fan
// out on up to par workers), ready to be the batch backend of another cache
// layered on top.
func (c *Cache) BatchEvaluator(par int) BatchEvaluator {
	return func(ctx context.Context, pts []param.Point) ([]metrics.Metrics, []error) {
		ms, errs, _ := c.EvaluateBatchCtx(ctx, pts, par)
		return ms, errs
	}
}

// EvaluateBatchCtx is the batch analogue of EvaluateCtx: one call resolves
// every point of the batch, identified per the cache's KeyMode (genome
// hashes by default - no string key is built anywhere on that path). See
// EvaluateBatchKeyedCtx for the per-item semantics.
func (c *Cache) EvaluateBatchCtx(ctx context.Context, pts []param.Point, par int) ([]metrics.Metrics, []error, error) {
	sc := c.getScratch()
	defer c.putScratch(sc)
	if c.mode == KeyModeString {
		if cap(sc.keys) < len(pts) {
			sc.keys = make([]string, len(pts))
		}
		keys := sc.keys[:len(pts)]
		for i, pt := range pts {
			keys[i] = c.space.Key(pt)
		}
		return c.batchResolve(ctx, sc, keys, nil, pts, par)
	}
	if cap(sc.hashes) < len(pts) {
		sc.hashes = make([]uint64, len(pts))
	}
	hashes := sc.hashes[:len(pts)]
	for i, pt := range pts {
		hashes[i] = c.hashFn(pt)
	}
	return c.batchResolve(ctx, sc, nil, hashes, pts, par)
}

// EvaluateBatchKeyedCtx resolves a whole batch of string-keyed lookups in
// one sharded pass. Semantics per item are exactly EvaluateKeyedCtx's - the
// batch and single paths are interchangeable and their deterministic
// accounting (Stats) is byte-identical for the same request stream - but
// the costs are amortized:
//
//   - one Total update per batch instead of one per lookup;
//   - duplicate keys within the batch collapse to a single resolution
//     before any lock is taken;
//   - each cache shard is locked once for all its keys, not once per key;
//   - only the residual misses (not in the cache, not in flight anywhere)
//     are evaluated, fanned out on up to par pool workers - or handed to
//     the batch backend (SetBatchBackend) in a single call;
//   - keys another goroutine is already evaluating are merged: the batch
//     waits on the in-flight result instead of re-dispatching.
//
// The returned slices are index-aligned with keys/pts. The final error is
// nil unless ctx was canceled, in which case the batch is incomplete and
// must be discarded (per-item transient errors mark the affected items).
// On a hash-mode cache the keys are ignored and the batch re-dispatched by
// genome hash.
func (c *Cache) EvaluateBatchKeyedCtx(ctx context.Context, keys []string, pts []param.Point, par int) ([]metrics.Metrics, []error, error) {
	if len(keys) != len(pts) {
		return nil, nil, fmt.Errorf("dataset: batch has %d keys but %d points", len(keys), len(pts))
	}
	if c.mode != KeyModeString {
		return c.EvaluateBatchHashedCtx(ctx, nil, pts, par)
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	return c.batchResolve(ctx, sc, keys, nil, pts, par)
}

// EvaluateBatchHashedCtx is the hash-keyed batch hot path: hashes[i] must
// be pts[i]'s genome hash (param.Space.Hash64). A nil hashes slice asks the
// cache to compute them. Per-item semantics are EvaluateHashedCtx's; the
// amortizations match EvaluateBatchKeyedCtx. On a string-mode cache the
// hashes are discarded and the batch re-dispatched by canonical key.
func (c *Cache) EvaluateBatchHashedCtx(ctx context.Context, hashes []uint64, pts []param.Point, par int) ([]metrics.Metrics, []error, error) {
	if hashes != nil && len(hashes) != len(pts) {
		return nil, nil, fmt.Errorf("dataset: batch has %d hashes but %d points", len(hashes), len(pts))
	}
	if c.mode != KeyModeHash {
		return c.EvaluateBatchCtx(ctx, pts, par)
	}
	sc := c.getScratch()
	defer c.putScratch(sc)
	if hashes == nil {
		if cap(sc.hashes) < len(pts) {
			sc.hashes = make([]uint64, len(pts))
		}
		hashes = sc.hashes[:len(pts)]
		for i, pt := range pts {
			hashes[i] = c.hashFn(pt)
		}
	}
	return c.batchResolve(ctx, sc, nil, hashes, pts, par)
}

// batchScratch is one batch resolution's reusable working state. It lives
// in the cache's sync.Pool: after the first few generations every slice has
// reached its steady-state capacity and a whole-batch resolution performs
// no allocations beyond the two result slices it returns.
type batchScratch struct {
	uniq     []batchLookup
	dup      []int
	keys     []string
	hashes   []uint64
	uniqIdx  map[string]int
	uniqIdxH map[uint64]int
	byShard  [cacheShards][]int
	withdraw [cacheShards][]int
	owned    []int
	opts     []param.Point
	oms      []metrics.Metrics
	oerrs    []error
	ran      []bool
}

// getScratch fetches (or lazily creates) a pooled batchScratch.
func (c *Cache) getScratch() *batchScratch {
	if sc, ok := c.scratch.Get().(*batchScratch); ok {
		return sc
	}
	return &batchScratch{}
}

// putScratch drops every reference the scratch holds (keys, points, cache
// entries must not be retained by the pool) and returns it for reuse.
func (c *Cache) putScratch(sc *batchScratch) {
	clear(sc.uniq)
	sc.uniq = sc.uniq[:0]
	clear(sc.keys)
	sc.keys = sc.keys[:0]
	sc.hashes = sc.hashes[:0]
	clear(sc.opts)
	sc.opts = sc.opts[:0]
	clear(sc.oms)
	sc.oms = sc.oms[:0]
	clear(sc.oerrs)
	sc.oerrs = sc.oerrs[:0]
	sc.dup = sc.dup[:0]
	sc.owned = sc.owned[:0]
	sc.ran = sc.ran[:0]
	for i := range sc.byShard {
		sc.byShard[i] = sc.byShard[i][:0]
		sc.withdraw[i] = sc.withdraw[i][:0]
	}
	if sc.uniqIdx != nil {
		clear(sc.uniqIdx)
	}
	if sc.uniqIdxH != nil {
		clear(sc.uniqIdxH)
	}
	c.scratch.Put(sc)
}

// linearBatchDedup is the batch size up to which duplicate collapsing uses
// a linear scan over the unique identities (an integer compare guards any
// deeper compare) instead of a map. Generation-sized batches stay far
// below it, and the scan beats the map's per-key hashing there.
const linearBatchDedup = 64

// batchLookup is the per-unique-point state of one batch resolution. The
// identity is the key string (string mode) or the (hash, pt) pair (hash
// mode).
type batchLookup struct {
	key   string
	hash  uint64
	pt    param.Point
	shard int
	entry *cacheEntry
	// owned: this batch inserted the entry and must complete (or withdraw)
	// it. wait: another goroutine's evaluation is in flight; the batch
	// merges with it by waiting on entry.done. canceled: the wait was cut
	// short by ctx, so the entry's fields must not be read.
	owned    bool
	wait     bool
	canceled bool
	// requests counts how many batch items resolve to this identity.
	requests int
}

// batchResolve is the shared batch engine behind both key modes: exactly
// one of keys and hashes is non-nil and selects the identity the batch
// dedups, shards, and probes on. Per-item semantics match the single-point
// paths; see EvaluateBatchKeyedCtx for the amortization contract.
func (c *Cache) batchResolve(ctx context.Context, sc *batchScratch, keys []string, hashes []uint64, pts []param.Point, par int) ([]metrics.Metrics, []error, error) {
	n := len(pts)
	ms := make([]metrics.Metrics, n)
	errs := make([]error, n)
	if n == 0 {
		return ms, errs, ctx.Err()
	}
	hashed := hashes != nil
	c.total.Add(int64(n))

	// Span tracing: one cache.batch root per resolution, with dedup/probe/
	// wait phases emitted as pre-measured children and the miss fan-out as
	// a live child span. All timing is gated on tracing so the disabled
	// path never reads the clock.
	tracing := c.tracer.Enabled()
	var batchSpan trace.Active
	var phaseStart time.Time
	if tracing {
		batchSpan = c.tracer.Start("cache.batch")
		defer batchSpan.End()
		phaseStart = time.Now()
	}

	// Collapse duplicates: one batchLookup per distinct point, in first-
	// appearance order so the miss fan-out is deterministic. Generation-
	// sized batches dedup by linear scan (an integer compare - shard or
	// hash - guards the expensive compare); larger batches fall back to a
	// pooled map. In hash mode a map hit is still genome-verified, so an
	// in-batch 64-bit collision splits into separate lookups instead of
	// merging wrongly.
	if cap(sc.dup) < n {
		sc.dup = make([]int, n)
	}
	dup := sc.dup[:n] // request index -> uniq index
	uniq := sc.uniq[:0]
	appendUniq := func(i int) int {
		j := len(uniq)
		u := batchLookup{pt: pts[i]}
		if hashed {
			u.hash = hashes[i]
			u.shard = shardForHash(u.hash)
		} else {
			u.key = keys[i]
			u.shard = c.shardFor(u.key)
		}
		uniq = append(uniq, u)
		return j
	}
	match := func(j, i int) bool {
		if hashed {
			return uniq[j].hash == hashes[i] && uniq[j].pt.Equal(pts[i])
		}
		return uniq[j].key == keys[i]
	}
	if n <= linearBatchDedup {
		for i := 0; i < n; i++ {
			j := -1
			if hashed {
				for q := range uniq {
					if uniq[q].hash == hashes[i] && uniq[q].pt.Equal(pts[i]) {
						j = q
						break
					}
				}
			} else {
				shi := c.shardFor(keys[i])
				for q := range uniq {
					if uniq[q].shard == shi && uniq[q].key == keys[i] {
						j = q
						break
					}
				}
			}
			if j < 0 {
				j = appendUniq(i)
			}
			uniq[j].requests++
			dup[i] = j
		}
	} else if hashed {
		if sc.uniqIdxH == nil {
			sc.uniqIdxH = make(map[uint64]int, n)
		}
		for i := 0; i < n; i++ {
			j, ok := sc.uniqIdxH[hashes[i]]
			if ok && !match(j, i) {
				// 64-bit collision inside one batch: scan for a true match
				// beyond the map's first index (the map keeps the first).
				j = -1
				for q := range uniq {
					if match(q, i) {
						j = q
						break
					}
				}
				ok = j >= 0
			}
			if !ok {
				j = appendUniq(i)
				if _, exists := sc.uniqIdxH[hashes[i]]; !exists {
					sc.uniqIdxH[hashes[i]] = j
				}
			}
			uniq[j].requests++
			dup[i] = j
		}
	} else {
		if sc.uniqIdx == nil {
			sc.uniqIdx = make(map[string]int, n)
		}
		for i := 0; i < n; i++ {
			j, ok := sc.uniqIdx[keys[i]]
			if !ok {
				j = appendUniq(i)
				sc.uniqIdx[keys[i]] = j
			}
			uniq[j].requests++
			dup[i] = j
		}
	}
	sc.uniq = uniq // keep any growth for reuse
	if tracing {
		now := time.Now()
		batchSpan.Emit("cache.dedup", phaseStart, now.Sub(phaseStart))
		phaseStart = now
	}

	// Single sharded probe: group the unique points by shard and classify
	// each under one lock acquisition per touched shard - hit (entry
	// complete), merge (entry in flight elsewhere), or owned miss (entry
	// inserted). Hash-mode probes verify the stored packed genome before
	// declaring a hit; collision probes are folded into the cache's
	// accounting per shard, outside the lock.
	byShard := &sc.byShard
	for j := range uniq {
		byShard[uniq[j].shard] = append(byShard[uniq[j].shard], j)
	}
	for shi, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		sh := &c.shards[shi]
		shardProbes := 0
		sh.mu.Lock()
		for _, j := range idxs {
			u := &uniq[j]
			var e *cacheEntry
			if hashed {
				var probes int
				e, probes = sh.table.lookup(u.hash, u.pt)
				shardProbes += probes
			} else {
				e = sh.entries[u.key]
			}
			if e != nil {
				u.entry = e
				select {
				case <-e.done:
				default:
					u.wait = true
				}
				continue
			}
			e = &cacheEntry{done: make(chan struct{})}
			if hashed {
				e.hash = u.hash
				e.genome = c.space.AppendPacked(nil, u.pt)
				sh.table.insert(e)
			} else {
				sh.entries[u.key] = e
			}
			u.entry = e
			u.owned = true
		}
		sh.mu.Unlock()
		c.noteCollisions(shardProbes, shi)
	}
	if tracing {
		now := time.Now()
		batchSpan.Emit("cache.probe", phaseStart, now.Sub(phaseStart))
		phaseStart = now
	}

	// Telemetry mirrors the single-point path's per-lookup classification:
	// the first request of an owned point is the miss, every further
	// duplicate would have been answered from the cache (a hit); merged
	// points are singleflight-deduplicated waits. The dedup counter is
	// updated regardless of recording, like the single path.
	recording := c.rec.Enabled()
	for j := range uniq {
		u := &uniq[j]
		if u.wait {
			c.dedup.Add(int64(u.requests))
		}
		if !recording {
			continue
		}
		switch {
		case u.owned:
			c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheMiss, Shard: u.shard})
			for k := 1; k < u.requests; k++ {
				c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheHit, Shard: u.shard})
			}
		case u.wait:
			for k := 0; k < u.requests; k++ {
				c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheDedup, Shard: u.shard})
			}
		default:
			for k := 0; k < u.requests; k++ {
				c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheHit, Shard: u.shard})
			}
		}
	}

	// Evaluate the residual misses - the points this batch owns. The batch
	// backend (when set) receives them in one call; otherwise they fan out
	// over the cache's single-point evaluator on up to par workers.
	owned := sc.owned[:0]
	for j := range uniq {
		if uniq[j].owned {
			owned = append(owned, j)
		}
	}
	sc.owned = owned
	if len(owned) > 0 {
		fanout := trace.Active{}
		if tracing {
			fanout = batchSpan.Child("cache.fanout")
		}
		opts := sc.opts[:0]
		for _, j := range owned {
			opts = append(opts, uniq[j].pt)
		}
		sc.opts = opts
		var oms []metrics.Metrics
		var oerrs []error
		if c.batch != nil {
			oms, oerrs = c.batch(ctx, opts)
			if len(oms) != len(owned) || len(oerrs) != len(owned) {
				// A misbehaving backend must not leave owned entries open
				// forever; treat the whole sub-batch as a transient failure.
				err := MarkTransient(fmt.Errorf("dataset: batch backend returned %d/%d results for %d points",
					len(oms), len(oerrs), len(owned)))
				oms = make([]metrics.Metrics, len(owned))
				oerrs = make([]error, len(owned))
				for k := range oerrs {
					oerrs[k] = err
				}
			}
		} else {
			if cap(sc.oms) < len(owned) {
				sc.oms = make([]metrics.Metrics, len(owned))
				sc.oerrs = make([]error, len(owned))
				sc.ran = make([]bool, len(owned))
			}
			oms = sc.oms[:len(owned)]
			oerrs = sc.oerrs[:len(owned)]
			ran := sc.ran[:len(owned)]
			clear(ran)
			_ = pool.EachRecCtx(ctx, par, len(owned), func(k int) {
				oms[k], oerrs[k] = c.resolve(ctx, opts[k])
				ran[k] = true
			}, c.rec)
			for k := range ran {
				if !ran[k] {
					// Never started: the run was canceled before this point's
					// turn. Withdraw it transiently, like a canceled attempt.
					oms[k], oerrs[k] = nil, MarkTransient(ctx.Err())
				}
			}
		}

		// Publish: transient outcomes are withdrawn (grouped per shard, one
		// lock each) before their done channels close, so no later lookup
		// inherits a poisoned entry; everything else is memoized. Counters
		// update once for the whole batch.
		var distinct, transient int64
		withdraw := &sc.withdraw
		for k, j := range owned {
			u := &uniq[j]
			u.entry.m, u.entry.err = oms[k], oerrs[k]
			if oerrs[k] != nil && IsTransient(oerrs[k]) {
				transient++
				withdraw[u.shard] = append(withdraw[u.shard], j)
				if recording {
					c.rec.RecordCache(telemetry.CacheRecord{Event: telemetry.CacheTransient, Shard: u.shard})
				}
			} else {
				distinct++
			}
		}
		for shi, idxs := range withdraw {
			if len(idxs) == 0 {
				continue
			}
			sh := &c.shards[shi]
			sh.mu.Lock()
			for _, j := range idxs {
				if hashed {
					sh.table.remove(uniq[j].entry)
				} else if sh.entries[uniq[j].key] == uniq[j].entry {
					delete(sh.entries, uniq[j].key)
				}
			}
			sh.mu.Unlock()
		}
		for _, j := range owned {
			close(uniq[j].entry.done)
		}
		c.distinct.Add(distinct)
		if transient > 0 {
			c.transient.Add(transient)
		}
		fanout.End()
	}

	// Merge with evaluations in flight elsewhere (another batch, another
	// session on a shared cache, or a single-point lookup): wait for their
	// results instead of re-dispatching. A canceled wait abandons the
	// in-flight evaluation; its owner still completes the entry.
	waited := false
	if tracing {
		phaseStart = time.Now()
	}
	for j := range uniq {
		u := &uniq[j]
		if !u.wait {
			continue
		}
		waited = true
		select {
		case <-u.entry.done:
		case <-ctx.Done():
			u.canceled = true
		}
	}
	if tracing && waited {
		batchSpan.Emit("cache.wait", phaseStart, time.Since(phaseStart))
	}

	for i := range pts {
		u := &uniq[dup[i]]
		if u.canceled {
			errs[i] = MarkTransient(ctx.Err())
			continue
		}
		ms[i], errs[i] = u.entry.m, u.entry.err
	}
	return ms, errs, ctx.Err()
}
