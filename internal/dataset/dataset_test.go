package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// toySpace is a tiny 2-parameter space whose "cost" metric is a simple
// deterministic function, with one infeasible corner.
func toySpace() (*param.Space, Evaluator) {
	s := param.MustSpace(
		param.Int("a", 0, 9, 1),
		param.Int("b", 0, 9, 1),
	)
	eval := func(pt param.Point) (metrics.Metrics, error) {
		a, b := s.Int(pt, "a"), s.Int(pt, "b")
		if a == 9 && b == 9 {
			return nil, errors.New("infeasible corner")
		}
		return metrics.Metrics{
			"cost":          float64(10*a + b),
			metrics.FmaxMHz: 100 + float64(a),
			metrics.LUTs:    float64(1 + b),
		}, nil
	}
	return s, eval
}

func TestCacheCountsDistinct(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	pt := param.Point{1, 2}
	for i := 0; i < 5; i++ {
		if _, err := c.Evaluate(pt); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.DistinctEvaluations(); got != 1 {
		t.Errorf("distinct = %d, want 1", got)
	}
	if got := c.TotalQueries(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	if _, err := c.Evaluate(param.Point{3, 4}); err != nil {
		t.Fatal(err)
	}
	if got := c.DistinctEvaluations(); got != 2 {
		t.Errorf("distinct = %d, want 2", got)
	}
}

func TestCacheCountsInfeasibleAsSpent(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	bad := param.Point{9, 9}
	if _, err := c.Evaluate(bad); err == nil {
		t.Fatal("expected infeasible error")
	}
	// Error is cached too.
	if _, err := c.Evaluate(bad); err == nil {
		t.Fatal("expected cached infeasible error")
	}
	if got := c.DistinctEvaluations(); got != 1 {
		t.Errorf("distinct = %d, want 1 (infeasible still costs a job)", got)
	}
}

func TestCacheReset(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	c.Evaluate(param.Point{0, 0})
	c.Reset()
	if c.DistinctEvaluations() != 0 || c.TotalQueries() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCacheConcurrent(t *testing.T) {
	s, eval := toySpace()
	c := NewCache(s, eval)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Evaluate(param.Point{i % 9, (i * 7) % 10})
			}
		}()
	}
	wg.Wait()
	// 9*10 minus how many of those pairs never occur; just sanity-check
	// bounds: distinct <= unique pairs touched <= 90, total = 800.
	if c.TotalQueries() != 800 {
		t.Errorf("total = %d, want 800", c.TotalQueries())
	}
	if c.DistinctEvaluations() > 90 {
		t.Errorf("distinct = %d, want <= 90", c.DistinctEvaluations())
	}
}

func buildToy(t *testing.T) (*param.Space, *Dataset) {
	t.Helper()
	s, eval := toySpace()
	d, err := Build(s, eval)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func TestBuildCounts(t *testing.T) {
	_, d := buildToy(t)
	if d.Size() != 99 {
		t.Errorf("Size = %d, want 99", d.Size())
	}
	if d.Infeasible() != 1 {
		t.Errorf("Infeasible = %d, want 1", d.Infeasible())
	}
}

func TestLookupAndEvaluator(t *testing.T) {
	s, d := buildToy(t)
	m, ok := d.Lookup(param.Point{2, 3})
	if !ok || m["cost"] != 23 {
		t.Fatalf("Lookup = %v,%v", m, ok)
	}
	ev := d.Evaluator()
	if _, err := ev(param.Point{9, 9}); err == nil {
		t.Error("dataset evaluator should report missing points infeasible")
	}
	got, err := ev(param.Point{5, 5})
	if err != nil || got["cost"] != 55 {
		t.Errorf("evaluator = %v, %v", got, err)
	}
	_ = s
}

func TestBestMinimize(t *testing.T) {
	s, d := buildToy(t)
	pt, v := d.Best(metrics.MinimizeMetric("cost"))
	if v != 0 || s.Int(pt, "a") != 0 || s.Int(pt, "b") != 0 {
		t.Errorf("Best = %v at %s", v, s.Describe(pt))
	}
	pt, v = d.Best(metrics.MaximizeMetric("cost"))
	if v != 98 { // 9,9 is infeasible so best is 9,8
		t.Errorf("Best max cost = %v, want 98", v)
	}
	_ = pt
}

func TestRankAndScore(t *testing.T) {
	_, d := buildToy(t)
	obj := metrics.MinimizeMetric("cost")
	if r := d.Rank(obj, 0); r != 0 {
		t.Errorf("Rank(0) = %d, want 0", r)
	}
	if r := d.Rank(obj, 5); r != 5 { // costs 0..4 are strictly better
		t.Errorf("Rank(5) = %d, want 5", r)
	}
	if s := d.Score(obj, 0); s != 100 {
		t.Errorf("Score(best) = %v, want 100", s)
	}
	if s := d.Score(obj, 98); s > 2 {
		t.Errorf("Score(worst) = %v, want <= 2", s)
	}
	if !d.InTopPercent(obj, 0, 1) {
		t.Error("optimum should be in top 1%")
	}
	if d.InTopPercent(obj, 50, 1) {
		t.Error("median should not be in top 1%")
	}
}

func TestRankMaximize(t *testing.T) {
	_, d := buildToy(t)
	obj := metrics.MaximizeMetric("cost")
	if r := d.Rank(obj, 98); r != 0 {
		t.Errorf("Rank(max) = %d, want 0", r)
	}
	if r := d.Rank(obj, 96); r != 2 { // 98 and 97 are better
		t.Errorf("Rank(96) = %d, want 2", r)
	}
}

func TestQuantile(t *testing.T) {
	_, d := buildToy(t)
	obj := metrics.MinimizeMetric("cost")
	if q := d.Quantile(obj, 0); q != 0 {
		t.Errorf("Quantile(0) = %v, want 0 (best)", q)
	}
	if q := d.Quantile(obj, 1); q != 98 {
		t.Errorf("Quantile(1) = %v, want 98 (worst)", q)
	}
	mid := d.Quantile(obj, 0.5)
	if mid < 40 || mid > 60 {
		t.Errorf("Quantile(0.5) = %v, want mid-range", mid)
	}
}

func TestCountWithinAndRandomDraws(t *testing.T) {
	_, d := buildToy(t)
	obj := metrics.MinimizeMetric("cost")
	if k := d.CountWithin(obj, 4); k != 5 { // costs 0..4
		t.Errorf("CountWithin(4) = %d, want 5", k)
	}
	// (n+1)/(k+1) with n=100 (99 feasible + 1 infeasible), k=5 -> 101/6.
	want := 101.0 / 6
	if got := d.ExpectedRandomDraws(obj, 4); math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedRandomDraws = %v, want %v", got, want)
	}
}

func TestEachVisitsAllFeasible(t *testing.T) {
	_, d := buildToy(t)
	n := 0
	d.Each(func(pt param.Point, m metrics.Metrics) bool {
		if m == nil {
			t.Fatal("nil metrics in Each")
		}
		n++
		return true
	})
	if n != d.Size() {
		t.Errorf("Each visited %d, want %d", n, d.Size())
	}
	// Early stop.
	n = 0
	d.Each(func(pt param.Point, m metrics.Metrics) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each early-stop visited %d, want 1", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s, d := buildToy(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(s, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != d.Size() {
		t.Fatalf("round-trip size %d, want %d", back.Size(), d.Size())
	}
	if back.Infeasible() != d.Infeasible() {
		t.Errorf("round-trip infeasible %d, want %d", back.Infeasible(), d.Infeasible())
	}
	d.Each(func(pt param.Point, m metrics.Metrics) bool {
		got, ok := back.Lookup(pt)
		if !ok {
			t.Fatalf("point %s missing after round trip", s.Key(pt))
		}
		for name, v := range m {
			if got[name] != v {
				t.Fatalf("point %s metric %s: %v != %v", s.Key(pt), name, got[name], v)
			}
		}
		return true
	})
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	s, _ := toySpace()
	cases := []string{
		"",                         // empty
		"x,y,cost\n1,2,3\n",        // wrong header
		"a,b,cost\n1\n",            // short row
		"a,b,cost\n42,2,3\n",       // unknown param value
		"a,b,cost\n1,2,zzz\n",      // bad float
		"a,b,cost\n1,2,3\n1,2,4\n", // duplicate point
	}
	for _, c := range cases {
		if _, err := ReadCSV(s, bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestBuildRejectsAllInfeasible(t *testing.T) {
	s := param.MustSpace(param.Flag("x"))
	_, err := Build(s, func(param.Point) (metrics.Metrics, error) {
		return nil, errors.New("nope")
	})
	if err == nil {
		t.Error("Build with no feasible points should fail")
	}
}

// Property: Score is monotone - a better objective value never scores lower.
func TestQuickScoreMonotone(t *testing.T) {
	_, d := buildToy(t)
	obj := metrics.MinimizeMetric("cost")
	f := func(a, b uint8) bool {
		va, vb := float64(a%99), float64(b%99)
		if va > vb {
			va, vb = vb, va
		}
		return d.Score(obj, va) >= d.Score(obj, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Rank and CountWithin are consistent: rank counts strictly
// better, CountWithin counts better-or-equal, so for any value present in
// the dataset CountWithin > Rank.
func TestQuickRankCountConsistent(t *testing.T) {
	_, d := buildToy(t)
	obj := metrics.MinimizeMetric("cost")
	f := func(raw uint8) bool {
		v := float64(raw % 99) // every such cost value exists
		return d.CountWithin(obj, v) > d.Rank(obj, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankOnRealisticTies(t *testing.T) {
	// A dataset where many points share the same objective value.
	s := param.MustSpace(param.Int("x", 0, 99, 1))
	d, err := Build(s, func(pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"v": float64(s.Int(pt, "x") / 10)}, nil // 10-way ties
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := metrics.MinimizeMetric("v")
	if r := d.Rank(obj, 0); r != 0 {
		t.Errorf("Rank(0) = %d, want 0", r)
	}
	if r := d.Rank(obj, 1); r != 10 {
		t.Errorf("Rank(1) = %d, want 10 (ten zeros strictly better)", r)
	}
	if k := d.CountWithin(obj, 1); k != 20 {
		t.Errorf("CountWithin(1) = %d, want 20", k)
	}
}

func TestWriteCSVStableHeader(t *testing.T) {
	_, d := buildToy(t)
	var a, b bytes.Buffer
	if err := d.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteCSV output not deterministic")
	}
	header := a.String()[:bytes.IndexByte(a.Bytes(), '\n')]
	want := fmt.Sprintf("a,b,cost,%s,%s", metrics.FmaxMHz, metrics.LUTs)
	if header != want {
		t.Errorf("header = %q, want %q", header, want)
	}
}

func TestSample(t *testing.T) {
	s, eval := toySpace()
	d, err := Sample(s, eval, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size()+d.Infeasible() != 30 {
		t.Errorf("sample characterized %d+%d points, want 30", d.Size(), d.Infeasible())
	}
	obj := metrics.MinimizeMetric("cost")
	if _, best := d.Best(obj); best < 0 || best > 98 {
		t.Errorf("sampled best %v out of range", best)
	}
	// Deterministic per seed.
	d2, _ := Sample(s, eval, 30, 1)
	if d.Size() != d2.Size() {
		t.Error("Sample not deterministic")
	}
	// Oversized sample falls back to full enumeration.
	full, err := Sample(s, eval, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full.Size() != 99 {
		t.Errorf("oversized sample got %d points, want full 99", full.Size())
	}
	if _, err := Sample(s, eval, 1, 1); err == nil {
		t.Error("sample size 1 accepted")
	}
}

func TestSampleAllInfeasible(t *testing.T) {
	s := param.MustSpace(param.Int("x", 0, 99, 1))
	bad := func(param.Point) (metrics.Metrics, error) { return nil, errors.New("no") }
	if _, err := Sample(s, bad, 20, 1); err == nil {
		t.Error("all-infeasible sample accepted")
	}
}
