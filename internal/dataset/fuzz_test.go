package dataset

import (
	"bytes"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// FuzzReadCSV checks that arbitrary CSV input never panics the reader and
// that accepted datasets are internally consistent.
func FuzzReadCSV(f *testing.F) {
	space := param.MustSpace(param.Int("a", 0, 3, 1), param.Flag("b"))
	f.Add([]byte("a,b,luts\n0,off,100\n1,on,200\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b\n"))
	f.Add([]byte("x,y,z\n1,2,3\n"))
	f.Add([]byte("a,b,luts\n0,off,100\n0,off,200\n"))
	f.Add([]byte("a,b,luts\n9,off,100\n"))
	f.Add([]byte("a,b,luts\n0,off,not_a_number\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadCSV(space, bytes.NewReader(data))
		if err != nil {
			return
		}
		if ds.Size() < 1 {
			t.Fatal("accepted dataset with no points")
		}
		// Every stored point must be addressable and valid.
		n := 0
		ds.Each(func(pt param.Point, m metrics.Metrics) bool {
			if err := space.Validate(pt); err != nil {
				t.Fatalf("stored invalid point: %v", err)
			}
			n++
			return true
		})
		if n != ds.Size() {
			t.Fatalf("Each visited %d points, Size says %d", n, ds.Size())
		}
	})
}
