package faultnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Memory is an in-memory Network: listeners register under virtual
// addresses ("nautserve:80", "127.0.0.1:0", any host:port string) and
// dials connect to them through buffered duplex pipes. It exists so the
// whole service tier - HTTP server, SSE streams, future cluster RPC - can
// run inside one test process, under the race detector, with no sockets.
type Memory struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextPort  int
	nextConn  int
}

// NewMemory returns an empty in-memory network.
func NewMemory() *Memory {
	return &Memory{listeners: make(map[string]*memListener), nextPort: 49152}
}

// Listen implements Network. A trailing ":0" port picks a fresh virtual
// port, mirroring net.Listen's ephemeral-port behavior.
func (m *Memory) Listen(network, address string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if host, ok := strings.CutSuffix(address, ":0"); ok {
		m.nextPort++
		address = fmt.Sprintf("%s:%d", host, m.nextPort)
	}
	if _, taken := m.listeners[address]; taken {
		return nil, &net.OpError{Op: "listen", Net: "faultnet", Addr: Addr(address),
			Err: errors.New("address already in use")}
	}
	l := &memListener{
		m:      m,
		addr:   Addr(address),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	m.listeners[address] = l
	return l, nil
}

// DialContext implements Network: it hands the server half of a fresh
// pipe pair to the listener bound at address and returns the client half.
func (m *Memory) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	m.mu.Lock()
	l := m.listeners[address]
	m.nextConn++
	client := Addr(fmt.Sprintf("client:%d", m.nextConn))
	m.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: Addr(address),
			Err: errors.New("connection refused")}
	}
	cc, sc := newConnPair(client, l.addr)
	select {
	case l.accept <- sc:
		return cc, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: Addr(address),
			Err: errors.New("connection refused")}
	case <-ctx.Done():
		return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: Addr(address),
			Err: ctx.Err()}
	}
}

// memListener queues dialed-in connections for Accept.
type memListener struct {
	m      *Memory
	addr   Addr
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "faultnet", Addr: l.addr, Err: net.ErrClosed}
	}
}

// Close implements net.Listener: pending and future dials are refused.
func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.m.mu.Lock()
		delete(l.m.listeners, string(l.addr))
		l.m.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return l.addr }
