package faultnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// dirState is the per-direction bookkeeping of one fault connection.
type dirState struct {
	mu       sync.Mutex
	offset   int64 // bytes transferred so far
	ops      uint64
	deadline time.Time
}

func (s *dirState) setDeadline(t time.Time) {
	s.mu.Lock()
	s.deadline = t
	s.mu.Unlock()
}

func (s *dirState) getDeadline() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadline
}

// faultConn shapes every read and write of one wrapped connection
// through its schedule: manual gates, scheduled partition windows,
// latency, bandwidth pacing, and the reset offset. Faults apply at
// operation granularity - an op already blocked inside the underlying
// transport is not interrupted, the next one is shaped.
type faultConn struct {
	net.Conn
	f    *Faulty
	id   uint64
	plan connPlan

	closed    chan struct{}
	closeOnce sync.Once

	seqMu sync.Mutex
	seq   int

	resetFired atomic.Bool

	// Scheduled partition window, shared by both directions.
	partMu        sync.Mutex
	partTriggered bool
	partUntil     time.Time

	rd dirState
	wr dirState
}

// log records a per-connection event with the next sequence number.
func (c *faultConn) log(e Event) {
	c.seqMu.Lock()
	c.seq++
	e.Seq = c.seq
	c.seqMu.Unlock()
	e.Conn = c.id
	c.f.log.add(e)
}

func (c *faultConn) state(d dir) *dirState {
	if d == dirRead {
		return &c.rd
	}
	return &c.wr
}

func (c *faultConn) opErr(d dir, err error) error {
	return &net.OpError{Op: d.String(), Net: "faultnet", Addr: c.Conn.RemoteAddr(), Err: err}
}

// sleep waits for dur, abandoning the wait if the connection closes or
// the direction's deadline expires first.
func (c *faultConn) sleep(d dir, dur time.Duration) error {
	if dur <= 0 {
		return nil
	}
	if dl := c.state(d).getDeadline(); !dl.IsZero() {
		until := time.Until(dl)
		if until < dur {
			if until > 0 {
				t := time.NewTimer(until)
				defer t.Stop()
				select {
				case <-t.C:
				case <-c.closed:
					return net.ErrClosed
				}
			}
			return c.opErr(d, errTimeout)
		}
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

// waitGate blocks while a manual partition covers direction d.
func (c *faultConn) waitGate(d dir) error {
	for {
		ch := c.f.gate(d)
		if ch == nil {
			return nil
		}
		var timeout <-chan time.Time
		var timer *time.Timer
		if dl := c.state(d).getDeadline(); !dl.IsZero() {
			until := time.Until(dl)
			if until <= 0 {
				return c.opErr(d, errTimeout)
			}
			timer = time.NewTimer(until)
			timeout = timer.C
		}
		select {
		case <-ch:
		case <-c.closed:
			if timer != nil {
				timer.Stop()
			}
			return net.ErrClosed
		case <-timeout:
			return c.opErr(d, errTimeout)
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// waitPartition serves this connection's scheduled partition window:
// once triggered, ops in the stalled direction(s) wait until the window
// heals.
func (c *faultConn) waitPartition(d dir) error {
	if c.plan.partAt < 0 {
		return nil
	}
	if !c.plan.partTwoWay && d != c.plan.partDir {
		return nil
	}
	c.partMu.Lock()
	triggered, until := c.partTriggered, c.partUntil
	c.partMu.Unlock()
	if !triggered {
		return nil
	}
	if wait := time.Until(until); wait > 0 {
		return c.sleep(d, wait)
	}
	return nil
}

// advance moves direction d's byte offset and trips the scheduled
// partition when its trigger offset is crossed.
func (c *faultConn) advance(d dir, n int) {
	st := c.state(d)
	st.mu.Lock()
	st.offset += int64(n)
	off := st.offset
	st.mu.Unlock()
	if c.plan.partAt >= 0 && d == c.plan.partDir && off >= c.plan.partAt {
		c.triggerPartition()
	}
}

// triggerPartition opens the scheduled window once. The heal event is
// logged here too - the window length is fixed by the schedule, so
// logging it at trigger time keeps the event log a pure function of the
// scenario while the serving path just stalls.
func (c *faultConn) triggerPartition() {
	c.partMu.Lock()
	if c.partTriggered {
		c.partMu.Unlock()
		return
	}
	c.partTriggered = true
	c.partUntil = time.Now().Add(c.plan.partHeal)
	c.partMu.Unlock()
	mode, dirs := "one-way", c.plan.partDir.String()
	if c.plan.partTwoWay {
		mode, dirs = "two-way", "both"
	}
	c.log(Event{Kind: "partition", Dir: dirs, Offset: c.plan.partAt, Detail: mode})
	c.log(Event{Kind: "heal", Dir: dirs, Offset: c.plan.partAt, Detail: "scheduled"})
	inc(c.f.partitions)
	inc(c.f.heals)
	c.f.span(SpanPartition, time.Now(), c.plan.partHeal)
}

// fireReset kills the connection at its scheduled reset offset.
func (c *faultConn) fireReset(d dir) {
	if !c.resetFired.CompareAndSwap(false, true) {
		return
	}
	c.log(Event{Kind: "reset", Dir: d.String(), Offset: c.plan.resetAt})
	inc(c.f.resets)
	c.f.span(SpanReset, time.Now(), 0)
	c.Close()
}

// step performs one fault-shaped transfer in direction d. The buffer is
// clamped so offsets land exactly on the reset boundary and bandwidth
// pacing sees uniform chunks.
func (c *faultConn) step(d dir, p []byte, op func([]byte) (int, error)) (int, error) {
	if c.resetFired.Load() {
		return 0, c.opErr(d, ErrReset)
	}
	if err := c.waitGate(d); err != nil {
		return 0, err
	}
	if err := c.waitPartition(d); err != nil {
		return 0, err
	}
	st := c.state(d)
	st.mu.Lock()
	opNum := st.ops
	st.ops++
	offset := st.offset
	st.mu.Unlock()
	if del := c.plan.opDelay(d, opNum); del > 0 {
		if err := c.sleep(d, del); err != nil {
			return 0, err
		}
	}
	lim := len(p)
	var pace time.Duration
	if bps := c.plan.bandwidthBPS; bps > 0 {
		chunk := bps / 10
		if chunk < 1 {
			chunk = 1
		}
		if lim > chunk {
			lim = chunk
		}
		pace = time.Duration(float64(lim) / float64(bps) * float64(time.Second))
	}
	if c.plan.resetAt >= 0 && c.plan.resetDir == d {
		rem := c.plan.resetAt - offset
		if rem <= 0 {
			c.fireReset(d)
			return 0, c.opErr(d, ErrReset)
		}
		if int64(lim) > rem {
			lim = int(rem)
		}
	}
	n, err := op(p[:lim])
	if n > 0 {
		c.advance(d, n)
		if pace > 0 {
			if serr := c.sleep(d, pace); serr != nil && err == nil {
				err = serr
			}
		}
	}
	return n, err
}

// Read performs one shaped read step.
func (c *faultConn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return c.Conn.Read(p)
	}
	return c.step(dirRead, p, c.Conn.Read)
}

// Write pushes all of p through shaped steps: clamping never surfaces as
// a short write, the loop carries on until done or a real error.
func (c *faultConn) Write(p []byte) (int, error) {
	var total int
	for total < len(p) {
		n, err := c.step(dirWrite, p[total:], c.Conn.Write)
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, c.opErr(dirWrite, io.ErrShortWrite)
		}
	}
	return total, nil
}

// Close releases stalled operations and closes the underlying transport.
func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
	})
	return err
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	c.wr.setDeadline(t)
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.rd.setDeadline(t)
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.wr.setDeadline(t)
	return c.Conn.SetWriteDeadline(t)
}
