package faultnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// ErrReset is the error surfaced when a scheduled connection reset fires
// (wrapped in a *net.OpError, like the kernel's ECONNRESET would be).
var ErrReset = errors.New("connection reset by faultnet scenario")

// Registry metric names the harness maintains (exposed on /metrics as
// nautilus_faultnet_*).
const (
	MetricConns      = "faultnet.conns"
	MetricResets     = "faultnet.resets"
	MetricPartitions = "faultnet.partitions"
	MetricHeals      = "faultnet.heals"
	MetricSlowLoris  = "faultnet.slowloris_conns"
)

// Span names fault events emit when a tracer is attached.
const (
	SpanReset     = "faultnet.reset"
	SpanPartition = "faultnet.partition"
	SpanHeal      = "faultnet.heal"
)

// Mode selects a manual partition's shape.
type Mode int

const (
	// PartitionNone: traffic flows.
	PartitionNone Mode = iota
	// PartitionOneWay stalls the write direction of every wrapped
	// endpoint (responses stop flowing; requests still arrive).
	PartitionOneWay
	// PartitionTwoWay stalls both directions.
	PartitionTwoWay
)

func (m Mode) String() string {
	switch m {
	case PartitionOneWay:
		return "one-way"
	case PartitionTwoWay:
		return "two-way"
	default:
		return "none"
	}
}

// Config parameterizes a Faulty network.
type Config struct {
	// Under is the transport faults are injected over (default System).
	Under Network
	// Scenario is the seeded fault schedule (zero = no scheduled faults).
	Scenario Scenario
	// Registry, when set, receives the faultnet.* counters.
	Registry *telemetry.Registry
	// Log, when set, collects fault events (default: a fresh Log).
	Log *Log
}

// Faulty injects scenario faults over an underlying Network. Every
// connection it wraps - accepted or dialed - gets a deterministic fault
// schedule keyed on its sequence number, and every fired fault lands in
// the event log, the counters, and (when a tracer is attached) the span
// stream.
type Faulty struct {
	under Network
	sc    Scenario
	log   *Log

	connMu   sync.Mutex
	connSeq  uint64
	eventSeq int // per-network (conn=0) event sequence

	// Manual partition state: healCh is non-nil while partitioned and is
	// closed by Heal to release every gate waiter at once.
	partMu sync.Mutex
	mode   Mode
	healCh chan struct{}

	trMu   sync.Mutex
	tracer *trace.Tracer

	conns      *telemetry.Counter
	resets     *telemetry.Counter
	partitions *telemetry.Counter
	heals      *telemetry.Counter
	slow       *telemetry.Counter
}

// New builds a fault-injecting network over cfg.Under.
func New(cfg Config) *Faulty {
	if cfg.Under == nil {
		cfg.Under = System{}
	}
	if cfg.Log == nil {
		cfg.Log = NewLog()
	}
	f := &Faulty{under: cfg.Under, sc: cfg.Scenario.withDefaults(), log: cfg.Log}
	if reg := cfg.Registry; reg != nil {
		f.conns = reg.Counter(MetricConns)
		f.resets = reg.Counter(MetricResets)
		f.partitions = reg.Counter(MetricPartitions)
		f.heals = reg.Counter(MetricHeals)
		f.slow = reg.Counter(MetricSlowLoris)
	}
	return f
}

// Events returns the fault-event log.
func (f *Faulty) Events() *Log { return f.log }

// SetTracer attaches (or replaces) the tracer fault events are emitted
// to as spans. Safe to call after the network is serving.
func (f *Faulty) SetTracer(tr *trace.Tracer) {
	f.trMu.Lock()
	f.tracer = tr
	f.trMu.Unlock()
}

// span emits one pre-measured fault span when a tracer is attached.
func (f *Faulty) span(name string, start time.Time, d time.Duration) {
	f.trMu.Lock()
	tr := f.tracer
	f.trMu.Unlock()
	tr.Event(name, start, d)
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Listen implements Network: accepted connections are wrapped with their
// scheduled faults.
func (f *Faulty) Listen(network, address string) (net.Listener, error) {
	ln, err := f.under.Listen(network, address)
	if err != nil {
		return nil, err
	}
	return &faultListener{f: f, Listener: ln}, nil
}

// DialContext implements Network: dialed connections are wrapped with
// their scheduled faults. While a manual two-way partition is up, dials
// are refused the way an unreachable network refuses them.
func (f *Faulty) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if f.manualMode() == PartitionTwoWay {
		return nil, &net.OpError{Op: "dial", Net: "faultnet", Addr: Addr(address),
			Err: errors.New("network partitioned")}
	}
	c, err := f.under.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}
	return f.wrap(c), nil
}

// faultListener wraps Accept with the fault pipeline.
type faultListener struct {
	f *Faulty
	net.Listener
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.wrap(c), nil
}

// wrap assigns the connection its sequence number and schedule, logs the
// open event, and returns the fault-injecting endpoint.
func (f *Faulty) wrap(c net.Conn) net.Conn {
	f.connMu.Lock()
	f.connSeq++
	id := f.connSeq
	f.connMu.Unlock()
	plan := f.sc.plan(id)
	inc(f.conns)
	if plan.slowLoris {
		inc(f.slow)
	}
	fc := &faultConn{Conn: c, f: f, id: id, plan: plan, closed: make(chan struct{})}
	fc.log(Event{Kind: "open", Detail: plan.describe()})
	return fc
}

// Partition manually splits the network: every wrapped connection's
// gated direction stalls until Heal (one-way stalls writes, two-way
// stalls both and refuses new dials). Used by tests that need a split
// wider than the per-connection scenario windows - e.g. "drain under
// partition". Calling Partition while partitioned just changes the mode.
func (f *Faulty) Partition(mode Mode) {
	f.partMu.Lock()
	if mode == PartitionNone {
		f.partMu.Unlock()
		f.Heal()
		return
	}
	if f.healCh == nil {
		f.healCh = make(chan struct{})
	}
	f.mode = mode
	f.partMu.Unlock()
	inc(f.partitions)
	f.netEvent(Event{Kind: "partition", Dir: dirLabel(mode), Detail: "manual"})
	f.span(SpanPartition, time.Now(), 0)
}

// Heal lifts a manual partition, releasing every stalled operation.
func (f *Faulty) Heal() {
	f.partMu.Lock()
	ch := f.healCh
	f.healCh = nil
	f.mode = PartitionNone
	f.partMu.Unlock()
	if ch == nil {
		return
	}
	close(ch)
	inc(f.heals)
	f.netEvent(Event{Kind: "heal", Detail: "manual"})
	f.span(SpanHeal, time.Now(), 0)
}

// manualMode reports the current manual partition mode.
func (f *Faulty) manualMode() Mode {
	f.partMu.Lock()
	defer f.partMu.Unlock()
	return f.mode
}

// gate returns the channel an operation in direction d must wait on
// (closed on heal), or nil when traffic flows.
func (f *Faulty) gate(d dir) <-chan struct{} {
	f.partMu.Lock()
	defer f.partMu.Unlock()
	if f.healCh == nil {
		return nil
	}
	if f.mode == PartitionOneWay && d == dirRead {
		return nil
	}
	return f.healCh
}

// netEvent logs a network-wide (conn=0) event.
func (f *Faulty) netEvent(e Event) {
	f.connMu.Lock()
	f.eventSeq++
	e.Seq = f.eventSeq
	f.connMu.Unlock()
	f.log.add(e)
}

// dirLabel renders a manual mode's affected direction.
func dirLabel(m Mode) string {
	if m == PartitionTwoWay {
		return "both"
	}
	return "write"
}
