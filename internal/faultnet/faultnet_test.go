package faultnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nautilus/internal/telemetry"
)

// echoServer accepts on ln and echoes n-byte requests back, closing each
// connection after one exchange. Returns a stop func.
func echoServer(t *testing.T, ln net.Listener, n int) func() {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, n)
				if _, err := io.ReadFull(c, buf); err != nil {
					return
				}
				c.Write(buf) //nolint:errcheck // faults make write errors expected
			}()
		}
	}()
	return func() {
		ln.Close()
		wg.Wait()
	}
}

func TestMemoryNetworkHTTP(t *testing.T) {
	mem := NewMemory()
	ln, err := mem.Listen("tcp", "nautserve:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok over faultnet")
	})}
	go hs.Serve(ln) //nolint:errcheck
	defer hs.Close()

	client := &http.Client{Transport: &http.Transport{DialContext: mem.DialContext}}
	resp, err := client.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok over faultnet" {
		t.Fatalf("body = %q", body)
	}
}

func TestMemoryListenSemantics(t *testing.T) {
	mem := NewMemory()
	ln1, err := mem.Listen("tcp", "a:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln2, err := mem.Listen("tcp", "a:0")
	if err != nil {
		t.Fatalf("second ephemeral listen: %v", err)
	}
	if ln1.Addr().String() == ln2.Addr().String() {
		t.Fatalf("ephemeral listens share address %s", ln1.Addr())
	}
	if _, err := mem.Listen("tcp", ln1.Addr().String()); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	if _, err := mem.DialContext(context.Background(), "tcp", "nobody:1"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	ln1.Close()
	if _, err := mem.DialContext(context.Background(), "tcp", ln1.Addr().String()); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestPipeCloseSemantics(t *testing.T) {
	c, s := newConnPair("client:1", "server:1")
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	// Peer close: buffered data drains, then EOF; writes to it break.
	if _, err := c.Write([]byte("bye")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.Close()
	n, err = s.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("drain read = %q, %v", buf[:n], err)
	}
	if _, err := s.Read(buf); err != io.EOF {
		t.Fatalf("read after peer close = %v, want EOF", err)
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestPipeReadDeadline(t *testing.T) {
	c, s := newConnPair("client:1", "server:1")
	defer c.Close()
	defer s.Close()
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //nolint:errcheck
	start := time.Now()
	_, err := s.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("read = %v, want timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline took far too long")
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := (Scenario{ResetRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := (Scenario{Latency: -time.Second}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := (Scenario{SlowLorisBPS: -1}).Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
	if err := (Scenario{ResetRate: 0.5, Latency: time.Millisecond}).Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if (Scenario{}).Active() {
		t.Fatal("zero scenario reports active")
	}
	if !(Scenario{SlowLorisRate: 0.1}).Active() {
		t.Fatal("slow-loris scenario reports inactive")
	}
}

// findSeed returns a seed whose connection-1 plan satisfies want.
func findSeed(t *testing.T, sc Scenario, want func(connPlan) bool) int64 {
	t.Helper()
	for seed := int64(1); seed < 10_000; seed++ {
		sc.Seed = seed
		if want(sc.withDefaults().plan(1)) {
			return seed
		}
	}
	t.Fatal("no seed under 10000 produces the wanted plan")
	return 0
}

// faultyOverMemory builds a Faulty wrapping only the accept side of an
// in-memory network - the same shape the daemon uses, which keeps
// connection numbering deterministic for sequential dialers.
func faultyOverMemory(t *testing.T, sc Scenario, reg *telemetry.Registry) (*Faulty, *Memory, net.Listener) {
	t.Helper()
	mem := NewMemory()
	fnet := New(Config{Under: mem, Scenario: sc, Registry: reg})
	ln, err := fnet.Listen("tcp", "srv:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return fnet, mem, ln
}

func TestResetFiresAtExactOffset(t *testing.T) {
	sc := Scenario{ResetRate: 1, ResetMaxBytes: 1000}
	sc.Seed = findSeed(t, sc, func(p connPlan) bool { return p.resetDir == dirRead })
	plan := sc.withDefaults().plan(1)

	fnet, mem, ln := faultyOverMemory(t, sc, nil)
	var got int64
	var readErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			readErr = err
			return
		}
		defer c.Close()
		got, readErr = io.Copy(io.Discard, c)
	}()

	cc, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cc.Write(bytes.Repeat([]byte("x"), int(plan.resetAt)+4096)) //nolint:errcheck
	<-done
	if got != plan.resetAt {
		t.Fatalf("server read %d bytes before reset, want exactly %d", got, plan.resetAt)
	}
	if !errors.Is(readErr, ErrReset) {
		t.Fatalf("read error = %v, want ErrReset", readErr)
	}
	wantLine := fmt.Sprintf("conn=1 seq=2 kind=reset dir=read offset=%d", plan.resetAt)
	if log := fnet.Events().String(); !strings.Contains(log, wantLine) {
		t.Fatalf("log missing %q:\n%s", wantLine, log)
	}
}

func TestScheduledPartitionStallsAndHeals(t *testing.T) {
	const heal = 200 * time.Millisecond
	sc := Scenario{PartitionRate: 1, PartitionMaxBytes: 500, PartitionHeal: heal}
	sc.Seed = findSeed(t, sc, func(p connPlan) bool { return p.partDir == dirRead })
	plan := sc.withDefaults().plan(1)

	fnet, mem, ln := faultyOverMemory(t, sc, nil)
	payload := bytes.Repeat([]byte("y"), int(plan.partAt)+64)
	stop := echoServer(t, ln, len(payload))
	defer stop()

	cc, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cc.Close()
	start := time.Now()
	if _, err := cc.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := io.ReadFull(cc, make([]byte, len(payload))); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < heal/2 {
		t.Fatalf("round trip took %s; partition window (%s) did not stall it", elapsed, heal)
	}
	log := fnet.Events().String()
	for _, want := range []string{"kind=partition", "kind=heal"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
}

func TestManualPartitionAndHeal(t *testing.T) {
	reg := telemetry.NewRegistry()
	fnet, mem, ln := faultyOverMemory(t, Scenario{}, reg)
	stop := echoServer(t, ln, 5)
	defer stop()

	dial := func() net.Conn {
		c, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return c
	}
	// Healthy exchange first.
	c1 := dial()
	defer c1.Close()
	c1.Write([]byte("hello")) //nolint:errcheck
	if _, err := io.ReadFull(c1, make([]byte, 5)); err != nil {
		t.Fatalf("healthy echo: %v", err)
	}

	// Two-way partition: the server cannot read the request, so no echo
	// arrives before the deadline...
	fnet.Partition(PartitionTwoWay)
	c2 := dial()
	defer c2.Close()
	c2.Write([]byte("world"))                                 //nolint:errcheck
	c2.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	if _, err := io.ReadFull(c2, make([]byte, 5)); err == nil {
		t.Fatal("echo arrived through a two-way partition")
	}
	// ...and new dials through the faulty side are refused.
	if _, err := fnet.DialContext(context.Background(), "tcp", ln.Addr().String()); err == nil {
		t.Fatal("dial through two-way partition succeeded")
	}

	// Heal: the stalled exchange completes.
	fnet.Heal()
	c2.SetReadDeadline(time.Time{}) //nolint:errcheck
	if _, err := io.ReadFull(c2, make([]byte, 5)); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}

	log := fnet.Events().String()
	for _, want := range []string{
		"conn=0 seq=1 kind=partition dir=both manual",
		"conn=0 seq=2 kind=heal manual",
	} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
	if v := reg.Counter(MetricPartitions).Value(); v != 1 {
		t.Fatalf("partitions counter = %d, want 1", v)
	}
	if v := reg.Counter(MetricHeals).Value(); v != 1 {
		t.Fatalf("heals counter = %d, want 1", v)
	}
	if v := reg.Counter(MetricConns).Value(); v != 2 {
		t.Fatalf("conns counter = %d, want 2", v)
	}
}

func TestOneWayPartitionLetsReadsThrough(t *testing.T) {
	fnet, mem, ln := faultyOverMemory(t, Scenario{}, nil)
	stop := echoServer(t, ln, 3)
	defer stop()

	fnet.Partition(PartitionOneWay)
	defer fnet.Heal()
	c, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Requests still arrive (server reads pass); the echo (server write)
	// stalls until heal.
	c.Write([]byte("abc"))                                   //nolint:errcheck
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 3)); err == nil {
		t.Fatal("echo crossed a one-way partition")
	}
	fnet.Heal()
	c.SetReadDeadline(time.Time{}) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 3)); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestDeadlineHonoredWhileGated(t *testing.T) {
	fnet, mem, ln := faultyOverMemory(t, Scenario{}, nil)
	acceptCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	cc, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cc.Close()
	sc := <-acceptCh
	defer sc.Close()

	fnet.Partition(PartitionTwoWay)
	defer fnet.Heal()
	sc.SetReadDeadline(time.Now().Add(40 * time.Millisecond)) //nolint:errcheck
	cc.Write([]byte("data"))                                  //nolint:errcheck
	start := time.Now()
	_, rerr := sc.Read(make([]byte, 4))
	var nerr net.Error
	if !errors.As(rerr, &nerr) || !nerr.Timeout() {
		t.Fatalf("gated read = %v, want timeout", rerr)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("gated read ignored its deadline")
	}
}

func TestLatencyDelaysOperations(t *testing.T) {
	const lat = 25 * time.Millisecond
	_, mem, ln := faultyOverMemory(t, Scenario{Latency: lat}, nil)
	stop := echoServer(t, ln, 4)
	defer stop()

	c, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("ping")) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatalf("echo: %v", err)
	}
	// The wrapped side pays latency on its read and on its write.
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("round trip %s beat the configured latency %s", elapsed, lat)
	}
}

func TestBandwidthPacing(t *testing.T) {
	const bps = 64 * 1024
	const size = 16 * 1024 // 250ms at bps
	_, mem, ln := faultyOverMemory(t, Scenario{BandwidthBPS: bps}, nil)
	var got int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		got, _ = io.Copy(io.Discard, c)
	}()
	c, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	start := time.Now()
	c.Write(bytes.Repeat([]byte("b"), size)) //nolint:errcheck
	c.Close()
	<-done
	if got != size {
		t.Fatalf("server got %d bytes, want %d", got, size)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("transfer of %d bytes at %d B/s finished in %s; pacing missing", size, bps, elapsed)
	}
}

// TestLogDeterminism is the harness' core contract: the same scenario
// seed driven by the same sequential workload yields a byte-identical
// fault-event log, run after run.
func TestLogDeterminism(t *testing.T) {
	sc := Scenario{
		Seed:          42,
		BandwidthBPS:  1 << 20,
		ResetRate:     0.5,
		ResetMaxBytes: 4096,
		PartitionRate: 0.5,
		PartitionHeal: 5 * time.Millisecond,
		SlowLorisRate: 0.3,
		SlowLorisBPS:  1 << 19,
	}
	const conns = 8
	payload := bytes.Repeat([]byte("z"), 8192)

	run := func() string {
		fnet, mem, ln := faultyOverMemory(t, sc, nil)
		stop := echoServer(t, ln, len(payload))
		defer stop()
		for i := 0; i < conns; i++ {
			c, err := mem.DialContext(context.Background(), "tcp", ln.Addr().String())
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			c.Write(payload)       //nolint:errcheck // resets are expected
			io.Copy(io.Discard, c) //nolint:errcheck
			c.Close()
		}
		return fnet.Events().String()
	}

	first := run()
	second := run()
	if first != second {
		t.Fatalf("fault logs differ across identical runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "kind=reset") {
		t.Fatalf("scenario fired no resets over %d connections:\n%s", conns, first)
	}
	if strings.Count(first, "kind=open") != conns {
		t.Fatalf("log records %d opens, want %d:\n%s", strings.Count(first, "kind=open"), conns, first)
	}
}

func TestFaultyHTTPUnderFaults(t *testing.T) {
	// An HTTP server behind a lossy network keeps answering on healthy
	// connections even as scheduled resets kill others.
	reg := telemetry.NewRegistry()
	sc := Scenario{Seed: 7, ResetRate: 0.4, ResetMaxBytes: 200}
	mem := NewMemory()
	fnet := New(Config{Under: mem, Scenario: sc, Registry: reg})
	ln, err := fnet.Listen("tcp", "srv:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("p", 512))
	})}
	go hs.Serve(ln) //nolint:errcheck
	defer hs.Close()

	client := &http.Client{Transport: &http.Transport{
		DialContext:       mem.DialContext,
		DisableKeepAlives: true,
	}}
	ok := 0
	for i := 0; i < 12; i++ {
		resp, err := client.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			continue
		}
		if _, err := io.ReadAll(resp.Body); err == nil && resp.StatusCode == http.StatusOK {
			ok++
		}
		resp.Body.Close()
	}
	if ok == 0 {
		t.Fatal("no request survived the scenario")
	}
	if reg.Counter(MetricResets).Value() == 0 {
		t.Fatal("scenario fired no resets")
	}
	if reg.Counter(MetricConns).Value() == 0 {
		t.Fatal("conns counter never moved")
	}
}
