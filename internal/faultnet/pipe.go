package faultnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// timeoutError is the net.Error returned when a deadline expires inside
// the in-memory stack (pipe reads, fault stalls).
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// errTimeout is the shared deadline-expiry error value.
var errTimeout net.Error = timeoutError{}

// pipeBuffer is one direction of an in-memory connection: an unbounded
// byte queue with blocking reads, writer-close (EOF) and reader-close
// (broken pipe) semantics, and read-deadline support. Writes never block;
// flow shaping is Faulty's job, one layer up.
type pipeBuffer struct {
	mu   sync.Mutex
	cond *sync.Cond
	data []byte
	// eof: the writer closed; readers drain the queue then see io.EOF.
	eof bool
	// rclosed: the reader closed; writes fail like a TCP RST would.
	rclosed  bool
	deadline time.Time
	timer    *time.Timer
}

func newPipeBuffer() *pipeBuffer {
	b := &pipeBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Read blocks until data, EOF, reader close, or the read deadline.
func (b *pipeBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.rclosed {
			return 0, net.ErrClosed
		}
		if len(b.data) > 0 {
			n := copy(p, b.data)
			b.data = b.data[n:]
			if len(b.data) == 0 {
				b.data = nil
			}
			return n, nil
		}
		if b.eof {
			return 0, io.EOF
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, errTimeout
		}
		b.cond.Wait()
	}
}

// Write appends p; it fails once either side is closed.
func (b *pipeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rclosed || b.eof {
		return 0, net.ErrClosed
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

// closeWrite ends the stream: readers drain what is buffered, then EOF.
func (b *pipeBuffer) closeWrite() {
	b.mu.Lock()
	b.eof = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// closeRead abandons the stream: pending data is dropped and subsequent
// writes from the peer fail.
func (b *pipeBuffer) closeRead() {
	b.mu.Lock()
	b.rclosed = true
	b.data = nil
	b.cond.Broadcast()
	b.mu.Unlock()
}

// setReadDeadline arms a wakeup so blocked readers observe expiry.
func (b *pipeBuffer) setReadDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deadline = t
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if t.IsZero() {
		return
	}
	if d := time.Until(t); d > 0 {
		b.timer = time.AfterFunc(d, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
	} else {
		b.cond.Broadcast()
	}
}

// memConn is one endpoint of an in-memory connection: it reads from `in`
// and writes to `out` (the peer holds the same two buffers swapped).
type memConn struct {
	in, out       *pipeBuffer
	local, remote Addr
	closeOnce     sync.Once
}

func (c *memConn) Read(p []byte) (int, error)  { return c.in.Read(p) }
func (c *memConn) Write(p []byte) (int, error) { return c.out.Write(p) }

// Close tears the endpoint down: our reads stop (peer writes break) and
// our writes end the peer's stream with EOF after it drains.
func (c *memConn) Close() error {
	c.closeOnce.Do(func() {
		c.in.closeRead()
		c.out.closeWrite()
	})
	return nil
}

func (c *memConn) LocalAddr() net.Addr  { return c.local }
func (c *memConn) RemoteAddr() net.Addr { return c.remote }

func (c *memConn) SetDeadline(t time.Time) error {
	c.in.setReadDeadline(t)
	return nil
}

func (c *memConn) SetReadDeadline(t time.Time) error {
	c.in.setReadDeadline(t)
	return nil
}

// SetWriteDeadline is accepted but inert: pipe writes never block.
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// newConnPair builds the two endpoints of one in-memory connection.
func newConnPair(client, server Addr) (*memConn, *memConn) {
	toServer := newPipeBuffer() // client writes, server reads
	toClient := newPipeBuffer() // server writes, client reads
	c := &memConn{in: toClient, out: toServer, local: client, remote: server}
	s := &memConn{in: toServer, out: toClient, local: server, remote: client}
	return c, s
}
