package faultnet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is one fault occurrence: a connection being wrapped, a scheduled
// reset or partition firing, a window healing, or a manual network-wide
// split. Events deliberately carry no wall-clock timestamps - their
// identity is (connection, per-connection sequence, kind, byte offset),
// which is what stays byte-identical across replays of the same scenario.
type Event struct {
	// Conn is the connection's sequence number (0 for network-wide
	// events from manual Partition/Heal calls).
	Conn uint64 `json:"conn"`
	// Seq orders events within one connection.
	Seq int `json:"seq"`
	// Kind: "open", "reset", "partition", "heal".
	Kind string `json:"kind"`
	// Dir is the affected direction ("read", "write", "both") where it
	// applies.
	Dir string `json:"dir,omitempty"`
	// Offset is the byte offset at which a scheduled fault fired.
	Offset int64 `json:"offset,omitempty"`
	// Detail carries the connection's fault schedule on "open" events and
	// mode annotations elsewhere.
	Detail string `json:"detail,omitempty"`
}

// String renders the event as one canonical log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conn=%d seq=%d kind=%s", e.Conn, e.Seq, e.Kind)
	if e.Dir != "" {
		fmt.Fprintf(&b, " dir=%s", e.Dir)
	}
	if e.Offset > 0 {
		fmt.Fprintf(&b, " offset=%d", e.Offset)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Log collects fault events. Appends are concurrent-safe; Snapshot and
// String return the events in canonical (connection, sequence) order, so
// two runs of the same scenario over the same deterministic driver
// produce byte-identical renderings regardless of goroutine interleaving.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

func (l *Log) add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Snapshot returns the events sorted by (Conn, Seq).
func (l *Log) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Conn != out[b].Conn {
			return out[a].Conn < out[b].Conn
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// String renders the canonical log: one line per event, sorted, newline
// terminated (empty string for an empty log).
func (l *Log) String() string {
	events := l.Snapshot()
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Len reports how many events have been recorded.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
