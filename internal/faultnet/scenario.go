package faultnet

import (
	"fmt"
	"strings"
	"time"
)

// Scenario parameterizes the fault schedule a Faulty network applies.
// Every per-connection decision - does connection k reset, at which byte
// offset, is it a slow-loris peer, when does its partition window open
// and heal - is drawn from a splitmix64 stream keyed on (Seed, k). The
// schedule is therefore a pure function of the scenario, and the
// fault-event log of a deterministic driver is byte-identical across
// runs. The zero Scenario injects nothing (Faulty then only wraps,
// counts, and honors manual Partition/Heal calls).
type Scenario struct {
	// Seed keys the scenario's private splitmix64 stream. It is unrelated
	// to (and never mixed with) any search RNG.
	Seed int64
	// Latency is a base per-operation one-way delay; Jitter adds a
	// deterministic pseudo-random extra in [0, Jitter) per operation.
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS caps sustained per-direction throughput in bytes per
	// second (0 = unlimited). Transfers are chunked and paced.
	BandwidthBPS int
	// ResetRate is the probability a connection gets a scheduled reset:
	// after ResetAt bytes (drawn in [1, ResetMaxBytes]) cross the chosen
	// direction, the connection dies with ErrReset - mid-response, the
	// way real peers vanish.
	ResetRate     float64
	ResetMaxBytes int
	// PartitionRate is the probability a connection gets a scheduled
	// partition window: after a drawn byte offset, one direction (one-way)
	// or both (two-way) stall, then heal after PartitionHeal.
	PartitionRate     float64
	PartitionMaxBytes int
	PartitionHeal     time.Duration
	// SlowLorisRate is the probability a connection is a slow-loris peer:
	// both directions are throttled to SlowLorisBPS bytes per second,
	// stalling whatever the other side is trying to push.
	SlowLorisRate float64
	SlowLorisBPS  int
}

// Scenario defaults applied by withDefaults for fields left zero when a
// fault class is enabled.
const (
	defaultResetMaxBytes     = 4096
	defaultPartitionMaxBytes = 4096
	defaultPartitionHeal     = 250 * time.Millisecond
	defaultSlowLorisBPS      = 256
)

// Active reports whether the scenario injects any fault at all.
func (s Scenario) Active() bool {
	return s.Latency > 0 || s.Jitter > 0 || s.BandwidthBPS > 0 ||
		s.ResetRate > 0 || s.PartitionRate > 0 || s.SlowLorisRate > 0
}

// Validate rejects out-of-range knobs (rates outside [0,1], negative
// durations or sizes).
func (s Scenario) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"reset rate", s.ResetRate},
		{"partition rate", s.PartitionRate},
		{"slow-loris rate", s.SlowLorisRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faultnet: %s %g outside [0, 1]", r.name, r.v)
		}
	}
	if s.Latency < 0 || s.Jitter < 0 || s.PartitionHeal < 0 {
		return fmt.Errorf("faultnet: negative duration in scenario")
	}
	if s.BandwidthBPS < 0 || s.ResetMaxBytes < 0 || s.PartitionMaxBytes < 0 || s.SlowLorisBPS < 0 {
		return fmt.Errorf("faultnet: negative size in scenario")
	}
	return nil
}

// withDefaults fills the bound fields that fault classes need once
// enabled.
func (s Scenario) withDefaults() Scenario {
	if s.ResetMaxBytes == 0 {
		s.ResetMaxBytes = defaultResetMaxBytes
	}
	if s.PartitionMaxBytes == 0 {
		s.PartitionMaxBytes = defaultPartitionMaxBytes
	}
	if s.PartitionHeal == 0 {
		s.PartitionHeal = defaultPartitionHeal
	}
	if s.SlowLorisBPS == 0 {
		s.SlowLorisBPS = defaultSlowLorisBPS
	}
	return s
}

// dir is a transfer direction relative to the wrapped endpoint.
type dir int

const (
	dirRead dir = iota
	dirWrite
)

func (d dir) String() string {
	if d == dirRead {
		return "read"
	}
	return "write"
}

// splitmix64 is the SplitMix64 finalizer - the same construction
// param.Space.Hash64 and trace span IDs use, applied here to the
// scenario's private stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stream is a tiny deterministic generator over splitmix64.
type stream struct{ state uint64 }

// connStream keys a stream on (seed, connection number).
func connStream(seed int64, conn uint64) *stream {
	return &stream{state: splitmix64(uint64(seed)) ^ splitmix64(conn*0x9e3779b97f4a7c15)}
}

func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return splitmix64(s.state)
}

// float returns a uniform draw in [0, 1).
func (s *stream) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (s *stream) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// connPlan is the full fault schedule of one connection, fixed at
// wrap time. Offsets of -1 mean "never".
type connPlan struct {
	latency time.Duration
	jitter  time.Duration
	// jitterSeed keys the per-operation jitter fractions.
	jitterSeed uint64
	// bandwidthBPS is the per-direction pacing cap (slow-loris overrides
	// it downward).
	bandwidthBPS int
	slowLoris    bool

	resetDir dir
	resetAt  int64

	// partDir is the stalled direction for one-way windows (and the
	// trigger direction for both modes); partTwoWay stalls both.
	partDir    dir
	partAt     int64
	partTwoWay bool
	partHeal   time.Duration
}

// plan derives connection conn's schedule from the scenario stream. The
// draw order is fixed; with the same (Seed, conn) the schedule is
// identical on every run.
func (s Scenario) plan(conn uint64) connPlan {
	r := connStream(s.Seed, conn)
	p := connPlan{
		latency:      s.Latency,
		jitter:       s.Jitter,
		jitterSeed:   r.next(),
		bandwidthBPS: s.BandwidthBPS,
		resetAt:      -1,
		partAt:       -1,
	}
	if s.ResetRate > 0 && r.float() < s.ResetRate {
		p.resetDir = dir(r.intn(2))
		p.resetAt = int64(1 + r.intn(s.ResetMaxBytes))
	}
	if s.PartitionRate > 0 && r.float() < s.PartitionRate {
		p.partTwoWay = r.intn(2) == 1
		p.partDir = dir(r.intn(2))
		p.partAt = int64(1 + r.intn(s.PartitionMaxBytes))
		p.partHeal = s.PartitionHeal
	}
	if s.SlowLorisRate > 0 && r.float() < s.SlowLorisRate {
		p.slowLoris = true
		if p.bandwidthBPS == 0 || p.bandwidthBPS > s.SlowLorisBPS {
			p.bandwidthBPS = s.SlowLorisBPS
		}
	}
	return p
}

// opDelay is the deterministic latency of operation op in direction d:
// base latency plus a jitter fraction keyed on (conn, direction, op).
func (p connPlan) opDelay(d dir, op uint64) time.Duration {
	if p.latency <= 0 && p.jitter <= 0 {
		return 0
	}
	del := p.latency
	if p.jitter > 0 {
		frac := float64(splitmix64(p.jitterSeed^(uint64(d)<<63)+op)>>11) / (1 << 53)
		del += time.Duration(frac * float64(p.jitter))
	}
	return del
}

// describe renders the schedule for the connection's "open" log event -
// pure scenario data, so it is deterministic.
func (p connPlan) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency=%s jitter=%s bw=%d", p.latency, p.jitter, p.bandwidthBPS)
	if p.resetAt >= 0 {
		fmt.Fprintf(&b, " reset=%s@%d", p.resetDir, p.resetAt)
	}
	if p.partAt >= 0 {
		mode := "one-way"
		if p.partTwoWay {
			mode = "two-way"
		}
		fmt.Fprintf(&b, " partition=%s:%s@%d/%s", mode, p.partDir, p.partAt, p.partHeal)
	}
	if p.slowLoris {
		b.WriteString(" slowloris")
	}
	return b.String()
}
