// Package faultnet is the service tier's deterministic network-fault
// harness: a swappable network stack that lets the server (and the future
// multi-node cluster) run under seeded latency, bandwidth caps, connection
// resets, partitions, and slow-loris peers - in-process, in CI, with the
// same reproducibility discipline the faulty evaluator gives the search
// path.
//
// Three layers compose:
//
//   - Network is the seam: Listen/DialContext over any transport.
//     Production code takes a Network and defaults to System (real TCP),
//     so shipping behavior is unchanged.
//   - Memory is an in-memory Network: virtual addresses, buffered duplex
//     pipes with full net.Conn deadline semantics. Server tests (and
//     future cluster tests) run whole HTTP conversations through it
//     without touching a socket.
//   - Faulty wraps any underlying Network (System or Memory - the netem
//     "drop-in Net over an UnderlyingNetwork" shape) and injects faults
//     scheduled by a Scenario: every fault decision is drawn from a
//     dedicated splitmix64 stream keyed on (scenario seed, connection
//     sequence number), never from the run RNG - the same discipline as
//     internal/resilience backoff jitter and telemetry/trace span IDs.
//
// Determinism contract: the fault schedule of connection k is a pure
// function of (Scenario.Seed, k), and fired fault events are a pure
// function of the schedule and the bytes a client pushes. A deterministic
// driver (sequential connections, fixed payloads) therefore produces a
// byte-identical fault-event log on every run - Log.String is that
// canonical form, and the nautserve e2e pins it.
package faultnet

import (
	"context"
	"net"
)

// Network abstracts the transport the service tier binds and dials
// through. Implementations: System (real TCP), Memory (in-memory pipes),
// and Faulty (fault injection over either).
type Network interface {
	// Listen binds address and returns a listener whose accepted
	// connections are full net.Conns (deadlines included).
	Listen(network, address string) (net.Listener, error)
	// DialContext connects to address, honoring ctx cancellation. The
	// signature matches net.Dialer.DialContext so an http.Transport can
	// use it directly.
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// System is the real TCP stack - the production default. Its zero value
// is ready to use.
type System struct{}

// Listen implements Network over net.Listen.
func (System) Listen(network, address string) (net.Listener, error) {
	return net.Listen(network, address)
}

// DialContext implements Network over a zero net.Dialer.
func (System) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, network, address)
}

// Addr is the net.Addr of in-memory endpoints.
type Addr string

// Network implements net.Addr.
func (Addr) Network() string { return "faultnet" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }
