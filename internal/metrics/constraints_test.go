package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstraintSatisfied(t *testing.T) {
	m := Metrics{LUTs: 1500, SNRdB: 42}
	cases := []struct {
		c    Constraint
		want bool
	}{
		{AtMost(LUTs, 2000), true},
		{AtMost(LUTs, 1000), false},
		{AtMost(LUTs, 1500), true}, // boundary inclusive
		{AtLeast(SNRdB, 40), true},
		{AtLeast(SNRdB, 50), false},
		{Between(LUTs, 1000, 2000), true},
		{Between(LUTs, 1600, 2000), false},
		{AtMost("missing", 10), false},
	}
	for _, c := range cases {
		if got := c.c.Satisfied(m); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.c, m, got, c.want)
		}
	}
}

func TestConstraintString(t *testing.T) {
	if s := AtMost(LUTs, 2000).String(); !strings.Contains(s, "luts <= 2000") {
		t.Errorf("String = %q", s)
	}
	if s := AtLeast(SNRdB, 40).String(); !strings.Contains(s, "40 <= snr_db") {
		t.Errorf("String = %q", s)
	}
	if s := (Constraint{Metric: "x", Min: math.NaN(), Max: math.NaN()}).String(); !strings.Contains(s, "unconstrained") {
		t.Errorf("String = %q", s)
	}
}

func TestConstrainedObjective(t *testing.T) {
	obj := MaximizeMetric(ThroughputMSPS).Constrained(AtMost(LUTs, 2000), AtLeast(SNRdB, 40))
	good := Metrics{ThroughputMSPS: 800, LUTs: 1500, SNRdB: 45}
	badArea := Metrics{ThroughputMSPS: 900, LUTs: 3000, SNRdB: 45}
	badSNR := Metrics{ThroughputMSPS: 900, LUTs: 1500, SNRdB: 30}

	if v, ok := obj.Value(good); !ok || v != 800 {
		t.Errorf("feasible value = %v,%v", v, ok)
	}
	if _, ok := obj.Value(badArea); ok {
		t.Error("area violation accepted")
	}
	if _, ok := obj.Value(badSNR); ok {
		t.Error("SNR violation accepted")
	}
	if f := obj.Fitness(badArea); !math.IsInf(f, -1) {
		t.Errorf("violating fitness = %v, want -Inf", f)
	}
	if !strings.Contains(obj.Name(), "s.t.") {
		t.Errorf("constrained name = %q", obj.Name())
	}
}

func TestConstrainedZeroConstraintsIsTransparent(t *testing.T) {
	obj := MinimizeMetric(LUTs).Constrained()
	m := Metrics{LUTs: 42}
	if v, ok := obj.Value(m); !ok || v != 42 {
		t.Errorf("Value = %v,%v", v, ok)
	}
	if obj.Name() != LUTs {
		t.Errorf("name = %q, want unchanged", obj.Name())
	}
}

// Property: a constrained objective never reports a value on bags that
// violate the constraint, and always matches the base objective on bags
// that satisfy it.
func TestQuickConstrainedConsistent(t *testing.T) {
	base := MinimizeMetric(LUTs)
	obj := base.Constrained(AtMost(LUTs, 1000))
	f := func(raw uint16) bool {
		m := Metrics{LUTs: float64(raw)}
		v, ok := obj.Value(m)
		if float64(raw) > 1000 {
			return !ok
		}
		bv, bok := base.Value(m)
		return ok == bok && v == bv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
