package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() Metrics {
	return Metrics{
		LUTs:           1200,
		FmaxMHz:        200,
		ThroughputMSPS: 600,
	}
}

func TestGetPlain(t *testing.T) {
	m := sample()
	v, ok := m.Get(LUTs)
	if !ok || v != 1200 {
		t.Fatalf("Get(LUTs) = %v,%v", v, ok)
	}
	if _, ok := m.Get("nonexistent"); ok {
		t.Error("Get(nonexistent) reported ok")
	}
}

func TestGetDerivedPeriod(t *testing.T) {
	m := sample()
	v, ok := m.Get(PeriodNS)
	if !ok || math.Abs(v-5.0) > 1e-12 {
		t.Fatalf("Get(PeriodNS) = %v,%v, want 5ns", v, ok)
	}
	// Explicit period wins over derivation.
	m[PeriodNS] = 7
	if v, _ := m.Get(PeriodNS); v != 7 {
		t.Errorf("explicit PeriodNS = %v, want 7", v)
	}
}

func TestGetRejectsNonFinite(t *testing.T) {
	m := Metrics{LUTs: math.NaN(), FmaxMHz: math.Inf(1)}
	if _, ok := m.Get(LUTs); ok {
		t.Error("NaN metric reported ok")
	}
	if _, ok := m.Get(FmaxMHz); ok {
		t.Error("Inf metric reported ok")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := sample()
	c := m.Clone()
	c[LUTs] = 1
	if m[LUTs] != 1200 {
		t.Error("Clone shares storage")
	}
}

func TestStringDeterministic(t *testing.T) {
	m := sample()
	if m.String() != m.String() {
		t.Error("String not deterministic")
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}

func TestObjectiveValuePlain(t *testing.T) {
	o := MinimizeMetric(LUTs)
	v, ok := o.Value(sample())
	if !ok || v != 1200 {
		t.Fatalf("Value = %v,%v", v, ok)
	}
	if o.String() != "min luts" {
		t.Errorf("String = %q", o.String())
	}
}

func TestObjectiveValueNilBag(t *testing.T) {
	o := MinimizeMetric(LUTs)
	if _, ok := o.Value(nil); ok {
		t.Error("Value(nil) reported ok")
	}
	if f := o.Fitness(nil); !math.IsInf(f, -1) {
		t.Errorf("Fitness(nil) = %v, want -Inf", f)
	}
}

func TestFitnessDirection(t *testing.T) {
	m := sample()
	if f := MinimizeMetric(LUTs).Fitness(m); f != -1200 {
		t.Errorf("minimize fitness = %v, want -1200", f)
	}
	if f := MaximizeMetric(FmaxMHz).Fitness(m); f != 200 {
		t.Errorf("maximize fitness = %v, want 200", f)
	}
}

func TestRatio(t *testing.T) {
	o := ThroughputPerLUT()
	v, ok := o.Value(sample())
	if !ok || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("throughput/LUT = %v,%v, want 0.5", v, ok)
	}
	// zero denominator
	if _, ok := o.Value(Metrics{ThroughputMSPS: 5, LUTs: 0}); ok {
		t.Error("ratio with zero denominator reported ok")
	}
	// missing numerator
	if _, ok := o.Value(Metrics{LUTs: 5}); ok {
		t.Error("ratio with missing numerator reported ok")
	}
}

func TestAreaDelayProduct(t *testing.T) {
	o := AreaDelayProduct()
	v, ok := o.Value(sample()) // 5ns * 1200 LUTs
	if !ok || math.Abs(v-6000) > 1e-9 {
		t.Fatalf("area-delay = %v,%v, want 6000", v, ok)
	}
	if o.Direction() != Minimize {
		t.Error("area-delay should minimize")
	}
}

func TestProductMissingOperand(t *testing.T) {
	f := Product(LUTs, "missing")
	if _, ok := f(sample()); ok {
		t.Error("product with missing operand reported ok")
	}
}

func TestBetterAndWorst(t *testing.T) {
	min := MinimizeMetric(LUTs)
	max := MaximizeMetric(FmaxMHz)
	if !min.Better(1, 2) || min.Better(2, 1) || min.Better(1, 1) {
		t.Error("Minimize.Better wrong")
	}
	if !max.Better(2, 1) || max.Better(1, 2) || max.Better(1, 1) {
		t.Error("Maximize.Better wrong")
	}
	if !math.IsInf(min.Worst(), 1) || !math.IsInf(max.Worst(), -1) {
		t.Error("Worst sentinels wrong")
	}
}

func TestDirectionString(t *testing.T) {
	if Minimize.String() != "min" || Maximize.String() != "max" {
		t.Error("Direction.String wrong")
	}
}

// Property: any feasible value beats Worst, and Better is a strict order
// (irreflexive, asymmetric) on distinct finite values.
func TestQuickBetterStrictOrder(t *testing.T) {
	for _, o := range []Objective{MinimizeMetric(LUTs), MaximizeMetric(LUTs)} {
		f := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return true
			}
			if !o.Better(a, o.Worst()) {
				return false
			}
			if o.Better(a, a) {
				return false
			}
			if a != b && o.Better(a, b) == o.Better(b, a) {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", o, err)
		}
	}
}

// Property: Fitness ordering always agrees with Better on the raw values.
func TestQuickFitnessAgreesWithBetter(t *testing.T) {
	for _, o := range []Objective{MinimizeMetric(LUTs), MaximizeMetric(LUTs)} {
		f := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return true
			}
			ma, mb := Metrics{LUTs: a}, Metrics{LUTs: b}
			return o.Better(a, b) == (o.Fitness(ma) > o.Fitness(mb))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", o, err)
		}
	}
}
