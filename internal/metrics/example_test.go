package metrics_test

import (
	"fmt"

	"nautilus/internal/metrics"
)

// Objectives turn characterization metrics into the scalar the search
// engines optimize, including composite and constrained forms.
func ExampleObjective() {
	m := metrics.Metrics{
		metrics.LUTs:           1200,
		metrics.FmaxMHz:        200,
		metrics.ThroughputMSPS: 600,
	}

	adp := metrics.AreaDelayProduct() // clock period (ns) x LUTs
	v, _ := adp.Value(m)
	fmt.Println("area-delay:", v)

	eff := metrics.ThroughputPerLUT()
	v, _ = eff.Value(m)
	fmt.Println("MSPS/LUT:", v)

	budgeted := metrics.MaximizeMetric(metrics.ThroughputMSPS).
		Constrained(metrics.AtMost(metrics.LUTs, 1000))
	_, feasible := budgeted.Value(m)
	fmt.Println("within 1000-LUT budget:", feasible)
	// Output:
	// area-delay: 6000
	// MSPS/LUT: 0.5
	// within 1000-LUT budget: false
}
