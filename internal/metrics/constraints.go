package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Constraint bounds one metric of a design. Min/Max of NaN (or zero value
// via the helpers) leave that side unbounded.
type Constraint struct {
	Metric string
	Min    float64
	Max    float64
}

// AtMost constrains a metric from above (e.g. LUT budget).
func AtMost(metric string, max float64) Constraint {
	return Constraint{Metric: metric, Min: math.Inf(-1), Max: max}
}

// AtLeast constrains a metric from below (e.g. minimum SNR).
func AtLeast(metric string, min float64) Constraint {
	return Constraint{Metric: metric, Min: min, Max: math.Inf(1)}
}

// Between bounds a metric on both sides.
func Between(metric string, min, max float64) Constraint {
	return Constraint{Metric: metric, Min: min, Max: max}
}

// Satisfied reports whether the bag meets the constraint. A missing metric
// fails the constraint.
func (c Constraint) Satisfied(m Metrics) bool {
	v, ok := m.Get(c.Metric)
	if !ok {
		return false
	}
	if !math.IsNaN(c.Min) && !math.IsInf(c.Min, -1) && v < c.Min {
		return false
	}
	if !math.IsNaN(c.Max) && !math.IsInf(c.Max, 1) && v > c.Max {
		return false
	}
	return true
}

// String renders e.g. "luts <= 2000" or "40 <= snr_db".
func (c Constraint) String() string {
	var parts []string
	if !math.IsNaN(c.Min) && !math.IsInf(c.Min, -1) {
		parts = append(parts, fmt.Sprintf("%g <= %s", c.Min, c.Metric))
	}
	if !math.IsNaN(c.Max) && !math.IsInf(c.Max, 1) {
		parts = append(parts, fmt.Sprintf("%s <= %g", c.Metric, c.Max))
	}
	if len(parts) == 0 {
		return c.Metric + " unconstrained"
	}
	return strings.Join(parts, ", ")
}

// Constrained returns an objective that behaves like o inside the feasible
// region and reports designs violating any constraint as valueless (so the
// search engines give them worst fitness). This implements the paper's
// observation that the fitness function "can be adapted to constrain the
// algorithm to only explore specific portions of the solution space".
func (o Objective) Constrained(cs ...Constraint) Objective {
	base := o
	name := o.name
	if len(cs) > 0 {
		descs := make([]string, len(cs))
		for i, c := range cs {
			descs[i] = c.String()
		}
		name = fmt.Sprintf("%s s.t. %s", o.name, strings.Join(descs, " and "))
	}
	return Objective{
		name:      name,
		direction: o.direction,
		derive: func(m Metrics) (float64, bool) {
			for _, c := range cs {
				if !c.Satisfied(m) {
					return 0, false
				}
			}
			return base.Value(m)
		},
	}
}
