// Package metrics defines the measured quantities that characterize a
// hardware design point (area, frequency, power, throughput, ...) and the
// optimization objectives built on top of them.
//
// An IP generator's characterization step produces a Metrics bag per design
// point; a Query (objective) converts a bag into a scalar fitness that the
// search engines maximize. Composite metrics such as throughput-per-LUT or
// area-delay product are expressed as derived objectives.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Metrics is a named bag of measured values for one design point.
type Metrics map[string]float64

// Standard metric names shared by the IP generators in this repository.
const (
	LUTs           = "luts"            // FPGA lookup tables
	BRAMs          = "brams"           // FPGA block RAMs
	FmaxMHz        = "fmax_mhz"        // maximum clock frequency, MHz
	PeriodNS       = "period_ns"       // minimum clock period, ns (derived from FmaxMHz)
	ThroughputMSPS = "throughput_msps" // million samples per second (FFT)
	SNRdB          = "snr_db"          // signal-to-noise ratio, dB (FFT)
	AreaMM2        = "area_mm2"        // ASIC silicon area, mm^2
	PowerMW        = "power_mw"        // ASIC power, mW
	BisectionGbps  = "bisection_gbps"  // peak network bisection bandwidth, Gbps
)

// Clone returns an independent copy of the bag.
func (m Metrics) Clone() Metrics {
	out := make(Metrics, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Get returns the named metric. PeriodNS is synthesized from FmaxMHz when not
// stored explicitly. ok is false when the metric is absent or not finite.
func (m Metrics) Get(name string) (v float64, ok bool) {
	if v, ok = m[name]; ok {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return v, true
	}
	if name == PeriodNS {
		if f, ok := m.Get(FmaxMHz); ok && f > 0 {
			return 1000 / f, true
		}
	}
	return 0, false
}

// String renders the bag deterministically (sorted by name).
func (m Metrics) String() string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.4g", k, m[k])
	}
	return b.String()
}

// Direction states whether an objective is minimized or maximized.
type Direction int

// Objective directions.
const (
	Minimize Direction = iota
	Maximize
)

// String returns "min" or "max".
func (d Direction) String() string {
	if d == Maximize {
		return "max"
	}
	return "min"
}

// Objective is a scalar optimization goal over a Metrics bag: either a plain
// named metric or a derived (composite) quantity, together with a direction.
type Objective struct {
	name      string
	direction Direction
	derive    func(Metrics) (float64, bool) // nil for plain metrics
}

// MinimizeMetric returns an objective minimizing the named metric.
func MinimizeMetric(name string) Objective {
	return Objective{name: name, direction: Minimize}
}

// MaximizeMetric returns an objective maximizing the named metric.
func MaximizeMetric(name string) Objective {
	return Objective{name: name, direction: Maximize}
}

// MinimizeDerived returns an objective minimizing a derived quantity.
func MinimizeDerived(name string, f func(Metrics) (float64, bool)) Objective {
	return Objective{name: name, direction: Minimize, derive: f}
}

// MaximizeDerived returns an objective maximizing a derived quantity.
func MaximizeDerived(name string, f func(Metrics) (float64, bool)) Objective {
	return Objective{name: name, direction: Maximize, derive: f}
}

// Ratio returns the derived quantity num/den, usable with
// Minimize/MaximizeDerived. ok is false if either operand is missing or the
// denominator is zero.
func Ratio(num, den string) func(Metrics) (float64, bool) {
	return func(m Metrics) (float64, bool) {
		n, okN := m.Get(num)
		d, okD := m.Get(den)
		if !okN || !okD || d == 0 {
			return 0, false
		}
		return n / d, true
	}
}

// Product returns the derived quantity formed by multiplying the named
// metrics, e.g. Product(PeriodNS, LUTs) is the paper's area-delay product.
func Product(names ...string) func(Metrics) (float64, bool) {
	return func(m Metrics) (float64, bool) {
		p := 1.0
		for _, n := range names {
			v, ok := m.Get(n)
			if !ok {
				return 0, false
			}
			p *= v
		}
		return p, true
	}
}

// AreaDelayProduct is the paper's Figure 5 composite metric:
// clock period (ns) x LUTs.
func AreaDelayProduct() Objective {
	return MinimizeDerived("area_delay", Product(PeriodNS, LUTs))
}

// ThroughputPerLUT is the paper's Figure 7 composite metric: MSPS / LUTs.
func ThroughputPerLUT() Objective {
	return MaximizeDerived("throughput_per_lut", Ratio(ThroughputMSPS, LUTs))
}

// Name returns the objective's metric (or derived-quantity) name.
func (o Objective) Name() string { return o.name }

// Direction returns the optimization direction.
func (o Objective) Direction() Direction { return o.direction }

// String renders e.g. "min luts" or "max throughput_per_lut".
func (o Objective) String() string {
	return o.direction.String() + " " + o.name
}

// Value extracts the raw objective value from the bag. ok is false when the
// underlying metrics are missing, non-finite, or the derivation fails.
func (o Objective) Value(m Metrics) (float64, bool) {
	if m == nil {
		return 0, false
	}
	if o.derive != nil {
		v, ok := o.derive(m)
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return v, true
	}
	return m.Get(o.name)
}

// Fitness converts the bag into a scalar to MAXIMIZE: the objective value
// itself when maximizing, its negation when minimizing. Missing or infeasible
// bags yield -Inf so they always rank last.
func (o Objective) Fitness(m Metrics) float64 {
	v, ok := o.Value(m)
	if !ok {
		return math.Inf(-1)
	}
	if o.direction == Minimize {
		return -v
	}
	return v
}

// Better reports whether objective value a is strictly preferable to b.
func (o Objective) Better(a, b float64) bool {
	if o.direction == Minimize {
		return a < b
	}
	return a > b
}

// Worst returns the sentinel objective value that any feasible value beats.
func (o Objective) Worst() float64 {
	if o.direction == Minimize {
		return math.Inf(1)
	}
	return math.Inf(-1)
}
