// Package core implements Nautilus, the paper's primary contribution: a
// genetic algorithm extended so that IP authors can embed design-space
// knowledge as hints that guide - but never fully constrain - the search.
//
// The hint vocabulary follows Section 3 of the paper:
//
//   - Importance (1..100, per parameter per metric): how strongly the
//     parameter is expected to affect the metric. Skews which genes are
//     picked for mutation.
//   - Importance decay (0..1, per parameter): lets importance differences
//     relax toward neutral as generations pass, shifting the search from
//     coarse navigation to fine-tuning.
//   - Bias (-1..1, per parameter per metric): the expected correlation
//     between the parameter's value and the metric. Skews the direction a
//     mutated gene moves.
//   - Target (a value, per parameter per metric): good solutions are known
//     to cluster near this value. Mutated genes sample near it. A parameter
//     may carry a bias or a target for a given metric, not both.
//   - Confidence (0..1, global): how much to trust the hints. 0 reproduces
//     the baseline GA; 1 approaches directed, gradient-descent-like search.
//   - Auxiliary settings: a mutation step bound per parameter, and ordering
//     relations that give categorical parameters a numeric axis (e.g.,
//     allocator variants ordered by expected clock frequency).
//
// Hints are applied probabilistically, preserving the GA's stochastic
// nature - the search remains free to explore the full space and to
// overcome regions where the author's intuition is wrong.
package core

import (
	"fmt"
	"math"
	"sort"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// Hint is the author guidance for one parameter with respect to one metric.
type Hint struct {
	// Importance in [1,100]; 0 means unset (neutral).
	Importance float64
	// ImportanceDecay in [0,1]: the per-generation rate at which this
	// parameter's importance differential relaxes toward neutral.
	ImportanceDecay float64
	// Bias in [-1,1]: expected correlation between the parameter's value
	// (along its numeric axis) and the metric. 0 means unset.
	Bias float64
	// Target is the value (on the parameter's numeric axis) near which good
	// solutions cluster; valid only when HasTarget.
	Target    float64
	HasTarget bool
	// Step bounds the mutation step along the numeric axis, in index units;
	// 0 means unset (engine default).
	Step int
}

// HintSet collects the author's hints about how the IP's parameters relate
// to one metric (e.g. "luts" or "fmax_mhz").
type HintSet struct {
	space  *param.Space
	metric string
	hints  []Hint
	orders [][]int // optional per-param value ordering (rank -> value index)
}

// NewHintSet creates an empty hint set for the given metric over the space.
func NewHintSet(space *param.Space, metric string) *HintSet {
	return &HintSet{
		space:  space,
		metric: metric,
		hints:  make([]Hint, space.Len()),
		orders: make([][]int, space.Len()),
	}
}

// Metric returns the metric this hint set describes.
func (h *HintSet) Metric() string { return h.metric }

func (h *HintSet) paramIndex(name string) int {
	i := h.space.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("core: unknown parameter %q", name))
	}
	return i
}

// SetImportance declares how strongly the named parameter affects the
// metric (1..100), with an optional decay rate (0..1) toward neutrality.
func (h *HintSet) SetImportance(name string, importance, decay float64) *HintSet {
	// Negated-range form so NaN (which fails every comparison) is rejected
	// rather than slipping through and poisoning the compiled weights.
	if !(importance >= 1 && importance <= 100) {
		panic(fmt.Sprintf("core: importance %v for %q outside [1,100]", importance, name))
	}
	if !(decay >= 0 && decay <= 1) {
		panic(fmt.Sprintf("core: importance decay %v for %q outside [0,1]", decay, name))
	}
	i := h.paramIndex(name)
	h.hints[i].Importance = importance
	h.hints[i].ImportanceDecay = decay
	return h
}

// SetBias declares the expected correlation (-1..1) between the named
// parameter and the metric. The parameter must have a numeric axis (be
// ordered, or have an ordering hint installed first via SetOrder).
func (h *HintSet) SetBias(name string, bias float64) *HintSet {
	if !(bias >= -1 && bias <= 1) { // negated form rejects NaN too
		panic(fmt.Sprintf("core: bias %v for %q outside [-1,1]", bias, name))
	}
	i := h.paramIndex(name)
	if h.hints[i].HasTarget {
		panic(fmt.Sprintf("core: parameter %q already has a target hint (bias and target are mutually exclusive)", name))
	}
	if !h.axisAvailable(i) {
		panic(fmt.Sprintf("core: parameter %q has no numeric axis; install an ordering hint first", name))
	}
	h.hints[i].Bias = bias
	return h
}

// SetTarget declares that good solutions cluster near the given value on
// the named parameter's numeric axis.
func (h *HintSet) SetTarget(name string, target float64) *HintSet {
	if math.IsNaN(target) || math.IsInf(target, 0) {
		panic(fmt.Sprintf("core: target %v for %q is not finite", target, name))
	}
	i := h.paramIndex(name)
	if h.hints[i].Bias != 0 {
		panic(fmt.Sprintf("core: parameter %q already has a bias hint (bias and target are mutually exclusive)", name))
	}
	if !h.axisAvailable(i) {
		panic(fmt.Sprintf("core: parameter %q has no numeric axis; install an ordering hint first", name))
	}
	h.hints[i].Target = target
	h.hints[i].HasTarget = true
	return h
}

// SetTargetChoice declares that good solutions cluster at the named
// categorical value. Works for any parameter kind.
func (h *HintSet) SetTargetChoice(name, value string) *HintSet {
	i := h.paramIndex(name)
	if h.hints[i].Bias != 0 {
		panic(fmt.Sprintf("core: parameter %q already has a bias hint (bias and target are mutually exclusive)", name))
	}
	vi := h.space.Param(i).IndexOf(value)
	if vi < 0 {
		panic(fmt.Sprintf("core: unknown value %q for parameter %q", value, name))
	}
	h.hints[i].Target = h.axisOf(i, vi)
	h.hints[i].HasTarget = true
	return h
}

// SetStep bounds the mutation step of the named parameter (in index units
// along its numeric axis) - the paper's auxiliary "stepping" setting.
func (h *HintSet) SetStep(name string, step int) *HintSet {
	if step < 1 {
		panic(fmt.Sprintf("core: step %d for %q must be >= 1", step, name))
	}
	h.hints[h.paramIndex(name)].Step = step
	return h
}

// SetOrder installs an ordering relation among the values of a categorical
// parameter, giving it a numeric axis for bias/target hints - the paper's
// auxiliary ordering setting (e.g., allocator options ordered by clock
// frequency). values must be a permutation of the parameter's values,
// listed from low to high.
func (h *HintSet) SetOrder(name string, values ...string) *HintSet {
	i := h.paramIndex(name)
	p := h.space.Param(i)
	if len(values) != p.Card() {
		panic(fmt.Sprintf("core: ordering for %q has %d values, want %d", name, len(values), p.Card()))
	}
	order := make([]int, len(values))
	seen := make(map[int]bool, len(values))
	for rank, v := range values {
		vi := p.IndexOf(v)
		if vi < 0 {
			panic(fmt.Sprintf("core: unknown value %q for parameter %q", v, name))
		}
		if seen[vi] {
			panic(fmt.Sprintf("core: duplicate value %q in ordering for %q", v, name))
		}
		seen[vi] = true
		order[rank] = vi
	}
	h.orders[i] = order
	return h
}

// axisAvailable reports whether parameter i has a numeric axis: natively
// ordered, or given an ordering hint.
func (h *HintSet) axisAvailable(i int) bool {
	return h.space.Param(i).IsOrdered() || h.orders[i] != nil
}

// axisOf maps value index vi of parameter i onto its numeric axis. For
// natively ordered parameters this is the parameter's numeric value; for
// ordering-hinted parameters it is the rank; for unordered parameters it is
// the raw index (only meaningful for exact-match targets).
func (h *HintSet) axisOf(i, vi int) float64 {
	if h.orders[i] != nil {
		for rank, idx := range h.orders[i] {
			if idx == vi {
				return float64(rank)
			}
		}
		return math.NaN()
	}
	if v, ok := h.space.Param(i).Numeric(vi); ok {
		return v
	}
	return float64(vi)
}

// Library is an IP author's complete hint package: one HintSet per metric
// the IP's characterization produces. It ships with the IP generator, as
// the paper prescribes.
type Library struct {
	space    *param.Space
	byMetric map[string]*HintSet
}

// NewLibrary creates an empty hint library for an IP's design space.
func NewLibrary(space *param.Space) *Library {
	return &Library{space: space, byMetric: make(map[string]*HintSet)}
}

// Space returns the library's design space.
func (l *Library) Space() *param.Space { return l.space }

// Metric returns the hint set for the named metric, creating it on first
// use.
func (l *Library) Metric(name string) *HintSet {
	hs, ok := l.byMetric[name]
	if !ok {
		hs = NewHintSet(l.space, name)
		l.byMetric[name] = hs
	}
	return hs
}

// Metrics returns the metric names that have hint sets.
func (l *Library) Metrics() []string {
	out := make([]string, 0, len(l.byMetric))
	for name := range l.byMetric {
		out = append(out, name)
	}
	return out
}

// Guidance compiles the library into an objective-oriented Guidance for a
// query. weights gives the sign and magnitude with which each hinted metric
// enters the objective value: positive when increasing the metric increases
// the objective value (e.g. minimizing period x LUTs uses
// {period_ns: 1, luts: 1} with direction Minimize; maximizing MSPS/LUT uses
// {throughput_msps: 1, luts: -1} with direction Maximize). Metrics without
// hint sets are ignored; if none of the weighted metrics have hints the
// Guidance degenerates to baseline behaviour.
func (l *Library) Guidance(dir metrics.Direction, weights map[string]float64, confidence float64) (*Guidance, error) {
	if !(confidence >= 0 && confidence <= 1) { // negated form rejects NaN too
		return nil, fmt.Errorf("core: confidence %v outside [0,1]", confidence)
	}
	g := newGuidance(l.space, confidence)

	// Objective orientation: when minimizing, a metric that increases the
	// objective value should be pushed down, so flip the sign.
	orient := 1.0
	if dir == metrics.Minimize {
		orient = -1
	}

	// Iterate hinted metrics in sorted name order so compilation is
	// deterministic regardless of map layout.
	names := make([]string, 0, len(weights))
	var totalW float64
	for name, w := range weights {
		if _, ok := l.byMetric[name]; ok {
			names = append(names, name)
			totalW += math.Abs(w)
		}
	}
	if totalW == 0 {
		return g, nil // no applicable hints: baseline behaviour
	}
	sort.Strings(names)

	for _, name := range names {
		hs := l.byMetric[name]
		w := weights[name]
		frac := math.Abs(w) / totalW
		for i := range hs.hints {
			hint := hs.hints[i]
			if hint.Importance > 0 {
				g.importance[i] += frac * hint.Importance
				g.decay[i] += frac * hint.ImportanceDecay
				g.impSet[i] = true
			}
			if hint.Bias != 0 {
				// Oriented bias: positive means increasing the parameter
				// (along its axis) is expected to improve the objective.
				// When two metrics installed different orderings for the
				// same categorical parameter, the first (sorted) order is
				// canonical and later biases are remapped onto it by the
				// rank correlation between the orderings.
				b := orient * sign(w) * frac * hint.Bias
				if hs.orders[i] != nil {
					if g.order[i] == nil {
						g.order[i] = hs.orders[i]
					} else {
						b *= orderAgreement(g.order[i], hs.orders[i])
					}
				}
				g.bias[i] += b
			}
			if hint.HasTarget && !g.hasTarget[i] {
				if hs.orders[i] != nil && g.order[i] != nil && !sameOrder(g.order[i], hs.orders[i]) {
					// The target was expressed as a rank along a different
					// ordering than the canonical one: translate it.
					rank := int(math.Round(hint.Target))
					if rank >= 0 && rank < len(hs.orders[i]) {
						vi := hs.orders[i][rank]
						for cr, cvi := range g.order[i] {
							if cvi == vi {
								hint.Target = float64(cr)
								break
							}
						}
					}
				}
				g.target[i] = hint.Target
				g.hasTarget[i] = true
				if hs.orders[i] != nil && g.order[i] == nil {
					g.order[i] = hs.orders[i]
				}
			}
			if hint.Step > 0 && (g.step[i] == 0 || hint.Step < g.step[i]) {
				g.step[i] = hint.Step
			}
		}
	}
	for i := range g.bias {
		g.bias[i] = clamp(g.bias[i], -1, 1)
		if g.bias[i] != 0 && g.hasTarget[i] {
			// Conflicting hints from different metrics: the paper forbids
			// bias and target on the same parameter; when a composite
			// objective merges sets that disagree, prefer the target (the
			// more specific hint) and drop the bias.
			g.bias[i] = 0
		}
		if !g.impSet[i] {
			g.importance[i] = 1 // neutral
		}
	}
	return g, nil
}

// GuidanceForObjective compiles guidance for a plain single-metric
// objective.
func (l *Library) GuidanceForObjective(obj metrics.Objective, confidence float64) (*Guidance, error) {
	return l.Guidance(obj.Direction(), map[string]float64{obj.Name(): 1}, confidence)
}

// orderAgreement is the Spearman correlation between two orderings of the
// same value set: 1 for identical, -1 for reversed, near 0 for unrelated.
func orderAgreement(a, b []int) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 1
	}
	rankB := make(map[int]int, n)
	for r, vi := range b {
		rankB[vi] = r
	}
	// Pearson correlation of the rank sequences.
	mean := float64(n-1) / 2
	var sxy, sxx float64
	for ra, vi := range a {
		dx := float64(ra) - mean
		dy := float64(rankB[vi]) - mean
		sxy += dx * dy
		sxx += dx * dx
	}
	if sxx == 0 {
		return 1
	}
	return sxy / sxx
}

func sameOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
