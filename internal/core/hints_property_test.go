package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"nautilus/internal/metrics"
)

// Property-based checks for the hint validation contract: every documented
// range (importance 1..100, decay 0..1, bias -1..1, confidence 0..1) is
// enforced for ALL float64 inputs - including NaN and the infinities, which
// plain `v < lo || v > hi` comparisons silently accept - and the clamping
// paths are idempotent.

// hintPropRuns is deliberately high: the generator below mixes boundary
// values, near-boundary ULPs, and non-finite floats, so each run is cheap
// and the extra iterations buy real edge coverage.
const hintPropRuns = 2000

// drawRangeFloat produces floats concentrated where range validation can go
// wrong: exact boundaries, one ULP either side of them, small in-range and
// out-of-range magnitudes, huge magnitudes, and non-finite values.
func drawRangeFloat(r *rand.Rand) float64 {
	boundaries := []float64{-1, 0, 1, 100}
	switch r.Intn(10) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1 - 2*r.Intn(2))
	case 2:
		return boundaries[r.Intn(len(boundaries))]
	case 3: // one ULP outside or inside a boundary
		b := boundaries[r.Intn(len(boundaries))]
		return math.Nextafter(b, float64(1-2*r.Intn(2))*math.Inf(1))
	case 4:
		return (r.Float64() - 0.5) * 4 // dense around [-2,2]
	case 5:
		return r.Float64() * 200 // dense around [0,200]
	case 6:
		return -r.Float64() * 200
	default:
		return (r.Float64() - 0.5) * 2e6
	}
}

// rangeFloatValues is a quick.Config generator filling every argument from
// drawRangeFloat.
func rangeFloatValues(args []reflect.Value, r *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(drawRangeFloat(r))
	}
}

func hintPropConfig() *quick.Config {
	return &quick.Config{MaxCount: hintPropRuns, Values: rangeFloatValues}
}

// panicked runs fn and reports whether it panicked.
func panicked(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

func inRange(v, lo, hi float64) bool { return v >= lo && v <= hi }

// TestQuickImportanceRange: SetImportance accepts exactly the documented
// ranges - importance in [1,100] and decay in [0,1] - and panics on
// everything else, NaN included.
func TestQuickImportanceRange(t *testing.T) {
	prop := func(imp, decay float64) bool {
		got := panicked(func() {
			NewHintSet(hintSpace(), "luts").SetImportance("depth", imp, decay)
		})
		want := !inRange(imp, 1, 100) || !inRange(decay, 0, 1)
		if got != want {
			t.Logf("importance=%v decay=%v: panicked=%v want=%v", imp, decay, got, want)
		}
		return got == want
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickBiasRange: SetBias accepts exactly [-1,1] on an ordered
// parameter and panics on everything else.
func TestQuickBiasRange(t *testing.T) {
	prop := func(bias float64) bool {
		got := panicked(func() {
			NewHintSet(hintSpace(), "luts").SetBias("width", bias)
		})
		want := !inRange(bias, -1, 1)
		if got != want {
			t.Logf("bias=%v: panicked=%v want=%v", bias, got, want)
		}
		return got == want
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickTargetFinite: SetTarget accepts any finite value (targets live on
// the parameter's own axis, which has no fixed bound) and panics on NaN and
// the infinities.
func TestQuickTargetFinite(t *testing.T) {
	prop := func(target float64) bool {
		got := panicked(func() {
			NewHintSet(hintSpace(), "luts").SetTarget("depth", target)
		})
		want := math.IsNaN(target) || math.IsInf(target, 0)
		return got == want
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickConfidenceRange: Library.Guidance returns an error for exactly
// the confidences outside [0,1]; accepted compilations never panic.
func TestQuickConfidenceRange(t *testing.T) {
	lib := NewLibrary(hintSpace())
	lib.Metric("luts").SetImportance("depth", 40, 0.2).SetBias("width", -0.5)
	prop := func(conf float64) bool {
		g, err := lib.Guidance(metrics.Minimize, map[string]float64{"luts": 1}, conf)
		if !inRange(conf, 0, 1) {
			return err != nil && g == nil
		}
		return err == nil && g != nil && g.Confidence() == conf
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickWithConfidenceClamp: WithConfidence clamps every float64 into
// [0,1] (NaN collapses to 0), and clamping is idempotent - re-applying the
// already-clamped confidence changes nothing.
func TestQuickWithConfidenceClamp(t *testing.T) {
	lib := NewLibrary(hintSpace())
	lib.Metric("luts").SetImportance("depth", 40, 0.2)
	base, err := lib.Guidance(metrics.Minimize, map[string]float64{"luts": 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(c float64) bool {
		once := base.WithConfidence(c).Confidence()
		if !inRange(once, 0, 1) {
			t.Logf("WithConfidence(%v) escaped [0,1]: %v", c, once)
			return false
		}
		return base.WithConfidence(once).Confidence() == once
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickClampIdempotent: the clamp helper is idempotent and bounding for
// every float64 (NaN stays NaN - callers guard it explicitly).
func TestQuickClampIdempotent(t *testing.T) {
	prop := func(x float64) bool {
		c := clamp(x, -1, 1)
		if math.IsNaN(x) {
			return math.IsNaN(c)
		}
		return inRange(c, -1, 1) && clamp(c, -1, 1) == c
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickLoadLibraryRange: the JSON loader enforces the same ranges as
// the builder API, for any finite triple of importance/decay/bias values.
// A zero importance or bias means "unset", so its range (and for
// importance, the decay) is not checked - matching SaveJSON, which omits
// unset hints.
func TestQuickLoadLibraryRange(t *testing.T) {
	jnum := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	prop := func(imp, decay, bias float64) bool {
		if math.IsNaN(imp) || math.IsInf(imp, 0) ||
			math.IsNaN(decay) || math.IsInf(decay, 0) ||
			math.IsNaN(bias) || math.IsInf(bias, 0) {
			return true // not representable in JSON
		}
		doc := fmt.Sprintf(
			`{"metrics":{"luts":{"depth":{"importance":%s,"decay":%s},"width":{"bias":%s}}}}`,
			jnum(imp), jnum(decay), jnum(bias))
		lib, err := LoadLibrary(hintSpace(), strings.NewReader(doc))
		wantErr := (imp != 0 && (!inRange(imp, 1, 100) || !inRange(decay, 0, 1))) ||
			(bias != 0 && !inRange(bias, -1, 1))
		if wantErr {
			return err != nil && lib == nil
		}
		if err != nil {
			t.Logf("in-range library rejected (imp=%v decay=%v bias=%v): %v", imp, decay, bias, err)
			return false
		}
		// Accepted libraries must compile without panicking.
		_, gerr := lib.Guidance(metrics.Minimize, map[string]float64{"luts": 1}, 0.8)
		return gerr == nil
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickCompiledBiasClamped: however many metrics contribute bias to the
// same parameter, and whatever the objective weights, the compiled
// per-parameter bias lands in [-1,1] and recompiling is deterministic -
// clamping at compile time, applied again, changes nothing.
func TestQuickCompiledBiasClamped(t *testing.T) {
	prop := func(b1, b2, b3, w1, w2, w3 float64) bool {
		// Squash hint biases into their legal range and weights into a
		// modest span; the property is about what compilation produces.
		squash := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return clamp(v, -1, 1)
		}
		weight := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
				return 1
			}
			return clamp(v, -8, 8)
		}
		lib := NewLibrary(hintSpace())
		lib.Metric("luts").SetBias("width", squash(b1))
		lib.Metric("fmax_mhz").SetBias("width", squash(b2))
		lib.Metric("power_mw").SetBias("width", squash(b3))
		weights := map[string]float64{
			"luts":     weight(w1),
			"fmax_mhz": weight(w2),
			"power_mw": weight(w3),
		}
		g, err := lib.Guidance(metrics.Minimize, weights, 0.9)
		if err != nil {
			t.Logf("compile failed: %v", err)
			return false
		}
		for i := 0; i < hintSpace().Len(); i++ {
			if !inRange(g.Bias(i), -1, 1) {
				t.Logf("compiled bias[%d]=%v escaped [-1,1]", i, g.Bias(i))
				return false
			}
		}
		// Deterministic recompilation: same library, same weights, same
		// compiled guidance.
		g2, err := lib.Guidance(metrics.Minimize, weights, 0.9)
		if err != nil {
			return false
		}
		return g.Describe() == g2.Describe()
	}
	if err := quick.Check(prop, hintPropConfig()); err != nil {
		t.Error(err)
	}
}
