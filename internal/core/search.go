package core

import (
	"context"
	"fmt"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/resilience"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Search modes. The zero value is ModeScalar, the paper's single-objective
// guided GA.
const (
	// ModeScalar optimizes the single req.Objective (the default).
	ModeScalar = "scalar"
	// ModePareto optimizes req.Objectives (two or more) simultaneously with
	// NSGA-II-style non-dominated sorting and crowding-distance selection;
	// the Result carries the full non-dominated Front plus its Hypervolume
	// (two objectives) alongside the primary-best scalar fields.
	ModePareto = "pareto"
	// ModePortfolio races the guided GA, the unguided baseline GA, and
	// simulated annealing concurrently over one shared dedup cache, merging
	// deterministically; Result.Portfolio reports each strategy's outcome.
	ModePortfolio = "portfolio"
)

// SearchRequest names everything a Nautilus search needs: the
// characterized space, the objective (or objective vector), exactly one
// evaluator form, and the GA scale. Cross-cutting concerns - guidance,
// telemetry, resilience, batching, checkpointing - attach as SearchOptions
// rather than widening this struct or the Search signature.
type SearchRequest struct {
	// Space is the design space to search.
	Space *param.Space
	// Mode selects the search shape: ModeScalar ("" or "scalar", the
	// default), ModePareto, or ModePortfolio.
	Mode string
	// Objective scores evaluated metrics (scalar and portfolio modes).
	Objective metrics.Objective
	// Objectives is the multi-objective vector for ModePareto (two or
	// more; Objectives[0] is the primary objective that scalar reporting
	// fields describe). Must be empty in the other modes, where the single
	// Objective field applies.
	Objectives []metrics.Objective
	// Evaluate characterizes one design point. Exactly one of Evaluate and
	// EvaluateCtx must be set.
	Evaluate dataset.Evaluator
	// EvaluateCtx is the context-aware evaluator form: per-evaluation
	// deadlines and run-level cancellation reach the underlying tool run.
	EvaluateCtx dataset.ContextEvaluator
	// Config is the GA scale and operator configuration. Options layered on
	// top of the request (WithRecorder, WithBatchSize, ...) take precedence
	// over the corresponding Config fields.
	Config ga.Config
}

// SearchOption customizes one Search call.
type SearchOption func(*searchConfig)

type searchConfig struct {
	guidance  *Guidance
	policy    *resilience.Policy
	registry  *telemetry.Registry
	overrides []func(*ga.Config)
}

// WithGuidance applies hint-guided mutation (nil or zero-confidence
// guidance degrades to the unguided baseline). When a recorder is active,
// the run is handed a recording copy of g; the caller's guidance is never
// mutated.
func WithGuidance(g *Guidance) SearchOption {
	return func(c *searchConfig) { c.guidance = g }
}

// WithRecorder attaches structured run telemetry (generations,
// evaluations, cache lookups, pool scheduling, hint applications).
// Recording is observational only: results are byte-identical with it on
// or off.
func WithRecorder(rec telemetry.Recorder) SearchOption {
	return func(c *searchConfig) {
		if rec != nil {
			c.override(func(cfg *ga.Config) { cfg.Recorder = rec })
		}
	}
}

// WithTracer attaches span-based latency tracing: per-generation
// ga.generation spans with dispatch/selection/crossover/mutation phases,
// the cache's batch-resolve phases, and - when a resilience policy is
// also attached and its own Tracer is unset - supervisor attempt/backoff
// spans. Like recording, tracing is observational only: span identity
// comes from the tracer's own seeded stream, never the run RNG, so
// results are byte-identical with tracing on or off.
func WithTracer(tr *trace.Tracer) SearchOption {
	return func(c *searchConfig) {
		if tr != nil {
			c.override(func(cfg *ga.Config) { cfg.Tracer = tr })
		}
	}
}

// WithResilience wraps the evaluator in a resilience.Supervisor built from
// policy: per-attempt deadlines, bounded seeded-jitter retries, and the
// quarantine circuit breaker. reg (optional) receives the supervisor's
// counters. Callers that need the supervisor afterwards (e.g. to list
// Quarantined points) should construct it themselves and pass its
// Evaluator as EvaluateCtx instead.
func WithResilience(policy resilience.Policy, reg *telemetry.Registry) SearchOption {
	return func(c *searchConfig) {
		p := policy
		c.policy, c.registry = &p, reg
	}
}

// WithBatchSize caps how many individuals each evaluation batch carries
// (0 = the whole generation, the default). Results are identical at any
// batch size.
func WithBatchSize(n int) SearchOption {
	return func(c *searchConfig) {
		c.override(func(cfg *ga.Config) { cfg.BatchSize = n })
	}
}

// WithDispatch selects the evaluation dispatch mode: ga.DispatchBatch (the
// default) or ga.DispatchSingle (the legacy point-at-a-time path, kept for
// comparison).
func WithDispatch(mode string) SearchOption {
	return func(c *searchConfig) {
		c.override(func(cfg *ga.Config) { cfg.Dispatch = mode })
	}
}

// WithKeyMode selects how the run's cache identifies design points:
// ga.KeyModeHash (the default - 64-bit genome hashes, no string key on the
// hot path) or ga.KeyModeString (the legacy canonical-key representation,
// kept for comparison). Results and checkpoints are byte-identical across
// modes.
func WithKeyMode(mode string) SearchOption {
	return func(c *searchConfig) {
		c.override(func(cfg *ga.Config) { cfg.KeyMode = mode })
	}
}

// WithBatchBackend routes each generation's residual cache misses to b as
// whole batches (see dataset.Cache.SetBatchBackend).
func WithBatchBackend(b dataset.BatchEvaluator) SearchOption {
	return func(c *searchConfig) {
		c.override(func(cfg *ga.Config) { cfg.BatchBackend = b })
	}
}

// WithCheckpoint saves a resumable snapshot through save every `every`
// generations (and once more on cancellation).
func WithCheckpoint(save func(*ga.Snapshot) error, every int) SearchOption {
	return func(c *searchConfig) {
		c.override(func(cfg *ga.Config) {
			cfg.Checkpoint = save
			cfg.CheckpointEvery = every
		})
	}
}

// WithMigration makes the run one island of an island-model search: every
// m.Interval generations its best genomes travel through m.Exchange and
// the returned immigrants join the population (see ga.Migration for the
// determinism contract). nil is a no-op.
func WithMigration(m *ga.Migration) SearchOption {
	return func(c *searchConfig) {
		if m != nil {
			c.override(func(cfg *ga.Config) { cfg.Migration = m })
		}
	}
}

// WithResume starts the run from a previously checkpointed snapshot.
func WithResume(snap *ga.Snapshot) SearchOption {
	return func(c *searchConfig) {
		c.override(func(cfg *ga.Config) { cfg.Resume = snap })
	}
}

// override queues a ga.Config mutation applied after the request's Config
// is copied, so options win over request fields.
func (c *searchConfig) override(f func(*ga.Config)) {
	c.overrides = append(c.overrides, f)
}

// Search executes one Nautilus search described by req: a (by default
// batched) GA over req.Space under req.Config, optionally guided,
// supervised, and recorded via opts. It is the single entry point an IP
// generator embeds; Run, RunContext, and RunBaseline are thin deprecated
// wrappers over it. req.Mode widens the shape - ModePareto swaps in
// NSGA-II selection over req.Objectives, ModePortfolio races three
// strategies over one shared dedup cache - without changing the signature
// or the determinism contract.
//
// Canceling ctx stops the search at the next evaluation boundary; with a
// checkpoint configured the engine writes a final snapshot first and the
// returned Result has Interrupted set.
func Search(ctx context.Context, req SearchRequest, opts ...SearchOption) (ga.Result, error) {
	var sc searchConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&sc)
		}
	}

	eval := req.EvaluateCtx
	switch {
	case req.Evaluate != nil && req.EvaluateCtx != nil:
		return ga.Result{}, fmt.Errorf("core: SearchRequest sets both Evaluate and EvaluateCtx")
	case req.Evaluate != nil:
		eval = dataset.AdaptContext(req.Evaluate)
	case req.EvaluateCtx == nil:
		return ga.Result{}, fmt.Errorf("core: SearchRequest needs an evaluator")
	}

	cfg := req.Config
	for _, f := range sc.overrides {
		f(&cfg)
	}
	if sc.policy != nil {
		p := *sc.policy
		if p.Tracer == nil {
			p.Tracer = cfg.Tracer
		}
		sup, err := resilience.NewSupervisor(req.Space, eval, p, sc.registry)
		if err != nil {
			return ga.Result{}, err
		}
		eval = sup.Evaluate
	}

	switch req.Mode {
	case "", ModeScalar:
		if len(req.Objectives) > 0 {
			return ga.Result{}, fmt.Errorf("core: Objectives requires Mode %q (got %q)", ModePareto, req.Mode)
		}
	case ModePareto:
		engine, err := ga.NewMultiContext(req.Space, req.Objectives, eval, cfg, sc.strategy(&cfg))
		if err != nil {
			return ga.Result{}, err
		}
		return engine.RunContext(ctx)
	case ModePortfolio:
		if len(req.Objectives) > 0 {
			return ga.Result{}, fmt.Errorf("core: Objectives requires Mode %q (got %q)", ModePareto, ModePortfolio)
		}
		return searchPortfolio(ctx, req, eval, cfg, &sc)
	default:
		return ga.Result{}, fmt.Errorf("core: unknown search mode %q", req.Mode)
	}

	engine, err := ga.NewContext(req.Space, req.Objective, eval, cfg, sc.strategy(&cfg))
	if err != nil {
		return ga.Result{}, err
	}
	return engine.RunContext(ctx)
}

// strategy resolves the run's mutation strategy: the configured guidance
// (wrapped with the recorder when one is active) or nil for the unguided
// baseline.
func (c *searchConfig) strategy(cfg *ga.Config) ga.Strategy {
	g := c.guidance
	if g == nil {
		return nil
	}
	if cfg.Recorder != nil {
		g = g.WithRecorder(cfg.Recorder)
	}
	return g
}
