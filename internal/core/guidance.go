package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

// Guidance is a hint library compiled against one optimization query. It
// implements ga.Strategy, replacing the baseline's uniform mutation
// operators with hint-weighted ones:
//
//   - gene selection draws mutation victims with probability blended
//     between uniform (weight 1-confidence) and importance-proportional
//     (weight confidence), where importance decays per generation;
//   - value assignment follows the oriented bias or target with
//     probability confidence, and falls back to the baseline's uniform
//     draw otherwise.
//
// Confidence 0 therefore reproduces the baseline GA exactly in
// distribution, and the engine remains able to visit any point of the
// space at any confidence < 1.
type Guidance struct {
	space      *param.Space
	confidence float64
	// rec observes each guided-mutation decision (which mechanism fired,
	// and the confidence-gate outcome) after the engine's RNG has already
	// made it - the paper's Table 1 hints, now measurable per run. Never
	// nil; telemetry.Nop by default.
	rec telemetry.Recorder

	importance []float64 // base importance per parameter (neutral = 1)
	impSet     []bool
	decay      []float64
	bias       []float64 // oriented: >0 means increasing the axis improves the objective
	target     []float64 // on the parameter's numeric axis
	hasTarget  []bool
	step       []int   // max mutation step (0 = unset)
	order      [][]int // rank -> value index for ordering-hinted categorical params
}

func newGuidance(space *param.Space, confidence float64) *Guidance {
	n := space.Len()
	return &Guidance{
		space:      space,
		confidence: confidence,
		rec:        telemetry.Nop,
		importance: make([]float64, n),
		impSet:     make([]bool, n),
		decay:      make([]float64, n),
		bias:       make([]float64, n),
		target:     make([]float64, n),
		hasTarget:  make([]bool, n),
		step:       make([]int, n),
		order:      make([][]int, n),
	}
}

// Confidence returns the guidance's global trust level.
func (g *Guidance) Confidence() float64 { return g.confidence }

// WithConfidence returns a copy of the guidance with a different confidence
// - the single knob separating the paper's "weakly guided" and "strongly
// guided" configurations.
func (g *Guidance) WithConfidence(c float64) *Guidance {
	out := *g
	if math.IsNaN(c) {
		c = 0 // NaN trust is no trust; clamp would pass NaN through
	}
	out.confidence = clamp(c, 0, 1)
	return &out
}

// WithRecorder returns a copy of the guidance reporting hint-application
// events to rec (nil restores the no-op default). The copy shares the
// compiled hint tables; core.Run uses this to give each engine its own
// recorded view of a guidance shared across concurrent trials.
func (g *Guidance) WithRecorder(rec telemetry.Recorder) *Guidance {
	out := *g
	out.rec = telemetry.OrNop(rec)
	return &out
}

// Bias returns the oriented bias compiled for parameter i (positive means
// increasing the parameter's axis is expected to improve the objective).
func (g *Guidance) Bias(i int) float64 { return g.bias[i] }

// ImportanceAt returns parameter i's effective importance at the given
// generation, after decay toward the neutral value 1.
func (g *Guidance) ImportanceAt(i, gen int) float64 {
	imp := g.importance[i]
	if imp <= 1 {
		return 1
	}
	d := g.decay[i]
	if d <= 0 || gen <= 0 {
		return imp
	}
	return 1 + (imp-1)*math.Pow(1-d, float64(gen))
}

// MutationGenes implements ga.Strategy. The number of mutations matches the
// baseline in distribution (one coin per gene at the configured rate); which
// genes receive them is drawn from the importance-blended distribution.
func (g *Guidance) MutationGenes(r *rand.Rand, gen int, genome param.Point, rate float64) []int {
	n := 0
	for range genome {
		if r.Float64() < rate {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if n > len(genome) {
		n = len(genome)
	}

	// Blended selection weights.
	weights := make([]float64, len(genome))
	var impSum float64
	for i := range weights {
		weights[i] = g.ImportanceAt(i, gen)
		impSum += weights[i]
	}
	uniform := 1.0 / float64(len(genome))
	for i := range weights {
		weights[i] = (1-g.confidence)*uniform + g.confidence*weights[i]/impSum
	}

	// Weighted sampling without replacement.
	picked := make([]int, 0, n)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for len(picked) < n && total > 1e-12 {
		x := r.Float64() * total
		for i, w := range weights {
			if w == 0 {
				continue
			}
			x -= w
			if x <= 0 {
				picked = append(picked, i)
				total -= w
				weights[i] = 0
				break
			}
		}
	}
	if g.rec.Enabled() {
		// Gene-pick blending is continuous rather than gated, so classify
		// each pick by whether an importance skew was actually in effect
		// for that gene at this generation (hint set, not fully decayed,
		// confidence > 0); the complement is an effectively uniform pick.
		for _, i := range picked {
			mech := telemetry.HintGeneUniform
			if g.confidence > 0 && g.ImportanceAt(i, gen) > 1 {
				mech = telemetry.HintGeneImportance
			}
			g.rec.RecordHint(telemetry.HintRecord{Generation: gen, Gene: i, Mechanism: mech})
		}
	}
	return picked
}

// axisRank returns gene value vi's position along parameter i's working
// axis (0..card-1), and whether such an axis exists. Natively ordered
// parameters use their index order (which coincides with their numeric
// order); ordering-hinted categoricals use the hint's ranks.
func (g *Guidance) axisRank(i, vi int) (int, bool) {
	if g.order[i] != nil {
		for rank, idx := range g.order[i] {
			if idx == vi {
				return rank, true
			}
		}
		return 0, false
	}
	if g.space.Param(i).IsOrdered() {
		return vi, true
	}
	return 0, false
}

// valueAtRank is the inverse of axisRank.
func (g *Guidance) valueAtRank(i, rank int) int {
	if g.order[i] != nil {
		return g.order[i][rank]
	}
	return rank
}

// targetRank returns the axis rank closest to parameter i's target.
func (g *Guidance) targetRank(i int) int {
	p := g.space.Param(i)
	if g.order[i] != nil {
		// Target was stored as a rank by SetTargetChoice.
		rank := int(math.Round(g.target[i]))
		return int(clamp(float64(rank), 0, float64(p.Card()-1)))
	}
	if p.IsOrdered() {
		return p.NearestIndex(g.target[i])
	}
	// Unordered without ordering hint: target is a raw value index.
	return int(clamp(math.Round(g.target[i]), 0, float64(p.Card()-1)))
}

// MutateValue implements ga.Strategy: guided value assignment.
func (g *Guidance) MutateValue(r *rand.Rand, gen int, i, current int) int {
	p := g.space.Param(i)
	card := p.Card()
	if card <= 1 {
		return current
	}

	guided := r.Float64() < g.confidence
	if guided && g.hasTarget[i] {
		g.rec.RecordHint(telemetry.HintRecord{
			Generation: gen, Gene: i, Mechanism: telemetry.HintValueTarget, Guided: true,
		})
		return g.mutateTowardTarget(r, i, current)
	}
	if guided && g.bias[i] != 0 {
		if v, ok := g.mutateAlongBias(r, i, current); ok {
			g.rec.RecordHint(telemetry.HintRecord{
				Generation: gen, Gene: i, Mechanism: telemetry.HintValueBias, Guided: true,
			})
			return v
		}
	}
	// Baseline fallback: uniform different value. Guided carries the
	// confidence-gate outcome even here, so gate-open-but-deferred moves
	// (weak bias, no hint for this gene) are distinguishable from
	// gate-closed ones.
	g.rec.RecordHint(telemetry.HintRecord{
		Generation: gen, Gene: i, Mechanism: telemetry.HintValueUniform, Guided: guided,
	})
	v := r.Intn(card - 1)
	if v >= current {
		v++
	}
	return v
}

// geometricStep draws a step size >= 1 with P(s) halving per increment,
// capped by the parameter's step hint (if any) and the axis length.
func (g *Guidance) geometricStep(r *rand.Rand, i, maxStep int) int {
	s := 1
	for s < maxStep && r.Float64() < 0.5 {
		s++
	}
	if hint := g.step[i]; hint > 0 && s > hint {
		s = hint
	}
	return s
}

// mutateTowardTarget samples a value clustered around the target rank.
func (g *Guidance) mutateTowardTarget(r *rand.Rand, i, current int) int {
	p := g.space.Param(i)
	card := p.Card()
	tr := g.targetRank(i)

	// Offset from the target: 0 with probability ~0.65, then decaying -
	// tight enough that low-cardinality parameters actually cluster.
	off := 0
	for off < card-1 && r.Float64() < 0.35 {
		off++
	}
	if hint := g.step[i]; hint > 0 && off > hint {
		off = hint
	}
	if off > 0 && r.Intn(2) == 1 {
		off = -off
	}
	rank := int(clamp(float64(tr+off), 0, float64(card-1)))
	v := g.valueAtRank(i, rank)
	if v != current {
		return v
	}
	// Nudge one rank toward (or past) the target to guarantee movement.
	curRank, ok := g.axisRank(i, current)
	if !ok {
		curRank = rank
	}
	switch {
	case curRank < tr:
		rank = curRank + 1
	case curRank > tr:
		rank = curRank - 1
	case curRank+1 < card:
		rank = curRank + 1
	default:
		rank = curRank - 1
	}
	return g.valueAtRank(i, rank)
}

// mutateAlongBias moves the gene along the oriented bias direction with
// probability |bias|; it reports ok=false when no axis exists or the bias
// gate defers to uniform. A gene already pinned at the favorable boundary
// takes a minimal step inward instead - guided search explores locally
// around a converged gene rather than teleporting it (the (1-confidence)
// and (1-|bias|) uniform paths preserve full reachability).
func (g *Guidance) mutateAlongBias(r *rand.Rand, i, current int) (int, bool) {
	curRank, ok := g.axisRank(i, current)
	if !ok {
		return 0, false
	}
	b := g.bias[i]
	if r.Float64() >= math.Abs(b) {
		return 0, false // probabilistic: weak biases mostly defer to uniform
	}
	card := g.space.Param(i).Card()
	dir := 1
	if b < 0 {
		dir = -1
	}
	maxStep := card - 1
	s := g.geometricStep(r, i, maxStep)
	rank := curRank + dir*s
	if rank < 0 {
		rank = 0
	}
	if rank > card-1 {
		rank = card - 1
	}
	if rank == curRank {
		// Pinned at the favorable boundary: minimal inward step.
		rank = curRank - dir
		if rank < 0 || rank > card-1 {
			return 0, false
		}
	}
	return g.valueAtRank(i, rank), true
}

// Describe renders the compiled per-parameter guidance as a human-readable
// multi-line summary - what an IP user sees when asking "how is this
// search being steered?".
func (g *Guidance) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confidence %.2f\n", g.confidence)
	for i := 0; i < g.space.Len(); i++ {
		p := g.space.Param(i)
		fmt.Fprintf(&b, "  %-16s importance %5.1f", p.Name(), g.importance[i])
		if g.decay[i] > 0 {
			fmt.Fprintf(&b, " (decay %.2f)", g.decay[i])
		}
		switch {
		case g.hasTarget[i]:
			fmt.Fprintf(&b, "  target %.4g", g.target[i])
		case g.bias[i] != 0:
			fmt.Fprintf(&b, "  bias %+.2f", g.bias[i])
		}
		if g.step[i] > 0 {
			fmt.Fprintf(&b, "  step<=%d", g.step[i])
		}
		if g.order[i] != nil {
			vals := make([]string, len(g.order[i]))
			for rank, vi := range g.order[i] {
				vals[rank] = p.StringValue(vi)
			}
			fmt.Fprintf(&b, "  order %s", strings.Join(vals, "<"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
