package core

import (
	"bytes"
	"strings"
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func persistSpace() *param.Space {
	return param.MustSpace(
		param.Int("depth", 1, 16, 1),
		param.Levels("width", 8, 16, 32, 64),
		param.Choice("alloc", "a", "b", "c"),
		param.Flag("spec"),
	)
}

func persistLibrary(s *param.Space) *Library {
	lib := NewLibrary(s)
	lib.Metric(metrics.LUTs).
		SetImportance("depth", 80, 0.05).SetBias("depth", 0.9).
		SetImportance("width", 60, 0).SetTarget("width", 16).
		SetOrder("alloc", "c", "a", "b").SetBias("alloc", 0.4).
		SetStep("depth", 2)
	lib.Metric(metrics.FmaxMHz).
		SetImportance("spec", 40, 0).SetTargetChoice("spec", "on")
	return lib
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := persistSpace()
	lib := persistLibrary(s)
	var buf bytes.Buffer
	if err := lib.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLibrary(s, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Compiled guidance must be identical for both single-metric queries.
	for _, obj := range []metrics.Objective{
		metrics.MinimizeMetric(metrics.LUTs),
		metrics.MaximizeMetric(metrics.FmaxMHz),
	} {
		g1, err := lib.GuidanceForObjective(obj, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := loaded.GuidanceForObjective(obj, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if g1.Describe() != g2.Describe() {
			t.Errorf("%v: guidance differs after round trip:\n%s\nvs\n%s", obj, g1.Describe(), g2.Describe())
		}
	}
	// Second save must be byte-identical (deterministic serialization).
	var buf2 bytes.Buffer
	if err := loaded.SaveJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("serialization not stable across a round trip")
	}
}

func TestSaveJSONShape(t *testing.T) {
	s := persistSpace()
	var buf bytes.Buffer
	if err := persistLibrary(s).SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"luts"`, `"fmax_mhz"`, `"depth"`, `"order"`, `"target"`, `"bias": 0.9`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	// Unhinted parameters are omitted entirely.
	if strings.Contains(out, `"spec"`) && !strings.Contains(out, `"fmax_mhz"`) {
		t.Error("spec should only appear under fmax_mhz")
	}
}

func TestLoadLibraryRejectsGarbage(t *testing.T) {
	s := persistSpace()
	cases := map[string]string{
		"not json":          `{`,
		"unknown field":     `{"metrics":{},"extra":1}`,
		"unknown parameter": `{"metrics":{"luts":{"nope":{"bias":0.5}}}}`,
		"bias out of range": `{"metrics":{"luts":{"depth":{"bias":2}}}}`,
		"importance range":  `{"metrics":{"luts":{"depth":{"importance":500}}}}`,
		"bias and target":   `{"metrics":{"luts":{"depth":{"bias":0.5,"target":4}}}}`,
		"bias on unordered": `{"metrics":{"luts":{"alloc":{"bias":0.5}}}}`,
		"bad order values":  `{"metrics":{"luts":{"alloc":{"order":["a","b","z"]}}}}`,
	}
	for name, payload := range cases {
		if _, err := LoadLibrary(s, strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadLibraryOrderBeforeBias(t *testing.T) {
	// A bias on an ordering-hinted categorical must load as long as the
	// order is present in the same entry, regardless of JSON field order.
	s := persistSpace()
	payload := `{"metrics":{"luts":{"alloc":{"bias":-0.6,"order":["b","c","a"]}}}}`
	lib, err := LoadLibrary(s, strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	g, err := lib.GuidanceForObjective(metrics.MinimizeMetric(metrics.LUTs), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b := g.Bias(s.IndexOf("alloc")); b == 0 {
		t.Error("bias lost on load")
	}
}
