package core_test

import (
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pareto"
)

// nocBiObjective assembles the acceptance scenario: the NoC router space
// under its two natural competing objectives, minimize LUTs and maximize
// frequency.
func nocBiObjective(t *testing.T) (*catalog.Entry, *catalog.Entry, []metrics.Objective) {
	t.Helper()
	luts, err := catalog.Lookup("noc", "min-luts")
	if err != nil {
		t.Fatal(err)
	}
	freq, err := catalog.Lookup("noc", "max-frequency")
	if err != nil {
		t.Fatal(err)
	}
	return luts, freq, []metrics.Objective{luts.Objective, freq.Objective}
}

// nocCfg: the pareto run must push both ends of the front to their true
// optima, so it gets enough elite slots to retain several boundary
// members (Inf-crowding individuals all score the same NSGA-II fitness)
// and a budget sized for a 27,648-point space.
func nocCfg(par int) ga.Config {
	return ga.Config{PopulationSize: 32, Generations: 100, Elitism: 6, Seed: 5, Parallelism: par}
}

// exhaustiveOptimum scans the whole space for the true optimum of obj.
func exhaustiveOptimum(t *testing.T, space *param.Space, eval dataset.Evaluator, obj metrics.Objective) float64 {
	t.Helper()
	best := obj.Worst()
	found := false
	space.Enumerate(func(pt param.Point) bool {
		m, err := eval(pt)
		if err != nil {
			return true
		}
		v, ok := obj.Value(m)
		if !ok {
			return true
		}
		if !found || obj.Better(v, best) {
			best = v
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("space has no feasible points")
	}
	return best
}

// TestParetoNoCFrontExtremesMatchScalarOptima is the tentpole acceptance
// test: a 2-objective pareto run on the NoC space returns a mutually
// non-dominating front whose extreme points match what two independent
// scalar runs (one per objective) find - which in turn match the
// exhaustive per-objective optima.
func TestParetoNoCFrontExtremesMatchScalarOptima(t *testing.T) {
	luts, freq, objs := nocBiObjective(t)
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space:      luts.Space,
		Mode:       core.ModePareto,
		Objectives: objs,
		Evaluate:   luts.Eval,
		Config:     nocCfg(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) < 2 {
		t.Fatalf("front has %d members, want a trade-off set", len(res.Front))
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && pareto.DominatesValues(objs, res.Front[i].Values, res.Front[j].Values) {
				t.Errorf("front member %d dominates %d", i, j)
			}
		}
	}

	// Scalar references: one independent run per objective.
	scalar := func(e *catalog.Entry, seed int64) float64 {
		cfg := nocCfg(2)
		cfg.Seed = seed
		r, err := core.Search(context.Background(), core.SearchRequest{
			Space:     e.Space,
			Objective: e.Objective,
			Evaluate:  e.Eval,
			Config:    cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.BestPoint == nil {
			t.Fatalf("scalar %s run found nothing feasible", e.Query)
		}
		return r.BestValue
	}
	scalarLuts := scalar(luts, 5)
	scalarFreq := scalar(freq, 6)

	// Ground truth, so a shared miss by both searches can't silently pass.
	trueLuts := exhaustiveOptimum(t, luts.Space, luts.Eval, luts.Objective)
	trueFreq := exhaustiveOptimum(t, freq.Space, freq.Eval, freq.Objective)
	if scalarLuts != trueLuts {
		t.Fatalf("scalar min-luts run missed the optimum: %v vs %v", scalarLuts, trueLuts)
	}
	if scalarFreq != trueFreq {
		t.Fatalf("scalar max-frequency run missed the optimum: %v vs %v", scalarFreq, trueFreq)
	}

	// The front is canonically ordered best-first on the primary objective
	// (min-luts), so its ends are the per-objective extremes.
	gotLuts := res.Front[0].Values[0]
	gotFreq := res.Front[len(res.Front)-1].Values[1]
	if gotLuts != scalarLuts {
		t.Errorf("front LUT extreme %v != scalar optimum %v", gotLuts, scalarLuts)
	}
	if gotFreq != scalarFreq {
		t.Errorf("front frequency extreme %v != scalar optimum %v", gotFreq, scalarFreq)
	}
	if res.Hypervolume <= 0 {
		t.Errorf("hypervolume = %v, want > 0", res.Hypervolume)
	}
}

// TestParetoNoCByteIdentical pins the determinism contract on the NoC
// acceptance scenario: deeply identical results across -par {1,8} x key
// modes.
func TestParetoNoCByteIdentical(t *testing.T) {
	luts, _, objs := nocBiObjective(t)
	run := func(par int, keyMode string) ga.Result {
		res, err := core.Search(context.Background(), core.SearchRequest{
			Space:      luts.Space,
			Mode:       core.ModePareto,
			Objectives: objs,
			Evaluate:   luts.Eval,
			Config:     nocCfg(par),
		}, core.WithKeyMode(keyMode))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1, ga.KeyModeHash)
	for _, par := range []int{1, 8} {
		for _, km := range []string{ga.KeyModeHash, ga.KeyModeString} {
			got := run(par, km)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("par=%d key=%q diverged from par=1 hash reference", par, km)
			}
		}
	}
}

func TestSearchModeValidation(t *testing.T) {
	luts, _, objs := nocBiObjective(t)
	base := core.SearchRequest{Space: luts.Space, Objective: luts.Objective, Evaluate: luts.Eval, Config: nocCfg(1)}

	bad := base
	bad.Mode = "simplex"
	if _, err := core.Search(context.Background(), bad); err == nil {
		t.Error("unknown mode should be rejected")
	}
	bad = base
	bad.Objectives = objs
	if _, err := core.Search(context.Background(), bad); err == nil {
		t.Error("Objectives in scalar mode should be rejected")
	}
	bad = base
	bad.Mode = core.ModePareto
	bad.Objectives = objs[:1]
	if _, err := core.Search(context.Background(), bad); err == nil {
		t.Error("single-objective pareto should be rejected")
	}
	bad = base
	bad.Mode = core.ModePortfolio
	bad.Objectives = objs
	if _, err := core.Search(context.Background(), bad); err == nil {
		t.Error("Objectives in portfolio mode should be rejected")
	}
	bad = base
	bad.Mode = core.ModePortfolio
	if _, err := core.Search(context.Background(), bad, core.WithCheckpoint(func(*ga.Snapshot) error { return nil }, 2)); err == nil {
		t.Error("portfolio + checkpoint should be rejected")
	}
	bad = base
	bad.Mode = core.ModePortfolio
	if _, err := core.Search(context.Background(), bad, core.WithMigration(&ga.Migration{Interval: 2, Count: 1, Exchange: func(context.Context, int, []ga.Migrant) ([]ga.Migrant, error) { return nil, nil }})); err == nil {
		t.Error("portfolio + migration should be rejected")
	}
}

// portfolioSpace is small enough (256 points) that racing strategies
// overlap heavily in the shared cache - the property the dedup ratio
// acceptance bound pins.
func portfolioSpace() (*param.Space, dataset.Evaluator, metrics.Objective) {
	s := param.MustSpace(
		param.Int("a", 0, 7, 1),
		param.Int("b", 0, 7, 1),
		param.Int("c", 0, 3, 1),
	)
	eval := func(pt param.Point) (metrics.Metrics, error) {
		a, b, c := float64(pt[0]), float64(pt[1]), float64(pt[2])
		return metrics.Metrics{"cost": 3 + (a-5)*(a-5) + (b-2)*(b-2) + 1.5*c + 0.25*a*c}, nil
	}
	return s, eval, metrics.MinimizeMetric("cost")
}

// TestPortfolioDedupBound is the portfolio acceptance test: the race's
// total evaluator invocations (shared-cache Stats) stay within 1.25x the
// best single strategy's spend, because every strategy's evaluations land
// in the same dedup cache.
func TestPortfolioDedupBound(t *testing.T) {
	space, eval, obj := portfolioSpace()
	var rawCalls atomic.Int64
	counted := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		rawCalls.Add(1)
		return eval(pt)
	}
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space:       space,
		Mode:        core.ModePortfolio,
		Objective:   obj,
		EvaluateCtx: counted,
		Config:      ga.Config{PopulationSize: 10, Generations: 30, Seed: 9, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Portfolio) != 2 {
		t.Fatalf("unguided portfolio should race 2 strategies, got %+v", res.Portfolio)
	}
	bestSingle := 0
	winners := 0
	for _, o := range res.Portfolio {
		if o.DistinctEvals > bestSingle {
			bestSingle = o.DistinctEvals
		}
		if o.Winner {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("want exactly one winner, got %d: %+v", winners, res.Portfolio)
	}
	if res.DistinctEvals != res.Cache.Distinct {
		t.Fatalf("merged DistinctEvals %d != shared cache Distinct %d", res.DistinctEvals, res.Cache.Distinct)
	}
	if got := int(rawCalls.Load()); got != res.DistinctEvals {
		t.Fatalf("raw evaluator saw %d calls, shared cache reports %d distinct", got, res.DistinctEvals)
	}
	limit := int(math.Ceil(1.25 * float64(bestSingle)))
	if res.DistinctEvals > limit {
		t.Errorf("portfolio spent %d distinct evaluations, want <= 1.25x best single strategy (%d -> limit %d)",
			res.DistinctEvals, bestSingle, limit)
	}
	if res.BestPoint == nil {
		t.Fatal("portfolio found nothing feasible")
	}
	// The merged best can never be worse than any single strategy's.
	for _, o := range res.Portfolio {
		if o.Feasible && obj.Better(o.BestValue, res.BestValue) {
			t.Errorf("strategy %s beat the merged result: %v vs %v", o.Strategy, o.BestValue, res.BestValue)
		}
	}
}

// TestPortfolioDeterministic: the merged result (winner choice, per-
// strategy outcomes, shared-cache accounting) is identical run to run and
// across parallelism.
func TestPortfolioDeterministic(t *testing.T) {
	space, eval, obj := portfolioSpace()
	run := func(par int) ga.Result {
		res, err := core.Search(context.Background(), core.SearchRequest{
			Space:     space,
			Mode:      core.ModePortfolio,
			Objective: obj,
			Evaluate:  eval,
			Config:    ga.Config{PopulationSize: 10, Generations: 30, Seed: 9, Parallelism: par},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, par := range []int{1, 8} {
		got := run(par)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("par=%d portfolio diverged:\n got %+v\nwant %+v", par, got, ref)
		}
	}
}

// TestPortfolioLeadReproducesSoloRun: strategy index 0 keeps the request
// seed, so the portfolio's lead strategy reports exactly what a solo
// scalar run would have found.
func TestPortfolioLeadReproducesSoloRun(t *testing.T) {
	space, eval, obj := portfolioSpace()
	cfg := ga.Config{PopulationSize: 10, Generations: 30, Seed: 4, Parallelism: 1}
	solo, err := core.Search(context.Background(), core.SearchRequest{
		Space: space, Objective: obj, Evaluate: eval, Config: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	port, err := core.Search(context.Background(), core.SearchRequest{
		Space: space, Mode: core.ModePortfolio, Objective: obj, Evaluate: eval, Config: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	lead := port.Portfolio[0]
	if lead.Strategy != core.StrategyBaseline {
		t.Fatalf("unguided lead should be the baseline, got %q", lead.Strategy)
	}
	if lead.BestValue != solo.BestValue || lead.DistinctEvals != solo.DistinctEvals {
		t.Errorf("lead strategy diverged from solo run: %+v vs best=%v evals=%d",
			lead, solo.BestValue, solo.DistinctEvals)
	}
}
