package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// monotoneEval builds an evaluator where "cost" increases with every
// parameter's numeric axis - the friendliest possible case for bias hints.
func monotoneEval(s *param.Space) func(param.Point) (metrics.Metrics, error) {
	return func(pt param.Point) (metrics.Metrics, error) {
		cost := 0.0
		for i := range pt {
			cost += float64(pt[i]) * float64(i+1)
		}
		return metrics.Metrics{"cost": cost + 1}, nil
	}
}

func bigSpace() *param.Space {
	ps := make([]*param.Param, 8)
	for i := range ps {
		ps[i] = param.Int(string(rune('a'+i)), 0, 15, 1)
	}
	return param.MustSpace(ps...)
}

func TestMutationGenesCountMatchesBaselineRate(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetImportance("a", 100, 0)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(1))
	genome := make(param.Point, s.Len())
	total := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		total += len(g.MutationGenes(r, 0, genome, 0.1))
	}
	mean := float64(total) / trials // expect 8 * 0.1 = 0.8
	if mean < 0.72 || mean > 0.88 {
		t.Errorf("mean mutation count %v, want ~0.8 (baseline-preserving)", mean)
	}
}

func TestMutationGenesSkewedByImportance(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetImportance("a", 100, 0)
	l.Metric("cost").SetImportance("b", 10, 0)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(2))
	genome := make(param.Point, s.Len())
	counts := make([]int, s.Len())
	// Low rate so operations mostly mutate a single gene: the pick
	// distribution then reflects the importance weights directly (at higher
	// rates without-replacement sampling deliberately spreads picks, to
	// keep the per-operation mutation count baseline-equivalent).
	for i := 0; i < 120000; i++ {
		for _, gi := range g.MutationGenes(r, 0, genome, 0.05) {
			counts[gi]++
		}
	}
	// importance 100 vs 10 vs 1 (neutral): a should dominate.
	if counts[0] < 4*counts[1] {
		t.Errorf("importance skew too weak: a=%d b=%d", counts[0], counts[1])
	}
	if counts[1] < 2*counts[2] {
		t.Errorf("importance skew missing for b: b=%d c=%d", counts[1], counts[2])
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("gene %d never mutated - stochasticity lost", i)
		}
	}
}

func TestMutationGenesUniformAtZeroConfidence(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetImportance("a", 100, 0)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 0)
	r := rand.New(rand.NewSource(3))
	genome := make(param.Point, s.Len())
	counts := make([]int, s.Len())
	total := 0
	for i := 0; i < 40000; i++ {
		for _, gi := range g.MutationGenes(r, 0, genome, 0.25) {
			counts[gi]++
			total++
		}
	}
	for i, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.10 || frac > 0.15 { // uniform = 1/8 = 0.125
			t.Errorf("gene %d frequency %v, want ~0.125 at confidence 0", i, frac)
		}
	}
}

func TestMutationGenesNoDuplicates(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 0.8)
	r := rand.New(rand.NewSource(4))
	genome := make(param.Point, s.Len())
	for i := 0; i < 2000; i++ {
		picked := g.MutationGenes(r, 0, genome, 0.9)
		seen := map[int]bool{}
		for _, gi := range picked {
			if seen[gi] {
				t.Fatal("duplicate gene picked in one operation")
			}
			seen[gi] = true
		}
	}
}

func TestMutateValueBiasDirection(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetBias("a", 1.0) // cost grows with a
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(5))
	down, up := 0, 0
	for i := 0; i < 5000; i++ {
		v := g.MutateValue(r, 0, 0, 8)
		if v < 8 {
			down++
		} else if v > 8 {
			up++
		} else {
			t.Fatal("mutation returned current value")
		}
	}
	// Minimizing with positive correlation: moves should be overwhelmingly
	// downward at confidence 1, bias 1.
	if down < 9*up {
		t.Errorf("bias not directing: down=%d up=%d", down, up)
	}
}

func TestMutateValueWeakBiasMostlyUniform(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetBias("a", 0.2)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(6))
	down, up := 0, 0
	for i := 0; i < 10000; i++ {
		v := g.MutateValue(r, 0, 0, 8)
		if v < 8 {
			down++
		} else {
			up++
		}
	}
	// Bias 0.2: ~20% directed down + ~47% of uniform draws down
	// (8 of 15 alternatives are below 8): expect down ~ 0.2 + 0.8*8/15 = 0.63.
	frac := float64(down) / float64(down+up)
	if frac < 0.5 || frac > 0.75 {
		t.Errorf("weak-bias downward fraction %v, want ~0.63", frac)
	}
}

func TestMutateValueBoundaryFallsBackToUniform(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetBias("a", 1.0)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(7))
	// Gene already at 0 (the favorable boundary for minimization): guided
	// moves become minimal inward steps, so the gene explores locally
	// around its converged value instead of teleporting.
	for i := 0; i < 2000; i++ {
		v := g.MutateValue(r, 0, 0, 0)
		if v == 0 {
			t.Fatal("mutation returned current value at boundary")
		}
		if v != 1 {
			t.Fatalf("full-confidence full-bias boundary mutation moved to %d, want local step to 1", v)
		}
	}
	// At lower confidence the uniform path keeps the whole range reachable.
	gw := g.WithConfidence(0.5)
	seen := map[int]bool{}
	for i := 0; i < 4000; i++ {
		seen[gw.MutateValue(r, 0, 0, 0)] = true
	}
	if len(seen) < 10 {
		t.Errorf("half-confidence boundary mutation visited only %d values, want broad coverage", len(seen))
	}
}

func TestMutateValueTargetClusters(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetTarget("a", 12)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(8))
	hist := make([]int, 16)
	for i := 0; i < 20000; i++ {
		hist[g.MutateValue(r, 0, 0, 3)]++
	}
	// Values should cluster around 12.
	near := hist[11] + hist[12] + hist[13]
	far := hist[0] + hist[1] + hist[2]
	if near < 5*far {
		t.Errorf("target not clustering: near=%d far=%d", near, far)
	}
	peak := 0
	for v := range hist {
		if hist[v] > hist[peak] {
			peak = v
		}
	}
	if peak != 12 {
		t.Errorf("mutation mode at %d, want 12", peak)
	}
}

func TestMutateValueStepHintBoundsJumps(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetBias("a", 1.0)
	l.Metric("cost").SetStep("a", 1)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		v := g.MutateValue(r, 0, 0, 8)
		if v < 8 && 8-v > 1 {
			t.Fatalf("directed move of %d exceeds step hint 1", 8-v)
		}
	}
}

func TestMutateValueUnorderedWithOrderHint(t *testing.T) {
	s := param.MustSpace(
		param.Choice("alloc", "wavefront", "sep_if", "sep_of"),
		param.Int("x", 0, 7, 1),
	)
	l := NewLibrary(s)
	// Author orders allocators by frequency: sep_if < sep_of < wavefront,
	// and says frequency rises along the order.
	l.Metric(metrics.FmaxMHz).
		SetOrder("alloc", "sep_if", "sep_of", "wavefront").
		SetBias("alloc", 1.0)
	g, _ := l.GuidanceForObjective(metrics.MaximizeMetric(metrics.FmaxMHz), 1)
	r := rand.New(rand.NewSource(10))
	// From sep_if (value index 1, rank 0), guided moves should land on
	// sep_of (rank 1) or wavefront (rank 2) - value indices 2 and 0.
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		counts[g.MutateValue(r, 0, 0, 1)]++
	}
	if counts[1] != 0 {
		t.Error("returned current value")
	}
	// wavefront (index 0) is reachable and sep_of (index 2) likelier via
	// 1-step moves; both must appear.
	if counts[0] == 0 || counts[2] == 0 {
		t.Errorf("order-hinted mutation missing values: %v", counts)
	}
}

func TestGuidedBeatsBaselineOnMonotoneSpace(t *testing.T) {
	// The qualitative heart of the paper: with honest hints, Nautilus
	// reaches the same quality with fewer distinct evaluations.
	s := bigSpace()
	eval := monotoneEval(s)
	obj := metrics.MinimizeMetric("cost")

	l := NewLibrary(s)
	for i := 0; i < s.Len(); i++ {
		name := string(rune('a' + i))
		l.Metric("cost").SetBias(name, 0.9)
		l.Metric("cost").SetImportance(name, float64(10*(i+1)), 0.05)
	}
	g, _ := l.GuidanceForObjective(obj, 0.8)

	cfg := ga.Config{Generations: 40}
	var baseEvals, guidedEvals int
	const runs = 12
	for seed := int64(0); seed < runs; seed++ {
		cfg.Seed = seed
		b, err := RunBaseline(s, obj, eval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Run(s, obj, eval, cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		// Cost threshold: within 10 of optimum 1.
		if e := b.EvalsToReach(obj, 11); e >= 0 {
			baseEvals += e
		} else {
			baseEvals += b.DistinctEvals * 2 // censored: never reached
		}
		if e := n.EvalsToReach(obj, 11); e >= 0 {
			guidedEvals += e
		} else {
			guidedEvals += n.DistinctEvals * 2
		}
	}
	if guidedEvals >= baseEvals {
		t.Errorf("guided (%d evals) not faster than baseline (%d evals)", guidedEvals, baseEvals)
	}
}

func TestWrongHintsStillConverge(t *testing.T) {
	// Adversarial hints: bias points the wrong way. The stochastic core
	// must still find good solutions, just more slowly (paper: hints are
	// probabilistic so the GA can overcome regions that defy the author's
	// intuition).
	s := bigSpace()
	eval := monotoneEval(s)
	obj := metrics.MinimizeMetric("cost")
	l := NewLibrary(s)
	for i := 0; i < s.Len(); i++ {
		l.Metric("cost").SetBias(string(rune('a'+i)), -0.8) // wrong direction
	}
	g, _ := l.GuidanceForObjective(obj, 0.6)
	got := 0.0
	const runs = 8
	for seed := int64(0); seed < runs; seed++ {
		res, err := Run(s, obj, eval, ga.Config{Seed: seed, Generations: 120}, g)
		if err != nil {
			t.Fatal(err)
		}
		got += res.BestValue
	}
	avg := got / runs
	// Optimum is 1; the space's worst is 36*15+1 = 541. Misguided runs must
	// still end in the good tail.
	if avg > 60 {
		t.Errorf("wrong hints broke the search: avg best %v", avg)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	s := bigSpace()
	if _, err := Run(s, metrics.MinimizeMetric("cost"), monotoneEval(s), ga.Config{PopulationSize: 1}, nil); err == nil {
		t.Error("bad config accepted")
	}
}

// Property: MutateValue never returns an out-of-range index and never the
// current value (for params with more than one value), at any confidence.
func TestQuickMutateValueAlwaysValid(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetBias("a", 0.7)
	l.Metric("cost").SetTarget("b", 9)
	f := func(seed int64, confRaw uint8, geneRaw, curRaw uint8) bool {
		conf := float64(confRaw%101) / 100
		g, err := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), conf)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		gene := int(geneRaw) % s.Len()
		cur := int(curRaw) % 16
		v := g.MutateValue(r, int(seed%50), gene, cur)
		return v >= 0 && v < 16 && v != cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: MutationGenes returns sorted-unique in-range gene indices with
// count <= genome length.
func TestQuickMutationGenesValid(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetImportance("a", 90, 0.1)
	f := func(seed int64, confRaw, rateRaw uint8) bool {
		conf := float64(confRaw%101) / 100
		rate := float64(rateRaw%101) / 100
		g, err := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), conf)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		genome := make(param.Point, s.Len())
		picked := g.MutationGenes(r, 3, genome, rate)
		if len(picked) > s.Len() {
			return false
		}
		seen := map[int]bool{}
		for _, gi := range picked {
			if gi < 0 || gi >= s.Len() || seen[gi] {
				return false
			}
			seen[gi] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: at confidence 0 the guided engine's full run is
// distribution-equivalent to baseline; we verify the stronger statement
// that importance decays never drop below neutral nor rise above the
// initial setting.
func TestQuickImportanceDecayBounds(t *testing.T) {
	s := bigSpace()
	f := func(impRaw, decayRaw uint8, gen uint8) bool {
		imp := 1 + float64(impRaw%100)
		decay := float64(decayRaw%101) / 100
		l := NewLibrary(s)
		l.Metric("cost").SetImportance("a", imp, decay)
		g, err := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
		if err != nil {
			return false
		}
		v := g.ImportanceAt(0, int(gen))
		return v >= 1-1e-9 && v <= imp+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuidanceDeterministic(t *testing.T) {
	s := bigSpace()
	l := NewLibrary(s)
	l.Metric("cost").SetBias("a", 0.5).SetImportance("b", 40, 0.1).SetTarget("c", 7)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 0.7)
	run := func() []int {
		r := rand.New(rand.NewSource(99))
		out := []int{}
		genome := make(param.Point, s.Len())
		for i := 0; i < 100; i++ {
			out = append(out, g.MutationGenes(r, i, genome, 0.3)...)
			out = append(out, g.MutateValue(r, i, i%s.Len(), i%16))
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("guided operators not deterministic")
		}
	}
	_ = math.Pi
}

func TestGuidanceDescribe(t *testing.T) {
	s := param.MustSpace(
		param.Int("depth", 1, 8, 1),
		param.Choice("alloc", "a", "b", "c"),
	)
	l := NewLibrary(s)
	l.Metric("cost").
		SetImportance("depth", 70, 0.05).SetBias("depth", 0.8).
		SetOrder("alloc", "c", "a", "b").SetBias("alloc", 0.4).
		SetStep("depth", 2)
	g, err := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Describe()
	for _, want := range []string{
		"confidence 0.75", "depth", "importance  70.0", "decay 0.05",
		"bias -0.80", // oriented for minimization
		"step<=2", "order c<a<b",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}
