package core

import (
	"context"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// Run executes one Nautilus search: a GA over the space under cfg, guided
// by g. A nil guidance (or zero confidence) runs the baseline GA.
//
// Deprecated: use Search with WithGuidance. Run is a thin wrapper kept for
// one release; it adds nothing over Search.
func Run(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, cfg ga.Config, g *Guidance) (ga.Result, error) {
	return Search(context.Background(),
		SearchRequest{Space: space, Objective: obj, Evaluate: eval, Config: cfg},
		WithGuidance(g))
}

// RunContext is Run with cancellation and a context-aware evaluator.
//
// Deprecated: use Search with WithGuidance. RunContext is a thin wrapper
// kept for one release; it adds nothing over Search.
func RunContext(ctx context.Context, space *param.Space, obj metrics.Objective, eval dataset.ContextEvaluator, cfg ga.Config, g *Guidance) (ga.Result, error) {
	return Search(ctx,
		SearchRequest{Space: space, Objective: obj, EvaluateCtx: eval, Config: cfg},
		WithGuidance(g))
}

// RunBaseline executes the unguided baseline GA - the paper's comparison
// point.
//
// Deprecated: use Search without WithGuidance.
func RunBaseline(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, cfg ga.Config) (ga.Result, error) {
	return Search(context.Background(),
		SearchRequest{Space: space, Objective: obj, Evaluate: eval, Config: cfg})
}
