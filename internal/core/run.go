package core

import (
	"context"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// Run executes one Nautilus search: a GA over the space under cfg, guided
// by g. A nil guidance (or zero confidence) runs the baseline GA. This is
// the entry point an IP generator embeds.
//
// When cfg.Recorder is set it observes the whole run: the engine reports
// generations, evaluations, cache lookups, and pool scheduling, and the
// guidance reports each hint application (the run is handed a recording
// copy of g; the caller's guidance is never mutated).
func Run(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, cfg ga.Config, g *Guidance) (ga.Result, error) {
	return RunContext(context.Background(), space, obj, dataset.AdaptContext(eval), cfg, g)
}

// RunContext is Run with cancellation and a context-aware evaluator: the
// supervised/deadline path. Canceling ctx stops the search at the next
// evaluation boundary; if cfg.Checkpoint is set the engine writes a final
// snapshot first, and the returned Result has Interrupted set.
func RunContext(ctx context.Context, space *param.Space, obj metrics.Objective, eval dataset.ContextEvaluator, cfg ga.Config, g *Guidance) (ga.Result, error) {
	var strategy ga.Strategy
	if g != nil {
		if cfg.Recorder != nil {
			g = g.WithRecorder(cfg.Recorder)
		}
		strategy = g
	}
	engine, err := ga.NewContext(space, obj, eval, cfg, strategy)
	if err != nil {
		return ga.Result{}, err
	}
	return engine.RunContext(ctx)
}

// RunBaseline executes the unguided baseline GA - the paper's comparison
// point.
func RunBaseline(space *param.Space, obj metrics.Objective, eval dataset.Evaluator, cfg ga.Config) (ga.Result, error) {
	return Run(space, obj, eval, cfg, nil)
}
