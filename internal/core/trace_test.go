package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/resilience"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// TestTracingResultsByteIdentical is the observability layer's hard
// invariant: a fully traced search (flight recorder, duration histograms,
// JSONL span journal, supervisor spans, collector recording) returns a
// Result deeply equal to the same search with tracing off. Span IDs come
// from the tracer's own seeded stream, so nothing here may perturb the
// run RNG.
func TestTracingResultsByteIdentical(t *testing.T) {
	s := bigSpace()
	eval := monotoneEval(s)
	obj := metrics.MinimizeMetric("cost")
	req := SearchRequest{
		Space:     s,
		Objective: obj,
		Evaluate:  eval,
		Config: ga.Config{
			Seed:           11,
			Generations:    15,
			PopulationSize: 8,
			Parallelism:    4,
		},
	}
	run := func(extra ...SearchOption) ga.Result {
		t.Helper()
		opts := append([]SearchOption{
			WithGuidance(hintedGuidance(t, s, 0.9)),
			WithResilience(resilience.Policy{}, nil),
		}, extra...)
		res, err := Search(context.Background(), req, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run()

	var journal bytes.Buffer
	ring := trace.NewRing(64)
	durs := trace.NewDurations()
	j := telemetry.NewJournal(&journal)
	tr := trace.New(trace.Config{
		Session: "determinism",
		Seed:    7,
		Sinks:   []trace.Sink{ring, durs, trace.JournalSink{J: j}},
	})
	traced := run(WithTracer(tr), WithRecorder(telemetry.NewCollector(nil)))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing changed the search result:\n got %+v\nwant %+v", traced, plain)
	}

	// The traced run must actually have produced spans, or the invariant
	// test is vacuous: every phase of the span taxonomy shows up in the
	// duration histograms.
	snap := durs.Hists.Snapshot()
	for _, name := range []string{
		"ga.generation", "ga.dispatch",
		"ga.selection", "ga.crossover", "ga.mutation",
		"cache.batch", "resilience.evaluate", "resilience.attempt",
	} {
		h, ok := snap[name]
		if !ok || h.Count == 0 {
			t.Errorf("span %q missing from duration histograms (got %d names)", name, len(snap))
		}
	}
	if len(ring.Snapshot()) == 0 {
		t.Error("flight recorder captured no spans")
	}

	// Journal lines decode as span events carrying the session label and
	// parent links that resolve within the same trace.
	ids := make(map[uint64]bool)
	type line struct {
		Event   string `json:"event"`
		Session string `json:"session"`
		Trace   uint64 `json:"trace"`
		ID      uint64 `json:"id"`
		Parent  uint64 `json:"parent"`
	}
	var spans []line
	sc := bufio.NewScanner(&journal)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		if l.Event != "span" {
			continue
		}
		if l.Session != "determinism" {
			t.Fatalf("span missing session label: %+v", l)
		}
		ids[l.ID] = true
		spans = append(spans, l)
	}
	if len(spans) == 0 {
		t.Fatal("journal captured no spans")
	}
	for _, l := range spans {
		if l.Parent != 0 && !ids[l.Parent] {
			t.Errorf("span %d has dangling parent %d", l.ID, l.Parent)
		}
	}
}

// TestTracingDeterministicSpanIDs re-runs the same traced search with the
// same tracer seed and expects the exact same span-ID sequence in the
// flight recorder - seeded splitmix64, not crypto/rand or the run RNG.
func TestTracingDeterministicSpanIDs(t *testing.T) {
	s := bigSpace()
	req := SearchRequest{
		Space:     s,
		Objective: metrics.MinimizeMetric("cost"),
		Evaluate:  monotoneEval(s),
		Config:    ga.Config{Seed: 3, Generations: 6, PopulationSize: 6},
	}
	capture := func() []uint64 {
		ring := trace.NewRing(4096)
		tr := trace.New(trace.Config{Seed: 42, Sinks: []trace.Sink{ring}})
		if _, err := Search(context.Background(), req, WithTracer(tr)); err != nil {
			t.Fatal(err)
		}
		spans := ring.Snapshot()
		ids := make([]uint64, len(spans))
		for i, sp := range spans {
			ids[i] = sp.ID
		}
		return ids
	}
	a, b := capture(), capture()
	if len(a) == 0 {
		t.Fatal("no spans captured")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("span-ID sequences differ across identical runs: %d vs %d spans", len(a), len(b))
	}
}
