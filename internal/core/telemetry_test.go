package core

import (
	"math/rand"
	"reflect"
	"testing"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

// hintedGuidance compiles a guidance carrying all three value mechanisms:
// importance on a, bias on b (via the monotone objective), target on c.
func hintedGuidance(t *testing.T, s *param.Space, confidence float64) *Guidance {
	t.Helper()
	l := NewLibrary(s)
	l.Metric("cost").
		SetImportance("a", 50, 0).
		SetBias("b", -1).
		SetTarget("c", 3)
	g, err := l.GuidanceForObjective(metrics.MinimizeMetric("cost"), confidence)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGuidanceHintTelemetry drives the guided operators directly and
// checks every decision is reported with a sane mechanism split.
func TestGuidanceHintTelemetry(t *testing.T) {
	s := bigSpace()
	col := telemetry.NewCollector(nil)
	g := hintedGuidance(t, s, 0.9).WithRecorder(col)
	r := rand.New(rand.NewSource(4))
	genome := make(param.Point, s.Len())

	picks := 0
	for i := 0; i < 3000; i++ {
		picks += len(g.MutationGenes(r, 0, genome, 0.1))
	}
	const aIdx, bIdx, cIdx = 0, 1, 2
	moves := 0
	for i := 0; i < 1000; i++ {
		for _, gene := range []int{aIdx, bIdx, cIdx} {
			g.MutateValue(r, 0, gene, 8)
			moves++
		}
	}

	snap := col.Registry().Snapshot()
	genes := snap.Counters["hints.gene_importance"] + snap.Counters["hints.gene_uniform"]
	if genes != int64(picks) {
		t.Errorf("gene-pick events %d != picks %d", genes, picks)
	}
	if snap.Counters["hints.gene_importance"] == 0 {
		t.Error("importance-weighted picks never recorded despite importance hint")
	}
	values := snap.Counters["hints.value_target"] + snap.Counters["hints.value_bias"] +
		snap.Counters["hints.value_uniform"]
	if values != int64(moves) {
		t.Errorf("value-move events %d != moves %d", values, moves)
	}
	if snap.Counters["hints.value_target"] == 0 || snap.Counters["hints.value_bias"] == 0 {
		t.Errorf("target/bias mechanisms unrecorded: %v", snap.Counters)
	}
	gate := snap.Counters["hints.gate_guided"] + snap.Counters["hints.gate_unguided"]
	if gate != int64(moves) {
		t.Errorf("gate outcomes %d != moves %d", gate, moves)
	}
	// At confidence 0.9 roughly 90% of gates should land guided.
	guidedFrac := float64(snap.Counters["hints.gate_guided"]) / float64(gate)
	if guidedFrac < 0.85 || guidedFrac > 0.95 {
		t.Errorf("guided gate fraction %.3f, want ~0.9", guidedFrac)
	}
}

// TestGuidanceConfidenceZeroGate checks the confidence sweep's endpoint:
// at confidence 0 every value move is an unguided uniform fallback.
func TestGuidanceConfidenceZeroGate(t *testing.T) {
	s := bigSpace()
	col := telemetry.NewCollector(nil)
	g := hintedGuidance(t, s, 0).WithRecorder(col)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		g.MutateValue(r, 0, 2, 8)
	}
	snap := col.Registry().Snapshot()
	if got := snap.Counters["hints.gate_guided"]; got != 0 {
		t.Errorf("confidence 0 recorded %d guided gates", got)
	}
	if got := snap.Counters["hints.value_uniform"]; got != 500 {
		t.Errorf("uniform fallbacks = %d, want 500", got)
	}
}

// TestGuidedRunTelemetryDeterminism is the end-to-end determinism check
// for a guided search: recording hints, cache, pool, and generations must
// not change the result, and the caller's guidance must stay untouched.
func TestGuidedRunTelemetryDeterminism(t *testing.T) {
	s := bigSpace()
	eval := monotoneEval(s)
	obj := metrics.MinimizeMetric("cost")
	g := hintedGuidance(t, s, 0.9)
	cfg := ga.Config{Seed: 9, Generations: 20, PopulationSize: 8}

	plain, err := Run(s, obj, eval, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(nil)
	cfgRec := cfg
	cfgRec.Recorder = col
	recorded, err := Run(s, obj, eval, cfgRec, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, recorded) {
		t.Errorf("telemetry changed the guided search result:\n got %+v\nwant %+v", recorded, plain)
	}
	if g.rec != telemetry.Nop {
		t.Error("Run mutated the caller's guidance recorder")
	}
	snap := col.Registry().Snapshot()
	hintEvents := snap.Counters["hints.value_target"] + snap.Counters["hints.value_bias"] +
		snap.Counters["hints.value_uniform"]
	if hintEvents == 0 {
		t.Error("guided run recorded no hint events")
	}
	if snap.Counters[telemetry.MetricGenerations] != 21 {
		t.Errorf("generations = %d, want 21", snap.Counters[telemetry.MetricGenerations])
	}
}
