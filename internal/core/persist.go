package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nautilus/internal/param"
)

// The JSON schema for shipping a hint library alongside an IP generator,
// as the paper prescribes ("these hints ... are packaged and provided along
// with Nautilus as part of the IP"). Parameters with no hints are omitted.

type libraryJSON struct {
	Metrics map[string]map[string]hintJSON `json:"metrics"`
}

type hintJSON struct {
	Importance float64  `json:"importance,omitempty"`
	Decay      float64  `json:"decay,omitempty"`
	Bias       float64  `json:"bias,omitempty"`
	Target     *float64 `json:"target,omitempty"`
	Step       int      `json:"step,omitempty"`
	Order      []string `json:"order,omitempty"`
}

// SaveJSON writes the library's hints as JSON.
func (l *Library) SaveJSON(w io.Writer) error {
	out := libraryJSON{Metrics: map[string]map[string]hintJSON{}}
	names := make([]string, 0, len(l.byMetric))
	for name := range l.byMetric {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, metric := range names {
		hs := l.byMetric[metric]
		params := map[string]hintJSON{}
		for i := range hs.hints {
			h := hs.hints[i]
			var order []string
			if hs.orders[i] != nil {
				p := l.space.Param(i)
				order = make([]string, len(hs.orders[i]))
				for rank, vi := range hs.orders[i] {
					order[rank] = p.StringValue(vi)
				}
			}
			if h.Importance == 0 && h.Bias == 0 && !h.HasTarget && h.Step == 0 && order == nil {
				continue
			}
			hj := hintJSON{
				Importance: h.Importance,
				Decay:      h.ImportanceDecay,
				Bias:       h.Bias,
				Step:       h.Step,
				Order:      order,
			}
			if h.HasTarget {
				t := h.Target
				hj.Target = &t
			}
			params[l.space.Param(i).Name()] = hj
		}
		if len(params) > 0 {
			out.Metrics[metric] = params
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadLibrary reads a hint library previously written by SaveJSON, binding
// it to the given design space. Hints referencing unknown parameters or
// carrying out-of-range values are rejected with an error.
func LoadLibrary(space *param.Space, r io.Reader) (lib *Library, err error) {
	var in libraryJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode hint library: %w", err)
	}
	// The HintSet builder API panics on invalid author input; convert those
	// panics into load errors for file input.
	defer func() {
		if p := recover(); p != nil {
			lib = nil
			err = fmt.Errorf("core: invalid hint library: %v", p)
		}
	}()
	lib = NewLibrary(space)
	metricNames := make([]string, 0, len(in.Metrics))
	for name := range in.Metrics {
		metricNames = append(metricNames, name)
	}
	sort.Strings(metricNames)
	for _, metric := range metricNames {
		hs := lib.Metric(metric)
		paramNames := make([]string, 0, len(in.Metrics[metric]))
		for name := range in.Metrics[metric] {
			paramNames = append(paramNames, name)
		}
		sort.Strings(paramNames)
		for _, pname := range paramNames {
			if space.IndexOf(pname) < 0 {
				return nil, fmt.Errorf("core: hint library references unknown parameter %q", pname)
			}
			hj := in.Metrics[metric][pname]
			// Ordering first: directional hints may depend on it.
			if hj.Order != nil {
				hs.SetOrder(pname, hj.Order...)
			}
			if hj.Importance != 0 {
				hs.SetImportance(pname, hj.Importance, hj.Decay)
			}
			if hj.Bias != 0 && hj.Target != nil {
				return nil, fmt.Errorf("core: parameter %q has both bias and target for metric %q", pname, metric)
			}
			if hj.Bias != 0 {
				hs.SetBias(pname, hj.Bias)
			}
			if hj.Target != nil {
				hs.SetTarget(pname, *hj.Target)
			}
			if hj.Step != 0 {
				hs.SetStep(pname, hj.Step)
			}
		}
	}
	return lib, nil
}
