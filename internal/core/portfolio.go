// ModePortfolio: race diverse search strategies over one shared dedup
// cache. The guided GA, the unguided baseline GA, and simulated annealing
// all walk the same space concurrently; every strategy's evaluations land
// in a shared singleflight cache layered under each strategy's private
// one (exactly the server's session-over-shared-cache arrangement), so a
// design point any strategy has characterized is free for the others and
// the whole race costs roughly one search's worth of evaluator calls.
// The merge is deterministic: each strategy is seeded independently and
// is itself byte-identical across parallelism, and the winner is chosen
// by objective comparison with lowest-strategy-index tie-breaking.
package core

import (
	"context"
	"fmt"
	"sync"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/search"
)

// Portfolio strategy names, in race (and tie-break) order.
const (
	StrategyGuided   = "guided"
	StrategyBaseline = "baseline"
	StrategyAnneal   = "anneal"
)

// strategySeed derives the per-strategy RNG seed from the request seed: a
// splitmix64-style mix keyed by the strategy index. Index 0 (the guided
// lead) keeps the request seed unchanged, so the portfolio's lead strategy
// reproduces the equivalent solo run byte for byte.
func strategySeed(seed int64, k int) int64 {
	if k == 0 {
		return seed
	}
	z := uint64(seed) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// searchPortfolio runs the strategy race. eval is the fully resolved (and,
// when configured, supervision-wrapped) evaluator; cfg is the effective GA
// configuration after option overrides.
func searchPortfolio(ctx context.Context, req SearchRequest, eval dataset.ContextEvaluator, cfg ga.Config, sc *searchConfig) (ga.Result, error) {
	// Checkpoint/resume snapshots describe a single GA run; a portfolio is
	// three interleaved searches whose shared-cache state is not a Snapshot.
	// Portfolio runs are cheap to restart from scratch (determinism makes
	// the re-run identical), so the combination is rejected rather than
	// half-supported.
	if cfg.Resume != nil || cfg.Checkpoint != nil {
		return ga.Result{}, fmt.Errorf("core: portfolio mode does not support checkpoint/resume; restart the search instead")
	}
	if cfg.Migration != nil {
		return ga.Result{}, fmt.Errorf("core: portfolio mode does not compose with migration")
	}

	// The shared dedup tier: every strategy's private cache forwards its
	// misses here, so the raw evaluator sees each distinct design point at
	// most once across the whole race.
	shared := dataset.NewCacheContext(req.Space, eval)
	sharedEval := shared.EvaluateCtx

	type entry struct {
		name string
		run  func(context.Context) (ga.Result, error)
	}
	var entries []entry

	// Lead strategy: guided when guidance is configured (telemetry and
	// tracing follow the lead so progress streams describe one coherent
	// search), otherwise the baseline leads and the guided slot is skipped.
	gaStrategy := func(k int, name string, lead bool) entry {
		cfgS := cfg
		cfgS.Seed = strategySeed(cfg.Seed, k)
		var strat ga.Strategy
		if lead {
			strat = sc.strategy(&cfgS)
		} else {
			cfgS.Recorder = nil
			cfgS.Tracer = nil
		}
		return entry{name: name, run: func(ctx context.Context) (ga.Result, error) {
			engine, err := ga.NewContext(req.Space, req.Objective, sharedEval, cfgS, strat)
			if err != nil {
				return ga.Result{}, err
			}
			return engine.RunContext(ctx)
		}}
	}
	if sc.guidance != nil {
		entries = append(entries, gaStrategy(0, StrategyGuided, true))
		entries = append(entries, gaStrategy(1, StrategyBaseline, false))
	} else {
		entries = append(entries, gaStrategy(0, StrategyBaseline, true))
	}

	// Annealing's budget mirrors the GA's worst-case evaluation count:
	// population x (generations + 1), from the effective (defaulted)
	// configuration.
	probe, err := ga.NewContext(req.Space, req.Objective, sharedEval, cfg, nil)
	if err != nil {
		return ga.Result{}, err
	}
	eff := probe.Config()
	annealCfg := search.AnnealConfig{
		Budget: eff.PopulationSize * (eff.Generations + 1),
		Seed:   strategySeed(cfg.Seed, 2),
	}
	entries = append(entries, entry{name: StrategyAnneal, run: func(ctx context.Context) (ga.Result, error) {
		return search.AnnealCtx(ctx, req.Space, req.Objective, sharedEval, annealCfg)
	}})

	results := make([]ga.Result, len(entries))
	errs := make([]error, len(entries))
	var wg sync.WaitGroup
	for i := range entries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = entries[i].run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return ga.Result{}, fmt.Errorf("core: portfolio strategy %s: %w", entries[i].name, err)
		}
	}

	// Deterministic merge: best feasible result under the objective wins;
	// Better is strict, so ties resolve to the lowest strategy index.
	winner := -1
	for i := range results {
		if results[i].BestPoint == nil {
			continue
		}
		if winner < 0 || req.Objective.Better(results[i].BestValue, results[winner].BestValue) {
			winner = i
		}
	}
	if winner < 0 {
		winner = 0
	}

	merged := results[winner]
	outcomes := make([]ga.StrategyOutcome, len(entries))
	for i := range entries {
		outcomes[i] = ga.StrategyOutcome{
			Strategy:      entries[i].name,
			BestValue:     results[i].BestValue,
			Feasible:      results[i].BestPoint != nil,
			DistinctEvals: results[i].DistinctEvals,
			Converged:     results[i].Converged,
			Winner:        i == winner,
		}
		if results[i].Interrupted {
			merged.Interrupted = true
		}
	}
	merged.Portfolio = outcomes
	// The race's true evaluator cost is the shared tier's accounting: each
	// strategy's DistinctEvals counts its private walk, while the shared
	// cache counts distinct raw-evaluator invocations across all of them.
	stats := shared.Stats()
	// Probe-collision counts depend on concurrent insertion order; zero
	// them so merged results stay byte-identical run to run.
	stats.Collisions = 0
	merged.DistinctEvals = stats.Distinct
	merged.Cache = stats
	return merged, nil
}
