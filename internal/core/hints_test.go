package core

import (
	"testing"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func hintSpace() *param.Space {
	return param.MustSpace(
		param.Int("depth", 1, 16, 1),
		param.Levels("width", 8, 16, 32, 64),
		param.Choice("alloc", "a", "b", "c"),
		param.Flag("spec"),
	)
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestHintSetValidation(t *testing.T) {
	s := hintSpace()
	h := NewHintSet(s, metrics.LUTs)
	mustPanic(t, "importance too low", func() { h.SetImportance("depth", 0.5, 0) })
	mustPanic(t, "importance too high", func() { h.SetImportance("depth", 101, 0) })
	mustPanic(t, "decay out of range", func() { h.SetImportance("depth", 50, 1.5) })
	mustPanic(t, "bias out of range", func() { h.SetBias("depth", 2) })
	mustPanic(t, "unknown param", func() { h.SetBias("nope", 0.5) })
	mustPanic(t, "step < 1", func() { h.SetStep("depth", 0) })
	mustPanic(t, "bias on unordered", func() { h.SetBias("alloc", 0.5) })
	mustPanic(t, "target on unordered", func() { h.SetTarget("alloc", 1) })
	mustPanic(t, "unknown target choice", func() { h.SetTargetChoice("alloc", "zzz") })
	mustPanic(t, "bad ordering length", func() { h.SetOrder("alloc", "a", "b") })
	mustPanic(t, "bad ordering value", func() { h.SetOrder("alloc", "a", "b", "zzz") })
	mustPanic(t, "duplicate ordering value", func() { h.SetOrder("alloc", "a", "b", "b") })
}

func TestBiasTargetMutuallyExclusive(t *testing.T) {
	s := hintSpace()
	h := NewHintSet(s, metrics.LUTs)
	h.SetBias("depth", 0.8)
	mustPanic(t, "target after bias", func() { h.SetTarget("depth", 4) })
	h2 := NewHintSet(s, metrics.LUTs)
	h2.SetTarget("depth", 4)
	mustPanic(t, "bias after target", func() { h2.SetBias("depth", 0.8) })
}

func TestOrderingEnablesDirectionalHints(t *testing.T) {
	s := hintSpace()
	h := NewHintSet(s, metrics.FmaxMHz)
	h.SetOrder("alloc", "c", "a", "b")
	h.SetBias("alloc", -0.7) // now legal
	h2 := NewHintSet(s, metrics.FmaxMHz)
	h2.SetOrder("alloc", "c", "a", "b")
	h2.SetTargetChoice("alloc", "a") // rank 1
	if !h2.hints[s.IndexOf("alloc")].HasTarget {
		t.Error("target choice not recorded")
	}
	if got := h2.hints[s.IndexOf("alloc")].Target; got != 1 {
		t.Errorf("target rank = %v, want 1", got)
	}
}

func TestLibraryMetricCreateOnDemand(t *testing.T) {
	l := NewLibrary(hintSpace())
	a := l.Metric(metrics.LUTs)
	b := l.Metric(metrics.LUTs)
	if a != b {
		t.Error("Metric should return the same set per name")
	}
	l.Metric(metrics.FmaxMHz)
	if got := len(l.Metrics()); got != 2 {
		t.Errorf("Metrics count = %d, want 2", got)
	}
}

func TestGuidanceOrientationMaximize(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	l.Metric(metrics.FmaxMHz).SetBias("depth", -0.8) // deeper buffers hurt Fmax
	g, err := l.GuidanceForObjective(metrics.MaximizeMetric(metrics.FmaxMHz), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Maximizing Fmax with negative correlation: decreasing depth improves
	// the objective, so the oriented bias must be negative.
	if b := g.Bias(s.IndexOf("depth")); b >= 0 {
		t.Errorf("oriented bias = %v, want negative", b)
	}
}

func TestGuidanceOrientationMinimize(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	l.Metric(metrics.LUTs).SetBias("depth", 0.9) // deeper buffers cost LUTs
	g, err := l.GuidanceForObjective(metrics.MinimizeMetric(metrics.LUTs), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Minimizing LUTs with positive correlation: decreasing depth improves.
	if b := g.Bias(s.IndexOf("depth")); b >= 0 {
		t.Errorf("oriented bias = %v, want negative", b)
	}
}

func TestGuidanceCompositeWeights(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	l.Metric(metrics.ThroughputMSPS).SetBias("width", 0.8) // wider -> more throughput
	l.Metric(metrics.LUTs).SetBias("width", 0.6)           // wider -> more LUTs
	// Maximize throughput/LUTs: throughput enters positively, LUTs
	// negatively. Width helps throughput (+0.8*0.5) and hurts via LUTs
	// (-0.6*0.5): net positive but damped.
	g, err := l.Guidance(metrics.Maximize, map[string]float64{
		metrics.ThroughputMSPS: 1,
		metrics.LUTs:           -1,
	}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Bias(s.IndexOf("width"))
	if b <= 0 || b >= 0.8 {
		t.Errorf("composite bias = %v, want in (0, 0.8)", b)
	}
}

func TestGuidanceConflictPrefersTarget(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	l.Metric(metrics.LUTs).SetBias("depth", 0.9)
	l.Metric(metrics.FmaxMHz).SetTarget("depth", 8)
	g, err := l.Guidance(metrics.Minimize, map[string]float64{
		metrics.LUTs:    1,
		metrics.FmaxMHz: -1,
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	i := s.IndexOf("depth")
	if !g.hasTarget[i] {
		t.Fatal("target lost in composite compile")
	}
	if g.Bias(i) != 0 {
		t.Errorf("bias = %v, want 0 when a target is present", g.Bias(i))
	}
}

func TestGuidanceNoHintsIsNeutral(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	g, err := l.GuidanceForObjective(metrics.MinimizeMetric(metrics.LUTs), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if g.Bias(i) != 0 || g.hasTarget[i] {
			t.Errorf("param %d has directional guidance without hints", i)
		}
		if g.ImportanceAt(i, 0) != 1 {
			t.Errorf("param %d importance = %v, want neutral 1", i, g.ImportanceAt(i, 0))
		}
	}
}

func TestGuidanceRejectsBadConfidence(t *testing.T) {
	l := NewLibrary(hintSpace())
	if _, err := l.Guidance(metrics.Minimize, nil, -0.1); err == nil {
		t.Error("negative confidence accepted")
	}
	if _, err := l.Guidance(metrics.Minimize, nil, 1.1); err == nil {
		t.Error("confidence > 1 accepted")
	}
}

func TestImportanceDecay(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	l.Metric(metrics.LUTs).SetImportance("depth", 80, 0.2)
	l.Metric(metrics.LUTs).SetImportance("width", 80, 0) // no decay
	g, err := l.GuidanceForObjective(metrics.MinimizeMetric(metrics.LUTs), 1)
	if err != nil {
		t.Fatal(err)
	}
	di, wi := s.IndexOf("depth"), s.IndexOf("width")
	if g.ImportanceAt(di, 0) != 80 {
		t.Errorf("gen-0 importance = %v, want 80", g.ImportanceAt(di, 0))
	}
	if g.ImportanceAt(wi, 50) != 80 {
		t.Errorf("undecayed importance at gen 50 = %v, want 80", g.ImportanceAt(wi, 50))
	}
	prev := 81.0
	for gen := 0; gen <= 40; gen += 5 {
		cur := g.ImportanceAt(di, gen)
		if cur >= prev {
			t.Fatalf("importance did not decay at gen %d (%v >= %v)", gen, cur, prev)
		}
		if cur < 1 {
			t.Fatalf("importance decayed below neutral: %v", cur)
		}
		prev = cur
	}
	if g.ImportanceAt(di, 40) > 2 {
		t.Errorf("importance at gen 40 = %v, want near 1", g.ImportanceAt(di, 40))
	}
}

func TestWithConfidence(t *testing.T) {
	s := hintSpace()
	l := NewLibrary(s)
	l.Metric(metrics.LUTs).SetBias("depth", 0.5)
	g, _ := l.GuidanceForObjective(metrics.MinimizeMetric(metrics.LUTs), 0.9)
	weak := g.WithConfidence(0.3)
	if weak.Confidence() != 0.3 || g.Confidence() != 0.9 {
		t.Error("WithConfidence should copy, not mutate")
	}
	if weak.Bias(s.IndexOf("depth")) != g.Bias(s.IndexOf("depth")) {
		t.Error("WithConfidence should preserve compiled hints")
	}
	if c := g.WithConfidence(7).Confidence(); c != 1 {
		t.Errorf("confidence should clamp to 1, got %v", c)
	}
}
