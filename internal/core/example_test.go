package core_test

import (
	"context"
	"fmt"

	"nautilus/internal/core"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// The complete Nautilus flow on a toy IP: declare the space, provide an
// evaluator, embed author hints, and run a guided search.
func Example() {
	space := param.MustSpace(
		param.Int("depth", 0, 31, 1),
		param.Int("width", 0, 31, 1),
	)
	// "Synthesis": area grows with both parameters.
	evaluate := func(pt param.Point) (metrics.Metrics, error) {
		d, w := float64(pt[0]), float64(pt[1])
		return metrics.Metrics{metrics.LUTs: 100 + 12*d + 5*w + d*w}, nil
	}

	// The IP author's knowledge: both parameters inflate area, depth more
	// strongly.
	lib := core.NewLibrary(space)
	lib.Metric(metrics.LUTs).
		SetImportance("depth", 80, 0.05).SetBias("depth", 0.9).
		SetImportance("width", 40, 0.05).SetBias("width", 0.7)

	obj := metrics.MinimizeMetric(metrics.LUTs)
	guidance, err := lib.GuidanceForObjective(obj, 0.9)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space:     space,
		Objective: obj,
		Evaluate:  evaluate,
		Config:    ga.Config{Seed: 1, Generations: 30},
	}, core.WithGuidance(guidance))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("best LUTs:", res.BestValue)
	fmt.Println("at:", space.Describe(res.BestPoint))
	// Output:
	// best LUTs: 100
	// at: depth=0 width=0
}
