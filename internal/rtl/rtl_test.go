package rtl

import (
	"strings"
	"testing"
)

func simpleDesign() *Design {
	leaf := NewModule("leaf")
	leaf.AddParam("WIDTH", "8")
	leaf.AddPort(Input, "clk", 1).AddPort(Input, "d", 8).AddPort(Output, "q", 8)
	leaf.AddReg("q_r", 8)
	leaf.Always("posedge clk", "q_r <= d;")
	leaf.Assign("q", "q_r")

	top := NewModule("top").SetComment("demo top")
	top.AddPort(Input, "clk", 1).AddPort(Input, "din", 8).AddPort(Output, "dout", 8)
	top.AddWire("mid", 8)
	top.Instantiate("leaf", "u0", map[string]string{"WIDTH": "8"},
		map[string]string{"clk": "clk", "d": "din", "q": "mid"})
	top.Instantiate("leaf", "u1", nil,
		map[string]string{"clk": "clk", "d": "mid", "q": "dout"})
	return &Design{Top: "top", Modules: []*Module{top, leaf}}
}

func TestVerilogRendering(t *testing.T) {
	d := simpleDesign()
	v := d.Verilog()
	for _, want := range []string{
		"module top (", "module leaf (", "endmodule",
		"parameter WIDTH = 8;",
		"input clk;", "input [7:0] d;", "output [7:0] q;",
		"reg [7:0] q_r;",
		"always @(posedge clk) begin",
		"assign q = q_r;",
		"leaf #(.WIDTH(8)) u0 (",
		".d(din)",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("rendered Verilog missing %q", want)
		}
	}
	if strings.Count(v, "module ") != strings.Count(v, "endmodule")+0 {
		// "module " also matches "endmodule " prefix? No: "endmodule" has no
		// trailing space in our output; count separately.
		t.Log(v)
	}
	if got, want := strings.Count(v, "endmodule"), 2; got != want {
		t.Errorf("endmodule count = %d, want %d", got, want)
	}
}

func TestTopRendersFirst(t *testing.T) {
	d := simpleDesign()
	v := d.Verilog()
	if strings.Index(v, "module top") > strings.Index(v, "module leaf") {
		t.Error("top module should render first")
	}
}

func TestCheckAcceptsValid(t *testing.T) {
	if err := simpleDesign().Check(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	mk := simpleDesign

	cases := []struct {
		name   string
		mutate func(*Design)
	}{
		{"empty design", func(d *Design) { d.Modules = nil }},
		{"missing top", func(d *Design) { d.Top = "nope" }},
		{"duplicate module", func(d *Design) { d.Modules = append(d.Modules, NewModule("leaf")) }},
		{"illegal module name", func(d *Design) { d.Modules[1].Name = "2bad" }},
		{"illegal port name", func(d *Design) {
			d.Modules[0].AddPort(Input, "bad name", 1)
		}},
		{"duplicate port", func(d *Design) {
			d.Modules[0].AddPort(Input, "clk", 1)
		}},
		{"duplicate net", func(d *Design) {
			d.Modules[0].AddWire("mid", 4)
		}},
		{"undefined submodule", func(d *Design) {
			d.Modules[0].Instantiate("ghost", "g0", nil, nil)
		}},
		{"bad connection port", func(d *Design) {
			d.Modules[0].Instantiate("leaf", "u2", nil, map[string]string{"nonport": "clk"})
		}},
		{"bad parameter override", func(d *Design) {
			d.Modules[0].Instantiate("leaf", "u3", map[string]string{"GHOST": "1"}, nil)
		}},
		{"self instantiation", func(d *Design) {
			d.Modules[1].Instantiate("leaf", "rec", nil, nil)
		}},
		{"duplicate instance", func(d *Design) {
			d.Modules[0].Instantiate("leaf", "u0", nil, nil)
		}},
		{"zero-width net", func(d *Design) {
			d.Modules[0].AddWire("w0", 0)
		}},
	}
	for _, c := range cases {
		d := mk()
		c.mutate(d)
		if err := d.Check(); err == nil {
			t.Errorf("%s: Check accepted invalid design", c.name)
		}
	}
}

func TestMemoryRendering(t *testing.T) {
	m := NewModule("memmod")
	m.AddPort(Input, "clk", 1)
	m.AddMemory("ram", 32, 64)
	v := m.Verilog()
	if !strings.Contains(v, "reg [31:0] ram [0:63];") {
		t.Errorf("memory declaration missing:\n%s", v)
	}
}

func TestSummarize(t *testing.T) {
	d := simpleDesign()
	s := d.Summarize()
	if s.Modules != 2 || s.Instances != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Regs != 1 || s.AlwaysBlk != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Ports != 6 {
		t.Errorf("Ports = %d, want 6", s.Ports)
	}
}

func TestDeterministicRendering(t *testing.T) {
	a := simpleDesign().Verilog()
	b := simpleDesign().Verilog()
	if a != b {
		t.Error("rendering not deterministic")
	}
}
