// Package rtl is a small synthesizable-Verilog builder used by the IP
// generators to emit actual RTL for a chosen design point - the artifact a
// real IP generator hands to the synthesis flow. Modules are assembled
// programmatically (ports, nets, assigns, always blocks, instances) and
// rendered as Verilog-2001; a structural checker validates the result
// (legal identifiers, unique names, balanced hierarchy, connections that
// reference declared nets and ports).
package rtl

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// PortDir is a module port direction.
type PortDir int

// Port directions.
const (
	Input PortDir = iota
	Output
)

func (d PortDir) String() string {
	if d == Output {
		return "output"
	}
	return "input"
}

// Port is a module port.
type Port struct {
	Name  string
	Dir   PortDir
	Width int // bits; 1 renders without a range
}

// Net is an internal wire, register, or memory.
type Net struct {
	Name  string
	Width int
	Depth int // >0 declares a memory array
	Reg   bool
}

// Instance is a submodule instantiation.
type Instance struct {
	Module string
	Name   string
	Params map[string]string // parameter overrides
	Conns  map[string]string // port -> expression
}

// AlwaysBlock is a procedural block.
type AlwaysBlock struct {
	Trigger string // e.g. "posedge clk"
	Body    []string
}

// Module is one Verilog module under construction.
type Module struct {
	Name     string
	Comment  string
	params   []struct{ name, value string }
	ports    []Port
	nets     []Net
	assigns  []struct{ lhs, rhs string }
	always   []AlwaysBlock
	insts    []Instance
	rawBody  []string
	declared map[string]bool
}

// NewModule starts a module.
func NewModule(name string) *Module {
	return &Module{Name: name, declared: map[string]bool{}}
}

// SetComment attaches a header comment.
func (m *Module) SetComment(c string) *Module {
	m.Comment = c
	return m
}

// AddParam declares a Verilog parameter.
func (m *Module) AddParam(name, value string) *Module {
	m.params = append(m.params, struct{ name, value string }{name, value})
	m.declared[name] = true
	return m
}

// AddPort declares a port.
func (m *Module) AddPort(dir PortDir, name string, width int) *Module {
	m.ports = append(m.ports, Port{Name: name, Dir: dir, Width: width})
	m.declared[name] = true
	return m
}

// AddWire declares an internal wire.
func (m *Module) AddWire(name string, width int) *Module {
	m.nets = append(m.nets, Net{Name: name, Width: width})
	m.declared[name] = true
	return m
}

// AddReg declares a register.
func (m *Module) AddReg(name string, width int) *Module {
	m.nets = append(m.nets, Net{Name: name, Width: width, Reg: true})
	m.declared[name] = true
	return m
}

// AddMemory declares a register array (maps to LUTRAM/BRAM).
func (m *Module) AddMemory(name string, width, depth int) *Module {
	m.nets = append(m.nets, Net{Name: name, Width: width, Depth: depth, Reg: true})
	m.declared[name] = true
	return m
}

// Assign adds a continuous assignment.
func (m *Module) Assign(lhs, rhs string) *Module {
	m.assigns = append(m.assigns, struct{ lhs, rhs string }{lhs, rhs})
	return m
}

// Always adds a procedural block.
func (m *Module) Always(trigger string, body ...string) *Module {
	m.always = append(m.always, AlwaysBlock{Trigger: trigger, Body: body})
	return m
}

// Raw appends verbatim body lines (for generate loops and comments).
func (m *Module) Raw(lines ...string) *Module {
	m.rawBody = append(m.rawBody, lines...)
	return m
}

// Instantiate adds a submodule instance.
func (m *Module) Instantiate(module, name string, params, conns map[string]string) *Module {
	m.insts = append(m.insts, Instance{Module: module, Name: name, Params: params, Conns: conns})
	return m
}

// Instances returns the instantiations added so far.
func (m *Module) Instances() []Instance { return m.insts }

func widthDecl(width int) string {
	if width <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", width-1)
}

// Verilog renders the module.
func (m *Module) Verilog() string {
	var b strings.Builder
	if m.Comment != "" {
		for _, line := range strings.Split(m.Comment, "\n") {
			fmt.Fprintf(&b, "// %s\n", line)
		}
	}
	names := make([]string, len(m.ports))
	for i, p := range m.ports {
		names[i] = p.Name
	}
	fmt.Fprintf(&b, "module %s (\n  %s\n);\n", m.Name, strings.Join(names, ",\n  "))
	for _, p := range m.params {
		fmt.Fprintf(&b, "  parameter %s = %s;\n", p.name, p.value)
	}
	for _, p := range m.ports {
		fmt.Fprintf(&b, "  %s %s%s;\n", p.Dir, widthDecl(p.Width), p.Name)
	}
	for _, n := range m.nets {
		kind := "wire"
		if n.Reg {
			kind = "reg"
		}
		if n.Depth > 0 {
			fmt.Fprintf(&b, "  %s %s%s [0:%d];\n", kind, widthDecl(n.Width), n.Name, n.Depth-1)
		} else {
			fmt.Fprintf(&b, "  %s %s%s;\n", kind, widthDecl(n.Width), n.Name)
		}
	}
	for _, a := range m.assigns {
		fmt.Fprintf(&b, "  assign %s = %s;\n", a.lhs, a.rhs)
	}
	for _, blk := range m.always {
		fmt.Fprintf(&b, "  always @(%s) begin\n", blk.Trigger)
		for _, line := range blk.Body {
			fmt.Fprintf(&b, "    %s\n", line)
		}
		fmt.Fprintf(&b, "  end\n")
	}
	for _, line := range m.rawBody {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	for _, inst := range m.insts {
		if len(inst.Params) > 0 {
			keys := sortedKeys(inst.Params)
			over := make([]string, len(keys))
			for i, k := range keys {
				over[i] = fmt.Sprintf(".%s(%s)", k, inst.Params[k])
			}
			fmt.Fprintf(&b, "  %s #(%s) %s (\n", inst.Module, strings.Join(over, ", "), inst.Name)
		} else {
			fmt.Fprintf(&b, "  %s %s (\n", inst.Module, inst.Name)
		}
		keys := sortedKeys(inst.Conns)
		conns := make([]string, len(keys))
		for i, k := range keys {
			conns[i] = fmt.Sprintf("    .%s(%s)", k, inst.Conns[k])
		}
		fmt.Fprintf(&b, "%s\n  );\n", strings.Join(conns, ",\n"))
	}
	fmt.Fprintf(&b, "endmodule\n")
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Design is a set of modules with a designated top.
type Design struct {
	Top     string
	Modules []*Module
}

// Verilog renders the whole design, top module first, the rest in
// declaration order.
func (d *Design) Verilog() string {
	var b strings.Builder
	for _, m := range d.orderedModules() {
		b.WriteString(m.Verilog())
		b.WriteString("\n")
	}
	return b.String()
}

func (d *Design) orderedModules() []*Module {
	out := make([]*Module, 0, len(d.Modules))
	for _, m := range d.Modules {
		if m.Name == d.Top {
			out = append(out, m)
		}
	}
	for _, m := range d.Modules {
		if m.Name != d.Top {
			out = append(out, m)
		}
	}
	return out
}

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_$]*$`)

// Check validates the design's structure:
//
//   - the top module exists and module names are unique and legal;
//   - port/net/instance names are legal identifiers;
//   - every instantiated module is defined in the design;
//   - instance connections name real ports of the instantiated module;
//   - no module instantiates itself (directly).
func (d *Design) Check() error {
	if len(d.Modules) == 0 {
		return fmt.Errorf("rtl: empty design")
	}
	byName := map[string]*Module{}
	for _, m := range d.Modules {
		if !identRe.MatchString(m.Name) {
			return fmt.Errorf("rtl: illegal module name %q", m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return fmt.Errorf("rtl: duplicate module %q", m.Name)
		}
		byName[m.Name] = m
	}
	if _, ok := byName[d.Top]; !ok {
		return fmt.Errorf("rtl: top module %q not defined", d.Top)
	}
	for _, m := range d.Modules {
		seen := map[string]bool{}
		for _, p := range m.ports {
			if !identRe.MatchString(p.Name) {
				return fmt.Errorf("rtl: %s: illegal port name %q", m.Name, p.Name)
			}
			if seen[p.Name] {
				return fmt.Errorf("rtl: %s: duplicate port %q", m.Name, p.Name)
			}
			seen[p.Name] = true
		}
		for _, n := range m.nets {
			if !identRe.MatchString(n.Name) {
				return fmt.Errorf("rtl: %s: illegal net name %q", m.Name, n.Name)
			}
			if seen[n.Name] {
				return fmt.Errorf("rtl: %s: duplicate net %q", m.Name, n.Name)
			}
			seen[n.Name] = true
			if n.Width < 1 || n.Width > 4096 {
				return fmt.Errorf("rtl: %s: net %q width %d out of range", m.Name, n.Name, n.Width)
			}
		}
		instNames := map[string]bool{}
		for _, inst := range m.insts {
			if !identRe.MatchString(inst.Name) {
				return fmt.Errorf("rtl: %s: illegal instance name %q", m.Name, inst.Name)
			}
			if instNames[inst.Name] {
				return fmt.Errorf("rtl: %s: duplicate instance %q", m.Name, inst.Name)
			}
			instNames[inst.Name] = true
			if inst.Module == m.Name {
				return fmt.Errorf("rtl: %s instantiates itself", m.Name)
			}
			sub, ok := byName[inst.Module]
			if !ok {
				return fmt.Errorf("rtl: %s instantiates undefined module %q", m.Name, inst.Module)
			}
			subPorts := map[string]bool{}
			for _, p := range sub.ports {
				subPorts[p.Name] = true
			}
			for portName := range inst.Conns {
				if !subPorts[portName] {
					return fmt.Errorf("rtl: %s/%s: connection to nonexistent port %s.%s",
						m.Name, inst.Name, inst.Module, portName)
				}
			}
			subParams := map[string]bool{}
			for _, p := range sub.params {
				subParams[p.name] = true
			}
			for paramName := range inst.Params {
				if !subParams[paramName] {
					return fmt.Errorf("rtl: %s/%s: override of nonexistent parameter %s.%s",
						m.Name, inst.Name, inst.Module, paramName)
				}
			}
		}
	}
	return nil
}

// Stats summarizes a design's structure (useful for tests and reports).
type Stats struct {
	Modules   int
	Instances int
	Ports     int
	Regs      int
	Memories  int
	AlwaysBlk int
}

// Summarize computes design statistics.
func (d *Design) Summarize() Stats {
	s := Stats{Modules: len(d.Modules)}
	for _, m := range d.Modules {
		s.Instances += len(m.insts)
		s.Ports += len(m.ports)
		s.AlwaysBlk += len(m.always)
		for _, n := range m.nets {
			if n.Depth > 0 {
				s.Memories++
			} else if n.Reg {
				s.Regs++
			}
		}
	}
	return s
}
