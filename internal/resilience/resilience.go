// Package resilience supervises fitness evaluation for long-running
// searches. In the paper's real deployment every evaluation is a
// minutes-to-hours EDA tool run (XST synthesis, ASIC place-and-route) that
// can hang, crash, or emit garbage; a production search strings thousands
// of them together. The Supervisor wraps any evaluator with:
//
//   - per-evaluation deadlines, enforced through the context that the GA
//     engine threads down the pool and the cache's singleflight path;
//   - bounded retry with exponential backoff and jitter, drawn from an
//     independent seeded RNG - never the run RNG, so search results stay
//     byte-identical whether or not faults occurred (retries are invisible
//     as long as they eventually succeed);
//   - a quarantine circuit breaker that demotes persistently failing
//     points to a permanent infeasible-with-penalty error, which the
//     evaluation cache memoizes deliberately - the same treatment the
//     paper's auxiliary hints give known-infeasible regions;
//   - garbage detection: NaN or infinite metric values are treated as a
//     transient tool failure, not a characterization.
//
// Error classification is the contract between this package and
// dataset.Cache: transient errors (dataset.IsTransient) are retried here
// and never memoized there; permanent errors mark the point infeasible and
// are cached like results.
//
// The package also provides crash recovery: Save/Load persist a full
// ga.Snapshot (generation, population, RNG state, convergence state,
// trajectory, cache contents and counters) to an atomically renamed file,
// and the sibling faulty package injects deterministic faults so every
// policy here is testable without real tools.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Metric names the Supervisor and checkpoint Saver maintain.
const (
	MetricEvaluations    = "resilience.evaluations"
	MetricRetries        = "resilience.retries"
	MetricTimeouts       = "resilience.timeouts"
	MetricTransientErrs  = "resilience.transient_errors"
	MetricPermanentErrs  = "resilience.permanent_errors"
	MetricQuarantined    = "resilience.quarantined_points"
	MetricQuarantineHits = "resilience.quarantine_hits"
	MetricCheckpoints    = "resilience.checkpoints"
	MetricCheckpointMS   = "resilience.checkpoint_ms"
)

// checkpointMillisBounds bucket checkpoint write latency: in-memory-speed
// snapshots through slow network filesystems.
var checkpointMillisBounds = []float64{0.1, 1, 10, 100, 1_000, 10_000}

// ErrTimeout marks an evaluation attempt that exceeded its deadline. It is
// transient: the tool run was killed, the point is not known infeasible.
var ErrTimeout = errors.New("evaluation deadline exceeded")

// QuarantineError is the permanent error a quarantined point evaluates to:
// the circuit breaker tripped after repeated exhausted retries, and the
// point is demoted to infeasible (the GA assigns it the -Inf fitness
// penalty). The evaluation cache memoizes it deliberately, so a
// quarantined point costs no further tool runs.
type QuarantineError struct {
	Key      string
	Failures int
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("point %s quarantined after %d failed evaluation attempts", e.Key, e.Failures)
}

// Policy configures the Supervisor. The zero value gets defaults suited to
// flaky-but-recoverable tooling: 3 attempts, 100ms base backoff doubling to
// a 5s cap, quarantine after 2 exhausted-retry rounds, no deadline.
type Policy struct {
	// Timeout bounds each evaluation attempt (0 = no deadline). Deadlines
	// reach the tool through the attempt context, so only context-aware
	// evaluators can be interrupted mid-run.
	Timeout time.Duration
	// MaxAttempts is the total number of tries per evaluation, first
	// included (default 3).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it (default 100ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth (default 5s).
	BackoffMax time.Duration
	// JitterSeed seeds the independent backoff-jitter RNG. The run RNG is
	// never consulted, so retries cannot perturb search results.
	JitterSeed int64
	// QuarantineAfter is how many consecutive exhausted-retry failures a
	// point survives before the circuit breaker quarantines it (default 2).
	QuarantineAfter int
	// Sleep replaces time.Sleep in tests (nil = time.Sleep). Backoff waits
	// are interruptible: cancellation of the evaluation context cuts them
	// short.
	Sleep func(time.Duration)
	// Tracer receives resilience.evaluate spans with resilience.attempt
	// children and pre-measured resilience.backoff waits (nil = tracing
	// off). Spans observe scheduling the supervisor already decided; the
	// backoff-jitter RNG is never consulted by tracing, so supervised
	// results stay byte-identical with tracing on or off.
	Tracer *trace.Tracer
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 5 * time.Second
	}
	if p.QuarantineAfter == 0 {
		p.QuarantineAfter = 2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Validate rejects unusable policies with a clear error.
func (p Policy) Validate() error {
	if p.Timeout < 0 {
		return fmt.Errorf("resilience: timeout %v < 0", p.Timeout)
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("resilience: max attempts %d < 0", p.MaxAttempts)
	}
	if p.BackoffBase < 0 || p.BackoffMax < 0 {
		return fmt.Errorf("resilience: negative backoff (base %v, max %v)", p.BackoffBase, p.BackoffMax)
	}
	if p.QuarantineAfter < 0 {
		return fmt.Errorf("resilience: quarantine threshold %d < 0", p.QuarantineAfter)
	}
	return nil
}

// Supervisor wraps an evaluator with the fault policy. It is safe for
// concurrent use - evaluation fans out across pool workers.
type Supervisor struct {
	space  *param.Space
	eval   dataset.ContextEvaluator
	policy Policy

	mu          sync.Mutex
	jitter      *rand.Rand
	failures    map[string]int
	quarantined map[string]int // key -> failures at quarantine time

	evals          *telemetry.Counter
	retries        *telemetry.Counter
	timeouts       *telemetry.Counter
	transientErrs  *telemetry.Counter
	permanentErrs  *telemetry.Counter
	quarantinedCtr *telemetry.Counter
	quarantineHits *telemetry.Counter
	breakerOpen    *telemetry.Gauge
}

// NewSupervisor builds a supervisor over a context-aware evaluator. reg
// receives the supervisor's counters (retries, timeouts, breaker state); a
// nil reg records into a private registry.
func NewSupervisor(space *param.Space, eval dataset.ContextEvaluator, policy Policy, reg *telemetry.Registry) (*Supervisor, error) {
	if space == nil || eval == nil {
		return nil, errors.New("resilience: nil space or evaluator")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Supervisor{
		space:          space,
		eval:           eval,
		policy:         policy.withDefaults(),
		jitter:         rand.New(rand.NewSource(policy.JitterSeed)),
		failures:       make(map[string]int),
		quarantined:    make(map[string]int),
		evals:          reg.Counter(MetricEvaluations),
		retries:        reg.Counter(MetricRetries),
		timeouts:       reg.Counter(MetricTimeouts),
		transientErrs:  reg.Counter(MetricTransientErrs),
		permanentErrs:  reg.Counter(MetricPermanentErrs),
		quarantinedCtr: reg.Counter(MetricQuarantined),
		quarantineHits: reg.Counter(MetricQuarantineHits),
		breakerOpen:    reg.Gauge("resilience.breaker_open"),
	}, nil
}

// Supervise wraps a plain (context-blind) evaluator; deadlines then only
// bound the attempt budget, they cannot interrupt a stuck call.
func Supervise(space *param.Space, eval dataset.Evaluator, policy Policy, reg *telemetry.Registry) (*Supervisor, error) {
	if eval == nil {
		return nil, errors.New("resilience: nil space or evaluator")
	}
	return NewSupervisor(space, dataset.AdaptContext(eval), policy, reg)
}

// Evaluator returns the supervised evaluation function, ready for
// dataset.NewCacheContext or ga.NewContext.
func (s *Supervisor) Evaluator() dataset.ContextEvaluator {
	return s.Evaluate
}

// BatchEvaluator returns the supervised batch evaluation function: each
// point of a batch is supervised independently - its own per-attempt
// deadlines, retry budget, backoff schedule, and quarantine accounting,
// exactly as if it had been dispatched alone - while the batch fans out on
// up to par pool workers. One point exhausting its retries never fails the
// rest of the batch; results land by index at any parallelism.
func (s *Supervisor) BatchEvaluator(par int) dataset.BatchEvaluator {
	return dataset.BatchOf(s.Evaluate, par)
}

// PlainEvaluator adapts the supervisor for context-blind callers (e.g.
// dataset.Build); per-attempt timeouts and retries still apply.
func (s *Supervisor) PlainEvaluator() dataset.Evaluator {
	return func(pt param.Point) (metrics.Metrics, error) {
		return s.Evaluate(context.Background(), pt)
	}
}

// Quarantined returns the keys of quarantined points, sorted.
func (s *Supervisor) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.quarantined))
	for k := range s.quarantined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// backoff returns the jittered delay before retry attempt (1-based):
// exponential growth from BackoffBase capped at BackoffMax, scaled by a
// uniform factor in [0.5, 1.0) from the independent jitter RNG.
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := s.policy.BackoffBase << uint(attempt-1)
	if d > s.policy.BackoffMax || d <= 0 { // <=0 guards shift overflow
		d = s.policy.BackoffMax
	}
	s.mu.Lock()
	f := 0.5 + 0.5*s.jitter.Float64()
	s.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// garbage reports whether a tool returned metrics containing NaN or
// infinite values - output to be discarded and retried, never cached.
func garbage(m metrics.Metrics) bool {
	for _, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Evaluate runs one supervised evaluation of pt under ctx. The returned
// error is either transient (dataset.IsTransient: retries exhausted or ctx
// canceled - never memoized by the cache) or permanent (infeasible point or
// quarantine - memoized deliberately).
func (s *Supervisor) Evaluate(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
	key := s.space.Key(pt)

	tracing := s.policy.Tracer.Enabled()
	var esp trace.Active
	if tracing {
		esp = s.policy.Tracer.Start("resilience.evaluate")
		defer esp.End()
	}

	s.mu.Lock()
	failures, quarantined := s.quarantined[key]
	s.mu.Unlock()
	if quarantined {
		s.quarantineHits.Inc()
		return nil, &QuarantineError{Key: key, Failures: failures}
	}

	var lastErr error
	for attempt := 1; attempt <= s.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			s.retries.Inc()
			wait := s.backoff(attempt - 1)
			var backoffStart time.Time
			if tracing {
				backoffStart = time.Now()
			}
			done := make(chan struct{})
			go func() { s.policy.Sleep(wait); close(done) }()
			interrupted := false
			select {
			case <-done:
			case <-ctx.Done():
				interrupted = true
			}
			if tracing {
				esp.Emit("resilience.backoff", backoffStart, time.Since(backoffStart))
			}
			if interrupted {
				return nil, dataset.MarkTransient(ctx.Err())
			}
		}

		var asp trace.Active
		if tracing {
			asp = esp.Child("resilience.attempt")
		}
		actx := ctx
		cancel := func() {}
		if s.policy.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, s.policy.Timeout)
		}
		m, err := s.eval(actx, pt)
		timedOut := actx.Err() == context.DeadlineExceeded && ctx.Err() == nil
		cancel()
		asp.End()

		switch {
		case err == nil && garbage(m):
			s.transientErrs.Inc()
			lastErr = dataset.MarkTransient(fmt.Errorf("point %s: evaluator returned non-finite metrics", key))
		case err == nil:
			s.mu.Lock()
			delete(s.failures, key)
			s.mu.Unlock()
			s.evals.Inc()
			return m, nil
		case ctx.Err() != nil:
			// The run itself was canceled (not a per-attempt deadline):
			// surface transiently so nothing is memoized on shutdown.
			return nil, dataset.MarkTransient(ctx.Err())
		case timedOut || errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Inc()
			lastErr = dataset.MarkTransient(fmt.Errorf("point %s: %w", key, ErrTimeout))
		case dataset.IsTransient(err):
			s.transientErrs.Inc()
			lastErr = err
		default:
			// Permanent: the point is infeasible. No retry, memoized.
			s.permanentErrs.Inc()
			s.evals.Inc()
			return nil, err
		}
	}

	// Retries exhausted. Record the failure round; quarantine the point
	// once it has failed QuarantineAfter consecutive rounds.
	s.mu.Lock()
	s.failures[key]++
	rounds := s.failures[key]
	trip := rounds >= s.policy.QuarantineAfter
	if trip {
		delete(s.failures, key)
		s.quarantined[key] = rounds
		open := len(s.quarantined)
		s.mu.Unlock()
		s.quarantinedCtr.Inc()
		s.breakerOpen.Set(float64(open))
		return nil, &QuarantineError{Key: key, Failures: rounds}
	}
	s.mu.Unlock()
	return nil, dataset.MarkTransient(fmt.Errorf("point %s: %d attempts failed: %w", key, s.policy.MaxAttempts, lastErr))
}
