package resilience

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

// CheckpointVersion is the on-disk checkpoint schema version; Load rejects
// files written by an incompatible schema.
const CheckpointVersion = 1

// jfloat is a float64 that survives JSON: IEEE specials (which appear
// legitimately in GA state - e.g. a trajectory's best value before any
// feasible point) are encoded as quoted strings.
type jfloat float64

func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *jfloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = jfloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("bad float %s", b)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("bad float %q", s)
	}
	*f = jfloat(v)
	return nil
}

// The serialized checkpoint schema. Design points are stored by canonical
// key (param.Space.Key), which survives parameter-value renumbering better
// than raw indices and is validated on load.

type checkpointJSON struct {
	Version    int              `json:"version"`
	SavedAt    string           `json:"saved_at,omitempty"` // informational only
	Space      []spaceParamJSON `json:"space"`
	Seed       int64            `json:"seed"`
	Generation int              `json:"generation"`
	Draws      int64            `json:"rng_draws"`
	Population []string         `json:"population"`
	Best       *bestJSON        `json:"best,omitempty"`
	Stale      int              `json:"stale"`
	PrevBest   jfloat           `json:"prev_best"`
	Trajectory []trajJSON       `json:"trajectory"`
	Cache      cacheJSON        `json:"cache"`
}

type spaceParamJSON struct {
	Name string `json:"name"`
	Card int    `json:"card"`
}

type bestJSON struct {
	Key     string `json:"key"`
	Fitness jfloat `json:"fitness"`
	Value   jfloat `json:"value"`
}

type trajJSON struct {
	Generation    int    `json:"gen"`
	DistinctEvals int    `json:"distinct_evals"`
	BestValue     jfloat `json:"best_value"`
	UniqueGenomes int    `json:"unique_genomes"`
}

type cacheJSON struct {
	Distinct  int64            `json:"distinct"`
	Total     int64            `json:"total"`
	Dedup     int64            `json:"dedup"`
	Transient int64            `json:"transient"`
	Entries   []cacheEntryJSON `json:"entries"`
}

type cacheEntryJSON struct {
	Key     string            `json:"key"`
	Metrics map[string]jfloat `json:"metrics,omitempty"`
	Err     string            `json:"err,omitempty"`
}

// fingerprint summarizes the space for checkpoint validation: parameter
// names and cardinalities in order.
func fingerprint(space *param.Space) []spaceParamJSON {
	fp := make([]spaceParamJSON, space.Len())
	for i := 0; i < space.Len(); i++ {
		fp[i] = spaceParamJSON{Name: space.Param(i).Name(), Card: space.Param(i).Card()}
	}
	return fp
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory, fsyncs it, and renames it into place, so a crash mid-write
// leaves either the previous checkpoint or the new one - never a torn file.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Save persists a GA snapshot to path atomically.
func Save(path string, space *param.Space, snap *ga.Snapshot) error {
	out := checkpointJSON{
		Version:    CheckpointVersion,
		SavedAt:    time.Now().UTC().Format(time.RFC3339),
		Space:      fingerprint(space),
		Seed:       snap.Seed,
		Generation: snap.Generation,
		Draws:      snap.Draws,
		Stale:      snap.Stale,
		PrevBest:   jfloat(snap.PrevBest),
	}
	out.Population = make([]string, len(snap.Population))
	for i, g := range snap.Population {
		out.Population[i] = space.Key(g)
	}
	if snap.Best != nil {
		out.Best = &bestJSON{
			Key:     space.Key(snap.Best),
			Fitness: jfloat(snap.BestFitness),
			Value:   jfloat(snap.BestValue),
		}
	}
	out.Trajectory = make([]trajJSON, len(snap.Trajectory))
	for i, gp := range snap.Trajectory {
		out.Trajectory[i] = trajJSON{
			Generation:    gp.Generation,
			DistinctEvals: gp.DistinctEvals,
			BestValue:     jfloat(gp.BestValue),
			UniqueGenomes: gp.UniqueGenomes,
		}
	}
	out.Cache = cacheJSON{
		Distinct:  snap.Cache.Distinct,
		Total:     snap.Cache.Total,
		Dedup:     snap.Cache.Dedup,
		Transient: snap.Cache.Transient,
		Entries:   make([]cacheEntryJSON, len(snap.Cache.Entries)),
	}
	for i, e := range snap.Cache.Entries {
		ej := cacheEntryJSON{Key: e.Key, Err: e.Err}
		if e.Metrics != nil {
			ej.Metrics = make(map[string]jfloat, len(e.Metrics))
			for name, v := range e.Metrics {
				ej.Metrics[name] = jfloat(v)
			}
		}
		out.Cache.Entries[i] = ej
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("resilience: encode checkpoint: %w", err)
	}
	if err := WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("resilience: write checkpoint %s: %w", path, err)
	}
	return nil
}

// Load reads a checkpoint written by Save and rebinds it to the given
// space, validating the schema version, the space fingerprint, and the
// seed (pass the run's configured seed; a snapshot from a different seed
// cannot resume that run).
func Load(path string, space *param.Space, seed int64) (*ga.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resilience: read checkpoint: %w", err)
	}
	var in checkpointJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("resilience: decode checkpoint %s: %w", path, err)
	}
	if in.Version != CheckpointVersion {
		return nil, fmt.Errorf("resilience: checkpoint %s has schema version %d, this build reads %d",
			path, in.Version, CheckpointVersion)
	}
	want := fingerprint(space)
	if len(in.Space) != len(want) {
		return nil, fmt.Errorf("resilience: checkpoint %s was taken on a %d-parameter space, run has %d",
			path, len(in.Space), len(want))
	}
	for i := range want {
		if in.Space[i] != want[i] {
			return nil, fmt.Errorf("resilience: checkpoint %s space mismatch at parameter %d: saved %s/%d, run has %s/%d",
				path, i, in.Space[i].Name, in.Space[i].Card, want[i].Name, want[i].Card)
		}
	}
	if in.Seed != seed {
		return nil, fmt.Errorf("resilience: checkpoint %s was taken with seed %d, run configured with seed %d",
			path, in.Seed, seed)
	}
	// A bit-flipped but still-parseable file must never resume silently
	// wrong: every counter a resumed run trusts has to be a value a real
	// run could have produced.
	if in.Generation < 0 {
		return nil, fmt.Errorf("resilience: checkpoint %s has negative generation %d", path, in.Generation)
	}
	if in.Draws < 0 {
		return nil, fmt.Errorf("resilience: checkpoint %s has negative RNG draw count %d", path, in.Draws)
	}
	if in.Stale < 0 {
		return nil, fmt.Errorf("resilience: checkpoint %s has negative convergence counter %d", path, in.Stale)
	}
	if len(in.Population) == 0 {
		return nil, fmt.Errorf("resilience: checkpoint %s has an empty population", path)
	}
	if in.Cache.Distinct < 0 || in.Cache.Total < 0 || in.Cache.Dedup < 0 || in.Cache.Transient < 0 {
		return nil, fmt.Errorf("resilience: checkpoint %s has negative cache counters", path)
	}
	for i, gp := range in.Trajectory {
		if gp.Generation < 0 || gp.DistinctEvals < 0 || gp.UniqueGenomes < 0 {
			return nil, fmt.Errorf("resilience: checkpoint %s trajectory entry %d has negative fields", path, i)
		}
	}

	snap := &ga.Snapshot{
		Seed:       in.Seed,
		Generation: in.Generation,
		Draws:      in.Draws,
		Stale:      in.Stale,
		PrevBest:   float64(in.PrevBest),
	}
	snap.Population = make([]param.Point, len(in.Population))
	for i, key := range in.Population {
		pt, err := space.ParseKey(key)
		if err != nil {
			return nil, fmt.Errorf("resilience: checkpoint %s genome %d: %w", path, i, err)
		}
		snap.Population[i] = pt
	}
	if in.Best != nil {
		pt, err := space.ParseKey(in.Best.Key)
		if err != nil {
			return nil, fmt.Errorf("resilience: checkpoint %s best genome: %w", path, err)
		}
		snap.Best = pt
		snap.BestFitness = float64(in.Best.Fitness)
		snap.BestValue = float64(in.Best.Value)
	}
	snap.Trajectory = make([]ga.GenPoint, len(in.Trajectory))
	for i, gp := range in.Trajectory {
		snap.Trajectory[i] = ga.GenPoint{
			Generation:    gp.Generation,
			DistinctEvals: gp.DistinctEvals,
			BestValue:     float64(gp.BestValue),
			UniqueGenomes: gp.UniqueGenomes,
		}
	}
	snap.Cache = dataset.CacheSnapshot{
		Distinct:  in.Cache.Distinct,
		Total:     in.Cache.Total,
		Dedup:     in.Cache.Dedup,
		Transient: in.Cache.Transient,
		Entries:   make([]dataset.CacheEntrySnapshot, len(in.Cache.Entries)),
	}
	for i, ej := range in.Cache.Entries {
		if _, err := space.ParseKey(ej.Key); err != nil {
			return nil, fmt.Errorf("resilience: checkpoint %s cache entry %d: %w", path, i, err)
		}
		es := dataset.CacheEntrySnapshot{Key: ej.Key, Err: ej.Err}
		if ej.Metrics != nil {
			es.Metrics = make(metrics.Metrics, len(ej.Metrics))
			for name, v := range ej.Metrics {
				es.Metrics[name] = float64(v)
			}
		}
		snap.Cache.Entries[i] = es
	}
	return snap, nil
}

// Saver binds a checkpoint path to a space and measures every write, the
// ready-made ga.Config.Checkpoint implementation for the cmd tools.
type Saver struct {
	path   string
	space  *param.Space
	count  *telemetry.Counter
	millis *telemetry.Histogram
}

// NewSaver builds a Saver writing to path. reg receives checkpoint count
// and latency metrics; nil uses a private registry.
func NewSaver(path string, space *param.Space, reg *telemetry.Registry) *Saver {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Saver{
		path:   path,
		space:  space,
		count:  reg.Counter(MetricCheckpoints),
		millis: reg.Histogram(MetricCheckpointMS, checkpointMillisBounds),
	}
}

// Save implements ga.Config.Checkpoint.
func (s *Saver) Save(snap *ga.Snapshot) error {
	start := time.Now()
	if err := Save(s.path, s.space, snap); err != nil {
		return err
	}
	s.count.Inc()
	s.millis.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return nil
}
