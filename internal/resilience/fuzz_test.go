package resilience

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

const fuzzSeed = 7

func fuzzSpace(t testing.TB) *param.Space {
	t.Helper()
	space, err := param.NewSpace(
		param.Int("a", 0, 7, 1),
		param.Choice("b", "x", "y", "z"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// fuzzSnapshot is a representative valid checkpoint over fuzzSpace.
func fuzzSnapshot() *ga.Snapshot {
	return &ga.Snapshot{
		Seed:        fuzzSeed,
		Generation:  2,
		Draws:       40,
		Population:  []param.Point{{0, 1}, {3, 2}, {7, 0}, {4, 1}},
		Best:        param.Point{3, 2},
		BestFitness: -812,
		BestValue:   812,
		Stale:       1,
		PrevBest:    -830,
		Trajectory: []ga.GenPoint{
			{Generation: 0, DistinctEvals: 4, BestValue: 830, UniqueGenomes: 4},
			{Generation: 1, DistinctEvals: 7, BestValue: 812, UniqueGenomes: 3},
		},
		Cache: dataset.CacheSnapshot{
			Distinct: 7, Total: 9, Dedup: 1,
			Entries: []dataset.CacheEntrySnapshot{
				{Key: "0,1", Metrics: metrics.Metrics{"luts": 830}},
				{Key: "3,2", Metrics: metrics.Metrics{"luts": 812}},
				{Key: "7,0", Err: "infeasible"},
			},
		},
	}
}

// FuzzLoadCheckpoint feeds arbitrary bytes through the checkpoint decoder:
// truncated, bit-flipped, and version-skewed files must come back as
// errors - never a panic, and never a snapshot a resumed run would trust
// with state no real run could have produced.
func FuzzLoadCheckpoint(f *testing.F) {
	space := fuzzSpace(f)
	dir := f.TempDir()
	valid := filepath.Join(dir, "valid.json")
	if err := Save(valid, space, fuzzSnapshot()); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])                                                     // truncated mid-object
	f.Add(bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 2`), 1)) // schema skew
	f.Add(bytes.Replace(data, []byte(`"rng_draws": 40`), []byte(`"rng_draws": -40`), 1))
	f.Add(bytes.Replace(data, []byte(`"seed": 7`), []byte(`"seed": 8`), 1))
	f.Add(bytes.Replace(data, []byte(`"0,1"`), []byte(`"9,1"`), 1)) // out-of-range genome
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ckpt.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		snap, err := Load(path, space, fuzzSeed)
		if err != nil {
			return // rejected input: exactly what corruption should produce
		}
		// Accepted input: every field a resumed run trusts must be sane.
		if snap.Generation < 0 || snap.Draws < 0 || snap.Stale < 0 {
			t.Fatalf("accepted checkpoint with negative run state: gen=%d draws=%d stale=%d",
				snap.Generation, snap.Draws, snap.Stale)
		}
		if len(snap.Population) == 0 {
			t.Fatal("accepted checkpoint with empty population")
		}
		for i, g := range snap.Population {
			if verr := space.Validate(g); verr != nil {
				t.Fatalf("accepted checkpoint with invalid genome %d: %v", i, verr)
			}
		}
		if snap.Best != nil {
			if verr := space.Validate(snap.Best); verr != nil {
				t.Fatalf("accepted checkpoint with invalid best genome: %v", verr)
			}
		}
		c := snap.Cache
		if c.Distinct < 0 || c.Total < 0 || c.Dedup < 0 || c.Transient < 0 {
			t.Fatalf("accepted checkpoint with negative cache counters: %+v", c)
		}
		// And the accepted state must round-trip: saving and reloading what
		// Load produced cannot fail or drift (a silently lossy decode would
		// resume a different search than it claims to).
		again := filepath.Join(t.TempDir(), "again.json")
		if err := Save(again, space, snap); err != nil {
			t.Fatalf("re-save of accepted checkpoint failed: %v", err)
		}
		snap2, err := Load(again, space, fuzzSeed)
		if err != nil {
			t.Fatalf("re-load of accepted checkpoint failed: %v", err)
		}
		if snap2.Generation != snap.Generation || snap2.Draws != snap.Draws ||
			len(snap2.Population) != len(snap.Population) ||
			snap2.Cache.Distinct != snap.Cache.Distinct || snap2.Cache.Total != snap.Cache.Total ||
			len(snap2.Cache.Entries) != len(snap.Cache.Entries) {
			t.Fatalf("checkpoint drifted across a save/load round trip:\nfirst  %+v\nsecond %+v", snap, snap2)
		}
	})
}

// TestLoadRejectsCorruption pins the decoder's hardening cases as plain
// tests, so they run on every `go test` (the fuzzer only replays its
// corpus there).
func TestLoadRejectsCorruption(t *testing.T) {
	space := fuzzSpace(t)
	dir := t.TempDir()
	valid := filepath.Join(dir, "valid.json")
	if err := Save(valid, space, fuzzSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(valid, space, fuzzSeed); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	cases := map[string][]byte{
		"truncated":         data[:len(data)/2],
		"empty":             {},
		"not-json":          []byte("not json"),
		"empty-object":      []byte(`{}`),
		"version-skew":      bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1),
		"wrong-seed":        bytes.Replace(data, []byte(`"seed": 7`), []byte(`"seed": 8`), 1),
		"negative-draws":    bytes.Replace(data, []byte(`"rng_draws": 40`), []byte(`"rng_draws": -40`), 1),
		"negative-gen":      bytes.Replace(data, []byte(`"generation": 2`), []byte(`"generation": -2`), 1),
		"negative-stale":    bytes.Replace(data, []byte(`"stale": 1`), []byte(`"stale": -1`), 1),
		"bad-genome":        bytes.Replace(data, []byte(`"0,1"`), []byte(`"9,1"`), 1),
		"negative-distinct": bytes.Replace(data, []byte(`"distinct": 7`), []byte(`"distinct": -7`), 1),
		"empty-population":  bytes.Replace(data, []byte(`"population": [`), []byte(`"population": [],"x": [`), 1),
	}
	for name, mutated := range cases {
		if bytes.Equal(mutated, data) {
			t.Fatalf("case %s did not mutate the checkpoint", name)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path, space, fuzzSeed); err == nil {
			t.Errorf("case %s: corrupted checkpoint accepted", name)
		}
	}
}
