package faulty

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/resilience"
)

func testSpace(t *testing.T) *param.Space {
	t.Helper()
	space, err := param.NewSpace(
		param.Int("a", 0, 15, 1),
		param.Int("b", 0, 15, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func cleanEval(pt param.Point) (metrics.Metrics, error) {
	return metrics.Metrics{"score": float64(pt[0]*pt[1] + pt[0])}, nil
}

func TestClassifyDeterministicAndOrderFree(t *testing.T) {
	space := testSpace(t)
	cfg := Config{TransientRate: 0.2, PermanentRate: 0.1, HangRate: 0.05, NaNRate: 0.05, Seed: 9}
	a, err := New(space, cleanEval, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(space, cleanEval, cfg)

	counts := map[Class]int{}
	total := 0
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			pt := param.Point{x, y}
			ca := a.Classify(pt)
			// Same class from an independent instance, and again after other
			// points were classified (order independence).
			if cb := b.Classify(pt); ca != cb {
				t.Fatalf("point %v: %v vs %v across instances", pt, ca, cb)
			}
			if again := a.Classify(pt); again != ca {
				t.Fatalf("point %v: class changed on re-query: %v -> %v", pt, ca, again)
			}
			counts[ca]++
			total++
		}
	}
	// Fractions should be in the right ballpark over 256 points.
	if f := float64(counts[Transient]) / float64(total); f < 0.1 || f > 0.3 {
		t.Errorf("transient fraction %v far from configured 0.2", f)
	}
	if counts[Clean] == 0 || counts[Permanent] == 0 {
		t.Errorf("degenerate classification: %v", counts)
	}

	// A different seed reshuffles assignments.
	cfg.Seed = 10
	c, _ := New(space, cleanEval, cfg)
	same := 0
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			if a.Classify(param.Point{x, y}) == c.Classify(param.Point{x, y}) {
				same++
			}
		}
	}
	if same == total {
		t.Error("seed change did not reshuffle fault assignment")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TransientRate: -0.1},
		{TransientRate: 1.5},
		{PermanentRate: math.NaN()},
		{HangRate: 2},
		{NaNRate: -1},
		{TransientRate: 0.6, PermanentRate: 0.6},
		{TransientFailures: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := (Config{TransientRate: 0.5, PermanentRate: 0.5}).Validate(); err != nil {
		t.Errorf("boundary config rejected: %v", err)
	}
}

func TestTransientFaultsFirstNAttempts(t *testing.T) {
	space := testSpace(t)
	in, err := New(space, cleanEval, Config{TransientRate: 1, TransientFailures: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pt := param.Point{4, 5}
	for i := 1; i <= 2; i++ {
		if _, err := in.Evaluate(context.Background(), pt); !dataset.IsTransient(err) {
			t.Fatalf("attempt %d: got %v, want transient", i, err)
		}
	}
	m, err := in.Evaluate(context.Background(), pt)
	if err != nil {
		t.Fatalf("attempt 3: %v, want success", err)
	}
	want, _ := cleanEval(pt)
	if m["score"] != want["score"] {
		t.Errorf("score = %v, want %v", m["score"], want["score"])
	}
	if got := in.Injected(Transient); got != 3 {
		t.Errorf("Injected(Transient) = %d, want 3", got)
	}
}

func TestPermanentAndNaNModes(t *testing.T) {
	space := testSpace(t)
	pt := param.Point{2, 3}

	perm, _ := New(space, cleanEval, Config{PermanentRate: 1})
	if _, err := perm.Evaluate(context.Background(), pt); err == nil || dataset.IsTransient(err) {
		t.Errorf("permanent mode: got %v, want hard error", err)
	}

	nan, _ := New(space, cleanEval, Config{NaNRate: 1})
	m, err := nan.Evaluate(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m["score"]) {
		t.Errorf("NaN mode returned finite score %v", m["score"])
	}
}

func TestHangRespectsContext(t *testing.T) {
	space := testSpace(t)
	in, _ := New(space, cleanEval, Config{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.Evaluate(ctx, param.Point{1, 1})
	if !dataset.IsTransient(err) {
		t.Fatalf("got %v, want transient cancellation error", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang ignored context cancellation")
	}
}

// TestHangThenQuarantine drives the full failure path: a hanging point
// under a supervisor with a short attempt deadline times out, exhausts
// retries, and ends up quarantined.
func TestHangThenQuarantine(t *testing.T) {
	space := testSpace(t)
	in, _ := New(space, cleanEval, Config{HangRate: 1})
	sup, err := resilience.NewSupervisor(space, in.Evaluate, resilience.Policy{
		Timeout:     2 * time.Millisecond,
		MaxAttempts: 2,
		BackoffBase: time.Microsecond,
		// QuarantineAfter: 2 rounds of exhausted retries trip the breaker.
		QuarantineAfter: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := param.Point{6, 6}
	if _, err := sup.Evaluate(context.Background(), pt); !dataset.IsTransient(err) {
		t.Fatalf("round 1: got %v, want transient timeout", err)
	}
	_, err = sup.Evaluate(context.Background(), pt)
	var qe *resilience.QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("round 2: got %v, want quarantine", err)
	}
	if got := in.Injected(Hang); got < 3 {
		t.Errorf("Injected(Hang) = %d, want >= 3 (2 attempts + 2 attempts, minus the quarantine short-circuit)", got)
	}
}

// TestTransientFaultsDoNotPerturbSearch is the headline acceptance
// property: with a retrying supervisor whose attempt budget exceeds the
// injected failure count, a heavily faulted run must produce a result
// byte-identical to the fault-free run.
func TestTransientFaultsDoNotPerturbSearch(t *testing.T) {
	space := testSpace(t)
	obj := metrics.MaximizeMetric("score")
	cfg := ga.Config{PopulationSize: 8, Generations: 15, Seed: 77, Parallelism: 4}

	clean, err := ga.New(space, obj, cleanEval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Run()

	in, err := New(space, cleanEval, Config{TransientRate: 0.25, TransientFailures: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := resilience.NewSupervisor(space, in.Evaluate, resilience.Policy{
		MaxAttempts: 4, // > TransientFailures, so every transient point recovers
		BackoffBase: time.Microsecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := ga.NewContext(space, obj, sup.Evaluator(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faulted.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if in.Injected(Transient) == 0 {
		t.Fatal("test is vacuous: no transient faults were injected")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("faulted result differs from fault-free\n got: %+v\nwant: %+v", got, want)
	}
}
