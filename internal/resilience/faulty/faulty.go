// Package faulty provides a deterministic fault-injection evaluator for
// exercising the resilience layer. Each design point is assigned a fault
// class (clean, transient, permanent, hang, or NaN-metrics) by hashing its
// canonical key with the injector seed, so a given (seed, space, rates)
// triple always faults the same points the same way - across processes,
// across resumed runs, and regardless of evaluation order or parallelism.
//
// Transient faults fail the first Config.TransientFailures attempts on a
// point and then succeed, which lets a retrying supervisor absorb them
// without changing search results. Permanent, hang, and NaN faults persist
// for the life of the point; under the supervisor they end in an immediate
// permanent error, repeated timeouts, and retry exhaustion respectively,
// which makes them the natural probes for circuit-breaker behavior.
package faulty

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/synth"
)

// Class is the fault behavior assigned to a design point.
type Class int

const (
	// Clean points delegate straight to the inner evaluator.
	Clean Class = iota
	// Transient points fail their first TransientFailures attempts.
	Transient
	// Permanent points always fail with a non-transient error.
	Permanent
	// Hang points block until the attempt's context is canceled.
	Hang
	// NaN points return metrics poisoned with IEEE specials.
	NaN
)

func (c Class) String() string {
	switch c {
	case Clean:
		return "clean"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Hang:
		return "hang"
	case NaN:
		return "nan"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Config selects which fraction of the design space misbehaves and how.
// The rates carve disjoint slices out of [0,1): a point's hash decides
// which slice it falls in, so expected fault fractions match the rates
// over large spaces. Rates must be non-negative and sum to at most 1.
type Config struct {
	// TransientRate is the fraction of points that fail transiently.
	TransientRate float64
	// TransientFailures is how many attempts fail before a transient
	// point succeeds (default 1).
	TransientFailures int
	// PermanentRate is the fraction of points that always fail hard.
	PermanentRate float64
	// HangRate is the fraction of points that block until canceled.
	HangRate float64
	// NaNRate is the fraction of points returning NaN-poisoned metrics.
	NaNRate float64
	// Seed decorrelates fault assignment from the space layout and the
	// search seed.
	Seed int64
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"TransientRate", c.TransientRate},
		{"PermanentRate", c.PermanentRate},
		{"HangRate", c.HangRate},
		{"NaNRate", c.NaNRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("faulty: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if sum := c.TransientRate + c.PermanentRate + c.HangRate + c.NaNRate; sum > 1 {
		return fmt.Errorf("faulty: fault rates sum to %v, must be at most 1", sum)
	}
	if c.TransientFailures < 0 {
		return fmt.Errorf("faulty: TransientFailures %d is negative", c.TransientFailures)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.TransientFailures == 0 {
		c.TransientFailures = 1
	}
	return c
}

// Injector wraps an evaluator with deterministic seeded faults.
type Injector struct {
	space *param.Space
	inner dataset.ContextEvaluator
	cfg   Config

	mu       sync.Mutex
	attempts map[string]int // transient-point attempt counts

	injected [5]atomic.Int64 // per-Class injection counts (Clean = passthroughs)
}

// New wraps a plain evaluator; see NewContext.
func New(space *param.Space, inner dataset.Evaluator, cfg Config) (*Injector, error) {
	return NewContext(space, dataset.AdaptContext(inner), cfg)
}

// NewContext builds an injector around a context-aware evaluator.
func NewContext(space *param.Space, inner dataset.ContextEvaluator, cfg Config) (*Injector, error) {
	if space == nil || inner == nil {
		return nil, fmt.Errorf("faulty: space and inner evaluator are required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		space:    space,
		inner:    inner,
		cfg:      cfg.withDefaults(),
		attempts: make(map[string]int),
	}, nil
}

// Classify returns the fault class assigned to a point. The class is a pure
// function of (point key, Seed, rates): the point's hash is mapped to a unit
// interval position and matched against the configured rate slices.
func (in *Injector) Classify(pt param.Point) Class {
	h := synth.Hash64("faulty", strconv.FormatInt(in.cfg.Seed, 10), in.space.Key(pt))
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	c := in.cfg
	switch {
	case u < c.TransientRate:
		return Transient
	case u < c.TransientRate+c.PermanentRate:
		return Permanent
	case u < c.TransientRate+c.PermanentRate+c.HangRate:
		return Hang
	case u < c.TransientRate+c.PermanentRate+c.HangRate+c.NaNRate:
		return NaN
	}
	return Clean
}

// Injected reports how many evaluations hit each class so far (Clean counts
// clean passthroughs).
func (in *Injector) Injected(c Class) int64 {
	return in.injected[c].Load()
}

// Evaluate implements dataset.ContextEvaluator with faults injected ahead
// of the inner evaluator.
func (in *Injector) Evaluate(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
	class := in.Classify(pt)
	in.injected[class].Add(1)
	switch class {
	case Transient:
		key := in.space.Key(pt)
		in.mu.Lock()
		in.attempts[key]++
		n := in.attempts[key]
		in.mu.Unlock()
		if n <= in.cfg.TransientFailures {
			return nil, dataset.MarkTransient(fmt.Errorf("faulty: injected transient failure %d/%d at %s",
				n, in.cfg.TransientFailures, key))
		}
	case Permanent:
		return nil, fmt.Errorf("faulty: injected permanent failure at %s", in.space.Key(pt))
	case Hang:
		<-ctx.Done()
		return nil, dataset.MarkTransient(ctx.Err())
	case NaN:
		m, err := in.inner(ctx, pt)
		if err != nil {
			return m, err
		}
		poisoned := make(metrics.Metrics, len(m))
		for name := range m {
			poisoned[name] = math.NaN()
		}
		return poisoned, nil
	}
	return in.inner(ctx, pt)
}
