package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

func supSpace(t *testing.T) *param.Space {
	t.Helper()
	space, err := param.NewSpace(
		param.Int("a", 0, 15, 1),
		param.Int("b", 0, 15, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// fakeSleep records backoff waits and returns immediately.
type fakeSleep struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (f *fakeSleep) sleep(d time.Duration) {
	f.mu.Lock()
	f.waits = append(f.waits, d)
	f.mu.Unlock()
}

func TestSupervisorRetriesTransientThenSucceeds(t *testing.T) {
	space := supSpace(t)
	var calls atomic.Int64
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		if calls.Add(1) < 3 {
			return nil, dataset.MarkTransient(errors.New("tool crashed"))
		}
		return metrics.Metrics{"m": 1}, nil
	}
	fs := &fakeSleep{}
	reg := telemetry.NewRegistry()
	sup, err := NewSupervisor(space, eval, Policy{MaxAttempts: 3, Sleep: fs.sleep}, reg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sup.Evaluate(context.Background(), param.Point{1, 2})
	if err != nil || m["m"] != 1 {
		t.Fatalf("m=%v err=%v, want success after retries", m, err)
	}
	if calls.Load() != 3 {
		t.Errorf("evaluator calls = %d, want 3", calls.Load())
	}
	if len(fs.waits) != 2 {
		t.Errorf("backoff sleeps = %d, want 2", len(fs.waits))
	}
	if got := reg.Counter(MetricRetries).Value(); got != 2 {
		t.Errorf("retries counter = %v, want 2", got)
	}
	if got := reg.Counter(MetricEvaluations).Value(); got != 1 {
		t.Errorf("evaluations counter = %v, want 1", got)
	}
}

func TestSupervisorPermanentErrorNoRetry(t *testing.T) {
	space := supSpace(t)
	var calls atomic.Int64
	boom := errors.New("infeasible")
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		return nil, boom
	}
	fs := &fakeSleep{}
	reg := telemetry.NewRegistry()
	sup, err := NewSupervisor(space, eval, Policy{Sleep: fs.sleep}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Evaluate(context.Background(), param.Point{0, 0}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the permanent error unchanged", err)
	}
	if calls.Load() != 1 {
		t.Errorf("evaluator calls = %d, want 1 (no retry on permanent errors)", calls.Load())
	}
	if got := reg.Counter(MetricPermanentErrs).Value(); got != 1 {
		t.Errorf("permanent counter = %v, want 1", got)
	}
}

func TestSupervisorTimeout(t *testing.T) {
	space := supSpace(t)
	var calls atomic.Int64
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		<-ctx.Done() // hang until the attempt deadline kills us
		return nil, ctx.Err()
	}
	fs := &fakeSleep{}
	reg := telemetry.NewRegistry()
	sup, err := NewSupervisor(space, eval, Policy{
		Timeout: 5 * time.Millisecond, MaxAttempts: 2, Sleep: fs.sleep,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sup.Evaluate(context.Background(), param.Point{3, 3})
	if !dataset.IsTransient(err) || !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want transient timeout error", err)
	}
	if calls.Load() != 2 {
		t.Errorf("evaluator calls = %d, want 2 (timeouts are retried)", calls.Load())
	}
	if got := reg.Counter(MetricTimeouts).Value(); got != 2 {
		t.Errorf("timeouts counter = %v, want 2", got)
	}
}

func TestSupervisorGarbageMetricsRetried(t *testing.T) {
	space := supSpace(t)
	var calls atomic.Int64
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		if calls.Add(1) == 1 {
			return metrics.Metrics{"m": math.NaN()}, nil
		}
		return metrics.Metrics{"m": 4}, nil
	}
	fs := &fakeSleep{}
	sup, err := NewSupervisor(space, eval, Policy{Sleep: fs.sleep}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sup.Evaluate(context.Background(), param.Point{2, 2})
	if err != nil || m["m"] != 4 {
		t.Fatalf("m=%v err=%v, want NaN output discarded and retried", m, err)
	}
	if calls.Load() != 2 {
		t.Errorf("evaluator calls = %d, want 2", calls.Load())
	}
}

func TestSupervisorQuarantineLifecycle(t *testing.T) {
	space := supSpace(t)
	var calls atomic.Int64
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		calls.Add(1)
		return nil, dataset.MarkTransient(errors.New("always down"))
	}
	fs := &fakeSleep{}
	reg := telemetry.NewRegistry()
	sup, err := NewSupervisor(space, eval, Policy{
		MaxAttempts: 2, QuarantineAfter: 2, Sleep: fs.sleep,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	pt := param.Point{7, 7}

	// Round 1: retries exhaust, error stays transient (not yet quarantined).
	_, err = sup.Evaluate(context.Background(), pt)
	if !dataset.IsTransient(err) {
		t.Fatalf("round 1: got %v, want transient", err)
	}
	// Round 2: breaker trips; the error becomes permanent.
	_, err = sup.Evaluate(context.Background(), pt)
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("round 2: got %v, want QuarantineError", err)
	}
	if dataset.IsTransient(err) {
		t.Fatal("quarantine error must be permanent so the cache memoizes it")
	}
	// Round 3: served from the quarantine map, evaluator untouched.
	before := calls.Load()
	if _, err := sup.Evaluate(context.Background(), pt); !errors.As(err, &qe) {
		t.Fatalf("round 3: got %v, want QuarantineError", err)
	}
	if calls.Load() != before {
		t.Error("quarantined point reached the evaluator")
	}
	if got := sup.Quarantined(); len(got) != 1 || got[0] != space.Key(pt) {
		t.Errorf("Quarantined() = %v, want [%s]", got, space.Key(pt))
	}
	if got := reg.Counter(MetricQuarantined).Value(); got != 1 {
		t.Errorf("quarantined counter = %v, want 1", got)
	}
	if got := reg.Counter(MetricQuarantineHits).Value(); got != 1 {
		t.Errorf("quarantine hits = %v, want 1", got)
	}

	// A success on a different point clears nothing it shouldn't.
	if _, err := sup.Evaluate(context.Background(), pt); err == nil {
		t.Fatal("quarantine must persist")
	}
}

func TestSupervisorBackoffGrowthAndJitterBounds(t *testing.T) {
	space := supSpace(t)
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		return metrics.Metrics{"m": 0}, nil
	}
	sup, err := NewSupervisor(space, eval, Policy{
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  1 * time.Second,
		JitterSeed:  42,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expected uncapped exponentials for attempts 1..6.
	caps := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, c := range caps {
		c *= time.Millisecond
		d := sup.backoff(i + 1)
		if d < c/2 || d >= c {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", i+1, d, c/2, c)
		}
	}
	// Same seed, same jitter sequence.
	sup2, _ := NewSupervisor(space, eval, Policy{
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  1 * time.Second,
		JitterSeed:  42,
	}, nil)
	sup3, _ := NewSupervisor(space, eval, Policy{
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  1 * time.Second,
		JitterSeed:  42,
	}, nil)
	for i := 1; i <= 8; i++ {
		if a, b := sup2.backoff(i), sup3.backoff(i); a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", i, a, b)
		}
	}
}

func TestSupervisorCancelDuringBackoff(t *testing.T) {
	space := supSpace(t)
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		return nil, dataset.MarkTransient(errors.New("down"))
	}
	// Real time.Sleep with a long base: cancellation must cut the wait short.
	sup, err := NewSupervisor(space, eval, Policy{BackoffBase: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = sup.Evaluate(ctx, param.Point{1, 1})
	if !dataset.IsTransient(err) {
		t.Fatalf("got %v, want transient cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff was not interruptible: took %v", elapsed)
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{Timeout: -time.Second},
		{MaxAttempts: -1},
		{BackoffBase: -1},
		{BackoffMax: -1},
		{QuarantineAfter: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
	if err := (Policy{}).Validate(); err != nil {
		t.Errorf("zero policy rejected: %v", err)
	}
}

// --- checkpoint file tests ---

// ckptEngine builds a small GA run over supSpace for file round-trips.
func ckptEngine(t *testing.T, space *param.Space, cfg ga.Config) *ga.Engine {
	t.Helper()
	eval := func(pt param.Point) (metrics.Metrics, error) {
		a, b := pt[0], pt[1]
		if (a*3+b)%13 == 5 {
			return nil, fmt.Errorf("infeasible")
		}
		return metrics.Metrics{"score": float64(a*b + a)}, nil
	}
	engine, err := ga.New(space, metrics.MaximizeMetric("score"), eval, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func ckptCfg(seed int64) ga.Config {
	return ga.Config{PopulationSize: 6, Generations: 20, Seed: seed, Parallelism: 3}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	space := supSpace(t)
	var snap *ga.Snapshot
	cfg := ckptCfg(3)
	cfg.Checkpoint = func(s *ga.Snapshot) error { snap = s; return nil }
	if _, err := ckptEngine(t, space, cfg).RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot")
	}
	// Exercise the IEEE-special encoding paths explicitly.
	snap.PrevBest = math.Inf(-1)
	snap.Trajectory[0].BestValue = math.Inf(1)

	path := filepath.Join(t.TempDir(), "ck.json")
	if err := Save(path, space, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, space, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip differs\n got: %+v\nwant: %+v", got, snap)
	}
}

func TestLoadValidation(t *testing.T) {
	space := supSpace(t)
	var snap *ga.Snapshot
	cfg := ckptCfg(5)
	cfg.Checkpoint = func(s *ga.Snapshot) error { snap = s; return nil }
	if _, err := ckptEngine(t, space, cfg).RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, space, snap); err != nil {
		t.Fatal(err)
	}

	if _, err := Load(filepath.Join(dir, "missing.json"), space, 5); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := Load(path, space, 6); err == nil {
		t.Error("wrong seed accepted")
	}
	other, _ := param.NewSpace(param.Int("a", 0, 15, 1), param.Int("b", 0, 7, 1))
	if _, err := Load(path, other, 5); err == nil {
		t.Error("mismatched space accepted")
	}
	three, _ := param.NewSpace(param.Int("a", 0, 15, 1), param.Int("b", 0, 15, 1), param.Int("c", 0, 3, 1))
	if _, err := Load(path, three, 5); err == nil {
		t.Error("wrong parameter count accepted")
	}
}

// TestFileResumeByteIdentical is the crash/resume acceptance test through
// the on-disk format: kill a run mid-search, Load the file in a fresh
// process-equivalent, and finish to the byte-identical ga.Result.
func TestFileResumeByteIdentical(t *testing.T) {
	space := supSpace(t)
	want := func() ga.Result {
		engine := ckptEngine(t, space, ckptCfg(11))
		return engine.Run()
	}()

	path := filepath.Join(t.TempDir(), "ck.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saver := NewSaver(path, space, nil)
	cfg := ckptCfg(11)
	cfg.Checkpoint = func(s *ga.Snapshot) error {
		if err := saver.Save(s); err != nil {
			return err
		}
		if s.Generation > 7 {
			cancel() // simulated kill mid-search
		}
		return nil
	}
	partial, err := ckptEngine(t, space, cfg).RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("run was not interrupted")
	}

	snap, err := Load(path, space, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := ckptCfg(11)
	cfg2.Resume = snap
	got, err := ckptEngine(t, space, cfg2).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed-from-file result differs\n got: %+v\nwant: %+v", got, want)
	}
}

func TestSaverRecordsTelemetry(t *testing.T) {
	space := supSpace(t)
	reg := telemetry.NewRegistry()
	saver := NewSaver(filepath.Join(t.TempDir(), "ck.json"), space, reg)
	cfg := ckptCfg(2)
	cfg.Checkpoint = saver.Save
	if _, err := ckptEngine(t, space, cfg).RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCheckpoints).Value(); got < 1 {
		t.Errorf("checkpoints counter = %v, want >= 1", got)
	}
}
