package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"nautilus/internal/telemetry/prom"
)

// volatileFamily matches exposition families whose presence depends on
// scheduling (per-shard dedup-wait counters materialize lazily on
// contention), excluded from the golden family list.
var volatileFamily = regexp.MustCompile(`_shard\d+$`)

// TestMetricsExposition runs sessions to completion, scrapes /metrics,
// and feeds it through the strict parser: the exposition must be
// well-formed (cumulative histograms, typed families, no duplicates) and
// must carry the route latency histograms, per-phase span histograms,
// and shared-cache hit/collision accounting the observability layer
// promises. The stable family set is pinned by a golden file.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	// The same spec twice: the second session answers every evaluation
	// from the shared per-IP cache, so hit counters are guaranteed.
	for i := 0; i < 2; i++ {
		st, err := s.Submit(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, st.ID)
	}
	// Exercise some API routes so their series exist, including a 404.
	c.do("GET", "/v1/jobs", nil)
	c.do("GET", "/v1/stats", nil)
	c.do("GET", "/v1/sessions", nil)
	c.do("GET", "/v1/jobs/nope", nil)

	resp, body := c.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != prom.ContentType {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	fams, err := prom.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, body)
	}

	byName := make(map[string]prom.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}

	// Per-phase span histograms: every phase of the span taxonomy the
	// batch-dispatch search exercises must have a labeled series.
	spans := make(map[string]bool)
	for _, sm := range byName["nautilus_span_duration_ns"].Samples {
		for _, l := range sm.Labels {
			if l.Name == "span" {
				spans[l.Value] = true
			}
		}
	}
	for _, want := range []string{
		"ga.generation", "ga.dispatch", "ga.selection", "ga.crossover", "ga.mutation",
		"cache.batch", "cache.dedup", "cache.probe",
	} {
		if !spans[want] {
			t.Errorf("span %q missing from nautilus_span_duration_ns (have %v)", want, spans)
		}
	}

	// Route latency histograms label by canonical /v1 pattern.
	routes := make(map[string]bool)
	for _, sm := range byName["nautilus_http_request_duration_ns"].Samples {
		for _, l := range sm.Labels {
			if l.Name == "route" {
				routes[l.Value] = true
			}
		}
	}
	for _, want := range []string{"GET /v1/jobs", "GET /v1/stats", "GET /v1/sessions", "GET /v1/jobs/{id}"} {
		if !routes[want] {
			t.Errorf("route %q missing from latency histogram (have %v)", want, routes)
		}
	}

	// Status-class counters saw both the 2xx traffic and the 404 probe.
	classes := make(map[string]float64)
	for _, sm := range byName["nautilus_http_requests_total"].Samples {
		for _, l := range sm.Labels {
			if l.Name == "code" {
				classes[l.Value] += sm.Value
			}
		}
	}
	if classes["2xx"] == 0 || classes["4xx"] == 0 {
		t.Errorf("status-class counters incomplete: %v", classes)
	}

	// Shared-cache accounting carries the ip label and a sane hit ratio.
	var hits, lookups float64
	for _, sm := range byName["nautilus_shared_cache_hits_total"].Samples {
		hits += sm.Value
	}
	for _, sm := range byName["nautilus_shared_cache_lookups_total"].Samples {
		lookups += sm.Value
	}
	if lookups == 0 || hits <= 0 || hits > lookups {
		t.Errorf("shared-cache counters: hits %v of %v lookups", hits, lookups)
	}
	if _, ok := byName["nautilus_shared_cache_collisions_total"]; !ok {
		t.Error("collision counter family missing")
	}

	// Aggregated run metrics flowed through the global collector.
	for _, name := range []string{"nautilus_ga_generations", "nautilus_cache_hits", "nautilus_server_sessions_done"} {
		f, ok := byName[name]
		if !ok || len(f.Samples) == 0 || f.Samples[0].Value == 0 {
			t.Errorf("family %s missing or zero", name)
		}
	}

	// Golden check: the stable family name/type set is a contract with
	// dashboards; renames must show up as a reviewed golden diff.
	var lines []string
	for _, f := range fams {
		if volatileFamily.MatchString(f.Name) {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s %s", f.Name, f.Type))
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "metrics_families.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric family set drifted from golden (UPDATE_GOLDEN=1 to accept):\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSessionsPerfEndpoint checks /v1/sessions reports live per-session
// generation-latency quantiles and cache hit ratio, and that the SSE
// stream carries the same running fields.
func TestSessionsPerfEndpoint(t *testing.T) {
	s := newTestServer(t, Options{EvalDelay: time.Millisecond})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	st, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)

	resp, body := c.do("GET", "/v1/sessions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sessions: status %d", resp.StatusCode)
	}
	var out struct {
		Sessions []SessionPerf `json:"sessions"`
	}
	c.decode(body, &out)
	if len(out.Sessions) != 1 {
		t.Fatalf("sessions: %+v", out.Sessions)
	}
	p := out.Sessions[0]
	if p.ID != st.ID || p.State != StateDone {
		t.Fatalf("session perf identity: %+v", p)
	}
	if p.Generations != int64(testSpec().Generations+1) {
		t.Errorf("observed %d generation latencies, want %d", p.Generations, testSpec().Generations+1)
	}
	if p.GenLatencyP50Micros <= 0 || p.GenLatencyP99Micros < p.GenLatencyP50Micros {
		t.Errorf("latency quantiles implausible: p50 %v, p99 %v", p.GenLatencyP50Micros, p.GenLatencyP99Micros)
	}
	if p.CacheHitRate < 0 || p.CacheHitRate > 1 {
		t.Errorf("cache hit rate %v outside [0,1]", p.CacheHitRate)
	}

	// SSE events carry the running quantiles; by the final generation the
	// histogram has samples, so the fields are set.
	gens, _ := readEvents(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	last := gens[len(gens)-1]
	if last.LatencyP50Micros <= 0 {
		t.Errorf("SSE latency p50 missing: %+v", last)
	}
	if last.CacheHitRate == nil {
		t.Errorf("SSE cache hit rate missing: %+v", last)
	}

	// The flight recorder surfaced spans on the debug endpoint.
	_, body = c.do("GET", "/debug/sessions", nil)
	if !bytes.Contains(body, []byte(`"ga.generation"`)) {
		t.Errorf("/debug/sessions carries no ga.generation spans")
	}
}
