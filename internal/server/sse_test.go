package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSSEClientDisconnectMidReplay: a subscriber with a deep replay
// backlog that disconnects before draining it must not leave the handler
// pumping history into a dead socket or holding its hub subscription,
// and the session must keep running. A reconnect then replays from
// generation 0.
func TestSSEClientDisconnectMidReplay(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	spec := testSpec()
	entry, guid, _, err := spec.resolve()
	if err != nil {
		t.Fatal(err)
	}
	// A fabricated live session with a history deep enough (~400 KiB)
	// that its replay cannot fit any socket buffer: the handler must hit
	// a write error mid-replay once the client is gone.
	sess := newSession("job-999999", 999999, spec, entry, guid, nil)
	s.register(sess)
	const histEvents = 400
	filler := strings.Repeat("x", 1024)
	for i := 0; i < histEvents; i++ {
		sess.hub.publish([]byte(fmt.Sprintf(`{"generation":%d,"distinct_evals":%d,"feasible":1,"filler":%q}`,
			i, i, filler)))
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Raw TCP so the disconnect is abrupt - no graceful HTTP teardown.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	req := "GET /v1/jobs/job-999999/events HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 512)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := conn.Read(head); err != nil {
		t.Fatalf("read SSE head: %v", err)
	}
	conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for sess.hub.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("handler kept %d hub subscriptions after mid-replay disconnect", sess.hub.subscribers())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st, _ := s.Status("job-999999"); st.State != StateRunning {
		t.Fatalf("session state %s after subscriber vanished, want running", st.State)
	}

	// Reconnect: replay starts over from the first retained event.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req2, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/job-999999/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var first genEvent
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if err := json.Unmarshal([]byte(data), &first); err != nil {
				t.Fatalf("bad replayed event %q: %v", data, err)
			}
			break
		}
	}
	if first.Generation != 0 {
		t.Fatalf("reconnect replay started at generation %d, want 0", first.Generation)
	}
	cancel()
	deadline = time.Now().Add(10 * time.Second)
	for sess.hub.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reconnect subscription leaked")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitBodyTooLarge: oversized request bodies stop at the
// MaxBytesReader cap with a 413 and the uniform envelope, instead of
// being streamed into the JSON decoder.
func TestSubmitBodyTooLarge(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	huge := append([]byte(`{"ip":"`), bytes.Repeat([]byte("a"), maxRequestBody+1024)...)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want 413", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.Code != CodeTooLarge {
		t.Fatalf("error code %q, want %q", env.Error.Code, CodeTooLarge)
	}

	// A normal-sized spec still goes through the same wrapped route.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"ip":"fft","query":"min-luts","generations":1,"population":4,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("normal submit after cap: status %d", resp2.StatusCode)
	}
}
