package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/hist"
	"nautilus/internal/telemetry/prom"
	"nautilus/internal/telemetry/trace"
)

// flightRecorderSize is each session's span ring-buffer capacity: the last
// spans of a search, kept for /debug/sessions post-mortems. Bounded per
// session so a long daemon life cannot grow span memory without limit.
const flightRecorderSize = 256

// httpStats aggregates per-route request metrics for /metrics: a
// power-of-two latency histogram and status-class counters per route
// pattern, plus the in-flight gauge. Routes register once at Handler
// construction, so request handling never takes the map lock.
type httpStats struct {
	inflight atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeStats
	// deprecated counts requests served through the legacy /api/v1 aliases,
	// keyed by the canonical /v1 route pattern they forward to. The family
	// is always exposed (zero samples included) so dashboards can alert on
	// lingering legacy traffic before the aliases are dropped.
	deprecated map[string]*atomic.Int64
}

// routeStats is one route pattern's accounting.
type routeStats struct {
	latency hist.Hist
	// status counts responses by status class, indexed status/100
	// (1xx..5xx in 1..5; 0 catches anything unclassifiable).
	status [6]atomic.Int64
}

func newHTTPStats() *httpStats {
	return &httpStats{
		routes:     make(map[string]*routeStats),
		deprecated: make(map[string]*atomic.Int64),
	}
}

// route returns (registering on first use) the stats slot for a pattern.
func (h *httpStats) route(pattern string) *routeStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	rs, ok := h.routes[pattern]
	if !ok {
		rs = &routeStats{}
		h.routes[pattern] = rs
	}
	return rs
}

// deprecatedCounter returns (registering on first use) the legacy-alias
// request counter for a canonical route pattern.
func (h *httpStats) deprecatedCounter(pattern string) *atomic.Int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.deprecated[pattern]
	if !ok {
		c = &atomic.Int64{}
		h.deprecated[pattern] = c
	}
	return c
}

// statusClasses are the label values of nautilus_http_requests_total.
var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// promFamilies renders the HTTP tier's families, routes sorted for
// deterministic exposition.
func (h *httpStats) promFamilies() []prom.Family {
	h.mu.Lock()
	names := make([]string, 0, len(h.routes))
	for name := range h.routes {
		names = append(names, name)
	}
	routes := make(map[string]*routeStats, len(h.routes))
	for name, rs := range h.routes {
		routes[name] = rs
	}
	h.mu.Unlock()
	sort.Strings(names)

	lat := prom.Family{
		Name: telemetry.MetricNamespace + "http_request_duration_ns",
		Help: "request wall time per route, nanoseconds",
		Type: prom.TypeHistogram,
	}
	reqs := prom.Family{
		Name: telemetry.MetricNamespace + "http_requests_total",
		Help: "responses per route and status class",
		Type: prom.TypeCounter,
	}
	for _, name := range names {
		rs := routes[name]
		if snap := rs.latency.Snapshot(); snap.Count > 0 {
			lat.AddHist([]prom.Label{{Name: "route", Value: name}}, snap)
		}
		for cls, label := range statusClasses {
			if n := rs.status[cls].Load(); n > 0 {
				reqs.Samples = append(reqs.Samples, prom.Sample{
					Labels: []prom.Label{{Name: "route", Value: name}, {Name: "code", Value: label}},
					Value:  float64(n),
				})
			}
		}
	}
	inflight := prom.Family{
		Name:    telemetry.MetricNamespace + "http_in_flight_requests",
		Help:    "requests currently being served",
		Type:    prom.TypeGauge,
		Samples: []prom.Sample{{Value: float64(h.inflight.Load())}},
	}
	depr := prom.Family{
		Name: telemetry.MetricNamespace + "http_deprecated_requests_total",
		Help: "requests served through the legacy /api/v1 aliases, by canonical route",
		Type: prom.TypeCounter,
	}
	h.mu.Lock()
	dnames := make([]string, 0, len(h.deprecated))
	for name := range h.deprecated {
		dnames = append(dnames, name)
	}
	counters := make(map[string]*atomic.Int64, len(h.deprecated))
	for name, c := range h.deprecated {
		counters[name] = c
	}
	h.mu.Unlock()
	sort.Strings(dnames)
	for _, name := range dnames {
		if n := counters[name].Load(); n > 0 {
			depr.Samples = append(depr.Samples, prom.Sample{
				Labels: []prom.Label{{Name: "route", Value: name}},
				Value:  float64(n),
			})
		}
	}
	return []prom.Family{lat, reqs, inflight, depr}
}

// statusWriter captures the response status code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// flushWriter adds Flush passthrough - but only when the underlying
// writer is itself a Flusher, so the SSE handler's Flusher type assertion
// keeps reporting streaming support truthfully through the middleware.
type flushWriter struct{ *statusWriter }

func (w flushWriter) Flush() { w.ResponseWriter.(http.Flusher).Flush() }

// instrument wraps a route handler with per-route latency, status-class,
// and in-flight accounting. pattern is the canonical route label (the
// /api/v1 aliases share their /v1 route's series).
func (s *Server) instrument(pattern string, fn http.HandlerFunc) http.HandlerFunc {
	rs := s.http.route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		s.http.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var ww http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			ww = flushWriter{sw}
		}
		defer func() {
			rs.latency.ObserveDuration(time.Since(start))
			code := sw.status
			if code == 0 {
				code = http.StatusOK
			}
			cls := code / 100
			if cls < 1 || cls > 5 {
				cls = 0
			}
			rs.status[cls].Add(1)
			s.http.inflight.Add(-1)
		}()
		fn(ww, r)
	}
}

// spanFamily renders the process-wide span-duration histograms as one
// family labeled by span name - the per-phase GA, cache, and resilience
// latency distributions every session's tracer feeds.
func spanFamily(durs *trace.Durations) prom.Family {
	f := prom.Family{
		Name: telemetry.MetricNamespace + "span_duration_ns",
		Help: "span wall time by span name, nanoseconds",
		Type: prom.TypeHistogram,
	}
	snaps := durs.Hists.Snapshot()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.AddHist([]prom.Label{{Name: "span", Value: name}}, snaps[name])
	}
	return f
}

// sharedCacheFamilies renders the per-IP shared-cache accounting.
func sharedCacheFamilies(stats map[string]dataset.CacheStats) []prom.Family {
	mk := func(suffix, help string, typ prom.Type) prom.Family {
		return prom.Family{Name: telemetry.MetricNamespace + "shared_cache_" + suffix, Help: help, Type: typ}
	}
	distinct := mk("distinct_evals", "distinct design points evaluated per shared cache", prom.TypeGauge)
	lookups := mk("lookups_total", "lookups per shared cache", prom.TypeCounter)
	hits := mk("hits_total", "hits per shared cache", prom.TypeCounter)
	collisions := mk("collisions_total", "hash-collision probes per shared cache", prom.TypeCounter)
	ratio := mk("hit_ratio", "hits / lookups per shared cache", prom.TypeGauge)

	ips := make([]string, 0, len(stats))
	for ip := range stats {
		ips = append(ips, ip)
	}
	sort.Strings(ips)
	for _, ip := range ips {
		st := stats[ip]
		labels := []prom.Label{{Name: "ip", Value: ip}}
		distinct.Samples = append(distinct.Samples, prom.Sample{Labels: labels, Value: float64(st.Distinct)})
		lookups.Samples = append(lookups.Samples, prom.Sample{Labels: labels, Value: float64(st.Total)})
		hits.Samples = append(hits.Samples, prom.Sample{Labels: labels, Value: float64(st.Hits)})
		collisions.Samples = append(collisions.Samples, prom.Sample{Labels: labels, Value: float64(st.Collisions)})
		ratio.Samples = append(ratio.Samples, prom.Sample{Labels: labels, Value: st.HitRate})
	}
	return []prom.Family{distinct, lookups, hits, collisions, ratio}
}

// modeFamilies renders the nautilus_pareto_* and nautilus_portfolio_*
// exposition for multi-objective and strategy-race sessions. Both family
// groups materialize lazily - a server that has never seen a pareto or
// portfolio job exposes neither - so the base family set (pinned by the
// metrics golden) is unchanged for scalar-only deployments.
func (s *Server) modeFamilies() []prom.Family {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	sessions := make([]*session, 0, len(ids))
	for _, id := range ids {
		if sess, ok := s.sessions[id]; ok {
			sessions = append(sessions, sess)
		}
	}
	s.mu.Unlock()

	frontSize := prom.Family{
		Name: telemetry.MetricNamespace + "pareto_front_size",
		Help: "non-dominated archive size per pareto session",
		Type: prom.TypeGauge,
	}
	hv := prom.Family{
		Name: telemetry.MetricNamespace + "pareto_hypervolume",
		Help: "dominated hypervolume against the running-nadir reference per pareto session",
		Type: prom.TypeGauge,
	}
	races := prom.Family{
		Name: telemetry.MetricNamespace + "portfolio_races_total",
		Help: "portfolio sessions completed",
		Type: prom.TypeCounter,
	}
	wins := prom.Family{
		Name: telemetry.MetricNamespace + "portfolio_strategy_wins_total",
		Help: "portfolio races won per strategy",
		Type: prom.TypeCounter,
	}
	stratEvals := prom.Family{
		Name: telemetry.MetricNamespace + "portfolio_strategy_evals_total",
		Help: "private distinct evaluations per strategy across portfolio races",
		Type: prom.TypeCounter,
	}
	saved := prom.Family{
		Name: telemetry.MetricNamespace + "portfolio_evals_saved_total",
		Help: "evaluator invocations saved by the shared dedup cache across portfolio races",
		Type: prom.TypeCounter,
	}

	var pareto, portfolio bool
	var raceCount, savedCount float64
	winCount := make(map[string]float64)
	evalCount := make(map[string]float64)
	for _, sess := range sessions {
		sess.mu.Lock()
		mode, fs, h, res := sess.spec.Mode, sess.frontSize, sess.hypervolume, sess.result
		id := sess.id
		sess.mu.Unlock()
		switch mode {
		case core.ModePareto:
			pareto = true
			labels := []prom.Label{{Name: "job", Value: id}}
			frontSize.Samples = append(frontSize.Samples, prom.Sample{Labels: labels, Value: float64(fs)})
			hv.Samples = append(hv.Samples, prom.Sample{Labels: labels, Value: h})
		case core.ModePortfolio:
			portfolio = true
			if res == nil {
				continue
			}
			raceCount++
			private := 0
			for _, o := range res.Portfolio {
				evalCount[o.Strategy] += float64(o.DistinctEvals)
				private += o.DistinctEvals
				if o.Winner {
					winCount[o.Strategy]++
				}
			}
			if private > res.DistinctEvals {
				savedCount += float64(private - res.DistinctEvals)
			}
		}
	}

	var fams []prom.Family
	if pareto {
		fams = append(fams, frontSize, hv)
	}
	if portfolio {
		races.Samples = []prom.Sample{{Value: raceCount}}
		saved.Samples = []prom.Sample{{Value: savedCount}}
		for _, name := range []string{core.StrategyGuided, core.StrategyBaseline, core.StrategyAnneal} {
			labels := []prom.Label{{Name: "strategy", Value: name}}
			wins.Samples = append(wins.Samples, prom.Sample{Labels: labels, Value: winCount[name]})
			stratEvals.Samples = append(stratEvals.Samples, prom.Sample{Labels: labels, Value: evalCount[name]})
		}
		fams = append(fams, races, wins, stratEvals, saved)
	}
	return fams
}

// handleMetrics serves the full service-tier exposition: the shared
// registry (server/scheduler/aggregated-run metrics), per-route HTTP
// latency and status counters, per-phase span-duration histograms, and
// per-IP shared-cache accounting - plus the lazily materialized pareto and
// portfolio families once such sessions exist.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	fams := telemetry.PromFamilies(s.reg.Snapshot())
	fams = append(fams, s.http.promFamilies()...)
	fams = append(fams, spanFamily(s.durs))
	fams = append(fams, sharedCacheFamilies(s.SharedCacheStats())...)
	fams = append(fams, s.modeFamilies()...)
	w.Header().Set("Content-Type", prom.ContentType)
	_ = prom.Write(w, fams)
}
