package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"nautilus/internal/resilience"
)

// store is the server's state directory layout. Each session owns one
// subdirectory:
//
//	<dir>/<id>/job.json        - the jobRecord (spec + last known state)
//	<dir>/<id>/checkpoint.json - the resilience checkpoint (while running)
//	<dir>/<id>/result.json     - the final JobResult (once done)
//
// All writes go through resilience.WriteFileAtomic, so a crash at any
// moment leaves every file either absent, previous, or current - never
// torn. A restart replays job.json records: terminal sessions come back
// queryable, running/interrupted ones resume from their checkpoint.
type store struct {
	dir string
}

// jobRecord is the persisted identity of one session.
type jobRecord struct {
	ID    string  `json:"id"`
	Seq   int     `json:"seq"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	Error string  `json:"error,omitempty"`
}

func newStore(dir string) (*store, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: state directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create state dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) sessionDir(id string) string { return filepath.Join(st.dir, id) }

func (st *store) jobPath(id string) string { return filepath.Join(st.dir, id, "job.json") }

func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.dir, id, "checkpoint.json")
}

func (st *store) resultPath(id string) string { return filepath.Join(st.dir, id, "result.json") }

// saveJob persists the session's record, creating its directory on first
// write.
func (st *store) saveJob(rec jobRecord) error {
	if err := os.MkdirAll(st.sessionDir(rec.ID), 0o755); err != nil {
		return fmt.Errorf("server: create session dir: %w", err)
	}
	data, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return err
	}
	return resilience.WriteFileAtomic(st.jobPath(rec.ID), data)
}

// saveResult persists a completed session's result.
func (st *store) saveResult(res *JobResult) error {
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	return resilience.WriteFileAtomic(st.resultPath(res.ID), data)
}

// loadResult reads a previously persisted result; (nil, nil) if absent.
func (st *store) loadResult(id string) (*JobResult, error) {
	data, err := os.ReadFile(st.resultPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("server: decode result %s: %w", id, err)
	}
	return &res, nil
}

// loadAll returns every persisted job record, ordered by submission
// sequence. Directories without a readable job.json are skipped (a crash
// between MkdirAll and the first atomic write can leave one).
func (st *store) loadAll() ([]jobRecord, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var recs []jobRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(st.jobPath(e.Name()))
		if err != nil {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != e.Name() {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	return recs, nil
}
