package server

import (
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"nautilus/internal/telemetry"
)

// scriptedListener replays a fixed sequence of accept outcomes.
type scriptedListener struct {
	script []error // nil entry = deliver a connection
	i      int
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	if l.i >= len(l.script) {
		return nil, net.ErrClosed
	}
	err := l.script[l.i]
	l.i++
	if err != nil {
		return nil, err
	}
	c, s := net.Pipe()
	s.Close()
	return c, nil
}

func (l *scriptedListener) Close() error   { return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{} }

func TestRetryListenerAbsorbsTemporaryErrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	ln := NewRetryListener(&scriptedListener{script: []error{
		&net.OpError{Op: "accept", Err: syscall.ECONNABORTED},
		&net.OpError{Op: "accept", Err: syscall.EMFILE},
		&net.OpError{Op: "accept", Err: syscall.EINTR},
		nil, // then a connection arrives
	}}, reg)
	start := time.Now()
	c, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept after transient errors: %v", err)
	}
	c.Close()
	if got := reg.Counter(MetricAcceptRetries).Value(); got != 3 {
		t.Fatalf("retry counter = %d, want 3", got)
	}
	// 5ms + 10ms + 20ms of backoff were paid.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("accept returned in %s; backoff missing", elapsed)
	}
}

func TestRetryListenerPropagatesPermanentErrors(t *testing.T) {
	permanent := errors.New("listener torn out of the kernel")
	ln := NewRetryListener(&scriptedListener{script: []error{permanent}}, nil)
	if _, err := ln.Accept(); !errors.Is(err, permanent) {
		t.Fatalf("accept = %v, want the permanent error", err)
	}
	// Shutdown's ErrClosed passes straight through - that is how
	// http.Server.Serve learns to stop.
	ln = NewRetryListener(&scriptedListener{}, nil)
	if _, err := ln.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept on closed = %v, want net.ErrClosed", err)
	}
}

func TestTemporaryAcceptClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{&net.OpError{Op: "accept", Err: syscall.ECONNABORTED}, true},
		{&net.OpError{Op: "accept", Err: syscall.ECONNRESET}, true},
		{&net.OpError{Op: "accept", Err: syscall.EMFILE}, true},
		{&net.OpError{Op: "accept", Err: syscall.ENFILE}, true},
		{&net.OpError{Op: "accept", Err: syscall.EINTR}, true},
		{net.ErrClosed, false},
		{&net.OpError{Op: "accept", Err: net.ErrClosed}, false},
		{errors.New("something structural"), false},
	} {
		if got := temporaryAccept(tc.err); got != tc.want {
			t.Errorf("temporaryAccept(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
