// Package server turns the Nautilus search engine into a long-running
// service: clients submit search jobs over a JSON API, the server runs each
// as a supervised session on a bounded, fairly shared evaluation budget,
// and sessions survive process restarts through resilience checkpoints.
//
// Two properties carry over from the CLI unchanged and are load-bearing:
//
//   - Determinism. A session's result is byte-identical to a solo nautilus
//     CLI run of the same (ip, query, guidance, hints, seed, scale), no
//     matter how many other sessions run beside it or where its
//     evaluations are answered from.
//   - Paper accounting. Each session keeps its own distinct-evaluation
//     count, exactly as if it ran alone. Cross-session reuse shows up one
//     level down: all sessions on the same IP share one process-wide
//     dataset.Cache, whose distinct count stays below the sum of the
//     sessions' counts whenever they overlap.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"nautilus/internal/catalog"
	"nautilus/internal/cluster"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/faultnet"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/resilience"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Metric names the server maintains in its registry, alongside the
// aggregated ga.* / cache.* metrics from the global collector.
const (
	MetricSessionsStarted  = "server.sessions_started"
	MetricSessionsResumed  = "server.sessions_resumed"
	MetricSessionsDone     = "server.sessions_done"
	MetricSessionsFailed   = "server.sessions_failed"
	MetricSessionsCanceled = "server.sessions_canceled"
	MetricSessionsActive   = "server.sessions_active"
	MetricSchedulerBusy    = "scheduler.busy"
	MetricSchedulerWaiting = "scheduler.waiting"
	MetricSchedulerGrants  = "scheduler.grants"
)

// Options configures a Server.
type Options struct {
	// StateDir is the persistence root (required). A server restarted on
	// the same directory resumes every session that was running.
	StateDir string
	// Workers is the global evaluation budget shared across all sessions
	// (default GOMAXPROCS).
	Workers int
	// MaxSessions bounds concurrently running sessions; 0 means unlimited.
	MaxSessions int
	// CheckpointEvery is the generation cadence of session checkpoints
	// (default 5; drain always writes a final one regardless).
	CheckpointEvery int
	// EvalDelay stalls every real (shared-cache-miss) evaluation by this
	// duration, simulating synthesis cost. Tests use it to hold sessions
	// in flight; production leaves it 0.
	EvalDelay time.Duration
	// Registry receives server, scheduler, and aggregated run metrics
	// (default: a fresh registry, exposed at /debug/vars).
	Registry *telemetry.Registry
	// Network is the transport Listen binds through (default
	// faultnet.System, i.e. real TCP). Tests and the fault harness swap in
	// an in-memory or fault-injecting network; the server is agnostic.
	Network faultnet.Network
	// Cluster, when set, joins this server to a nautserve cluster: shared
	// caches shard over a consistent-hash ring, sessions run as island-model
	// searches across the membership, and /v1 job routes proxy to owners.
	Cluster *ClusterOptions
}

// Server owns the session table, the shared per-IP caches, and the global
// evaluation scheduler.
type Server struct {
	opts   Options
	reg    *telemetry.Registry
	global *telemetry.Collector
	sched  *scheduler
	store  *store
	// http holds per-route request metrics; durs aggregates every
	// session's span durations into the process-wide per-phase latency
	// histograms. Both feed /metrics.
	http *httpStats
	durs *trace.Durations

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// clusterHTTP proxies /v1 job requests to peers over opts.Network;
	// nil on a solo server.
	clusterHTTP *http.Client

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // session IDs in submission order
	nextSeq  int
	running  int
	draining bool
	shared   map[string]*dataset.Cache // per-IP process-wide cache
	cluster  *cluster.Node             // nil on a solo server

	started  *telemetry.Counter
	resumed  *telemetry.Counter
	done     *telemetry.Counter
	failed   *telemetry.Counter
	canceled *telemetry.Counter
	active   *telemetry.Gauge
}

// sessionKey carries the owning session's ID through the shared cache into
// the scheduler, so slots are accounted to the right tenant.
type sessionKey struct{}

// New builds a server over opts.StateDir and resumes every session a
// previous life left running or interrupted there.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 5
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	if opts.Network == nil {
		opts.Network = faultnet.System{}
	}
	st, err := newStore(opts.StateDir)
	if err != nil {
		return nil, err
	}
	global := telemetry.NewCollector(opts.Registry)
	// The daemon aggregates unbounded runs; keep only the aggregates.
	global.DisableGenerationRetention()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		reg:        opts.Registry,
		global:     global,
		sched:      newScheduler(opts.Workers, opts.Registry),
		store:      st,
		http:       newHTTPStats(),
		durs:       trace.NewDurations(),
		baseCtx:    ctx,
		baseCancel: cancel,
		sessions:   make(map[string]*session),
		shared:     make(map[string]*dataset.Cache),
		started:    opts.Registry.Counter(MetricSessionsStarted),
		resumed:    opts.Registry.Counter(MetricSessionsResumed),
		done:       opts.Registry.Counter(MetricSessionsDone),
		failed:     opts.Registry.Counter(MetricSessionsFailed),
		canceled:   opts.Registry.Counter(MetricSessionsCanceled),
		active:     opts.Registry.Gauge(MetricSessionsActive),
	}
	// The cluster node comes up before restore, so resumed sessions (and
	// the peers' first cache lookups) already see the ring.
	if opts.Cluster != nil {
		if err := s.initCluster(); err != nil {
			cancel()
			return nil, err
		}
	}
	if err := s.restore(); err != nil {
		cancel()
		s.closeCluster()
		return nil, err
	}
	return s, nil
}

// restore replays the state directory: terminal sessions become queryable
// records, running/interrupted ones restart from their checkpoint (or from
// scratch if none was written yet - determinism makes that equivalent).
func (s *Server) restore() error {
	recs, err := s.store.loadAll()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		entry, guid, objs, rerr := rec.Spec.resolve()
		if rerr != nil {
			// The record predates a spec-breaking change; surface it as a
			// failed session rather than refusing to start.
			sess := &session{id: rec.ID, seq: rec.Seq, spec: rec.Spec,
				hub: newProgressHub(), col: telemetry.NewCollector(nil),
				done: make(chan struct{}), gen: -1}
			sess.finish(StateFailed, fmt.Sprintf("unresolvable after restart: %v", rerr), nil)
			s.register(sess)
			continue
		}
		sess := newSession(rec.ID, rec.Seq, rec.Spec, entry, guid, objs)
		// Running (crashed mid-flight) and interrupted (drained) sessions
		// resume; done/failed/canceled stay terminal.
		if rec.State.terminal() && rec.State != StateInterrupted {
			var res *JobResult
			if rec.State == StateDone {
				if res, err = s.store.loadResult(rec.ID); err != nil {
					return err
				}
				if res != nil {
					sess.feasible = true
					sess.bestValue = res.BestValue
					sess.distinct = res.DistinctEvals
					sess.gen = res.Generations
					sess.frontSize = len(res.Front)
					sess.hypervolume = res.Hypervolume
				}
			}
			sess.finish(rec.State, rec.Error, res)
			s.register(sess)
			continue
		}
		var resume *ga.Snapshot
		if snap, lerr := resilience.Load(s.store.checkpointPath(rec.ID), entry.Space, rec.Spec.Seed); lerr == nil {
			resume = snap
		}
		sess.resumed = true
		s.resumed.Inc()
		s.register(sess)
		s.start(sess, resume)
	}
	return nil
}

// register adds a session to the table (terminal or about to start).
func (s *Server) register(sess *session) {
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.order = append(s.order, sess.id)
	if sess.seq > s.nextSeq {
		s.nextSeq = sess.seq
	}
	s.mu.Unlock()
}

// Submit validates a job spec, persists it, and starts its session.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	spec = spec.withDefaults(s.opts.Workers)
	entry, guid, objs, err := spec.resolve()
	if err != nil {
		return JobStatus{}, &BadRequestError{Err: err}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if s.opts.MaxSessions > 0 && s.running >= s.opts.MaxSessions {
		s.mu.Unlock()
		return JobStatus{}, ErrTooManySessions
	}
	s.nextSeq++
	// Clustered IDs embed the minting node, so any member can route a job
	// request to its owner (see jobOwner/proxyJob).
	id := fmt.Sprintf("job-%06d", s.nextSeq)
	if co := s.opts.Cluster; co != nil {
		id = fmt.Sprintf("job-%s-%06d", co.NodeID, s.nextSeq)
	}
	sess := newSession(id, s.nextSeq, spec, entry, guid, objs)
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.store.saveJob(jobRecord{ID: id, Seq: sess.seq, Spec: spec, State: StateRunning}); err != nil {
		sess.finish(StateFailed, err.Error(), nil)
		return JobStatus{}, err
	}
	s.start(sess, nil)
	return sess.status(), nil
}

// start launches the session goroutine. The caller has already registered
// and persisted the session.
func (s *Server) start(sess *session, resume *ga.Snapshot) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	sess.mu.Lock()
	sess.cancel = cancel
	sess.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	s.started.Inc()
	s.active.Set(float64(s.runningCount()))
	s.wg.Add(1)
	go s.run(ctx, sess, resume)
}

func (s *Server) runningCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// run executes one session to a terminal state.
func (s *Server) run(ctx context.Context, sess *session, resume *ga.Snapshot) {
	defer s.wg.Done()
	shared := s.sharedCacheFor(sess.entry)
	// The session's evaluator routes every private-cache miss through the
	// shared per-IP cache: the session still counts the evaluation as its
	// own (paper accounting), but only the first session across the whole
	// process actually pays for it.
	eval := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		return shared.EvaluateCtx(context.WithValue(ctx, sessionKey{}, sess.id), pt)
	}
	// The batch backend forwards each generation's residual misses to the
	// shared cache as one batch, so concurrent same-space sessions merge
	// in-flight generations (each waits on the other's evaluations) instead
	// of colliding point by point. Per-item errors already carry transient
	// context cancellations, so the batch-level error adds nothing here.
	batch := func(ctx context.Context, pts []param.Point) ([]metrics.Metrics, []error) {
		ms, errs, _ := shared.EvaluateBatchCtx(
			context.WithValue(ctx, sessionKey{}, sess.id), pts, sess.spec.Parallelism)
		return ms, errs
	}
	cfg := ga.Config{
		PopulationSize: sess.spec.Population,
		Generations:    sess.spec.Generations,
		Seed:           sess.spec.Seed,
		Parallelism:    sess.spec.Parallelism,
		Recorder:       telemetry.Multi(sessionRecorder{s: sess}, sess.col, s.global),
		Resume:         resume,
		BatchBackend:   batch,
	}
	// Portfolio sessions never checkpoint: a race is three interleaved
	// searches whose shared-cache state is not a ga.Snapshot, and core
	// rejects the combination. Determinism makes a drain/restart re-run
	// the identical race from scratch instead. Scalar and pareto sessions
	// checkpoint as usual (a pareto snapshot restores its archive from the
	// cache entries, so resumed fronts are byte-identical too).
	if sess.spec.Mode != core.ModePortfolio {
		saver := resilience.NewSaver(s.store.checkpointPath(sess.id), sess.entry.Space, sess.col.Registry())
		cfg.Checkpoint = saver.Save
		cfg.CheckpointEvery = s.opts.CheckpointEvery
	}
	// The session's tracer feeds its private flight recorder (the last
	// spans, dumped by /debug/sessions) and the server-wide per-phase
	// duration histograms on /metrics. Span IDs come from the tracer's own
	// seeded stream, so tracing cannot perturb the run RNG and session
	// results stay byte-identical to an untraced CLI run.
	tr := trace.New(trace.Config{
		Session: sess.id,
		Seed:    sess.spec.Seed,
		Sinks:   []trace.Sink{sess.ring, s.durs},
	})
	var res ga.Result
	var err error
	if s.clusterNode() != nil && resume == nil && sess.spec.Mode != core.ModePortfolio {
		// Clustered sessions fan out as island-model searches across the
		// membership (pareto islands migrate front members and the
		// coordinator merges their fronts). They never checkpoint mid-run
		// (islands are pure in their specs), so an interrupted one restarts
		// from scratch after a drain - determinism makes that the same
		// search. Portfolio races stay local: the race already multiplexes
		// three strategies over the shared cache (remote tier included), so
		// the cluster still pays for each distinct point once.
		res, err = s.searchCluster(ctx, sess)
	} else {
		res, err = core.Search(ctx, core.SearchRequest{
			Space:       sess.entry.Space,
			Mode:        sess.spec.Mode,
			Objective:   sess.entry.Objective,
			Objectives:  sess.objs,
			EvaluateCtx: eval,
			Config:      cfg,
		}, core.WithGuidance(sess.guid), core.WithTracer(tr))
	}

	var state State
	var msg string
	var result *JobResult
	switch {
	case err != nil:
		state, msg = StateFailed, err.Error()
	case res.Interrupted:
		sess.mu.Lock()
		user := sess.userCancel
		sess.mu.Unlock()
		if user {
			state, msg = StateCanceled, "canceled by client"
		} else {
			state, msg = StateInterrupted, "interrupted by server shutdown"
		}
	case res.BestPoint == nil:
		state, msg = StateFailed, "no feasible design found"
	default:
		state = StateDone
		result = s.buildResult(sess, res)
	}

	if result != nil {
		if serr := s.store.saveResult(result); serr != nil && state == StateDone {
			state, msg, result = StateFailed, serr.Error(), nil
		}
	}
	_ = s.store.saveJob(jobRecord{ID: sess.id, Seq: sess.seq, Spec: sess.spec, State: state, Error: msg})
	sess.finish(state, msg, result)

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	s.active.Set(float64(s.runningCount()))
	switch state {
	case StateDone:
		s.done.Inc()
	case StateFailed:
		s.failed.Inc()
	case StateCanceled:
		s.canceled.Inc()
	}
}

// buildResult assembles the final payload for a finished search.
func (s *Server) buildResult(sess *session, res ga.Result) *JobResult {
	space := sess.entry.Space
	params := make(map[string]string, space.Len())
	for i := 0; i < space.Len(); i++ {
		params[space.Param(i).Name()] = space.Param(i).StringValue(res.BestPoint[i])
	}
	m, _ := sess.entry.Eval(res.BestPoint)
	gens := -1
	if n := len(res.Trajectory); n > 0 {
		gens = res.Trajectory[n-1].Generation
	}
	out := &JobResult{
		ID:            sess.id,
		BestValue:     res.BestValue,
		Configuration: space.Describe(res.BestPoint),
		Params:        params,
		Key:           space.Key(res.BestPoint),
		Metrics:       m,
		DistinctEvals: res.DistinctEvals,
		TotalQueries:  res.Cache.Total,
		CacheHits:     res.Cache.Hits,
		HitRate:       res.Cache.HitRate,
		Converged:     res.Converged,
		Generations:   gens,
		Hypervolume:   res.Hypervolume,
		Nadir:         res.Nadir,
		Portfolio:     res.Portfolio,
	}
	if len(res.Front) > 0 {
		out.Objectives = append([]string(nil), sess.spec.Queries...)
		out.Front = make([]ParetoPoint, len(res.Front))
		for i, fp := range res.Front {
			pt := fp.Point
			out.Front[i] = ParetoPoint{
				Key:           space.Key(pt),
				Configuration: space.Describe(pt),
				Values:        fp.Values,
			}
		}
	}
	return out
}

// sharedCacheFor returns the process-wide cache for the entry's IP,
// creating it on first use. The underlying evaluator acquires a scheduler
// slot per evaluation, so the global worker budget bounds real work while
// cache hits stay free.
func (s *Server) sharedCacheFor(entry *catalog.Entry) *dataset.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.shared[entry.IP]; ok {
		return c
	}
	eval := entry.Eval
	base := func(ctx context.Context, pt param.Point) (metrics.Metrics, error) {
		sid, _ := ctx.Value(sessionKey{}).(string)
		if err := s.sched.Acquire(ctx, sid); err != nil {
			return nil, dataset.MarkTransient(err)
		}
		defer s.sched.Release(sid)
		if d := s.opts.EvalDelay; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, dataset.MarkTransient(ctx.Err())
			}
		}
		return eval(pt)
	}
	c := dataset.NewCacheContext(entry.Space, base)
	// On a clustered server the shared cache gains the ring's remote tier:
	// misses whose hash another node owns are answered by that peer (one
	// evaluation per cluster), degrading to local evaluation when the peer
	// is unreachable.
	if s.cluster != nil {
		c.SetRemote(s.cluster.RemoteFor(entry.IP))
	}
	s.shared[entry.IP] = c
	return c
}

// SharedCacheStats reports the per-IP shared cache accounting: the
// process-wide deduplication sessions benefit from.
func (s *Server) SharedCacheStats() map[string]dataset.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]dataset.CacheStats, len(s.shared))
	for ip, c := range s.shared {
		out[ip] = c.Stats()
	}
	return out
}

// get returns the named session.
func (s *Server) get(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sess, nil
}

// Status returns one session's status.
func (s *Server) Status(id string) (JobStatus, error) {
	sess, err := s.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	return sess.status(), nil
}

// List returns every session's status in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if sess, err := s.get(id); err == nil {
			out = append(out, sess.status())
		}
	}
	return out
}

// Result returns a completed session's result.
func (s *Server) Result(id string) (*JobResult, error) {
	sess, err := s.get(id)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch {
	case sess.state == StateDone && sess.result != nil:
		return sess.result, nil
	case sess.state == StateRunning:
		return nil, ErrNotReady
	default:
		return nil, &FailedError{State: sess.state, Message: sess.errMsg}
	}
}

// Cancel stops a running session on behalf of the client; it finishes as
// canceled and will not resume after a restart. Canceling a terminal
// session is a no-op.
func (s *Server) Cancel(id string) (JobStatus, error) {
	sess, err := s.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	sess.stop(true)
	return sess.status(), nil
}

// Wait blocks until the session reaches a terminal state or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	sess, err := s.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	select {
	case <-sess.done:
		return sess.status(), nil
	case <-ctx.Done():
		return sess.status(), ctx.Err()
	}
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: submissions are refused, every
// running session is canceled (the GA engine drains its evaluation pool
// and writes a final boundary checkpoint), and Drain returns once all
// sessions have persisted a terminal state - or ctx expires. A server
// restarted on the same state directory resumes every interrupted session
// to the result it would have reached uninterrupted.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.stop(false)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeCluster()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		s.closeCluster()
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Registry exposes the server's metric registry (for the debug endpoint).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Listen binds a TCP listener on addr through the server's configured
// Network - real sockets by default, an in-memory or fault-injecting
// stack when one was swapped in.
func (s *Server) Listen(addr string) (net.Listener, error) {
	return s.opts.Network.Listen("tcp", addr)
}

// SpanSink exposes the server's span-duration sink, the one feeding the
// per-phase latency histograms on /metrics. External span sources (the
// fault harness, future cluster RPC) attach tracers to it so their
// events land beside the engine's phases.
func (s *Server) SpanSink() trace.Sink { return s.durs }
