package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerCapacity hammers the budget from many goroutines and checks
// occupancy never exceeds capacity while every acquire eventually lands.
func TestSchedulerCapacity(t *testing.T) {
	const capacity, tasks = 3, 200
	s := newScheduler(capacity, nil)
	var cur, peak, done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		session := []string{"a", "b", "c", "d"}[i%4]
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background(), session); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			cur.Add(-1)
			s.Release(session)
			done.Add(1)
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > capacity {
		t.Fatalf("peak occupancy %d exceeds capacity %d", got, capacity)
	}
	if got := done.Load(); got != tasks {
		t.Fatalf("%d of %d acquires completed", got, tasks)
	}
	if s.busySlots() != 0 || s.waiting() != 0 {
		t.Fatalf("scheduler not idle after drain: busy=%d waiting=%d", s.busySlots(), s.waiting())
	}
}

// TestSchedulerFairness checks max-min admission: a freed slot goes to the
// session holding the fewest, not to the longest-waiting request.
func TestSchedulerFairness(t *testing.T) {
	s := newScheduler(2, nil)
	ctx := context.Background()
	// Session a fills the budget.
	if err := s.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	// a queues a third request first, then b queues its first.
	aReady := make(chan struct{})
	bReady := make(chan struct{})
	go func() { _ = s.Acquire(ctx, "a"); close(aReady) }()
	waitFor(t, func() bool { return s.waiting() == 1 })
	go func() { _ = s.Acquire(ctx, "b"); close(bReady) }()
	waitFor(t, func() bool { return s.waiting() == 2 })

	// Freeing one of a's slots must admit b (holds 0) over a (holds 1),
	// despite a having waited longer.
	s.Release("a")
	select {
	case <-bReady:
	case <-time.After(5 * time.Second):
		t.Fatal("released slot did not go to the least-loaded session")
	}
	select {
	case <-aReady:
		t.Fatal("slot went to the session already holding one")
	case <-time.After(20 * time.Millisecond):
	}
	// The next free slot goes to a's waiter.
	s.Release("b")
	select {
	case <-aReady:
	case <-time.After(5 * time.Second):
		t.Fatal("remaining waiter never admitted")
	}
	if got := s.held("a"); got != 2 {
		t.Fatalf("session a holds %d slots, want 2", got)
	}
}

// TestSchedulerAcquireCancel checks a canceled waiter leaves the queue and
// a cancellation racing a handover returns the slot.
func TestSchedulerAcquireCancel(t *testing.T) {
	s := newScheduler(1, nil)
	if err := s.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, "b") }()
	waitFor(t, func() bool { return s.waiting() == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled Acquire returned %v", err)
	}
	waitFor(t, func() bool { return s.waiting() == 0 })
	// The slot is still usable afterwards.
	s.Release("a")
	if err := s.Acquire(context.Background(), "c"); err != nil {
		t.Fatal(err)
	}
	s.Release("c")
	if s.busySlots() != 0 {
		t.Fatalf("busy=%d after full release", s.busySlots())
	}
}

// waitFor polls cond with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
