package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestV1Routes drives the canonical /v1/ family end to end and checks the
// legacy /api/v1/ aliases answer identically while announcing their
// deprecation.
func TestV1Routes(t *testing.T) {
	s := newTestServer(t, Options{EvalDelay: time.Millisecond})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	// Submit on the canonical family; Location must stay within it.
	resp, body := c.do("POST", "/v1/jobs", JobSpec{IP: "fft", Query: "min-luts", Generations: 3, Population: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("canonical submit Location = %q, want /v1/jobs/... prefix", loc)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("canonical route carries a Deprecation header")
	}
	var st JobStatus
	c.decode(body, &st)
	waitDone(t, s, st.ID)

	// The same session is visible from both families, byte-identically.
	_, v1Body := c.do("GET", "/v1/jobs/"+st.ID+"/result", nil)
	legacyResp, legacyBody := c.do("GET", "/api/v1/jobs/"+st.ID+"/result", nil)
	if string(v1Body) != string(legacyBody) {
		t.Errorf("alias result differs:\n/v1:     %s\n/api/v1: %s", v1Body, legacyBody)
	}
	if legacyResp.Header.Get("Deprecation") != "true" {
		t.Error("legacy alias missing Deprecation header")
	}
	if link := legacyResp.Header.Get("Link"); !strings.Contains(link, "/v1/jobs/{id}/result") {
		t.Errorf("legacy alias Link = %q, want successor-version pointer", link)
	}

	// Legacy submits keep their Location within the legacy family.
	resp, body = c.do("POST", "/api/v1/jobs", JobSpec{IP: "fft", Query: "min-luts", Generations: 2, Population: 4, Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy submit: status %d, body %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/api/v1/jobs/") {
		t.Errorf("legacy submit Location = %q, want /api/v1/jobs/... prefix", loc)
	}
	var st2 JobStatus
	c.decode(body, &st2)
	waitDone(t, s, st2.ID)

	// Remaining canonical routes answer.
	for _, path := range []string{"/v1/jobs", "/v1/jobs/" + st.ID, "/v1/stats", "/v1/healthz"} {
		if resp, body := c.do("GET", path, nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, body %s", path, resp.StatusCode, body)
		}
	}
}

// TestErrorEnvelope checks every error family returns the uniform
// {"error":{"code","message"}} shape with the right machine code.
func TestErrorEnvelope(t *testing.T) {
	s := newTestServer(t, Options{EvalDelay: time.Millisecond, MaxSessions: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	check := func(method, path string, body any, wantStatus int, wantCode string) {
		t.Helper()
		resp, data := c.do(method, path, body)
		var env ErrorEnvelope
		c.decode(data, &env)
		if resp.StatusCode != wantStatus || env.Error.Code != wantCode {
			t.Errorf("%s %s: status %d code %q, want %d %q (body %s)",
				method, path, resp.StatusCode, env.Error.Code, wantStatus, wantCode, data)
		}
		if env.Error.Message == "" {
			t.Errorf("%s %s: empty error message", method, path)
		}
	}

	check("GET", "/v1/jobs/nope", nil, http.StatusNotFound, CodeNotFound)
	check("GET", "/api/v1/jobs/nope", nil, http.StatusNotFound, CodeNotFound)
	check("POST", "/v1/jobs", map[string]any{"ip": "no-such-ip", "query": "min-luts"},
		http.StatusBadRequest, CodeBadRequest)

	// A running session: result not ready (409/not_ready), and with
	// MaxSessions=1 a second submit is rejected (429/too_many_sessions).
	resp, body := c.do("POST", "/v1/jobs", JobSpec{IP: "fft", Query: "min-luts", Generations: 200, Population: 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	c.decode(body, &st)
	check("GET", "/v1/jobs/"+st.ID+"/result", nil, http.StatusConflict, CodeNotReady)
	check("POST", "/v1/jobs", JobSpec{IP: "fft", Query: "min-luts"},
		http.StatusTooManyRequests, CodeTooManySessions)

	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	check("GET", "/v1/jobs/"+st.ID+"/result", nil, http.StatusConflict, CodeFailed)

	go s.Drain(context.Background())
	for i := 0; !s.Draining() && i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	check("POST", "/v1/jobs", JobSpec{IP: "fft", Query: "min-luts"},
		http.StatusServiceUnavailable, CodeDraining)
}
