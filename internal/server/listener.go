package server

import (
	"errors"
	"net"
	"syscall"
	"time"

	"nautilus/internal/telemetry"
)

// MetricAcceptRetries counts transient accept failures the retry
// listener absorbed instead of tearing the server down.
const MetricAcceptRetries = "server.accept_retries"

// retryAcceptMaxBackoff caps the accept-retry backoff; the floor is
// retryAcceptBaseBackoff.
const (
	retryAcceptBaseBackoff = 5 * time.Millisecond
	retryAcceptMaxBackoff  = time.Second
)

// NewRetryListener wraps ln so transient accept failures (EMFILE under
// fd pressure, ECONNABORTED from clients vanishing in the SYN queue,
// EINTR, timeouts) are retried with capped exponential backoff instead
// of being returned - http.Server.Serve exits on the first non-temporary
// accept error, which would turn one fd-exhaustion spike into a full
// outage. Permanent errors (including net.ErrClosed on shutdown) pass
// through. reg may be nil; when set, absorbed failures count under
// MetricAcceptRetries.
func NewRetryListener(ln net.Listener, reg *telemetry.Registry) net.Listener {
	rl := &retryListener{Listener: ln}
	if reg != nil {
		rl.retries = reg.Counter(MetricAcceptRetries)
	}
	return rl
}

type retryListener struct {
	net.Listener
	retries *telemetry.Counter
}

func (l *retryListener) Accept() (net.Conn, error) {
	backoff := retryAcceptBaseBackoff
	for {
		c, err := l.Listener.Accept()
		if err == nil {
			return c, nil
		}
		if !temporaryAccept(err) {
			return nil, err
		}
		if l.retries != nil {
			l.retries.Inc()
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > retryAcceptMaxBackoff {
			backoff = retryAcceptMaxBackoff
		}
	}
}

// temporaryAccept classifies accept errors worth retrying. net.ErrClosed
// is never temporary - it is how shutdown looks.
func temporaryAccept(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNABORTED, syscall.ECONNRESET,
		syscall.EMFILE, syscall.ENFILE, syscall.EINTR,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	// Fall back to the (deprecated, but still what syscall errors report)
	// Temporary classification for anything exotic.
	type temporary interface{ Temporary() bool }
	var terr temporary
	return errors.As(err, &terr) && terr.Temporary()
}
