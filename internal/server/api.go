package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// Sentinel and typed errors the API maps onto HTTP status codes.
var (
	// ErrDraining: the server is shutting down and refuses new jobs (503).
	ErrDraining = errors.New("server is draining, not accepting new jobs")
	// ErrTooManySessions: Options.MaxSessions running sessions exist (429).
	ErrTooManySessions = errors.New("too many concurrent sessions")
	// ErrNotFound: no session with that ID (404).
	ErrNotFound = errors.New("no such job")
	// ErrNotReady: the session is still running, its result is not final
	// yet (409).
	ErrNotReady = errors.New("job still running, result not ready")
)

// BadRequestError marks an invalid job spec (400).
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// FailedError reports a result request against a session that ended
// without one (failed, canceled, or interrupted; 409).
type FailedError struct {
	State   State
	Message string
}

func (e *FailedError) Error() string {
	return fmt.Sprintf("job %s: %s", e.State, e.Message)
}

// Handler returns the server's HTTP API, versioned under /v1/:
//
//	POST   /v1/jobs             submit a JobSpec, 202 + JobStatus
//	GET    /v1/jobs             list sessions (submission order)
//	GET    /v1/jobs/{id}        one session's status
//	GET    /v1/jobs/{id}/result final JobResult (409 until terminal)
//	GET    /v1/jobs/{id}/events SSE per-generation progress
//	DELETE /v1/jobs/{id}        cancel a running session
//	GET    /v1/stats            shared-cache + scheduler accounting
//	GET    /v1/sessions         per-session generation-latency quantiles
//	GET    /v1/healthz          liveness + draining flag
//	GET    /metrics             Prometheus text exposition: registry
//	                            metrics, per-route HTTP latency/status,
//	                            per-phase span-duration histograms,
//	                            shared-cache hit/collision accounting
//	GET    /debug/sessions      per-session metric registry snapshots
//	                            plus each session's span flight recorder
//	/debug/vars, /debug/pprof/...   telemetry.DebugMux over the registry
//
// Every /v1 route (and its /api/v1 alias, which shares the canonical
// route's metric series) is wrapped in the latency/status middleware
// feeding /metrics.
//
// Every route is also reachable under the pre-versioning /api/v1/ prefix
// for one release; those aliases answer identically but carry a
// Deprecation header pointing at the /v1/ replacement. Errors use a
// uniform envelope on both families:
//
//	{"error": {"code": "not_found", "message": "no such job"}}
//
// with codes bad_request, not_found, not_ready, draining,
// too_many_sessions, too_large, failed, internal, and peer_unreachable
// (failed errors also carry the session's terminal state). Body-carrying
// routes cap the request body at maxRequestBody and answer 413 too_large
// past it.
//
// On a clustered server (Options.Cluster) the job-addressed routes answer
// for the whole cluster: a job minted by a peer proxies to that peer's
// API, /v1/sessions and /v1/stats carry a "cluster" block, and /metrics
// gains the nautilus_cluster_* families.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routeDefs() {
		method, path, _ := strings.Cut(rt.pattern, " ")
		fn := rt.fn
		if method == http.MethodPost {
			fn = limitBody(fn)
		}
		fn = s.instrument(method+" /v1"+path, fn)
		mux.HandleFunc(method+" /v1"+path, fn)
		ctr := s.http.deprecatedCounter(method + " /v1" + path)
		mux.HandleFunc(method+" /api/v1"+path, deprecated(path, ctr, fn))
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/sessions", s.handleDebugSessions)
	mux.Handle("/debug/", telemetry.DebugMux(s.reg))
	return mux
}

// routeDef binds one canonical API route pattern (method + path, without
// the version prefix) to its handler.
type routeDef struct {
	pattern string
	fn      http.HandlerFunc
}

// routeDefs is the single source of the versioned route table: Handler
// registers each pattern under /v1 and its deprecated /api/v1 alias, and
// RouteTable exposes the canonical pattern list (pinned by a golden test -
// route changes must show up as a reviewed golden diff).
func (s *Server) routeDefs() []routeDef {
	return []routeDef{
		// Job-addressed routes go through proxyJob: on a clustered server,
		// requests for jobs minted by a peer forward to that peer's API, so
		// the whole cluster answers behind any one member. Solo servers pay
		// nothing (jobOwner declines immediately).
		{"POST /jobs", s.handleSubmit},
		{"GET /jobs", s.handleList},
		{"GET /jobs/{id}", s.proxyJob(s.handleStatus)},
		{"GET /jobs/{id}/result", s.proxyJob(s.handleResult)},
		{"GET /jobs/{id}/events", s.proxyJob(s.handleEvents)},
		{"DELETE /jobs/{id}", s.proxyJob(s.handleCancel)},
		{"GET /stats", s.handleStats},
		{"GET /sessions", s.handleSessions},
		{"GET /healthz", s.handleHealthz},
	}
}

// RouteTable returns the canonical /v1 route patterns ("METHOD /v1/path")
// in registration order. Every listed route also answers under the legacy
// /api/v1 prefix with a Deprecation header.
func RouteTable() []string {
	var s Server // handlers are method values, never invoked here
	defs := s.routeDefs()
	out := make([]string, len(defs))
	for i, rt := range defs {
		method, path, _ := strings.Cut(rt.pattern, " ")
		out[i] = method + " /v1" + path
	}
	return out
}

// deprecated wraps a legacy-alias route: same handler, plus headers that
// announce the canonical /v1/ home so clients can migrate before the alias
// is dropped, and a per-route counter surfaced as
// nautilus_http_deprecated_requests_total on /metrics.
func deprecated(path string, ctr *atomic.Int64, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctr.Add(1)
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1`+path+`>; rel="successor-version"`)
		fn(w, r)
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// Stable machine-readable error codes of the uniform envelope.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeNotReady        = "not_ready"
	CodeDraining        = "draining"
	CodeTooManySessions = "too_many_sessions"
	CodeTooLarge        = "too_large"
	CodeFailed          = "failed"
	CodeInternal        = "internal"
)

// maxRequestBody bounds every body-carrying /v1 request. A JobSpec is a
// few hundred bytes; one MiB leaves generous headroom while keeping a
// misbehaving (or slow-loris) client from streaming an unbounded body
// into the decoder.
const maxRequestBody = 1 << 20

// limitBody caps r.Body so oversized requests surface as
// *http.MaxBytesError (mapped to 413 too_large) instead of being read
// to completion.
func limitBody(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		fn(w, r)
	}
}

// ErrorBody is the payload of the uniform error envelope.
type ErrorBody struct {
	// Code is one of the Code* constants - the field clients switch on.
	Code    string `json:"code"`
	Message string `json:"message"`
	// State carries the session's terminal state on "failed" errors.
	State State `json:"state,omitempty"`
}

// ErrorEnvelope is every non-2xx response's JSON shape:
// {"error":{"code","message"}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeError maps err to a status code and writes the uniform envelope.
func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, CodeInternal
	var bad *BadRequestError
	var failed *FailedError
	var tooBig *http.MaxBytesError
	switch {
	// MaxBytesError first: the submit path wraps decode errors in
	// BadRequestError, and an overflow must stay a 413, not decay to 400.
	case errors.As(err, &tooBig):
		status, code = http.StatusRequestEntityTooLarge, CodeTooLarge
	case errors.As(err, &bad):
		status, code = http.StatusBadRequest, CodeBadRequest
	case errors.As(err, &failed):
		status, code = http.StatusConflict, CodeFailed
	case errors.Is(err, ErrNotFound):
		status, code = http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrNotReady):
		status, code = http.StatusConflict, CodeNotReady
	case errors.Is(err, ErrDraining):
		status, code = http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, ErrTooManySessions):
		status, code = http.StatusTooManyRequests, CodeTooManySessions
	}
	body := ErrorBody{Code: code, Message: err.Error()}
	if failed != nil {
		body.State = failed.State
	}
	writeJSON(w, status, ErrorEnvelope{Error: body})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, &BadRequestError{Err: fmt.Errorf("decode job spec: %w", err)})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	// Point at the route family the client used, so legacy clients are not
	// redirected across the versioning boundary mid-flight.
	prefix := "/v1"
	if strings.HasPrefix(r.URL.Path, "/api/") {
		prefix = "/api/v1"
	}
	w.Header().Set("Location", prefix+"/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type cacheStats struct {
		Distinct   int     `json:"distinct_evals"`
		Total      int     `json:"total_queries"`
		Hits       int     `json:"hits"`
		HitRate    float64 `json:"hit_rate"`
		Transient  int     `json:"transient"`
		Collisions int     `json:"collisions"`
	}
	shared := make(map[string]cacheStats)
	for ip, st := range s.SharedCacheStats() {
		shared[ip] = cacheStats{
			Distinct: st.Distinct, Total: st.Total, Hits: st.Hits,
			HitRate: st.HitRate, Transient: st.Transient,
			Collisions: st.Collisions,
		}
	}
	resp := map[string]any{
		"shared_caches": shared,
		"scheduler": map[string]any{
			"capacity": s.opts.Workers,
			"busy":     s.sched.busySlots(),
			"waiting":  s.sched.waiting(),
		},
		"sessions_active": s.runningCount(),
	}
	if ci := s.clusterInfo(); ci != nil {
		resp["cluster"] = ci
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.Draining()})
}

// handleSessions reports each session's live performance view: running
// generation-latency quantiles (p50/p90/p99/mean over every completed
// generation) and the session-private cache hit ratio, in submission
// order.
func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]SessionPerf, 0, len(ids))
	for _, id := range ids {
		if sess, err := s.get(id); err == nil {
			out = append(out, sess.perf())
		}
	}
	resp := map[string]any{"sessions": out}
	if ci := s.clusterInfo(); ci != nil {
		resp["cluster"] = ci
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugSessions dumps each session's private metric registry - the
// per-session half of the introspection story (the global half lives at
// /debug/vars via the shared registry).
func (s *Server) handleDebugSessions(w http.ResponseWriter, _ *http.Request) {
	type sessionDebug struct {
		Status  JobStatus          `json:"status"`
		Metrics telemetry.Snapshot `json:"metrics"`
		// Spans is the session's flight recorder: its most recent spans
		// (oldest first), capped at flightRecorderSize.
		Spans []trace.Span `json:"spans,omitempty"`
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make(map[string]sessionDebug, len(ids))
	for _, id := range ids {
		sess, err := s.get(id)
		if err != nil {
			continue
		}
		out[id] = sessionDebug{
			Status:  sess.status(),
			Metrics: sess.col.Registry().Snapshot(),
			Spans:   sess.ring.Snapshot(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleEvents streams per-generation progress as Server-Sent Events:
// every completed generation as an "event: generation" with a genEvent
// JSON payload (replayed from history for late subscribers), then one
// "event: done" carrying the final JobStatus when the session ends.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess, err := s.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// writeEvent surfaces the connection's write error so a client that
	// vanished mid-replay (reset, partition) aborts the handler instead of
	// streaming the rest of history into a dead pipe.
	writeEvent := func(name string, data []byte) error {
		_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		return err
	}
	finish := func() {
		data, err := json.Marshal(sess.status())
		if err == nil && writeEvent("done", data) == nil {
			fl.Flush()
		}
	}

	ch, replay, closed := sess.hub.subscribe()
	for _, b := range replay {
		if writeEvent("generation", b) != nil {
			if !closed {
				sess.hub.unsubscribe(ch)
			}
			return
		}
	}
	fl.Flush()
	if closed {
		finish()
		return
	}
	defer sess.hub.unsubscribe(ch)
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				finish()
				return
			}
			if writeEvent("generation", b) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
