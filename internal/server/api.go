package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"nautilus/internal/telemetry"
)

// Sentinel and typed errors the API maps onto HTTP status codes.
var (
	// ErrDraining: the server is shutting down and refuses new jobs (503).
	ErrDraining = errors.New("server is draining, not accepting new jobs")
	// ErrTooManySessions: Options.MaxSessions running sessions exist (429).
	ErrTooManySessions = errors.New("too many concurrent sessions")
	// ErrNotFound: no session with that ID (404).
	ErrNotFound = errors.New("no such job")
	// ErrNotReady: the session is still running, its result is not final
	// yet (409).
	ErrNotReady = errors.New("job still running, result not ready")
)

// BadRequestError marks an invalid job spec (400).
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// FailedError reports a result request against a session that ended
// without one (failed, canceled, or interrupted; 409).
type FailedError struct {
	State   State
	Message string
}

func (e *FailedError) Error() string {
	return fmt.Sprintf("job %s: %s", e.State, e.Message)
}

// Handler returns the server's HTTP API:
//
//	POST   /api/v1/jobs             submit a JobSpec, 202 + JobStatus
//	GET    /api/v1/jobs             list sessions (submission order)
//	GET    /api/v1/jobs/{id}        one session's status
//	GET    /api/v1/jobs/{id}/result final JobResult (409 until terminal)
//	GET    /api/v1/jobs/{id}/events SSE per-generation progress
//	DELETE /api/v1/jobs/{id}        cancel a running session
//	GET    /api/v1/stats            shared-cache + scheduler accounting
//	GET    /api/v1/healthz          liveness + draining flag
//	GET    /debug/sessions          per-session metric registry snapshots
//	/debug/vars, /debug/pprof/...   telemetry.DebugMux over the registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/sessions", s.handleDebugSessions)
	mux.Handle("/debug/", telemetry.DebugMux(s.reg))
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError maps err to a status code and writes {"error": ...}.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var bad *BadRequestError
	var failed *FailedError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &failed):
		status = http.StatusConflict
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrNotReady):
		status = http.StatusConflict
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrTooManySessions):
		status = http.StatusTooManyRequests
	}
	body := map[string]string{"error": err.Error()}
	if failed != nil {
		body["state"] = string(failed.State)
	}
	writeJSON(w, status, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, &BadRequestError{Err: fmt.Errorf("decode job spec: %w", err)})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type cacheStats struct {
		Distinct  int     `json:"distinct_evals"`
		Total     int     `json:"total_queries"`
		Hits      int     `json:"hits"`
		HitRate   float64 `json:"hit_rate"`
		Transient int     `json:"transient"`
	}
	shared := make(map[string]cacheStats)
	for ip, st := range s.SharedCacheStats() {
		shared[ip] = cacheStats{
			Distinct: st.Distinct, Total: st.Total, Hits: st.Hits,
			HitRate: st.HitRate, Transient: st.Transient,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shared_caches": shared,
		"scheduler": map[string]any{
			"capacity": s.opts.Workers,
			"busy":     s.sched.busySlots(),
			"waiting":  s.sched.waiting(),
		},
		"sessions_active": s.runningCount(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.Draining()})
}

// handleDebugSessions dumps each session's private metric registry - the
// per-session half of the introspection story (the global half lives at
// /debug/vars via the shared registry).
func (s *Server) handleDebugSessions(w http.ResponseWriter, _ *http.Request) {
	type sessionDebug struct {
		Status  JobStatus          `json:"status"`
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make(map[string]sessionDebug, len(ids))
	for _, id := range ids {
		sess, err := s.get(id)
		if err != nil {
			continue
		}
		out[id] = sessionDebug{Status: sess.status(), Metrics: sess.col.Registry().Snapshot()}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleEvents streams per-generation progress as Server-Sent Events:
// every completed generation as an "event: generation" with a genEvent
// JSON payload (replayed from history for late subscribers), then one
// "event: done" carrying the final JobStatus when the session ends.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess, err := s.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(name string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	}
	finish := func() {
		data, err := json.Marshal(sess.status())
		if err == nil {
			writeEvent("done", data)
			fl.Flush()
		}
	}

	ch, replay, closed := sess.hub.subscribe()
	for _, b := range replay {
		writeEvent("generation", b)
	}
	fl.Flush()
	if closed {
		finish()
		return
	}
	defer sess.hub.unsubscribe(ch)
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				finish()
				return
			}
			writeEvent("generation", b)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
