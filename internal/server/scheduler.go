package server

import (
	"context"
	"sync"

	"nautilus/internal/telemetry"
)

// scheduler is the server's global evaluation budget: at most capacity
// design-point evaluations run at once across every session, no matter how
// many sessions are live or how much per-session parallelism each GA
// requests (each engine still fans its population out on internal/pool
// workers; those workers block here before touching an evaluator).
//
// Admission is max-min fair rather than FIFO: when a slot frees up it goes
// to the waiting session currently holding the fewest slots, so a session
// with population 50 cannot starve one with population 4 - every session
// makes per-generation progress proportional to 1/active-sessions, which
// is the "shared fairly" contract of a multi-tenant search service.
// Within one session, waiters are served in arrival order.
type scheduler struct {
	mu       sync.Mutex
	capacity int
	busy     int
	inUse    map[string]int
	waiters  []*waiter

	busyGauge *telemetry.Gauge
	waitGauge *telemetry.Gauge
	grants    *telemetry.Counter
}

// waiter is one blocked Acquire. granted flags a slot handed over while
// the waiter was simultaneously canceled, so the loser of that race can
// give the slot back.
type waiter struct {
	session string
	ready   chan struct{}
	granted bool
}

// newScheduler builds a budget of capacity slots, reporting occupancy to
// reg (scheduler.busy, scheduler.waiting, scheduler.grants).
func newScheduler(capacity int, reg *telemetry.Registry) *scheduler {
	if capacity < 1 {
		capacity = 1
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &scheduler{
		capacity:  capacity,
		inUse:     make(map[string]int),
		busyGauge: reg.Gauge(MetricSchedulerBusy),
		waitGauge: reg.Gauge(MetricSchedulerWaiting),
		grants:    reg.Counter(MetricSchedulerGrants),
	}
}

// Acquire blocks until the session holds a slot or ctx is canceled.
func (s *scheduler) Acquire(ctx context.Context, session string) error {
	s.mu.Lock()
	// No barging: free capacity with waiters queued can only appear
	// transiently (slots are handed over directly on release), but joining
	// the queue whenever it is non-empty keeps arrival order honest within
	// a session either way.
	if s.busy < s.capacity && len(s.waiters) == 0 {
		s.busy++
		s.inUse[session]++
		s.grants.Inc()
		s.busyGauge.Set(float64(s.busy))
		s.mu.Unlock()
		return nil
	}
	w := &waiter{session: session, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.waitGauge.Set(float64(len(s.waiters)))
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The handover beat the cancellation: we own a slot we will
			// never use, so pass it on.
			s.mu.Unlock()
			s.Release(session)
			return ctx.Err()
		}
		for i, other := range s.waiters {
			if other == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.waitGauge.Set(float64(len(s.waiters)))
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns the session's slot. If sessions are waiting, the slot is
// handed directly to the one holding the fewest slots (max-min fairness);
// otherwise global occupancy drops.
func (s *scheduler) Release(session string) {
	s.mu.Lock()
	if n := s.inUse[session]; n <= 1 {
		delete(s.inUse, session)
	} else {
		s.inUse[session] = n - 1
	}
	if len(s.waiters) > 0 {
		// Hand the slot to the first waiter of the least-loaded session.
		best := 0
		for i, w := range s.waiters[1:] {
			if s.inUse[w.session] < s.inUse[s.waiters[best].session] {
				best = i + 1
			}
		}
		w := s.waiters[best]
		s.waiters = append(s.waiters[:best], s.waiters[best+1:]...)
		s.waitGauge.Set(float64(len(s.waiters)))
		w.granted = true
		s.inUse[w.session]++
		s.grants.Inc()
		close(w.ready)
		s.mu.Unlock()
		return
	}
	s.busy--
	s.busyGauge.Set(float64(s.busy))
	s.mu.Unlock()
}

// held reports how many slots the session currently holds (tests).
func (s *scheduler) held(session string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse[session]
}

// busySlots reports current global occupancy.
func (s *scheduler) busySlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}

// waiting reports how many Acquire calls are blocked.
func (s *scheduler) waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}
