package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
)

// paretoSpec is the small deterministic two-objective job the mode tests
// use: minimize LUTs against maximize throughput on the fft space.
func paretoSpec() JobSpec {
	return JobSpec{
		IP:          "fft",
		Mode:        core.ModePareto,
		Queries:     []string{"min-luts", "max-throughput"},
		Guidance:    catalog.GuidanceStrong,
		Generations: 8,
		Population:  8,
		Seed:        3,
		Parallelism: 2,
	}
}

func portfolioSpec() JobSpec {
	spec := testSpec()
	spec.Mode = core.ModePortfolio
	return spec
}

// TestParetoSessionAPI drives a pareto job through the full /v1 surface:
// submit with mode+queries, front growth on SSE and status, and the final
// front on the result - mutually non-dominating, values in queries order.
func TestParetoSessionAPI(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	spec := paretoSpec()
	resp, body := c.do("POST", "/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pareto submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	c.decode(body, &st)
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("pareto job ended %s: %s", final.State, final.Error)
	}
	if final.FrontSize == 0 {
		t.Error("finished pareto status has front_size 0")
	}
	if final.Hypervolume <= 0 {
		t.Errorf("finished pareto status hypervolume = %v, want > 0", final.Hypervolume)
	}

	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != final.FrontSize {
		t.Errorf("result front has %d members, status says %d", len(res.Front), final.FrontSize)
	}
	if got, want := strings.Join(res.Objectives, ","), strings.Join(spec.Queries, ","); got != want {
		t.Errorf("result objectives %q, want %q", got, want)
	}
	if len(res.Nadir) != 2 || res.Hypervolume != final.Hypervolume {
		t.Errorf("result nadir/hypervolume inconsistent: %+v vs status %+v", res, final)
	}
	// Mutual non-domination across the front, and every member carries one
	// value per objective. Front[0] is best on the primary objective, so
	// the scalar BestValue must match its first value.
	for i, a := range res.Front {
		if len(a.Values) != 2 {
			t.Fatalf("front[%d] has %d values, want 2", i, len(a.Values))
		}
		if a.Key == "" || a.Configuration == "" {
			t.Errorf("front[%d] missing key/configuration: %+v", i, a)
		}
		for j, b := range res.Front {
			if i == j {
				continue
			}
			// a dominates b: no worse on both, strictly better on one.
			noWorseLuts := a.Values[0] <= b.Values[0]       // min-luts
			noWorseThroughput := a.Values[1] >= b.Values[1] // max-throughput
			strict := a.Values[0] < b.Values[0] || a.Values[1] > b.Values[1]
			if noWorseLuts && noWorseThroughput && strict {
				t.Errorf("front[%d] %v dominates front[%d] %v", i, a.Values, j, b.Values)
			}
		}
	}
	if res.BestValue != res.Front[0].Values[0] {
		t.Errorf("scalar best %v != primary value of front[0] %v", res.BestValue, res.Front[0].Values[0])
	}

	// SSE progress streams the per-generation front growth.
	gens, done := readEvents(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	if len(gens) == 0 {
		t.Fatal("no SSE generation events")
	}
	last := gens[len(gens)-1]
	if last.FrontSize == 0 || last.Hypervolume <= 0 {
		t.Errorf("final SSE event missing front progress: %+v", last)
	}
	for i := 1; i < len(gens); i++ {
		if gens[i].FrontSize < gens[i-1].FrontSize && gens[i].Generation > gens[i-1].Generation {
			// The archive only grows or swaps dominated members for better
			// ones; a shrinking front would mean the stream lost state.
			t.Errorf("SSE front size shrank: gen %d had %d, gen %d has %d",
				gens[i-1].Generation, gens[i-1].FrontSize, gens[i].Generation, gens[i].FrontSize)
		}
	}
	if done.FrontSize != final.FrontSize {
		t.Errorf("SSE done status front_size %d, want %d", done.FrontSize, final.FrontSize)
	}

	// The pareto metric families materialize once a pareto session exists.
	_, metricsBody := c.do("GET", "/metrics", nil)
	for _, fam := range []string{"nautilus_pareto_front_size", "nautilus_pareto_hypervolume"} {
		if !strings.Contains(string(metricsBody), fam) {
			t.Errorf("family %s missing from /metrics after a pareto session", fam)
		}
	}
}

// TestPortfolioSessionAPI drives a portfolio job end to end: the result
// carries every raced strategy's outcome with exactly one winner, and the
// nautilus_portfolio_* families materialize on /metrics.
func TestPortfolioSessionAPI(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	resp, body := c.do("POST", "/v1/jobs", portfolioSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("portfolio submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	c.decode(body, &st)
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("portfolio job ended %s: %s", final.State, final.Error)
	}
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Portfolio) != 3 {
		t.Fatalf("portfolio outcomes: %+v, want guided/baseline/anneal", res.Portfolio)
	}
	winners := 0
	for _, o := range res.Portfolio {
		if o.Winner {
			winners++
			if o.BestValue != res.BestValue {
				t.Errorf("winner %s best %v != merged best %v", o.Strategy, o.BestValue, res.BestValue)
			}
		}
		if o.DistinctEvals == 0 {
			t.Errorf("strategy %s reports zero evaluations", o.Strategy)
		}
	}
	if winners != 1 {
		t.Errorf("portfolio has %d winners, want exactly 1", winners)
	}
	// The merged distinct count is the shared tier's: at most the sum of
	// the strategies' private counts (usually far below - that gap is the
	// dedup the race buys).
	sum := 0
	for _, o := range res.Portfolio {
		sum += o.DistinctEvals
	}
	if res.DistinctEvals > sum {
		t.Errorf("merged distinct %d exceeds strategies' sum %d", res.DistinctEvals, sum)
	}

	_, metricsBody := c.do("GET", "/metrics", nil)
	for _, fam := range []string{
		"nautilus_portfolio_races_total",
		"nautilus_portfolio_strategy_wins_total",
		"nautilus_portfolio_strategy_evals_total",
		"nautilus_portfolio_evals_saved_total",
	} {
		if !strings.Contains(string(metricsBody), fam) {
			t.Errorf("family %s missing from /metrics after a portfolio session", fam)
		}
	}
}

// TestModeValidation pins the submit-time rejections for malformed mode
// specs - each must 400 with the uniform envelope, never start a session.
func TestModeValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	cases := []struct {
		name string
		spec JobSpec
	}{
		{"unknown mode", JobSpec{IP: "fft", Query: "min-luts", Mode: "nsga3"}},
		{"queries in scalar mode", JobSpec{IP: "fft", Query: "min-luts", Queries: []string{"max-snr"}}},
		{"queries in portfolio mode", JobSpec{IP: "fft", Query: "min-luts", Mode: core.ModePortfolio, Queries: []string{"max-snr"}}},
		{"pareto with query", JobSpec{IP: "fft", Query: "min-luts", Mode: core.ModePareto, Queries: []string{"min-luts", "max-snr"}}},
		{"pareto single objective", JobSpec{IP: "fft", Mode: core.ModePareto, Queries: []string{"min-luts"}}},
		{"pareto duplicate query", JobSpec{IP: "fft", Mode: core.ModePareto, Queries: []string{"min-luts", "min-luts"}}},
		{"pareto unknown query", JobSpec{IP: "fft", Mode: core.ModePareto, Queries: []string{"min-luts", "max-widgets"}}},
	}
	for _, tc := range cases {
		resp, body := c.do("POST", "/v1/jobs", tc.spec)
		var env ErrorEnvelope
		c.decode(body, &env)
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != CodeBadRequest {
			t.Errorf("%s: status %d code %q, want 400 bad_request (body %s)",
				tc.name, resp.StatusCode, env.Error.Code, body)
		}
	}
}
