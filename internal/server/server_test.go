package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
	"nautilus/internal/ga"
)

// testSpec is the small deterministic job every test uses: 5 generations of
// a 6-genome population over the fft space.
func testSpec() JobSpec {
	return JobSpec{
		IP:          "fft",
		Query:       "min-luts",
		Guidance:    catalog.GuidanceStrong,
		Generations: 5,
		Population:  6,
		Seed:        3,
		Parallelism: 2,
	}
}

// soloRun executes spec the way the nautilus CLI would - one engine, one
// private cache, no server - and returns its result plus the rendered
// configuration. The server must reproduce this byte for byte.
func soloRun(t *testing.T, spec JobSpec) (ga.Result, string) {
	t.Helper()
	entry, guid, _, err := spec.resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Search(context.Background(), core.SearchRequest{
		Space:     entry.Space,
		Objective: entry.Objective,
		Evaluate:  entry.Eval,
		Config: ga.Config{
			PopulationSize: spec.Population,
			Generations:    spec.Generations,
			Seed:           spec.Seed,
			Parallelism:    spec.Parallelism,
		},
	}, core.WithGuidance(guid))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint == nil {
		t.Fatal("solo run found nothing feasible")
	}
	return res, entry.Space.Describe(res.BestPoint)
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.StateDir == "" {
		opts.StateDir = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitDone blocks until the session is terminal.
func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("session %s never finished: %v (state %s)", id, err, st.State)
	}
	return st
}

// waitGeneration polls until the session has completed at least gen
// generations (or gone terminal).
func waitGeneration(t *testing.T, s *Server, id string, gen int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Generation >= gen || st.State.terminal() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck at generation %d", id, st.Generation)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSessionMatchesCLI is the service's core contract: the result a
// session returns is byte-identical to a solo CLI-style run of the same
// spec - same configuration string, same best value, same paper accounting.
func TestSessionMatchesCLI(t *testing.T) {
	spec := testSpec()
	solo, soloConfig := soloRun(t, spec)

	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, s, st.ID); got.State != StateDone {
		t.Fatalf("session ended %s: %s", got.State, got.Error)
	}
	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configuration != soloConfig {
		t.Errorf("configuration %q, solo run %q", res.Configuration, soloConfig)
	}
	if res.BestValue != solo.BestValue {
		t.Errorf("best value %g, solo run %g", res.BestValue, solo.BestValue)
	}
	if res.DistinctEvals != solo.DistinctEvals {
		t.Errorf("distinct evals %d, solo run %d", res.DistinctEvals, solo.DistinctEvals)
	}
	if res.TotalQueries != solo.Cache.Total || res.CacheHits != solo.Cache.Hits {
		t.Errorf("cache accounting %d/%d, solo run %d/%d",
			res.CacheHits, res.TotalQueries, solo.Cache.Hits, solo.Cache.Total)
	}
}

// TestSharedCacheDedup runs two identical sessions concurrently and checks
// the layering the server promises: each session's private accounting
// matches a solo run, while the process-wide shared cache paid for each
// distinct design once - fewer combined evaluator calls than the sessions'
// counts sum to.
func TestSharedCacheDedup(t *testing.T) {
	spec := testSpec()
	solo, _ := soloRun(t, spec)

	s := newTestServer(t, Options{EvalDelay: time.Millisecond})
	defer s.Drain(context.Background())
	a, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []JobStatus{a, b} {
		if got := waitDone(t, s, st.ID); got.State != StateDone {
			t.Fatalf("session %s ended %s: %s", st.ID, got.State, got.Error)
		}
	}
	ra, err := s.Result(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := s.Result(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Per-session accounting is solo-identical for both tenants.
	if ra.DistinctEvals != solo.DistinctEvals || rb.DistinctEvals != solo.DistinctEvals {
		t.Fatalf("session distinct evals %d/%d, solo run %d",
			ra.DistinctEvals, rb.DistinctEvals, solo.DistinctEvals)
	}
	// The shared space cache deduplicated across the sessions: the combined
	// number of real evaluator calls is strictly below the sum of the
	// sessions' counts (here exactly one session's worth, since the runs
	// are identical).
	shared := s.SharedCacheStats()["fft"]
	if sum := ra.DistinctEvals + rb.DistinctEvals; shared.Distinct >= sum {
		t.Fatalf("shared cache spent %d evaluations, no better than %d unshared", shared.Distinct, sum)
	}
	if shared.Distinct != solo.DistinctEvals {
		t.Fatalf("shared cache spent %d evaluations, want exactly one session's %d",
			shared.Distinct, solo.DistinctEvals)
	}
}

// TestDrainResume is the restart story end to end: sessions interrupted by
// a drain persist checkpoints, and a new server over the same state
// directory resumes every one of them to the exact result an uninterrupted
// run produces.
func TestDrainResume(t *testing.T) {
	spec := testSpec()
	spec.Generations = 8
	solo, soloConfig := soloRun(t, spec)
	gemmSpec := JobSpec{IP: "gemm", Query: "min-luts", Guidance: catalog.GuidanceWeak,
		Generations: 8, Population: 6, Seed: 11, Parallelism: 2}
	gemmSolo, gemmConfig := soloRun(t, gemmSpec)

	dir := t.TempDir()
	s1 := newTestServer(t, Options{StateDir: dir, EvalDelay: 3 * time.Millisecond, CheckpointEvery: 2})
	ids := make([]string, 0, 3)
	for _, sp := range []JobSpec{spec, spec, gemmSpec} {
		st, err := s1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Let every session make real progress before pulling the plug, so the
	// drain exercises mid-flight checkpoints rather than empty ones.
	for _, id := range ids {
		waitGeneration(t, s1, id, 1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	interrupted := 0
	for _, id := range ids {
		st, err := s1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateInterrupted:
			interrupted++
		case StateDone:
			// A fast session may legitimately finish before the drain lands.
		default:
			t.Fatalf("session %s ended drain in state %s: %s", id, st.State, st.Error)
		}
	}
	if interrupted == 0 {
		t.Fatal("no session was interrupted; drain tested nothing")
	}

	// Second life: same directory, no artificial delay.
	s2 := newTestServer(t, Options{StateDir: dir})
	defer s2.Drain(context.Background())
	for i, id := range ids {
		st := waitDone(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("resumed session %s ended %s: %s", id, st.State, st.Error)
		}
		res, err := s2.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, wantConfig := solo, soloConfig
		if i == 2 {
			wantRes, wantConfig = gemmSolo, gemmConfig
		}
		if res.Configuration != wantConfig {
			t.Errorf("session %s resumed to %q, uninterrupted run gives %q", id, res.Configuration, wantConfig)
		}
		if res.BestValue != wantRes.BestValue {
			t.Errorf("session %s resumed to best %g, uninterrupted run gives %g", id, res.BestValue, wantRes.BestValue)
		}
		if res.DistinctEvals != wantRes.DistinctEvals {
			t.Errorf("session %s resumed with %d distinct evals, uninterrupted run spends %d",
				id, res.DistinctEvals, wantRes.DistinctEvals)
		}
	}
}

// TestCancel checks a client cancel terminates the session as canceled and
// that a restart does NOT resurrect it.
func TestCancel(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{StateDir: dir, EvalDelay: 3 * time.Millisecond})
	spec := testSpec()
	spec.Generations = 50
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s1, st.ID, 1)
	if _, err := s1.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, s1, st.ID); got.State != StateCanceled {
		t.Fatalf("canceled session ended %s", got.State)
	}
	if _, err := s1.Result(st.ID); err == nil {
		t.Fatal("canceled session served a result")
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{StateDir: dir})
	defer s2.Drain(context.Background())
	got, err := s2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("canceled session came back as %s after restart", got.State)
	}
}

// TestSubmitValidation checks spec validation happens at submission time.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	bad := []JobSpec{
		{IP: "dsp", Query: "min-luts", Seed: 1},
		{IP: "fft", Query: "max-power", Seed: 1},
		{IP: "fft", Query: "min-luts", Guidance: "medium", Seed: 1},
		{IP: "fft", Query: "min-luts", Population: 1, Seed: 1},
		{IP: "fft", Query: "min-luts", Generations: -1, Seed: 1},
		{IP: "fft", Query: "min-luts", Seed: -4},
		{IP: "fft", Query: "min-luts", Seed: 1, Hints: []byte(`{"not json`)},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		} else {
			var br *BadRequestError
			if !errors.As(err, &br) {
				t.Errorf("bad spec %d: error %v is not a BadRequestError", i, err)
			}
		}
	}
	if got := len(s.List()); got != 0 {
		t.Fatalf("%d sessions registered from invalid submissions", got)
	}
}

// TestSubmitLimits checks the draining and max-sessions admission guards.
func TestSubmitLimits(t *testing.T) {
	s := newTestServer(t, Options{MaxSessions: 1, EvalDelay: 3 * time.Millisecond})
	spec := testSpec()
	spec.Generations = 50
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("second concurrent session: err %v, want ErrTooManySessions", err)
	}
	go func() { _, _ = s.Cancel(st.ID) }()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err %v, want ErrDraining", err)
	}
}
