package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// apiClient wraps the test HTTP calls.
type apiClient struct {
	t    *testing.T
	base string
}

func (c *apiClient) do(method, path string, body any) (*http.Response, []byte) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func (c *apiClient) decode(data []byte, v any) {
	c.t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		c.t.Fatalf("decode %s: %v", data, err)
	}
}

// TestAPI drives the whole HTTP surface against a live server: submit,
// status, SSE progress, result, stats, error mapping, and cancel.
func TestAPI(t *testing.T) {
	s := newTestServer(t, Options{EvalDelay: time.Millisecond})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	// Invalid specs and bodies map to 400.
	resp, body := c.do("POST", "/api/v1/jobs", map[string]any{"ip": "dsp", "query": "min-luts", "seed": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown IP: status %d, body %s", resp.StatusCode, body)
	}
	resp, _ = c.do("POST", "/api/v1/jobs", map[string]any{"ip": "fft", "query": "min-luts", "seed": 1, "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}

	// Unknown job IDs map to 404 everywhere.
	for _, path := range []string{"/api/v1/jobs/nope", "/api/v1/jobs/nope/result", "/api/v1/jobs/nope/events"} {
		if resp, _ := c.do("GET", path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// A valid submission is accepted and listed.
	resp, body = c.do("POST", "/api/v1/jobs", testSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	c.decode(body, &st)
	if st.ID == "" || st.State != StateRunning {
		t.Fatalf("submit returned %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/jobs/"+st.ID {
		t.Fatalf("Location header %q", loc)
	}
	resp, body = c.do("GET", "/api/v1/jobs", nil)
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	c.decode(body, &list)
	if resp.StatusCode != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list: status %d, jobs %+v", resp.StatusCode, list.Jobs)
	}

	// SSE: the event stream replays every generation and ends with a done
	// event carrying the terminal status.
	gens, final := readEvents(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events")
	if len(gens) != testSpec().Generations+1 { // generation 0 included
		t.Fatalf("SSE delivered %d generation events, want %d", len(gens), testSpec().Generations+1)
	}
	for i, g := range gens {
		if g.Generation != i {
			t.Fatalf("SSE event %d is generation %d", i, g.Generation)
		}
	}
	if final.State != StateDone {
		t.Fatalf("SSE done event carried state %s (%s)", final.State, final.Error)
	}
	// A late subscriber to a finished session still gets the full replay.
	gens2, final2 := readEvents(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events")
	if len(gens2) != len(gens) || final2.State != StateDone {
		t.Fatalf("late SSE subscriber saw %d events, state %s", len(gens2), final2.State)
	}

	// Status and result agree with the stream.
	resp, body = c.do("GET", "/api/v1/jobs/"+st.ID, nil)
	var done JobStatus
	c.decode(body, &done)
	if resp.StatusCode != http.StatusOK || done.State != StateDone {
		t.Fatalf("status after done: %d %+v", resp.StatusCode, done)
	}
	resp, body = c.do("GET", "/api/v1/jobs/"+st.ID+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, body %s", resp.StatusCode, body)
	}
	var res JobResult
	c.decode(body, &res)
	if res.Configuration == "" || res.DistinctEvals == 0 {
		t.Fatalf("result incomplete: %+v", res)
	}

	// Stats expose the shared cache and scheduler.
	resp, body = c.do("GET", "/api/v1/stats", nil)
	var stats struct {
		SharedCaches map[string]struct {
			Distinct int `json:"distinct_evals"`
		} `json:"shared_caches"`
	}
	c.decode(body, &stats)
	if resp.StatusCode != http.StatusOK || stats.SharedCaches["fft"].Distinct != res.DistinctEvals {
		t.Fatalf("stats: status %d, body %s", resp.StatusCode, body)
	}

	// The debug surface is mounted: expvar, pprof, per-session registries.
	for _, path := range []string{"/debug/vars", "/debug/pprof/cmdline", "/debug/sessions", "/api/v1/healthz"} {
		if resp, _ := c.do("GET", path, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// Cancel flow: a long job canceled over HTTP ends canceled, and its
	// result endpoint reports the state as a conflict.
	long := testSpec()
	long.Generations = 200
	_, body = c.do("POST", "/api/v1/jobs", long)
	var st2 JobStatus
	c.decode(body, &st2)
	resp, body = c.do("GET", "/api/v1/jobs/"+st2.ID+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while running: status %d, body %s", resp.StatusCode, body)
	}
	if resp, _ = c.do("DELETE", "/api/v1/jobs/"+st2.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	waitDone(t, s, st2.ID)
	resp, body = c.do("GET", "/api/v1/jobs/"+st2.ID+"/result", nil)
	var errBody ErrorEnvelope
	c.decode(body, &errBody)
	if resp.StatusCode != http.StatusConflict || errBody.Error.Code != CodeFailed || errBody.Error.State != StateCanceled {
		t.Fatalf("result after cancel: status %d, body %s", resp.StatusCode, body)
	}
}

// readEvents consumes one SSE stream to completion: the generation events
// and the final done status.
func readEvents(t *testing.T, url string) ([]genEvent, JobStatus) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE: content type %q", ct)
	}
	return parseSSE(t, resp.Body)
}

// parseSSE consumes one SSE body to completion: the generation events
// and the final done status.
func parseSSE(t *testing.T, body io.Reader) ([]genEvent, JobStatus) {
	t.Helper()
	var gens []genEvent
	var final JobStatus
	sc := bufio.NewScanner(body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "generation":
				var g genEvent
				if err := json.Unmarshal([]byte(data), &g); err != nil {
					t.Fatalf("bad generation event %q: %v", data, err)
				}
				gens = append(gens, g)
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				return gens, final
			default:
				t.Fatalf("unexpected SSE event %q", event)
			}
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatal("SSE stream ended without a done event")
	return nil, JobStatus{}
}

// TestAPILimits checks the admission guards surface as HTTP statuses.
func TestAPILimits(t *testing.T) {
	s := newTestServer(t, Options{MaxSessions: 1, EvalDelay: 3 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	long := testSpec()
	long.Generations = 200
	resp, body := c.do("POST", "/api/v1/jobs", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st JobStatus
	c.decode(body, &st)
	if resp, _ = c.do("POST", "/api/v1/jobs", long); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over max-sessions: status %d, want 429", resp.StatusCode)
	}
	if resp, _ = c.do("DELETE", "/api/v1/jobs/"+st.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp, _ = c.do("POST", "/api/v1/jobs", testSpec()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	resp, body = c.do("GET", "/api/v1/healthz", nil)
	var hz struct {
		Draining bool `json:"draining"`
	}
	c.decode(body, &hz)
	if resp.StatusCode != http.StatusOK || !hz.Draining {
		t.Fatalf("healthz while draining: status %d, body %s", resp.StatusCode, body)
	}
}
