package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nautilus/internal/cluster"
	"nautilus/internal/faultnet"
)

// clusterTestEnv is a 3-node nautserve cluster over one in-memory network:
// servers, their HTTP APIs served on the same network, and a client that
// dials through it.
type clusterTestEnv struct {
	servers []*Server
	apis    []string
	client  *http.Client
}

// newClusterEnv builds n clustered servers ("n0".."n{n-1}") over net, each
// serving its HTTP API at "n<i>:8080" on the same network so /v1 proxying
// has somewhere to go.
func newClusterEnv(t *testing.T, net faultnet.Network, n int) *clusterTestEnv {
	t.Helper()
	env := &clusterTestEnv{
		client: &http.Client{Transport: &http.Transport{DialContext: net.DialContext}},
	}
	rpc := make(map[string]string, n)
	api := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		rpc[id] = fmt.Sprintf("%s:7000", id)
		api[id] = fmt.Sprintf("%s:8080", id)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		peers := make(map[string]string, n-1)
		apiPeers := make(map[string]string, n-1)
		for pid, addr := range rpc {
			if pid != id {
				peers[pid] = addr
				apiPeers[pid] = api[pid]
			}
		}
		srv := newTestServer(t, Options{
			Network: net,
			Cluster: &ClusterOptions{
				NodeID:            id,
				Addr:              rpc[id],
				Peers:             peers,
				APIPeers:          apiPeers,
				MigrationInterval: 3,
				MigrationCount:    1,
				MigrationTimeout:  5 * time.Second,
			},
		})
		ln, err := srv.Listen(api[id])
		if err != nil {
			t.Fatal(err)
		}
		go http.Serve(ln, srv.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Drain(ctx)
			ln.Close()
		})
		env.servers = append(env.servers, srv)
		env.apis = append(env.apis, api[id])
	}
	return env
}

// counterSum totals one cluster counter across the membership.
func (env *clusterTestEnv) counterSum(name string) int64 {
	var sum int64
	for _, srv := range env.servers {
		sum += srv.Registry().Counter(name).Value()
	}
	return sum
}

// runClusterJob submits spec to node 0 and returns the finished result.
func runClusterJob(t *testing.T, env *clusterTestEnv, spec JobSpec) (JobStatus, *JobResult) {
	t.Helper()
	st, err := env.servers[0].Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, env.servers[0], st.ID)
	if final.State != StateDone {
		t.Fatalf("cluster job ended %s: %s", final.State, final.Error)
	}
	res, err := env.servers[0].Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final, res
}

// TestClusterServerDeterminism is the server half of the tentpole
// acceptance: a job submitted to a 3-node cluster completes as an
// island-model search with observable cross-node cache dedup, and a fresh
// cluster given the same spec reproduces the result byte for byte.
func TestClusterServerDeterminism(t *testing.T) {
	spec := testSpec()
	spec.Seed = 11

	env := newClusterEnv(t, faultnet.NewMemory(), 3)
	_, res := runClusterJob(t, env, spec)
	if res.ID != "job-n0-000001" {
		t.Fatalf("clustered job ID = %q, want job-n0-000001", res.ID)
	}
	if hits := env.counterSum(cluster.MetricRemoteHits); hits == 0 {
		t.Error("no cross-node cache hits in a clustered session")
	}
	if served := env.counterSum(cluster.MetricServed); served == 0 {
		t.Error("no node served a peer's cache lookup")
	}

	// The island fan-out replays merged progress through the session
	// recorder, so status and /v1/sessions carry real generation data.
	st, err := env.servers[0].Status(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation < 0 || st.DistinctEvals == 0 || st.BestValue == nil {
		t.Errorf("clustered status missing progress: %+v", st)
	}

	fresh := newClusterEnv(t, faultnet.NewMemory(), 3)
	_, res2 := runClusterJob(t, fresh, spec)
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(res2)
	if string(a) != string(b) {
		t.Errorf("same-seed cluster results differ:\n%s\n%s", a, b)
	}
}

// TestClusterServerProxy pins the one-API story: any member answers for
// any job, forwarding to the minting node; unknown jobs still 404, and
// each node's observability carries the cluster block.
func TestClusterServerProxy(t *testing.T) {
	env := newClusterEnv(t, faultnet.NewMemory(), 2)
	spec := testSpec()
	spec.Seed = 4
	_, res := runClusterJob(t, env, spec)

	get := func(node int, path string) (int, []byte) {
		t.Helper()
		resp, err := env.client.Get("http://" + env.apis[node] + path)
		if err != nil {
			t.Fatalf("GET %s via node %d: %v", path, node, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Node 1 never saw the job; it proxies to node 0 and answers as one.
	code, body := get(1, "/v1/jobs/"+res.ID)
	if code != http.StatusOK || !strings.Contains(string(body), res.ID) {
		t.Fatalf("proxied status = %d %s", code, body)
	}
	code, body = get(1, "/v1/jobs/"+res.ID+"/result")
	direct, _ := json.Marshal(res)
	var viaProxy JobResult
	if err := json.Unmarshal(body, &viaProxy); err != nil || code != http.StatusOK {
		t.Fatalf("proxied result = %d %s (%v)", code, body, err)
	}
	proxied, _ := json.Marshal(&viaProxy)
	if string(proxied) != string(direct) {
		t.Errorf("proxied result differs from owner's:\n%s\n%s", proxied, direct)
	}

	// A job the owner never minted 404s through the proxy; a job whose
	// embedded node is not a known API peer 404s locally.
	if code, _ = get(1, "/v1/jobs/job-n0-999999"); code != http.StatusNotFound {
		t.Errorf("proxied unknown job = %d, want 404", code)
	}
	if code, _ = get(1, "/v1/jobs/job-nx-000001"); code != http.StatusNotFound {
		t.Errorf("unknown-node job = %d, want 404", code)
	}

	// /v1/sessions carries the cluster block with each node's own identity.
	for i := range env.servers {
		code, body = get(i, "/v1/sessions")
		var sess struct {
			Cluster *ClusterInfo `json:"cluster"`
		}
		if err := json.Unmarshal(body, &sess); err != nil || code != http.StatusOK {
			t.Fatalf("sessions on node %d: %d %s", i, code, body)
		}
		if sess.Cluster == nil || sess.Cluster.Node != fmt.Sprintf("n%d", i) || len(sess.Cluster.Members) != 2 {
			t.Errorf("node %d cluster block = %+v", i, sess.Cluster)
		}
	}

	// /metrics exposes the cluster families on a clustered node.
	rr := httptest.NewRecorder()
	env.servers[0].Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if text := rr.Body.String(); !strings.Contains(text, "nautilus_cluster_remote_hits") ||
		!strings.Contains(text, "nautilus_cluster_peers") {
		t.Error("clustered /metrics is missing nautilus_cluster_* families")
	}
}

// TestClusterParetoFrontMerge runs a pareto session over a 2-node cluster:
// islands run the multi-objective search (migrating front members with the
// usual exchange), and the coordinator merges their fronts into one
// cluster-wide non-dominated set that reaches the job result. A fresh
// cluster reproduces it byte for byte.
func TestClusterParetoFrontMerge(t *testing.T) {
	spec := paretoSpec()
	spec.Seed = 7

	env := newClusterEnv(t, faultnet.NewMemory(), 2)
	_, res := runClusterJob(t, env, spec)
	if len(res.Front) == 0 {
		t.Fatal("clustered pareto result has no front")
	}
	if res.Hypervolume <= 0 || len(res.Nadir) != 2 {
		t.Errorf("merged hypervolume/nadir missing: hv=%v nadir=%v", res.Hypervolume, res.Nadir)
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i == j {
				continue
			}
			noWorse := a.Values[0] <= b.Values[0] && a.Values[1] >= b.Values[1]
			strict := a.Values[0] < b.Values[0] || a.Values[1] > b.Values[1]
			if noWorse && strict {
				t.Errorf("merged front[%d] %v dominates front[%d] %v", i, a.Values, j, b.Values)
			}
		}
	}
	// Status reflects the exact merged front once the session finishes.
	st, err := env.servers[0].Status(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.FrontSize != len(res.Front) || st.Hypervolume != res.Hypervolume {
		t.Errorf("status front %d/hv %v, result %d/%v", st.FrontSize, st.Hypervolume, len(res.Front), res.Hypervolume)
	}

	fresh := newClusterEnv(t, faultnet.NewMemory(), 2)
	_, res2 := runClusterJob(t, fresh, spec)
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(res2)
	if string(a) != string(b) {
		t.Errorf("same-seed clustered pareto results differ:\n%s\n%s", a, b)
	}
}
