package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nautilus/internal/faultnet"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/trace"
)

// memFaultServer runs a full server - engine, scheduler, HTTP API - over
// an in-memory fault-injecting network. Returns the server, the fault
// network (for manual Partition/Heal and the event log), the memory
// substrate (clients dial it directly, bypassing injection on their own
// side), and the virtual listen address.
func memFaultServer(t *testing.T, sc faultnet.Scenario, opts Options) (*Server, *faultnet.Faulty, *faultnet.Memory, string) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	mem := faultnet.NewMemory()
	fnet := faultnet.New(faultnet.Config{Under: mem, Scenario: sc, Registry: opts.Registry})
	opts.Network = fnet
	s := newTestServer(t, opts)
	fnet.SetTracer(trace.New(trace.Config{Session: "faultnet", Seed: 1, Sinks: []trace.Sink{s.SpanSink()}}))
	ln, err := s.Listen("nautserve:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		fnet.Heal() // release any still-gated handler before teardown
		hs.Close()
	})
	return s, fnet, mem, ln.Addr().String()
}

// memHTTPClient dials the in-memory network directly (no fault injection
// on the client side; the server's accept side carries the scenario).
func memHTTPClient(mem *faultnet.Memory) *http.Client {
	return &http.Client{Transport: &http.Transport{DialContext: mem.DialContext}}
}

// TestServeOverMemoryNetwork pins the Network seam end to end: a job
// submitted over HTTP through the in-memory stack - under injected
// latency - completes with the exact result a solo CLI run produces.
func TestServeOverMemoryNetwork(t *testing.T) {
	spec := testSpec()
	solo, soloConfig := soloRun(t, spec)

	s, _, mem, addr := memFaultServer(t, faultnet.Scenario{
		Seed:    11,
		Latency: 200 * time.Microsecond,
		Jitter:  300 * time.Microsecond,
	}, Options{})
	defer s.Drain(context.Background())
	client := memHTTPClient(mem)

	var payload strings.Builder
	payload.WriteString(fmt.Sprintf(
		`{"ip":%q,"query":%q,"guidance":%q,"generations":%d,"population":%d,"seed":%d,"parallelism":%d}`,
		spec.IP, spec.Query, spec.Guidance, spec.Generations, spec.Population, spec.Seed, spec.Parallelism))
	resp, err := client.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(payload.String()))
	if err != nil {
		t.Fatalf("submit over memory network: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	(&apiClient{t: t}).decode(body, &st)
	waitDone(t, s, st.ID)

	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Configuration != soloConfig {
		t.Fatalf("server over faultnet found %q, solo run found %q", res.Configuration, soloConfig)
	}
	if res.BestValue != solo.BestValue || res.DistinctEvals != solo.DistinctEvals {
		t.Fatalf("accounting drifted: server (%v, %d) vs solo (%v, %d)",
			res.BestValue, res.DistinctEvals, solo.BestValue, solo.DistinctEvals)
	}
}

// sseDialRaw opens an SSE stream as raw bytes over the memory network so
// the test can kill the connection abruptly - the client-reset shape an
// http.Client won't produce on demand.
func sseDialRaw(t *testing.T, mem *faultnet.Memory, addr, id string) net.Conn {
	t.Helper()
	c, err := mem.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	req := fmt.Sprintf("GET /v1/jobs/%s/events HTTP/1.1\r\nHost: nautserve\r\nAccept: text/event-stream\r\n\r\n", id)
	if _, err := c.Write([]byte(req)); err != nil {
		t.Fatalf("write request: %v", err)
	}
	return c
}

// TestSSESurvivesClientResetMidStream: a client that vanishes mid-stream
// must not leak its hub subscription or disturb the session, and a
// reconnect must replay the progress history from generation 0.
func TestSSESurvivesClientResetMidStream(t *testing.T) {
	s, _, mem, addr := memFaultServer(t, faultnet.Scenario{}, Options{EvalDelay: 2 * time.Millisecond})
	defer s.Drain(context.Background())

	spec := testSpec()
	spec.Generations = 30
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, st.ID, 2)

	// Stream a little, then vanish without a goodbye.
	raw := sseDialRaw(t, mem, addr, st.ID)
	buf := make([]byte, 256)
	raw.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := raw.Read(buf); err != nil {
		t.Fatalf("read SSE head: %v", err)
	}
	raw.Close()

	// The handler lets go of the hub...
	deadline := time.Now().Add(10 * time.Second)
	for sess.hub.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("SSE handler still subscribed %d after client reset", sess.hub.subscribers())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...the session is unbothered...
	if cur, _ := s.Status(st.ID); cur.State != StateRunning && cur.State != StateDone {
		t.Fatalf("session state %s after client reset", cur.State)
	}
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("session ended %s (%s)", final.State, final.Error)
	}
	// ...and a reconnect replays everything from generation 0.
	gens, done := readEventsVia(t, memHTTPClient(mem), "http://"+addr+"/v1/jobs/"+st.ID+"/events")
	if len(gens) != spec.Generations+1 {
		t.Fatalf("reconnect replayed %d events, want %d", len(gens), spec.Generations+1)
	}
	for i, g := range gens {
		if g.Generation != i {
			t.Fatalf("replay event %d is generation %d", i, g.Generation)
		}
	}
	if done.State != StateDone {
		t.Fatalf("done event carried %s", done.State)
	}
	if n := sess.hub.subscribers(); n != 0 {
		t.Fatalf("%d subscriptions leaked", n)
	}
}

// TestDrainUnderPartitionResumesExactly: a SIGTERM-style drain that
// happens while the network is fully partitioned still checkpoints every
// session locally, and a restart on the same state dir resumes to the
// byte-identical result.
func TestDrainUnderPartitionResumesExactly(t *testing.T) {
	spec := testSpec()
	spec.Generations = 60
	solo, soloConfig := soloRun(t, spec)

	dir := t.TempDir()
	s, fnet, mem, addr := memFaultServer(t, faultnet.Scenario{}, Options{
		StateDir: dir, EvalDelay: 2 * time.Millisecond, CheckpointEvery: 3,
	})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, st.ID, 2)

	// A live SSE subscriber whose stream is mid-flight when the network
	// splits: its writes gate, and the drain must not wait on it.
	raw := sseDialRaw(t, mem, addr, st.ID)
	defer raw.Close()
	buf := make([]byte, 128)
	raw.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := raw.Read(buf); err != nil {
		t.Fatalf("read SSE head: %v", err)
	}

	fnet.Partition(faultnet.PartitionTwoWay)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under partition: %v", err)
	}
	cur, _ := s.Status(st.ID)
	if cur.State != StateInterrupted {
		t.Fatalf("session state after drain = %s, want interrupted", cur.State)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID, "checkpoint.json")); err != nil {
		t.Fatalf("no checkpoint written under partition: %v", err)
	}
	log := fnet.Events().String()
	if !strings.Contains(log, "kind=partition dir=both manual") {
		t.Fatalf("fault log missing the manual partition:\n%s", log)
	}
	fnet.Heal()

	// Restart on the same state dir, network healed: the session resumes
	// and lands exactly where the uninterrupted solo run lands.
	s2 := newTestServer(t, Options{StateDir: dir})
	defer s2.Drain(context.Background())
	final := waitDone(t, s2, st.ID)
	if final.State != StateDone {
		t.Fatalf("resumed session ended %s (%s)", final.State, final.Error)
	}
	res, err := s2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configuration != soloConfig || res.BestValue != solo.BestValue {
		t.Fatalf("resume diverged: got (%q, %v), want (%q, %v)",
			res.Configuration, res.BestValue, soloConfig, solo.BestValue)
	}
	if res.DistinctEvals != solo.DistinctEvals {
		t.Fatalf("resume accounting drifted: %d distinct vs solo %d", res.DistinctEvals, solo.DistinctEvals)
	}
}

// TestSlowLorisClientsDoNotStarveSessions: with every accepted
// connection throttled to slow-loris rates, SSE streams crawl - but the
// engine, scheduler, and other sessions never block on them (the hub
// drops rather than waits), so jobs finish on time.
func TestSlowLorisClientsDoNotStarveSessions(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, _, mem, addr := memFaultServer(t, faultnet.Scenario{
		Seed:          5,
		SlowLorisRate: 1,
		SlowLorisBPS:  64,
	}, Options{Registry: reg, EvalDelay: time.Millisecond})
	defer s.Drain(context.Background())

	spec := testSpec()
	spec.Generations = 12
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Three slow-loris SSE clients latch onto the stream; at 64 B/s they
	// will not even finish the HTTP handshake before the job is done.
	var lorises []net.Conn
	for i := 0; i < 3; i++ {
		lorises = append(lorises, sseDialRaw(t, mem, addr, st.ID))
	}
	defer func() {
		for _, c := range lorises {
			c.Close()
		}
	}()

	start := time.Now()
	final := waitDone(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("session ended %s (%s) with slow-loris clients attached", final.State, final.Error)
	}
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("job took %s with slow-loris clients attached", elapsed)
	}
	if v := reg.Counter(faultnet.MetricSlowLoris).Value(); v < 3 {
		t.Fatalf("slow-loris counter = %d, want >= 3", v)
	}
	// A second job right behind it also completes: the stalled handlers
	// hold no scheduler or session capacity.
	st2, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, s, st2.ID); final.State != StateDone {
		t.Fatalf("follow-up session ended %s (%s)", final.State, final.Error)
	}
}

// TestFaultnetMetricsOnMetricsEndpoint: once faults fire, their counters
// surface as nautilus_faultnet_* families on /metrics (they are absent -
// and the golden family set untouched - when no fault network is wired).
func TestFaultnetMetricsOnMetricsEndpoint(t *testing.T) {
	s, fnet, mem, addr := memFaultServer(t, faultnet.Scenario{}, Options{})
	defer s.Drain(context.Background())
	fnet.Partition(faultnet.PartitionOneWay)
	fnet.Heal()

	client := memHTTPClient(mem)
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics over memory network: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"nautilus_faultnet_conns",
		"nautilus_faultnet_partitions",
		"nautilus_faultnet_heals",
	} {
		if !strings.Contains(string(body), fam) {
			t.Fatalf("/metrics missing %s:\n%s", fam, body)
		}
	}
}

// readEventsVia is readEvents with a custom client (the memory-network
// transport).
func readEventsVia(t *testing.T, client *http.Client, url string) ([]genEvent, JobStatus) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE: status %d", resp.StatusCode)
	}
	return parseSSE(t, resp.Body)
}
