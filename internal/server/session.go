package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"nautilus/internal/catalog"
	"nautilus/internal/core"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/telemetry"
	"nautilus/internal/telemetry/hist"
	"nautilus/internal/telemetry/trace"
)

// State is a session's lifecycle stage.
type State string

const (
	// StateRunning: the session's search is in flight.
	StateRunning State = "running"
	// StateDone: the search finished; the result is available.
	StateDone State = "done"
	// StateFailed: the search ended in an error (including "no feasible
	// design found").
	StateFailed State = "failed"
	// StateCanceled: the client canceled the session; it will not resume.
	StateCanceled State = "canceled"
	// StateInterrupted: a server drain stopped the session after writing
	// its checkpoint; a restart on the same state directory resumes it.
	StateInterrupted State = "interrupted"
)

// terminal reports whether the state is final for this server life.
// Interrupted is terminal here but resumable by the next life.
func (s State) terminal() bool { return s != StateRunning }

// JobSpec is a search job submission: which characterized space to search,
// under which objective and guidance, at what GA scale. It deliberately
// matches the nautilus CLI's flags, so a job with the same (space, hints,
// seed, scale) as a CLI run produces a byte-identical best configuration.
type JobSpec struct {
	// IP selects the bundled generator: noc, fft, or gemm.
	IP string `json:"ip"`
	// Query is the optimization goal (see catalog.Queries). Required in
	// scalar and portfolio modes; must be empty in pareto mode, where
	// Queries names the objective vector instead.
	Query string `json:"query,omitempty"`
	// Mode selects the search shape: "" or "scalar" (the default
	// single-objective guided GA), "pareto" (NSGA-II multi-objective
	// search over Queries), or "portfolio" (guided GA, baseline GA, and
	// simulated annealing raced over one shared dedup cache).
	Mode string `json:"mode,omitempty"`
	// Queries is the pareto-mode objective vector: two or more query names
	// on the same IP (Queries[0] is the primary objective whose optimum
	// the scalar reporting fields describe). Must be empty outside pareto
	// mode.
	Queries []string `json:"queries,omitempty"`
	// Guidance is baseline, weak, or strong (default strong).
	Guidance string `json:"guidance,omitempty"`
	// Generations is the GA generation count (default 80).
	Generations int `json:"generations,omitempty"`
	// Population is the GA population size (default 10).
	Population int `json:"population,omitempty"`
	// Seed seeds the run; results are deterministic in the full spec.
	Seed int64 `json:"seed"`
	// Parallelism bounds the session's concurrent fitness evaluations
	// (default min(population, server workers)); actual concurrency is
	// further gated by the server's fair global budget. Results are
	// identical at any level.
	Parallelism int `json:"parallelism,omitempty"`
	// Hints optionally replaces the IP's built-in hint library with an
	// inline library in the hints-file JSON schema (core.LoadLibrary).
	Hints json.RawMessage `json:"hints,omitempty"`
}

// withDefaults fills zero fields with the CLI's defaults.
func (j JobSpec) withDefaults(workers int) JobSpec {
	if j.Guidance == "" {
		j.Guidance = catalog.GuidanceStrong
	}
	if j.Generations == 0 {
		j.Generations = 80
	}
	if j.Population == 0 {
		j.Population = 10
	}
	if j.Parallelism == 0 {
		j.Parallelism = min(j.Population, workers)
	}
	return j
}

// resolve validates the spec and compiles its catalog entry, guidance,
// and - in pareto mode - the multi-objective vector (one metrics.Objective
// per Queries entry; nil in the other modes). The entry is the primary
// query's: in pareto mode Queries[0] resolves it, so guidance hints and
// the scalar reporting fields follow the primary objective.
func (j JobSpec) resolve() (*catalog.Entry, *core.Guidance, []metrics.Objective, error) {
	if j.Population < 2 {
		return nil, nil, nil, fmt.Errorf("population must be at least 2, got %d", j.Population)
	}
	if j.Generations < 1 {
		return nil, nil, nil, fmt.Errorf("generations must be at least 1, got %d", j.Generations)
	}
	if j.Parallelism < 1 {
		return nil, nil, nil, fmt.Errorf("parallelism must be at least 1, got %d", j.Parallelism)
	}
	if j.Seed < 0 {
		return nil, nil, nil, fmt.Errorf("seed must be non-negative, got %d", j.Seed)
	}
	primary := j.Query
	var objs []metrics.Objective
	switch j.Mode {
	case "", core.ModeScalar, core.ModePortfolio:
		if len(j.Queries) > 0 {
			return nil, nil, nil, fmt.Errorf("queries requires mode %q (got %q); scalar and portfolio jobs use query", core.ModePareto, j.Mode)
		}
	case core.ModePareto:
		if j.Query != "" {
			return nil, nil, nil, fmt.Errorf("pareto jobs name their objectives in queries; query must be empty (got %q)", j.Query)
		}
		if len(j.Queries) < 2 {
			return nil, nil, nil, fmt.Errorf("pareto mode needs at least two queries, got %d", len(j.Queries))
		}
		seen := make(map[string]bool, len(j.Queries))
		objs = make([]metrics.Objective, 0, len(j.Queries))
		for _, q := range j.Queries {
			if seen[q] {
				return nil, nil, nil, fmt.Errorf("duplicate pareto query %q", q)
			}
			seen[q] = true
			e, err := catalog.Lookup(j.IP, q)
			if err != nil {
				return nil, nil, nil, err
			}
			objs = append(objs, e.Objective)
		}
		primary = j.Queries[0]
	default:
		return nil, nil, nil, fmt.Errorf("unknown mode %q (want %q, %q, or %q)",
			j.Mode, core.ModeScalar, core.ModePareto, core.ModePortfolio)
	}
	entry, err := catalog.Lookup(j.IP, primary)
	if err != nil {
		return nil, nil, nil, err
	}
	lib := entry.Library
	if len(j.Hints) > 0 {
		lib, err = core.LoadLibrary(entry.Space, bytes.NewReader(j.Hints))
		if err != nil {
			return nil, nil, nil, err
		}
	}
	guid, err := entry.Guidance(j.Guidance, lib)
	if err != nil {
		return nil, nil, nil, err
	}
	return entry, guid, objs, nil
}

// JobStatus is the status payload for one session.
type JobStatus struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	// Generation is the last completed generation (-1 before the first).
	Generation int `json:"generation"`
	// BestValue is the best objective value so far; absent until a
	// feasible point is found.
	BestValue *float64 `json:"best_value,omitempty"`
	// DistinctEvals counts this session's distinct design evaluations so
	// far (the paper's cost metric, session-private accounting).
	DistinctEvals int    `json:"distinct_evals"`
	Error         string `json:"error,omitempty"`
	// Resumed marks a session restored from a drain checkpoint.
	Resumed bool `json:"resumed,omitempty"`
	// FrontSize and Hypervolume track a pareto session's non-dominated
	// archive: the feasible points no other evaluated point dominates, and
	// the front's dominated hypervolume against the running-nadir reference
	// (two-objective runs). Absent outside pareto mode.
	FrontSize   int     `json:"front_size,omitempty"`
	Hypervolume float64 `json:"hypervolume,omitempty"`
}

// JobResult is the final payload of a completed session.
type JobResult struct {
	ID string `json:"id"`
	// BestValue and Configuration describe the winning design point.
	// Configuration is param.Space.Describe's rendering - byte-identical
	// to the "configuration:" line the nautilus CLI prints for the same
	// (space, hints, seed, scale).
	BestValue     float64            `json:"best_value"`
	Configuration string             `json:"configuration"`
	Params        map[string]string  `json:"params"`
	Key           string             `json:"key"`
	Metrics       map[string]float64 `json:"metrics"`
	// DistinctEvals / TotalQueries / CacheHits are the session's private
	// evaluation accounting - identical to a solo CLI run's. Evaluations
	// answered by the server's shared per-space cache still count here (the
	// session would have spent them alone), which is exactly what makes
	// cross-session deduplication measurable: the shared space's distinct
	// count stays below the sum over sessions.
	DistinctEvals int     `json:"distinct_evals"`
	TotalQueries  int     `json:"total_queries"`
	CacheHits     int     `json:"cache_hits"`
	HitRate       float64 `json:"hit_rate"`
	Converged     bool    `json:"converged"`
	// Generations is the last completed generation index.
	Generations int `json:"generations"`
	// Objectives names the pareto objective vector (the spec's Queries, in
	// order); Front is the final non-dominated set, sorted best-first on
	// the primary objective, each member carrying its objective values in
	// Objectives order. Hypervolume is the front's dominated hypervolume
	// against the Nadir-derived reference point (two-objective runs).
	// All four are absent outside pareto mode.
	Objectives  []string      `json:"objectives,omitempty"`
	Front       []ParetoPoint `json:"front,omitempty"`
	Hypervolume float64       `json:"hypervolume,omitempty"`
	Nadir       []float64     `json:"nadir,omitempty"`
	// Portfolio reports each raced strategy's outcome (portfolio mode
	// only); exactly one entry has Winner set and the scalar fields above
	// describe that strategy's best design.
	Portfolio []ga.StrategyOutcome `json:"portfolio,omitempty"`
}

// ParetoPoint is one front member in wire form: the design's canonical
// key and human rendering plus its objective values (JobResult.Objectives
// order).
type ParetoPoint struct {
	Key           string    `json:"key"`
	Configuration string    `json:"configuration"`
	Values        []float64 `json:"values"`
}

// genEvent is one SSE progress event, derived from a GenerationRecord.
type genEvent struct {
	Generation    int      `json:"generation"`
	BestValue     *float64 `json:"best_value,omitempty"`
	MeanFitness   *float64 `json:"mean_fitness,omitempty"`
	Feasible      int      `json:"feasible"`
	UniqueGenomes int      `json:"unique_genomes"`
	DistinctEvals int      `json:"distinct_evals"`
	ElapsedMicros int64    `json:"elapsed_us"`
	// LatencyP50Micros / LatencyP99Micros are the session's running
	// generation-latency quantiles; CacheHitRate is its private cache's
	// running hit ratio. All three grow monotonically more stable as the
	// run ages; late SSE subscribers see them in every replayed event.
	LatencyP50Micros int64    `json:"latency_p50_us,omitempty"`
	LatencyP99Micros int64    `json:"latency_p99_us,omitempty"`
	CacheHitRate     *float64 `json:"cache_hit_rate,omitempty"`
	// FrontSize / Hypervolume stream a pareto session's per-generation
	// front growth (absent outside pareto mode).
	FrontSize   int     `json:"front_size,omitempty"`
	Hypervolume float64 `json:"hypervolume,omitempty"`
}

// session is one supervised search running inside the server.
type session struct {
	id    string
	seq   int
	spec  JobSpec
	entry *catalog.Entry
	guid  *core.Guidance
	// objs is the resolved pareto objective vector (nil outside pareto
	// mode), in spec.Queries order.
	objs []metrics.Objective

	hub  *progressHub
	col  *telemetry.Collector
	done chan struct{}
	// genLat distributes completed-generation wall times (power-of-two
	// nanosecond buckets) for /v1/sessions and the SSE stream; ring is the
	// session's span flight recorder, dumped by /debug/sessions. Both are
	// observational only.
	genLat hist.Hist
	ring   *trace.Ring

	mu          sync.Mutex
	cancel      context.CancelFunc
	state       State
	gen         int
	bestValue   float64
	feasible    bool
	distinct    int
	frontSize   int
	hypervolume float64
	errMsg      string
	resumed     bool
	userCancel  bool
	result      *JobResult
}

func newSession(id string, seq int, spec JobSpec, entry *catalog.Entry, guid *core.Guidance, objs []metrics.Objective) *session {
	return &session{
		id:    id,
		seq:   seq,
		spec:  spec,
		entry: entry,
		guid:  guid,
		objs:  objs,
		hub:   newProgressHub(),
		col:   telemetry.NewCollector(nil),
		done:  make(chan struct{}),
		ring:  trace.NewRing(flightRecorderSize),
		state: StateRunning,
		gen:   -1,
	}
}

// status snapshots the session for the API.
func (s *session) status() JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:            s.id,
		Spec:          s.spec,
		State:         s.state,
		Generation:    s.gen,
		DistinctEvals: s.distinct,
		Error:         s.errMsg,
		Resumed:       s.resumed,
		FrontSize:     s.frontSize,
		Hypervolume:   s.hypervolume,
	}
	if s.feasible {
		v := s.bestValue
		st.BestValue = &v
	}
	return st
}

// SessionPerf is the /v1/sessions payload for one session: the live
// generation-latency distribution (quantiles over every completed
// generation so far, in microseconds) and the session-private cache's
// running hit ratio.
type SessionPerf struct {
	ID            string `json:"id"`
	State         State  `json:"state"`
	Generation    int    `json:"generation"`
	DistinctEvals int    `json:"distinct_evals"`
	// Generations is how many generation latencies the histogram holds.
	Generations          int64   `json:"generations_observed"`
	GenLatencyP50Micros  float64 `json:"gen_latency_p50_us"`
	GenLatencyP90Micros  float64 `json:"gen_latency_p90_us"`
	GenLatencyP99Micros  float64 `json:"gen_latency_p99_us"`
	GenLatencyMeanMicros float64 `json:"gen_latency_mean_us"`
	CacheHitRate         float64 `json:"cache_hit_rate"`
}

// cacheHitRate reads the session collector's cache counters into a hit
// ratio; ok is false before any lookup happened.
func (s *session) cacheHitRate() (rate float64, ok bool) {
	snap := s.col.Registry().Snapshot()
	hits := snap.Counters[telemetry.MetricCacheHits]
	total := hits + snap.Counters[telemetry.MetricCacheMisses] + snap.Counters[telemetry.MetricCacheDedups]
	if total == 0 {
		return 0, false
	}
	return float64(hits) / float64(total), true
}

// perf snapshots the session's performance view for /v1/sessions.
func (s *session) perf() SessionPerf {
	st := s.status()
	lat := s.genLat.Snapshot()
	p := SessionPerf{
		ID:                   st.ID,
		State:                st.State,
		Generation:           st.Generation,
		DistinctEvals:        st.DistinctEvals,
		Generations:          lat.Count,
		GenLatencyP50Micros:  lat.P50() / 1e3,
		GenLatencyP90Micros:  lat.P90() / 1e3,
		GenLatencyP99Micros:  lat.P99() / 1e3,
		GenLatencyMeanMicros: lat.Mean() / 1e3,
	}
	if hr, ok := s.cacheHitRate(); ok {
		p.CacheHitRate = hr
	}
	return p
}

// stop cancels the session's run context. user marks a client cancel
// (terminal state "canceled") as opposed to a server drain ("interrupted",
// which resumes on restart).
func (s *session) stop(user bool) {
	s.mu.Lock()
	if user && s.state == StateRunning {
		s.userCancel = true
	}
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// finish transitions the session to a terminal state and wakes waiters.
func (s *session) finish(state State, errMsg string, result *JobResult) {
	s.mu.Lock()
	s.state = state
	s.errMsg = errMsg
	s.result = result
	if result != nil && len(result.Front) > 0 {
		// The result's front is exact (a clustered session's per-generation
		// replay streams only a lower bound); status reports it from here on.
		s.frontSize = len(result.Front)
		s.hypervolume = result.Hypervolume
	}
	s.mu.Unlock()
	s.hub.close()
	close(s.done)
}

// sessionRecorder feeds per-generation progress into the session's status
// and SSE hub. It observes records the engine already built (a live
// collector is always teed in, so Enabled is true) and never touches the
// run RNG - streaming progress cannot change a search result.
type sessionRecorder struct{ s *session }

func (r sessionRecorder) Enabled() bool { return true }

func (r sessionRecorder) RecordGeneration(g telemetry.GenerationRecord) {
	s := r.s
	s.genLat.ObserveDuration(g.Elapsed)
	s.mu.Lock()
	s.gen = g.Generation
	s.distinct = g.DistinctEvals
	s.frontSize = g.FrontSize
	s.hypervolume = g.Hypervolume
	if g.Feasible > 0 || s.feasible {
		// BestValue is the objective's Worst sentinel until something is
		// feasible; only publish it once real.
		s.feasible = true
		s.bestValue = g.BestValue
	}
	feasible := s.feasible
	s.mu.Unlock()

	lat := s.genLat.Snapshot()
	ev := genEvent{
		Generation:       g.Generation,
		Feasible:         g.Feasible,
		UniqueGenomes:    g.UniqueGenomes,
		DistinctEvals:    g.DistinctEvals,
		ElapsedMicros:    g.Elapsed.Microseconds(),
		LatencyP50Micros: int64(lat.P50() / 1e3),
		LatencyP99Micros: int64(lat.P99() / 1e3),
		FrontSize:        g.FrontSize,
		Hypervolume:      g.Hypervolume,
	}
	if hr, ok := s.cacheHitRate(); ok {
		ev.CacheHitRate = &hr
	}
	if feasible {
		v := g.BestValue
		ev.BestValue = &v
	}
	if g.Feasible > 0 {
		m := g.MeanFitness
		ev.MeanFitness = &m
	}
	if b, err := json.Marshal(ev); err == nil {
		s.hub.publish(b)
	}
}

func (r sessionRecorder) RecordEvaluation(telemetry.EvaluationRecord) {}
func (r sessionRecorder) RecordHint(telemetry.HintRecord)             {}
func (r sessionRecorder) RecordCache(telemetry.CacheRecord)           {}
func (r sessionRecorder) RecordPool(telemetry.PoolRecord)             {}

// progressHub broadcasts generation events to SSE subscribers. Delivery to
// live subscribers is best-effort (a stalled client drops events rather
// than stalling the search); the retained history bounds replay for late
// subscribers.
type progressHub struct {
	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	history [][]byte
	closed  bool
}

// hubHistoryLimit bounds replayed events per subscriber; older generations
// are dropped from replay (live status carries the cumulative fields).
const hubHistoryLimit = 1024

// subChanBuffer is each subscriber's event buffer; a subscriber further
// behind than this loses events.
const subChanBuffer = 256

func newProgressHub() *progressHub {
	return &progressHub{subs: make(map[chan []byte]struct{})}
}

// publish broadcasts one event and retains it for replay.
func (h *progressHub) publish(b []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, b)
	if len(h.history) > hubHistoryLimit {
		h.history = h.history[len(h.history)-hubHistoryLimit:]
	}
	for ch := range h.subs {
		select {
		case ch <- b:
		default: // slow subscriber: drop rather than block the search
		}
	}
}

// subscribe registers a new subscriber and returns its live channel, the
// replay backlog, and whether the stream is already complete.
func (h *progressHub) subscribe() (ch chan []byte, replay [][]byte, closed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([][]byte(nil), h.history...)
	if h.closed {
		return nil, replay, true
	}
	ch = make(chan []byte, subChanBuffer)
	h.subs[ch] = struct{}{}
	return ch, replay, false
}

// unsubscribe removes a subscriber.
func (h *progressHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, ch)
}

// subscribers reports the live subscriber count - tests use it to prove
// abandoned SSE handlers actually let go of the hub.
func (h *progressHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// close ends the stream: subscribers' channels are closed after any
// buffered events drain.
func (h *progressHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
	}
	h.subs = make(map[chan []byte]struct{})
}
