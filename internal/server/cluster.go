package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"nautilus/internal/catalog"
	"nautilus/internal/cluster"
	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

// MetricClusterPeers is the gauge carrying the ring's member count
// (exposed as nautilus_cluster_peers alongside the cluster.Node counters).
const MetricClusterPeers = "cluster.peers"

// forwardHeader marks a proxied /v1 request with the forwarding node's ID,
// so a job that is unknown cluster-wide 404s instead of bouncing between
// peers forever.
const forwardHeader = "X-Nautilus-Forwarded"

// CodePeerUnreachable is the error envelope code for a proxy attempt that
// could not reach the job's owning node (502).
const CodePeerUnreachable = "peer_unreachable"

// ClusterOptions turns one server into a member of a nautserve cluster:
// its shared per-IP caches gain a remote tier sharded over a consistent-
// hash ring (each design point is evaluated once per cluster), submitted
// jobs run as island-model searches fanned out across the membership, and
// /v1 job routes proxy to the owning node so any member answers for any
// job.
type ClusterOptions struct {
	// NodeID is this node's stable ring identity. Required.
	NodeID string
	// Addr is the cluster RPC listen address. Required.
	Addr string
	// Peers maps peer node IDs to their cluster RPC dial addresses; ring
	// membership is Peers' keys plus NodeID.
	Peers map[string]string
	// APIPeers maps peer node IDs to their HTTP API host:port, enabling
	// /v1 job proxying. Peers absent here answer RPC but not proxied HTTP.
	APIPeers map[string]string
	// Islands is the island count per clustered session (default: one per
	// member).
	Islands int
	// MigrationInterval is the exchange cadence in generations (default 5;
	// negative disables migration and islands search independently).
	MigrationInterval int
	// MigrationCount is the emigrants per exchange (default 1).
	MigrationCount int
	// Vnodes is the ring's per-node virtual-node count (default
	// cluster.DefaultVnodes).
	Vnodes int
	// RPCTimeout / MigrationTimeout pass through to cluster.Options.
	RPCTimeout       time.Duration
	MigrationTimeout time.Duration
}

// migrationSpec renders the configured exchange schedule in wire form, or
// nil when migration is disabled.
func (co *ClusterOptions) migrationSpec() *cluster.MigrationSpec {
	if co.MigrationInterval < 0 {
		return nil
	}
	spec := &cluster.MigrationSpec{Interval: co.MigrationInterval, Count: co.MigrationCount}
	if spec.Interval == 0 {
		spec.Interval = 5
	}
	if spec.Count <= 0 {
		spec.Count = 1
	}
	return spec
}

// initCluster builds and starts this server's cluster node. Called from
// New before restore, so resumed sessions already see the cluster; the
// remote tier is attached to shared caches under s.mu, covering both the
// caches that exist already and every one sharedCacheFor creates later.
func (s *Server) initCluster() error {
	co := s.opts.Cluster
	if co.NodeID == "" {
		return fmt.Errorf("server: cluster node id required")
	}
	if co.Addr == "" {
		return fmt.Errorf("server: cluster listen address required")
	}
	node, err := cluster.NewNode(cluster.Options{
		ID:               co.NodeID,
		Addr:             co.Addr,
		Peers:            co.Peers,
		Network:          s.opts.Network,
		Vnodes:           co.Vnodes,
		Registry:         s.reg,
		Caches:           s.clusterCaches,
		RunIsland:        s.runClusterIsland,
		RPCTimeout:       co.RPCTimeout,
		MigrationTimeout: co.MigrationTimeout,
	})
	if err != nil {
		return err
	}
	s.reg.Gauge(MetricClusterPeers).Set(float64(len(node.Ring().Nodes())))
	s.clusterHTTP = &http.Client{
		Transport: &http.Transport{DialContext: s.opts.Network.DialContext},
	}
	s.mu.Lock()
	s.cluster = node
	for ip, c := range s.shared {
		c.SetRemote(node.RemoteFor(ip))
	}
	s.mu.Unlock()
	return nil
}

// clusterNode returns the cluster node, nil when running solo.
func (s *Server) clusterNode() *cluster.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster
}

// clusterCaches resolves the shared evaluation cache peers' opEval
// requests are served from. Eval and Space are per-IP (query-independent),
// so any query's catalog entry reaches the same cache sharedCacheFor hands
// local sessions.
func (s *Server) clusterCaches(ip string) (*dataset.Cache, *param.Space, bool) {
	queries, err := catalog.Queries(ip)
	if err != nil || len(queries) == 0 {
		return nil, nil, false
	}
	entry, err := catalog.Lookup(ip, queries[0])
	if err != nil {
		return nil, nil, false
	}
	return s.sharedCacheFor(entry), entry.Space, true
}

// runClusterIsland runs one island of a cluster session on this node: the
// spec's payload is the session's JobSpec, the island searches it with the
// spec's derived seed through the shared per-IP cache (remote tier
// included, so the cluster still pays for each distinct point once), and
// migrants ride the node's exchange. Pure in the spec - a peer re-running
// a degraded island computes the identical search.
func (s *Server) runClusterIsland(ctx context.Context, spec cluster.IslandSpec) (cluster.IslandResult, error) {
	var js JobSpec
	if err := json.Unmarshal(spec.Payload, &js); err != nil {
		return cluster.IslandResult{}, fmt.Errorf("island payload: %w", err)
	}
	js = js.withDefaults(s.opts.Workers)
	entry, guid, objs, err := js.resolve()
	if err != nil {
		return cluster.IslandResult{}, err
	}
	shared := s.sharedCacheFor(entry)
	// Scheduler slots are accounted per island, so a clustered session's
	// islands share the worker budget fairly like any other tenants.
	sid := fmt.Sprintf("%s#%d", spec.Session, spec.Island)
	eval := func(ectx context.Context, pt param.Point) (metrics.Metrics, error) {
		return shared.EvaluateCtx(context.WithValue(ectx, sessionKey{}, sid), pt)
	}
	cfg := ga.Config{
		PopulationSize: js.Population,
		Generations:    js.Generations,
		Seed:           spec.Seed,
		Parallelism:    js.Parallelism,
	}
	res, err := core.Search(ctx, core.SearchRequest{
		Space:       entry.Space,
		Mode:        js.Mode,
		Objective:   entry.Objective,
		Objectives:  objs,
		EvaluateCtx: eval,
		Config:      cfg,
	}, core.WithGuidance(guid), core.WithMigration(spec.Exchange(s.clusterNode())))
	if err != nil {
		return cluster.IslandResult{}, err
	}
	if res.Interrupted {
		if cerr := ctx.Err(); cerr != nil {
			return cluster.IslandResult{}, cerr
		}
		return cluster.IslandResult{}, fmt.Errorf("island %d interrupted", spec.Island)
	}
	return cluster.IslandResult{
		Island:        spec.Island,
		Best:          res.BestPoint,
		BestValue:     res.BestValue,
		Feasible:      res.BestPoint != nil,
		Trajectory:    res.Trajectory,
		DistinctEvals: res.DistinctEvals,
		Converged:     res.Converged,
		Front:         res.Front,
		Hypervolume:   res.Hypervolume,
		Nadir:         res.Nadir,
	}, nil
}

// searchCluster runs one submitted session as an island-model search over
// the cluster and folds the merged outcome back into the ga.Result shape
// the session state machine consumes. The merged trajectory replays
// through the session recorder afterwards, so status, SSE subscribers,
// and /v1/sessions see the same per-generation progress a solo run
// streams live. Session-private cache accounting (TotalQueries/CacheHits)
// stays zero here: islands run in parallel across nodes and their private
// counters do not compose into one meaningful session number - the
// cluster-wide dedup story lives in nautilus_cluster_remote_hits instead.
func (s *Server) searchCluster(ctx context.Context, sess *session) (ga.Result, error) {
	co := s.opts.Cluster
	payload, err := json.Marshal(sess.spec)
	if err != nil {
		return ga.Result{}, err
	}
	cres, err := s.clusterNode().RunSession(ctx, cluster.Request{
		Session:    sess.id,
		Seed:       sess.spec.Seed,
		Islands:    co.Islands,
		Migration:  co.migrationSpec(),
		Payload:    payload,
		Better:     sess.entry.Objective.Better,
		Worst:      sess.entry.Objective.Worst(),
		Objectives: sess.objs,
	})
	if err != nil {
		if ctx.Err() != nil {
			return ga.Result{Interrupted: true}, nil
		}
		return ga.Result{}, err
	}
	res := ga.Result{
		BestPoint:     cres.Best,
		BestValue:     cres.BestValue,
		Trajectory:    cres.Trajectory,
		DistinctEvals: cres.DistinctEvals,
		Front:         cres.Front,
		Hypervolume:   cres.Hypervolume,
		Nadir:         cres.Nadir,
	}
	rec := sessionRecorder{s: sess}
	worst := sess.entry.Objective.Worst()
	for _, gp := range cres.Trajectory {
		feasible := 0
		if gp.BestValue != worst {
			feasible = 1
		}
		rec.RecordGeneration(telemetry.GenerationRecord{
			Generation:    gp.Generation,
			BestValue:     gp.BestValue,
			Feasible:      feasible,
			UniqueGenomes: gp.UniqueGenomes,
			DistinctEvals: gp.DistinctEvals,
			FrontSize:     gp.FrontSize,
			Hypervolume:   gp.Hypervolume,
		})
	}
	return res, nil
}

// ClusterInfo is the cluster block /v1/sessions and /v1/stats expose on a
// clustered node.
type ClusterInfo struct {
	Node    string   `json:"node"`
	Members []string `json:"members"`
	// Islands is the configured island count per session (0 = one per
	// member).
	Islands int `json:"islands"`
	// The counters mirror the nautilus_cluster_* metric families.
	RemoteHits        int64 `json:"remote_hits"`
	Fallbacks         int64 `json:"fallbacks"`
	Served            int64 `json:"served"`
	MigrantsSent      int64 `json:"migrants_sent"`
	MigrantsRecv      int64 `json:"migrants_recv"`
	MigrationTimeouts int64 `json:"migration_timeouts"`
}

// clusterInfo snapshots the cluster block, nil on a solo server.
func (s *Server) clusterInfo() *ClusterInfo {
	node := s.clusterNode()
	if node == nil {
		return nil
	}
	counter := func(name string) int64 { return s.reg.Counter(name).Value() }
	return &ClusterInfo{
		Node:              node.ID(),
		Members:           node.Ring().Nodes(),
		Islands:           s.opts.Cluster.Islands,
		RemoteHits:        counter(cluster.MetricRemoteHits),
		Fallbacks:         counter(cluster.MetricFallbacks),
		Served:            counter(cluster.MetricServed),
		MigrantsSent:      counter(cluster.MetricMigrantsSent),
		MigrantsRecv:      counter(cluster.MetricMigrantsRecv),
		MigrationTimeouts: counter(cluster.MetricMigrationTimeouts),
	}
}

// jobOwner reports which peer owns id when it is a clustered job ID minted
// by another node this server can proxy to. Clustered IDs embed the
// submitting node: "job-<nodeID>-<seq>".
func (s *Server) jobOwner(id string) (string, bool) {
	co := s.opts.Cluster
	if co == nil {
		return "", false
	}
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return "", false
	}
	cut := strings.LastIndexByte(rest, '-')
	if cut <= 0 {
		return "", false
	}
	owner := rest[:cut]
	if owner == co.NodeID {
		return "", false
	}
	_, ok = co.APIPeers[owner]
	return owner, ok
}

// proxyJob wraps a job-addressed handler: requests for jobs minted by a
// peer are forwarded to that peer's API, so the cluster answers as one.
// Forwarded requests carry forwardHeader and are never re-forwarded.
func (s *Server) proxyJob(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if owner, ok := s.jobOwner(r.PathValue("id")); ok && r.Header.Get(forwardHeader) == "" {
			s.proxy(w, r, owner)
			return
		}
		fn(w, r)
	}
}

// proxy forwards one request to owner's API verbatim and streams the
// response back, flushing as chunks arrive so proxied SSE stays live.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, owner string) {
	out := r.Clone(r.Context())
	out.URL.Scheme = "http"
	out.URL.Host = s.opts.Cluster.APIPeers[owner]
	out.Host = out.URL.Host
	out.RequestURI = ""
	out.Header = r.Header.Clone()
	out.Header.Set(forwardHeader, s.opts.Cluster.NodeID)
	resp, err := s.clusterHTTP.Do(out)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, ErrorEnvelope{Error: ErrorBody{
			Code:    CodePeerUnreachable,
			Message: fmt.Sprintf("job owner %s unreachable: %v", owner, err),
		}})
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// closeCluster shuts the cluster node down (idempotent; no-op when solo).
func (s *Server) closeCluster() {
	if node := s.clusterNode(); node != nil {
		node.Close()
	}
}
