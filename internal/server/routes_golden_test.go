package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRouteTableGolden pins the versioned API surface: the canonical /v1
// route patterns (methods and paths), the uniform error-envelope shape,
// and the machine-readable error codes. The golden file is the API
// contract with clients - any route or envelope change must show up as a
// reviewed golden diff, not silently.
func TestRouteTableGolden(t *testing.T) {
	var b strings.Builder
	b.WriteString("# canonical /v1 routes (each also served at /api/v1 with a Deprecation header)\n")
	for _, rt := range RouteTable() {
		b.WriteString(rt)
		b.WriteByte('\n')
	}

	b.WriteString("# error envelope\n")
	env, err := json.Marshal(ErrorEnvelope{Error: ErrorBody{
		Code:    CodeFailed,
		Message: "<message>",
		State:   StateFailed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	b.Write(env)
	b.WriteByte('\n')

	b.WriteString("# error codes\n")
	for _, code := range []string{
		CodeBadRequest, CodeNotFound, CodeNotReady, CodeDraining,
		CodeTooManySessions, CodeTooLarge, CodeFailed, CodeInternal,
		CodePeerUnreachable,
	} {
		b.WriteString(code)
		b.WriteByte('\n')
	}

	got := b.String()
	goldenPath := filepath.Join("testdata", "routes.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("route table drifted from golden (UPDATE_GOLDEN=1 to accept):\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDeprecatedAliasCounter checks legacy /api/v1 traffic is counted per
// canonical route and surfaced as nautilus_http_deprecated_requests_total
// on /metrics; canonical /v1 traffic never increments it.
func TestDeprecatedAliasCounter(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &apiClient{t: t, base: ts.URL}

	// Canonical traffic only: the family is exposed but empty.
	c.do("GET", "/v1/healthz", nil)
	_, body := c.do("GET", "/metrics", nil)
	if !strings.Contains(string(body), "# TYPE nautilus_http_deprecated_requests_total counter") {
		t.Fatal("deprecated-requests family missing from /metrics")
	}
	if strings.Contains(string(body), `nautilus_http_deprecated_requests_total{`) {
		t.Errorf("canonical traffic incremented the deprecated counter:\n%s", body)
	}

	c.do("GET", "/api/v1/healthz", nil)
	c.do("GET", "/api/v1/healthz", nil)
	c.do("GET", "/api/v1/jobs", nil)
	_, body = c.do("GET", "/metrics", nil)
	for _, want := range []string{
		`nautilus_http_deprecated_requests_total{route="GET /v1/healthz"} 2`,
		`nautilus_http_deprecated_requests_total{route="GET /v1/jobs"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
