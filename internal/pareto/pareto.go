// Package pareto provides multi-objective utilities over characterized
// design spaces: dominance tests, Pareto-front extraction, and 2-D
// hypervolume. The paper's related-work section contrasts Nautilus with
// active-learning approaches that model the entire Pareto-optimal set;
// these utilities let users of this library inspect that set directly when
// the design space is small enough to have been characterized, and measure
// how close a single-query search landed to the front.
package pareto

import (
	"fmt"
	"sort"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// Dominates reports whether metric bag a Pareto-dominates b under the
// given objectives: at least as good on every objective, strictly better
// on one. Bags missing any objective's value never dominate and are always
// dominated.
func Dominates(objs []metrics.Objective, a, b metrics.Metrics) bool {
	aOK, bOK := true, true
	for _, o := range objs {
		if _, ok := o.Value(a); !ok {
			aOK = false
		}
		if _, ok := o.Value(b); !ok {
			bOK = false
		}
	}
	if !aOK {
		return false // an incomplete bag never dominates
	}
	if !bOK {
		return true // ...and is dominated by any complete one
	}
	strictly := false
	for _, o := range objs {
		av, _ := o.Value(a)
		bv, _ := o.Value(b)
		if o.Better(bv, av) {
			return false
		}
		if o.Better(av, bv) {
			strictly = true
		}
	}
	return strictly
}

// FrontPoint is one member of an extracted Pareto front.
type FrontPoint struct {
	Point  param.Point
	Values []float64 // objective values, in objective order
}

// Front extracts the Pareto-optimal set of the dataset under the given
// objectives (two or more). The result is sorted by the first objective,
// best first.
func Front(ds *dataset.Dataset, objs []metrics.Objective) ([]FrontPoint, error) {
	if len(objs) < 2 {
		return nil, fmt.Errorf("pareto: need at least two objectives, got %d", len(objs))
	}
	type cand struct {
		pt   param.Point
		m    metrics.Metrics
		vals []float64
	}
	var cands []cand
	ds.Each(func(pt param.Point, m metrics.Metrics) bool {
		vals := make([]float64, len(objs))
		for i, o := range objs {
			v, ok := o.Value(m)
			if !ok {
				return true // skip points missing an objective
			}
			vals[i] = v
		}
		cands = append(cands, cand{pt: pt.Clone(), m: m, vals: vals})
		return true
	})
	if len(cands) == 0 {
		return nil, fmt.Errorf("pareto: no points carry all objectives")
	}

	// Sort by first objective (best first) so dominance scans are cheap:
	// a point can only be dominated by points that precede it or tie it on
	// the first objective.
	sort.SliceStable(cands, func(i, j int) bool {
		return objs[0].Better(cands[i].vals[0], cands[j].vals[0])
	})
	var front []FrontPoint
	var frontBags []metrics.Metrics
	for _, c := range cands {
		dominated := false
		for _, fb := range frontBags {
			if Dominates(objs, fb, c.m) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		front = append(front, FrontPoint{Point: c.pt, Values: c.vals})
		frontBags = append(frontBags, c.m)
	}
	return front, nil
}

// DistanceToFront returns the smallest relative gap between the given
// objective values and any front point: 0 means the values sit on the
// front. The gap between value v and front value f on objective i is
// |v-f| / max(|f|, 1e-12), and a candidate's gap is its worst objective
// gap; the distance is the minimum over front points.
func DistanceToFront(front []FrontPoint, vals []float64) float64 {
	best := -1.0
	for _, fp := range front {
		worst := 0.0
		for i, fv := range fp.Values {
			den := fv
			if den < 0 {
				den = -den
			}
			if den < 1e-12 {
				den = 1e-12
			}
			gap := (vals[i] - fv) / den
			if gap < 0 {
				gap = -gap
			}
			if gap > worst {
				worst = gap
			}
		}
		if best < 0 || worst < best {
			best = worst
		}
	}
	return best
}

// Hypervolume2D computes the area dominated by a two-objective front
// relative to a reference point (a standard quality indicator for
// bi-objective optimizers). Both objectives are normalized internally to
// maximize-form; ref must be dominated by every front point.
func Hypervolume2D(objs [2]metrics.Objective, front []FrontPoint, ref [2]float64) (float64, error) {
	if len(front) == 0 {
		return 0, fmt.Errorf("pareto: empty front")
	}
	// Convert to maximize-form coordinates relative to ref.
	type xy struct{ x, y float64 }
	pts := make([]xy, 0, len(front))
	conv := func(o metrics.Objective, v, r float64) float64 {
		if o.Direction() == metrics.Minimize {
			return r - v
		}
		return v - r
	}
	for _, fp := range front {
		p := xy{conv(objs[0], fp.Values[0], ref[0]), conv(objs[1], fp.Values[1], ref[1])}
		if p.x < 0 || p.y < 0 {
			return 0, fmt.Errorf("pareto: reference point does not bound front point %v", fp.Values)
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x > pts[j].x })
	area := 0.0
	prevY := 0.0
	for _, p := range pts {
		if p.y > prevY {
			area += p.x * (p.y - prevY)
			prevY = p.y
		}
	}
	return area, nil
}
