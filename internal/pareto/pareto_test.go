package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"nautilus/internal/dataset"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// tradeoffSpace: cost rises with x, quality rises with x too (a pure
// trade-off: the whole diagonal is Pareto-optimal), plus a "waste" axis w
// that only adds cost - so only w=0 points are on the front.
func tradeoffSpace(t *testing.T) (*param.Space, *dataset.Dataset) {
	t.Helper()
	s := param.MustSpace(
		param.Int("x", 0, 9, 1),
		param.Int("w", 0, 3, 1),
	)
	ds, err := dataset.Build(s, func(pt param.Point) (metrics.Metrics, error) {
		x, w := float64(pt[0]), float64(pt[1])
		return metrics.Metrics{
			"cost":    10 + 5*x + 7*w,
			"quality": 1 + x,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

func objs() []metrics.Objective {
	return []metrics.Objective{
		metrics.MinimizeMetric("cost"),
		metrics.MaximizeMetric("quality"),
	}
}

func TestDominates(t *testing.T) {
	o := objs()
	a := metrics.Metrics{"cost": 10, "quality": 5}
	b := metrics.Metrics{"cost": 20, "quality": 5}
	c := metrics.Metrics{"cost": 10, "quality": 9}
	if !Dominates(o, a, b) {
		t.Error("a should dominate b (cheaper, same quality)")
	}
	if Dominates(o, b, a) {
		t.Error("b should not dominate a")
	}
	if !Dominates(o, c, a) {
		t.Error("c should dominate a (same cost, better quality)")
	}
	if Dominates(o, a, a) {
		t.Error("a point must not dominate itself")
	}
	// Incomparable pair.
	d := metrics.Metrics{"cost": 5, "quality": 1}
	if Dominates(o, a, d) || Dominates(o, d, a) {
		t.Error("trade-off pair should be incomparable")
	}
	// Missing metrics lose.
	missing := metrics.Metrics{"cost": 1}
	if Dominates(o, missing, a) {
		t.Error("incomplete bag should not dominate")
	}
	if !Dominates(o, a, missing) {
		t.Error("complete bag should dominate incomplete one")
	}
}

func TestFrontExtraction(t *testing.T) {
	s, ds := tradeoffSpace(t)
	front, err := Front(ds, objs())
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the w=0 diagonal: 10 points.
	if len(front) != 10 {
		t.Fatalf("front has %d points, want 10", len(front))
	}
	for _, fp := range front {
		if s.Int(fp.Point, "w") != 0 {
			t.Errorf("front contains wasteful point %s", s.Describe(fp.Point))
		}
	}
	// Sorted by first objective (min cost) best-first.
	for i := 1; i < len(front); i++ {
		if front[i].Values[0] < front[i-1].Values[0] {
			t.Fatal("front not sorted by cost")
		}
	}
}

func TestFrontMutualNonDomination(t *testing.T) {
	_, ds := tradeoffSpace(t)
	o := objs()
	front, err := Front(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range front {
		for j := range front {
			if i == j {
				continue
			}
			a := metrics.Metrics{"cost": front[i].Values[0], "quality": front[i].Values[1]}
			b := metrics.Metrics{"cost": front[j].Values[0], "quality": front[j].Values[1]}
			if Dominates(o, a, b) {
				t.Fatalf("front points %d and %d not mutually non-dominated", i, j)
			}
		}
	}
}

func TestFrontRejectsSingleObjective(t *testing.T) {
	_, ds := tradeoffSpace(t)
	if _, err := Front(ds, objs()[:1]); err == nil {
		t.Error("single-objective front accepted")
	}
}

func TestDistanceToFront(t *testing.T) {
	_, ds := tradeoffSpace(t)
	front, err := Front(ds, objs())
	if err != nil {
		t.Fatal(err)
	}
	// A point on the front has distance 0.
	if d := DistanceToFront(front, front[3].Values); d != 0 {
		t.Errorf("on-front distance = %v, want 0", d)
	}
	// The wasteful variant of x=3 (w=1: cost 32 vs 25) is off the front.
	if d := DistanceToFront(front, []float64{32, 4}); d <= 0 {
		t.Errorf("off-front distance = %v, want > 0", d)
	}
}

func TestHypervolume2D(t *testing.T) {
	o := [2]metrics.Objective{metrics.MinimizeMetric("cost"), metrics.MaximizeMetric("quality")}
	front := []FrontPoint{
		{Values: []float64{10, 1}},
		{Values: []float64{20, 4}},
		{Values: []float64{40, 5}},
	}
	// Reference: cost 50, quality 0. Maximize-form coords: x=50-cost,
	// y=quality: (40,1), (30,4), (10,5).
	// Area = 40*1 + 30*(4-1) + 10*(5-4) = 140.
	hv, err := Hypervolume2D(o, front, [2]float64{50, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hv-140) > 1e-9 {
		t.Errorf("hypervolume = %v, want 140", hv)
	}
	// Bad reference point.
	if _, err := Hypervolume2D(o, front, [2]float64{30, 0}); err == nil {
		t.Error("unbounding reference accepted")
	}
	if _, err := Hypervolume2D(o, nil, [2]float64{50, 0}); err == nil {
		t.Error("empty front accepted")
	}
}

// Property: no dataset point dominates any front point.
func TestQuickFrontOptimal(t *testing.T) {
	s, ds := tradeoffSpace(t)
	o := objs()
	front, err := Front(ds, o)
	if err != nil {
		t.Fatal(err)
	}
	card := s.Cardinality()
	f := func(n uint64) bool {
		pt := s.PointAt(n % card)
		m, _ := ds.Lookup(pt)
		for _, fp := range front {
			fm := metrics.Metrics{"cost": fp.Values[0], "quality": fp.Values[1]}
			if Dominates(o, m, fm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hypervolume grows (weakly) as front points are added.
func TestQuickHypervolumeMonotone(t *testing.T) {
	o := [2]metrics.Objective{metrics.MinimizeMetric("cost"), metrics.MaximizeMetric("quality")}
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var front []FrontPoint
		prev := -1.0
		for i, r := range raw {
			front = append(front, FrontPoint{
				Values: []float64{float64(r), float64(i)},
			})
			hv, err := Hypervolume2D(o, front, [2]float64{300, -1})
			if err != nil {
				return false
			}
			if hv < prev-1e-9 {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
