package pareto

import (
	"math"
	"testing"

	"nautilus/internal/metrics"
)

func fp(vals ...float64) FrontPoint { return FrontPoint{Values: vals} }

// Hypervolume2D degenerate inputs: duplicate points must not double-count
// area, a single-point front is the plain rectangle to the reference, and
// a reference point dominated by (or interior to) the front is an error.
func TestHypervolume2DDuplicatePoints(t *testing.T) {
	o := [2]metrics.Objective{metrics.MinimizeMetric("cost"), metrics.MaximizeMetric("quality")}
	ref := [2]float64{100, 0}
	single := []FrontPoint{fp(10, 5)}
	base, err := Hypervolume2D(o, single, ref)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := Hypervolume2D(o, []FrontPoint{fp(10, 5), fp(10, 5), fp(10, 5)}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if dup != base {
		t.Errorf("duplicated point changed hypervolume: %g vs %g", dup, base)
	}
}

func TestHypervolume2DSinglePoint(t *testing.T) {
	o := [2]metrics.Objective{metrics.MinimizeMetric("cost"), metrics.MaximizeMetric("quality")}
	hv, err := Hypervolume2D(o, []FrontPoint{fp(10, 5)}, [2]float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	// (100-10) wide by (5-0) tall in maximize-form coordinates.
	if want := 90.0 * 5.0; hv != want {
		t.Errorf("single-point hypervolume = %g, want %g", hv, want)
	}
	// A front point sitting exactly on the reference contributes zero area
	// but is not an error.
	hv, err = Hypervolume2D(o, []FrontPoint{fp(100, 0)}, [2]float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if hv != 0 {
		t.Errorf("on-reference point hypervolume = %g, want 0", hv)
	}
}

func TestHypervolume2DRefDominatedByFront(t *testing.T) {
	o := [2]metrics.Objective{metrics.MinimizeMetric("cost"), metrics.MaximizeMetric("quality")}
	// ref cost 5 is better than the front point's 10: the reference fails
	// to bound the front and the area is undefined.
	if _, err := Hypervolume2D(o, []FrontPoint{fp(10, 5)}, [2]float64{5, 0}); err == nil {
		t.Fatal("expected error for reference point dominated by front")
	}
	// One bad coordinate is enough.
	if _, err := Hypervolume2D(o, []FrontPoint{fp(10, 5)}, [2]float64{100, 7}); err == nil {
		t.Fatal("expected error for reference quality above front point")
	}
	if _, err := Hypervolume2D(o, nil, [2]float64{100, 0}); err == nil {
		t.Fatal("expected error for empty front")
	}
}

func TestDominatesValues(t *testing.T) {
	o := objs()
	if !DominatesValues(o, []float64{10, 5}, []float64{20, 5}) {
		t.Error("cheaper same-quality point should dominate")
	}
	if DominatesValues(o, []float64{10, 5}, []float64{10, 5}) {
		t.Error("equal vectors must not dominate each other")
	}
	if DominatesValues(o, []float64{10, 5}, []float64{5, 1}) || DominatesValues(o, []float64{5, 1}, []float64{10, 5}) {
		t.Error("incomparable pair must not dominate either way")
	}
}

func TestRankCrowd(t *testing.T) {
	o := objs()
	// Two front-0 points (trade-off), one dominated, one infeasible.
	vals := [][]float64{
		{10, 5},  // front 0
		{20, 9},  // front 0 (worse cost, better quality)
		{25, 5},  // dominated by 0 => front 1
		{1, 100}, // infeasible: excluded
	}
	ok := []bool{true, true, true, false}
	ranks := make([]int, len(vals))
	crowd := make([]float64, len(vals))
	RankCrowd(o, vals, ok, ranks, crowd)
	if ranks[0] != 0 || ranks[1] != 0 {
		t.Errorf("trade-off pair should be rank 0, got %v", ranks)
	}
	if ranks[2] != 1 {
		t.Errorf("dominated point should be rank 1, got %d", ranks[2])
	}
	if ranks[3] != len(vals) {
		t.Errorf("infeasible point should hold sentinel rank %d, got %d", len(vals), ranks[3])
	}
	if !math.IsInf(crowd[0], 1) || !math.IsInf(crowd[1], 1) {
		t.Errorf("two-member front must be all-boundary (Inf crowding), got %v", crowd)
	}
}

func TestRankCrowdInteriorDistance(t *testing.T) {
	o := objs()
	// Three-point front: the middle point gets a finite normalized
	// crowding distance, boundaries get Inf.
	vals := [][]float64{{10, 1}, {20, 5}, {30, 9}}
	ranks := make([]int, 3)
	crowd := make([]float64, 3)
	RankCrowd(o, vals, nil, ranks, crowd)
	for i, r := range ranks {
		if r != 0 {
			t.Fatalf("point %d rank = %d, want 0", i, r)
		}
	}
	if !math.IsInf(crowd[0], 1) || !math.IsInf(crowd[2], 1) {
		t.Errorf("boundary points should have Inf crowding, got %v", crowd)
	}
	// Middle point spans the full range on both objectives: (30-10)/20 +
	// (9-1)/8 = 2.
	if math.Abs(crowd[1]-2) > 1e-12 {
		t.Errorf("interior crowding = %g, want 2", crowd[1])
	}
}

func TestArchiveInsertionOrderIndependent(t *testing.T) {
	o := objs()
	points := []struct {
		g []int
		v []float64
	}{
		{[]int{0, 0}, []float64{10, 1}},
		{[]int{1, 0}, []float64{15, 2}},
		{[]int{2, 0}, []float64{20, 3}},
		{[]int{2, 1}, []float64{27, 3}}, // dominated by {2,0}
		{[]int{0, 1}, []float64{17, 1}}, // dominated by {0,0}
	}
	build := func(order []int) *Archive {
		a := NewArchive(o)
		for _, i := range order {
			a.Add(points[i].g, points[i].v)
		}
		return a
	}
	fwd := build([]int{0, 1, 2, 3, 4})
	rev := build([]int{4, 3, 2, 1, 0})
	fm, rm := fwd.Members(), rev.Members()
	if len(fm) != 3 || len(rm) != 3 {
		t.Fatalf("front sizes = %d, %d, want 3", len(fm), len(rm))
	}
	for i := range fm {
		if !samePoint(fm[i].Point, rm[i].Point) {
			t.Errorf("member %d differs across insertion orders: %v vs %v", i, fm[i].Point, rm[i].Point)
		}
	}
	// Canonical order: best first on the first objective (min cost).
	if fm[0].Values[0] != 10 || fm[2].Values[0] != 20 {
		t.Errorf("canonical order wrong: %v", fm)
	}
	// Re-adding an existing genome is a no-op.
	if fwd.Add([]int{0, 0}, []float64{10, 1}) {
		t.Error("duplicate genome admitted")
	}
	if fwd.Size() != 3 {
		t.Errorf("size after duplicate add = %d, want 3", fwd.Size())
	}
}

func TestRefFromNadir(t *testing.T) {
	o := [2]metrics.Objective{metrics.MinimizeMetric("cost"), metrics.MaximizeMetric("quality")}
	ref := RefFromNadir(o, [2]float64{100, 2})
	if ref[0] <= 100 {
		t.Errorf("minimize ref %g should exceed nadir 100", ref[0])
	}
	if ref[1] >= 2 {
		t.Errorf("maximize ref %g should sit below nadir 2", ref[1])
	}
}
