// NSGA-II machinery: value-slice dominance, fast non-dominated sorting
// with crowding distances, and a deterministic incremental front archive.
// These operate on pre-extracted objective-value slices (rather than
// metrics bags) so the GA engine can drive them on its hot path without
// re-deriving metric values per comparison.
package pareto

import (
	"math"
	"sort"

	"nautilus/internal/metrics"
)

// DominatesValues reports whether value vector a Pareto-dominates b under
// the given objectives: at least as good on every objective, strictly
// better on at least one. Both slices must be len(objs) long, values in
// objective order.
func DominatesValues(objs []metrics.Objective, a, b []float64) bool {
	strictly := false
	for i, o := range objs {
		if o.Better(b[i], a[i]) {
			return false
		}
		if o.Better(a[i], b[i]) {
			strictly = true
		}
	}
	return strictly
}

// RankCrowd runs fast non-dominated sorting plus crowding-distance
// assignment (NSGA-II) over a population's objective-value vectors.
// vals[i] holds individual i's values in objective order; ok[i] false
// marks an infeasible or failed individual, which is excluded from the
// sort and assigned the sentinel rank len(vals) with zero crowding.
// ranks and crowd must be caller-allocated with len(vals) entries; rank 0
// is the non-dominated front. Crowding distances are normalized per
// objective by the front's value range and capped at +Inf for boundary
// points. The computation is fully deterministic: ties in the crowding
// sorts break on population index.
func RankCrowd(objs []metrics.Objective, vals [][]float64, ok []bool, ranks []int, crowd []float64) {
	n := len(vals)
	sentinel := n
	// Collect feasible indices.
	feas := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ranks[i] = sentinel
		crowd[i] = 0
		if ok == nil || ok[i] {
			feas = append(feas, i)
		}
	}
	if len(feas) == 0 {
		return
	}

	// Fast non-dominated sort: count dominators and record dominated sets.
	domCount := make(map[int]int, len(feas))
	domSets := make(map[int][]int, len(feas))
	var front []int
	for ai, a := range feas {
		for _, b := range feas[ai+1:] {
			switch {
			case DominatesValues(objs, vals[a], vals[b]):
				domSets[a] = append(domSets[a], b)
				domCount[b]++
			case DominatesValues(objs, vals[b], vals[a]):
				domSets[b] = append(domSets[b], a)
				domCount[a]++
			}
		}
	}
	for _, i := range feas {
		if domCount[i] == 0 {
			ranks[i] = 0
			front = append(front, i)
		}
	}
	for rank := 0; len(front) > 0; rank++ {
		crowdFront(objs, vals, front, crowd)
		var next []int
		for _, i := range front {
			for _, j := range domSets[i] {
				domCount[j]--
				if domCount[j] == 0 {
					ranks[j] = rank + 1
					next = append(next, j)
				}
			}
		}
		// Indices enter fronts in ascending population order because feas
		// is ascending and domSets preserve it; keep that invariant.
		sort.Ints(next)
		front = next
	}
}

// crowdFront writes crowding distances for one front's members.
func crowdFront(objs []metrics.Objective, vals [][]float64, front []int, crowd []float64) {
	if len(front) <= 2 {
		for _, i := range front {
			crowd[i] = math.Inf(1)
		}
		return
	}
	order := make([]int, len(front))
	for oi := range objs {
		copy(order, front)
		sort.SliceStable(order, func(a, b int) bool {
			va, vb := vals[order[a]][oi], vals[order[b]][oi]
			if va != vb {
				return va < vb
			}
			return order[a] < order[b]
		})
		lo, hi := vals[order[0]][oi], vals[order[len(order)-1]][oi]
		crowd[order[0]] = math.Inf(1)
		crowd[order[len(order)-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < len(order)-1; k++ {
			if math.IsInf(crowd[order[k]], 1) {
				continue
			}
			crowd[order[k]] += (vals[order[k+1]][oi] - vals[order[k-1]][oi]) / (hi - lo)
		}
	}
}

// Archive is an incremental non-dominated set over everything a search has
// evaluated. Insertion keeps only mutually non-dominated members; points
// with identical genomes are deduplicated. The archive is deterministic:
// its final contents depend only on the set of points added, never on the
// order, because Members sorts canonically.
type Archive struct {
	objs    []metrics.Objective
	members []FrontPoint
}

// NewArchive returns an empty archive under the given objectives (two or
// more).
func NewArchive(objs []metrics.Objective) *Archive {
	return &Archive{objs: objs}
}

// Add offers a genome and its objective-value vector to the archive. It
// returns true if the point was admitted (i.e. no existing member
// dominates it). Both slices are cloned; callers may reuse their buffers.
func (a *Archive) Add(genome []int, vals []float64) bool {
	for _, m := range a.members {
		if DominatesValues(a.objs, m.Values, vals) {
			return false
		}
		if samePoint(m.Point, genome) {
			return false
		}
	}
	// Evict members the newcomer dominates.
	kept := a.members[:0]
	for _, m := range a.members {
		if !DominatesValues(a.objs, vals, m.Values) {
			kept = append(kept, m)
		}
	}
	a.members = append(kept, FrontPoint{
		Point:  append([]int(nil), genome...),
		Values: append([]float64(nil), vals...),
	})
	return true
}

// Size returns the number of archive members.
func (a *Archive) Size() int { return len(a.members) }

// Members returns the archive contents in canonical order: best first on
// the first objective, ties broken by later objectives and finally by
// genome lexicographic order. The returned slice aliases archive storage;
// callers must not mutate it.
func (a *Archive) Members() []FrontPoint {
	sort.SliceStable(a.members, func(i, j int) bool {
		mi, mj := a.members[i], a.members[j]
		for oi, o := range a.objs {
			if mi.Values[oi] != mj.Values[oi] {
				return o.Better(mi.Values[oi], mj.Values[oi])
			}
		}
		return lessGenome(mi.Point, mj.Point)
	})
	return a.members
}

func samePoint(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessGenome(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// RefFromNadir returns a hypervolume reference point strictly dominated by
// every point at least as good as the nadir (the per-objective worst
// feasible values seen): each coordinate is pushed 1% of its magnitude
// (plus a small epsilon) further in the worse direction. Deriving the
// reference from the running nadir keeps hypervolume reports deterministic
// without asking callers to guess objective scales.
func RefFromNadir(objs [2]metrics.Objective, nadir [2]float64) [2]float64 {
	var ref [2]float64
	for i := 0; i < 2; i++ {
		pad := 1e-9 + 0.01*math.Abs(nadir[i])
		if objs[i].Direction() == metrics.Minimize {
			ref[i] = nadir[i] + pad
		} else {
			ref[i] = nadir[i] - pad
		}
	}
	return ref
}
