package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"nautilus/internal/faultnet"
)

// TestClusterSeededFaultSoak is the cluster-soak scenario CI repeats: a
// 3-node island session over a seeded faultnet.Faulty schedule (latency,
// jitter, scheduled resets and partition windows on every connection).
// Fault timing interleaves with goroutine scheduling, so the *outcome* is
// not pinned byte-for-byte here - what must hold under any schedule is
// validity: the session completes, every island's best is consistent with
// the objective it reports, the merged best is the best of the islands,
// and the nodes shut down without leaking goroutines.
func TestClusterSeededFaultSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	faulty := faultnet.New(faultnet.Config{Scenario: faultnet.Scenario{
		Seed:              9,
		Latency:           200 * time.Microsecond,
		Jitter:            time.Millisecond,
		ResetRate:         0.15,
		ResetMaxBytes:     2048,
		PartitionRate:     0.1,
		PartitionMaxBytes: 2048,
		PartitionHeal:     50 * time.Millisecond,
	}, Under: faultnet.NewMemory()})
	nodes := newTestCluster(t, faulty, []string{"alpha", "beta", "gamma"}, func(o *Options) {
		o.RPCTimeout = 250 * time.Millisecond
		o.MigrationTimeout = 500 * time.Millisecond
	})

	res, err := nodes[0].node.RunSession(context.Background(), testRequest("fault-soak", 5, true))
	if err != nil {
		t.Fatalf("faulted session failed: %v", err)
	}
	if !res.Feasible {
		t.Fatal("faulted session found nothing feasible")
	}
	_, rawEval := testSpace()
	cost := func(pt []int) float64 {
		m, _ := rawEval(pt)
		return m["cost"]
	}
	if got := cost(res.Best); res.BestValue != got {
		t.Fatalf("merged best inconsistent: %v reported %v, evaluates to %v", res.Best, res.BestValue, got)
	}
	best := res.Islands[0].BestValue
	for _, island := range res.Islands {
		if !island.Feasible {
			t.Fatalf("island %d found nothing feasible", island.Island)
		}
		if got := cost(island.Best); island.BestValue != got {
			t.Fatalf("island %d best inconsistent: %v reported %v, evaluates to %v",
				island.Island, island.Best, island.BestValue, got)
		}
		if island.BestValue < best {
			best = island.BestValue
		}
	}
	if res.BestValue != best {
		t.Fatalf("merged best %v is not the best island value %v", res.BestValue, best)
	}

	// Whatever the fault schedule did to individual RPCs, shutdown must be
	// clean: no serving or exchange goroutine may outlive its node.
	for _, tn := range nodes {
		tn.node.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak under faults: %d > baseline %d\n%s", got, baseline, buf[:runtime.Stack(buf, true)])
	}
}
