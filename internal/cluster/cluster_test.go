package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"

	"nautilus/internal/dataset"
	"nautilus/internal/faultnet"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

// testIP is the catalog IP the test cluster shares caches for.
const testIP = "quad"

// testSpace is a 4-parameter space with a unique optimum - the same
// shape the ga package's tests search.
func testSpace() (*param.Space, func(param.Point) (metrics.Metrics, error)) {
	s := param.MustSpace(
		param.Int("w", 0, 15, 1),
		param.Int("x", 0, 15, 1),
		param.Int("y", 0, 15, 1),
		param.Int("z", 0, 15, 1),
	)
	target := []int{3, 12, 7, 9}
	eval := func(pt param.Point) (metrics.Metrics, error) {
		cost := 1.0
		for i, tv := range target {
			d := float64(pt[i] - tv)
			cost += d * d
		}
		return metrics.Metrics{"cost": cost}, nil
	}
	return s, eval
}

// islandPayload is the embedder job description the test RunIsland
// understands.
type islandPayload struct {
	Generations int `json:"generations"`
	Population  int `json:"population"`
}

// testNode is one cluster member plus the observability the tests poke.
type testNode struct {
	node  *Node
	cache *dataset.Cache
	reg   *telemetry.Registry
	evals atomic.Int64 // raw local evaluator invocations
}

func (tn *testNode) counter(name string) int64 { return tn.reg.Counter(name).Value() }

// newTestCluster builds ids-many nodes over net, each with a shared
// evaluation cache for testIP (remote tier attached) and a RunIsland
// that searches the quad space with the spec's seed and migration.
func newTestCluster(t *testing.T, net faultnet.Network, ids []string, tune func(*Options)) []*testNode {
	t.Helper()
	addrs := make(map[string]string, len(ids))
	for i, id := range ids {
		addrs[id] = fmt.Sprintf("%s:%d", id, 9000+i)
	}
	nodes := make([]*testNode, len(ids))
	for i, id := range ids {
		tn := &testNode{reg: telemetry.NewRegistry()}
		space, rawEval := testSpace()
		tn.cache = dataset.NewCache(space, func(pt param.Point) (metrics.Metrics, error) {
			tn.evals.Add(1)
			return rawEval(pt)
		})
		peers := make(map[string]string, len(ids)-1)
		for pid, paddr := range addrs {
			if pid != id {
				peers[pid] = paddr
			}
		}
		opts := Options{
			ID:       id,
			Addr:     addrs[id],
			Peers:    peers,
			Network:  net,
			Registry: tn.reg,
			Caches: func(ip string) (*dataset.Cache, *param.Space, bool) {
				if ip != testIP {
					return nil, nil, false
				}
				return tn.cache, space, true
			},
		}
		opts.RunIsland = func(ctx context.Context, spec IslandSpec) (IslandResult, error) {
			var p islandPayload
			if err := json.Unmarshal(spec.Payload, &p); err != nil {
				return IslandResult{}, err
			}
			eval := func(ectx context.Context, pt param.Point) (metrics.Metrics, error) {
				return tn.cache.EvaluateCtx(ectx, pt)
			}
			cfg := ga.Config{
				Seed:           spec.Seed,
				Generations:    p.Generations,
				PopulationSize: p.Population,
				Migration:      spec.Exchange(tn.node),
			}
			eng, err := ga.NewContext(space, metrics.MinimizeMetric("cost"), eval, cfg, nil)
			if err != nil {
				return IslandResult{}, err
			}
			res, err := eng.RunContext(ctx)
			if err != nil {
				return IslandResult{}, err
			}
			return IslandResult{
				Best:          res.BestPoint,
				BestValue:     res.BestValue,
				Feasible:      res.BestPoint != nil,
				Trajectory:    res.Trajectory,
				DistinctEvals: res.DistinctEvals,
				Converged:     res.Converged,
			}, nil
		}
		if tune != nil {
			tune(&opts)
		}
		node, err := NewNode(opts)
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.cache.SetRemote(node.RemoteFor(testIP))
		nodes[i] = tn
		t.Cleanup(func() { node.Close() })
	}
	return nodes
}

func testRequest(session string, seed int64, migrate bool) Request {
	payload, _ := json.Marshal(islandPayload{Generations: 12, Population: 8})
	req := Request{
		Session: session,
		Seed:    seed,
		Payload: payload,
		Better:  func(a, b float64) bool { return a < b }, // minimize
		Worst:   metrics.MinimizeMetric("cost").Worst(),
	}
	if migrate {
		req.Migration = &MigrationSpec{Interval: 3, Count: 2}
	}
	return req
}

// TestClusterDeterminism is the tentpole acceptance test: two same-seed
// 3-node island runs over faultnet.Memory return byte-identical results
// (trajectory included), and cluster-wide cache dedup is observable -
// cross-node hits happen, and the second run's evaluators are never
// invoked because every point is already characterized somewhere.
func TestClusterDeterminism(t *testing.T) {
	nodes := newTestCluster(t, faultnet.NewMemory(), []string{"alpha", "beta", "gamma"}, nil)
	run := func(session string) []byte {
		res, err := nodes[0].node.RunSession(context.Background(), testRequest(session, 42, true))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := run("run-1")
	var firstEvals, firstRemote, firstServed int64
	for _, tn := range nodes {
		firstEvals += tn.evals.Load()
		firstRemote += tn.counter(MetricRemoteHits)
		firstServed += tn.counter(MetricServed)
	}
	if firstRemote == 0 || firstServed == 0 {
		t.Fatalf("no cross-node cache traffic: remote_hits=%d served=%d", firstRemote, firstServed)
	}
	if sent := nodes[0].counter(MetricMigrantsSent) + nodes[1].counter(MetricMigrantsSent) + nodes[2].counter(MetricMigrantsSent); sent == 0 {
		t.Fatal("no migrants exchanged in an island run")
	}

	second := run("run-2")
	if string(first) != string(second) {
		t.Errorf("same-seed cluster runs differ:\n%s\n%s", first, second)
	}
	var secondEvals int64
	for _, tn := range nodes {
		secondEvals += tn.evals.Load()
	}
	if secondEvals != firstEvals {
		t.Errorf("second run re-evaluated %d points the cluster had already characterized",
			secondEvals-firstEvals)
	}
	// Fresh cluster, same seed: byte-identical again (no hidden state).
	fresh := newTestCluster(t, faultnet.NewMemory(), []string{"alpha", "beta", "gamma"}, nil)
	res, err := fresh[0].node.RunSession(context.Background(), testRequest("run-1", 42, true))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(res)
	if string(b) != string(first) {
		t.Errorf("fresh cluster differs from warm cluster on the same seed")
	}
}

// TestClusterMatchesSoloWithoutMigration pins the other determinism
// satellite: with migration disabled, each island is an independent GA,
// so island k of a 3-node run must match a plain solo run seeded with
// IslandSeed(seed, k) - and island 0 keeps the session seed itself.
func TestClusterMatchesSoloWithoutMigration(t *testing.T) {
	nodes := newTestCluster(t, faultnet.NewMemory(), []string{"alpha", "beta", "gamma"}, nil)
	const seed = 7
	res, err := nodes[0].node.RunSession(context.Background(), testRequest("solo-match", seed, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Islands) != 3 {
		t.Fatalf("islands = %d, want 3", len(res.Islands))
	}
	space, rawEval := testSpace()
	for k, island := range res.Islands {
		eng, err := ga.New(space, metrics.MinimizeMetric("cost"), rawEval,
			ga.Config{Seed: IslandSeed(seed, k), Generations: 12, PopulationSize: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		solo := eng.Run()
		if island.BestValue != solo.BestValue || !param.Point(island.Best).Equal(solo.BestPoint) {
			t.Errorf("island %d best (%v, %v) != solo (%v, %v)",
				k, island.Best, island.BestValue, solo.BestPoint, solo.BestValue)
		}
		if len(island.Trajectory) != len(solo.Trajectory) {
			t.Fatalf("island %d trajectory length %d != solo %d", k, len(island.Trajectory), len(solo.Trajectory))
		}
		for g := range solo.Trajectory {
			if island.Trajectory[g].BestValue != solo.Trajectory[g].BestValue ||
				island.Trajectory[g].UniqueGenomes != solo.Trajectory[g].UniqueGenomes {
				t.Fatalf("island %d diverges from solo at generation %d", k, g)
			}
		}
	}
	if IslandSeed(seed, 0) != seed {
		t.Error("island 0 must keep the session seed")
	}
}

// TestIslandSeedDistinct guards the derivation: distinct islands draw
// distinct streams.
func TestIslandSeedDistinct(t *testing.T) {
	seen := map[int64]int{}
	for k := 0; k < 64; k++ {
		s := IslandSeed(99, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("islands %d and %d share seed %d", prev, k, s)
		}
		seen[s] = k
	}
}

// TestRPCCodecRoundTrip pins the binary eval codec.
func TestRPCCodecRoundTrip(t *testing.T) {
	pt := param.Point{3, 12, 7, 9}
	ip, hash, got, err := decodeEvalRequest(encodeEvalRequest("soc/noc", 0xdeadbeefcafe, pt))
	if err != nil {
		t.Fatal(err)
	}
	if ip != "soc/noc" || hash != 0xdeadbeefcafe || !got.Equal(pt) {
		t.Fatalf("round trip: ip=%q hash=%x pt=%v", ip, hash, got)
	}
	m := metrics.Metrics{"cost": 1.5, "fmax_mhz": 250, "luts": 1200}
	back, err := decodeMetrics(encodeMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(m) || back["cost"] != 1.5 || back["fmax_mhz"] != 250 {
		t.Fatalf("metrics round trip: %v", back)
	}
	if _, err := decodeMetrics([]byte{0x00}); err == nil {
		t.Error("truncated metrics accepted")
	}
	if _, _, _, err := decodeEvalRequest([]byte{0x00, 0x02, 'h'}); err == nil {
		t.Error("truncated request accepted")
	}
}
