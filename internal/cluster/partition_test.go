package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"nautilus/internal/faultnet"
	"nautilus/internal/param"
)

// TestPartitionDegradesToLocal is the faultnet satellite: a two-way
// partition mid-search makes remote cache lookups degrade to local
// evaluation (counted in cluster.fallbacks, the nautilus_cluster_fallbacks
// family), the search still completes with correct results, healing
// re-enables sharing, and the whole exercise leaks no goroutines.
func TestPartitionDegradesToLocal(t *testing.T) {
	baseline := runtime.NumGoroutine()

	faulty := faultnet.New(faultnet.Config{Under: faultnet.NewMemory()})
	nodes := newTestCluster(t, faulty, []string{"alpha", "beta"}, func(o *Options) {
		o.RPCTimeout = 50 * time.Millisecond
		o.MigrationTimeout = 250 * time.Millisecond
	})
	a, b := nodes[0], nodes[1]
	ring := a.node.Ring()
	space, rawEval := testSpace()

	// pointsOwnedBy picks distinct points whose hashes land on owner, so
	// each Evaluate below is guaranteed to exercise the remote tier.
	pointsOwnedBy := func(owner string, n int) []param.Point {
		var pts []param.Point
		for w := 0; w < 16 && len(pts) < n; w++ {
			for x := 0; x < 16 && len(pts) < n; x++ {
				pt := param.Point{w, x, 5, 5}
				if ring.Owner(space.Hash64(pt)) == owner {
					pts = append(pts, pt.Clone())
				}
			}
		}
		return pts
	}

	// Healthy: alpha resolves beta-owned points through beta.
	healthy := pointsOwnedBy("beta", 4)
	for _, pt := range healthy {
		if _, err := a.cache.Evaluate(pt); err != nil {
			t.Fatal(err)
		}
	}
	if hits := a.counter(MetricRemoteHits); hits != int64(len(healthy)) {
		t.Fatalf("healthy remote hits = %d, want %d", hits, len(healthy))
	}
	if a.evals.Load() != 0 || b.evals.Load() != int64(len(healthy)) {
		t.Fatalf("healthy evaluation placement wrong: alpha=%d beta=%d", a.evals.Load(), b.evals.Load())
	}

	// Partition two-way mid-search: beta-owned lookups must fall back to
	// alpha's local evaluator - counted, completed, and correct.
	faulty.Partition(faultnet.PartitionTwoWay)
	parted := pointsOwnedBy("beta", 8)[4:]
	for _, pt := range parted {
		m, err := a.cache.Evaluate(pt)
		if err != nil {
			t.Fatalf("partitioned evaluation failed: %v", err)
		}
		want, _ := rawEval(pt)
		if m["cost"] != want["cost"] {
			t.Fatalf("partitioned evaluation wrong: %v != %v", m, want)
		}
	}
	if fb := a.counter(MetricFallbacks); fb != int64(len(parted)) {
		t.Fatalf("fallbacks = %d, want %d", fb, len(parted))
	}
	if a.evals.Load() != int64(len(parted)) {
		t.Fatalf("partitioned points not evaluated locally: alpha evals = %d", a.evals.Load())
	}

	// A full island session submitted while partitioned still completes:
	// cross-node islands degrade to local re-runs and exchanges time out,
	// but the merged result is feasible and correct.
	res, err := a.node.RunSession(context.Background(), testRequest("parted", 21, true))
	if err != nil {
		t.Fatalf("partitioned session failed: %v", err)
	}
	if !res.Feasible {
		t.Fatal("partitioned session found nothing feasible")
	}
	var sum float64 = 1
	for i, tv := range []int{3, 12, 7, 9} {
		d := float64(res.Best[i] - tv)
		sum += d * d
	}
	if res.BestValue != sum {
		t.Fatalf("partitioned session returned inconsistent best: %v -> %v, want %v", res.Best, res.BestValue, sum)
	}

	// Heal: sharing resumes - new beta-owned points ride the RPC again.
	faulty.Heal()
	preHits := a.counter(MetricRemoteHits)
	preBetaEvals := b.evals.Load()
	healed := pointsOwnedBy("beta", 12)[8:]
	for _, pt := range healed {
		if _, err := a.cache.Evaluate(pt); err != nil {
			t.Fatal(err)
		}
	}
	if hits := a.counter(MetricRemoteHits) - preHits; hits != int64(len(healed)) {
		t.Fatalf("post-heal remote hits = %d, want %d", hits, len(healed))
	}
	if deval := b.evals.Load() - preBetaEvals; deval != int64(len(healed)) {
		t.Fatalf("post-heal evaluations landed wrong: beta evaluated %d, want %d", deval, len(healed))
	}

	// No goroutine leaks once the nodes shut down.
	a.node.Close()
	b.node.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d > baseline %d\n%s", got, baseline, buf[:runtime.Stack(buf, true)])
	}

	// The cluster never produced a wrong answer anywhere above; spot-check
	// the cache contents agree with the raw evaluator end to end.
	for _, pt := range append(append(healthy, parted...), healed...) {
		m, err := a.cache.Evaluate(pt)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := rawEval(pt)
		if m["cost"] != want["cost"] {
			t.Fatalf("memoized value for %v drifted: %v != %v", pt, m, want)
		}
	}
}
