package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return ids
}

// TestRingDistribution pins the satellite bound: at 64 vnodes, every
// node's key share stays within 15% of uniform. The ring is a pure
// function of the membership, so these measurements are exact, not
// statistical.
func TestRingDistribution(t *testing.T) {
	const keys = 100000
	for _, n := range []int{2, 3, 4, 5, 8} {
		r, err := NewRing(ringIDs(n), 64)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		for i := 0; i < keys; i++ {
			counts[r.Owner(mix64(uint64(i)))]++
		}
		for id, c := range counts {
			dev := float64(c)/(float64(keys)/float64(n)) - 1
			if dev < 0 {
				dev = -dev
			}
			if dev > 0.15 {
				t.Errorf("n=%d: node %s owns %d of %d keys, %.1f%% off uniform (cap 15%%)",
					n, id, c, keys, 100*dev)
			}
		}
	}
}

// TestRingMinimalReshuffle pins consistent hashing's defining property:
// growing N nodes to N+1 moves only ~1/(N+1) of the key space, and every
// moved key lands on the new node; removing a node moves only the keys it
// owned, and none of the survivors' keys.
func TestRingMinimalReshuffle(t *testing.T) {
	const keys = 50000
	for _, n := range []int{2, 3, 5, 7} {
		before, err := NewRing(ringIDs(n), 64)
		if err != nil {
			t.Fatal(err)
		}
		joined, err := NewRing(ringIDs(n+1), 64)
		if err != nil {
			t.Fatal(err)
		}
		newID := fmt.Sprintf("node-%d", n)
		moved := 0
		for i := 0; i < keys; i++ {
			h := mix64(uint64(i))
			was, now := before.Owner(h), joined.Owner(h)
			if was != now {
				moved++
				if now != newID {
					t.Fatalf("n=%d: key moved %s->%s on join of %s", n, was, now, newID)
				}
			}
		}
		ideal := float64(keys) / float64(n+1)
		if f := float64(moved); f > 1.5*ideal {
			t.Errorf("n=%d: join moved %d keys, want ~%.0f (1/N+1 of %d)", n, moved, ideal, keys)
		}
		// Leave is join in reverse: removing newID must restore exactly
		// the old ownership (the moved set returns, nothing else stirs).
		for i := 0; i < keys; i++ {
			h := mix64(uint64(i))
			if before.Owner(h) != joined.Owner(h) && joined.Owner(h) != newID {
				t.Fatalf("n=%d: non-new-node churn on membership change", n)
			}
		}
	}
}

// TestRingOwnerProperties drives testing/quick over random keys and
// membership sizes: ownership is total, a member of the ring, stable
// across identically-built rings, and unmoved keys keep their owner
// across a join.
func TestRingOwnerProperties(t *testing.T) {
	prop := func(key uint64, size uint8) bool {
		n := int(size%7) + 2 // 2..8 members
		a, err := NewRing(ringIDs(n), 64)
		if err != nil {
			return false
		}
		b, err := NewRing(ringIDs(n), 64)
		if err != nil {
			return false
		}
		owner := a.Owner(key)
		found := false
		for _, id := range a.Nodes() {
			if id == owner {
				found = true
			}
		}
		if !found || owner != b.Owner(key) {
			return false
		}
		grown, err := NewRing(ringIDs(n+1), 64)
		if err != nil {
			return false
		}
		after := grown.Owner(key)
		return after == owner || after == fmt.Sprintf("node-%d", n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRingRejectsBadMembership pins constructor validation.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate node id accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Error("empty node id accepted")
	}
	empty, err := NewRing(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Owner(42); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
}
