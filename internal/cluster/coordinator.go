package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/pareto"
)

// IslandSeed derives island k's RNG seed from the session seed. Island 0
// keeps the session seed unchanged, so a one-island cluster run is the
// very same search as a solo run; further islands draw distinct streams
// through the SplitMix64 finalizer. Pure, so every node computes the
// same assignment.
func IslandSeed(seed int64, k int) int64 {
	if k == 0 {
		return seed
	}
	return int64(mix64(uint64(seed) ^ mix64(uint64(k))))
}

// IslandSpec is the opIsland payload: everything a node needs to run one
// island of a cluster session deterministically. Payload is the
// embedder's job description (the server ships its JobSpec; tests ship
// whatever their RunIsland understands), opaque to this package.
type IslandSpec struct {
	// Session names the run; migrant mailboxes are scoped to it.
	Session string `json:"session"`
	// Island is this island's index in [0, Islands).
	Island int `json:"island"`
	// Islands is the total island count K.
	Islands int `json:"islands"`
	// Members is the sorted node membership the session was planned
	// against; island k runs on Members[k % len(Members)]. Pinning it in
	// the spec keeps the topology - and with it the migration schedule -
	// stable even if ring views drift.
	Members []string `json:"members"`
	// Seed is the island's derived RNG seed (IslandSeed(sessionSeed, k)).
	Seed int64 `json:"seed"`
	// Migration carries the exchange cadence; nil disables migration and
	// the islands search independently.
	Migration *MigrationSpec `json:"migration,omitempty"`
	// Payload is the embedder-defined job description.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// MigrationSpec is the wire form of the exchange schedule.
type MigrationSpec struct {
	// Interval is the generation cadence (ga.Migration.Interval).
	Interval int `json:"interval"`
	// Count is the emigrants per exchange (ga.Migration.Count).
	Count int `json:"count"`
}

// Exchange materializes the island's ga.MigrantExchange on node n - ring
// topology over spec.Members, mailboxes scoped to spec.Session. Returns
// nil when the spec disables migration.
func (spec *IslandSpec) Exchange(n *Node) *ga.Migration {
	if spec.Migration == nil || spec.Islands <= 1 {
		return nil
	}
	return &ga.Migration{
		Interval: spec.Migration.Interval,
		Count:    spec.Migration.Count,
		Exchange: n.exchangeFor(spec.Session, spec.Island, spec.Islands, spec.Members),
	}
}

// IslandResult is one island's search outcome in wire form.
type IslandResult struct {
	Island        int           `json:"island"`
	Best          []int         `json:"best,omitempty"`
	BestValue     float64       `json:"best_value"`
	Feasible      bool          `json:"feasible"`
	Trajectory    []ga.GenPoint `json:"trajectory"`
	DistinctEvals int           `json:"distinct_evals"`
	Converged     bool          `json:"converged"`
	// Front / Hypervolume / Nadir carry a pareto island's non-dominated
	// set, its dominated hypervolume, and its per-objective worst feasible
	// values (empty on scalar islands).
	Front       []pareto.FrontPoint `json:"front,omitempty"`
	Hypervolume float64             `json:"hypervolume,omitempty"`
	Nadir       []float64           `json:"nadir,omitempty"`
}

// Request describes one cluster session for Node.RunSession.
type Request struct {
	// Session names the run (migrant mailbox scope). Required.
	Session string
	// Seed is the session seed; island k derives IslandSeed(Seed, k).
	Seed int64
	// Islands is the island count K (default: one per member).
	Islands int
	// Migration sets the exchange schedule; nil searches independent
	// islands.
	Migration *MigrationSpec
	// Payload is handed to every island's RunIsland verbatim.
	Payload json.RawMessage
	// Better reports whether objective value a beats b, and Worst is the
	// objective's sentinel for "nothing feasible" - the two pieces of
	// objective knowledge the merge needs. In pareto sessions both
	// describe the primary objective (Objectives[0]).
	Better func(a, b float64) bool
	Worst  float64
	// Objectives, when two or more, marks a pareto session: every island
	// runs the multi-objective search and the merge unions their fronts
	// into one cluster-wide non-dominated set. Coordinator-local (the
	// islands resolve their own vector from Payload); nil for scalar.
	Objectives []metrics.Objective
}

// Result is the deterministic merge of a session's island results.
type Result struct {
	Best      param.Point
	BestValue float64
	Feasible  bool
	// Trajectory has one entry per generation: the best value across
	// islands so far, with DistinctEvals and UniqueGenomes summed over
	// islands (an island past its convergence point contributes its final
	// entry). Note the sum counts per-island cache distinct totals; with
	// ring sharing the cluster-wide distinct count is lower - that gap
	// *is* the cluster dedup.
	Trajectory    []ga.GenPoint
	DistinctEvals int
	Islands       []IslandResult
	// Front is the cluster-wide non-dominated union of the islands' fronts
	// (pareto sessions; canonical archive order). Hypervolume is recomputed
	// against the merged Nadir (elementwise worst across islands), so it is
	// exact for the merged front, not an aggregate of island values.
	Front       []pareto.FrontPoint
	Hypervolume float64
	Nadir       []float64
}

// RunSession fans one session out as an island-model search over the
// membership and merges the results: island k runs on Members[k % N] -
// remotely over opIsland, locally through Options.RunIsland - and every
// degraded remote island (unreachable host, mid-run failure) is re-run
// locally, so a session submitted to a live coordinator completes even
// fully partitioned. Given the same seed and membership the fan-out,
// schedules, and merge are all deterministic.
func (n *Node) RunSession(ctx context.Context, req Request) (Result, error) {
	if n.opts.RunIsland == nil {
		return Result{}, fmt.Errorf("cluster: node cannot host islands")
	}
	if req.Session == "" {
		return Result{}, fmt.Errorf("cluster: session name required")
	}
	if req.Better == nil {
		return Result{}, fmt.Errorf("cluster: objective comparison required")
	}
	members := n.ring.Nodes()
	k := req.Islands
	if k <= 0 {
		k = len(members)
	}
	results := make([]IslandResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		spec := IslandSpec{
			Session:   req.Session,
			Island:    i,
			Islands:   k,
			Members:   members,
			Seed:      IslandSeed(req.Seed, i),
			Migration: req.Migration,
			Payload:   req.Payload,
		}
		wg.Add(1)
		go func(i int, spec IslandSpec) {
			defer wg.Done()
			results[i], errs[i] = n.runIsland(ctx, spec)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("cluster: island %d: %w", i, err)
		}
	}
	return mergeIslands(req, results), nil
}

// runIsland places one island: locally when this node hosts it, over
// opIsland otherwise - with a local re-run as the degradation path when
// the remote host cannot be reached or fails mid-run (the island is a
// pure function of its spec, so the re-run computes the same search the
// peer would have).
func (n *Node) runIsland(ctx context.Context, spec IslandSpec) (IslandResult, error) {
	host := spec.Members[spec.Island%len(spec.Members)]
	if host != n.opts.ID {
		payload, err := json.Marshal(spec)
		if err != nil {
			return IslandResult{}, err
		}
		status, body, err := n.callIsland(ctx, host, payload)
		if err == nil && status == statusOK {
			var res IslandResult
			if err := json.Unmarshal(body, &res); err != nil {
				return IslandResult{}, err
			}
			return res, nil
		}
		if err == nil && status == statusErr {
			return IslandResult{}, fmt.Errorf("island host %s: %s", host, body)
		}
		// Unreachable host: fall back to running the island here.
		inc(n.fallbacks)
	}
	n.beginIsland(spec.Session)
	defer n.endIsland(spec.Session)
	return n.opts.RunIsland(ctx, spec)
}

// mergeIslands folds island results into one Result, deterministically:
// the best feasible value under req.Better with lowest-island tie-break,
// and a generation-aligned trajectory (shorter trajectories contribute
// their final entry).
func mergeIslands(req Request, results []IslandResult) Result {
	out := Result{BestValue: req.Worst, Islands: results}
	maxLen := 0
	for i := range results {
		r := &results[i]
		r.Island = i
		out.DistinctEvals += r.DistinctEvals
		if len(r.Trajectory) > maxLen {
			maxLen = len(r.Trajectory)
		}
		if r.Feasible && (!out.Feasible || req.Better(r.BestValue, out.BestValue)) {
			out.Feasible = true
			out.BestValue = r.BestValue
			out.Best = param.Point(r.Best)
		}
	}
	out.Trajectory = make([]ga.GenPoint, 0, maxLen)
	for g := 0; g < maxLen; g++ {
		gp := ga.GenPoint{Generation: g, BestValue: req.Worst}
		feasible := false
		for i := range results {
			tr := results[i].Trajectory
			if len(tr) == 0 {
				continue
			}
			e := tr[min(g, len(tr)-1)]
			gp.DistinctEvals += e.DistinctEvals
			gp.UniqueGenomes += e.UniqueGenomes
			if e.BestValue != req.Worst && (!feasible || req.Better(e.BestValue, gp.BestValue)) {
				feasible = true
				gp.BestValue = e.BestValue
			}
			// Per-island archives overlap, so the union's size and volume
			// are not per-generation sums; the max over islands is the
			// tightest deterministic lower bound available without
			// replaying the archives. The final merged front below is
			// exact.
			gp.FrontSize = max(gp.FrontSize, e.FrontSize)
			gp.Hypervolume = max(gp.Hypervolume, e.Hypervolume)
		}
		out.Trajectory = append(out.Trajectory, gp)
	}
	mergeFronts(req, results, &out)
	return out
}

// mergeFronts unions pareto islands' fronts into the cluster-wide
// non-dominated set. The archive is insertion-order independent, so the
// merge is deterministic regardless of which node hosted which island.
func mergeFronts(req Request, results []IslandResult, out *Result) {
	if len(req.Objectives) < 2 {
		return
	}
	arch := pareto.NewArchive(req.Objectives)
	for i := range results {
		for _, fp := range results[i].Front {
			arch.Add(fp.Point, fp.Values)
		}
		for d, v := range results[i].Nadir {
			if d >= len(req.Objectives) {
				break
			}
			if len(out.Nadir) == 0 {
				out.Nadir = append([]float64(nil), results[i].Nadir...)
				break
			}
			// The merged nadir is the per-objective worst feasible value
			// across islands: replace when the current merged value beats
			// (is Better than) the candidate.
			if req.Objectives[d].Better(out.Nadir[d], v) {
				out.Nadir[d] = v
			}
		}
	}
	out.Front = arch.Members()
	if len(req.Objectives) == 2 && len(out.Front) > 0 && len(out.Nadir) == 2 {
		ref := pareto.RefFromNadir([2]metrics.Objective{req.Objectives[0], req.Objectives[1]},
			[2]float64{out.Nadir[0], out.Nadir[1]})
		if hv, err := pareto.Hypervolume2D([2]metrics.Objective{req.Objectives[0], req.Objectives[1]}, out.Front, ref); err == nil {
			out.Hypervolume = hv
		}
	}
}
