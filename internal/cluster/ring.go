// Package cluster turns N nautserve nodes into one search service: a
// consistent-hash ring shards the evaluation cache across nodes (each
// design point is evaluated once per *cluster*), a coordinator fans a
// session out as an island-model GA over the membership, and a small
// length-prefixed RPC carries cache lookups and migrants between peers.
//
// Every byte between nodes travels through a faultnet.Network, so the
// whole cluster runs in-process on faultnet.Memory for tests and under
// faultnet.Faulty for partition soaks - and every degradation path
// (unreachable peer, partitioned exchange) falls back to local work,
// never to a wrong result: evaluators are deterministic, so a remote
// answer and the local evaluation it replaces are byte-identical, and
// routing changes only move *where* a point is characterized.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the per-node virtual-node count. 64 points per node
// keeps the expected per-node key share within a few percent of uniform
// (the ring property test pins 15%) at negligible table cost.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over node IDs. Keys are the
// 64-bit genome hashes the cache shards already dispatch on
// (param.Space.Hash64); each node projects Vnodes points onto the hash
// circle and a key belongs to the first point at or after it.
//
// Immutability is what makes membership changes auditable: join/leave
// builds a new Ring, and the property test pins that the rebuild moves
// only ~1/N of the key space.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash, ties broken by node ID
	nodes  []string    // sorted member IDs
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given members with vnodes virtual nodes
// each (DefaultVnodes when <= 0). Duplicate and empty IDs are rejected;
// an empty membership yields a ring that owns nothing.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	nodes := append([]string(nil), members...)
	sort.Strings(nodes)
	for i, id := range nodes {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if i > 0 && nodes[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
	}
	r := &Ring{vnodes: vnodes, nodes: nodes}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for _, id := range nodes {
		h := stringHash(id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix64(h ^ mix64(uint64(v)+1)), node: id})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Owner returns the node owning key h, or "" on an empty ring.
func (r *Ring) Owner(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	// First vnode strictly after h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the sorted membership. The caller must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.nodes) }

// mix64 is the SplitMix64 finalizer - the same full-avalanche mix the
// genome hashes and the faultnet scenario streams use, so vnode points
// spread uniformly regardless of how similar node IDs look.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stringHash is an FNV-1a over the node ID, finalized by mix64.
func stringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}
