package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nautilus/internal/dataset"
	"nautilus/internal/faultnet"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/telemetry"
)

// Registry metric names the cluster maintains (exposed on /metrics as
// nautilus_cluster_*). They are registered only when a node is given a
// Registry, so a solo server's metric families are unchanged.
const (
	// MetricFallbacks counts remote cache lookups that degraded to local
	// evaluation (peer unreachable, partitioned, or declining) - the
	// partition-degradation signal the faultnet tests pin.
	MetricFallbacks = "cluster.fallbacks"
	// MetricRemoteHits counts design points resolved by a peer instead of
	// a local evaluation - cluster-wide cache dedup at work.
	MetricRemoteHits = "cluster.remote_hits"
	// MetricServed counts opEval requests this node answered for peers.
	MetricServed = "cluster.served"
	// MetricMigrantsSent / MetricMigrantsRecv count island-model migrants
	// shipped and adopted.
	MetricMigrantsSent = "cluster.migrants_sent"
	MetricMigrantsRecv = "cluster.migrants_recv"
	// MetricMigrationTimeouts counts exchanges that gave up waiting (the
	// island continued unaided).
	MetricMigrationTimeouts = "cluster.migration_timeouts"
)

// ErrClosed is returned by cluster calls after Close.
var ErrClosed = errors.New("cluster: node closed")

// Options configures a Node.
type Options struct {
	// ID is this node's stable identity on the ring. Required.
	ID string
	// Addr is the RPC listen address (":0"-style ephemeral ports work on
	// every faultnet.Network). Required.
	Addr string
	// Peers maps peer node IDs to their RPC dial addresses. The ring
	// membership is Peers' keys plus ID; a self entry is ignored.
	Peers map[string]string
	// Network is the transport every listen and dial goes through
	// (default faultnet.System - real TCP).
	Network faultnet.Network
	// Vnodes is the per-node virtual-node count (default DefaultVnodes).
	Vnodes int
	// Registry, when set, receives the cluster.* counters.
	Registry *telemetry.Registry
	// Caches resolves the shared evaluation cache (and its space) for a
	// catalog IP - the cache opEval requests are served from. Required
	// for a node to answer peer lookups; a node without it declines them.
	Caches func(ip string) (*dataset.Cache, *param.Space, bool)
	// RunIsland runs one island of a cluster session on this node. A
	// node without it rejects opIsland requests.
	RunIsland func(ctx context.Context, spec IslandSpec) (IslandResult, error)
	// RPCTimeout bounds one peer cache/migrate round trip (default 2s).
	// Island RPCs are bounded by their context instead - islands run for
	// whole searches.
	RPCTimeout time.Duration
	// MigrationTimeout bounds how long an island waits for immigrants at
	// an exchange boundary before continuing unaided (default 5s).
	MigrationTimeout time.Duration
}

// Node is one cluster member: it serves the length-prefixed RPC (cache
// lookups, migrant deposits, island runs) on its listener, routes its own
// cache misses to ring owners through peer clients, and hosts the migrant
// mailboxes for islands running on it. All transport goes through the
// configured faultnet.Network.
type Node struct {
	opts Options
	ring *Ring
	ln   net.Listener

	// baseCtx cancels server-side work on Close.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	closed   bool
	peers    map[string]*peerClient
	conns    map[net.Conn]struct{}
	mail     map[mailKey]chan []ga.Migrant
	sessions map[string]int // active local islands per session
	wg       sync.WaitGroup

	fallbacks  *telemetry.Counter
	remoteHits *telemetry.Counter
	served     *telemetry.Counter
	sent       *telemetry.Counter
	recv       *telemetry.Counter
	timeouts   *telemetry.Counter
}

type mailKey struct {
	session string
	gen     int
	island  int
}

// peerClient is one persistent RPC connection, serialized by its mutex
// and redialed lazily after any failure.
type peerClient struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewNode builds the ring, binds the RPC listener, and starts accepting.
func NewNode(opts Options) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: node id required")
	}
	if opts.Addr == "" {
		return nil, fmt.Errorf("cluster: listen address required")
	}
	if opts.Network == nil {
		opts.Network = faultnet.System{}
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 2 * time.Second
	}
	if opts.MigrationTimeout <= 0 {
		opts.MigrationTimeout = 5 * time.Second
	}
	members := make([]string, 0, len(opts.Peers)+1)
	members = append(members, opts.ID)
	for id := range opts.Peers {
		if id != opts.ID {
			members = append(members, id)
		}
	}
	ring, err := NewRing(members, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	ln, err := opts.Network.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", opts.Addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		opts:     opts,
		ring:     ring,
		ln:       ln,
		baseCtx:  ctx,
		cancel:   cancel,
		peers:    make(map[string]*peerClient),
		conns:    make(map[net.Conn]struct{}),
		mail:     make(map[mailKey]chan []ga.Migrant),
		sessions: make(map[string]int),
	}
	if reg := opts.Registry; reg != nil {
		n.fallbacks = reg.Counter(MetricFallbacks)
		n.remoteHits = reg.Counter(MetricRemoteHits)
		n.served = reg.Counter(MetricServed)
		n.sent = reg.Counter(MetricMigrantsSent)
		n.recv = reg.Counter(MetricMigrantsRecv)
		n.timeouts = reg.Counter(MetricMigrationTimeouts)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns this node's ring identity.
func (n *Node) ID() string { return n.opts.ID }

// Addr returns the bound RPC address (resolving ":0" binds).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Ring returns the node's (immutable) membership ring.
func (n *Node) Ring() *Ring { return n.ring }

// Close stops the listener, severs every connection, and waits for the
// serving goroutines to drain. Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	peers := make([]*peerClient, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()

	n.cancel()
	err := n.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	n.wg.Wait()
	return err
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *telemetry.Counter, d int64) {
	if c != nil {
		c.Add(d)
	}
}

// acceptLoop serves inbound RPC connections until Close.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.conns[c] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(c)
	}
}

// serveConn answers frames on one connection until it errors or closes.
func (n *Node) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.mu.Lock()
		delete(n.conns, c)
		n.mu.Unlock()
	}()
	for {
		op, payload, err := readFrame(c)
		if err != nil {
			return
		}
		var status byte
		var body []byte
		switch op {
		case opEval:
			status, body = n.handleEval(payload)
		case opMigrate:
			status, body = n.handleMigrate(payload)
		case opIsland:
			status, body = n.handleIsland(payload)
		default:
			status, body = statusErr, []byte(fmt.Sprintf("unknown opcode 0x%02x", op))
		}
		if err := writeFrame(c, status, body); err != nil {
			return
		}
	}
}

// noForwardKey marks contexts of RPC-served evaluations: the remote tier
// declines under it, so an owner answers locally even when an
// inconsistent ring view (or a hash owned by a third node's vnode) would
// otherwise bounce the lookup onward.
type noForwardKey struct{}

// handleEval answers a peer's cache lookup: resolve the shared cache for
// the IP, verify the genome, and evaluate through the cache (hitting its
// memo or paying the local evaluator - this node owns the hash, so the
// cost lands here by design). Transient failures and unknown IPs decline
// with statusMiss so the asker falls back to local evaluation instead of
// memoizing a transport artifact.
func (n *Node) handleEval(payload []byte) (byte, []byte) {
	ip, hash, pt, err := decodeEvalRequest(payload)
	if err != nil {
		return statusErr, []byte(err.Error())
	}
	if n.opts.Caches == nil {
		return statusMiss, nil
	}
	cache, space, ok := n.opts.Caches(ip)
	if !ok || space.Len() != len(pt) {
		return statusMiss, nil
	}
	for i, v := range pt {
		if v < 0 || v >= space.Param(i).Card() {
			return statusMiss, nil
		}
	}
	if space.Hash64(pt) != hash {
		return statusMiss, nil
	}
	inc(n.served)
	ctx := context.WithValue(n.baseCtx, noForwardKey{}, true)
	m, err := cache.EvaluateHashedCtx(ctx, hash, pt)
	switch {
	case err == nil:
		return statusOK, encodeMetrics(m)
	case dataset.IsTransient(err):
		return statusMiss, nil
	default:
		return statusErr, []byte(err.Error())
	}
}

// RemoteFor returns the dataset.Remote tier that routes ip's cache misses
// to their ring owners. Attach it with cache.SetRemote; on any failure it
// declines (ok=false) and the cache evaluates locally.
func (n *Node) RemoteFor(ip string) dataset.Remote {
	return remoteTier{n: n, ip: ip}
}

type remoteTier struct {
	n  *Node
	ip string
}

// Lookup implements dataset.Remote over the ring: not-owned hashes go to
// their owner with one bounded RPC; everything that cannot be answered
// definitively degrades to ok=false (local evaluation), counted in
// cluster.fallbacks.
func (t remoteTier) Lookup(ctx context.Context, hash uint64, pt param.Point) (metrics.Metrics, error, bool) {
	n := t.n
	if ctx.Value(noForwardKey{}) != nil {
		return nil, nil, false
	}
	owner := n.ring.Owner(hash)
	if owner == "" || owner == n.opts.ID {
		return nil, nil, false
	}
	status, body, err := n.call(ctx, owner, opEval, encodeEvalRequest(t.ip, hash, pt))
	if err != nil {
		inc(n.fallbacks)
		return nil, nil, false
	}
	switch status {
	case statusOK:
		m, derr := decodeMetrics(body)
		if derr != nil {
			inc(n.fallbacks)
			return nil, nil, false
		}
		inc(n.remoteHits)
		return m, nil, true
	case statusErr:
		// A permanent evaluation error is a definitive answer: the point
		// is infeasible cluster-wide and memoizing it here is correct.
		inc(n.remoteHits)
		return nil, errors.New(string(body)), true
	default: // statusMiss
		inc(n.fallbacks)
		return nil, nil, false
	}
}

// call performs one bounded RPC round trip on the peer's persistent
// connection, redialing lazily and tearing the connection down on any
// failure so the next call starts clean.
func (n *Node) call(ctx context.Context, peerID string, op byte, payload []byte) (byte, []byte, error) {
	addr, ok := n.opts.Peers[peerID]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: unknown peer %q", peerID)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, nil, ErrClosed
	}
	p := n.peers[peerID]
	if p == nil {
		p = &peerClient{}
		n.peers[peerID] = p
	}
	n.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		dctx, cancel := context.WithTimeout(ctx, n.opts.RPCTimeout)
		c, err := n.opts.Network.DialContext(dctx, "tcp", addr)
		cancel()
		if err != nil {
			return 0, nil, err
		}
		p.conn = c
	}
	c := p.conn
	c.SetDeadline(time.Now().Add(n.opts.RPCTimeout))
	status, body, err := func() (byte, []byte, error) {
		if err := writeFrame(c, op, payload); err != nil {
			return 0, nil, err
		}
		return readFrame(c)
	}()
	c.SetDeadline(time.Time{})
	if err != nil {
		c.Close()
		p.conn = nil
		return 0, nil, err
	}
	return status, body, nil
}

// callIsland performs one island RPC on a fresh connection bounded by ctx
// alone - islands run for whole searches, far past RPCTimeout.
func (n *Node) callIsland(ctx context.Context, peerID string, payload []byte) (byte, []byte, error) {
	addr, ok := n.opts.Peers[peerID]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: unknown peer %q", peerID)
	}
	c, err := n.opts.Network.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	// The request frame must land promptly (a partitioned peer fails fast
	// so the caller can fall back); only the *result* may take a search's
	// worth of time.
	c.SetWriteDeadline(time.Now().Add(n.opts.RPCTimeout))
	if err := writeFrame(c, opIsland, payload); err != nil {
		return 0, nil, err
	}
	c.SetWriteDeadline(time.Time{})
	return readFrame(c)
}

// mailbox returns (creating on demand) the buffered channel migrants for
// (session, gen, island) are deposited into. Sender and receiver may
// arrive in either order.
func (n *Node) mailbox(k mailKey) chan []ga.Migrant {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := n.mail[k]
	if ch == nil {
		ch = make(chan []ga.Migrant, 1)
		n.mail[k] = ch
	}
	return ch
}

// deposit delivers migrants to a local mailbox without ever blocking: a
// second deposit for the same slot (impossible in a healthy run) is
// dropped rather than wedging an RPC handler.
func (n *Node) deposit(k mailKey, in []ga.Migrant) {
	select {
	case n.mailbox(k) <- in:
	default:
	}
}

// migrateMsg is the opMigrate JSON payload: migrants bound for one
// island's mailbox at one exchange boundary.
type migrateMsg struct {
	Session  string  `json:"session"`
	Gen      int     `json:"gen"`
	To       int     `json:"to"`
	Migrants [][]int `json:"migrants"`
}

// handleMigrate deposits a peer's migrants into the target island's
// local mailbox. Delivery is at-most-once and never blocks.
func (n *Node) handleMigrate(payload []byte) (byte, []byte) {
	var msg migrateMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return statusErr, []byte(err.Error())
	}
	in := make([]ga.Migrant, len(msg.Migrants))
	for i, g := range msg.Migrants {
		in[i] = ga.Migrant{Genome: param.Point(g)}
	}
	n.deposit(mailKey{session: msg.Session, gen: msg.Gen, island: msg.To}, in)
	return statusOK, nil
}

// handleIsland runs one island of a cluster session on this node.
func (n *Node) handleIsland(payload []byte) (byte, []byte) {
	var spec IslandSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return statusErr, []byte(err.Error())
	}
	if n.opts.RunIsland == nil {
		return statusErr, []byte("node cannot host islands")
	}
	n.beginIsland(spec.Session)
	defer n.endIsland(spec.Session)
	res, err := n.opts.RunIsland(n.baseCtx, spec)
	if err != nil {
		return statusErr, []byte(err.Error())
	}
	body, err := json.Marshal(res)
	if err != nil {
		return statusErr, []byte(err.Error())
	}
	return statusOK, body
}

// beginIsland/endIsland track live local islands per session; when the
// last one finishes, the session's leftover mailboxes (deposits whose
// receiver timed out or converged early) are purged.
func (n *Node) beginIsland(session string) {
	n.mu.Lock()
	n.sessions[session]++
	n.mu.Unlock()
}

func (n *Node) endIsland(session string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.sessions[session]--; n.sessions[session] <= 0 {
		delete(n.sessions, session)
		for k := range n.mail {
			if k.session == session {
				delete(n.mail, k)
			}
		}
	}
}

// exchangeFor builds the ga.MigrantExchange for one island of a cluster
// session over the ring topology: island i ships its emigrants to island
// (i+1) mod K and adopts whatever island (i-1+K) mod K shipped to it.
// The pairing depends only on (generation, topology) - and the island
// seeds only on the session seed - so the whole schedule is a pure
// function of (seed, generation, topology). Failed sends and expired
// receives degrade to an unaided generation, never a wrong one.
func (n *Node) exchangeFor(session string, island, islands int, members []string) ga.MigrantExchange {
	return func(ctx context.Context, gen int, out []ga.Migrant) ([]ga.Migrant, error) {
		if islands <= 1 {
			return nil, nil
		}
		to := (island + 1) % islands
		target := members[to%len(members)]
		if target == n.opts.ID {
			n.deposit(mailKey{session: session, gen: gen, island: to}, out)
			add(n.sent, int64(len(out)))
		} else {
			msg := migrateMsg{Session: session, Gen: gen, To: to, Migrants: make([][]int, len(out))}
			for i, m := range out {
				msg.Migrants[i] = m.Genome
			}
			payload, err := json.Marshal(msg)
			if err != nil {
				return nil, err
			}
			if status, _, err := n.call(ctx, target, opMigrate, payload); err != nil || status != statusOK {
				inc(n.timeouts)
			} else {
				add(n.sent, int64(len(out)))
			}
		}
		timer := time.NewTimer(n.opts.MigrationTimeout)
		defer timer.Stop()
		select {
		case in := <-n.mailbox(mailKey{session: session, gen: gen, island: island}):
			add(n.recv, int64(len(in)))
			return in, nil
		case <-timer.C:
			inc(n.timeouts)
			return nil, fmt.Errorf("cluster: island %d migration timeout at generation %d", island, gen)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.baseCtx.Done():
			return nil, ErrClosed
		}
	}
}
