package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// The wire protocol is a single tiny frame shape in both directions:
//
//	4-byte big-endian length | 1-byte opcode | payload
//
// where length covers opcode+payload. Requests carry op* opcodes,
// responses carry status* opcodes. Cache lookups (the hot path) use a
// fixed binary payload keyed on the packed-genome uint64 hash the shard
// tables already dispatch on; migrant and island traffic - control
// plane, a few frames per generation at most - rides JSON payloads.
const (
	opEval    byte = 0x01 // evaluate-or-lookup one design point
	opMigrate byte = 0x02 // deposit migrants for an island's mailbox
	opIsland  byte = 0x03 // run one island of a cluster session

	statusOK   byte = 0x80 // payload: op-specific success body
	statusErr  byte = 0x81 // payload: error string (permanent, memoizable for opEval)
	statusMiss byte = 0x82 // opEval only: owner cannot answer; caller resolves locally
)

// maxFrame bounds a frame's length word. Island results carry whole
// trajectories, so the cap is generous; anything larger is a protocol
// error, not a bigger buffer.
const maxFrame = 8 << 20

// writeFrame sends one frame.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("cluster: frame %d bytes exceeds cap", len(payload)+1)
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)+1))
	hdr[4] = op
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d outside [1, %d]", n, maxFrame)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// appendString appends a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// encodeEvalRequest builds an opEval payload: which shared space the
// point lives in (the catalog IP), its 64-bit genome hash, and the
// genome itself so the owner can verify and, on a miss, evaluate.
func encodeEvalRequest(ip string, hash uint64, pt param.Point) []byte {
	b := make([]byte, 0, 2+len(ip)+8+2+4*len(pt))
	b = appendString(b, ip)
	b = binary.BigEndian.AppendUint64(b, hash)
	b = binary.BigEndian.AppendUint16(b, uint16(len(pt)))
	for _, v := range pt {
		b = binary.BigEndian.AppendUint32(b, uint32(int32(v)))
	}
	return b
}

// decodeEvalRequest parses an opEval payload.
func decodeEvalRequest(b []byte) (ip string, hash uint64, pt param.Point, err error) {
	ip, b, err = takeString(b)
	if err != nil {
		return "", 0, nil, err
	}
	if len(b) < 10 {
		return "", 0, nil, fmt.Errorf("cluster: truncated eval request")
	}
	hash = binary.BigEndian.Uint64(b)
	n := int(binary.BigEndian.Uint16(b[8:]))
	b = b[10:]
	if len(b) != 4*n {
		return "", 0, nil, fmt.Errorf("cluster: eval request genome length mismatch")
	}
	pt = make(param.Point, n)
	for i := range pt {
		pt[i] = int(int32(binary.BigEndian.Uint32(b[4*i:])))
	}
	return ip, hash, pt, nil
}

// encodeMetrics builds a statusOK opEval body: u16 entry count, then
// u16-prefixed name + float64 bits per entry, in sorted-name order so
// the encoding is canonical.
func encodeMetrics(m metrics.Metrics) []byte {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sortStrings(names)
	b := binary.BigEndian.AppendUint16(nil, uint16(len(names)))
	for _, k := range names {
		b = appendString(b, k)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(m[k]))
	}
	return b
}

// decodeMetrics parses a statusOK opEval body.
func decodeMetrics(b []byte) (metrics.Metrics, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("cluster: truncated metrics")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	m := make(metrics.Metrics, n)
	for i := 0; i < n; i++ {
		var k string
		var err error
		k, b, err = takeString(b)
		if err != nil {
			return nil, err
		}
		if len(b) < 8 {
			return nil, fmt.Errorf("cluster: truncated metric value")
		}
		m[k] = math.Float64frombits(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing metric bytes", len(b))
	}
	return m, nil
}

// takeString consumes a u16-length-prefixed string.
func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("cluster: truncated string")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("cluster: string length %d past frame end", n)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// sortStrings is a tiny insertion sort; metric maps hold a handful of
// entries and this keeps the codec dependency-free.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
