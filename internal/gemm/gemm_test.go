package gemm

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/core"
	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

func baseDesign() Design {
	return Design{
		Rows: 8, Cols: 8, DataWidth: 16, AccExtra: 8,
		Dataflow: FlowWS, BufferKB: 4, DoubleBuf: true, PEPipe: 2,
	}
}

func TestSpaceShape(t *testing.T) {
	s := Space()
	if s.Len() != 8 {
		t.Fatalf("space has %d params, want 8", s.Len())
	}
	// 6*6*4*3*3*4*2*3 = 31,104
	if got := s.Cardinality(); got != 31104 {
		t.Fatalf("Cardinality = %d, want 31104", got)
	}
}

func TestFeasibility(t *testing.T) {
	d := baseDesign()
	if err := d.Feasible(); err != nil {
		t.Fatalf("8x8 should fit: %v", err)
	}
	d.Rows, d.Cols = 32, 32
	if err := d.Feasible(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("32x32 PEs should exceed the budget, got %v", err)
	}
	// Exactly at the budget is allowed.
	d.Rows, d.Cols = 32, 16
	if err := d.Feasible(); err != nil {
		t.Errorf("32x16=512 PEs should be exactly at budget: %v", err)
	}
}

func TestLUTsScaleWithArray(t *testing.T) {
	d := baseDesign()
	small := d.LUTs()
	d.Rows, d.Cols = 16, 16
	if d.LUTs() <= 3*small {
		t.Error("4x the PEs should cost much more than 3x the LUTs")
	}
	d = baseDesign()
	d.DataWidth = 32
	if d.LUTs() <= small {
		t.Error("wider operands should cost more")
	}
}

func TestBRAMBufferCrossover(t *testing.T) {
	d := baseDesign()
	d.BufferKB = 2
	if d.BRAMs() != 0 {
		t.Error("small buffers should use LUTRAM")
	}
	d.BufferKB = 16
	if d.BRAMs() == 0 {
		t.Error("large buffers should use BRAM")
	}
	d.DoubleBuf = true
	with := d.BRAMs()
	d.DoubleBuf = false
	if with <= d.BRAMs() {
		t.Error("double buffering should double BRAM copies")
	}
}

func TestPipeliningRaisesFmax(t *testing.T) {
	d := baseDesign()
	d.PEPipe = 1
	f1 := d.FmaxMHz()
	d.PEPipe = 3
	if d.FmaxMHz() <= f1 {
		t.Error("deeper PE pipeline should raise Fmax")
	}
}

func TestUtilizationModel(t *testing.T) {
	d := baseDesign()
	d.DoubleBuf = false
	lo := d.Utilization()
	d.DoubleBuf = true
	hi := d.Utilization()
	if hi <= lo {
		t.Error("double buffering should raise utilization")
	}
	if lo < 0.05 || hi > 1 {
		t.Errorf("utilization out of range: %v, %v", lo, hi)
	}
	// Bigger buffer helps a big array.
	d.Rows, d.Cols, d.BufferKB = 32, 16, 2
	small := d.Utilization()
	d.BufferKB = 16
	if d.Utilization() <= small {
		t.Error("larger buffers should raise utilization of big arrays")
	}
}

func TestCharacterizeDeterministicAndSane(t *testing.T) {
	s := Space()
	r := rand.New(rand.NewSource(4))
	seen := 0
	for seen < 40 {
		pt := s.Random(r)
		m, err := Evaluate(s, pt)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		m2, _ := Evaluate(s, pt)
		if m.String() != m2.String() {
			t.Fatal("non-deterministic characterization")
		}
		g, _ := m.Get(MetricGMACS)
		l, _ := m.Get(metrics.LUTs)
		f, _ := m.Get(metrics.FmaxMHz)
		if g <= 0 || l <= 0 || f <= 0 || f > 600 {
			t.Fatalf("implausible metrics: %s", m)
		}
		seen++
	}
}

func TestEvaluateRejectsMalformed(t *testing.T) {
	s := Space()
	if _, err := Evaluate(s, param.Point{0}); err == nil {
		t.Error("malformed point accepted")
	}
}

func TestExpertHintsAccelerateSearch(t *testing.T) {
	// The generality claim: the same Nautilus machinery speeds up a third,
	// independently built IP generator.
	s := Space()
	eval := func(pt param.Point) (metrics.Metrics, error) { return Evaluate(s, pt) }
	obj := metrics.MaximizeDerived("gmacs_per_lut", metrics.Ratio(MetricGMACS, metrics.LUTs))
	g, err := ExpertHints().Guidance(metrics.Maximize, map[string]float64{
		MetricEfficiency: 1,
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var baseBest, guidedBest float64
	var baseEvals, guidedEvals int
	const runs = 8
	for seed := int64(0); seed < runs; seed++ {
		req := core.SearchRequest{
			Space:     s,
			Objective: obj,
			Evaluate:  eval,
			Config:    ga.Config{Seed: seed, Generations: 40},
		}
		b, err := core.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		n, err := core.Search(context.Background(), req, core.WithGuidance(g))
		if err != nil {
			t.Fatal(err)
		}
		baseBest += b.BestValue
		guidedBest += n.BestValue
		baseEvals += b.DistinctEvals
		guidedEvals += n.DistinctEvals
	}
	// Guided must stay near baseline quality at a clearly lower cost (its
	// converged population revisits cached designs - the paper's "lines
	// stop earlier" effect).
	if guidedBest < baseBest*0.95 {
		t.Errorf("guided quality %v worse than baseline %v", guidedBest/runs, baseBest/runs)
	}
	if guidedEvals >= baseEvals {
		t.Errorf("guided spent %d evals vs baseline %d, want fewer", guidedEvals, baseEvals)
	}
}

// Property: every feasible point has finite positive metrics; infeasible
// points exactly match the structural predicate.
func TestQuickFeasibilityConsistent(t *testing.T) {
	s := Space()
	card := s.Cardinality()
	f := func(n uint64) bool {
		pt := s.PointAt(n % card)
		d := Decode(s, pt)
		_, err := Evaluate(s, pt)
		return errors.Is(err, ErrInfeasible) == (d.Rows*d.Cols > MaxPEs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: GMACs never exceed the physical peak rows*cols*fmax.
func TestQuickGMACSBounded(t *testing.T) {
	s := Space()
	card := s.Cardinality()
	f := func(n uint64) bool {
		pt := s.PointAt(n % card)
		m, err := Evaluate(s, pt)
		if err != nil {
			return true
		}
		d := Decode(s, pt)
		g, _ := m.Get(MetricGMACS)
		fx, _ := m.Get(metrics.FmaxMHz)
		peak := float64(d.Rows*d.Cols) * fx / 1000
		return g <= peak*(1+1e-9) && g > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationIndependentOfNoise(t *testing.T) {
	// Utilization is a deterministic dataflow property, not a synthesis
	// outcome: the metric must equal the model exactly.
	s := Space()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		pt := s.Random(r)
		m, err := Evaluate(s, pt)
		if err != nil {
			continue
		}
		d := Decode(s, pt)
		u, _ := m.Get(MetricUtilization)
		if math.Abs(u-d.Utilization()) > 1e-12 {
			t.Fatalf("utilization %v != model %v", u, d.Utilization())
		}
	}
}
