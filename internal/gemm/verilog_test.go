package gemm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVerilogValid(t *testing.T) {
	d := baseDesign()
	design, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Check(); err != nil {
		t.Fatalf("structural check failed: %v", err)
	}
	v := design.Verilog()
	for _, want := range []string{"module gemm_top", "module pe", "module edge_buffer", "module flow_controller"} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestVerilogPECount(t *testing.T) {
	d := baseDesign()
	d.Rows, d.Cols = 4, 8
	design, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	pes := 0
	for _, inst := range design.Modules[0].Instances() {
		if inst.Module == "pe" {
			pes++
		}
	}
	if pes != 32 {
		t.Errorf("instantiated %d PEs, want 32", pes)
	}
}

func TestVerilogDoubleBuffering(t *testing.T) {
	d := baseDesign()
	count := func(db bool) int {
		d.DoubleBuf = db
		design, err := d.Verilog()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, inst := range design.Modules[0].Instances() {
			if inst.Module == "edge_buffer" {
				n++
			}
		}
		return n
	}
	if single, double := count(false), count(true); double != 2*single {
		t.Errorf("double buffering: %d vs %d buffer instances, want 2x", double, single)
	}
}

func TestVerilogPipelineDepth(t *testing.T) {
	d := baseDesign()
	d.PEPipe = 3
	design, err := d.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	v := design.Verilog()
	if !strings.Contains(v, "prod_p2") {
		t.Error("3-stage PE should have two product pipeline ranks")
	}
	d.PEPipe = 1
	d1, _ := d.Verilog()
	if strings.Contains(d1.Verilog(), "prod_p1") {
		t.Error("1-stage PE should have no product pipeline")
	}
}

func TestVerilogInfeasibleRejected(t *testing.T) {
	d := baseDesign()
	d.Rows, d.Cols = 32, 32
	if _, err := d.Verilog(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible design emitted RTL: %v", err)
	}
}

// Property: every feasible point emits a valid design.
func TestQuickVerilogValid(t *testing.T) {
	s := Space()
	r := rand.New(rand.NewSource(8))
	f := func(_ uint8) bool {
		pt := s.Random(r)
		d := Decode(s, pt)
		design, err := d.Verilog()
		if d.Feasible() != nil {
			return err != nil
		}
		return err == nil && design.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
