package gemm

import (
	"fmt"
	"math"

	"nautilus/internal/rtl"
)

// Verilog emits synthesizable RTL for the accelerator configuration: the
// systolic PE array (one instance per processing element), edge operand
// feeders, the buffer subsystem, and the dataflow controller.
func (d Design) Verilog() (*rtl.Design, error) {
	if err := d.Feasible(); err != nil {
		return nil, err
	}
	out := &rtl.Design{Top: "gemm_top"}
	dw := d.DataWidth
	aw := d.accWidth()

	top := rtl.NewModule("gemm_top").SetComment(fmt.Sprintf(
		"systolic GEMM array: %dx%d PEs, %d-bit operands, %d-bit accumulators\n"+
			"dataflow=%s buffers=%dKB double_buffered=%t pe_pipeline=%d",
		d.Rows, d.Cols, dw, aw, d.Dataflow, d.BufferKB, d.DoubleBuf, d.PEPipe))
	top.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	top.AddPort(rtl.Input, "start", 1).AddPort(rtl.Output, "done", 1)
	for r := 0; r < d.Rows; r++ {
		top.AddPort(rtl.Input, fmt.Sprintf("a_in_%d", r), dw)
	}
	for c := 0; c < d.Cols; c++ {
		top.AddPort(rtl.Input, fmt.Sprintf("b_in_%d", c), dw)
		top.AddPort(rtl.Output, fmt.Sprintf("acc_out_%d", c), aw)
	}

	// Inter-PE wiring: a flows east, b flows south, accumulators flow
	// south (output-stationary drains at the bottom edge).
	for r := 0; r < d.Rows; r++ {
		for c := 0; c <= d.Cols; c++ {
			top.AddWire(fmt.Sprintf("a_%d_%d", r, c), dw)
		}
	}
	for r := 0; r <= d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			top.AddWire(fmt.Sprintf("b_%d_%d", r, c), dw)
			top.AddWire(fmt.Sprintf("s_%d_%d", r, c), aw)
		}
	}
	for r := 0; r < d.Rows; r++ {
		top.Assign(fmt.Sprintf("a_%d_0", r), fmt.Sprintf("a_in_%d", r))
	}
	for c := 0; c < d.Cols; c++ {
		top.Assign(fmt.Sprintf("b_0_%d", c), fmt.Sprintf("b_in_%d", c))
		top.Assign(fmt.Sprintf("s_0_%d", c), "0")
		top.Assign(fmt.Sprintf("acc_out_%d", c), fmt.Sprintf("s_%d_%d", d.Rows, c))
	}
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			top.Instantiate("pe", fmt.Sprintf("pe_%d_%d", r, c), nil, map[string]string{
				"clk":     "clk",
				"rst":     "rst",
				"a_in":    fmt.Sprintf("a_%d_%d", r, c),
				"a_out":   fmt.Sprintf("a_%d_%d", r, c+1),
				"b_in":    fmt.Sprintf("b_%d_%d", r, c),
				"b_out":   fmt.Sprintf("b_%d_%d", r+1, c),
				"sum_in":  fmt.Sprintf("s_%d_%d", r, c),
				"sum_out": fmt.Sprintf("s_%d_%d", r+1, c),
			})
		}
	}

	// Buffer subsystem and controller.
	nBufs := 2
	if d.DoubleBuf {
		nBufs = 4
	}
	for i := 0; i < nBufs; i++ {
		top.Instantiate("edge_buffer", fmt.Sprintf("buf_%d", i),
			map[string]string{"KBYTES": fmt.Sprint(d.BufferKB)},
			map[string]string{"clk": "clk", "rst": "rst"})
	}
	top.Instantiate("flow_controller", "ctl",
		map[string]string{"ROWS": fmt.Sprint(d.Rows), "COLS": fmt.Sprint(d.Cols)},
		map[string]string{"clk": "clk", "rst": "rst", "start": "start", "done": "done"})
	out.Modules = append(out.Modules, top)

	// Processing element.
	pe := rtl.NewModule("pe").SetComment(fmt.Sprintf(
		"MAC processing element, %d pipeline stage(s), %s dataflow", d.PEPipe, d.Dataflow))
	pe.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	pe.AddPort(rtl.Input, "a_in", dw).AddPort(rtl.Output, "a_out", dw)
	pe.AddPort(rtl.Input, "b_in", dw).AddPort(rtl.Output, "b_out", dw)
	pe.AddPort(rtl.Input, "sum_in", aw).AddPort(rtl.Output, "sum_out", aw)
	pe.AddReg("a_r", dw).AddReg("b_r", dw).AddReg("acc", aw)
	for s := 1; s < d.PEPipe; s++ {
		pe.AddReg(fmt.Sprintf("prod_p%d", s), aw)
	}
	body := []string{
		"a_r <= a_in;",
		"b_r <= b_in;",
	}
	switch d.PEPipe {
	case 1:
		body = append(body, "acc <= sum_in + $signed(a_in) * $signed(b_in);")
	default:
		body = append(body, "prod_p1 <= $signed(a_in) * $signed(b_in);")
		for s := 2; s < d.PEPipe; s++ {
			body = append(body, fmt.Sprintf("prod_p%d <= prod_p%d;", s, s-1))
		}
		body = append(body, fmt.Sprintf("acc <= sum_in + prod_p%d;", d.PEPipe-1))
	}
	pe.Always("posedge clk", body...)
	pe.Assign("a_out", "a_r")
	pe.Assign("b_out", "b_r")
	pe.Assign("sum_out", "acc")
	out.Modules = append(out.Modules, pe)

	// Edge buffer (technology per size).
	buf := rtl.NewModule("edge_buffer").SetComment(bufComment(d))
	buf.AddParam("KBYTES", fmt.Sprint(d.BufferKB))
	buf.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	depth := d.BufferKB * 1024 * 8 / dw
	buf.AddMemory("mem", dw, minInt(depth, 4096))
	buf.AddReg("wr_ptr", bitsFor(minInt(depth, 4096))).AddReg("rd_ptr", bitsFor(minInt(depth, 4096)))
	buf.Always("posedge clk",
		"if (rst) begin wr_ptr <= 0; rd_ptr <= 0; end",
		"else begin wr_ptr <= wr_ptr + 1; rd_ptr <= rd_ptr + 1; end")
	out.Modules = append(out.Modules, buf)

	// Dataflow controller.
	ctl := rtl.NewModule("flow_controller").SetComment(d.Dataflow + " dataflow sequencing")
	ctl.AddParam("ROWS", fmt.Sprint(d.Rows)).AddParam("COLS", fmt.Sprint(d.Cols))
	ctl.AddPort(rtl.Input, "clk", 1).AddPort(rtl.Input, "rst", 1)
	ctl.AddPort(rtl.Input, "start", 1).AddPort(rtl.Output, "done", 1)
	ctl.AddReg("cycle", 16).AddReg("done_r", 1)
	ctl.Always("posedge clk",
		"if (rst || start) begin cycle <= 0; done_r <= 0; end",
		"else begin",
		"  cycle <= cycle + 1;",
		"  if (cycle == ROWS + COLS + 2) done_r <= 1;",
		"end")
	ctl.Assign("done", "done_r")
	out.Modules = append(out.Modules, ctl)

	if err := out.Check(); err != nil {
		return nil, err
	}
	return out, nil
}

func bufComment(d Design) string {
	if d.BufferKB <= 4 {
		return "LUTRAM edge operand buffer"
	}
	return "BRAM edge operand buffer"
}

func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n + 1))))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
