// Package gemm implements a systolic matrix-multiply accelerator IP
// generator - a third, independently-built generator demonstrating that
// the Nautilus machinery is IP-agnostic infrastructure (the paper:
// "the goal of Nautilus is to provide infrastructural support for
// different classes of hints; the exact instances are specific to the
// given IP generator").
//
// The generator exposes an 8-parameter space of processing-element arrays
// with configurable dataflow, numeric precision, buffering, and clocking
// strategy, characterized against the same Virtex-6 synthesis substrate as
// the NoC and FFT generators.
package gemm

import (
	"errors"
	"fmt"
	"math"

	"nautilus/internal/core"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
	"nautilus/internal/synth"
)

// Parameter names.
const (
	ParamRows      = "rows"       // PE array rows
	ParamCols      = "cols"       // PE array columns
	ParamDataWidth = "data_width" // operand width in bits
	ParamAccWidth  = "acc_extra"  // extra accumulator guard bits
	ParamDataflow  = "dataflow"   // which operand stays resident in the PEs
	ParamBufferKB  = "buffer_kb"  // on-chip operand buffer per matrix edge
	ParamDoubleBuf = "double_buf" // overlap loads with compute
	ParamPEPipe    = "pe_pipe"    // pipeline stages inside each PE MAC
)

// Dataflows, ordered by control cost (weight-stationary simplest).
const (
	FlowWS = "ws" // weight stationary
	FlowOS = "os" // output stationary
	FlowRS = "rs" // row stationary
)

// MaxPEs bounds the array size the device budget admits (the largest
// row/column combinations exceed it, so the space has infeasible regions
// like the other generators').
const MaxPEs = 512

// ErrInfeasible marks configurations exceeding the device budget.
var ErrInfeasible = errors.New("gemm: infeasible configuration")

// Metric names specific to this IP.
const (
	// MetricGMACS is sustained compute throughput in giga-MACs/second.
	MetricGMACS = "gmacs"
	// MetricUtilization is the fraction of peak MAC throughput sustained.
	MetricUtilization = "utilization"
	// MetricEfficiency is the composite GMACs-per-LUT metric name used for
	// hint compilation of efficiency queries.
	MetricEfficiency = "gmacs_per_lut"
)

// Space returns the generator's design space: 8 parameters,
// 6*6*4*3*3*4*2*3 = 31,104 points.
func Space() *param.Space {
	return param.MustSpace(
		param.Levels(ParamRows, 2, 4, 8, 12, 16, 32),
		param.Levels(ParamCols, 2, 4, 8, 12, 16, 32),
		param.Levels(ParamDataWidth, 8, 16, 24, 32),
		param.Levels(ParamAccWidth, 0, 8, 16),
		param.Choice(ParamDataflow, FlowWS, FlowOS, FlowRS),
		param.Pow2(ParamBufferKB, 1, 4), // 2..16 KB
		param.Flag(ParamDoubleBuf),
		param.Int(ParamPEPipe, 1, 3, 1),
	)
}

// Design is a decoded accelerator configuration.
type Design struct {
	Rows, Cols int
	DataWidth  int
	AccExtra   int
	Dataflow   string
	BufferKB   int
	DoubleBuf  bool
	PEPipe     int
}

// Decode extracts a Design from a point of Space.
func Decode(s *param.Space, pt param.Point) Design {
	return Design{
		Rows:      s.Int(pt, ParamRows),
		Cols:      s.Int(pt, ParamCols),
		DataWidth: s.Int(pt, ParamDataWidth),
		AccExtra:  s.Int(pt, ParamAccWidth),
		Dataflow:  s.String(pt, ParamDataflow),
		BufferKB:  s.Int(pt, ParamBufferKB),
		DoubleBuf: s.Bool(pt, ParamDoubleBuf),
		PEPipe:    s.Int(pt, ParamPEPipe),
	}
}

// String renders the configuration compactly.
func (d Design) String() string {
	return fmt.Sprintf("gemm{%dx%d dw=%d acc=+%d flow=%s buf=%dKB dbuf=%t pipe=%d}",
		d.Rows, d.Cols, d.DataWidth, d.AccExtra, d.Dataflow, d.BufferKB, d.DoubleBuf, d.PEPipe)
}

// Feasible reports whether the array fits the device budget.
func (d Design) Feasible() error {
	if d.Rows*d.Cols > MaxPEs {
		return fmt.Errorf("%w: %dx%d PEs exceed budget %d", ErrInfeasible, d.Rows, d.Cols, MaxPEs)
	}
	return nil
}

const noiseFrac = 0.03

// accWidth is the full accumulator width.
func (d Design) accWidth() int { return 2*d.DataWidth + d.AccExtra }

// LUTs estimates FPGA LUT usage (before noise).
func (d Design) LUTs() float64 {
	pes := float64(d.Rows * d.Cols)
	mac := synth.MultiplierLUTs(d.DataWidth)*0.5 + synth.AdderLUTs(d.accWidth())
	peRegs := synth.RegisterLUTs(d.DataWidth*2+d.accWidth()) * float64(d.PEPipe)
	var peCtl float64
	switch d.Dataflow {
	case FlowWS:
		peCtl = 4
	case FlowOS:
		peCtl = 9 // output draining muxes
	case FlowRS:
		peCtl = 14 // row rotation and operand steering
	}
	datapath := pes * (mac + peRegs + peCtl)

	bufBits := float64(d.BufferKB) * 1024 * 8
	copies := 2.0 // A and B edges
	if d.DoubleBuf {
		copies *= 2
	}
	// Edge buffers live in LUTRAM below 4KB, BRAM above (address logic only).
	var buffers float64
	if d.BufferKB <= 4 {
		buffers = copies * bufBits / synth.LUTRAMBits * 1.1
	} else {
		buffers = copies * 60
	}

	edgeFeeds := float64(d.Rows+d.Cols) * synth.RegisterLUTs(d.DataWidth)
	control := 150 + 6*float64(d.Rows+d.Cols)
	if d.Dataflow == FlowRS {
		control += 120
	}
	return datapath + buffers + edgeFeeds + control
}

// BRAMs estimates block-RAM usage (large edge buffers only).
func (d Design) BRAMs() int {
	if d.BufferKB <= 4 {
		return 0
	}
	copies := 2
	if d.DoubleBuf {
		copies = 4
	}
	return copies * synth.BRAMsFor(d.BufferKB*1024*8, d.DataWidth*8)
}

// FmaxMHz estimates the maximum clock frequency (before noise).
func (d Design) FmaxMHz() float64 {
	dev := synth.Virtex6LX760
	// MAC critical path split across PE pipeline stages.
	macDepth := 1.0 + 0.5*math.Log2(float64(d.DataWidth)) + 0.3*math.Log2(float64(d.accWidth()))
	perStage := macDepth/float64(d.PEPipe)*(1+0.1*float64(d.PEPipe-1)) + 0.8
	// Long edge broadcast nets slow big arrays.
	fanout := 0.05 * math.Log2(float64(d.Rows*d.Cols))
	congestion := dev.Congestion(d.LUTs(), d.DataWidth) + fanout
	return dev.Fmax(perStage, congestion)
}

// Utilization estimates the fraction of peak MAC throughput the array
// sustains: memory stalls unless double-buffered, and dataflow/buffer
// sizing determine how often operand reloads idle the array.
func (d Design) Utilization() float64 {
	util := 0.55
	if d.DoubleBuf {
		util = 0.92
	}
	// Bigger buffers amortize reload overhead, with diminishing returns;
	// the knee scales with array size (bigger arrays eat operands faster).
	need := float64(d.Rows*d.Cols) * float64(d.DataWidth) / 8 / 1024 // KB per wavefront
	ratio := float64(d.BufferKB) / math.Max(0.25, need)
	util *= clamp(0.55+0.2*math.Log2(1+ratio), 0.5, 1.0)
	switch d.Dataflow {
	case FlowOS:
		util *= 0.97 // drain bubbles
	case FlowRS:
		util *= 1.02 // better reuse
	}
	return clamp(util, 0.05, 1.0)
}

// Characterize returns the synthesis metrics for the design, with
// deterministic CAD noise and cross-parameter interaction terms.
func (d Design) Characterize() (metrics.Metrics, error) {
	if err := d.Feasible(); err != nil {
		return nil, err
	}
	key := d.String()
	epi := synth.Noise(fmt.Sprintf("g1/%d/%s", d.DataWidth, d.Dataflow), 0.08) *
		synth.Noise(fmt.Sprintf("g2/%d/%d", d.Rows, d.Cols), 0.08)
	luts := math.Round(d.LUTs() * epi * synth.Noise(key+"/luts", noiseFrac))
	fmax := d.FmaxMHz() * epi * synth.Noise(key+"/fmax", noiseFrac)
	util := d.Utilization()
	gmacs := float64(d.Rows*d.Cols) * fmax * util / 1000
	return metrics.Metrics{
		metrics.LUTs:      luts,
		metrics.BRAMs:     float64(d.BRAMs()),
		metrics.FmaxMHz:   fmax,
		MetricGMACS:       gmacs,
		MetricUtilization: util,
	}, nil
}

// Evaluate characterizes point pt of Space(); the evaluator handed to the
// search engines.
func Evaluate(s *param.Space, pt param.Point) (metrics.Metrics, error) {
	if err := s.Validate(pt); err != nil {
		return nil, err
	}
	return Decode(s, pt).Characterize()
}

// ExpertHints returns the IP author's hint library for the accelerator.
func ExpertHints() *core.Library {
	lib := core.NewLibrary(Space())

	perf := lib.Metric(MetricGMACS)
	perf.SetImportance(ParamRows, 90, 0.04).SetBias(ParamRows, 0.9)
	perf.SetImportance(ParamCols, 90, 0.04).SetBias(ParamCols, 0.9)
	perf.SetImportance(ParamDoubleBuf, 70, 0).SetTargetChoice(ParamDoubleBuf, "on")
	perf.SetImportance(ParamPEPipe, 50, 0.05).SetBias(ParamPEPipe, 0.7)
	perf.SetImportance(ParamDataWidth, 40, 0).SetBias(ParamDataWidth, -0.5)
	perf.SetImportance(ParamBufferKB, 35, 0.05).SetBias(ParamBufferKB, 0.5)

	area := lib.Metric(metrics.LUTs)
	area.SetImportance(ParamRows, 85, 0).SetBias(ParamRows, 0.9)
	area.SetImportance(ParamCols, 85, 0).SetBias(ParamCols, 0.9)
	area.SetImportance(ParamDataWidth, 75, 0).SetBias(ParamDataWidth, 0.85)
	area.SetImportance(ParamAccWidth, 35, 0.05).SetBias(ParamAccWidth, 0.4)
	area.SetOrder(ParamDataflow, FlowWS, FlowOS, FlowRS)
	area.SetImportance(ParamDataflow, 25, 0.05).SetBias(ParamDataflow, 0.3)

	fmax := lib.Metric(metrics.FmaxMHz)
	fmax.SetImportance(ParamPEPipe, 80, 0).SetBias(ParamPEPipe, 0.8)
	fmax.SetImportance(ParamDataWidth, 60, 0).SetBias(ParamDataWidth, -0.7)
	fmax.SetImportance(ParamAccWidth, 40, 0.05).SetBias(ParamAccWidth, -0.4)
	fmax.SetImportance(ParamRows, 30, 0.05).SetBias(ParamRows, -0.3)
	fmax.SetImportance(ParamCols, 30, 0.05).SetBias(ParamCols, -0.3)

	// Compute efficiency (GMACs per LUT): a composite metric users ask
	// for, hinted directly because per-metric trends cancel on it (bigger
	// arrays raise both throughput and area). The author knows efficiency
	// peaks at mid-size arrays with narrow operands, double-buffered and
	// deeply pipelined.
	eff := lib.Metric(MetricEfficiency)
	eff.SetImportance(ParamRows, 85, 0.03).SetTarget(ParamRows, 16)
	eff.SetImportance(ParamCols, 85, 0.03).SetTarget(ParamCols, 16)
	eff.SetImportance(ParamDataWidth, 80, 0.03).SetTarget(ParamDataWidth, 8)
	eff.SetImportance(ParamDoubleBuf, 70, 0).SetTargetChoice(ParamDoubleBuf, "on")
	eff.SetImportance(ParamPEPipe, 50, 0.05).SetBias(ParamPEPipe, 0.7)
	eff.SetImportance(ParamAccWidth, 40, 0.05).SetBias(ParamAccWidth, -0.5)
	eff.SetImportance(ParamBufferKB, 45, 0.05).SetBias(ParamBufferKB, 0.6)

	return lib
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
