package hintcal

import (
	"errors"
	"math"
	"testing"

	"nautilus/internal/ga"
	"nautilus/internal/metrics"
	"nautilus/internal/param"
)

// calSpace: "cost" rises steeply with x, mildly with y, is flat in z, and
// depends on the categorical c as a < b < c means.
func calSpace() (*param.Space, func(param.Point) (metrics.Metrics, error)) {
	s := param.MustSpace(
		param.Int("x", 0, 9, 1),
		param.Int("y", 0, 9, 1),
		param.Int("z", 0, 9, 1),
		param.Choice("c", "beta", "alpha", "gamma"),
	)
	eval := func(pt param.Point) (metrics.Metrics, error) {
		x, y := float64(pt[0]), float64(pt[1])
		catCost := map[string]float64{"alpha": 0, "beta": 30, "gamma": 60}[s.String(pt, "c")]
		return metrics.Metrics{"cost": 5 + 20*x + 2*y + catCost}, nil
	}
	return s, eval
}

func TestEstimateRecoversStructure(t *testing.T) {
	s, eval := calSpace()
	lib, spent, err := Estimate(s, eval, []string{"cost"}, Options{Budget: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if spent > 150 {
		t.Errorf("spent %d evaluations, want near budget 120", spent)
	}
	g, err := lib.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	if err != nil {
		t.Fatal(err)
	}
	xi, yi, zi, ci := s.IndexOf("x"), s.IndexOf("y"), s.IndexOf("z"), s.IndexOf("c")

	// Minimizing a metric that rises with x: oriented bias must be negative
	// and strong.
	if b := g.Bias(xi); b > -0.5 {
		t.Errorf("x oriented bias = %v, want strongly negative", b)
	}
	if b := g.Bias(yi); b > -0.3 {
		t.Errorf("y oriented bias = %v, want negative", b)
	}
	// Flat parameter: no (or tiny) bias.
	if b := g.Bias(zi); math.Abs(b) > 0.3 {
		t.Errorf("z oriented bias = %v, want ~0", b)
	}
	// Importance ordering: x should dominate y and z.
	if g.ImportanceAt(xi, 0) <= g.ImportanceAt(yi, 0) {
		t.Errorf("importance x=%v <= y=%v", g.ImportanceAt(xi, 0), g.ImportanceAt(yi, 0))
	}
	if g.ImportanceAt(xi, 0) <= g.ImportanceAt(zi, 0) {
		t.Errorf("importance x=%v <= z=%v", g.ImportanceAt(xi, 0), g.ImportanceAt(zi, 0))
	}
	// Categorical: an induced ordering with a bias should exist.
	if b := g.Bias(ci); b == 0 {
		t.Error("categorical parameter got no induced directional hint")
	}
}

func TestEstimatedHintsAccelerateSearch(t *testing.T) {
	// End-to-end non-expert path: calibrate hints from a small sample, then
	// verify the guided GA reaches quality faster than the baseline.
	s, eval := calSpace()
	obj := metrics.MinimizeMetric("cost")
	lib, _, err := Estimate(s, eval, []string{"cost"}, Options{Budget: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := lib.GuidanceForObjective(obj, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var baseTot, guidedTot int
	for seed := int64(0); seed < 10; seed++ {
		cfg := ga.Config{Seed: seed, Generations: 30}
		be, _ := ga.New(s, obj, eval, cfg, nil)
		ge, _ := ga.New(s, obj, eval, cfg, g)
		b, n := be.Run(), ge.Run()
		// Target: within 10 of optimum 5.
		if e := b.EvalsToReach(obj, 15); e >= 0 {
			baseTot += e
		} else {
			baseTot += 2 * b.DistinctEvals
		}
		if e := n.EvalsToReach(obj, 15); e >= 0 {
			guidedTot += e
		} else {
			guidedTot += 2 * n.DistinctEvals
		}
	}
	if guidedTot >= baseTot {
		t.Errorf("calibrated hints did not accelerate: guided %d vs baseline %d", guidedTot, baseTot)
	}
}

func TestEstimateHandlesInfeasibleRegions(t *testing.T) {
	s, eval := calSpace()
	spiky := func(pt param.Point) (metrics.Metrics, error) {
		if pt[0] == 5 {
			return nil, errors.New("infeasible slice")
		}
		return eval(pt)
	}
	lib, _, err := Estimate(s, spiky, []string{"cost"}, Options{Budget: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lib.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	if b := g.Bias(s.IndexOf("x")); b > -0.4 {
		t.Errorf("bias under infeasibility = %v, want negative", b)
	}
}

func TestEstimateRejectsNoMetrics(t *testing.T) {
	s, eval := calSpace()
	if _, _, err := Estimate(s, eval, nil, Options{}); err == nil {
		t.Error("expected error with no metrics")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	s, eval := calSpace()
	libA, spentA, _ := Estimate(s, eval, []string{"cost"}, Options{Budget: 100, Seed: 9})
	libB, spentB, _ := Estimate(s, eval, []string{"cost"}, Options{Budget: 100, Seed: 9})
	if spentA != spentB {
		t.Fatal("nondeterministic spend")
	}
	ga1, _ := libA.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	gb1, _ := libB.GuidanceForObjective(metrics.MinimizeMetric("cost"), 1)
	for i := 0; i < s.Len(); i++ {
		if ga1.Bias(i) != gb1.Bias(i) || ga1.ImportanceAt(i, 0) != gb1.ImportanceAt(i, 0) {
			t.Fatalf("param %d hints differ between identical runs", i)
		}
	}
}

func TestRankCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{10, 20, 30, 40, 50}
	down := []float64{50, 40, 30, 20, 10}
	if c := rankCorrelation(xs, up); math.Abs(c-1) > 1e-9 {
		t.Errorf("perfect positive correlation = %v", c)
	}
	if c := rankCorrelation(xs, down); math.Abs(c+1) > 1e-9 {
		t.Errorf("perfect negative correlation = %v", c)
	}
	flat := []float64{7, 7, 7, 7, 7}
	if c := rankCorrelation(xs, flat); c != 0 {
		t.Errorf("flat correlation = %v, want 0", c)
	}
	if c := rankCorrelation(xs[:2], up[:2]); math.Abs(c-1) > 1e-9 {
		t.Errorf("two-point correlation = %v, want sign +1", c)
	}
	if c := rankCorrelation(xs[:1], up[:1]); c != 0 {
		t.Errorf("one-point correlation = %v, want 0", c)
	}
	// Monotone but nonlinear: Spearman should still be 1.
	exp := []float64{1, 4, 9, 100, 10000}
	if c := rankCorrelation(xs, exp); math.Abs(c-1) > 1e-9 {
		t.Errorf("monotone nonlinear correlation = %v, want 1", c)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{3, 1, 3, 2})
	// sorted: 1(r0), 2(r1), 3,3 (ranks 2,3 averaged to 2.5)
	want := []float64{2.5, 0, 2.5, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRelativeSpan(t *testing.T) {
	if s := relativeSpan([]float64{10, 20, 30}); math.Abs(s-1) > 1e-9 {
		t.Errorf("relativeSpan = %v, want 1", s)
	}
	if s := relativeSpan(nil); s != 0 {
		t.Errorf("relativeSpan(nil) = %v", s)
	}
	if s := relativeSpan([]float64{-5, 5}); s != 0 {
		t.Errorf("zero-mean span = %v, want 0 (guarded)", s)
	}
}
