// Package hintcal estimates Nautilus hints empirically, implementing the
// paper's non-expert path: "an IP user could try sweeping each IP parameter
// independently and then observe how the various metrics of interest
// respond to estimate approximate hint values" (Section 3). The paper's NoC
// hints were produced exactly this way, from roughly 80 synthesized designs
// (less than 0.3% of the design space).
//
// For each parameter, the calibrator sweeps the parameter's values around a
// few random base configurations, evaluates each variant, and derives:
//
//   - bias: the average rank correlation between the parameter's axis and
//     the metric across sweeps;
//   - importance: the parameter's relative share of observed metric
//     variation, scaled to the hint range 1..100;
//   - ordering: for unordered categorical parameters, the value order
//     induced by mean metric response (installed as an ordering hint so a
//     bias can then apply).
package hintcal

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nautilus/internal/core"
	"nautilus/internal/dataset"
	"nautilus/internal/param"
)

// Options configures hint estimation.
type Options struct {
	// Budget is the approximate number of distinct design evaluations to
	// spend across all parameters (default 80, matching the paper's NoC
	// calibration).
	Budget int
	// Seed drives base-point selection.
	Seed int64
	// MinBias suppresses correlations weaker than this magnitude (noise);
	// default 0.15.
	MinBias float64
	// Decay is the importance-decay rate attached to every estimated
	// importance hint (default 0.04). Estimated importances are noisy, so
	// letting them relax toward neutral keeps late-stage fine-tuning able
	// to touch the parameters the sample undervalued.
	Decay float64
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 80
	}
	if o.MinBias == 0 {
		o.MinBias = 0.15
	}
	if o.Decay == 0 {
		o.Decay = 0.04
	}
	return o
}

// Estimate sweeps the space through eval and returns a hint library for the
// named metrics, along with the number of distinct evaluations spent.
func Estimate(space *param.Space, eval dataset.Evaluator, metricNames []string, opts Options) (*core.Library, int, error) {
	opts = opts.withDefaults()
	if len(metricNames) == 0 {
		return nil, 0, fmt.Errorf("hintcal: no metrics requested")
	}
	cache := dataset.NewCache(space, eval)
	r := rand.New(rand.NewSource(opts.Seed))

	// Cost of sweeping every parameter once around one base point.
	sweepCost := 0
	for i := 0; i < space.Len(); i++ {
		sweepCost += space.Param(i).Card()
	}
	bases := opts.Budget / sweepCost
	if bases < 1 {
		bases = 1
	}

	// observation[m][p] accumulates sweep statistics for metric m,
	// parameter p.
	type obs struct {
		corrs []float64 // rank correlation per sweep
		spans []float64 // relative metric span per sweep
		sums  []float64 // per-value metric sums (for ordering induction)
		cnts  []int
	}
	observations := make(map[string][]*obs, len(metricNames))
	for _, m := range metricNames {
		po := make([]*obs, space.Len())
		for i := range po {
			po[i] = &obs{
				sums: make([]float64, space.Param(i).Card()),
				cnts: make([]int, space.Param(i).Card()),
			}
		}
		observations[m] = po
	}

	for b := 0; b < bases; b++ {
		base := space.Random(r)
		for pi := 0; pi < space.Len(); pi++ {
			p := space.Param(pi)
			// Sweep parameter pi across all its values.
			axis := make([]float64, 0, p.Card())
			valsByMetric := make(map[string][]float64, len(metricNames))
			for vi := 0; vi < p.Card(); vi++ {
				pt := base.Clone()
				pt[pi] = vi
				m, err := cache.Evaluate(pt)
				if err != nil {
					continue // infeasible variant: skip
				}
				ok := true
				row := make(map[string]float64, len(metricNames))
				for _, name := range metricNames {
					v, has := m.Get(name)
					if !has {
						ok = false
						break
					}
					row[name] = v
				}
				if !ok {
					continue
				}
				axis = append(axis, float64(vi))
				for name, v := range row {
					valsByMetric[name] = append(valsByMetric[name], v)
					observations[name][pi].sums[vi] += v
					observations[name][pi].cnts[vi]++
				}
			}
			if len(axis) < 2 {
				continue // too few feasible variants to learn from
			}
			for _, name := range metricNames {
				vals := valsByMetric[name]
				o := observations[name][pi]
				c := rankCorrelation(axis, vals)
				if len(axis) == 2 {
					c *= 0.6 // two-point evidence is weak; discount it
				}
				o.corrs = append(o.corrs, c)
				o.spans = append(o.spans, relativeSpan(vals))
			}
		}
	}

	lib := core.NewLibrary(space)
	for _, name := range metricNames {
		hs := lib.Metric(name)
		po := observations[name]

		// Importance: normalize mean spans across parameters to 1..100.
		maxSpan := 0.0
		meanSpans := make([]float64, space.Len())
		for pi, o := range po {
			if len(o.spans) == 0 {
				continue
			}
			meanSpans[pi] = mean(o.spans)
			if meanSpans[pi] > maxSpan {
				maxSpan = meanSpans[pi]
			}
		}
		for pi := 0; pi < space.Len(); pi++ {
			p := space.Param(pi)
			o := po[pi]
			if len(o.corrs) == 0 {
				continue
			}
			if maxSpan > 0 {
				imp := 1 + 99*meanSpans[pi]/maxSpan
				hs.SetImportance(p.Name(), imp, opts.Decay)
			}
			// Discount the mean correlation by its disagreement across
			// sweeps: a slope that flips sign between base points is noise,
			// not a trend worth a directional hint.
			corr := mean(o.corrs) * consistency(o.corrs)
			if p.IsOrdered() {
				if math.Abs(corr) >= opts.MinBias {
					hs.SetBias(p.Name(), clamp(corr, -1, 1))
				}
				continue
			}
			// Unordered categorical: induce an ordering by mean metric
			// response, then declare a positive bias along it (by
			// construction the metric rises along the induced order).
			order := inducedOrder(p, o.sums, o.cnts)
			if order == nil {
				continue
			}
			hs.SetOrder(p.Name(), order...)
			// Strength: consistency of the induced ordering, measured by
			// the relative span across category means.
			strength := clamp(relativeSpanOfMeans(o.sums, o.cnts)*2, 0, 1)
			if strength >= opts.MinBias {
				hs.SetBias(p.Name(), strength)
			}
		}
	}
	return lib, cache.DistinctEvaluations(), nil
}

// rankCorrelation computes the Spearman rank correlation of ys against xs.
// Two-point sweeps (binary parameters) yield the sign of the difference.
func rankCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	rx, ry := ranks(xs), ranks(ys)
	return pearson(rx, ry)
}

// ranks returns fractional ranks (ties averaged).
func ranks(xs []float64) []float64 {
	type kv struct {
		v float64
		i int
	}
	s := make([]kv, len(xs))
	for i, v := range xs {
		s[i] = kv{v, i}
	}
	sort.Slice(s, func(a, b int) bool { return s[a].v < s[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j-1) / 2
		for k := i; k < j; k++ {
			out[s[k].i] = avg
		}
		i = j
	}
	return out
}

func pearson(xs, ys []float64) float64 {
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// relativeSpan is (max-min)/|mean|, a scale-free measure of how much the
// metric moved across the sweep.
func relativeSpan(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	m := math.Abs(mean(vals))
	if m == 0 {
		return 0
	}
	return (hi - lo) / m
}

// inducedOrder sorts a categorical parameter's values by mean metric
// response (ascending). Returns nil when fewer than two categories were
// observed.
func inducedOrder(p *param.Param, sums []float64, cnts []int) []string {
	type kv struct {
		mean float64
		vi   int
	}
	var cats []kv
	for vi := range sums {
		if cnts[vi] > 0 {
			cats = append(cats, kv{sums[vi] / float64(cnts[vi]), vi})
		}
	}
	if len(cats) != p.Card() {
		return nil // need full coverage to declare a total order
	}
	sort.Slice(cats, func(a, b int) bool { return cats[a].mean < cats[b].mean })
	out := make([]string, len(cats))
	for i, c := range cats {
		out[i] = p.StringValue(c.vi)
	}
	return out
}

// consistency maps the spread of per-sweep correlations to a [0,1]
// discount: identical sweeps keep full weight, sign-flipping sweeps are
// suppressed.
func consistency(corrs []float64) float64 {
	if len(corrs) < 2 {
		return 1
	}
	m := mean(corrs)
	var v float64
	for _, c := range corrs {
		d := c - m
		v += d * d
	}
	sd := math.Sqrt(v / float64(len(corrs)-1))
	return clamp(1-sd, 0, 1)
}

// relativeSpanOfMeans is the relative span across category means.
func relativeSpanOfMeans(sums []float64, cnts []int) float64 {
	var means []float64
	for vi := range sums {
		if cnts[vi] > 0 {
			means = append(means, sums[vi]/float64(cnts[vi]))
		}
	}
	return relativeSpan(means)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
