package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestServeDebug boots the introspection endpoint on an ephemeral port and
// checks the registry snapshot is live under /debug/vars and the pprof
// index answers.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricCacheHits).Add(41)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter(MetricCacheHits).Inc() // live updates must be visible

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: status %d, err %v", resp.StatusCode, err)
	}
	var vars struct {
		Nautilus Snapshot `json:"nautilus"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, body)
	}
	if got := vars.Nautilus.Counters[MetricCacheHits]; got != 42 {
		t.Errorf("%s via expvar = %d, want 42", MetricCacheHits, got)
	}

	resp, err = client.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: status %d", resp.StatusCode)
	}
}
