package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 to keep the counter monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Max atomically raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Bounds[i]; the final implicit bucket counts the
// overflow. Observations are lock-free atomic increments.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Int64
	sum    Gauge
}

// newHistogram builds a histogram over ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		h.sum.Add(v)
	}
}

// HistogramSnapshot is a point-in-time export of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] holds observations
	// <= Bounds[i], and Counts[len(Bounds)] the overflow.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// Count and Sum summarize all observations (Sum over finite samples).
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

// Snapshot is a point-in-time export of a Registry, suitable for JSON
// encoding (non-finite gauge values are dropped).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a named collection of counters, gauges, and histograms.
// Registration takes a mutex; the returned metric handles update through
// atomics only, so instrumented hot paths resolve their metrics once and
// never contend.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. An already-registered name keeps its original
// bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot exports every metric's current value. Each metric is read
// atomically; the set of metrics is captured under the registration lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if v := g.Value(); !math.IsNaN(v) && !math.IsInf(v, 0) {
			s.Gauges[name] = v
		}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Value(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}
