package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugRegistry is the registry the process-wide "nautilus" expvar reads
// from; ServeDebug installs the most recently served registry.
var (
	debugRegistry atomic.Pointer[Registry]
	publishOnce   sync.Once
)

// DebugMux returns the introspection routes over reg as a mux, so hosts
// with their own HTTP server (the nautserve daemon) can mount them beside
// their API instead of opening a second port:
//
//	/metrics      - the registry in Prometheus text exposition format
//	/debug/vars   - expvar, including the registry snapshot as "nautilus"
//	/debug/pprof  - the standard Go profiling handlers
//
// The registry becomes the process-wide "nautilus" expvar (the most
// recently installed registry wins, matching expvar's global semantics).
func DebugMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = NewRegistry()
	}
	debugRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("nautilus", expvar.Func(func() any {
			if r := debugRegistry.Load(); r != nil {
				return r.Snapshot()
			}
			return Snapshot{}
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP introspection endpoint on addr and returns the
// bound address (useful with ":0"). It serves DebugMux(reg), so a long
// search can be watched live (hint rates, cache hit rates, pool occupancy)
// and profiled without stopping it. The server runs on its own goroutine
// for the life of the process; errors after startup are dropped, matching
// expvar's own best-effort semantics.
func ServeDebug(addr string, reg *Registry) (string, error) {
	mux := DebugMux(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
