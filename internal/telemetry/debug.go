package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugRegistry is the registry the process-wide "nautilus" expvar reads
// from; ServeDebug installs the most recently served registry.
var (
	debugRegistry atomic.Pointer[Registry]
	publishOnce   sync.Once
)

// ServeDebug starts an HTTP introspection endpoint on addr and returns the
// bound address (useful with ":0"). It exposes
//
//	/debug/vars   - expvar, including the registry snapshot as "nautilus"
//	/debug/pprof  - the standard Go profiling handlers
//
// so a long search can be watched live (hint rates, cache hit rates, pool
// occupancy) and profiled without stopping it. The server runs on its own
// goroutine for the life of the process; errors after startup are dropped,
// matching expvar's own best-effort semantics.
func ServeDebug(addr string, reg *Registry) (string, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	debugRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("nautilus", expvar.Func(func() any {
			if r := debugRegistry.Load(); r != nil {
				return r.Snapshot()
			}
			return Snapshot{}
		}))
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
